// Benchmarks that regenerate the paper's evaluation artifacts, one per
// table/figure (§4, appendix A). Each iteration runs the experiment at
// quick fidelity; run cmd/nadino-bench for the full-fidelity sweeps and
// printed tables.
//
//	go test -bench=. -benchmem
package nadino

import (
	"runtime"
	"testing"
	"time"

	"nadino/internal/dne"
	"nadino/internal/experiments"
	"nadino/internal/mempool"
	"nadino/internal/metrics"
	"nadino/internal/params"
	"nadino/internal/sim"
)

func benchOpts(i int) experiments.Opts {
	return experiments.Opts{Quick: true, Seed: int64(i + 1)}
}

// BenchmarkFig06Isolation regenerates Fig. 6 (DNE isolation cost).
func BenchmarkFig06Isolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig06(benchOpts(i))
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig09Comch regenerates Fig. 9 (DPU<->host channels).
func BenchmarkFig09Comch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig09(benchOpts(i))
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig11OffPath regenerates Fig. 11 (off-path vs on-path).
func BenchmarkFig11OffPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig11(benchOpts(i))
		if len(res.ConcurrencySweep) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig12Primitives regenerates Fig. 12 (RDMA primitive selection).
func BenchmarkFig12Primitives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig12(benchOpts(i))
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig13Ingress regenerates Fig. 13 (ingress designs).
func BenchmarkFig13Ingress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig13(benchOpts(i))
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig14Scaling regenerates Fig. 14 (ingress horizontal scaling).
func BenchmarkFig14Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig14(benchOpts(i))
		if len(res.Series) != 3 {
			b.Fatal("missing series")
		}
	}
}

// BenchmarkFig15Tenancy regenerates Fig. 15 (FCFS vs DWRR fairness).
func BenchmarkFig15Tenancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig15(benchOpts(i))
		if res.DWRR.Aggregate.Len() == 0 {
			b.Fatal("no aggregate series")
		}
	}
}

// BenchmarkFig16Boutique regenerates Fig. 16 (Online Boutique end to end).
func BenchmarkFig16Boutique(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig16(benchOpts(i))
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTable2Latency regenerates Table 2 (chain latency). It shares the
// boutique sweep with Fig. 16 but reports the latency view.
func BenchmarkTable2Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.RunTable2(benchOpts(i))
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig17TenancyScale regenerates Fig. 17 (6-tenant scalability).
func BenchmarkFig17TenancyScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig17(benchOpts(i))
		if res.Run.Aggregate.Len() == 0 {
			b.Fatal("no aggregate series")
		}
	}
}

// runSuite executes every experiment (figures + ablations) at quick
// fidelity with the given worker count.
func runSuite(b *testing.B, parallel int) {
	b.Helper()
	o := experiments.Opts{Quick: true, Seed: 1, Parallel: parallel}
	for _, e := range experiments.AllWithAblations() {
		if tables := e.Run(o); len(tables) == 0 {
			b.Fatalf("%s produced no tables", e.ID)
		}
	}
}

// BenchmarkSuiteSequential is the full quick suite on one core: the
// baseline for the -parallel speedup. Run with -benchtime 1x; one
// iteration is tens of seconds.
func BenchmarkSuiteSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSuite(b, 1)
	}
}

// BenchmarkSuiteParallel is the same suite with sweep points sharded
// across all cores (nadino-bench -parallel 0). Output is bitwise-identical
// to the sequential run; only the wall clock changes.
func BenchmarkSuiteParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSuite(b, runtime.GOMAXPROCS(0))
	}
}

// ---- Substrate microbenchmarks (host performance of the simulator) ----

// BenchmarkSimEventLoop measures raw event throughput of the DES engine.
func BenchmarkSimEventLoop(b *testing.B) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			eng.After(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	eng.After(time.Microsecond, tick)
	eng.Run()
}

// BenchmarkSimProcessSwitch measures coroutine handoff cost.
func BenchmarkSimProcessSwitch(b *testing.B) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	eng.Spawn("sleeper", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	eng.Run()
}

// BenchmarkMempoolGetPut measures the pooled allocator fast path.
func BenchmarkMempoolGetPut(b *testing.B) {
	pool := mempool.NewPool("t", 4096, 1024, 2<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := pool.Get("fn")
		if err != nil {
			b.Fatal(err)
		}
		if err := pool.Put(buf, "fn"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDWRRSchedule measures scheduler enqueue/dequeue throughput.
func BenchmarkDWRRSchedule(b *testing.B) {
	s := dne.NewDWRR(2048)
	s.SetWeight("a", 6)
	s.SetWeight("b", 1)
	s.SetWeight("c", 2)
	names := []string{"a", "b", "c"}
	d := mempool.Descriptor{Len: 1024}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Enqueue(names[i%3], d)
		if _, ok := s.Next(); !ok {
			b.Fatal("scheduler ran dry")
		}
	}
}

// BenchmarkHistObserve measures the latency histogram hot path.
func BenchmarkHistObserve(b *testing.B) {
	h := metrics.NewHist()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%1000) * time.Microsecond)
	}
}

// BenchmarkEndToEndEcho measures simulated-seconds-per-wall-second for the
// full DNE data path (the simulator's headline cost).
func BenchmarkEndToEndEcho(b *testing.B) {
	p := params.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rps, _ := experiments.EchoProbe(p, int64(i+1))
		if rps <= 0 {
			b.Fatal("echo produced nothing")
		}
	}
}
