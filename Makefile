# Build, vet and test targets for the NADINO simulator.

GO ?= go

.PHONY: build test vet fmt race check bench bench-res suite ci trace telemetry

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# race runs the full suite under the race detector. The simulation engine is
# single-threaded by design, but the coroutine lockstep (sim.Proc), the
# tracer, and the parallel experiment runner ride on real goroutines — this
# target proves the handoffs are clean. It includes TestParallelDeterminism,
# which runs every experiment sequentially and sharded across all cores and
# asserts byte-identical tables. (The experiments package needs more than
# the default 10m under -race.)
race:
	$(GO) test -race -timeout 30m ./...

# check is the full pre-commit gate.
check: vet race

# bench runs the simulator-core microbenchmarks (event scheduling, cancel,
# spawn/yield; events/sec and allocs/op) and archives them as BENCH_sim.json
# for cross-commit comparison. The human-readable output goes to stderr.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine|BenchmarkProc' -benchmem ./internal/sim/ | $(GO) run ./cmd/benchjson > BENCH_sim.json

# bench-res archives the resilience headline numbers (recovery ratio, worst
# recovery time, DWRR vs FCFS retention) as BENCH_res.json, with the
# telemetry summary gauges of a scraped res-* run embedded alongside. Each
# iteration is a full quick-mode res-* experiment and deterministic for the
# fixed seed, so -benchtime 1x is exact.
bench-res: telemetry
	$(GO) test -run '^$$' -bench 'BenchmarkRes' -benchtime 1x ./internal/experiments/ | $(GO) run ./cmd/benchjson -telemetry telemetry/summary.json > BENCH_res.json

# suite regenerates every paper artifact at quick fidelity, sharded across
# all cores (output is bitwise-identical to -parallel 1).
suite:
	$(GO) run ./cmd/nadino-bench -quick -parallel 0

# ci is the one-command gate: gofmt, build, vet, race-test the sim-critical
# packages with -short (skips the ~15-min whole-suite parallel-determinism
# sweep; the res-* determinism fence still runs — the full-suite `race`
# target stays the deep pre-commit gate), regenerate everything — paper
# artifacts, ablations and the chaos res-* suite — at quick fidelity across
# all cores, then smoke-check the telemetry export pipeline.
ci: fmt
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race -short -timeout 20m ./internal/sim/ ./internal/fabric/ ./internal/chaos/ ./internal/rdma/ ./internal/dne/ ./internal/metrics/ ./internal/core/ ./internal/experiments/ ./internal/telemetry/
	$(GO) run ./cmd/nadino-bench -quick -parallel 0 -run everything
	$(MAKE) telemetry

# trace reproduces the Fig. 6 per-stage latency attribution and writes a
# Chrome trace-event file (load in chrome://tracing or ui.perfetto.dev).
trace:
	$(GO) run ./cmd/nadino-bench -run fig06 -quick -trace

# telemetry runs the res-storm experiment with the virtual-time scraper on,
# sharded across all cores (exports are identical to a sequential run), and
# smoke-checks the exported artifacts: non-empty series in every format plus
# the static dashboard.
telemetry:
	$(GO) run ./cmd/nadino-bench -run res-storm -quick -parallel 0 -telemetry telemetry
	@grep -q '^series,t_us,value' telemetry/res-storm-storm.series.csv
	@test $$(wc -l < telemetry/res-storm-storm.series.csv) -gt 1
	@grep -q '"key"' telemetry/res-storm-storm.series.json
	@grep -q '^# TYPE nadino_tenant_goodput gauge' telemetry/res-storm-storm.prom
	@grep -q '"profile"' telemetry/summary.json
	@grep -q '"ph":"C"' telemetry/counters.trace.json
	@grep -q '<svg' telemetry/dashboard.html
	@echo "telemetry: exports OK -> telemetry/dashboard.html"
