# Build, vet and test targets for the NADINO simulator.

GO ?= go

.PHONY: build test vet race check bench trace

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector. The simulation engine is
# single-threaded by design, but the coroutine lockstep (sim.Proc) and the
# tracer ride on real goroutines — this target proves the handoffs are clean.
# (The experiments package needs more than the default 10m under -race.)
race:
	$(GO) test -race -timeout 30m ./...

# check is the full pre-commit gate.
check: vet race

bench:
	$(GO) run ./cmd/nadino-bench -quick

# trace reproduces the Fig. 6 per-stage latency attribution and writes a
# Chrome trace-event file (load in chrome://tracing or ui.perfetto.dev).
trace:
	$(GO) run ./cmd/nadino-bench -run fig06 -quick -trace
