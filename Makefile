# Build, vet and test targets for the NADINO simulator.

GO ?= go

.PHONY: build test vet fmt race check bench bench-gate bench-res suite ci trace telemetry fuzz fuzz-smoke cover profile svc-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# race runs the full suite under the race detector. The simulation engine is
# single-threaded by design, but the coroutine lockstep (sim.Proc), the
# tracer, the parallel experiment runner, the telemetry registry (atomic
# counters scraped concurrently — TestConcurrentScrapeWhileUpdate hammers
# it), and the nadino-svc pacer/HTTP plane ride on real goroutines — this
# target proves the handoffs are clean. It includes TestParallelDeterminism,
# which runs every experiment sequentially and sharded across all cores and
# asserts byte-identical tables. (The experiments package needs more than
# the default 10m under -race.)
race:
	$(GO) test -race -timeout 30m ./...

# check is the full pre-commit gate.
check: vet race

# bench runs the simulator-core microbenchmarks (event scheduling, cancel,
# spawn/yield; events/sec and allocs/op) plus the cluster-scale sweep
# (BenchmarkScaleSweep: 100k-1M concurrent clients per point, wall-clock
# ns/op and events/sec) and archives everything as BENCH_sim.json for
# cross-commit comparison. The human-readable output goes to stderr. Each
# scale point is deterministic for the fixed seed, so -benchtime 1x is exact.
bench:
	( $(GO) test -run '^$$' -bench 'BenchmarkEngine|BenchmarkProc|BenchmarkPSQuantum$$' -benchmem ./internal/sim/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkQPPostSend$$|BenchmarkCQPollInto$$' -benchmem ./internal/rdma/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkMempoolCachedGetPut$$' -benchmem ./internal/mempool/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkGatewayForward$$|BenchmarkChainCrossNode$$' -benchmem ./internal/gateway/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkFlightRecord$$' -benchmem ./internal/flightrec/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkCloneFanout$$' -benchmem ./internal/speculate/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkEndToEndEcho$$' -benchmem -benchtime 5x . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkScaleSweep' -benchtime 1x -timeout 30m ./internal/experiments/ ) | $(GO) run ./cmd/benchjson > BENCH_sim.json

# bench-gate re-runs the headline microbenchmarks — event-core schedule hot
# path and pooled spawn, plus the data-plane fast path (QP send, CQ ring
# drain, cached mempool Get/Put), the gateway forwarding path and the
# flight-recorder record path (pinned at 0 allocs/op) — and fails if any
# regressed more than 25% in ns/op, or allocates more per op, against the
# archived BENCH_sim.json.
bench-gate:
	( $(GO) test -run '^$$' -bench 'BenchmarkEngineSchedule$$|BenchmarkProcSpawn$$|BenchmarkPSQuantum$$' -benchmem ./internal/sim/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkQPPostSend$$|BenchmarkCQPollInto$$' -benchmem ./internal/rdma/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkMempoolCachedGetPut$$' -benchmem ./internal/mempool/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkGatewayForward$$|BenchmarkChainCrossNode$$' -benchmem ./internal/gateway/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkFlightRecord$$' -benchmem ./internal/flightrec/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkCloneFanout$$' -benchmem ./internal/speculate/ ) | $(GO) run ./cmd/benchjson -gate BENCH_sim.json

# profile captures pprof CPU and heap profiles of a representative slice of
# the suite (fig15 exercises the full DNE data path at quick fidelity).
# Override PROFILE_RUN to profile a different experiment set.
PROFILE_RUN ?= fig15
profile:
	$(GO) run ./cmd/nadino-bench -quick -run $(PROFILE_RUN) -cpuprofile cpu.prof -memprofile mem.prof > /dev/null
	@echo "inspect with: $(GO) tool pprof cpu.prof   (or mem.prof)"

# bench-res archives the resilience headline numbers (recovery ratio, worst
# recovery time, DWRR vs FCFS retention) plus the gateway-fabric headlines
# (placement RPS/latency, failover transit and drops) as BENCH_res.json,
# with the telemetry summary gauges of a scraped res-* run embedded
# alongside. Each iteration is a full quick-mode experiment and
# deterministic for the fixed seed, so -benchtime 1x is exact.
bench-res: telemetry
	$(GO) test -run '^$$' -bench 'BenchmarkRes|BenchmarkFabric' -benchtime 1x ./internal/experiments/ | $(GO) run ./cmd/benchjson -telemetry telemetry/summary.json > BENCH_res.json

# suite regenerates every paper artifact at quick fidelity, sharded across
# all cores (output is bitwise-identical to -parallel 1).
suite:
	$(GO) run ./cmd/nadino-bench -quick -parallel 0

# ci is the one-command gate: gofmt, build, vet, race-test the whole module
# with -short (skips the ~15-min whole-suite parallel-determinism sweep; the
# res-* determinism fence still runs — the full-suite `race` target stays
# the deep pre-commit gate), enforce per-package coverage floors, regenerate
# everything — paper artifacts, ablations and the chaos res-* suite — at
# quick fidelity across all cores, then smoke-check the telemetry export
# pipeline and the simulation fuzzer, and finally gate the event-core hot
# paths against the archived benchmark numbers.
ci: fmt
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race -short -timeout 20m ./...
	$(MAKE) cover
	$(GO) run ./cmd/nadino-bench -quick -parallel 0 -run everything
	$(MAKE) telemetry
	$(MAKE) fuzz-smoke
	$(MAKE) svc-smoke
	$(MAKE) bench-gate

# svc-smoke is the live-daemon end-to-end check: boot nadino-svc on an
# ephemeral port with the built-in template config, poll /readyz, scrape
# /metrics (content type + core families), hot-install a chaos schedule via
# the management API, pull a flight dump, verify traffic flowed, and shut
# down cleanly. Exit status is the verdict.
svc-smoke:
	$(GO) run ./cmd/nadino-svc -smoke

# Coverage floors for the correctness-critical packages: the simulation
# engine, the ownership-checked mempool, the RDMA transport and the DNE.
COVER_FLOOR := 70
COVER_PKGS  := ./internal/sim/ ./internal/mempool/ ./internal/rdma/ ./internal/dne/

# cover runs the floor packages with -cover and fails if any falls below
# $(COVER_FLOOR)% statement coverage.
cover:
	@$(GO) test -short -count=1 -cover $(COVER_PKGS) | tee cover.out
	@awk -v floor=$(COVER_FLOOR) ' \
		/coverage:/ { \
			for (i = 1; i <= NF; i++) if ($$i == "coverage:") pct = substr($$(i+1), 1, length($$(i+1))-1); \
			if (pct + 0 < floor) { printf "cover: %s at %s%% is below the %d%% floor\n", $$2, pct, floor; bad = 1 } \
		} \
		END { exit bad }' cover.out
	@rm -f cover.out
	@echo "cover: all floor packages >= $(COVER_FLOOR)%"

# fuzz-smoke is the CI slice of the simulation fuzzer: 50 generated
# scenarios (random topology, tenants, workloads and chaos schedules) run
# under the full invariant registry, sharded across all cores. The grep
# fails the target on any invariant violation; failing seeds are printed
# with standalone repro commands.
fuzz-smoke:
	$(GO) run ./cmd/nadino-bench -run fuzz -quick -parallel 0 -fuzz-seeds 50 | tee fuzz-smoke.out
	@grep -q 'verdict: CLEAN' fuzz-smoke.out
	@rm -f fuzz-smoke.out

# fuzz is the deep sweep: 500 scenarios at full fidelity. Reproduce any
# failing seed with `go run ./cmd/nadino-bench -run fuzz -seed <s> -fuzz-seeds 1`
# (byte-identical output), or demo the pipeline end-to-end with
# `-fuzz-defect leak-buffer`, which plants a buffer leak in the harness and
# shows it caught and shrunk to a minimal counterexample.
fuzz:
	$(GO) run ./cmd/nadino-bench -run fuzz -parallel 0 -fuzz-seeds 500 | tee fuzz.out
	@grep -q 'verdict: CLEAN' fuzz.out
	@rm -f fuzz.out

# trace reproduces the Fig. 6 per-stage latency attribution and writes a
# Chrome trace-event file (load in chrome://tracing or ui.perfetto.dev).
trace:
	$(GO) run ./cmd/nadino-bench -run fig06 -quick -trace

# telemetry runs the res-storm experiment with the virtual-time scraper on,
# sharded across all cores (exports are identical to a sequential run), and
# smoke-checks the exported artifacts: non-empty series in every format plus
# the static dashboard.
telemetry:
	$(GO) run ./cmd/nadino-bench -run res-storm -quick -parallel 0 -telemetry telemetry
	@grep -q '^series,t_us,value' telemetry/res-storm-storm.series.csv
	@test $$(wc -l < telemetry/res-storm-storm.series.csv) -gt 1
	@grep -q '"key"' telemetry/res-storm-storm.series.json
	@grep -q '^# TYPE nadino_tenant_goodput gauge' telemetry/res-storm-storm.prom
	@grep -q '"profile"' telemetry/summary.json
	@grep -q '"ph":"C"' telemetry/counters.trace.json
	@grep -q '<svg' telemetry/dashboard.html
	@echo "telemetry: exports OK -> telemetry/dashboard.html"
