# Build, vet and test targets for the NADINO simulator.

GO ?= go

.PHONY: build test vet race check bench suite trace

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector. The simulation engine is
# single-threaded by design, but the coroutine lockstep (sim.Proc), the
# tracer, and the parallel experiment runner ride on real goroutines — this
# target proves the handoffs are clean. It includes TestParallelDeterminism,
# which runs every experiment sequentially and sharded across all cores and
# asserts byte-identical tables. (The experiments package needs more than
# the default 10m under -race.)
race:
	$(GO) test -race -timeout 30m ./...

# check is the full pre-commit gate.
check: vet race

# bench runs the simulator-core microbenchmarks (event scheduling, cancel,
# spawn/yield; events/sec and allocs/op) and archives them as BENCH_sim.json
# for cross-commit comparison. The human-readable output goes to stderr.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine|BenchmarkProc' -benchmem ./internal/sim/ | $(GO) run ./cmd/benchjson > BENCH_sim.json

# suite regenerates every paper artifact at quick fidelity, sharded across
# all cores (output is bitwise-identical to -parallel 1).
suite:
	$(GO) run ./cmd/nadino-bench -quick -parallel 0

# trace reproduces the Fig. 6 per-stage latency attribution and writes a
# Chrome trace-event file (load in chrome://tracing or ui.perfetto.dev).
trace:
	$(GO) run ./cmd/nadino-bench -run fig06 -quick -trace
