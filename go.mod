module nadino

go 1.22
