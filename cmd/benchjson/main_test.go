package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeArchive(t *testing.T, results []Result) string {
	t.Helper()
	raw, err := json.Marshal(Report{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestParseLine pins the bench-output grammar including custom metrics.
func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkProcSpawn-8   	 2000000	       512.0 ns/op	       0 B/op	       0 allocs/op")
	if !ok || r.Name != "BenchmarkProcSpawn" || r.Procs != 8 || r.NsPerOp != 512 || r.AllocsPerOp != 0 {
		t.Fatalf("parseLine = %+v ok=%v", r, ok)
	}
	r, ok = parseLine("BenchmarkScaleSweep/nodes=100-8  1  8584381491 ns/op  1379763 events/sec")
	if !ok || r.Metrics["events/sec"] != 1379763 {
		t.Fatalf("parseLine custom metric = %+v ok=%v", r, ok)
	}
	if _, ok := parseLine("ok  	nadino/internal/sim	15.2s"); ok {
		t.Fatal("parseLine accepted a non-benchmark line")
	}
}

// TestGate covers the three verdicts: within threshold, ns/op regression,
// and allocs/op growth; new benchmarks pass ungated.
func TestGate(t *testing.T) {
	archive := writeArchive(t, []Result{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "BenchmarkB", NsPerOp: 100, AllocsPerOp: 2},
	})
	cases := []struct {
		name  string
		fresh []Result
		fails int
	}{
		{"within", []Result{{Name: "BenchmarkA", NsPerOp: 120}}, 0},
		{"regressed", []Result{{Name: "BenchmarkA", NsPerOp: 130}}, 1},
		{"alloc-growth", []Result{{Name: "BenchmarkB", NsPerOp: 90, AllocsPerOp: 3}}, 1},
		{"new-bench", []Result{{Name: "BenchmarkC", NsPerOp: 999}}, 0},
		{"mixed", []Result{
			{Name: "BenchmarkA", NsPerOp: 200},
			{Name: "BenchmarkB", NsPerOp: 100, AllocsPerOp: 2},
		}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := gate(tc.fresh, archive, 0.25); got != tc.fails {
				t.Fatalf("gate = %d failures, want %d", got, tc.fails)
			}
		})
	}
	if got := gate(nil, archive, 0.25); got == 0 {
		t.Fatal("gate with empty input must fail")
	}
}
