// Command benchjson converts `go test -bench -benchmem` text output on
// stdin into a JSON report on stdout, so benchmark results can be archived
// and diffed across commits (see `make bench`, which writes BENCH_sim.json).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/sim/ | benchjson > BENCH_sim.json
//	... | benchjson -telemetry telemetry/summary.json > BENCH_res.json
//
// -telemetry embeds a scraper summary document (the summary.json written by
// `nadino-bench -telemetry <dir>`) into the report, so the archived numbers
// carry the end-of-run gauge snapshot of the run that produced them.
//
// -gate <archived.json> switches to regression-gate mode: instead of
// emitting a report, fresh results on stdin are compared against the
// archived report. A benchmark fails the gate if its ns/op exceeds the
// archived value by more than -gate-threshold (default 25%), or if its
// allocs/op grew at all. Fresh benchmarks with no archived counterpart are
// reported but do not fail. Exit status 1 on any failure (see
// `make bench-gate`, wired into `make ci`).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line, normalized. Custom units reported via
// b.ReportMetric (e.g. the resilience benchmarks' recovery_ratio) land in
// Metrics keyed by their unit string.
type Result struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs"` // the -N GOMAXPROCS suffix
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	OpsPerSec   float64            `json:"ops_per_sec"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the archived document. Telemetry, when present, is the verbatim
// summary.json from a telemetry export (per-profile end-of-run gauges).
type Report struct {
	Goos      string          `json:"goos,omitempty"`
	Goarch    string          `json:"goarch,omitempty"`
	Pkg       string          `json:"pkg,omitempty"`
	CPU       string          `json:"cpu,omitempty"`
	Results   []Result        `json:"results"`
	Telemetry json.RawMessage `json:"telemetry,omitempty"`
}

// parseLine parses one "BenchmarkX-N  iters  ns/op [B/op allocs/op]" line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	r := Result{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(fields[0], "-"); i > 0 {
		if p, err := strconv.Atoi(fields[0][i+1:]); err == nil {
			r.Name, r.Procs = fields[0][:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			if v > 0 {
				r.OpsPerSec = 1e9 / v
			}
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[fields[i+1]] = v
		}
	}
	return r, r.NsPerOp > 0
}

// gate compares fresh results against an archived report and returns the
// number of regressions, printing one verdict line per fresh benchmark.
func gate(fresh []Result, archivedPath string, threshold float64) int {
	raw, err := os.ReadFile(archivedPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	var archived Report
	if err := json.Unmarshal(raw, &archived); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", archivedPath, err)
		return 1
	}
	base := make(map[string]Result, len(archived.Results))
	for _, r := range archived.Results {
		base[r.Name] = r
	}
	failures := 0
	for _, r := range fresh {
		b, ok := base[r.Name]
		if !ok {
			fmt.Printf("NEW   %-40s %12.1f ns/op (not archived, not gated)\n", r.Name, r.NsPerOp)
			continue
		}
		ratio := r.NsPerOp / b.NsPerOp
		switch {
		case ratio > 1+threshold:
			failures++
			fmt.Printf("FAIL  %-40s %12.1f ns/op vs %12.1f archived (%+.1f%%, limit +%.0f%%)\n",
				r.Name, r.NsPerOp, b.NsPerOp, 100*(ratio-1), 100*threshold)
		case r.AllocsPerOp > b.AllocsPerOp:
			failures++
			fmt.Printf("FAIL  %-40s %d allocs/op vs %d archived\n",
				r.Name, r.AllocsPerOp, b.AllocsPerOp)
		default:
			fmt.Printf("ok    %-40s %12.1f ns/op vs %12.1f archived (%+.1f%%), %d allocs/op\n",
				r.Name, r.NsPerOp, b.NsPerOp, 100*(ratio-1), r.AllocsPerOp)
		}
	}
	if len(fresh) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: gate saw no benchmark results on stdin")
		return 1
	}
	return failures
}

func main() {
	telemetryPath := flag.String("telemetry", "", "telemetry summary.json to embed in the report")
	gatePath := flag.String("gate", "", "archived report to gate fresh results against (no JSON output)")
	gateThreshold := flag.Float64("gate-threshold", 0.25, "allowed fractional ns/op regression in -gate mode")
	flag.Parse()

	rep := Report{Results: []Result{}}
	if *telemetryPath != "" {
		raw, err := os.ReadFile(*telemetryPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if !json.Valid(raw) {
			fmt.Fprintf(os.Stderr, "benchjson: %s is not valid JSON\n", *telemetryPath)
			os.Exit(1)
		}
		rep.Telemetry = json.RawMessage(raw)
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		default:
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
		// Echo the raw line so the human-readable output still shows.
		fmt.Fprintln(os.Stderr, line)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *gatePath != "" {
		if gate(rep.Results, *gatePath, *gateThreshold) > 0 {
			os.Exit(1)
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
