// Command nadino-boutique runs the Online Boutique workload (§4.3) on a
// chosen serverless data plane and reports throughput, latency and
// data-plane processor usage.
//
// Usage:
//
//	nadino-boutique -system nadino-dne -chain home-query -clients 60
//	nadino-boutique -system spright -chain view-cart -clients 20 -dur 500ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nadino/internal/boutique"
	"nadino/internal/core"
	"nadino/internal/ingress"
	"nadino/internal/sim"
)

var systems = map[string]core.System{
	"nadino-dne": core.NadinoDNE,
	"nadino-cne": core.NadinoCNE,
	"fuyao-f":    core.FuyaoF,
	"fuyao-k":    core.FuyaoK,
	"spright":    core.Spright,
	"nightcore":  core.NightCore,
	"junction":   core.Junction,
}

func main() {
	sysName := flag.String("system", "nadino-dne", "data plane: nadino-dne, nadino-cne, fuyao-f, fuyao-k, spright, nightcore, junction")
	chain := flag.String("chain", boutique.HomeQuery, "chain: home-query, view-cart, product-query, place-order")
	clients := flag.Int("clients", 20, "closed-loop clients")
	dur := flag.Duration("dur", 300*time.Millisecond, "measurement window (simulated time)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	sys, ok := systems[*sysName]
	if !ok {
		fmt.Fprintf(os.Stderr, "nadino-boutique: unknown system %q\n", *sysName)
		os.Exit(2)
	}

	c := core.NewCluster(boutique.ClusterConfig(sys, *seed))
	defer c.Eng.Stop()
	if _, ok := c.ChainLatency[*chain]; !ok {
		fmt.Fprintf(os.Stderr, "nadino-boutique: unknown chain %q\n", *chain)
		os.Exit(2)
	}
	for i := 0; i < *clients; i++ {
		id := i
		c.Eng.Spawn("client", func(pr *sim.Proc) {
			c.WaitReady(pr)
			respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
			for {
				c.SubmitChain(*chain, id, func(r ingress.Response) { respQ.TryPut(r) })
				respQ.Get(pr)
			}
		})
	}

	warm := c.P.QPSetupTime + 10*time.Millisecond
	c.Eng.RunUntil(warm)
	c.Completed.MarkWindow(c.Eng.Now())
	hist := c.ChainLatency[*chain]
	hist.Reset()
	c.Eng.RunUntil(warm + *dur)

	elapsed := c.Eng.Now() - c.P.QPSetupTime
	net := c.NetCPUStats(elapsed)
	engineKind := "CPU"
	if net.OnDPU {
		engineKind = "DPU"
	}
	fmt.Printf("system   : %v\n", sys)
	fmt.Printf("chain    : %s (%d data exchanges)\n", *chain, chainExchanges(*chain))
	fmt.Printf("clients  : %d (closed loop)\n", *clients)
	fmt.Printf("RPS      : %.0f\n", c.Completed.WindowRate(c.Eng.Now()))
	fmt.Printf("latency  : mean %v  p50 %v  p99 %v\n", hist.Mean(), hist.P50(), hist.P99())
	fmt.Printf("dataplane: %.0f pinned %s cores (%.2f useful) + %.2f cores on function hosts\n",
		net.PinnedCores, engineKind, net.PinnedUseful, net.FnCores)
	fmt.Printf("app CPU  : %.2f cores\n", c.AppCPUCores(elapsed))
}

func chainExchanges(name string) int {
	for _, ch := range boutique.Chains() {
		if ch.Name == name {
			return core.Exchanges(ch.Calls)
		}
	}
	return 0
}
