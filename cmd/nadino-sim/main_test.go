package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"nadino/internal/core"
	"nadino/internal/workload"
)

// replayConfig is the 2-node cluster the replay tests drive.
func replayConfig(seed int64) core.Config {
	return core.Config{
		System: core.NadinoDNE,
		Nodes:  []string{"node1", "node2"},
		Functions: []core.FunctionSpec{
			{Name: "front", Node: "node1", Service: 20 * time.Microsecond},
			{Name: "back", Node: "node2", Service: 15 * time.Microsecond},
		},
		Chains: []core.ChainSpec{{
			Name: "main", Entry: "front", ReqBytes: 512, RespBytes: 1024,
			Calls: []core.Call{{Callee: "back", ReqBytes: 1024, RespBytes: 1024}},
		}},
		Seed: seed,
	}
}

// TestReplaySpeculativeTrace feeds a recorded trace whose arrivals carry
// clone factors and hedge deadlines through the -trace-file path end to end:
// ParseTrace must surface the new fields, the replay must route them into
// per-request speculative submission, and the spec.* telemetry family must
// show the launched groups, clones, and hedges.
func TestReplaySpeculativeTrace(t *testing.T) {
	trace := strings.Join([]string{
		"# recorded production schedule with tail-cutting policy attached",
		"0,main,20",        // plain burst, no overrides
		"40,main,20,2,0",   // clone=2
		"80,main,20,0,60",  // hedge after 60µs
		"120,main,20,3,80", // clone=3 plus hedge
		"160,main,40",      // plain tail
	}, "\n") + "\n"
	rp, err := workload.ParseTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if rp.Total() != 120 {
		t.Fatalf("trace total = %d, want 120", rp.Total())
	}
	spec := 0
	for _, a := range rp.Arrivals {
		if a.Speculative() {
			spec++
		}
	}
	if spec != 3 {
		t.Fatalf("parsed %d speculative arrivals, want 3", spec)
	}

	var out bytes.Buffer
	sc, err := runCluster(replayConfig(7), runOpts{
		chain: "main", dur: 5 * time.Millisecond, replay: rp, telemetry: true,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "replay of 5 arrivals (120 requests") {
		t.Fatalf("replay banner missing:\n%s", out.String())
	}

	// Integrate the spec.* rate series back to totals: every arrival is one
	// launched group, the clone lines amplify, the hedge lines arm timers.
	totals := map[string]float64{}
	for _, s := range sc.Series() {
		if !strings.HasPrefix(s.Name, "spec.") {
			continue
		}
		for _, pt := range s.Points {
			totals[s.Name] += pt.V * sc.Period().Seconds()
		}
	}
	if totals["spec.launched"] < 100 {
		t.Fatalf("spec.launched integrates to %.1f, want ~120 (series: %v)",
			totals["spec.launched"], totals)
	}
	if totals["spec.clones"] <= 0 {
		t.Fatalf("clone overrides never cloned: %v", totals)
	}
	if totals["spec.hedges"] <= 0 {
		t.Fatalf("hedge overrides never armed: %v", totals)
	}
}

// TestReplayDeterministic pins the speculative replay to byte-identical
// reruns — the property every nadino-sim mode guarantees per seed.
func TestReplayDeterministic(t *testing.T) {
	trace := "0,main,10,2,50\n30,main,10\n60,main,10,0,40\n"
	rp, err := workload.ParseTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if _, err := runCluster(replayConfig(3), runOpts{chain: "main", dur: 3 * time.Millisecond, replay: rp}, &a); err != nil {
		t.Fatal(err)
	}
	if _, err := runCluster(replayConfig(3), runOpts{chain: "main", dur: 3 * time.Millisecond, replay: rp}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("replay runs diverged:\n--- first\n%s--- second\n%s", a.String(), b.String())
	}
}
