// Command nadino-sim runs an arbitrary cluster topology described by a JSON
// config file (see configs/) on any of the supported data planes, drives a
// chain with closed-loop clients, and reports throughput, latency and
// data-plane CPU/DPU usage.
//
// Usage:
//
//	nadino-sim -config configs/sample-cluster.json -chain main -clients 40
//	nadino-sim -config cluster.json -replicas 8 -parallel 0
//	nadino-sim -config cluster.json -trace-file arrivals.txt   # replay a recorded trace
//	nadino-sim -config cluster.json -open-clients 50000        # proc-free open-loop load
//	nadino-sim -template        # print a starter config
//
// -replicas N runs N independent copies of the cluster with seeds
// seed..seed+N-1 and prints their reports in replica order; -parallel M
// shards the replicas across M workers (0 = one per core). Each replica is
// its own simulation engine, so the reports are identical whether the
// replicas run sequentially or concurrently.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"nadino/internal/core"
	"nadino/internal/experiments"
	"nadino/internal/ingress"
	"nadino/internal/sim"
	"nadino/internal/telemetry"
	"nadino/internal/trace"
	"nadino/internal/workload"
)

const template = `{
  "system": "nadino-dne",
  "tenant": "demo",
  "nodes": ["node1", "node2"],
  "functions": [
    {"name": "front", "node": "node1", "service": "25us", "workers": 16},
    {"name": "back", "node": "node2", "service": "100us", "workers": 4,
     "max_scale": 3, "target_concurrency": 4}
  ],
  "chains": [
    {"name": "main", "entry": "front", "req_bytes": 512, "resp_bytes": 2048,
     "calls": [
       {"callee": "back", "req_bytes": 1024, "resp_bytes": 1024, "async": true},
       {"callee": "back", "req_bytes": 1024, "resp_bytes": 1024, "async": true}
     ]}
  ],
  "ingress_workers": 2,
  "seed": 1
}
`

// runOpts carries the per-run knobs from flags into runCluster.
type runOpts struct {
	chain     string
	clients   int
	dur       time.Duration
	traceRPS  float64
	zipf      float64
	diurnal   float64
	period    time.Duration
	replay    *workload.Replay
	traceOut  string
	telemetry bool
	// openClients switches to event-driven open-loop clients: proc-free
	// timer state machines (two events per request, no goroutine each), so
	// -open-clients 100000 is cheap where 100k closed-loop Procs are not.
	// openThink is their mean exponential think time.
	openClients int
	openThink   time.Duration
}

// runCluster builds one cluster from cfg, drives it, and writes the report
// to w. It is safe to call concurrently for independent configs. When
// r.telemetry is set it returns the run's scraper for export.
func runCluster(cfg core.Config, r runOpts, w io.Writer) (*telemetry.Scraper, error) {
	c := core.NewCluster(cfg)
	defer c.Eng.Stop()
	hist, ok := c.ChainLatency[r.chain]
	if !ok {
		return nil, fmt.Errorf("unknown chain %q", r.chain)
	}
	var sc *telemetry.Scraper
	if r.telemetry {
		// Scrape the whole run (setup, warmup and the measured window) so
		// the dashboard shows the ramp; ~100 samples across the window.
		reg := telemetry.NewRegistry()
		c.Instrument(reg)
		sc = reg.Scrape(c.Eng, r.dur/100)
	}
	warm := c.P.QPSetupTime + 10*time.Millisecond
	if r.replay != nil {
		// Replay mode: drive the recorded arrival schedule verbatim, shifted
		// to begin at the start of the measured window (the trace's t=0 would
		// otherwise land in warmup and never be measured). The replay is
		// read-only and each replica's Start spawns its own process, so
		// replicas can share one parsed trace.
		_, hook := r.replay.Shifted(warm).StartSpec(c.Eng)
		n := 0
		hook(func(ch string, clone int, hedge time.Duration) {
			n++
			// Recorded speculation overrides ride each arrival: clone/hedge
			// are zero for plain trace lines, and SubmitChainSpec falls back
			// to the cluster policy in that case.
			c.SubmitChainSpec(ch, n, clone, hedge, nil)
		})
		fmt.Fprintf(w, "workload  : replay of %d arrivals (%d requests over %v)\n",
			len(r.replay.Arrivals), r.replay.Total(), r.replay.Duration())
	} else if r.traceRPS > 0 {
		// Trace mode: Poisson arrivals with diurnal modulation, spread
		// over every chain by Zipf popularity.
		var names []string
		for _, ch := range cfg.Chains {
			names = append(names, ch.Name)
		}
		gen := &workload.TraceGen{
			Chains:           names,
			ZipfS:            r.zipf,
			BaseRPS:          r.traceRPS,
			DiurnalAmplitude: r.diurnal,
			Period:           r.period,
		}
		_, hook := gen.Start(c.Eng)
		n := 0
		hook(func(ch string) {
			n++
			c.SubmitChain(ch, n, nil)
		})
		fmt.Fprintf(w, "workload  : %v\n", gen)
	} else if r.openClients > 0 {
		// Open-loop mode: each client is a timer-driven state machine with one
		// bound issue callback — the scale-sweep client model. The response
		// callback schedules the next issue after an exponential think time,
		// and arrivals are staggered across one think interval so the run does
		// not start with a synchronized herd.
		type openClient struct {
			rng     *rand.Rand
			issueFn func()
		}
		ocs := make([]openClient, r.openClients)
		for i := range ocs {
			oc := &ocs[i]
			id := i
			oc.rng = rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(i)))
			oc.issueFn = func() {
				c.SubmitChain(r.chain, id, func(resp ingress.Response) {
					think := oc.rng.ExpFloat64()
					if think > 8 {
						think = 8
					}
					c.Eng.At(c.Eng.Now()+time.Duration(think*float64(r.openThink)), oc.issueFn)
				})
			}
			c.Eng.At(time.Duration(oc.rng.Int63n(int64(r.openThink))), oc.issueFn)
		}
		fmt.Fprintf(w, "workload  : %d open-loop clients, mean think %v (event-driven, proc-free)\n",
			r.openClients, r.openThink)
	} else {
		for i := 0; i < r.clients; i++ {
			id := i
			c.Eng.Spawn("client", func(pr *sim.Proc) {
				c.WaitReady(pr)
				respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
				for {
					c.SubmitChain(r.chain, id, func(resp ingress.Response) { respQ.TryPut(resp) })
					respQ.Get(pr)
				}
			})
		}
	}
	var tracer *trace.Tracer
	c.Eng.RunUntil(warm)
	c.Completed.MarkWindow(c.Eng.Now())
	hist.Reset()
	if r.traceOut != "" {
		// Arm the tracer only for the measured window so the attribution
		// matches the reported steady-state latency.
		tracer = trace.New(nil)
		c.SetTracer(tracer)
	}
	c.Eng.RunUntil(warm + r.dur)
	elapsed := c.Eng.Now() - c.P.QPSetupTime

	net := c.NetCPUStats(elapsed)
	kind := "CPU"
	if net.OnDPU {
		kind = "DPU"
	}
	fmt.Fprintf(w, "system    : %v\n", cfg.System)
	if r.replay != nil {
		fmt.Fprintf(w, "chain     : %s (measured; replayed trace drives all its chains), %v window\n", r.chain, r.dur)
	} else if r.traceRPS > 0 {
		fmt.Fprintf(w, "chain     : %s (measured; all chains driven), %v window\n", r.chain, r.dur)
	} else if r.openClients > 0 {
		fmt.Fprintf(w, "chain     : %s, %d open-loop clients, %v window\n", r.chain, r.openClients, r.dur)
	} else {
		fmt.Fprintf(w, "chain     : %s, %d clients, %v window\n", r.chain, r.clients, r.dur)
	}
	fmt.Fprintf(w, "throughput: %.0f RPS\n", c.Completed.WindowRate(c.Eng.Now()))
	fmt.Fprintf(w, "latency   : mean %v  p50 %v  p99 %v\n", hist.Mean(), hist.P50(), hist.P99())
	fmt.Fprintf(w, "dataplane : %.0f pinned %s cores (%.2f useful) + %.2f host-core share\n",
		net.PinnedCores, kind, net.PinnedUseful, net.FnCores)
	for _, fs := range cfg.Functions {
		if fs.MaxScale > 1 {
			g := c.Group(fs.Name)
			ups, downs := g.ScaleEvents()
			fmt.Fprintf(w, "autoscale : %s at %d instance(s) (%d up / %d down events)\n",
				fs.Name, g.Instances(), ups, downs)
		}
	}
	if n := c.ColdStarts(); n > 0 {
		fmt.Fprintf(w, "coldstarts: %d\n", n)
	}
	if n := c.CrossTenantCopies(); n > 0 {
		fmt.Fprintf(w, "x-tenant  : %d sidecar copies\n", n)
	}
	if tracer != nil {
		experiments.TraceTable(fmt.Sprintf("%v chain %s", cfg.System, r.chain), tracer.Report()).Print(w)
		f, err := os.Create(r.traceOut)
		if err != nil {
			return sc, err
		}
		name := fmt.Sprintf("%v", cfg.System)
		// Telemetry counters ride along in the same trace file when both
		// flags are set.
		var counters []trace.CounterTrack
		if sc != nil {
			counters = telemetry.CounterTracks(name+"/", sc)
		}
		if err := trace.WriteChromeWithCounters(f, []trace.Profile{{Name: name, Tracer: tracer}}, counters); err == nil {
			err = f.Close()
		} else {
			f.Close()
			return sc, err
		}
		fmt.Fprintf(w, "trace     : %s (chrome://tracing / ui.perfetto.dev)\n", r.traceOut)
	}
	return sc, nil
}

func main() {
	cfgPath := flag.String("config", "", "cluster config file (JSON)")
	chain := flag.String("chain", "", "chain to drive (default: the config's first)")
	clients := flag.Int("clients", 20, "closed-loop clients")
	openClients := flag.Int("open-clients", 0, "event-driven open-loop clients (proc-free; scales to 100k+) instead of closed-loop clients")
	openThink := flag.Duration("open-think", 10*time.Millisecond, "open-loop mode: mean exponential think time between a response and the next request")
	dur := flag.Duration("dur", 300*time.Millisecond, "measurement window (simulated)")
	replicas := flag.Int("replicas", 1, "independent replica runs with seeds seed..seed+N-1")
	parallel := flag.Int("parallel", 1, "workers running replicas concurrently (0 = all cores)")
	traceRPS := flag.Float64("trace-rps", 0, "drive ALL chains open-loop at this aggregate rate instead of closed-loop clients")
	traceFile := flag.String("trace-file", "", "replay a recorded arrival trace (one `t_us,chain[,count[,clone[,hedge_us]]]` line per arrival) instead of synthetic load")
	traceOut := flag.String("trace", "", "record per-stage latency attribution after warmup and write a Chrome trace to this file")
	telemetryDir := flag.String("telemetry", "", "scrape labeled metrics during the run and export CSV/JSON/Prometheus/dashboard into this directory")
	zipf := flag.Float64("zipf", 1.0, "trace mode: chain popularity skew")
	diurnal := flag.Float64("diurnal", 0.5, "trace mode: diurnal amplitude [0,1)")
	period := flag.Duration("period", 200*time.Millisecond, "trace mode: diurnal period")
	printTemplate := flag.Bool("template", false, "print a starter config and exit")
	flag.Parse()

	if *printTemplate {
		fmt.Print(template)
		return
	}
	if *cfgPath == "" {
		fmt.Fprintln(os.Stderr, "nadino-sim: -config is required (try -template)")
		os.Exit(2)
	}
	if *replicas < 1 {
		fmt.Fprintln(os.Stderr, "nadino-sim: -replicas must be >= 1")
		os.Exit(2)
	}
	if *replicas > 1 && *traceOut != "" {
		fmt.Fprintln(os.Stderr, "nadino-sim: -trace requires -replicas 1 (one Chrome trace per run)")
		os.Exit(2)
	}
	f, err := os.Open(*cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nadino-sim:", err)
		os.Exit(1)
	}
	cfg, err := core.LoadConfig(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nadino-sim:", err)
		os.Exit(1)
	}
	if *chain == "" {
		if len(cfg.Chains) == 0 {
			fmt.Fprintln(os.Stderr, "nadino-sim: config has no chains")
			os.Exit(1)
		}
		*chain = cfg.Chains[0].Name
	}
	var replay *workload.Replay
	if *traceFile != "" {
		if *traceRPS > 0 {
			fmt.Fprintln(os.Stderr, "nadino-sim: -trace-file and -trace-rps are mutually exclusive")
			os.Exit(2)
		}
		tf, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nadino-sim:", err)
			os.Exit(1)
		}
		replay, err = workload.ParseTrace(tf)
		tf.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "nadino-sim:", err)
			os.Exit(1)
		}
		known := make(map[string]bool, len(cfg.Chains))
		for _, ch := range cfg.Chains {
			known[ch.Name] = true
		}
		for _, name := range replay.Chains() {
			if !known[name] {
				fmt.Fprintf(os.Stderr, "nadino-sim: trace drives chain %q, not in the config\n", name)
				os.Exit(1)
			}
		}
	}

	r := runOpts{
		chain:       *chain,
		clients:     *clients,
		dur:         *dur,
		traceRPS:    *traceRPS,
		zipf:        *zipf,
		diurnal:     *diurnal,
		period:      *period,
		replay:      replay,
		traceOut:    *traceOut,
		telemetry:   *telemetryDir != "",
		openClients: *openClients,
		openThink:   *openThink,
	}
	// Each replica is an independent cluster with its own seed; reports are
	// buffered and printed in replica order so concurrent runs read the
	// same as sequential ones.
	outs := make([]bytes.Buffer, *replicas)
	errs := make([]error, *replicas)
	scs := make([]*telemetry.Scraper, *replicas)
	experiments.ForEach(experiments.Parallelism(*parallel), *replicas, func(i int) {
		rcfg := cfg
		rcfg.Seed = cfg.Seed + int64(i)
		scs[i], errs[i] = runCluster(rcfg, r, &outs[i])
	})
	for i := range outs {
		if *replicas > 1 {
			fmt.Printf("---- replica %d (seed %d) ----\n", i, cfg.Seed+int64(i))
		}
		os.Stdout.Write(outs[i].Bytes())
		if errs[i] != nil {
			fmt.Fprintln(os.Stderr, "nadino-sim:", errs[i])
			os.Exit(1)
		}
	}
	if *telemetryDir != "" {
		// Profiles are exported in replica order (index-addressed slots), so
		// the directory contents are identical for any -parallel setting.
		var profiles []telemetry.Profile
		for i, sc := range scs {
			if sc == nil {
				continue
			}
			name := fmt.Sprintf("%v", cfg.System)
			if *replicas > 1 {
				name = fmt.Sprintf("%v-replica%d", cfg.System, i)
			}
			profiles = append(profiles, telemetry.Profile{Name: name, Scraper: sc})
		}
		written, err := telemetry.ExportDir(*telemetryDir, profiles)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nadino-sim:", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry : %d profile(s) exported to %s (%d files)\n", len(profiles), *telemetryDir, len(written))
	}
}
