// nadino-svc runs a simulated NADINO cluster as a live daemon: the pacer
// bridges the deterministic virtual clock to wall time (optionally dilated),
// while HTTP exposes a real-time Prometheus /metrics endpoint, health and
// readiness probes, pprof, a management API for hot-reloading chaos
// schedules, tenant weights, routes and SLO rules, and the flight recorder
// as an on-demand Chrome trace.
//
// Quickstart:
//
//	nadino-svc -template > cluster.json
//	nadino-svc -config cluster.json -addr 127.0.0.1:9420 -rps 2000 &
//	curl -s 127.0.0.1:9420/metrics | head
//	curl -s -X POST 127.0.0.1:9420/api/v1/chaos -d @schedule.json
//	curl -s '127.0.0.1:9420/api/v1/flightdump?format=text&last=40'
//
// -smoke runs the whole sequence in-process against an ephemeral port and
// exits 0/1 — the CI end-to-end check.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nadino/internal/core"
	"nadino/internal/svc"
	"nadino/internal/telemetry"
)

const template = `{
  "system": "nadino-dne",
  "tenant": "demo",
  "nodes": ["node1", "node2"],
  "functions": [
    {"name": "front", "node": "node1", "service": "25us", "workers": 16},
    {"name": "back", "node": "node2", "service": "100us", "workers": 4}
  ],
  "chains": [
    {"name": "main", "entry": "front", "req_bytes": 512, "resp_bytes": 2048,
     "calls": [
       {"callee": "back", "req_bytes": 1024, "resp_bytes": 1024}
     ]}
  ],
  "ingress_workers": 2,
  "seed": 1
}
`

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nadino-svc: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	cfgPath := flag.String("config", "", "cluster config JSON (see -template)")
	addr := flag.String("addr", "127.0.0.1:9420", "HTTP listen address")
	dilation := flag.Float64("dilation", 1.0, "virtual seconds advanced per wall second")
	slice := flag.Duration("slice", 10*time.Millisecond, "max virtual time per engine hold (handler latency bound)")
	scrape := flag.Duration("scrape", 10*time.Millisecond, "telemetry scrape period (virtual time)")
	retain := flag.Int("retain", 600, "samples retained per series")
	chain := flag.String("chain", "", "built-in load generator chain (default: first chain in config)")
	rps := flag.Float64("rps", 0, "built-in generator rate, requests per virtual second (0 = external load only)")
	dumpDir := flag.String("dump-dir", "", "write flight-recorder dumps here on SLO breach (empty = ring only)")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault injector seed")
	smoke := flag.Bool("smoke", false, "run the in-process end-to-end smoke sequence and exit")
	printTemplate := flag.Bool("template", false, "print a starter config and exit")
	flag.Parse()

	if *printTemplate {
		fmt.Print(template)
		return
	}

	var cfg core.Config
	if *cfgPath == "" {
		if !*smoke {
			fatalf("-config is required (try -template); -smoke runs without one")
		}
		c, err := core.LoadConfig(strings.NewReader(template))
		if err != nil {
			fatalf("builtin template: %v", err)
		}
		cfg = c
	} else {
		f, err := os.Open(*cfgPath)
		if err != nil {
			fatalf("%v", err)
		}
		c, err := core.LoadConfig(f)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
		cfg = c
	}
	if *chain == "" && len(cfg.Chains) > 0 {
		*chain = cfg.Chains[0].Name
	}

	opts := svc.Options{
		Addr:          *addr,
		Dilation:      *dilation,
		Slice:         *slice,
		ScrapePeriod:  *scrape,
		RetainSamples: *retain,
		DumpDir:       *dumpDir,
		Chain:         *chain,
		RPS:           *rps,
		ChaosSeed:     *chaosSeed,
	}
	if *smoke {
		opts.Addr = "127.0.0.1:0"
		if opts.RPS == 0 {
			opts.RPS = 1000
		}
		opts.Dilation = 100
		os.Exit(runSmoke(cfg, opts))
	}

	clu := core.NewCluster(cfg)
	s := svc.New(clu, opts)
	if err := s.Start(); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("nadino-svc: serving %s on http://%s (dilation %gx, generator %s@%g rps)\n",
		cfg.System, s.Addr(), opts.Dilation, orNone(opts.Chain, opts.RPS), opts.RPS)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("nadino-svc: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fatalf("shutdown: %v", err)
	}
	clu.Eng.Stop()
}

func orNone(chain string, rps float64) string {
	if rps <= 0 || chain == "" {
		return "off"
	}
	return chain
}

// runSmoke is the CI end-to-end: boot the daemon on an ephemeral port, wait
// for readiness, scrape live metrics, hot-install a chaos schedule, pull a
// flight dump, and shut down cleanly. Returns the process exit code.
func runSmoke(cfg core.Config, opts svc.Options) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "smoke: FAIL: "+format+"\n", args...)
		return 1
	}

	clu := core.NewCluster(cfg)
	defer clu.Eng.Stop()
	s := svc.New(clu, opts)
	if err := s.Start(); err != nil {
		return fail("start: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	base := "http://" + s.Addr()
	fmt.Printf("smoke: daemon on %s\n", base)

	// 1. Readiness flips once cluster setup completes.
	ready := false
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				ready = true
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !ready {
		return fail("/readyz never returned 200")
	}
	fmt.Println("smoke: ready")

	// 2. Live metrics carry the Prometheus content type and core families.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return fail("/metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.LiveContentType {
		return fail("/metrics content type %q", ct)
	}
	for _, want := range []string{"nadino_build_info", "nadino_cluster_goodput_total", "# TYPE"} {
		if !strings.Contains(string(body), want) {
			return fail("/metrics missing %q", want)
		}
	}
	fmt.Printf("smoke: scraped %d bytes of metrics\n", len(body))

	// 3. Hot-reload a chaos schedule against the running engine.
	sched := `{"events": [{"at_ms": 1, "for_ms": 5,
		"fault": {"kind": "link-down", "from": "node1", "to": "node2"}}]}`
	resp, err = http.Post(base+"/api/v1/chaos", "application/json", strings.NewReader(sched))
	if err != nil {
		return fail("chaos POST: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail("chaos POST: %d: %s", resp.StatusCode, body)
	}
	fmt.Println("smoke: chaos schedule installed")

	// 4. Flight dump shows the recorder is live (the chaos apply/revert and
	// the API marks are already in the ring).
	time.Sleep(100 * time.Millisecond) // let the fault window open and close
	resp, err = http.Get(base + "/api/v1/flightdump")
	if err != nil {
		return fail("flightdump: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &trace); err != nil {
		return fail("flightdump parse: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		return fail("flightdump has no events")
	}
	fmt.Printf("smoke: flight dump has %d trace events\n", len(trace.TraceEvents))

	// 5. Status sanity: traffic flowed while we poked around.
	resp, err = http.Get(base + "/api/v1/status")
	if err != nil {
		return fail("status: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var st struct {
		Ready     bool   `json:"ready"`
		Completed uint64 `json:"completed"`
		Invoked   uint64 `json:"invoked"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return fail("status parse: %v", err)
	}
	if !st.Ready || st.Invoked == 0 {
		return fail("status: %+v", st)
	}
	fmt.Printf("smoke: %d invoked, %d completed\n", st.Invoked, st.Completed)

	// 6. Clean shutdown.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return fail("shutdown: %v", err)
	}
	fmt.Println("smoke: PASS")
	return 0
}
