// Command nadino-bench regenerates the paper's evaluation artifacts: every
// table and figure in §4 (and appendix A), printed as text tables with the
// same rows/series the paper reports.
//
// Usage:
//
//	nadino-bench                 # run everything at full fidelity
//	nadino-bench -run fig12      # one experiment
//	nadino-bench -run fig13,fig14 -quick
//	nadino-bench -run resilience # chaos-driven res-* suite
//	nadino-bench -run res-storm,res-recovery,res-tenant
//	nadino-bench -run fabric     # multi-node gateway fabric: placement + failover
//	nadino-bench -run fabric-shard -trace   # per-hop gw.queue/gw.hop attribution
//	nadino-bench -run clone      # speculative clone/hedge tail-cutting sweep
//	nadino-bench -run clone-chaos -telemetry telemetry/   # spec.* family under a straggler storm
//	nadino-bench -parallel 0     # shard sweep points across all cores
//	nadino-bench -run fig06 -trace
//	nadino-bench -run resilience -telemetry telemetry/
//	nadino-bench -run fuzz -fuzz-seeds 200 -parallel 0   # simulation fuzz sweep
//	nadino-bench -run fuzz -seed 1234 -fuzz-seeds 1      # reproduce one scenario
//	nadino-bench -run scale              # million-client event-core sweep (1M clients @ 100 nodes)
//	nadino-bench -run scale -quick       # same ladder at toy sizes
//	nadino-bench -run fig15 -cpuprofile cpu.prof -memprofile mem.prof
//	nadino-bench -list
//
// Each sweep point is an independent simulation engine, so -parallel N
// shards points across N workers (0 = one per core) and merges results in
// input order: for a fixed seed the output is bitwise-identical to a
// sequential run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"nadino/internal/experiments"
	"nadino/internal/telemetry"
	"nadino/internal/trace"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment IDs, 'all' (paper artifacts), 'ablations', 'resilience' (res-*), 'fabric' (fabric-*), 'clone' (clone-*), or 'everything'")
	quick := flag.Bool("quick", false, "shrink measurement windows and sweeps")
	seed := flag.Int64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", 1, "workers sharding each experiment's sweep points (0 = all cores, 1 = sequential); output is identical either way")
	list := flag.Bool("list", false, "list experiments and exit")
	doTrace := flag.Bool("trace", false, "record per-stage latency attribution (experiments that support it) and export a Chrome trace")
	traceOut := flag.String("trace-out", "nadino-trace.json", "Chrome trace-event output path (with -trace)")
	telemetryDir := flag.String("telemetry", "", "scrape labeled metrics during runs (experiments that support it) and export CSV/JSON/Prometheus/dashboard into this directory")
	fuzzSeeds := flag.Int("fuzz-seeds", 0, "scenarios for -run fuzz, generated from seeds seed..seed+n-1 (0 = mode default)")
	fuzzDefect := flag.String("fuzz-defect", "", "plant a named harness defect in every fuzz scenario (e.g. leak-buffer) to demo detection and shrinking")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (after a final GC) to this file on exit")
	flag.Parse()

	if *list {
		for _, e := range append(experiments.AllWithAblations(), experiments.Fuzz()...) {
			fmt.Printf("  %-15s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	switch *run {
	case "all":
		selected = experiments.All()
	case "everything":
		selected = experiments.AllWithAblations()
	case "ablations":
		selected = experiments.Ablations()
	case "resilience":
		selected = experiments.Resilience()
	case "fabric":
		selected = experiments.Fabric()
	case "clone":
		selected = experiments.Speculation()
	default:
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "nadino-bench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opts := experiments.Opts{Quick: *quick, Seed: *seed, Parallel: experiments.Parallelism(*parallel),
		FuzzSeeds: *fuzzSeeds, FuzzDefect: *fuzzDefect}
	var profiles []trace.Profile
	if *doTrace {
		opts.Trace = true
		opts.TraceSink = func(name string, tr *trace.Tracer) {
			profiles = append(profiles, trace.Profile{Name: name, Tracer: tr})
		}
	}
	var telemProfiles []telemetry.Profile
	if *telemetryDir != "" {
		opts.Telemetry = true
		opts.TelemetrySink = func(name string, sc *telemetry.Scraper) {
			telemProfiles = append(telemProfiles, telemetry.Profile{Name: name, Scraper: sc})
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nadino-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "nadino-bench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "CPU profile written to %s (go tool pprof %s)\n", *cpuProfile, *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "nadino-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "nadino-bench:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "heap profile written to %s (go tool pprof %s)\n", *memProfile, *memProfile)
		}()
	}
	for _, e := range selected {
		fmt.Printf("\n######## %s ########\n", e.Title)
		start := time.Now()
		profiled := len(profiles)
		for _, tb := range e.Run(opts) {
			tb.Print(os.Stdout)
		}
		for _, pr := range profiles[profiled:] {
			experiments.TraceTable(pr.Name, pr.Tracer.Report()).Print(os.Stdout)
		}
		fmt.Printf("  [%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if *doTrace {
		if len(profiles) == 0 {
			fmt.Fprintln(os.Stderr, "nadino-bench: -trace set but no selected experiment records traces (try -run fig06)")
		} else {
			// When telemetry is also on, its series ride along in the same
			// trace file as Chrome counter timelines.
			var counters []trace.CounterTrack
			for _, tp := range telemProfiles {
				counters = append(counters, telemetry.CounterTracks(tp.Name+"/", tp.Scraper)...)
			}
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "nadino-bench:", err)
				os.Exit(1)
			}
			if err := trace.WriteChromeWithCounters(f, profiles, counters); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "nadino-bench:", err)
				os.Exit(1)
			}
			fmt.Printf("\nChrome trace (load in chrome://tracing or https://ui.perfetto.dev): %s\n", *traceOut)
		}
	}
	if *telemetryDir != "" {
		if len(telemProfiles) == 0 {
			fmt.Fprintln(os.Stderr, "nadino-bench: -telemetry set but no selected experiment records telemetry (try -run resilience)")
			return
		}
		written, err := telemetry.ExportDir(*telemetryDir, telemProfiles)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nadino-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("\nTelemetry (%d profiles) exported to %s:\n", len(telemProfiles), *telemetryDir)
		for _, p := range written {
			fmt.Printf("  %s\n", p)
		}
	}
}
