package gateway

// Place assigns chain stages to nodes with locality first: each stage
// prefers the node of the stage that calls it (so adjacent hops stay
// intra-node and never touch the fabric), spilling to the least-loaded node
// — ties broken by lowest index — once the preferred node holds
// slotsPerNode functions. chains lists each chain as its ordered stages
// (entry first); a function appearing in several chains keeps its first
// assignment. The rule is a pure function of its inputs, so placement is
// deterministic and the route tables built from it are too.
func Place(nodes []string, chains [][]string, slotsPerNode int) map[string]string {
	if slotsPerNode <= 0 {
		total := 0
		seen := make(map[string]bool)
		for _, ch := range chains {
			for _, fn := range ch {
				if !seen[fn] {
					seen[fn] = true
					total++
				}
			}
		}
		slotsPerNode = (total + len(nodes) - 1) / len(nodes)
	}
	load := make(map[string]int, len(nodes))
	out := make(map[string]string)
	for _, ch := range chains {
		prev := ""
		for _, fn := range ch {
			if n, ok := out[fn]; ok {
				prev = n
				continue
			}
			node := ""
			if prev != "" && load[prev] < slotsPerNode {
				node = prev
			} else {
				for _, n := range nodes {
					if node == "" || load[n] < load[node] {
						node = n
					}
				}
			}
			out[fn] = node
			load[node]++
			prev = node
		}
	}
	return out
}

// PlaceSkewed is the anti-locality adversary: consecutive stages round-robin
// across nodes, so every adjacent chain hop crosses the fabric. It bounds
// the placement-quality gap the fabric experiments measure.
func PlaceSkewed(nodes []string, chains [][]string) map[string]string {
	out := make(map[string]string)
	i := 0
	for _, ch := range chains {
		for _, fn := range ch {
			if _, ok := out[fn]; ok {
				continue
			}
			out[fn] = nodes[i%len(nodes)]
			i++
		}
	}
	return out
}
