package gateway

import (
	"fmt"
	"testing"
	"time"

	"nadino/internal/fabric"
	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/rdma"
	"nadino/internal/sim"
)

// stubEgress stands in for the node's dne.Engine: it records deliveries and
// recycles buffers so pools stay conserved.
type stubEgress struct {
	pool      *mempool.Pool
	gw        *Gateway
	delivered []mempool.Descriptor
	released  int
	onRelease func()
}

func (s *stubEgress) GatewayDeliver(d mempool.Descriptor) {
	s.delivered = append(s.delivered, d)
	if err := s.pool.Put(d.Buf, s.gw.Owner()); err != nil {
		panic(err)
	}
}

func (s *stubEgress) GatewayRelease(d mempool.Descriptor) {
	s.released++
	if err := s.pool.Put(d.Buf, "eng"); err != nil {
		panic(err)
	}
	if s.onRelease != nil {
		s.onRelease()
	}
}

// gwRig wires n nodes with RNICs, one tenant pool each, a gateway each, and
// a full mesh of inter-gateway QP pools. ready pulses once the mesh is up.
type gwRig struct {
	eng   *sim.Engine
	p     *params.Params
	net   *fabric.Network
	nodes []fabric.NodeID
	gws   []*Gateway
	pools []*mempool.Pool
	egs   []*stubEgress
	ready *sim.Signal
}

func newGwRig(tb testing.TB, seed int64, n, window int) *gwRig {
	tb.Helper()
	p := params.Default()
	eng := sim.NewEngine(seed)
	tb.Cleanup(eng.Stop)
	net := fabric.New(eng, p)
	r := &gwRig{eng: eng, p: p, net: net, ready: sim.NewSignal(eng)}
	for i := 0; i < n; i++ {
		node := fabric.NodeID(fmt.Sprintf("n%d", i+1))
		rnic := rdma.NewRNIC(eng, p, node, net)
		pool := mempool.NewPool("t", 4096, 64, p.HugepageSize)
		g := New(eng, p, node, net, rnic, window)
		g.AddTenant("t", pool)
		eg := &stubEgress{pool: pool, gw: g}
		g.SetEgress(eg)
		r.nodes = append(r.nodes, node)
		r.gws = append(r.gws, g)
		r.pools = append(r.pools, pool)
		r.egs = append(r.egs, eg)
	}
	eng.Spawn("setup", func(pr *sim.Proc) {
		for i := range r.gws {
			for j := i + 1; j < len(r.gws); j++ {
				Connect(pr, r.gws[i], r.gws[j], 2)
			}
		}
		for _, g := range r.gws {
			g.Start()
		}
		r.ready.Pulse()
	})
	return r
}

// route records fn -> node in every gateway's table (placement wiring).
func (r *gwRig) route(fn string, node fabric.NodeID) {
	for _, g := range r.gws {
		g.Routes().Set(fn, node)
	}
}

// conserve asserts the fleet-wide conservation law at quiesce.
func (r *gwRig) conserve(tb testing.TB) {
	tb.Helper()
	var in, out, drop uint64
	for _, g := range r.gws {
		s := g.Stats()
		in += s.AcceptIn
		out += s.Delivered
		drop += s.Dropped
		if n := g.Pending(); n != 0 {
			tb.Errorf("gateway %s: %d forwards still pending at quiesce", g.Node(), n)
		}
		if n := g.InflightWrites(); n != 0 {
			tb.Errorf("gateway %s: %d writes still in flight at quiesce", g.Node(), n)
		}
	}
	if in != out+drop {
		tb.Errorf("conservation broken: acceptIn=%d delivered=%d dropped=%d", in, out, drop)
	}
}

func TestRouteTableFailoverAndVersion(t *testing.T) {
	p := params.Default()
	eng := sim.NewEngine(1)
	defer eng.Stop()
	net := fabric.New(eng, p)
	for _, n := range []fabric.NodeID{"a", "b", "c"} {
		net.AddNode(n)
	}
	rt := NewRouteTable("a")
	rt.AddPeer("b")
	rt.AddPeer("c")
	v0 := rt.Version()

	rt.Set("f1", "c")
	if rt.Version() == v0 {
		t.Fatal("Set of a new function did not bump the version")
	}
	rt.Set("f1", "c") // no-op
	v1 := rt.Version()
	if rt.Version() != v1 {
		t.Fatal("idempotent Set bumped the version")
	}

	// Healthy fabric: direct hops.
	if rt.Refresh(net) {
		t.Fatal("Refresh on a healthy fabric reported a change")
	}
	if hop := rt.NextHop("c"); hop != "c" {
		t.Fatalf("healthy NextHop(c) = %s, want c", hop)
	}

	// Cut a->c: the one-bounce detour must go via b, deterministically.
	net.SetLinkDown("a", "c", true)
	if !rt.Refresh(net) {
		t.Fatal("Refresh did not notice the cut link")
	}
	if hop := rt.NextHop("c"); hop != "b" {
		t.Fatalf("post-cut NextHop(c) = %s, want detour via b", hop)
	}
	if rt.Version() == v1 {
		t.Fatal("failover did not bump the version")
	}

	// Heal: back to direct within one refresh.
	net.SetLinkDown("a", "c", false)
	if !rt.Refresh(net) {
		t.Fatal("Refresh did not notice the healed link")
	}
	if hop := rt.NextHop("c"); hop != "c" {
		t.Fatalf("post-heal NextHop(c) = %s, want c", hop)
	}

	// A dead node has no detour: route direct and let the transport retry.
	net.SetDown("c", true)
	rt.Refresh(net)
	if hop := rt.NextHop("c"); hop != "c" {
		t.Fatalf("NextHop to a dead node = %s, want direct c", hop)
	}
}

func TestPlaceLocality(t *testing.T) {
	nodes := []string{"n1", "n2"}
	got := Place(nodes, [][]string{{"f1", "f2", "f3", "f4"}}, 2)
	want := map[string]string{"f1": "n1", "f2": "n1", "f3": "n2", "f4": "n2"}
	for fn, n := range want {
		if got[fn] != n {
			t.Errorf("Place(%s) = %s, want %s (locality-first, spill least-loaded)", fn, got[fn], n)
		}
	}

	// A function shared across chains keeps its first assignment.
	got = Place(nodes, [][]string{{"a", "b"}, {"c", "a"}}, 0)
	if got["a"] != "n1" {
		t.Errorf("shared function moved: a on %s, want first assignment n1", got["a"])
	}

	// Determinism: same inputs, same map.
	a := fmt.Sprint(Place(nodes, [][]string{{"f1", "f2", "f3", "f4"}}, 2))
	b := fmt.Sprint(Place(nodes, [][]string{{"f1", "f2", "f3", "f4"}}, 2))
	if a != b {
		t.Errorf("Place is not deterministic: %s vs %s", a, b)
	}
}

func TestPlaceSkewed(t *testing.T) {
	got := PlaceSkewed([]string{"n1", "n2"}, [][]string{{"f1", "f2", "f3"}})
	if got["f1"] == got["f2"] || got["f2"] == got["f3"] {
		t.Errorf("PlaceSkewed left adjacent stages co-located: %v", got)
	}
}

func TestForwardDeliverConservation(t *testing.T) {
	r := newGwRig(t, 1, 2, 8)
	r.route("fnB", "n2")
	const msgs = 10
	r.eng.Spawn("driver", func(pr *sim.Proc) {
		r.ready.Wait(pr)
		for i := 0; i < msgs; i++ {
			src, err := r.pools[0].Get("eng")
			if err != nil {
				t.Errorf("source pool dry at msg %d", i)
				return
			}
			d := mempool.Descriptor{Tenant: "t", Buf: src, Len: 256, Dst: "fnB", Seq: uint64(i)}
			if !r.gws[0].ForwardRemote(d, "n2") {
				t.Errorf("ForwardRemote refused a peer destination")
				return
			}
			pr.Sleep(2 * time.Microsecond)
		}
	})
	// QP setup for the mesh takes tens of sim-milliseconds; leave headroom.
	r.eng.RunUntil(200 * time.Millisecond)

	sA, sB := r.gws[0].Stats(), r.gws[1].Stats()
	if sA.AcceptIn != msgs || sA.Forwarded != msgs {
		t.Errorf("sender stats = %+v, want acceptIn=forwarded=%d", sA, msgs)
	}
	if sB.Delivered != msgs {
		t.Errorf("receiver delivered %d, want %d", sB.Delivered, msgs)
	}
	if len(r.egs[1].delivered) != msgs {
		t.Fatalf("egress got %d descriptors, want %d", len(r.egs[1].delivered), msgs)
	}
	for i, d := range r.egs[1].delivered {
		if d.Dst != "fnB" || d.Len != 256 || d.Seq != uint64(i) {
			t.Errorf("delivered[%d] = {Dst:%s Len:%d Seq:%d}, metadata mangled", i, d.Dst, d.Len, d.Seq)
		}
	}
	if r.egs[0].released != msgs {
		t.Errorf("source released %d buffers, want %d", r.egs[0].released, msgs)
	}
	// Window fully restocked, pools conserved.
	if got := r.gws[1].SlotsHeld("t"); got != 8 {
		t.Errorf("receiver holds %d slots, want restocked window 8", got)
	}
	for i, pool := range r.pools {
		if held := r.gws[i].SlotsHeld("t"); pool.InUse() != held {
			t.Errorf("pool %d: inUse=%d but gateway holds %d — leak", i, pool.InUse(), held)
		}
	}
	r.conserve(t)
}

// TestWindowBackpressure drives more forwards than the landing window holds
// in one burst: the pump must park on the credit and drain as slots restock,
// losing nothing.
func TestWindowBackpressure(t *testing.T) {
	r := newGwRig(t, 1, 2, 2)
	r.route("fnB", "n2")
	const msgs = 20
	r.eng.Spawn("driver", func(pr *sim.Proc) {
		r.ready.Wait(pr)
		for i := 0; i < msgs; i++ {
			src, err := r.pools[0].Get("eng")
			if err != nil {
				t.Errorf("source pool dry at msg %d", i)
				return
			}
			r.gws[0].ForwardRemote(mempool.Descriptor{Tenant: "t", Buf: src, Len: 1024, Dst: "fnB"}, "n2")
		}
	})
	r.eng.RunUntil(200 * time.Millisecond)
	if got := r.gws[1].Stats().Delivered; got != msgs {
		t.Errorf("delivered %d of %d under a 2-slot window", got, msgs)
	}
	r.conserve(t)
}

// TestTransitRelayAroundPartition cuts the n1<->n3 link: forwards to n3 must
// detour through n2 as a transit leg and still deliver, with the hop count
// recording the bounce.
func TestTransitRelayAroundPartition(t *testing.T) {
	r := newGwRig(t, 1, 3, 8)
	r.route("fnC", "n3")
	r.net.SetLinkDown("n1", "n3", true)
	r.net.SetLinkDown("n3", "n1", true)
	r.eng.Spawn("driver", func(pr *sim.Proc) {
		r.ready.Wait(pr)
		src, _ := r.pools[0].Get("eng")
		r.gws[0].ForwardRemote(mempool.Descriptor{Tenant: "t", Buf: src, Len: 512, Dst: "fnC"}, "n3")
	})
	r.eng.RunUntil(200 * time.Millisecond)

	if got := r.gws[2].Stats().Delivered; got != 1 {
		for i, g := range r.gws {
			t.Logf("gw%d %s: %+v hop(n3)=%s", i+1, g.Node(), g.Stats(), g.Routes().NextHop("n3"))
		}
		t.Fatalf("n3 delivered %d, want 1 (via detour)", got)
	}
	if got := r.gws[1].Stats().Transit; got != 1 {
		t.Errorf("n2 transit = %d, want 1 relay leg", got)
	}
	if d := r.egs[2].delivered[0]; d.Hops != 1 {
		t.Errorf("delivered descriptor Hops = %d, want 1", d.Hops)
	}
	r.conserve(t)
}

// TestDeterministicReplay runs the same partition-relay scenario twice with
// one seed and asserts byte-identical stats.
func TestDeterministicReplay(t *testing.T) {
	run := func() string {
		r := newGwRig(t, 7, 3, 4)
		r.route("fnC", "n3")
		r.eng.Spawn("driver", func(pr *sim.Proc) {
			r.ready.Wait(pr)
			for i := 0; i < 50; i++ {
				if src, err := r.pools[0].Get("eng"); err == nil {
					r.gws[0].ForwardRemote(mempool.Descriptor{Tenant: "t", Buf: src, Len: 300, Dst: "fnC", Seq: uint64(i)}, "n3")
				}
				pr.Sleep(time.Microsecond)
				if i == 20 {
					r.net.SetLinkDown("n1", "n3", true)
				}
				if i == 40 {
					r.net.SetLinkDown("n1", "n3", false)
				}
			}
		})
		r.eng.RunUntil(300 * time.Millisecond)
		out := ""
		for _, g := range r.gws {
			out += fmt.Sprintf("%s:%+v v%d|", g.Node(), g.Stats(), g.Routes().Version())
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same-seed runs diverged:\n  %s\n  %s", a, b)
	}
}

// BenchmarkGatewayForward measures the closed-loop cross-node forward path
// (submit -> pump -> one-sided write -> land -> deliver -> release). The
// steady state must not allocate: every structure on the path is pooled.
func BenchmarkGatewayForward(b *testing.B) {
	r := newGwRig(b, 1, 2, 8)
	r.route("fnB", "n2")
	done := sim.NewSignal(r.eng)
	r.egs[0].onRelease = done.Pulse
	r.eng.Spawn("driver", func(pr *sim.Proc) {
		r.ready.Wait(pr)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src, err := r.pools[0].Get("eng")
			if err != nil {
				b.Errorf("source pool dry at iter %d", i)
				break
			}
			r.gws[0].ForwardRemote(mempool.Descriptor{Tenant: "t", Buf: src, Len: 1024, Dst: "fnB"}, "n2")
			done.Wait(pr)
		}
		r.eng.Stop()
	})
	b.ReportAllocs()
	r.eng.Run()
}

// BenchmarkChainCrossNode measures a two-hop relay chain n1 -> n2 -> n3
// (transit ingest + onward write included).
func BenchmarkChainCrossNode(b *testing.B) {
	r := newGwRig(b, 1, 3, 8)
	r.route("fnC", "n3")
	r.net.SetLinkDown("n1", "n3", true)
	r.net.SetLinkDown("n3", "n1", true)
	done := sim.NewSignal(r.eng)
	r.egs[0].onRelease = done.Pulse
	r.eng.Spawn("driver", func(pr *sim.Proc) {
		r.ready.Wait(pr)
		pr.Sleep(2 * r.p.GwFailoverInterval)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src, err := r.pools[0].Get("eng")
			if err != nil {
				b.Errorf("source pool dry at iter %d", i)
				break
			}
			r.gws[0].ForwardRemote(mempool.Descriptor{Tenant: "t", Buf: src, Len: 1024, Dst: "fnC"}, "n3")
			done.Wait(pr)
		}
		r.eng.Stop()
	})
	b.ReportAllocs()
	r.eng.Run()
}
