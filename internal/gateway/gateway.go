// Package gateway is NADINO's multi-node tier: a per-node forwarding object
// that routes cross-node chain hops as DPU-to-DPU one-sided RDMA writes
// over pre-established inter-gateway QP pools (Palladium-style zero-copy
// fabric), with a versioned route table, one-bounce partition failover and
// locality-aware placement.
//
// Data path. The local network engine hands a cross-node descriptor to
// ForwardRemote. The gateway worker — running on the DPU's network cores,
// keeping the forwarding decision off the wimpy general-purpose cores
// (λ-NIC) — pops it, resolves the next hop from the route table, reserves a
// landing slot in the receiving gateway's window for that tenant, and posts
// a one-sided write on the least-congested inter-gateway QP. The write DMAs
// straight into a buffer of the destination tenant's pool on the target
// node, so delivery there is an ownership transfer, never a copy. The
// receiving gateway polls its memory regions (batched, notify-coalesced),
// restocks the consumed slot (the credit that back-pressures senders), and
// either hands the descriptor to its local engine or relays it onward
// (transit) when the destination lives another hop away.
//
// Everything on the steady-state forward path is pooled — pending ring,
// wrState slab under PostWrite, CQ ring, landing-slot rings, batch poll
// buffers — so forwarding allocates nothing (BenchmarkGatewayForward).
package gateway

import (
	"time"

	"nadino/internal/fabric"
	"nadino/internal/flightrec"
	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/rdma"
	"nadino/internal/ring"
	"nadino/internal/sim"
	"nadino/internal/trace"
)

// gwRetryBudget is how many times a failed forward (QP retry-exceeded or
// flushed on an errored QP) is re-routed before the gateway drops it. The
// route is re-resolved on every attempt, so a retry after a failover-table
// refresh takes the detour.
const gwRetryBudget = 5

// batch is the poll granularity of the worker loop (CQ drain and landed
// ingest), mirroring the DNE's TX batch.
const batch = 64

// Egress is the gateway's hand-off to the node-local data plane — satisfied
// by dne.Engine. GatewayDeliver receives a descriptor whose buffer is owned
// by the gateway (Owner()); the engine transfers it to the destination
// function. GatewayRelease returns a source buffer the engine handed to
// ForwardRemote once its forward completes or is dropped.
type Egress interface {
	GatewayDeliver(d mempool.Descriptor)
	GatewayRelease(d mempool.Descriptor)
}

// tenantReg is one tenant resident on this node: its local pool, the
// gateway's memory region over that pool (the landing target peers write
// into) and the landing-slot window.
type tenantReg struct {
	name string
	pool *mempool.Pool
	mr   *rdma.MR
	// slots holds pre-reserved landing buffers. Peers pop a slot to address
	// a write (the credit), this gateway restocks after consuming a landed
	// descriptor. In the simulation the ring is shared state standing in
	// for slot advertisements piggybacked on RC acks.
	slots ring.Deque[mempool.Buffer]
	// starved counts restocks deferred because the pool was dry; the
	// keeper retries them — withheld credits are the natural backpressure.
	starved int
}

// link is a peer gateway reachable over a pre-established QP pool.
type link struct {
	peer *Gateway
	cp   *rdma.ConnPool
}

// pendingFwd is one queued forward: the descriptor and its destination
// node. The next hop is resolved at pop time so queued traffic follows
// route-table refreshes.
type pendingFwd struct {
	d   mempool.Descriptor
	dst fabric.NodeID
}

// inflightSlot remembers the landing slot a posted write reserved, so a
// failed write can return the credit. Only error paths consult it; on
// success the receiver consumed (and restocked) the slot.
type inflightSlot struct {
	tr  *tenantReg
	own *Gateway
	buf mempool.Buffer
}

// Gateway is the per-node forwarding tier instance.
type Gateway struct {
	eng    *sim.Engine
	p      *params.Params
	self   fabric.NodeID
	net    *fabric.Network
	rnic   *rdma.RNIC
	owner  mempool.Owner
	label  string
	window int

	core *sim.Processor
	cq   *rdma.CQ
	work *sim.Signal

	routes *RouteTable
	egress Egress

	tenants   map[string]*tenantReg
	tenantSeq []*tenantReg
	links     map[fabric.NodeID]*link
	linkSeq   []*link

	pending  ring.Deque[pendingFwd]
	inflight map[uint64]inflightSlot

	cqeBuf  []rdma.CQE
	landBuf []rdma.Landed
	started bool

	// Conservation counters: acceptIn == delivered + dropped at quiesce,
	// summed across all gateways (transit re-entries are internal).
	acceptIn  uint64
	forwarded uint64 // writes posted, including retries and transit legs
	fwdBytes  uint64
	delivered uint64
	transit   uint64
	retries   uint64
	dropped   uint64

	// Flight recorder hook (optional): drops and route re-convergences
	// land in the ring under this gateway's interned actor id.
	rec      *flightrec.Recorder
	recActor uint16
}

// SetFlightRecorder routes drop and route-update events into r (nil
// detaches). The actor id is interned once so record paths stay
// allocation-free.
func (g *Gateway) SetFlightRecorder(r *flightrec.Recorder) {
	g.rec = r
	g.recActor = r.Actor("gw@" + string(g.self))
}

// frDrop records one dropped cross-node descriptor: A is the hop count so
// far, B the payload bytes.
func (g *Gateway) frDrop(d *mempool.Descriptor) {
	if g.rec != nil {
		g.rec.Record(flightrec.KindGwDrop, g.recActor, int64(d.Hops), int64(d.Len))
	}
}

// New creates the gateway for node self. The forwarding core runs at the
// DPU's network-core speed; window (0 = params.GwWindow) is the landing-slot
// count pre-reserved per resident tenant.
func New(eng *sim.Engine, p *params.Params, self fabric.NodeID, net *fabric.Network, rnic *rdma.RNIC, window int) *Gateway {
	if window <= 0 {
		window = p.GwWindow
	}
	g := &Gateway{
		eng:      eng,
		p:        p,
		self:     self,
		net:      net,
		rnic:     rnic,
		owner:    mempool.Owner("gw@" + string(self)),
		label:    "gw@" + string(self),
		window:   window,
		core:     sim.NewProcessor(eng, "gw@"+string(self), p.DPUNetSpeed),
		cq:       rdma.NewCQ(eng),
		work:     sim.NewSignal(eng),
		routes:   NewRouteTable(self),
		tenants:  make(map[string]*tenantReg),
		links:    make(map[fabric.NodeID]*link),
		inflight: make(map[uint64]inflightSlot),
	}
	g.cq.SetNotify(g.work.Pulse)
	return g
}

// Node reports the gateway's node.
func (g *Gateway) Node() fabric.NodeID { return g.self }

// Owner is the mempool owner string the gateway holds buffers under.
func (g *Gateway) Owner() mempool.Owner { return g.owner }

// Routes exposes the route table (placement wiring, telemetry, invariants).
func (g *Gateway) Routes() *RouteTable { return g.routes }

// Core exposes the forwarding processor (chaos SlowCores, telemetry).
func (g *Gateway) Core() *sim.Processor { return g.core }

// SetEgress binds the node-local data plane the gateway delivers into.
func (g *Gateway) SetEgress(e Egress) { g.egress = e }

// AddTenant registers a tenant resident on this node: its pool becomes a
// landing region (MR) and window slots are reserved up front. Must run
// before traffic; a pool too small for the window leaves the remainder as
// restock debt the keeper retries.
func (g *Gateway) AddTenant(name string, pool *mempool.Pool) {
	if _, ok := g.tenants[name]; ok {
		return
	}
	mr := g.rnic.RegisterMR(pool)
	mr.SetNotify(g.work.Pulse)
	tr := &tenantReg{name: name, pool: pool, mr: mr}
	for i := 0; i < g.window; i++ {
		b, err := pool.Get(g.owner)
		if err != nil {
			tr.starved = g.window - i
			break
		}
		tr.slots.PushBack(b)
	}
	g.tenants[name] = tr
	g.tenantSeq = append(g.tenantSeq, tr)
}

// Connect establishes the inter-gateway QP pool between a and b (blocking
// the calling process for one pooled setup handshake) and registers each as
// the other's peer: route-table entry plus access to the peer's landing
// windows. The QPs complete into each gateway's own CQ; they carry only
// one-sided writes, so no SRQ is attached.
func Connect(pr *sim.Proc, a, b *Gateway, qps int) {
	cpA, cpB := rdma.EstablishPair(pr, a.p, "gw", a.rnic, b.rnic, qps, nil, nil, a.cq, b.cq)
	a.addLink(b, cpA)
	b.addLink(a, cpB)
}

func (g *Gateway) addLink(peer *Gateway, cp *rdma.ConnPool) {
	if _, ok := g.links[peer.self]; ok {
		return
	}
	lk := &link{peer: peer, cp: cp}
	g.links[peer.self] = lk
	g.linkSeq = append(g.linkSeq, lk)
	g.routes.AddPeer(peer.self)
}

// Link returns the QP pool toward peer, nil when not connected (chaos
// crash sets need the per-peer pool, not the whole wiring list).
func (g *Gateway) Link(peer fabric.NodeID) *rdma.ConnPool {
	if lk := g.links[peer]; lk != nil {
		return lk.cp
	}
	return nil
}

// CQ exposes the gateway's completion queue (invariant checks).
func (g *Gateway) CQ() *rdma.CQ { return g.cq }

// Links returns the inter-gateway QP pools in wiring order (chaos targets).
func (g *Gateway) Links() []*rdma.ConnPool {
	out := make([]*rdma.ConnPool, len(g.linkSeq))
	for i, lk := range g.linkSeq {
		out[i] = lk.cp
	}
	return out
}

// Start spawns the worker and keeper processes. Idempotent.
func (g *Gateway) Start() {
	if g.started {
		return
	}
	g.started = true
	g.cqeBuf = make([]rdma.CQE, batch)
	g.landBuf = make([]rdma.Landed, batch)
	g.routes.Refresh(g.net)
	g.eng.Spawn("gw@"+string(g.self), g.workerLoop)
	g.eng.Spawn("gw-keeper@"+string(g.self), g.keeperLoop)
}

// ForwardRemote implements dne.Forwarder: accept a cross-node descriptor
// for forwarding. It refuses (returns false) destinations that are not
// peer gateways — e.g. the ingress backend — which the engine then reaches
// over its own per-tenant QPs. Engine-worker context; nothing blocks here.
func (g *Gateway) ForwardRemote(d mempool.Descriptor, dst fabric.NodeID) bool {
	if g.links[dst] == nil {
		return false
	}
	g.acceptIn++
	g.submit(d, dst)
	return true
}

// submit queues a forward and wakes the worker. Also the internal re-entry
// for retries and transit relays.
func (g *Gateway) submit(d mempool.Descriptor, dst fabric.NodeID) {
	d.Trace.BeginStage(trace.StageGwQueue, g.label)
	g.pending.PushBack(pendingFwd{d: d, dst: dst})
	g.work.Pulse()
}

// wakePeers pulses every peer gateway's worker: called when this gateway's
// slot credits change, since peers may be parked waiting for one.
func (g *Gateway) wakePeers() {
	for _, lk := range g.linkSeq {
		lk.peer.work.Pulse()
	}
}

// workerLoop is the gateway's run-to-completion forwarding core: drain
// write completions, ingest landed writes, then pump the pending queue
// while next-hop credits allow.
func (g *Gateway) workerLoop(pr *sim.Proc) {
	for {
		did := false
		for {
			n := g.cq.PollInto(g.cqeBuf)
			if n == 0 {
				break
			}
			did = true
			for i := 0; i < n; i++ {
				g.handleCQE(pr, g.cqeBuf[i])
			}
		}
		for _, tr := range g.tenantSeq {
			for {
				n := tr.mr.PollLandedInto(g.landBuf)
				if n == 0 {
					break
				}
				did = true
				for i := 0; i < n; i++ {
					g.ingest(pr, tr, g.landBuf[i])
				}
			}
		}
		for g.pending.Len() > 0 {
			if !g.pump(pr) {
				break
			}
			did = true
		}
		if !did {
			g.work.Wait(pr)
		}
	}
}

// pump forwards the head of the pending queue. False means the head is
// blocked on a landing-slot credit — the worker parks until one returns.
func (g *Gateway) pump(pr *sim.Proc) bool {
	pf := g.pending.Front()
	hop := g.routes.NextHop(pf.dst)
	lk := g.links[hop]
	var tr *tenantReg
	if lk != nil {
		tr = lk.peer.tenants[pf.d.Tenant]
	}
	if tr == nil && hop != pf.dst {
		// The detour node does not host this tenant (no pool to land in):
		// fall back to the direct link and let the transport fight through.
		hop = pf.dst
		lk = g.links[hop]
		if lk != nil {
			tr = lk.peer.tenants[pf.d.Tenant]
		}
	}
	if lk == nil || tr == nil {
		// No peer can land this tenant at all: account and drop.
		g.pending.PopFront()
		d := pf.d
		d.Trace.EndStage(trace.StageGwQueue)
		g.dropped++
		g.frDrop(&d)
		g.releaseSource(d)
		return true
	}
	if tr.slots.Len() == 0 {
		return false
	}
	g.pending.PopFront()
	d := pf.d
	d.Trace.EndStage(trace.StageGwQueue)
	buf := tr.slots.PopFront()
	g.core.Exec(pr, g.p.GwForwardCost+g.p.VerbsPostCost)
	d.Trace.BeginStageDetail(trace.StageGwHop, g.label)
	qp := lk.cp.Pick()
	id := qp.PostWrite(d, rdma.RemoteBuf{MR: tr.mr, Buf: buf})
	g.inflight[id] = inflightSlot{tr: tr, own: lk.peer, buf: buf}
	g.forwarded++
	g.fwdBytes += uint64(d.Len)
	return true
}

// handleCQE processes one write completion at the sender.
func (g *Gateway) handleCQE(pr *sim.Proc, e rdma.CQE) {
	if e.Op != rdma.OpWrite {
		return
	}
	sl, reserved := g.inflight[e.WRID]
	if reserved {
		delete(g.inflight, e.WRID)
	}
	d := e.Desc
	if e.Status == rdma.StatusOK {
		g.core.Exec(pr, g.p.VerbsPostCost/2)
		g.releaseSource(d)
		return
	}
	// Failed forward: the landing slot was never consumed — return the
	// credit — then re-route within the budget. The destination is
	// re-resolved on the retry, so a post-refresh route takes the detour.
	if reserved {
		sl.tr.slots.PushBack(sl.buf)
		sl.own.wakePeers()
	}
	d.Trace.EndStage(trace.StageGwHop)
	if d.Retries < gwRetryBudget {
		if dst, ok := g.routes.NodeOf(d.Dst); ok {
			d.Retries++
			g.retries++
			g.submit(d, dst)
			return
		}
	}
	g.dropped++
	g.frDrop(&d)
	g.releaseSource(d)
}

// ingest consumes one landed write: restock the window, then deliver
// locally or relay onward.
func (g *Gateway) ingest(pr *sim.Proc, tr *tenantReg, l rdma.Landed) {
	d := l.Desc
	d.Buf = l.Buf
	// The sender engine's interned IDs are engine-local; clear them so the
	// local engine re-resolves by name.
	d.TenantID, d.DstID = 0, 0
	d.Trace.EndStage(trace.StageGwHop)
	g.core.Exec(pr, g.p.GwDeliverCost)
	if b, err := tr.pool.Get(g.owner); err == nil {
		tr.slots.PushBack(b)
		g.wakePeers()
	} else {
		tr.starved++
	}
	dst, ok := g.routes.NodeOf(d.Dst)
	if !ok {
		g.dropped++
		g.frDrop(&d)
		tr.pool.Put(d.Buf, g.owner)
		return
	}
	if dst == g.self {
		g.delivered++
		g.egress.GatewayDeliver(d)
		return
	}
	// Transit: relay toward the owner using the landed buffer as the
	// onward source; the TTL fences transient loops during failover.
	if int(d.Hops)+1 > g.p.GwMaxHops {
		g.dropped++
		g.frDrop(&d)
		tr.pool.Put(d.Buf, g.owner)
		return
	}
	d.Hops++
	g.transit++
	g.submit(d, dst)
}

// releaseSource returns a forwarded descriptor's source buffer: to the
// local pool when the gateway owns it (a transit leg), otherwise back to
// the engine that handed it over.
func (g *Gateway) releaseSource(d mempool.Descriptor) {
	if tr := g.tenants[d.Tenant]; tr != nil {
		if own, err := tr.pool.OwnerOf(d.Buf); err == nil && own == g.owner {
			tr.pool.Put(d.Buf, g.owner)
			return
		}
	}
	g.egress.GatewayRelease(d)
}

// keeperLoop is the gateway's control loop: refresh the route table from
// live fabric state (partition failover), repair errored inter-gateway QPs
// and retry starved slot restocks, every params.GwFailoverInterval.
func (g *Gateway) keeperLoop(pr *sim.Proc) {
	for {
		pr.Sleep(g.p.GwFailoverInterval)
		if g.routes.Refresh(g.net) {
			if g.rec != nil {
				g.rec.Record(flightrec.KindGwRouteUpdate, g.recActor, int64(g.routes.Version()), 0)
			}
			g.work.Pulse()
		}
		for _, lk := range g.linkSeq {
			lk.cp.Repair()
		}
		for _, tr := range g.tenantSeq {
			for tr.starved > 0 {
				b, err := tr.pool.Get(g.owner)
				if err != nil {
					break
				}
				tr.slots.PushBack(b)
				tr.starved--
				g.wakePeers()
			}
		}
	}
}

// Stats is a snapshot of the gateway's conservation counters.
type Stats struct {
	AcceptIn  uint64 // descriptors accepted from the local engine
	Forwarded uint64 // one-sided writes posted (retries + transit legs included)
	FwdBytes  uint64
	Delivered uint64 // descriptors handed to the local engine
	Transit   uint64 // relayed legs (multi-hop)
	Retries   uint64 // re-routed after failed writes
	Dropped   uint64 // retry budget, TTL, or unroutable tenant
}

// Stats reports the gateway's counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		AcceptIn:  g.acceptIn,
		Forwarded: g.forwarded,
		FwdBytes:  g.fwdBytes,
		Delivered: g.delivered,
		Transit:   g.transit,
		Retries:   g.retries,
		Dropped:   g.dropped,
	}
}

// Pending reports descriptors queued for forwarding right now.
func (g *Gateway) Pending() int { return g.pending.Len() }

// InflightWrites reports posted writes awaiting completion.
func (g *Gateway) InflightWrites() int { return len(g.inflight) }

// SlotsHeld reports landing-window buffers currently held for tenant (the
// share of the pool invariant checks must credit to the gateway). At
// quiesce this is exactly the restocked window minus any starved debt.
func (g *Gateway) SlotsHeld(tenant string) int {
	tr := g.tenants[tenant]
	if tr == nil {
		return 0
	}
	return tr.slots.Len()
}

// StarvedSlots reports deferred restocks for tenant.
func (g *Gateway) StarvedSlots(tenant string) int {
	tr := g.tenants[tenant]
	if tr == nil {
		return 0
	}
	return tr.starved
}

// BusyTime reports forwarding-core busy time (telemetry).
func (g *Gateway) BusyTime() time.Duration { return g.core.BusyTime() }
