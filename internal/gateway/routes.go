package gateway

import (
	"nadino/internal/fabric"
)

// RouteTable is a gateway's versioned view of the cluster: which node owns
// each function (set by placement) and which next hop currently reaches
// each peer node (rebuilt deterministically from live fabric state every
// params.GwFailoverInterval, and on every placement change). The version
// counter bumps exactly when either mapping changes, so telemetry can watch
// failover converge.
type RouteTable struct {
	self    fabric.NodeID
	peers   []fabric.NodeID // stable wiring order: the failover scan order
	fns     map[string]fabric.NodeID
	fnSeq   []string
	hops    map[fabric.NodeID]fabric.NodeID
	version uint64
}

// NewRouteTable returns an empty table for a gateway on self.
func NewRouteTable(self fabric.NodeID) *RouteTable {
	return &RouteTable{
		self: self,
		fns:  make(map[string]fabric.NodeID),
		hops: make(map[fabric.NodeID]fabric.NodeID),
	}
}

// AddPeer registers a reachable peer gateway. Peer order is wiring order
// and determines the (deterministic) failover scan order.
func (rt *RouteTable) AddPeer(n fabric.NodeID) {
	if _, ok := rt.hops[n]; ok {
		return
	}
	rt.peers = append(rt.peers, n)
	rt.hops[n] = n
}

// Peers returns the registered peer nodes in wiring order.
func (rt *RouteTable) Peers() []fabric.NodeID { return rt.peers }

// Set records that fn lives on node, bumping the version on change.
func (rt *RouteTable) Set(fn string, node fabric.NodeID) {
	if cur, ok := rt.fns[fn]; ok {
		if cur != node {
			rt.fns[fn] = node
			rt.version++
		}
		return
	}
	rt.fns[fn] = node
	rt.fnSeq = append(rt.fnSeq, fn)
	rt.version++
}

// NodeOf reports the node owning fn.
func (rt *RouteTable) NodeOf(fn string) (fabric.NodeID, bool) {
	n, ok := rt.fns[fn]
	return n, ok
}

// Functions returns the known function IDs in registration order.
func (rt *RouteTable) Functions() []string { return rt.fnSeq }

// NextHop reports the current next hop toward dst: dst itself on a healthy
// fabric, a one-bounce relay around a cut link otherwise. Unknown nodes
// route direct.
func (rt *RouteTable) NextHop(dst fabric.NodeID) fabric.NodeID {
	if hop, ok := rt.hops[dst]; ok {
		return hop
	}
	return dst
}

// Refresh rebuilds the next-hop table from live fabric state and reports
// whether anything changed (bumping the version if so). For each peer dst:
// direct if the self->dst link is up and dst is alive; otherwise the first
// peer M (in wiring order) that is alive with self->M and M->dst up — a
// deterministic one-bounce detour; otherwise dst anyway, leaving short
// outages to the RC transport's retransmission.
func (rt *RouteTable) Refresh(net *fabric.Network) bool {
	changed := false
	for _, dst := range rt.peers {
		hop := dst
		if net.LinkDown(rt.self, dst) || net.Down(dst) {
			for _, m := range rt.peers {
				if m == dst || net.Down(m) || net.LinkDown(rt.self, m) || net.LinkDown(m, dst) {
					continue
				}
				hop = m
				break
			}
		}
		if rt.hops[dst] != hop {
			rt.hops[dst] = hop
			changed = true
		}
	}
	if changed {
		rt.version++
	}
	return changed
}

// Version reports the table's change counter.
func (rt *RouteTable) Version() uint64 { return rt.version }
