// Package boutique models the Online Boutique microservices application
// used in the paper's end-to-end evaluation (§4.3): ten functions and the
// three measured chains (Home Query, View Cart, Product Query), each with
// more than 11 data exchanges, plus the Place Order chain for the examples.
//
// Placement follows the paper: the hotspot functions (Frontend, Checkout,
// Recommendation) go on one worker node, the rest on the second.
package boutique

import (
	"fmt"
	"time"

	"nadino/internal/core"
	"nadino/internal/gateway"
)

// Node names used by the standard deployment.
const (
	Node1 = "node1"
	Node2 = "node2"
)

// Chain names.
const (
	HomeQuery    = "home-query"
	ViewCart     = "view-cart"
	ProductQuery = "product-query"
	PlaceOrder   = "place-order"
)

// MeasuredChains are the chains reported in Fig. 16 and Table 2.
func MeasuredChains() []string {
	return []string{HomeQuery, ViewCart, ProductQuery}
}

// Functions returns the ten boutique functions with the paper's placement.
// Service times approximate lightweight microservice handlers; the chain
// dynamics (who saturates first, where queueing builds) come from the
// simulation, not from these constants.
func Functions() []core.FunctionSpec {
	return []core.FunctionSpec{
		{Name: "frontend", Node: Node1, Service: 25 * time.Microsecond, Workers: 16},
		{Name: "checkout", Node: Node1, Service: 35 * time.Microsecond, Workers: 16},
		{Name: "recommendation", Node: Node1, Service: 20 * time.Microsecond, Workers: 16},
		{Name: "productcatalog", Node: Node2, Service: 15 * time.Microsecond, Workers: 16},
		{Name: "cart", Node: Node2, Service: 15 * time.Microsecond, Workers: 16},
		{Name: "currency", Node: Node2, Service: 8 * time.Microsecond, Workers: 16},
		{Name: "shipping", Node: Node2, Service: 10 * time.Microsecond, Workers: 16},
		{Name: "payment", Node: Node2, Service: 12 * time.Microsecond, Workers: 16},
		{Name: "email", Node: Node2, Service: 10 * time.Microsecond, Workers: 16},
		{Name: "ad", Node: Node2, Service: 8 * time.Microsecond, Workers: 16},
	}
}

// recommend is the Recommendation fan-out (it consults the catalog).
func recommend() core.Call {
	return core.Call{
		Callee: "recommendation", ReqBytes: 512, RespBytes: 1024,
		Calls: []core.Call{{Callee: "productcatalog", ReqBytes: 256, RespBytes: 2048}},
	}
}

// Chains returns the boutique chains. Every measured chain induces 12 data
// exchanges ("more than 11", §4.3).
func Chains() []core.ChainSpec {
	return []core.ChainSpec{
		{
			Name: HomeQuery, Entry: "frontend", ReqBytes: 512, RespBytes: 4096,
			Calls: []core.Call{
				{Callee: "currency", ReqBytes: 128, RespBytes: 256},
				{Callee: "productcatalog", ReqBytes: 256, RespBytes: 4096},
				{Callee: "cart", ReqBytes: 256, RespBytes: 512},
				recommend(),
				{Callee: "ad", ReqBytes: 128, RespBytes: 512},
			},
		},
		{
			Name: ViewCart, Entry: "frontend", ReqBytes: 512, RespBytes: 4096,
			Calls: []core.Call{
				{Callee: "cart", ReqBytes: 256, RespBytes: 2048},
				recommend(),
				{Callee: "currency", ReqBytes: 128, RespBytes: 256},
				{Callee: "shipping", ReqBytes: 512, RespBytes: 512},
				{Callee: "productcatalog", ReqBytes: 256, RespBytes: 2048},
			},
		},
		{
			Name: ProductQuery, Entry: "frontend", ReqBytes: 512, RespBytes: 4096,
			Calls: []core.Call{
				{Callee: "productcatalog", ReqBytes: 256, RespBytes: 2048},
				{Callee: "currency", ReqBytes: 128, RespBytes: 256},
				{Callee: "cart", ReqBytes: 256, RespBytes: 512},
				recommend(),
				{Callee: "ad", ReqBytes: 128, RespBytes: 512},
			},
		},
		{
			Name: PlaceOrder, Entry: "frontend", ReqBytes: 1024, RespBytes: 2048,
			Calls: []core.Call{
				{Callee: "checkout", ReqBytes: 1024, RespBytes: 1024, Calls: []core.Call{
					{Callee: "cart", ReqBytes: 256, RespBytes: 2048},
					{Callee: "productcatalog", ReqBytes: 256, RespBytes: 2048},
					{Callee: "currency", ReqBytes: 128, RespBytes: 256},
					{Callee: "shipping", ReqBytes: 512, RespBytes: 512},
					{Callee: "payment", ReqBytes: 512, RespBytes: 256},
					{Callee: "email", ReqBytes: 1024, RespBytes: 128},
				}},
			},
		},
	}
}

// ClusterConfig assembles the standard two-worker-node boutique deployment
// for a data-plane system.
func ClusterConfig(sys core.System, seed int64) core.Config {
	return core.Config{
		System:         sys,
		Nodes:          []string{Node1, Node2},
		Functions:      Functions(),
		Chains:         Chains(),
		IngressWorkers: 2,
		IngressMax:     2,
		Seed:           seed,
	}
}

// stageSeq flattens a chain's call tree into the ordered stage sequence the
// placement heuristic works over: caller before callee, call order
// preserved, so "adjacent in the sequence" approximates "exchanges data".
func stageSeq(entry string, calls []core.Call) []string {
	seq := []string{entry}
	var walk func(cs []core.Call)
	walk = func(cs []core.Call) {
		for _, c := range cs {
			seq = append(seq, c.Callee)
			walk(c.Calls)
		}
	}
	walk(calls)
	return seq
}

// ShardedConfig spreads the boutique across nodes worker nodes (named
// node1..nodeN) with the gateway tier enabled, so cross-node chain hops
// travel the inter-gateway fabric. Placement is locality-aware by default
// (gateway.Place co-locates adjacent stages, spilling deterministically to
// the least-loaded node); skewed selects the round-robin adversary
// (gateway.PlaceSkewed) where every adjacent hop crosses the fabric — the
// two ends of the placement-quality range the fabric experiments compare.
func ShardedConfig(sys core.System, seed int64, nodes int, skewed bool) core.Config {
	if nodes < 2 {
		nodes = 2
	}
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i+1)
	}
	chains := Chains()
	seqs := make([][]string, len(chains))
	for i := range chains {
		seqs[i] = stageSeq(chains[i].Entry, chains[i].Calls)
	}
	var pl map[string]string
	if skewed {
		pl = gateway.PlaceSkewed(names, seqs)
	} else {
		pl = gateway.Place(names, seqs, 0)
	}
	fns := Functions()
	for i := range fns {
		if n, ok := pl[fns[i].Name]; ok {
			fns[i].Node = n
		}
	}
	return core.Config{
		System:         sys,
		Nodes:          names,
		Functions:      fns,
		Chains:         chains,
		Gateways:       true,
		IngressWorkers: 2,
		IngressMax:     2,
		Seed:           seed,
	}
}
