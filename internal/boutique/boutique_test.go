package boutique

import (
	"testing"
	"time"

	"nadino/internal/core"
	"nadino/internal/ingress"
	"nadino/internal/sim"
)

func TestChainsExceedElevenExchanges(t *testing.T) {
	for _, ch := range Chains() {
		if ch.Name == PlaceOrder {
			continue // not one of the measured chains
		}
		if got := core.Exchanges(ch.Calls); got < 12 {
			t.Errorf("chain %s has %d exchanges, want > 11", ch.Name, got)
		}
	}
}

func TestHotspotPlacement(t *testing.T) {
	hot := map[string]bool{"frontend": true, "checkout": true, "recommendation": true}
	for _, f := range Functions() {
		if hot[f.Name] && f.Node != Node1 {
			t.Errorf("hotspot %s placed on %s, want %s", f.Name, f.Node, Node1)
		}
		if !hot[f.Name] && f.Node != Node2 {
			t.Errorf("%s placed on %s, want %s", f.Name, f.Node, Node2)
		}
	}
	if len(Functions()) != 10 {
		t.Fatalf("boutique has %d functions, want 10", len(Functions()))
	}
}

func TestCalleesExist(t *testing.T) {
	known := map[string]bool{}
	for _, f := range Functions() {
		known[f.Name] = true
	}
	var check func(calls []core.Call)
	check = func(calls []core.Call) {
		for _, c := range calls {
			if !known[c.Callee] {
				t.Errorf("call to unknown function %q", c.Callee)
			}
			check(c.Calls)
		}
	}
	for _, ch := range Chains() {
		if !known[ch.Entry] {
			t.Errorf("chain %s entry %q unknown", ch.Name, ch.Entry)
		}
		check(ch.Calls)
	}
}

func TestBoutiqueRunsOnNadino(t *testing.T) {
	c := core.NewCluster(ClusterConfig(core.NadinoDNE, 1))
	defer c.Eng.Stop()
	for i := 0; i < 8; i++ {
		id := i
		chain := MeasuredChains()[i%3]
		c.Eng.Spawn("client", func(pr *sim.Proc) {
			c.WaitReady(pr)
			respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
			for {
				c.SubmitChain(chain, id, func(r ingress.Response) { respQ.TryPut(r) })
				respQ.Get(pr)
			}
		})
	}
	c.Eng.RunUntil(300 * time.Millisecond)
	if c.Completed.Total() < 100 {
		t.Fatalf("completed %d boutique requests", c.Completed.Total())
	}
	for _, ch := range MeasuredChains() {
		h := c.ChainLatency[ch]
		if h.Count() == 0 {
			t.Errorf("chain %s never completed", ch)
			continue
		}
		if h.Mean() > 5*time.Millisecond {
			t.Errorf("chain %s mean latency %v implausibly high at light load", ch, h.Mean())
		}
	}
}
