package boutique

import (
	"testing"
	"time"

	"nadino/internal/core"
	"nadino/internal/workload"
)

// TestTraceDrivenBoutique marries the synthetic production trace (Poisson
// arrivals, diurnal rate, Zipf chain popularity) with the full NADINO
// cluster: every generated invocation must complete, and the observed
// chain mix must follow the trace's popularity skew.
func TestTraceDrivenBoutique(t *testing.T) {
	c := core.NewCluster(ClusterConfig(core.NadinoDNE, 1))
	defer c.Eng.Stop()

	gen := &workload.TraceGen{
		Chains:           MeasuredChains(),
		ZipfS:            1.0,
		BaseRPS:          4000,
		DiurnalAmplitude: 0.5,
		Period:           200 * time.Millisecond,
	}
	counts, hook := gen.Start(c.Eng)
	submitted := 0
	hook(func(chain string) {
		submitted++
		c.SubmitChain(chain, submitted, nil)
	})
	c.Eng.RunUntil(c.P.QPSetupTime + 400*time.Millisecond)
	// Drain the tail.
	c.Eng.RunUntil(c.Eng.Now() + 50*time.Millisecond)

	if submitted < 1000 {
		t.Fatalf("trace submitted only %d invocations", submitted)
	}
	done := c.Completed.Total()
	if done < uint64(submitted)*98/100 {
		t.Fatalf("completed %d of %d trace invocations", done, submitted)
	}
	// Zipf s=1 over three chains: shares ~ 0.55, 0.27, 0.18, and each
	// chain's completions match its submissions.
	total := uint64(0)
	for _, ch := range MeasuredChains() {
		total += *counts[ch]
	}
	first := float64(*counts[MeasuredChains()[0]]) / float64(total)
	last := float64(*counts[MeasuredChains()[2]]) / float64(total)
	if first < 0.45 || last > 0.28 {
		t.Errorf("popularity skew off: first=%.2f last=%.2f", first, last)
	}
	for _, ch := range MeasuredChains() {
		if got := c.ChainLatency[ch].Count(); got < *counts[ch]*98/100 {
			t.Errorf("chain %s completed %d of %d", ch, got, *counts[ch])
		}
	}
}
