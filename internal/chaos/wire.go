package chaos

import (
	"encoding/json"
	"fmt"
	"time"

	"nadino/internal/fabric"
)

// This file is the schedule wire format: a JSON document a management plane
// (the nadino-svc /api/v1/chaos endpoint) or a config file can carry, parsed
// into the same Schedule the programmatic API builds. Times are
// milliseconds relative to the document's own zero; hot installers shift
// the schedule to "now" with Shift before Install.

// wireEvent is one JSON schedule entry.
type wireEvent struct {
	AtMS  float64   `json:"at_ms"`
	ForMS float64   `json:"for_ms,omitempty"`
	Fault wireFault `json:"fault"`
}

// wireFault is the tagged union of every injectable fault kind. Unused
// fields for a kind are simply omitted.
type wireFault struct {
	Kind string `json:"kind"`

	From string `json:"from,omitempty"` // link faults
	To   string `json:"to,omitempty"`
	Node string `json:"node,omitempty"` // node faults

	A      []string `json:"a,omitempty"` // partition groups
	B      []string `json:"b,omitempty"`
	OneWay bool     `json:"one_way,omitempty"`

	Prob     float64 `json:"prob,omitempty"`     // link-loss
	ExtraUS  float64 `json:"extra_us,omitempty"` // link-jitter
	JitterUS float64 `json:"jitter_us,omitempty"`

	Target string  `json:"target,omitempty"` // named injector targets
	QPs    string  `json:"qps,omitempty"`    // node-crash re-handshake set
	Factor float64 `json:"factor,omitempty"` // slow-cores
	Count  int     `json:"count,omitempty"`  // qp-error
}

// wireSchedule is the document root.
type wireSchedule struct {
	Events []wireEvent `json:"events"`
}

func ms(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }

func ids(ss []string) []fabric.NodeID {
	out := make([]fabric.NodeID, len(ss))
	for i, s := range ss {
		out[i] = fabric.NodeID(s)
	}
	return out
}

// decodeFault maps one wire fault onto its Fault implementation.
func decodeFault(w wireFault) (Fault, error) {
	switch w.Kind {
	case "link-down":
		if w.From == "" || w.To == "" {
			return nil, fmt.Errorf("chaos: link-down needs from and to")
		}
		return LinkDown{From: fabric.NodeID(w.From), To: fabric.NodeID(w.To)}, nil
	case "node-down":
		if w.Node == "" {
			return nil, fmt.Errorf("chaos: node-down needs node")
		}
		return NodeDown{Node: fabric.NodeID(w.Node)}, nil
	case "partition":
		if len(w.A) == 0 || len(w.B) == 0 {
			return nil, fmt.Errorf("chaos: partition needs non-empty groups a and b")
		}
		return Partition{A: ids(w.A), B: ids(w.B), OneWay: w.OneWay}, nil
	case "link-loss":
		if w.From == "" || w.To == "" {
			return nil, fmt.Errorf("chaos: link-loss needs from and to")
		}
		if w.Prob < 0 || w.Prob > 1 {
			return nil, fmt.Errorf("chaos: link-loss prob %v outside [0,1]", w.Prob)
		}
		return LinkLoss{From: fabric.NodeID(w.From), To: fabric.NodeID(w.To), Prob: w.Prob}, nil
	case "link-jitter":
		if w.From == "" || w.To == "" {
			return nil, fmt.Errorf("chaos: link-jitter needs from and to")
		}
		return LinkJitter{
			From: fabric.NodeID(w.From), To: fabric.NodeID(w.To),
			Extra:  time.Duration(w.ExtraUS * float64(time.Microsecond)),
			Jitter: time.Duration(w.JitterUS * float64(time.Microsecond)),
		}, nil
	case "node-crash":
		if w.Node == "" {
			return nil, fmt.Errorf("chaos: node-crash needs node")
		}
		return NodeCrash{Node: fabric.NodeID(w.Node), QPs: w.QPs}, nil
	case "dma-stall":
		if w.Target == "" {
			return nil, fmt.Errorf("chaos: dma-stall needs target")
		}
		return DMAStall{Target: w.Target}, nil
	case "slow-cores":
		if w.Target == "" {
			return nil, fmt.Errorf("chaos: slow-cores needs target")
		}
		if w.Factor <= 0 {
			return nil, fmt.Errorf("chaos: slow-cores factor %v must be positive", w.Factor)
		}
		return SlowCores{Target: w.Target, Factor: w.Factor}, nil
	case "qp-error":
		if w.Target == "" {
			return nil, fmt.Errorf("chaos: qp-error needs target")
		}
		return QPError{Target: w.Target, Count: w.Count}, nil
	case "gateway-restart":
		if w.Target == "" {
			return nil, fmt.Errorf("chaos: gateway-restart needs target")
		}
		return GatewayRestart{Target: w.Target}, nil
	}
	return nil, fmt.Errorf("chaos: unknown fault kind %q", w.Kind)
}

// ParseSchedule decodes the JSON wire format into a Schedule. Event times
// are relative to the document's zero; pair with Shift for hot installs.
func ParseSchedule(data []byte) (Schedule, error) {
	var doc wireSchedule
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("chaos: parse schedule: %w", err)
	}
	if len(doc.Events) == 0 {
		return nil, fmt.Errorf("chaos: schedule has no events")
	}
	out := make(Schedule, 0, len(doc.Events))
	for i, ev := range doc.Events {
		if ev.AtMS < 0 || ev.ForMS < 0 {
			return nil, fmt.Errorf("chaos: event %d has negative time", i)
		}
		f, err := decodeFault(ev.Fault)
		if err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		out = append(out, Event{At: ms(ev.AtMS), For: ms(ev.ForMS), Fault: f})
	}
	return out, nil
}

// Shift returns a copy of the schedule with every event offset by d —
// how a relative wire schedule becomes absolute against a running engine
// (Shift(eng.Now()) then Install).
func (s Schedule) Shift(d time.Duration) Schedule {
	out := make(Schedule, len(s))
	for i, ev := range s {
		out[i] = Event{At: ev.At + d, For: ev.For, Fault: ev.Fault}
	}
	return out
}
