package chaos

import (
	"fmt"
	"time"

	"nadino/internal/fabric"
)

// LinkDown takes one directed link down for the event window.
type LinkDown struct {
	From, To fabric.NodeID
}

func (f LinkDown) Label() string { return fmt.Sprintf("link-down(%s>%s)", f.From, f.To) }

func (f LinkDown) Apply(in *Injector, _ time.Duration) func() {
	in.net.SetLinkDown(f.From, f.To, true)
	return func() { in.net.SetLinkDown(f.From, f.To, false) }
}

// NodeDown takes every link touching a node down for the event window — the
// classic node blip the legacy test rigs hand-rolled with fabric.SetDown.
type NodeDown struct {
	Node fabric.NodeID
}

func (f NodeDown) Label() string { return fmt.Sprintf("node-down(%s)", f.Node) }

func (f NodeDown) Apply(in *Injector, _ time.Duration) func() {
	in.net.SetDown(f.Node, true)
	return func() { in.net.SetDown(f.Node, false) }
}

// Partition cuts every link from group A to group B; unless OneWay is set
// the reverse direction is cut too. OneWay models asymmetric partitions
// (A's traffic is lost, B's still arrives).
type Partition struct {
	A, B   []fabric.NodeID
	OneWay bool
}

func (f Partition) Label() string {
	dir := "<>"
	if f.OneWay {
		dir = ">"
	}
	return fmt.Sprintf("partition(%v%s%v)", f.A, dir, f.B)
}

func (f Partition) Apply(in *Injector, _ time.Duration) func() {
	f.set(in, true)
	return func() { f.set(in, false) }
}

func (f Partition) set(in *Injector, down bool) {
	for _, a := range f.A {
		for _, b := range f.B {
			in.net.SetLinkDown(a, b, down)
			if !f.OneWay {
				in.net.SetLinkDown(b, a, down)
			}
		}
	}
}

// LinkLoss drops each message on a directed link with probability Prob for
// the event window.
type LinkLoss struct {
	From, To fabric.NodeID
	Prob     float64
}

func (f LinkLoss) Label() string {
	return fmt.Sprintf("link-loss(%s>%s p=%.2f)", f.From, f.To, f.Prob)
}

func (f LinkLoss) Apply(in *Injector, _ time.Duration) func() {
	in.net.SetLinkLoss(f.From, f.To, f.Prob)
	return func() { in.net.SetLinkLoss(f.From, f.To, 0) }
}

// LinkJitter adds Extra fixed delay plus uniform jitter in [0, Jitter) to a
// directed link for the event window.
type LinkJitter struct {
	From, To      fabric.NodeID
	Extra, Jitter time.Duration
}

func (f LinkJitter) Label() string {
	return fmt.Sprintf("link-jitter(%s>%s +%v~%v)", f.From, f.To, f.Extra, f.Jitter)
}

func (f LinkJitter) Apply(in *Injector, _ time.Duration) func() {
	in.net.SetLinkLatency(f.From, f.To, f.Extra, f.Jitter)
	return func() { in.net.SetLinkLatency(f.From, f.To, 0, 0) }
}

// NodeCrash models a crash+restart: all the node's links are down for the
// event window, and when it comes back, the QP sets named in QPs (if any)
// are force-errored — the rebooted peer lost its QP state, so the surviving
// side must re-handshake via ConnPool.Repair.
type NodeCrash struct {
	Node fabric.NodeID
	QPs  string // injector QP-set name errored on restart; "" to skip
}

func (f NodeCrash) Label() string { return fmt.Sprintf("node-crash(%s)", f.Node) }

func (f NodeCrash) Apply(in *Injector, _ time.Duration) func() {
	in.net.SetDown(f.Node, true)
	return func() {
		in.net.SetDown(f.Node, false)
		if f.QPs != "" {
			for _, t := range in.qpTargets(f.QPs) {
				t.ForceError(0)
			}
		}
	}
}

// DMAStall freezes a registered SoC DMA engine for the event window. The
// stall itself spans the window, so there is nothing to revert.
type DMAStall struct {
	Target string // staller name, e.g. "dma@nodeA"
}

func (f DMAStall) Label() string { return fmt.Sprintf("dma-stall(%s)", f.Target) }

func (f DMAStall) Apply(in *Injector, window time.Duration) func() {
	in.staller(f.Target).Stall(window)
	return nil
}

// SlowCores degrades a registered core set to Factor of its current speed
// for the event window (e.g. 0.5 halves throughput — thermal throttling or
// a co-resident hog).
type SlowCores struct {
	Target string
	Factor float64
}

func (f SlowCores) Label() string {
	return fmt.Sprintf("slow-cores(%s x%.2f)", f.Target, f.Factor)
}

func (f SlowCores) Apply(in *Injector, _ time.Duration) func() {
	if f.Factor <= 0 {
		panic(fmt.Sprintf("chaos: slow-cores factor %v must be positive", f.Factor))
	}
	cores := in.coreSet(f.Target)
	orig := make([]float64, len(cores))
	for i, c := range cores {
		orig[i] = c.Speed()
		c.SetSpeed(orig[i] * f.Factor)
	}
	return func() {
		for i, c := range cores {
			c.SetSpeed(orig[i])
		}
	}
}

// QPError forces up to Count connections (0 = all) in a registered QP set
// into the error state. Instantaneous: recovery happens through the normal
// ConnPool.Repair path, not a revert.
type QPError struct {
	Target string
	Count  int
}

func (f QPError) Label() string { return fmt.Sprintf("qp-error(%s n=%d)", f.Target, f.Count) }

func (f QPError) Apply(in *Injector, _ time.Duration) func() {
	for _, t := range in.qpTargets(f.Target) {
		t.ForceError(f.Count)
	}
	return nil
}

// GatewayRestart pauses a registered ingress gateway for the event window
// (workers hold their queues, like a rolling redeploy). Apply-only: the
// pause duration is the window itself.
type GatewayRestart struct {
	Target string
}

func (f GatewayRestart) Label() string { return fmt.Sprintf("gateway-restart(%s)", f.Target) }

func (f GatewayRestart) Apply(in *Injector, window time.Duration) func() {
	in.restarter(f.Target).InjectRestart(window)
	return nil
}

// LinkStorm builds a seeded random fault storm: events faults across the
// directed links among nodes, uniformly placed in [start, start+span), each
// lasting up to maxDur. Kinds rotate through outage, loss (p in
// [0.05,0.35)) and jitter by RNG draw. Construction consumes the injector's
// own RNG, so the storm shape is part of the deterministic seed contract.
func (in *Injector) LinkStorm(nodes []fabric.NodeID, start, span time.Duration, events int, maxDur time.Duration) Schedule {
	if len(nodes) < 2 {
		panic("chaos: storm needs at least two nodes")
	}
	if span <= 0 || maxDur <= 0 || events <= 0 {
		panic("chaos: storm span, maxDur and events must be positive")
	}
	s := make(Schedule, 0, events)
	for i := 0; i < events; i++ {
		from := nodes[in.rng.Intn(len(nodes))]
		to := nodes[in.rng.Intn(len(nodes)-1)]
		if to == from {
			to = nodes[len(nodes)-1]
		}
		at := start + time.Duration(in.rng.Int63n(int64(span)))
		dur := 1 + time.Duration(in.rng.Int63n(int64(maxDur)))
		var f Fault
		switch in.rng.Intn(3) {
		case 0:
			f = LinkDown{From: from, To: to}
		case 1:
			f = LinkLoss{From: from, To: to, Prob: 0.05 + 0.30*in.rng.Float64()}
		default:
			f = LinkJitter{From: from, To: to, Extra: dur / 10, Jitter: dur / 5}
		}
		s = append(s, Event{At: at, For: dur, Fault: f})
	}
	return s
}
