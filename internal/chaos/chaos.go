// Package chaos is the declarative fault-injection subsystem: a Schedule of
// timed, seeded fault events applied and reverted at exact virtual times
// through one Injector. Faults reach the rest of the simulator through small
// injection hooks — directed-link state on fabric.Network, QP.ForceError /
// ConnPool.ForceError on the RDMA transport, DMAEngine.Stall on the DPU SoC,
// Processor.SetSpeed on cores, and Gateway.InjectRestart on the ingress —
// so this package depends only on sim and fabric and every other package's
// tests can import it without cycles.
//
// Determinism contract: all randomness (storm construction, fabric loss and
// jitter draws) comes from seeded RNGs — the Injector's own RNG derived from
// the experiment seed and the engine's RNG — so a fixed seed gives bitwise
// identical results, including under parallel experiment sharding (one
// engine and one injector per sweep point).
package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"nadino/internal/fabric"
	"nadino/internal/flightrec"
	"nadino/internal/sim"
)

// Staller is a component whose pipeline can be stalled for a duration (the
// DPU SoC DMA engine).
type Staller interface {
	Stall(dur time.Duration)
}

// Restarter is a component that can be forced through a restart pause (the
// ingress gateway).
type Restarter interface {
	InjectRestart(pause time.Duration)
}

// QPErrorTarget is a set of RC connections that can be forced into the
// error state (rdma.ConnPool).
type QPErrorTarget interface {
	ForceError(n int) int
}

// seedSalt decorrelates the chaos RNG from other consumers of the same
// experiment seed.
const seedSalt int64 = 0x6368616f73 // "chaos"

// Injector owns the fault targets and applies scheduled faults. One
// injector per engine; register targets under names the Schedule's faults
// reference.
type Injector struct {
	eng *sim.Engine
	net *fabric.Network
	rng *rand.Rand

	stallers   map[string]Staller
	restarters map[string]Restarter
	// QP targets are registered as providers because connection pools only
	// exist after rig setup completes (QPSetupTime into the run), while
	// schedules are installed at t=0.
	qps   map[string]func() []QPErrorTarget
	cores map[string][]*sim.Processor

	applied  int
	reverted int
	history  []string

	rec *flightrec.Recorder
}

// NewInjector returns an injector for the engine and network, with its RNG
// derived from seed.
func NewInjector(eng *sim.Engine, net *fabric.Network, seed int64) *Injector {
	return &Injector{
		eng:        eng,
		net:        net,
		rng:        rand.New(rand.NewSource(seed ^ seedSalt)),
		stallers:   make(map[string]Staller),
		restarters: make(map[string]Restarter),
		qps:        make(map[string]func() []QPErrorTarget),
		cores:      make(map[string][]*sim.Processor),
	}
}

// Network returns the fabric the injector drives link faults on.
func (in *Injector) Network() *fabric.Network { return in.net }

// RegisterStaller names a stallable component (e.g. "dma@nodeA").
func (in *Injector) RegisterStaller(name string, s Staller) { in.stallers[name] = s }

// RegisterGateway names a restartable gateway (e.g. "ingress").
func (in *Injector) RegisterGateway(name string, r Restarter) { in.restarters[name] = r }

// RegisterQPs names a lazy provider of QP error targets (e.g. "qp@nodeA").
// The provider runs at fault-apply time, after connection pools exist.
func (in *Injector) RegisterQPs(name string, provide func() []QPErrorTarget) {
	in.qps[name] = provide
}

// RegisterCores names a set of degradable cores (e.g. "cores@nodeA").
func (in *Injector) RegisterCores(name string, cores ...*sim.Processor) {
	in.cores[name] = append(in.cores[name], cores...)
}

func (in *Injector) staller(name string) Staller {
	s, ok := in.stallers[name]
	if !ok {
		panic(fmt.Sprintf("chaos: no staller registered as %q", name))
	}
	return s
}

func (in *Injector) restarter(name string) Restarter {
	r, ok := in.restarters[name]
	if !ok {
		panic(fmt.Sprintf("chaos: no gateway registered as %q", name))
	}
	return r
}

func (in *Injector) qpTargets(name string) []QPErrorTarget {
	provide, ok := in.qps[name]
	if !ok {
		panic(fmt.Sprintf("chaos: no QP set registered as %q", name))
	}
	return provide()
}

func (in *Injector) coreSet(name string) []*sim.Processor {
	cs, ok := in.cores[name]
	if !ok || len(cs) == 0 {
		panic(fmt.Sprintf("chaos: no cores registered as %q", name))
	}
	return cs
}

// Fault is one injectable failure mode. Apply takes effect immediately (in
// engine context) and returns the revert closure, or nil when there is
// nothing to undo (the fault is instantaneous or self-clearing). window is
// the event's For duration — faults like DMAStall and GatewayRestart
// consume it directly instead of scheduling a revert.
type Fault interface {
	Label() string
	Apply(in *Injector, window time.Duration) (revert func())
}

// Event schedules one fault at virtual time At. For For > 0 the fault's
// revert (if any) runs at At+For; with For == 0 the fault is permanent (or
// instantaneous, for apply-only faults).
type Event struct {
	At    time.Duration
	For   time.Duration
	Fault Fault
}

// Schedule is a fault timeline.
type Schedule []Event

// Install arms every event on the engine. Call before (or during) the run;
// events in the past panic, matching the engine's scheduling contract.
func (in *Injector) Install(s Schedule) {
	for _, ev := range s {
		ev := ev
		in.eng.At(ev.At, func() {
			revert := ev.Fault.Apply(in, ev.For)
			in.applied++
			in.record("apply", ev.Fault)
			if revert != nil && ev.For > 0 {
				in.eng.At(ev.At+ev.For, func() {
					revert()
					in.reverted++
					in.record("revert", ev.Fault)
				})
			}
		})
	}
}

// SetFlightRecorder routes apply/revert events into the flight recorder
// (nil detaches). Actors are the fault labels, interned on first apply.
func (in *Injector) SetFlightRecorder(r *flightrec.Recorder) { in.rec = r }

func (in *Injector) record(verb string, f Fault) {
	in.history = append(in.history,
		fmt.Sprintf("t=%v %s %s", in.eng.Now(), verb, f.Label()))
	if in.rec != nil {
		k := flightrec.KindChaosApply
		if verb == "revert" {
			k = flightrec.KindChaosRevert
		}
		in.rec.Record(k, in.rec.Actor(f.Label()), 0, 0)
	}
}

// Applied reports faults applied so far.
func (in *Injector) Applied() int { return in.applied }

// Reverted reports faults reverted so far.
func (in *Injector) Reverted() int { return in.reverted }

// History returns the apply/revert log (tests and debugging).
func (in *Injector) History() []string { return in.history }
