package chaos

import (
	"strings"
	"testing"
	"time"

	"nadino/internal/flightrec"
)

// TestParseSchedule decodes one event of every fault kind and checks the
// resulting schedule round-trips times and parameters.
func TestParseSchedule(t *testing.T) {
	doc := `{"events": [
		{"at_ms": 10, "for_ms": 5, "fault": {"kind": "link-down", "from": "nodeA", "to": "nodeB"}},
		{"at_ms": 20, "fault": {"kind": "node-down", "node": "nodeB"}},
		{"at_ms": 30, "for_ms": 1, "fault": {"kind": "partition", "a": ["nodeA"], "b": ["nodeB"], "one_way": true}},
		{"at_ms": 40, "for_ms": 2, "fault": {"kind": "link-loss", "from": "nodeA", "to": "nodeB", "prob": 0.25}},
		{"at_ms": 50, "for_ms": 2, "fault": {"kind": "link-jitter", "from": "nodeA", "to": "nodeB", "extra_us": 100, "jitter_us": 50}},
		{"at_ms": 60, "for_ms": 3, "fault": {"kind": "node-crash", "node": "nodeB", "qps": "qp@nodeA"}},
		{"at_ms": 70, "for_ms": 4, "fault": {"kind": "dma-stall", "target": "dma@nodeA"}},
		{"at_ms": 80, "for_ms": 5, "fault": {"kind": "slow-cores", "target": "cores@nodeA", "factor": 0.5}},
		{"at_ms": 90, "fault": {"kind": "qp-error", "target": "qp@nodeA", "count": 2}},
		{"at_ms": 95, "for_ms": 1, "fault": {"kind": "gateway-restart", "target": "ingress"}}
	]}`
	s, err := ParseSchedule([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 10 {
		t.Fatalf("parsed %d events, want 10", len(s))
	}
	if s[0].At != 10*time.Millisecond || s[0].For != 5*time.Millisecond {
		t.Fatalf("event 0 times wrong: %+v", s[0])
	}
	ld, ok := s[0].Fault.(LinkDown)
	if !ok || ld.From != "nodeA" || ld.To != "nodeB" {
		t.Fatalf("event 0 fault wrong: %#v", s[0].Fault)
	}
	ll := s[3].Fault.(LinkLoss)
	if ll.Prob != 0.25 {
		t.Fatalf("link-loss prob = %v", ll.Prob)
	}
	lj := s[4].Fault.(LinkJitter)
	if lj.Extra != 100*time.Microsecond || lj.Jitter != 50*time.Microsecond {
		t.Fatalf("link-jitter durations wrong: %+v", lj)
	}
	sc := s[7].Fault.(SlowCores)
	if sc.Factor != 0.5 {
		t.Fatalf("slow-cores factor = %v", sc.Factor)
	}
}

// TestParseScheduleRejects pins the error cases a management API must
// surface instead of installing garbage.
func TestParseScheduleRejects(t *testing.T) {
	for name, doc := range map[string]string{
		"empty":        `{"events": []}`,
		"unknown-kind": `{"events": [{"at_ms": 1, "fault": {"kind": "meteor-strike"}}]}`,
		"bad-prob":     `{"events": [{"at_ms": 1, "fault": {"kind": "link-loss", "from": "a", "to": "b", "prob": 2}}]}`,
		"missing-node": `{"events": [{"at_ms": 1, "fault": {"kind": "node-down"}}]}`,
		"negative":     `{"events": [{"at_ms": -1, "fault": {"kind": "node-down", "node": "a"}}]}`,
		"not-json":     `{`,
	} {
		if _, err := ParseSchedule([]byte(doc)); err == nil {
			t.Errorf("%s: parse accepted invalid schedule", name)
		}
	}
}

// TestShiftInstall checks a relative wire schedule shifted to "now"
// installs and fires on a running engine, and that apply/revert land in an
// attached flight recorder.
func TestShiftInstall(t *testing.T) {
	eng, net := newNet(t, 1, "nodeA", "nodeB")
	in := NewInjector(eng, net, 7)
	rec := flightrec.New(64, eng.Now)
	in.SetFlightRecorder(rec)

	s, err := ParseSchedule([]byte(
		`{"events": [{"at_ms": 5, "for_ms": 5, "fault": {"kind": "link-down", "from": "nodeA", "to": "nodeB"}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(100 * time.Millisecond) // engine already mid-run
	in.Install(s.Shift(eng.Now()))
	eng.RunUntil(200 * time.Millisecond)

	if in.Applied() != 1 || in.Reverted() != 1 {
		t.Fatalf("applied=%d reverted=%d, want 1/1", in.Applied(), in.Reverted())
	}
	hist := in.History()
	if len(hist) != 2 || !strings.Contains(hist[0], "t=105ms") {
		t.Fatalf("history wrong: %v", hist)
	}
	ev := rec.Snapshot()
	if len(ev) != 2 || ev[0].Kind != flightrec.KindChaosApply || ev[1].Kind != flightrec.KindChaosRevert {
		t.Fatalf("flight recorder events wrong: %+v", ev)
	}
	if ev[0].At != 105*time.Millisecond || ev[1].At != 110*time.Millisecond {
		t.Fatalf("event times wrong: %+v", ev)
	}
	if rec.ActorName(ev[0].Actor) != "link-down(nodeA>nodeB)" {
		t.Fatalf("actor = %q", rec.ActorName(ev[0].Actor))
	}
}
