package chaos

import (
	"reflect"
	"testing"
	"time"

	"nadino/internal/fabric"
	"nadino/internal/params"
	"nadino/internal/sim"
)

func newNet(t *testing.T, seed int64, nodes ...fabric.NodeID) (*sim.Engine, *fabric.Network) {
	t.Helper()
	eng := sim.NewEngine(seed)
	t.Cleanup(eng.Stop)
	p := params.Default()
	net := fabric.New(eng, p)
	for _, n := range nodes {
		net.AddNode(n)
	}
	return eng, net
}

func TestLinkDownWindow(t *testing.T) {
	eng, net := newNet(t, 1, "a", "b")
	in := NewInjector(eng, net, 1)
	in.Install(Schedule{
		{At: 10 * time.Microsecond, For: 20 * time.Microsecond, Fault: LinkDown{From: "a", To: "b"}},
	})
	// Before, during and after the window.
	delivered := 0
	send := func(at time.Duration) {
		eng.At(at, func() { net.Send("a", "b", 64, func() { delivered++ }) })
	}
	send(5 * time.Microsecond)
	send(20 * time.Microsecond) // inside the window: dropped
	send(40 * time.Microsecond)
	eng.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2 (one dropped in window)", delivered)
	}
	if net.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", net.Drops())
	}
	if in.Applied() != 1 || in.Reverted() != 1 {
		t.Fatalf("applied=%d reverted=%d, want 1/1", in.Applied(), in.Reverted())
	}
	if len(in.History()) != 2 {
		t.Fatalf("history %v, want apply+revert", in.History())
	}
}

func TestPermanentFault(t *testing.T) {
	eng, net := newNet(t, 1, "a", "b")
	in := NewInjector(eng, net, 1)
	// For == 0: applied, never reverted.
	in.Install(Schedule{{At: 0, Fault: LinkDown{From: "a", To: "b"}}})
	eng.RunFor(time.Second)
	if !net.LinkDown("a", "b") {
		t.Fatal("permanent fault was reverted")
	}
	if in.Applied() != 1 || in.Reverted() != 0 {
		t.Fatalf("applied=%d reverted=%d, want 1/0", in.Applied(), in.Reverted())
	}
}

func TestNodeDown(t *testing.T) {
	eng, net := newNet(t, 1, "a", "b", "c")
	in := NewInjector(eng, net, 1)
	in.Install(Schedule{{At: time.Millisecond, For: time.Millisecond, Fault: NodeDown{Node: "b"}}})
	eng.RunUntil(time.Millisecond)
	if !net.LinkDown("a", "b") || !net.LinkDown("b", "a") || !net.LinkDown("c", "b") {
		t.Fatal("node-down did not take all links down")
	}
	if net.LinkDown("a", "c") {
		t.Fatal("node-down hit an unrelated link")
	}
	eng.RunUntil(2 * time.Millisecond)
	if net.LinkDown("a", "b") || net.Down("b") {
		t.Fatal("node-down did not revert")
	}
}

func TestPartition(t *testing.T) {
	eng, net := newNet(t, 1, "a", "b", "c", "d")
	in := NewInjector(eng, net, 1)
	in.Install(Schedule{{
		At: time.Microsecond, For: time.Microsecond,
		Fault: Partition{A: []fabric.NodeID{"a", "b"}, B: []fabric.NodeID{"c", "d"}, OneWay: true},
	}})
	eng.RunUntil(time.Microsecond)
	if !net.LinkDown("a", "c") || !net.LinkDown("b", "d") {
		t.Fatal("partition missing A->B cuts")
	}
	if net.LinkDown("c", "a") {
		t.Fatal("one-way partition cut the reverse direction")
	}
	if net.LinkDown("a", "b") || net.LinkDown("c", "d") {
		t.Fatal("partition cut an intra-group link")
	}
	eng.RunUntil(2 * time.Microsecond)
	if net.LinkDown("a", "c") {
		t.Fatal("partition did not heal")
	}
}

func TestLinkLossAndJitterWindows(t *testing.T) {
	eng, net := newNet(t, 1, "a", "b")
	in := NewInjector(eng, net, 1)
	in.Install(Schedule{
		{At: 0, For: time.Millisecond, Fault: LinkLoss{From: "a", To: "b", Prob: 1.0}},
		{At: 2 * time.Millisecond, For: time.Millisecond,
			Fault: LinkJitter{From: "a", To: "b", Extra: 100 * time.Microsecond, Jitter: 0}},
	})
	delivered := 0
	var lastAt time.Duration
	eng.At(500*time.Microsecond, func() { net.Send("a", "b", 64, func() { delivered++ }) })
	eng.At(2500*time.Microsecond, func() {
		net.Send("a", "b", 64, func() { delivered++; lastAt = eng.Now() })
	})
	eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1 (loss window eats the first)", delivered)
	}
	if lastAt < 2600*time.Microsecond {
		t.Fatalf("jitter window delivery at %v, want >= 2.6ms", lastAt)
	}
}

type fakeStaller struct{ total time.Duration }

func (f *fakeStaller) Stall(d time.Duration) { f.total += d }

type fakeRestarter struct{ pauses []time.Duration }

func (f *fakeRestarter) InjectRestart(p time.Duration) { f.pauses = append(f.pauses, p) }

type fakeQPs struct{ calls []int }

func (f *fakeQPs) ForceError(n int) int { f.calls = append(f.calls, n); return n }

func TestComponentFaults(t *testing.T) {
	eng, net := newNet(t, 1, "a", "b")
	in := NewInjector(eng, net, 1)
	st := &fakeStaller{}
	rs := &fakeRestarter{}
	qp := &fakeQPs{}
	in.RegisterStaller("dma@a", st)
	in.RegisterGateway("ingress", rs)
	in.RegisterQPs("qp@a", func() []QPErrorTarget { return []QPErrorTarget{qp} })
	core := sim.NewProcessor(eng, "c0", 1.0)
	in.RegisterCores("cores@a", core)
	in.Install(Schedule{
		{At: 0, For: 5 * time.Millisecond, Fault: DMAStall{Target: "dma@a"}},
		{At: time.Millisecond, For: 2 * time.Millisecond, Fault: GatewayRestart{Target: "ingress"}},
		{At: 2 * time.Millisecond, Fault: QPError{Target: "qp@a", Count: 3}},
		{At: 3 * time.Millisecond, For: time.Millisecond, Fault: SlowCores{Target: "cores@a", Factor: 0.5}},
	})
	eng.RunUntil(3500 * time.Microsecond)
	if st.total != 5*time.Millisecond {
		t.Fatalf("stall total %v, want 5ms", st.total)
	}
	if len(rs.pauses) != 1 || rs.pauses[0] != 2*time.Millisecond {
		t.Fatalf("restart pauses %v, want [2ms]", rs.pauses)
	}
	if len(qp.calls) != 1 || qp.calls[0] != 3 {
		t.Fatalf("qp calls %v, want [3]", qp.calls)
	}
	if core.Speed() != 0.5 {
		t.Fatalf("core speed %v inside slow window, want 0.5", core.Speed())
	}
	eng.RunUntil(4 * time.Millisecond)
	if core.Speed() != 1.0 {
		t.Fatalf("core speed %v after revert, want 1.0", core.Speed())
	}
	// Apply-only faults (stall, restart, qp-error) are never reverted.
	if in.Applied() != 4 || in.Reverted() != 1 {
		t.Fatalf("applied=%d reverted=%d, want 4/1", in.Applied(), in.Reverted())
	}
}

func TestMissingTargetPanics(t *testing.T) {
	eng, net := newNet(t, 1, "a", "b")
	in := NewInjector(eng, net, 1)
	in.Install(Schedule{{At: 0, For: time.Millisecond, Fault: DMAStall{Target: "ghost"}}})
	defer func() {
		if recover() == nil {
			t.Fatal("unregistered staller did not panic")
		}
	}()
	eng.Run()
}

func TestNodeCrashErrorsQPsOnRestart(t *testing.T) {
	eng, net := newNet(t, 1, "a", "b")
	in := NewInjector(eng, net, 1)
	qp := &fakeQPs{}
	in.RegisterQPs("qp@a", func() []QPErrorTarget { return []QPErrorTarget{qp} })
	in.Install(Schedule{{
		At: time.Millisecond, For: 2 * time.Millisecond,
		Fault: NodeCrash{Node: "b", QPs: "qp@a"},
	}})
	eng.RunUntil(2 * time.Millisecond)
	if !net.Down("b") || len(qp.calls) != 0 {
		t.Fatal("crash window wrong: node should be down, QPs untouched")
	}
	eng.RunUntil(4 * time.Millisecond)
	if net.Down("b") {
		t.Fatal("node did not restart")
	}
	// Restart drops the surviving side's QP state: ForceError(0) = all.
	if !reflect.DeepEqual(qp.calls, []int{0}) {
		t.Fatalf("qp calls %v, want [0] after restart", qp.calls)
	}
}

func TestLinkStormDeterministic(t *testing.T) {
	build := func() Schedule {
		eng, net := newNet(t, 1, "a", "b", "c")
		in := NewInjector(eng, net, 99)
		return in.LinkStorm([]fabric.NodeID{"a", "b", "c"},
			10*time.Millisecond, 50*time.Millisecond, 20, 3*time.Millisecond)
	}
	s1, s2 := build(), build()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same seed produced different storms")
	}
	for i, ev := range s1 {
		if ev.At < 10*time.Millisecond || ev.At >= 60*time.Millisecond {
			t.Fatalf("event %d at %v outside storm span", i, ev.At)
		}
		if ev.For <= 0 || ev.For > 3*time.Millisecond {
			t.Fatalf("event %d duration %v outside (0, 3ms]", i, ev.For)
		}
	}
	// A different seed must give a different storm (decorrelation check).
	eng, net := newNet(t, 1, "a", "b", "c")
	in := NewInjector(eng, net, 100)
	s3 := in.LinkStorm([]fabric.NodeID{"a", "b", "c"},
		10*time.Millisecond, 50*time.Millisecond, 20, 3*time.Millisecond)
	if reflect.DeepEqual(s1, s3) {
		t.Fatal("different seeds produced identical storms")
	}
}

func TestStormSelfLoopFree(t *testing.T) {
	eng, net := newNet(t, 1, "a", "b", "c", "d")
	in := NewInjector(eng, net, 5)
	s := in.LinkStorm([]fabric.NodeID{"a", "b", "c", "d"},
		0, time.Millisecond, 200, time.Millisecond)
	for _, ev := range s {
		switch f := ev.Fault.(type) {
		case LinkDown:
			if f.From == f.To {
				t.Fatalf("self-loop outage %v", f)
			}
		case LinkLoss:
			if f.From == f.To {
				t.Fatalf("self-loop loss %v", f)
			}
			if f.Prob < 0.05 || f.Prob >= 0.35 {
				t.Fatalf("loss prob %v outside [0.05, 0.35)", f.Prob)
			}
		case LinkJitter:
			if f.From == f.To {
				t.Fatalf("self-loop jitter %v", f)
			}
		}
	}
}
