// Package params centralizes every cost constant in the NADINO simulation.
//
// Each value is calibrated against a measurement reported in the paper
// (quoted next to the constant) or against well-known hardware figures for
// the testbed (BlueField-2 DPU, ConnectX-6 RNIC, 200 Gbps fabric, Xeon Gold
// 6148 hosts). Absolute values are best-effort; the experiments assert the
// paper's *shapes* — orderings, ratios, crossovers — which are robust to
// moderate miscalibration because they emerge from queueing structure.
package params

import "time"

// Params holds all tunable model constants. Zero value is not usable;
// start from Default() and override per experiment.
type Params struct {
	// ---- Processor speeds (relative to the reference x86 host core) ----

	// HostCoreSpeed is the Xeon Gold 6148 reference core (3.7 GHz max).
	HostCoreSpeed float64
	// DPUCoreSpeed models a BlueField-2 ARM A72 core (2.5 GHz, lower IPC)
	// on general-purpose compute. "its core is much less capable than the
	// CPU core" (§4.3.1).
	DPUCoreSpeed float64
	// DPUNetSpeed is the ARM core's relative speed on verbs/descriptor
	// work (doorbells, CQE handling, 16 B descriptor shuffling): these are
	// MMIO- and memory-bound, so the gap to x86 is small — Fig. 6 shows
	// "the performance overhead incurred by executing RDMA primitives
	// directly on the wimpy DPU cores is minimal".
	DPUNetSpeed float64

	// ---- RDMA fabric (ConnectX-6 RNICs, 200 Gbps switch) ----

	// FabricBandwidth is the link rate between RNICs.
	FabricBandwidth float64 // bytes/second
	// FabricPropagation is switch + wire latency one way.
	FabricPropagation time.Duration
	// RNICPerWR is RNIC processing per work request (fetch WQE, build
	// packets, generate CQE).
	RNICPerWR time.Duration
	// RNICDMAPerOp and RNICDMAPerByte model the RNIC's host-memory DMA
	// (PCIe). The per-byte figure is an effective rate calibrated so that a
	// 4 KB two-sided echo costs ~11.6 us RTT vs ~8.4 us at 64 B (Fig. 12).
	RNICDMAPerOp   time.Duration
	RNICDMAPerByte float64 // ns per byte
	// VerbsPostCost is the software cost of posting a WR / polling a CQE
	// (reference-core time; scaled up on the wimpy DPU cores).
	VerbsPostCost time.Duration
	// RecvMatchCost is the receiver-side RNIC cost of consuming an RQ entry
	// (the extra work two-sided ops do over one-sided).
	RecvMatchCost time.Duration
	// RNRRetryDelay is the retransmission backoff when a two-sided send
	// arrives with no posted receive buffer.
	RNRRetryDelay time.Duration
	// RetransmitTimeout is the RC transport's ack timeout: an unacked WR
	// is retransmitted after this long (link loss recovery).
	RetransmitTimeout time.Duration
	// TransportRetries is how many retransmissions RC attempts before the
	// QP transitions to the error state.
	TransportRetries int
	// QPSetupTime: "connection setup time is non-negligible (of the order
	// of tens of milliseconds)" (§3.3).
	QPSetupTime time.Duration
	// QPActivateTime is the cost of re-activating a shadow (inactive) QP.
	QPActivateTime time.Duration
	// NICCacheActiveQPs is how many active QPs the RNIC's ICM cache holds
	// before thrashing; NICCacheMissPenalty is the per-WR penalty on miss.
	NICCacheActiveQPs   int
	NICCacheMissPenalty time.Duration
	// NICMTTEntries is the RNIC's memory-translation-table cache size in
	// page entries; registering more pages than this makes every WR pay a
	// translation-miss share (NICMTTMissPenalty). Hugepages keep pools
	// within the cache ("hugepage memory ... helps reduce the memory
	// footprint of the Memory Translation Table", §3.4, [93]).
	NICMTTEntries     int
	NICMTTMissPenalty time.Duration
	// OneSidedPollInterval is how often a FaRM-style receiver scans its
	// ring for one-sided write arrivals; OneSidedPollCost is the CPU cost
	// per scan (§4.1.2: FUYAO-style receivers burn a core polling).
	OneSidedPollInterval time.Duration
	OneSidedPollCost     time.Duration
	// CASLatency is the round-trip cost of a one-sided atomic (used by the
	// OWDL distributed-lock variant).
	CASLatency time.Duration
	// FuyaoEngineExtra is FUYAO's per-message engine overhead beyond the
	// generic TX stage: one-sided semantics leave credit management,
	// remote-slot bookkeeping and completion tracking entirely in software
	// on the CPU engine. Calibrated against Table 2 (FUYAO-F ~3.5ms at 20
	// clients => a ~25-30us serial component per hop across engine and
	// poller).
	FuyaoEngineExtra time.Duration
	// FuyaoPollInterval is FUYAO's receiver scan period: its poller walks
	// per-sender rings across all tenants, so detection is coarser than a
	// dedicated FaRM poller.
	FuyaoPollInterval time.Duration

	// ---- Memory system ----

	// MemcpyPerByteCached / MemcpyPerByteCold model the receiver-side copy
	// of the OWRC variants. "OWRC-Best" enjoys cache residency; the
	// "OWRC-Worst" variant flushes the TLB, forcing main-memory access
	// (§4.1.2).
	MemcpyPerByteCached float64 // ns per byte
	MemcpyPerByteCold   float64 // ns per byte
	MemcpyBase          time.Duration
	// HugepageSize is 2 MB: "We use hugepage memory (2MB size each)" (§3.4).
	HugepageSize int

	// ---- DPU SoC (BlueField-2) ----

	// SoCDMAPerOp: "only 2.6us for 64B DMA read" (§4.1.1, citing [95]).
	SoCDMAPerOp time.Duration
	// SoCDMAPerByte models the SoC DMA engine's poor bandwidth ("we find
	// [it] to be unfortunately very slow", §2.1) — ~3 GB/s effective.
	SoCDMAPerByte float64 // ns per byte

	// ---- DOCA Comch (DPU <-> host descriptor channel, Fig. 9) ----

	// ComchSendCost is the sender-side software cost of queueing a 16 B
	// descriptor.
	ComchSendCost time.Duration
	// ComchEDeliver is PCIe delivery latency for the event variant;
	// ComchEWakeup is the receiver's epoll wakeup cost (event-driven).
	ComchEDeliver time.Duration
	ComchEWakeup  time.Duration
	// ComchPDeliver is the polled variant's ring delivery latency.
	ComchPDeliver time.Duration
	// ComchPPerEndpoint is the progress-engine cost the DNE pays per
	// monitored endpoint per processed message: DOCA's "busy" polling is
	// internally an epoll_wait, so it scales with endpoints and overloads
	// beyond ~6 functions (§3.5.4).
	ComchPPerEndpoint time.Duration

	// ---- Intra-node IPC ----

	// SKMsgSendCost / SKMsgDeliver / SKMsgWakeup model eBPF SK_MSG
	// descriptor handoff between local sockets (§3.5.3).
	SKMsgSendCost time.Duration
	SKMsgDeliver  time.Duration
	SKMsgWakeup   time.Duration
	// SKMsgInterruptBase is the per-message interrupt/softirq/wakeup cost
	// charged to a CPU-hosted network engine (CNE) receiving SK_MSG
	// descriptors (the DNE's Comch input is hardware-polled and pays none
	// of this); it inflates with instantaneous backlog (interrupt
	// pressure), which is what throttles the CNE at high concurrency
	// (§4.3).
	SKMsgInterruptBase time.Duration
	// SKMsgInterruptSlope scales the backlog-dependent part: cost grows by
	// Slope per pending message (capped at SKMsgInterruptCap). The cap is
	// deliberately several times the base: a single CNE fronting many
	// functions suffers wakeup storms and softirq pressure approaching
	// receive livelock [Mogul-Ramakrishnan], which is what lets the DPU
	// engine (hardware-polled Comch input, no interrupts) pull 1.3-1.8x
	// ahead at high concurrency (§4.3).
	SKMsgInterruptSlope time.Duration
	SKMsgInterruptCap   time.Duration
	// LoopbackTCPRTT is the kernel TCP round trip used as the Fig. 9
	// baseline channel; LoopbackTCPCost is per-message CPU.
	LoopbackTCPRTT  time.Duration
	LoopbackTCPCost time.Duration
	// SemTokenCost is the cost of a sem_post/sem_wait ownership handoff.
	SemTokenCost time.Duration

	// ---- TCP/IP + HTTP transport cost models ----

	// KernelTCPPerMsg is per-message kernel-stack CPU (syscalls, copies,
	// protocol, interrupt handling); KernelTCPPerByte covers copies;
	// KernelTCPLatency is the added one-way delivery latency
	// (interrupt-driven). Calibrated so a kernel NGINX proxy lands ~11x
	// below NADINO's ingress (Fig. 13).
	KernelTCPPerMsg  time.Duration
	KernelTCPPerByte float64 // ns per byte
	KernelTCPLatency time.Duration
	// FStackPerMsg / FStackPerByte / FStackLatency: DPDK F-stack userspace
	// TCP (busy-polled, cheaper, low latency).
	FStackPerMsg  time.Duration
	FStackPerByte float64 // ns per byte
	FStackLatency time.Duration
	// HTTPParseCost is NGINX-grade HTTP request processing.
	HTTPParseCost time.Duration
	// ProxyUpstreamOverhead is the per-request cost a TCP-proxying ingress
	// pays beyond raw stack traversals: upstream connection management,
	// epoll bookkeeping, and NGINX proxy-module buffering. NADINO's early
	// transport conversion eliminates it — only the payload crosses into
	// the cluster, over RDMA (§3.6).
	ProxyUpstreamOverhead time.Duration
	// ExtNetOneWay is client <-> ingress Ethernet latency.
	ExtNetOneWay time.Duration

	// ---- DNE / CNE engine ----

	// DNETxCost / DNERxCost are the per-descriptor engine costs of the TX
	// stage (routing lookup, least-congested RC pick, WR build) and RX
	// stage (CQE handling, RBR lookup, descriptor forward), in
	// reference-core time (§3.2).
	DNETxCost time.Duration
	DNERxCost time.Duration
	// DNEExtraPerMsg is an optional artificial per-message load used by
	// experiments that cap DNE throughput (Fig. 15 configures the DNE "to
	// sustain a maximum throughput of approximately 110K RPS").
	DNEExtraPerMsg time.Duration
	// RQReplenishBatch is how many receive buffers the core thread posts
	// per replenish round (§3.5.2).
	RQReplenishBatch int

	// ---- Ingress gateway ----

	// IngressScaleUpUtil / IngressScaleDownUtil: "reaches 60%, the master
	// process spawns a new worker ... drops below 30%, terminates one"
	// (§3.6).
	IngressScaleUpUtil   float64
	IngressScaleDownUtil float64
	// IngressScaleCheckEvery is the autoscaler sampling period.
	IngressScaleCheckEvery time.Duration
	// IngressRestartPause: "the scaling procedure triggers a brief service
	// interruption due to the restart of the worker processes" (Fig. 14).
	IngressRestartPause time.Duration
	// IngressMaxWorkers bounds horizontal scaling.
	IngressMaxWorkers int

	// ---- Inter-gateway fabric (multi-node tier, Palladium-style) ----

	// GwForwardCost is the gateway-core cost of forwarding one descriptor:
	// route-table lookup, landing-slot pick and one-sided WR build. It runs
	// on the DPU's network cores (DPUNetSpeed) — the forwarding decision
	// stays off the wimpy general-purpose cores (λ-NIC).
	GwForwardCost time.Duration
	// GwDeliverCost is the gateway-core cost of ingesting one landed write:
	// slot bookkeeping, restock and local hand-off (or transit re-forward).
	GwDeliverCost time.Duration
	// GwFailoverInterval is the route-maintenance period: each gateway
	// refreshes its next-hop table from live fabric state, repairs errored
	// inter-gateway QPs and retries starved slot restocks this often.
	GwFailoverInterval time.Duration
	// GwWindow is the default number of landing slots a gateway pre-posts
	// per resident tenant — the one-sided receive window peers write into.
	GwWindow int
	// GwMaxHops bounds transit forwarding (TTL): a descriptor relayed more
	// than this many times is dropped, fencing transient routing loops.
	GwMaxHops int

	// ---- Misc ----

	// DescriptorBytes: "16B buffer descriptors" (§3.5.4).
	DescriptorBytes int
	// PayloadDefault is the default message payload.
	PayloadDefault int
}

// Default returns the calibrated baseline parameter set.
func Default() *Params {
	return &Params{
		HostCoreSpeed: 1.0,
		DPUCoreSpeed:  0.45, // 2.5 GHz A72 vs 3.7 GHz Xeon, plus IPC gap
		DPUNetSpeed:   0.80, // verbs/descriptor work: near-par (Fig. 6)

		FabricBandwidth:   25e9, // 200 Gbps
		FabricPropagation: 500 * time.Nanosecond,
		RNICPerWR:         600 * time.Nanosecond,
		RNICDMAPerOp:      300 * time.Nanosecond,
		RNICDMAPerByte:    0.125, // ns/B => 8 GB/s effective across PCIe+memory
		VerbsPostCost:     400 * time.Nanosecond,
		RecvMatchCost:     200 * time.Nanosecond,
		RNRRetryDelay:     20 * time.Microsecond,
		RetransmitTimeout: 500 * time.Microsecond,
		TransportRetries:  7,
		QPSetupTime:       25 * time.Millisecond,
		QPActivateTime:    80 * time.Microsecond,

		NICCacheActiveQPs:   256,
		NICCacheMissPenalty: 1500 * time.Nanosecond,
		NICMTTEntries:       4096,
		NICMTTMissPenalty:   900 * time.Nanosecond,

		OneSidedPollInterval: 2 * time.Microsecond,
		OneSidedPollCost:     300 * time.Nanosecond,
		CASLatency:           4 * time.Microsecond,
		FuyaoEngineExtra:     8 * time.Microsecond,
		FuyaoPollInterval:    5 * time.Microsecond,

		MemcpyPerByteCached: 0.60, // ns/B, cache-resident copy
		MemcpyPerByteCold:   1.00, // ns/B, TLB-flushed main-memory copy
		MemcpyBase:          250 * time.Nanosecond,
		HugepageSize:        2 << 20,

		SoCDMAPerOp:   2600 * time.Nanosecond, // 2.6us 64B DMA read [95]
		SoCDMAPerByte: 0.33,                   // ns/B, ~3 GB/s effective SoC DMA bandwidth

		ComchSendCost:     300 * time.Nanosecond,
		ComchEDeliver:     3900 * time.Nanosecond,
		ComchEWakeup:      1400 * time.Nanosecond,
		ComchPDeliver:     300 * time.Nanosecond,
		ComchPPerEndpoint: 150 * time.Nanosecond,

		SKMsgSendCost:       400 * time.Nanosecond,
		SKMsgDeliver:        1000 * time.Nanosecond,
		SKMsgWakeup:         1300 * time.Nanosecond,
		SKMsgInterruptBase:  4500 * time.Nanosecond,
		SKMsgInterruptSlope: 150 * time.Nanosecond,
		SKMsgInterruptCap:   8000 * time.Nanosecond,
		LoopbackTCPRTT:      18 * time.Microsecond,
		LoopbackTCPCost:     4 * time.Microsecond,
		SemTokenCost:        250 * time.Nanosecond,

		KernelTCPPerMsg:       30 * time.Microsecond,
		KernelTCPPerByte:      0.60,
		KernelTCPLatency:      14 * time.Microsecond,
		FStackPerMsg:          2500 * time.Nanosecond,
		FStackPerByte:         0.25,
		FStackLatency:         1500 * time.Nanosecond,
		HTTPParseCost:         2 * time.Microsecond,
		ProxyUpstreamOverhead: 14 * time.Microsecond,
		ExtNetOneWay:          8 * time.Microsecond,

		DNETxCost:        1100 * time.Nanosecond,
		DNERxCost:        900 * time.Nanosecond,
		DNEExtraPerMsg:   0,
		RQReplenishBatch: 32,

		IngressScaleUpUtil:     0.60,
		IngressScaleDownUtil:   0.30,
		IngressScaleCheckEvery: 500 * time.Millisecond,
		IngressRestartPause:    150 * time.Millisecond,
		IngressMaxWorkers:      16,

		GwForwardCost:      800 * time.Nanosecond,
		GwDeliverCost:      600 * time.Nanosecond,
		GwFailoverInterval: 200 * time.Microsecond,
		GwWindow:           64,
		GwMaxHops:          8,

		DescriptorBytes: 16,
		PayloadDefault:  1024,
	}
}

// Clone returns a copy that experiments can mutate freely.
func (p *Params) Clone() *Params {
	q := *p
	return &q
}

// Bytes converts a per-byte cost in ns/B into a duration for n bytes.
func Bytes(nsPerByte float64, n int) time.Duration {
	return time.Duration(nsPerByte * float64(n))
}
