package params

import (
	"testing"
	"time"
)

func TestDefaultInvariants(t *testing.T) {
	p := Default()
	if p.HostCoreSpeed != 1.0 {
		t.Fatal("host core is the reference speed")
	}
	if !(p.DPUCoreSpeed < p.DPUNetSpeed && p.DPUNetSpeed < 1.0) {
		t.Fatalf("DPU speeds out of order: compute %v, net %v", p.DPUCoreSpeed, p.DPUNetSpeed)
	}
	if p.KernelTCPPerMsg <= p.FStackPerMsg {
		t.Fatal("kernel stack must cost more than F-stack")
	}
	if p.MemcpyPerByteCold <= p.MemcpyPerByteCached {
		t.Fatal("cold copies must cost more than cached ones")
	}
	if p.IngressScaleDownUtil >= p.IngressScaleUpUtil {
		t.Fatal("hysteresis thresholds inverted")
	}
	if p.SKMsgInterruptCap < p.SKMsgInterruptBase {
		t.Fatal("interrupt cap below base")
	}
	if p.QPSetupTime < 10*time.Millisecond {
		t.Fatal("QP setup should be tens of milliseconds (§3.3)")
	}
	if p.HugepageSize != 2<<20 {
		t.Fatal("hugepages are 2MB (§3.4)")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := Default()
	q := p.Clone()
	q.DNEExtraPerMsg = time.Hour
	if p.DNEExtraPerMsg == time.Hour {
		t.Fatal("Clone shares state with the original")
	}
}

func TestBytesHelper(t *testing.T) {
	if Bytes(0.5, 1000) != 500*time.Nanosecond {
		t.Fatalf("Bytes(0.5, 1000) = %v", Bytes(0.5, 1000))
	}
	if Bytes(2, 0) != 0 {
		t.Fatal("zero bytes should cost zero")
	}
}
