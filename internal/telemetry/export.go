package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"nadino/internal/trace"
)

// Profile names one scraper for export; a run that instruments several
// sweep points exports one profile per point.
type Profile struct {
	Name    string
	Scraper *Scraper
}

// fnum renders a float the same way on every platform (shortest
// round-trippable form), keeping exported files byte-stable.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV renders the scraped series in long form: one `series,t_us,value`
// row per sample, series in registration order.
func WriteCSV(w io.Writer, sc *Scraper) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "series,t_us,value")
	for _, t := range sc.tracks {
		key := t.meta.Key()
		for _, p := range t.series.Points {
			fmt.Fprintf(bw, "%s,%s,%s\n", key, fnum(float64(p.T.Nanoseconds())/1e3), fnum(p.V))
		}
	}
	return bw.Flush()
}

// jsonSeries is the JSON export shape of one series.
type jsonSeries struct {
	Key    string       `json:"key"`
	Name   string       `json:"name"`
	Labels []Label      `json:"labels,omitempty"`
	Points [][2]float64 `json:"points"` // [t_us, value]
}

// WriteJSON renders the scraped series as a JSON array in registration
// order, points as [t_us, value] pairs.
func WriteJSON(w io.Writer, sc *Scraper) error {
	out := make([]jsonSeries, 0, len(sc.tracks))
	for _, t := range sc.tracks {
		js := jsonSeries{Key: t.meta.Key(), Name: t.meta.Name, Labels: t.meta.Labels, Points: [][2]float64{}}
		for _, p := range t.series.Points {
			js.Points = append(js.Points, [2]float64{float64(p.T.Nanoseconds()) / 1e3, p.V})
		}
		out = append(out, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// promName maps a metric name onto the Prometheus exposition charset,
// prefixed with the repository namespace.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("nadino_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders an end-of-run snapshot in the Prometheus text
// exposition format 0.0.4: every series' final sample as a gauge with its
// labels, grouped by family (the format forbids interleaving a family's
// series with another's) with # HELP and # TYPE lines per family. For the
// live full-fidelity exposition (counter totals, histogram buckets), see
// WriteLivePrometheus.
func WritePrometheus(w io.Writer, sc *Scraper) error {
	bw := bufio.NewWriter(w)
	// Family-group the tracks in first-appearance order: registration
	// interleaves labeled variants (per-node loops register families
	// round-robin).
	order := make([]string, 0, len(sc.tracks))
	byName := make(map[string][]track)
	for _, t := range sc.tracks {
		if _, ok := byName[t.meta.Name]; !ok {
			order = append(order, t.meta.Name)
		}
		byName[t.meta.Name] = append(byName[t.meta.Name], t)
	}
	for _, fam := range order {
		name := promName(fam)
		fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(sc.reg.helpFor(fam)))
		fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
		for _, t := range byName[fam] {
			var last float64
			if n := len(t.series.Points); n > 0 {
				last = t.series.Points[n-1].V
			}
			if len(t.meta.Labels) == 0 {
				fmt.Fprintf(bw, "%s %s\n", name, fnum(last))
				continue
			}
			parts := make([]string, len(t.meta.Labels))
			for i, l := range t.meta.Labels {
				parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
			}
			fmt.Fprintf(bw, "%s{%s} %s\n", name, strings.Join(parts, ","), fnum(last))
		}
	}
	return bw.Flush()
}

// CounterTracks converts the scraped series into Chrome counter timelines
// for trace.WriteChromeWithCounters, prefixing each with the profile name
// so several runs coexist in one trace file.
func CounterTracks(prefix string, sc *Scraper) []trace.CounterTrack {
	out := make([]trace.CounterTrack, 0, len(sc.tracks))
	for _, t := range sc.tracks {
		ct := trace.CounterTrack{Name: prefix + t.meta.Key()}
		for _, p := range t.series.Points {
			ct.Points = append(ct.Points, trace.CounterPoint{T: p.T, V: p.V})
		}
		out = append(out, ct)
	}
	return out
}

// profileSummary is the summary.json shape for one profile.
type profileSummary struct {
	Profile string         `json:"profile"`
	Period  float64        `json:"period_us"`
	Series  []SummaryEntry `json:"series"`
}

// WriteSummary renders every profile's end-of-run gauge summary as JSON —
// the document cmd/benchjson archives alongside benchmark numbers.
func WriteSummary(w io.Writer, profiles []Profile) error {
	out := make([]profileSummary, 0, len(profiles))
	for _, p := range profiles {
		out = append(out, profileSummary{
			Profile: p.Name,
			Period:  float64(p.Scraper.Period().Nanoseconds()) / 1e3,
			Series:  p.Scraper.Summary(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// fileSafe maps a profile name onto a filesystem-safe stem.
func fileSafe(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}

// ExportDir writes the full export set for profiles into dir (created if
// missing): per profile `<name>.series.csv`, `<name>.series.json` and
// `<name>.prom`, plus the cross-profile `summary.json`, a standalone
// Chrome counter trace `counters.trace.json`, and the static
// `dashboard.html`. It returns the written paths in a fixed order.
func ExportDir(dir string, profiles []Profile) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	emit := func(name string, render func(io.Writer) error) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}
	var counters []trace.CounterTrack
	for _, p := range profiles {
		p := p
		stem := fileSafe(p.Name)
		if err := emit(stem+".series.csv", func(w io.Writer) error { return WriteCSV(w, p.Scraper) }); err != nil {
			return written, err
		}
		if err := emit(stem+".series.json", func(w io.Writer) error { return WriteJSON(w, p.Scraper) }); err != nil {
			return written, err
		}
		if err := emit(stem+".prom", func(w io.Writer) error { return WritePrometheus(w, p.Scraper) }); err != nil {
			return written, err
		}
		counters = append(counters, CounterTracks(p.Name+"/", p.Scraper)...)
	}
	if err := emit("summary.json", func(w io.Writer) error { return WriteSummary(w, profiles) }); err != nil {
		return written, err
	}
	if err := emit("counters.trace.json", func(w io.Writer) error {
		return trace.WriteChromeWithCounters(w, nil, counters)
	}); err != nil {
		return written, err
	}
	if err := emit("dashboard.html", func(w io.Writer) error { return WriteDashboard(w, profiles) }); err != nil {
		return written, err
	}
	return written, nil
}
