package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// LiveWatchdog evaluates threshold Rules continuously as the scraper
// samples, instead of once over the finished series like Watchdog. It
// attaches to a Scraper's OnSample hook and re-checks only each rule's
// newest window, carrying the sustain run across calls — so a breach fires
// the moment its Sustain-th consecutive bad sample lands, in engine context,
// while the system is still running. That is what lets nadino-svc dump the
// flight recorder *at* the breach rather than post-mortem.
//
// Episode semantics match Watchdog exactly: one violation per breach
// episode, a conforming sample closes the episode and re-arms the rule.
// Rule.From/To bound evaluation in virtual time as usual (To == 0 means
// forever). Recorded violations are guarded by a mutex so the HTTP plane
// can list them while the engine appends.
type LiveWatchdog struct {
	rules []Rule
	state []liveRuleState

	// OnBreach, if set, runs in engine context the moment a violation is
	// recorded. nadino-svc hooks the flight-recorder dump here.
	OnBreach func(Violation)

	mu         sync.Mutex
	violations []Violation
}

// liveRuleState is the per-rule episode accumulator.
type liveRuleState struct {
	run      int
	runStart time.Duration
	runValue float64
	fired    bool
	missing  bool // series-not-found already reported
}

// NewLiveWatchdog returns an empty live watchdog.
func NewLiveWatchdog() *LiveWatchdog { return &LiveWatchdog{} }

// Add registers a threshold rule. Add before Attach.
func (w *LiveWatchdog) Add(r Rule) {
	w.rules = append(w.rules, r)
	w.state = append(w.state, liveRuleState{})
}

// Attach hooks the watchdog to sc: every scrape window is evaluated as it
// closes. One watchdog attaches to one scraper.
func (w *LiveWatchdog) Attach(sc *Scraper) {
	sc.OnSample(func(now time.Duration) { w.step(sc, now) })
}

// step evaluates every rule against the sample that just landed at now.
// Engine context.
func (w *LiveWatchdog) step(sc *Scraper, now time.Duration) {
	for i := range w.rules {
		r := &w.rules[i]
		st := &w.state[i]
		if now < r.From || (r.To > 0 && now > r.To) {
			continue
		}
		s := sc.Lookup(r.Series)
		if s == nil {
			if !st.missing {
				st.missing = true
				w.record(Violation{Rule: r.Name, Series: r.Series, At: now, Detail: "series not found"})
			}
			continue
		}
		n := s.Len()
		if n == 0 {
			continue
		}
		p := s.Points[n-1]
		if p.T != now {
			continue // this series did not sample this window
		}
		if r.Op.holds(p.V, r.Bound) {
			st.run, st.fired = 0, false
			continue
		}
		if st.run == 0 {
			st.runStart, st.runValue = p.T, p.V
		}
		st.run++
		need := r.Sustain
		if need < 1 {
			need = 1
		}
		if st.run >= need && !st.fired {
			st.fired = true
			w.record(Violation{
				Rule: r.Name, Series: r.Series, At: st.runStart, Value: st.runValue,
				Detail: fmt.Sprintf("want %s %g, got %g for %d consecutive samples", r.Op, r.Bound, st.runValue, st.run),
			})
		}
	}
}

func (w *LiveWatchdog) record(v Violation) {
	w.mu.Lock()
	w.violations = append(w.violations, v)
	w.mu.Unlock()
	if w.OnBreach != nil {
		w.OnBreach(v)
	}
}

// Violations returns a copy of every violation recorded so far, in firing
// order. Safe to call from any goroutine.
func (w *LiveWatchdog) Violations() []Violation {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Violation, len(w.violations))
	copy(out, w.violations)
	return out
}

// Rules returns the registered rules in order (for the management API).
func (w *LiveWatchdog) Rules() []Rule {
	out := make([]Rule, len(w.rules))
	copy(out, w.rules)
	return out
}
