package telemetry

import (
	"bufio"
	"fmt"
	"html"
	"io"

	"nadino/internal/metrics"
)

// Chart geometry. Fixed numbers keep the generated file byte-stable.
const (
	chartW   = 640
	chartH   = 110
	chartPad = 6
)

// WriteDashboard renders a self-contained static HTML dashboard: one inline
// SVG line chart per scraped series, grouped by profile. No external
// assets, scripts or fonts — the file opens anywhere a browser does.
func WriteDashboard(w io.Writer, profiles []Profile) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, `<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>NADINO telemetry</title>
<style>
body{font:14px/1.4 system-ui,sans-serif;margin:24px;background:#fafafa;color:#222}
h1{font-size:20px} h2{font-size:16px;margin:28px 0 8px;border-bottom:1px solid #ddd;padding-bottom:4px}
figure{display:inline-block;margin:8px 12px 8px 0;padding:8px;background:#fff;border:1px solid #e2e2e2;border-radius:6px}
figcaption{font-size:12px;color:#444;margin-bottom:4px;max-width:640px;overflow-wrap:anywhere}
.stat{color:#888}
svg{display:block}
</style></head><body>
<h1>NADINO telemetry — virtual-time series</h1>
`)
	for _, p := range profiles {
		fmt.Fprintf(bw, "<h2>%s</h2>\n", html.EscapeString(p.Name))
		for _, t := range p.Scraper.tracks {
			writeChart(bw, t.meta.Key(), t.series)
		}
	}
	fmt.Fprint(bw, "</body></html>\n")
	return bw.Flush()
}

// writeChart renders one series as a figure with an inline SVG polyline.
func writeChart(w io.Writer, key string, s *metrics.Series) {
	pts := s.Points
	var last float64
	if len(pts) > 0 {
		last = pts[len(pts)-1].V
	}
	lo, hi := rangeOf(pts)
	fmt.Fprintf(w, `<figure><figcaption>%s <span class="stat">last %s · max %s</span></figcaption>`,
		html.EscapeString(key), fnum(last), fnum(hi))
	fmt.Fprintf(w, `<svg width="%d" height="%d" viewBox="0 0 %d %d">`, chartW, chartH, chartW, chartH)
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="#fff"/>`, chartW, chartH)
	if len(pts) > 1 {
		t0, t1 := pts[0].T, pts[len(pts)-1].T
		span := float64(t1 - t0)
		if span <= 0 {
			span = 1
		}
		vspan := hi - lo
		if vspan <= 0 {
			vspan = 1
		}
		fmt.Fprint(w, `<polyline fill="none" stroke="#2a6fdb" stroke-width="1.5" points="`)
		for i, p := range pts {
			x := chartPad + (float64(chartW-2*chartPad) * float64(p.T-t0) / span)
			y := float64(chartH-chartPad) - (float64(chartH-2*chartPad) * (p.V - lo) / vspan)
			if i > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprintf(w, "%.1f,%.1f", x, y)
		}
		fmt.Fprint(w, `"/>`)
	}
	// Axis annotations: min and max of the value range.
	fmt.Fprintf(w, `<text x="%d" y="12" font-size="9" fill="#999">%s</text>`, chartPad, fnum(hi))
	fmt.Fprintf(w, `<text x="%d" y="%d" font-size="9" fill="#999">%s</text>`, chartPad, chartH-2, fnum(lo))
	fmt.Fprint(w, "</svg></figure>\n")
}

// rangeOf returns the min and max sample values (0,0 when empty).
func rangeOf(pts []metrics.Point) (lo, hi float64) {
	if len(pts) == 0 {
		return 0, 0
	}
	lo, hi = pts[0].V, pts[0].V
	for _, p := range pts {
		if p.V < lo {
			lo = p.V
		}
		if p.V > hi {
			hi = p.V
		}
	}
	return lo, hi
}
