package telemetry

import (
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentScrapeWhileUpdate is the race-proofing stress for the live
// observability plane: writer goroutines hammer counters (and register new
// ones) while reader goroutines render the live Prometheus exposition and
// read counter values. Run under -race (`make race`) this pins the
// registry's concurrency contract: atomic counters, mutex-guarded
// registration, snapshot-based exposition. Gauges registered here read
// atomics only — engine-owned gauge state is out of contract (nadino-svc
// pauses the engine for those).
func TestConcurrentScrapeWhileUpdate(t *testing.T) {
	reg := NewRegistry()
	reg.SetHelp("stress.count", "Concurrent-update stress counter.")
	var depth atomic.Int64
	reg.Gauge("stress.depth", func() float64 { return float64(depth.Load()) })
	h := reg.Hist("stress.lat")
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond) // fed before the race, read during
	}

	counters := make([]*Counter, 8)
	for i := range counters {
		counters[i] = reg.Counter("stress.count", "lane", string(rune('a'+i)))
	}

	const (
		writers = 4
		readers = 4
		iters   = 2000
	)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				counters[(w+i)%len(counters)].Add(1)
				depth.Add(1)
				if i%500 == 0 {
					// Late registration during live scrapes must be safe.
					reg.Counter("stress.late", "writer", string(rune('a'+w)), "batch", string(rune('0'+i/500)))
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters/10; i++ {
				if err := WriteLivePrometheus(io.Discard, reg); err != nil {
					t.Errorf("live exposition failed: %v", err)
					return
				}
				for _, c := range counters {
					_ = c.Value()
				}
				_ = reg.Len()
			}
		}()
	}
	close(start)
	wg.Wait()

	var total uint64
	for _, c := range counters {
		total += c.Value()
	}
	if want := uint64(writers * iters); total != want {
		t.Fatalf("lost counter updates under contention: total %d, want %d", total, want)
	}
}
