package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"nadino/internal/sim"
	"nadino/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite the exporter golden files")

// goldenScraper builds a fixed-seed world exercising every probe kind —
// counter, gauge, rate and histogram — and scrapes it for 10ms of virtual
// time. Everything downstream of this (CSV, Prometheus text, Chrome
// counters) must be a pure function of it, byte for byte.
func goldenScraper(t *testing.T) *Scraper {
	t.Helper()
	eng := sim.NewEngine(42)
	reg := NewRegistry()

	reqs := reg.Counter("req.count", "tenant", "amber")
	depth := 0
	reg.Gauge("queue.depth", func() float64 { return float64(depth) }, "node", "nodeA")
	busy := time.Duration(0)
	reg.Rate("core.busy", func() float64 { return busy.Seconds() }, "core", "worker")
	lat := reg.Hist("req.lat", "chain", "checkout")

	eng.Ticker(100*time.Microsecond, func(now time.Duration) {
		reqs.Add(1 + uint64(eng.Rand().Intn(3)))
		depth = eng.Rand().Intn(16)
		busy += time.Duration(20+eng.Rand().Intn(60)) * time.Microsecond
		lat.Observe(time.Duration(50+eng.Rand().Intn(500)) * time.Microsecond)
	})
	sc := reg.Scrape(eng, 500*time.Microsecond)
	eng.RunUntil(10 * time.Millisecond)
	sc.Stop()
	return sc
}

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/telemetry/ -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden file (%d vs %d bytes).\n"+
			"A diff here means exporter output is no longer deterministic, or the format changed;\n"+
			"if the change is intentional, regenerate with `go test ./internal/telemetry/ -update`.\n--- got\n%s",
			name, len(got), len(want), got)
	}
}

// TestGoldenCSV pins the long-form CSV export byte-for-byte.
func TestGoldenCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, goldenScraper(t)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden.series.csv", buf.Bytes())
}

// TestGoldenPrometheus pins the Prometheus text exposition byte-for-byte.
func TestGoldenPrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenScraper(t)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden.prom", buf.Bytes())
}

// TestGoldenLivePrometheus pins the live full-fidelity exposition (counter
// totals, histogram bucket ladder) byte-for-byte — the bytes nadino-svc
// serves from /metrics for this registry state.
func TestGoldenLivePrometheus(t *testing.T) {
	var buf bytes.Buffer
	sc := goldenScraper(t)
	if err := WriteLivePrometheus(&buf, sc.reg); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden.live.prom", buf.Bytes())
}

// TestGoldenChromeCounters pins the Chrome counter-track trace export
// byte-for-byte.
func TestGoldenChromeCounters(t *testing.T) {
	var buf bytes.Buffer
	counters := CounterTracks("golden/", goldenScraper(t))
	if err := trace.WriteChromeWithCounters(&buf, nil, counters); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden.counters.trace.json", buf.Bytes())
}

// TestGoldenRebuildStable re-derives the whole pipeline twice in-process:
// the golden files pin cross-run determinism, this pins cross-build of the
// same engine state (catching map-iteration or pointer-order leaks).
func TestGoldenRebuildStable(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteCSV(&a, goldenScraper(t)); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&b, goldenScraper(t)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical worlds exported different CSV bytes")
	}
}
