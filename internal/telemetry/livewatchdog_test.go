package telemetry

import (
	"strings"
	"testing"
	"time"

	"nadino/internal/sim"
)

// TestLiveWatchdogEpisodes drives a gauge through two breach episodes and
// checks the live watchdog fires once per episode, at the episode's first
// breaching sample, the moment sustain is met — not post-mortem.
func TestLiveWatchdogEpisodes(t *testing.T) {
	eng := sim.NewEngine(7)
	reg := NewRegistry()
	depth := 0.0
	reg.Gauge("q.depth", func() float64 { return depth })
	sc := reg.Scrape(eng, time.Millisecond)

	w := NewLiveWatchdog()
	w.Add(Rule{Name: "depth-slo", Series: "q.depth", Op: OpLE, Bound: 10, Sustain: 2})
	var firedAt []time.Duration
	w.OnBreach = func(v Violation) { firedAt = append(firedAt, v.At) }
	w.Attach(sc)

	// Sample timeline (ms): 1..3 ok, 4..6 breach (episode 1), 7 ok,
	// 8 breach once (sustain not met), 9 ok, 10..11 breach (episode 2).
	plan := map[int]float64{4: 20, 5: 25, 6: 30, 8: 99, 10: 15, 11: 18}
	eng.Ticker(time.Millisecond, func(now time.Duration) {
		ms := int(now / time.Millisecond)
		if v, ok := plan[ms+1]; ok { // value the *next* scrape will see
			depth = v
		} else {
			depth = 1
		}
	})
	eng.RunUntil(12 * time.Millisecond)

	vs := w.Violations()
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2 episodes: %+v", len(vs), vs)
	}
	// Episode 1 starts at the 4ms sample, fires when sustain=2 is met.
	if vs[0].At != 4*time.Millisecond {
		t.Fatalf("episode 1 at %v, want 4ms", vs[0].At)
	}
	if vs[1].At != 10*time.Millisecond {
		t.Fatalf("episode 2 at %v, want 10ms", vs[1].At)
	}
	if len(firedAt) != 2 {
		t.Fatalf("OnBreach fired %d times, want 2", len(firedAt))
	}
	if !strings.Contains(vs[0].Detail, "consecutive") {
		t.Fatalf("detail missing sustain context: %q", vs[0].Detail)
	}
}

// TestLiveWatchdogMissingSeries checks an absent series is itself a
// violation, reported once.
func TestLiveWatchdogMissingSeries(t *testing.T) {
	eng := sim.NewEngine(7)
	reg := NewRegistry()
	reg.Gauge("present", func() float64 { return 0 })
	sc := reg.Scrape(eng, time.Millisecond)
	w := NewLiveWatchdog()
	w.Add(Rule{Name: "ghost", Series: "absent", Op: OpLE, Bound: 1})
	w.Attach(sc)
	eng.RunUntil(5 * time.Millisecond)
	vs := w.Violations()
	if len(vs) != 1 || vs[0].Detail != "series not found" {
		t.Fatalf("want exactly one series-not-found violation, got %+v", vs)
	}
}

// TestLiveWatchdogMatchesBatch runs the same rule live and post-mortem over
// the same world and requires identical verdicts — the live path is an
// incremental evaluation of the batch semantics, not a different SLO.
func TestLiveWatchdogMatchesBatch(t *testing.T) {
	rule := Rule{Name: "lat-slo", Series: "v", Op: OpLT, Bound: 0.5, Sustain: 3}

	build := func() (*sim.Engine, *Scraper) {
		eng := sim.NewEngine(99)
		reg := NewRegistry()
		v := 0.0
		reg.Gauge("v", func() float64 { return v })
		sc := reg.Scrape(eng, time.Millisecond)
		eng.Ticker(time.Millisecond, func(now time.Duration) {
			v = float64(eng.Rand().Intn(100)) / 100
		})
		return eng, sc
	}

	eng, sc := build()
	live := NewLiveWatchdog()
	live.Add(rule)
	live.Attach(sc)
	eng.RunUntil(50 * time.Millisecond)

	eng2, sc2 := build()
	eng2.RunUntil(50 * time.Millisecond)
	batch := NewWatchdog()
	batch.Add(rule)
	want := batch.Evaluate(sc2.Lookup)

	got := live.Violations()
	if len(got) != len(want) {
		t.Fatalf("live found %d violations, batch %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("violation %d differs:\nlive:  %+v\nbatch: %+v", i, got[i], want[i])
		}
	}
}

// TestBuildInfo checks the conventional build_info and uptime gauges land
// in the live exposition with both clocks.
func TestBuildInfo(t *testing.T) {
	eng := sim.NewEngine(1)
	reg := NewRegistry()
	reg.BuildInfo(eng.Now, time.Now())
	eng.RunUntil(3 * time.Second)
	var buf strings.Builder
	if err := WriteLivePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE nadino_build_info gauge",
		`nadino_build_info{version="dev",goversion="go`,
		`nadino_process_uptime_seconds{clock="virtual"} 3`,
		`nadino_process_uptime_seconds{clock="wall"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
