package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"nadino/internal/metrics"
	"nadino/internal/sim"
)

func TestMetaKey(t *testing.T) {
	m := Meta{Name: "dne.keeper_debt", Labels: []Label{{"node", "nodeA"}, {"tenant", "t1"}}}
	if got, want := m.Key(), "dne.keeper_debt{node=nodeA,tenant=t1}"; got != want {
		t.Fatalf("key %q, want %q", got, want)
	}
	if got := (Meta{Name: "sim.pending"}).Key(); got != "sim.pending" {
		t.Fatalf("unlabeled key %q", got)
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tx", "node", "a")
	reg.Counter("tx", "node", "b") // different labels: fine
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.Gauge("tx", func() float64 { return 0 }, "node", "a")
}

func TestCounterNilSafeAndZeroAlloc(t *testing.T) {
	var nilC *Counter
	nilC.Add(3) // must not panic
	if nilC.Value() != 0 {
		t.Fatal("nil counter reported non-zero")
	}
	c := NewRegistry().Counter("x")
	if allocs := testing.AllocsPerRun(1000, func() { c.Add(1) }); allocs != 0 {
		t.Fatalf("Counter.Add allocates %v per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() { nilC.Add(1) }); allocs != 0 {
		t.Fatalf("nil Counter.Add allocates %v per op, want 0", allocs)
	}
}

func TestHistNilSafe(t *testing.T) {
	var h *Hist
	h.Observe(time.Millisecond) // must not panic
	if h.Snapshot() != nil {
		t.Fatal("nil hist snapshot not nil")
	}
}

// buildRun wires a small deterministic simulation with all four probe
// kinds and runs it for 10ms with a 1ms scrape period.
func buildRun(seed int64) *Scraper {
	eng := sim.NewEngine(seed)
	reg := NewRegistry()
	c := reg.Counter("events", "node", "a")
	depth := 0
	reg.Gauge("depth", func() float64 { return float64(depth) })
	var busy time.Duration
	reg.Rate("util", func() float64 { return busy.Seconds() })
	h := reg.Hist("rtt", "tenant", "t1")
	// 4 events and 0.5ms of busy time per millisecond; depth follows time.
	eng.Ticker(250*time.Microsecond, func(now time.Duration) {
		c.Add(1)
		busy += 125 * time.Microsecond
		depth = int(now / time.Millisecond)
		h.Observe(time.Duration(eng.Rand().Intn(1000)+100) * time.Microsecond)
	})
	sc := reg.Scrape(eng, time.Millisecond)
	eng.RunUntil(10 * time.Millisecond)
	return sc
}

func TestScraperSampling(t *testing.T) {
	sc := buildRun(7)
	series := sc.Series()
	// counter + gauge + rate + hist(p50,p99) = 5 series.
	if len(series) != 5 {
		t.Fatalf("got %d series, want 5", len(series))
	}
	for _, s := range series {
		if s.Len() != 10 {
			t.Fatalf("series %s has %d points, want 10", s.Name, s.Len())
		}
	}
	ev := sc.Lookup("events{node=a}")
	if ev == nil {
		t.Fatal("counter series not found by key")
	}
	// 4 events/ms = 4000 events/s in every full window.
	if got := ev.Points[3].V; got != 4000 {
		t.Fatalf("counter rate %v, want 4000", got)
	}
	util := sc.Lookup("util")
	if util == nil {
		t.Fatal("rate series not found")
	}
	// 0.5ms busy per 1ms window = 0.5 utilization.
	if got := util.Points[3].V; got < 0.49 || got > 0.51 {
		t.Fatalf("utilization %v, want ~0.5", got)
	}
	p99 := sc.Lookup("rtt.p99{tenant=t1}")
	if p99 == nil || p99.Points[9].V <= 0 {
		t.Fatal("hist p99 series missing or zero")
	}
	if sc.Lookup("no.such.series") != nil {
		t.Fatal("lookup of unknown key returned a series")
	}
}

func TestScraperSummary(t *testing.T) {
	sc := buildRun(7)
	sum := sc.Summary()
	if len(sum) != 5 {
		t.Fatalf("summary has %d entries, want 5", len(sum))
	}
	if sum[0].Key != "events{node=a}" || sum[0].Last != 4000 {
		t.Fatalf("summary[0] = %+v", sum[0])
	}
	if sum[1].Key != "depth" || sum[1].Max < sum[1].Mean {
		t.Fatalf("summary[1] = %+v", sum[1])
	}
}

func TestExportDeterminism(t *testing.T) {
	render := func(seed int64) (csv, js, prom, dash string) {
		sc := buildRun(seed)
		var b1, b2, b3, b4 bytes.Buffer
		if err := WriteCSV(&b1, sc); err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(&b2, sc); err != nil {
			t.Fatal(err)
		}
		if err := WritePrometheus(&b3, sc); err != nil {
			t.Fatal(err)
		}
		if err := WriteDashboard(&b4, []Profile{{Name: "run", Scraper: sc}}); err != nil {
			t.Fatal(err)
		}
		return b1.String(), b2.String(), b3.String(), b4.String()
	}
	c1, j1, p1, d1 := render(42)
	c2, j2, p2, d2 := render(42)
	if c1 != c2 || j1 != j2 || p1 != p2 || d1 != d2 {
		t.Fatal("exports differ across identical runs")
	}
	c3, _, _, _ := render(43)
	if c1 == c3 {
		t.Fatal("different seeds produced identical CSV (suspicious)")
	}
}

func TestExportFormats(t *testing.T) {
	sc := buildRun(7)

	var csv bytes.Buffer
	if err := WriteCSV(&csv, sc); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "series,t_us,value" {
		t.Fatalf("csv header %q", lines[0])
	}
	if len(lines) != 1+5*10 {
		t.Fatalf("csv has %d lines, want %d", len(lines), 1+5*10)
	}

	var js bytes.Buffer
	if err := WriteJSON(&js, sc); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("series JSON invalid: %v", err)
	}
	if len(decoded) != 5 {
		t.Fatalf("JSON has %d series, want 5", len(decoded))
	}

	var prom bytes.Buffer
	if err := WritePrometheus(&prom, sc); err != nil {
		t.Fatal(err)
	}
	ps := prom.String()
	if !strings.Contains(ps, "# TYPE nadino_events gauge") {
		t.Fatalf("prom output missing TYPE line:\n%s", ps)
	}
	if !strings.Contains(ps, `nadino_events{node="a"} 4000`) {
		t.Fatalf("prom output missing labeled sample:\n%s", ps)
	}
	if !strings.Contains(ps, "nadino_rtt_p99{") {
		t.Fatalf("prom output missing sanitized hist name:\n%s", ps)
	}

	tracks := CounterTracks("run/", sc)
	if len(tracks) != 5 || tracks[0].Name != "run/events{node=a}" || len(tracks[0].Points) != 10 {
		t.Fatalf("counter tracks malformed: %d tracks, first %+v", len(tracks), tracks[0].Name)
	}

	var dash bytes.Buffer
	if err := WriteDashboard(&dash, []Profile{{Name: "run", Scraper: sc}}); err != nil {
		t.Fatal(err)
	}
	ds := dash.String()
	if !strings.Contains(ds, "<svg") || !strings.Contains(ds, "<polyline") {
		t.Fatal("dashboard missing SVG charts")
	}
	if strings.Contains(ds, "<script") {
		t.Fatal("dashboard must be script-free")
	}
}

func TestExportDir(t *testing.T) {
	sc := buildRun(7)
	dir := t.TempDir()
	files, err := ExportDir(dir, []Profile{{Name: "res-storm/storm", Scraper: sc}})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 6 {
		t.Fatalf("wrote %d files, want 6: %v", len(files), files)
	}
	for _, f := range files {
		if strings.Contains(f, "res-storm/storm") {
			t.Fatalf("unsanitized profile name in path %q", f)
		}
	}
}

func TestWatchdogThreshold(t *testing.T) {
	s := metrics.NewSeries("goodput")
	for i := 0; i < 10; i++ {
		v := 100.0
		if i >= 3 && i <= 5 {
			v = 40 // one three-sample dip
		}
		s.Add(time.Duration(i)*time.Millisecond, v)
	}
	lookup := func(key string) *metrics.Series {
		if key == "goodput" {
			return s
		}
		return nil
	}

	wd := NewWatchdog()
	wd.Add(Rule{Name: "floor", Series: "goodput", Op: OpGE, Bound: 50, Sustain: 2})
	vs := wd.Evaluate(lookup)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1: %v", len(vs), vs)
	}
	if vs[0].At != 3*time.Millisecond || vs[0].Value != 40 {
		t.Fatalf("violation anchored wrong: %+v", vs[0])
	}

	// Sustain larger than the dip: no violation.
	wd2 := NewWatchdog()
	wd2.Add(Rule{Name: "floor", Series: "goodput", Op: OpGE, Bound: 50, Sustain: 4})
	if vs := wd2.Evaluate(lookup); len(vs) != 0 {
		t.Fatalf("sustain=4 should tolerate a 3-sample dip: %v", vs)
	}

	// Window excludes the dip: no violation.
	wd3 := NewWatchdog()
	wd3.Add(Rule{Name: "floor", Series: "goodput", From: 6 * time.Millisecond, Op: OpGE, Bound: 50})
	if vs := wd3.Evaluate(lookup); len(vs) != 0 {
		t.Fatalf("windowed rule should pass: %v", vs)
	}

	// Missing series is itself a violation.
	wd4 := NewWatchdog()
	wd4.Add(Rule{Name: "ghost", Series: "nope", Op: OpLT, Bound: 1})
	if vs := wd4.Evaluate(lookup); len(vs) != 1 || vs[0].Detail != "series not found" {
		t.Fatalf("missing series not flagged: %v", vs)
	}
}

func TestWatchdogThresholdEpisodes(t *testing.T) {
	s := metrics.NewSeries("x")
	vals := []float64{1, 9, 9, 1, 1, 9, 9, 9, 1}
	for i, v := range vals {
		s.Add(time.Duration(i)*time.Millisecond, v)
	}
	wd := NewWatchdog()
	wd.Add(Rule{Name: "ceil", Series: "x", Op: OpLT, Bound: 5, Sustain: 2})
	vs := wd.Evaluate(func(string) *metrics.Series { return s })
	if len(vs) != 2 {
		t.Fatalf("want one violation per breach episode, got %d: %v", len(vs), vs)
	}
}

func TestWatchdogRecovery(t *testing.T) {
	s := metrics.NewSeries("goodput")
	// Baseline 100 for 5ms, dip to 20 for 3ms, back to 100.
	for i := 0; i < 20; i++ {
		v := 100.0
		if i >= 5 && i < 8 {
			v = 20
		}
		s.Add(time.Duration(i)*time.Millisecond, v)
	}
	lookup := func(string) *metrics.Series { return s }

	wd := NewWatchdog()
	wd.AddRecovery(RecoveryRule{
		Name: "recovers", Series: "goodput",
		BaselineFrom: 0, BaselineTo: 4 * time.Millisecond,
		ClearAt: 7 * time.Millisecond, Within: 5 * time.Millisecond,
		Tolerance: 0.05, Sustain: 2,
	})
	if vs := wd.Evaluate(lookup); len(vs) != 0 {
		t.Fatalf("healthy recovery flagged: %v", vs)
	}

	// Impossible budget: recovery at 8ms is 1ms after clear, so Within
	// shorter than that must fire.
	wd2 := NewWatchdog()
	wd2.AddRecovery(RecoveryRule{
		Name: "tight", Series: "goodput",
		BaselineFrom: 0, BaselineTo: 4 * time.Millisecond,
		ClearAt: 7 * time.Millisecond, Within: 500 * time.Microsecond,
		Tolerance: 0.05, Sustain: 2,
	})
	if vs := wd2.Evaluate(lookup); len(vs) != 1 {
		t.Fatalf("budget overrun not flagged: %v", vs)
	}

	// Never recovers.
	flat := metrics.NewSeries("dead")
	for i := 0; i < 10; i++ {
		flat.Add(time.Duration(i)*time.Millisecond, 10)
	}
	wd3 := NewWatchdog()
	wd3.AddRecovery(RecoveryRule{
		Name: "dead", Series: "dead",
		BaselineFrom: 0, BaselineTo: 2 * time.Millisecond,
		ClearAt: 3 * time.Millisecond, Within: 5 * time.Millisecond,
		Tolerance: 0.05, Sustain: 2,
	})
	// Baseline is 10 and the series stays at 10, so it "recovers"
	// immediately — use a real collapse instead.
	collapse := metrics.NewSeries("collapse")
	for i := 0; i < 10; i++ {
		v := 100.0
		if i >= 3 {
			v = 10
		}
		collapse.Add(time.Duration(i)*time.Millisecond, v)
	}
	wd4 := NewWatchdog()
	wd4.AddRecovery(RecoveryRule{
		Name: "never", Series: "collapse",
		BaselineFrom: 0, BaselineTo: 2 * time.Millisecond,
		ClearAt:   4 * time.Millisecond,
		Tolerance: 0.05, Sustain: 2,
	})
	vs := wd4.Evaluate(func(string) *metrics.Series { return collapse })
	if len(vs) != 1 || !strings.Contains(vs[0].Detail, "no sustained return") {
		t.Fatalf("permanent collapse not flagged: %v", vs)
	}
}
