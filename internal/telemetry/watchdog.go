package telemetry

import (
	"fmt"
	"time"

	"nadino/internal/metrics"
)

// Op is a threshold-rule comparison: the assertion every sample must
// satisfy against the rule's Bound.
type Op int

// Threshold operators.
const (
	OpLT Op = iota // value <  Bound
	OpLE           // value <= Bound
	OpGT           // value >  Bound
	OpGE           // value >= Bound
)

func (o Op) String() string {
	switch o {
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	}
	return "?"
}

func (o Op) holds(v, bound float64) bool {
	switch o {
	case OpLT:
		return v < bound
	case OpLE:
		return v <= bound
	case OpGT:
		return v > bound
	case OpGE:
		return v >= bound
	}
	return false
}

// Rule is a declarative threshold SLO over one series: every sample inside
// [From, To] must satisfy `value Op Bound`. Sustain tolerates short
// excursions — a violation is emitted only after Sustain consecutive
// breaching samples (default 1), one violation per breach episode.
type Rule struct {
	Name   string
	Series string // canonical series key (Meta.Key)
	From   time.Duration
	To     time.Duration // 0 = end of series
	Op     Op
	Bound  float64
	// Sustain is how many consecutive samples must breach before a
	// violation fires; values < 1 mean 1.
	Sustain int
}

// RecoveryRule is a declarative recovery SLO: after the fault clears at
// ClearAt, the series must make a sustained return to within Tolerance of
// its own baseline (measured over [BaselineFrom, BaselineTo]) in at most
// Within of virtual time. It wraps metrics.RecoveryDetector, replacing the
// hand-rolled recovery assertions in the resilience experiments.
type RecoveryRule struct {
	Name         string
	Series       string
	BaselineFrom time.Duration
	BaselineTo   time.Duration
	ClearAt      time.Duration
	Within       time.Duration
	Tolerance    float64 // fraction below baseline still counted recovered
	Sustain      int     // consecutive recovered samples required (min 1)
}

// Violation is one structured SLO breach record.
type Violation struct {
	Rule   string        `json:"rule"`
	Series string        `json:"series"`
	At     time.Duration `json:"at_ns"`
	Value  float64       `json:"value"`
	Detail string        `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s at %v (value %g): %s", v.Rule, v.Series, v.At, v.Value, v.Detail)
}

// Watchdog evaluates a set of declarative rules over collected series.
// Rules are checked in the order added; evaluation is a pure function of
// the series, so watchdog verdicts inherit the simulation's determinism.
type Watchdog struct {
	rules    []Rule
	recovery []RecoveryRule
}

// NewWatchdog returns an empty watchdog.
func NewWatchdog() *Watchdog { return &Watchdog{} }

// Add registers a threshold rule.
func (w *Watchdog) Add(r Rule) { w.rules = append(w.rules, r) }

// AddRecovery registers a recovery rule.
func (w *Watchdog) AddRecovery(r RecoveryRule) { w.recovery = append(w.recovery, r) }

// Evaluate runs every rule against the series returned by lookup (a
// Scraper's Lookup, or any map over metrics.Series) and returns the
// violations in rule order. A rule whose series is missing is itself a
// violation — a silently absent SLO is worse than a failing one.
func (w *Watchdog) Evaluate(lookup func(key string) *metrics.Series) []Violation {
	var out []Violation
	for _, r := range w.rules {
		out = append(out, evalThreshold(r, lookup(r.Series))...)
	}
	for _, r := range w.recovery {
		out = append(out, evalRecovery(r, lookup(r.Series))...)
	}
	return out
}

func evalThreshold(r Rule, s *metrics.Series) []Violation {
	if s == nil {
		return []Violation{{Rule: r.Name, Series: r.Series, Detail: "series not found"}}
	}
	need := r.Sustain
	if need < 1 {
		need = 1
	}
	var out []Violation
	run := 0
	var runStart time.Duration
	var runValue float64
	fired := false
	for _, p := range s.Points {
		if p.T < r.From || (r.To > 0 && p.T > r.To) {
			continue
		}
		if r.Op.holds(p.V, r.Bound) {
			run, fired = 0, false
			continue
		}
		if run == 0 {
			runStart, runValue = p.T, p.V
		}
		run++
		if run >= need && !fired {
			out = append(out, Violation{
				Rule: r.Name, Series: r.Series, At: runStart, Value: runValue,
				Detail: fmt.Sprintf("want %s %g, got %g for %d consecutive samples", r.Op, r.Bound, runValue, run),
			})
			fired = true // one violation per breach episode
		}
	}
	return out
}

func evalRecovery(r RecoveryRule, s *metrics.Series) []Violation {
	if s == nil {
		return []Violation{{Rule: r.Name, Series: r.Series, Detail: "series not found"}}
	}
	baseline := s.MeanBetween(r.BaselineFrom, r.BaselineTo)
	det := metrics.RecoveryDetector{Baseline: baseline, Tolerance: r.Tolerance, Sustain: r.Sustain}
	rt, ok := det.Detect(s, r.ClearAt)
	if !ok {
		return []Violation{{
			Rule: r.Name, Series: r.Series, At: r.ClearAt, Value: baseline,
			Detail: fmt.Sprintf("no sustained return to within %.0f%% of baseline %g after fault clear", 100*r.Tolerance, baseline),
		}}
	}
	if r.Within > 0 && rt > r.Within {
		return []Violation{{
			Rule: r.Name, Series: r.Series, At: r.ClearAt + rt, Value: rt.Seconds(),
			Detail: fmt.Sprintf("recovered in %v, budget %v", rt, r.Within),
		}}
	}
	return nil
}
