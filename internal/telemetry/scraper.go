package telemetry

import (
	"time"

	"nadino/internal/metrics"
	"nadino/internal/sim"
)

// track is one exported time series plus the metadata it was derived from.
type track struct {
	meta   Meta
	series *metrics.Series
}

// Scraper samples every probe of a Registry on a fixed virtual-time period
// into append-only series. It is driven by the engine's Ticker, so samples
// land at deterministic instants and the whole output is a pure function of
// the seed. One registry feeds at most one scraper.
type Scraper struct {
	reg    *Registry
	probes []probe // snapshot of reg at Scrape time, fixes series order
	period time.Duration

	tracks []track
	// lastV holds the previous cumulative reading for counter and rate
	// probes, indexed by probe position.
	lastV []float64
	stop  func()

	// onSample hooks run after each scrape period's samples land, in
	// engine context — the live SLO watchdog evaluates here.
	onSample []func(now time.Duration)

	// retain > 0 bounds each series to roughly that many newest points
	// (see Retain) — batch runs keep everything, daemons must not.
	retain int
}

// Scrape starts sampling the registry every period of virtual time,
// beginning one period from now. Call Stop to detach; stopping is optional
// when the engine simply halts. Probes registered after Scrape are not
// sampled (register first, scrape second).
func (r *Registry) Scrape(eng *sim.Engine, period time.Duration) *Scraper {
	probes := r.snapshot()
	sc := &Scraper{reg: r, probes: probes, period: period, lastV: make([]float64, len(probes))}
	for _, p := range probes {
		switch p.kind {
		case kindHist:
			for _, q := range []string{".p50", ".p99"} {
				m := Meta{Name: p.meta.Name + q, Labels: p.meta.Labels}
				sc.tracks = append(sc.tracks, track{meta: m, series: metrics.NewSeries(m.Key())})
			}
		default:
			sc.tracks = append(sc.tracks, track{meta: p.meta, series: metrics.NewSeries(p.meta.Key())})
		}
	}
	// Seed the cumulative baselines at start so the first window's rates
	// cover (start, start+period] rather than (0, start+period].
	for i, p := range probes {
		switch p.kind {
		case kindCounter:
			sc.lastV[i] = float64(p.counter.Value())
		case kindRate:
			sc.lastV[i] = p.fn()
		}
	}
	sc.stop = eng.Ticker(period, sc.sample)
	return sc
}

// sample appends one reading per track. Engine context.
func (sc *Scraper) sample(now time.Duration) {
	secs := sc.period.Seconds()
	ti := 0
	for i, p := range sc.probes {
		switch p.kind {
		case kindCounter:
			v := float64(p.counter.Value())
			sc.tracks[ti].series.Add(now, (v-sc.lastV[i])/secs)
			sc.lastV[i] = v
			ti++
		case kindGauge:
			sc.tracks[ti].series.Add(now, p.fn())
			ti++
		case kindRate:
			v := p.fn()
			sc.tracks[ti].series.Add(now, (v-sc.lastV[i])/secs)
			sc.lastV[i] = v
			ti++
		case kindHist:
			sc.tracks[ti].series.Add(now, float64(p.hist.P50())/float64(time.Second))
			sc.tracks[ti+1].series.Add(now, float64(p.hist.P99())/float64(time.Second))
			ti += 2
		}
	}
	for _, fn := range sc.onSample {
		fn(now)
	}
	// Trim lazily at 2x the retention bound so steady state amortizes the
	// copies: each series oscillates between retain and 2*retain points.
	if sc.retain > 0 {
		for _, t := range sc.tracks {
			if pts := t.series.Points; len(pts) >= 2*sc.retain {
				n := copy(pts, pts[len(pts)-sc.retain:])
				t.series.Points = pts[:n]
			}
		}
	}
}

// Retain bounds every series to between n and 2n of its newest points,
// trimmed as samples land. A long-running daemon scrapes forever; without
// a bound the append-only series are an unbounded leak. n <= 0 restores
// keep-everything (the batch-run default).
func (sc *Scraper) Retain(n int) { sc.retain = n }

// OnSample registers fn to run after each scrape period's samples land, in
// engine context. The live watchdog attaches here so rules see every window
// the moment it closes.
func (sc *Scraper) OnSample(fn func(now time.Duration)) {
	sc.onSample = append(sc.onSample, fn)
}

// Stop detaches the scraper from the engine clock.
func (sc *Scraper) Stop() { sc.stop() }

// Period reports the scrape period.
func (sc *Scraper) Period() time.Duration { return sc.period }

// Series returns the collected series in registration order.
func (sc *Scraper) Series() []*metrics.Series {
	out := make([]*metrics.Series, len(sc.tracks))
	for i, t := range sc.tracks {
		out[i] = t.series
	}
	return out
}

// Lookup finds a series by its canonical key (Meta.Key), or nil.
func (sc *Scraper) Lookup(key string) *metrics.Series {
	for _, t := range sc.tracks {
		if t.meta.Key() == key {
			return t.series
		}
	}
	return nil
}

// SummaryEntry condenses one series for end-of-run archiving.
type SummaryEntry struct {
	Key  string  `json:"key"`
	Last float64 `json:"last"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// Summary returns the end-of-run gauge summary in registration order: the
// final sample, the whole-run mean, and the peak of every series.
func (sc *Scraper) Summary() []SummaryEntry {
	out := make([]SummaryEntry, 0, len(sc.tracks))
	for _, t := range sc.tracks {
		e := SummaryEntry{Key: t.meta.Key()}
		pts := t.series.Points
		if n := len(pts); n > 0 {
			e.Last = pts[n-1].V
			e.Mean = t.series.MeanBetween(0, pts[n-1].T)
			e.Max = t.series.Max()
		}
		out = append(out, e)
	}
	return out
}
