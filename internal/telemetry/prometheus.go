package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"
)

// This file is the *live* Prometheus exposition: it renders the registry's
// current state directly (counter totals, gauge callbacks, full histogram
// bucket/sum/count), unlike export.go's WritePrometheus which snapshots the
// scraper's end-of-run series. nadino-svc serves this from /metrics on
// every scrape, so the output follows the text exposition format 0.0.4
// fully: # HELP and # TYPE per family, families contiguous (never
// interleaved), counters suffixed _total, histograms as cumulative
// _bucket{le=...} plus _sum and _count.
//
// Gauge, rate and histogram probes read engine-owned state; callers off the
// engine goroutine must hold the engine paused (nadino-svc renders under
// its pacer lock). Counter reads are atomic and safe at any time.

// LiveContentType is the Content-Type a conforming scrape endpoint must
// send with this exposition.
const LiveContentType = "text/plain; version=0.0.4; charset=utf-8"

// promBuckets are the upper bounds (seconds) used to expose the internal
// 1024-bucket log-spaced histogram as a conventional Prometheus bucket
// ladder, ~10µs to 10s. The internal resolution (~2% per bucket) is much
// finer than the ladder, so cumulative counts at these bounds are exact at
// ladder resolution.
var promBuckets = []time.Duration{
	10 * time.Microsecond, 25 * time.Microsecond, 50 * time.Microsecond, 100 * time.Microsecond,
	250 * time.Microsecond, 500 * time.Microsecond, 1 * time.Millisecond, 2500 * time.Microsecond,
	5 * time.Millisecond, 10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond, 1 * time.Second,
	2500 * time.Millisecond, 5 * time.Second, 10 * time.Second,
}

// promLabels renders a label set (no braces); extra appends k=v pairs after
// the probe's own labels.
func promLabels(ls []Label, extra ...string) string {
	parts := make([]string, 0, len(ls)+len(extra)/2)
	for _, l := range ls {
		parts = append(parts, fmt.Sprintf("%s=%q", l.Key, l.Value))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", extra[i], extra[i+1]))
	}
	return strings.Join(parts, ",")
}

// promSeries renders one exposition line: name, optional label set, value.
func promSeries(bw *bufio.Writer, name, labelSet, value string) {
	if labelSet == "" {
		fmt.Fprintf(bw, "%s %s\n", name, value)
		return
	}
	fmt.Fprintf(bw, "%s{%s} %s\n", name, labelSet, value)
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteLivePrometheus renders the registry's current state in the
// Prometheus text exposition format 0.0.4. Output order is registration
// order grouped by family, so it is deterministic for a fixed registry.
func WriteLivePrometheus(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	probes := r.snapshot()

	// Group by family in first-appearance order: the format forbids
	// interleaving series of one family with another, and registration
	// order interleaves freely (per-node loops register several families
	// round-robin).
	type family struct {
		name   string // original metric name (help key)
		probes []probe
	}
	var families []family
	index := make(map[string]int)
	for _, p := range probes {
		i, ok := index[p.meta.Name]
		if !ok {
			i = len(families)
			index[p.meta.Name] = i
			families = append(families, family{name: p.meta.Name})
		}
		families[i].probes = append(families[i].probes, p)
	}

	for _, f := range families {
		kind := f.probes[0].kind
		base := promName(f.name)
		switch kind {
		case kindCounter, kindRate:
			// Rates are cumulative callbacks (busy seconds, bytes);
			// both expose as monotone counters and Prometheus rate()
			// recovers the derivative the scraper computes internally.
			name := base + "_total"
			fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(r.helpFor(f.name)))
			fmt.Fprintf(bw, "# TYPE %s counter\n", name)
			for _, p := range f.probes {
				var v string
				if p.kind == kindCounter {
					v = fmt.Sprintf("%d", p.counter.Value())
				} else {
					v = fnum(p.fn())
				}
				promSeries(bw, name, promLabels(p.meta.Labels), v)
			}
		case kindGauge:
			fmt.Fprintf(bw, "# HELP %s %s\n", base, escapeHelp(r.helpFor(f.name)))
			fmt.Fprintf(bw, "# TYPE %s gauge\n", base)
			for _, p := range f.probes {
				promSeries(bw, base, promLabels(p.meta.Labels), fnum(p.fn()))
			}
		case kindHist:
			name := base + "_seconds"
			fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(r.helpFor(f.name)))
			fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
			for _, p := range f.probes {
				h := p.hist
				for _, ub := range promBuckets {
					promSeries(bw, name+"_bucket",
						promLabels(p.meta.Labels, "le", fnum(ub.Seconds())),
						fmt.Sprintf("%d", h.CumulativeLE(ub)))
				}
				promSeries(bw, name+"_bucket",
					promLabels(p.meta.Labels, "le", "+Inf"),
					fmt.Sprintf("%d", h.Count()))
				promSeries(bw, name+"_sum", promLabels(p.meta.Labels), fnum(h.Sum().Seconds()))
				promSeries(bw, name+"_count", promLabels(p.meta.Labels), fmt.Sprintf("%d", h.Count()))
			}
		}
	}
	return bw.Flush()
}
