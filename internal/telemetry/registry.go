// Package telemetry is the simulation's unified observability layer: a
// labeled metric registry, a virtual-time scraper that snapshots live
// gauges across the stack into append-only time series, exporters (CSV,
// JSON, Prometheus text format, Chrome-trace counter events, a static HTML
// dashboard), and an SLO watchdog that evaluates declarative rules over
// the series in virtual time.
//
// The design follows the repository's two instrumentation idioms:
//
//   - Zero cost when off. Hot-path handles (Counter, Hist) are nil-safe
//     no-ops, exactly like trace.Req: model code holds a possibly-nil
//     pointer and pays one branch when telemetry is disabled. Gauges are
//     pull-based callbacks over accessors the layers already expose, so an
//     uninstrumented run executes no telemetry code at all.
//
//   - Deterministic output. Probes are registered into insertion-order
//     slices (never iterated from maps), the scraper rides the engine's
//     virtual-time Ticker, and every exporter formats floats with
//     strconv — for a fixed seed the exported bytes are identical
//     run-to-run and identical between sequential and parallel sharded
//     experiment execution.
package telemetry

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nadino/internal/metrics"
)

// Label is one key=value dimension of a metric (tenant, node, link, ...).
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Meta identifies one metric: a name plus ordered labels. Label order is
// the registration order and is part of the series identity.
type Meta struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
}

// Key renders the canonical series key, e.g. `dne.keeper_debt{node=nodeA}`.
func (m Meta) Key() string {
	if len(m.Labels) == 0 {
		return m.Name
	}
	var b strings.Builder
	b.WriteString(m.Name)
	b.WriteByte('{')
	for i, l := range m.Labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// labels converts variadic "k1, v1, k2, v2" pairs into ordered Labels.
func labels(kv []string) []Label {
	if len(kv)%2 != 0 {
		panic("telemetry: labels must come in key/value pairs")
	}
	ls := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{Key: kv[i], Value: kv[i+1]})
	}
	return ls
}

// probeKind discriminates how a probe is sampled.
type probeKind int

const (
	kindCounter probeKind = iota // push counter -> windowed rate series
	kindGauge                    // callback -> instantaneous value series
	kindRate                     // cumulative callback -> windowed derivative
	kindHist                     // histogram handle -> p50/p99 series
)

// probe is one registered metric source. A single insertion-order slice
// holds every kind so the scraper's series order is the registration order.
type probe struct {
	meta    Meta
	kind    probeKind
	counter *Counter
	fn      func() float64
	hist    *metrics.Hist
}

// Counter is a monotonically increasing event count with an allocation-free
// hot path. Model code holds a possibly-nil *Counter; Add on nil is a no-op,
// so instrumented paths cost one branch when telemetry is off (the
// trace.Req idiom). The scraper converts counters into windowed rate
// series (events/second per scrape period).
//
// The count is atomic so a live scrape (the nadino-svc /metrics endpoint,
// served off the simulation loop) can read counters while the engine
// updates them without a data race; the simulation itself stays
// single-threaded and pays one uncontended atomic add.
type Counter struct {
	meta Meta
	v    atomic.Uint64
}

// Add records n events. Safe (and free) on a nil Counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reports the lifetime count; 0 on a nil Counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Hist is a labeled histogram handle. Observe on nil is a no-op, so
// instrumentation can be wired unconditionally and enabled by registration.
// The scraper snapshots cumulative p50/p99 series from it.
type Hist struct {
	meta Meta
	h    *metrics.Hist
}

// Observe records one latency sample. Safe (and free) on a nil Hist.
func (h *Hist) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.h.Observe(d)
}

// Snapshot exposes the underlying histogram (nil-safe, may return nil).
func (h *Hist) Snapshot() *metrics.Hist {
	if h == nil {
		return nil
	}
	return h.h
}

// Registry holds every registered probe in insertion order. Registration
// and structural reads are mutex-guarded and counters are atomic, so a live
// exporter may scrape the registry concurrently with the simulation
// updating it. Gauge, rate and histogram probes read engine-owned state:
// sampling those concurrently with a running engine is only safe while the
// engine is paused (the scraper runs in engine context; nadino-svc snapshots
// under its pacer lock).
type Registry struct {
	mu     sync.RWMutex
	probes []probe
	keys   map[string]struct{}
	help   map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{keys: make(map[string]struct{}), help: make(map[string]string)}
}

func (r *Registry) add(p probe) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := p.meta.Key()
	if _, dup := r.keys[key]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", key))
	}
	r.keys[key] = struct{}{}
	r.probes = append(r.probes, p)
}

// snapshot returns the registered probes in insertion order. The returned
// slice is safe against concurrent registration (probes are append-only).
func (r *Registry) snapshot() []probe {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.probes[:len(r.probes):len(r.probes)]
}

// SetHelp attaches exposition help text to a metric name (all labeled
// variants share it). Exporters fall back to a generated line when unset.
func (r *Registry) SetHelp(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = text
}

// helpFor resolves a metric's help text.
func (r *Registry) helpFor(name string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if h, ok := r.help[name]; ok {
		return h
	}
	return "NADINO simulation metric " + name + "."
}

// Counter registers and returns a labeled counter handle. The scraper
// reports it as a windowed rate (events/second).
func (r *Registry) Counter(name string, kv ...string) *Counter {
	c := &Counter{meta: Meta{Name: name, Labels: labels(kv)}}
	r.add(probe{meta: c.meta, kind: kindCounter, counter: c})
	return c
}

// Gauge registers a pull-based gauge: fn is invoked at each scrape and its
// value recorded as-is. fn runs in engine context and must not block.
func (r *Registry) Gauge(name string, fn func() float64, kv ...string) {
	r.add(probe{meta: Meta{Name: name, Labels: labels(kv)}, kind: kindGauge, fn: fn})
}

// Rate registers a derivative gauge over a cumulative quantity: fn returns
// a monotone total (e.g. busy seconds, bytes sent) and the scraper records
// its per-second derivative over each scrape window. Registering a core's
// cumulative BusyTime().Seconds() yields its utilization directly.
func (r *Registry) Rate(name string, fn func() float64, kv ...string) {
	r.add(probe{meta: Meta{Name: name, Labels: labels(kv)}, kind: kindRate, fn: fn})
}

// Hist registers and returns a labeled histogram handle. The scraper
// snapshots cumulative `<name>.p50` and `<name>.p99` series from it.
func (r *Registry) Hist(name string, kv ...string) *Hist {
	h := &Hist{meta: Meta{Name: name, Labels: labels(kv)}, h: metrics.NewHist()}
	r.add(probe{meta: h.meta, kind: kindHist, hist: h.h})
	return h
}

// HistFrom registers an existing histogram (e.g. a cluster's per-chain
// latency hist) for scraping without changing who owns or feeds it.
func (r *Registry) HistFrom(name string, h *metrics.Hist, kv ...string) {
	r.add(probe{meta: Meta{Name: name, Labels: labels(kv)}, kind: kindHist, hist: h})
}

// Len reports registered probes.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.probes)
}

// BuildVersion identifies the NADINO tree in build_info expositions. It is a
// var so release tooling can stamp it with -ldflags "-X ...".
var BuildVersion = "dev"

// BuildInfo registers the conventional `build_info` gauge (constant 1,
// version/goversion labels) plus `process.uptime_seconds` gauges for both
// clocks: virtual (how far the simulation has advanced) and wall (how long
// the process has been up). Every rig and the nadino-svc daemon call this
// once so dashboards can join series against the emitting build.
func (r *Registry) BuildInfo(virtualNow func() time.Duration, wallStart time.Time) {
	r.SetHelp("build_info", "Constant 1; labels carry the NADINO build and Go runtime version.")
	r.SetHelp("process.uptime_seconds", "Process uptime by clock: virtual simulation time or wall time.")
	r.Gauge("build_info", func() float64 { return 1 },
		"version", BuildVersion, "goversion", runtime.Version())
	if virtualNow != nil {
		r.Gauge("process.uptime_seconds", func() float64 {
			return virtualNow().Seconds()
		}, "clock", "virtual")
	}
	r.Gauge("process.uptime_seconds", func() float64 {
		return time.Since(wallStart).Seconds()
	}, "clock", "wall")
}
