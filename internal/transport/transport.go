// Package transport provides the TCP/IP stack cost models that the ingress
// gateways and the TCP-based baseline data planes are built on: the
// interrupt-driven Linux kernel stack versus the DPDK-based F-stack
// userspace stack (§3.6, §4.1.3), plus HTTP processing.
package transport

import (
	"time"

	"nadino/internal/params"
)

// Stack selects a TCP/IP implementation.
type Stack int

// Supported stacks.
const (
	// Kernel is the interrupt-driven Linux stack (K-Ingress, SPRIGHT
	// inter-node hops, NightCore's gateway).
	Kernel Stack = iota
	// FStack is the DPDK-based userspace stack (F-Ingress, FUYAO-F,
	// NADINO's client-facing side).
	FStack
	// Junction is a library-OS kernel-bypass stack (Junction baseline):
	// F-stack-class per-message cost, slightly higher because every app
	// thread runs under its scheduler.
	Junction
)

func (s Stack) String() string {
	switch s {
	case Kernel:
		return "kernel"
	case FStack:
		return "f-stack"
	case Junction:
		return "junction"
	}
	return "?"
}

// TraceStage names the latency-attribution stage for traversals of this
// stack (see internal/trace).
func (s Stack) TraceStage() string { return "transport." + s.String() }

// SendCost is the sender-side CPU cost of pushing one message of n bytes
// through the stack (syscall or poll-mode TX, copies, segmentation).
func SendCost(p *params.Params, s Stack, n int) time.Duration {
	switch s {
	case Kernel:
		return p.KernelTCPPerMsg*2/5 + params.Bytes(p.KernelTCPPerByte, n)
	case Junction:
		// Junction's library-OS stack handles each message under its
		// own scheduler: poll-mode costs plus per-message scheduling and
		// copies, roughly double a bare F-stack traversal.
		return p.FStackPerMsg + params.Bytes(p.FStackPerByte, n)
	default:
		return p.FStackPerMsg/2 + params.Bytes(p.FStackPerByte, n)
	}
}

// RecvCost is the receiver-side CPU cost (interrupt/softirq or poll-mode
// RX, protocol processing, copy to user).
func RecvCost(p *params.Params, s Stack, n int) time.Duration {
	switch s {
	case Kernel:
		return p.KernelTCPPerMsg*3/5 + params.Bytes(p.KernelTCPPerByte, n)
	case Junction:
		return p.FStackPerMsg + params.Bytes(p.FStackPerByte, n)
	default:
		return p.FStackPerMsg/2 + params.Bytes(p.FStackPerByte, n)
	}
}

// TransitLatency is the added one-way delivery latency of the stack beyond
// the wire itself: interrupt coalescing and scheduling for the kernel path,
// near-zero for busy-polled stacks.
func TransitLatency(p *params.Params, s Stack) time.Duration {
	if s == Kernel {
		return p.KernelTCPLatency
	}
	return p.FStackLatency
}

// HTTPCost is per-request HTTP protocol processing (parse + route + build
// response headers), NGINX-grade.
func HTTPCost(p *params.Params) time.Duration { return p.HTTPParseCost }
