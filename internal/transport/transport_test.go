package transport

import (
	"testing"

	"nadino/internal/params"
)

func TestKernelCostlierThanFStack(t *testing.T) {
	p := params.Default()
	for _, n := range []int{0, 64, 1024, 4096} {
		if SendCost(p, Kernel, n) <= SendCost(p, FStack, n) {
			t.Fatalf("kernel send not costlier at %dB", n)
		}
		if RecvCost(p, Kernel, n) <= RecvCost(p, FStack, n) {
			t.Fatalf("kernel recv not costlier at %dB", n)
		}
	}
	if TransitLatency(p, Kernel) <= TransitLatency(p, FStack) {
		t.Fatal("kernel transit latency not higher")
	}
}

func TestJunctionBetweenFStackAndKernel(t *testing.T) {
	p := params.Default()
	n := 1024
	if !(SendCost(p, FStack, n) < SendCost(p, Junction, n) && SendCost(p, Junction, n) < SendCost(p, Kernel, n)) {
		t.Fatalf("junction send cost out of band: f=%v j=%v k=%v",
			SendCost(p, FStack, n), SendCost(p, Junction, n), SendCost(p, Kernel, n))
	}
}

func TestCostsScaleWithBytes(t *testing.T) {
	p := params.Default()
	for _, s := range []Stack{Kernel, FStack, Junction} {
		if SendCost(p, s, 8192) <= SendCost(p, s, 64) {
			t.Fatalf("%v send cost does not grow with size", s)
		}
	}
}

func TestHTTPCostPositive(t *testing.T) {
	p := params.Default()
	if HTTPCost(p) <= 0 {
		t.Fatal("HTTP cost must be positive")
	}
}

func TestStackStrings(t *testing.T) {
	if Kernel.String() != "kernel" || FStack.String() != "f-stack" || Junction.String() != "junction" {
		t.Fatal("stack names wrong")
	}
	if Stack(99).String() != "?" {
		t.Fatal("unknown stack name")
	}
}
