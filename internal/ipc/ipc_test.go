package ipc

import (
	"testing"
	"time"

	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/sim"
)

func TestSKMsgDeliveryOrderAndLatency(t *testing.T) {
	p := params.Default()
	eng := sim.NewEngine(1)
	defer eng.Stop()
	ch := NewSKMsg(eng, p, nil)
	for i := 0; i < 3; i++ {
		ch.Send(mempool.Descriptor{Seq: uint64(i)})
	}
	var got []uint64
	var firstAt time.Duration
	eng.Spawn("rx", func(pr *sim.Proc) {
		for i := 0; i < 3; i++ {
			d := ch.Recv(pr)
			if i == 0 {
				firstAt = pr.Now()
			}
			got = append(got, d.Seq)
		}
	})
	eng.Run()
	if firstAt != p.SKMsgDeliver {
		t.Fatalf("first delivery at %v, want %v", firstAt, p.SKMsgDeliver)
	}
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("out of order: %v", got)
		}
	}
	if ch.Delivered() != 3 {
		t.Fatalf("delivered = %d", ch.Delivered())
	}
}

func TestSKMsgInterruptPressure(t *testing.T) {
	p := params.Default()
	eng := sim.NewEngine(1)
	defer eng.Stop()
	ch := NewSKMsg(eng, p, nil)
	idle := ch.InterruptCost(0)
	busy := ch.InterruptCost(20)
	if busy <= idle {
		t.Fatalf("interrupt cost flat under backlog: %v vs %v", idle, busy)
	}
	if ch.InterruptCost(10_000) != p.SKMsgInterruptCap {
		t.Fatal("interrupt cost not capped")
	}
}

func TestSKMsgWorkSignalWakesLoop(t *testing.T) {
	p := params.Default()
	eng := sim.NewEngine(1)
	defer eng.Stop()
	work := sim.NewSignal(eng)
	ch := NewSKMsg(eng, p, work)
	woke := false
	eng.Spawn("loop", func(pr *sim.Proc) {
		for {
			if _, ok := ch.TryRecv(); ok {
				woke = true
				return
			}
			work.Wait(pr)
		}
	})
	eng.After(time.Millisecond, func() { ch.Send(mempool.Descriptor{}) })
	eng.Run()
	if !woke {
		t.Fatal("event loop never woke on delivery")
	}
}

func TestTokenPassingChain(t *testing.T) {
	// A -> B -> C: ownership strictly follows the call graph (§3.5.1).
	p := params.Default()
	eng := sim.NewEngine(1)
	defer eng.Stop()
	pool := mempool.NewPool("t", 1024, 4, p.HugepageSize)
	ab := NewToken(eng, p)
	bc := NewToken(eng, p)
	buf, _ := pool.Get("A")
	var order []string
	eng.Spawn("A", func(pr *sim.Proc) {
		pr.Sleep(10 * time.Microsecond) // do work
		order = append(order, "A")
		if err := pool.Transfer(buf, "A", "B"); err != nil {
			t.Error(err)
		}
		ab.Post()
	})
	eng.Spawn("B", func(pr *sim.Proc) {
		ab.Wait(pr)
		if err := pool.Access(buf, "B"); err != nil {
			t.Error(err)
		}
		order = append(order, "B")
		if err := pool.Transfer(buf, "B", "C"); err != nil {
			t.Error(err)
		}
		bc.Post()
	})
	eng.Spawn("C", func(pr *sim.Proc) {
		bc.Wait(pr)
		if err := pool.Access(buf, "C"); err != nil {
			t.Error(err)
		}
		order = append(order, "C")
		if err := pool.Put(buf, "C"); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if len(order) != 3 || order[0] != "A" || order[1] != "B" || order[2] != "C" {
		t.Fatalf("chain order = %v", order)
	}
	if pool.InUse() != 0 {
		t.Fatalf("buffer leaked: inUse = %d", pool.InUse())
	}
}

func TestCostAccessors(t *testing.T) {
	p := params.Default()
	eng := sim.NewEngine(1)
	defer eng.Stop()
	ch := NewSKMsg(eng, p, nil)
	if ch.SendCost() != p.SKMsgSendCost || ch.WakeupCost() != p.SKMsgWakeup {
		t.Fatal("SKMsg cost accessors wrong")
	}
	ch.Send(mempool.Descriptor{})
	eng.Run()
	if ch.Pending() != 1 {
		t.Fatalf("pending = %d", ch.Pending())
	}
	tok := NewToken(eng, p)
	if tok.Cost() != p.SemTokenCost {
		t.Fatal("token cost accessor wrong")
	}
	tok.Post()
	if tok.Pending() != 1 {
		t.Fatalf("token pending = %d", tok.Pending())
	}
}
