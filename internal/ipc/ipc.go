// Package ipc models NADINO's intra-node communication primitives: eBPF
// SK_MSG descriptor handoff between local sockets (§3.5.3) and the
// semaphore-based token passing that transfers buffer ownership along a
// function chain (§3.5.1).
package ipc

import (
	"time"

	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/sim"
	"nadino/internal/trace"
)

// SKMsg is a unidirectional SK_MSG descriptor channel between two local
// endpoints. Transmission bypasses the kernel protocol stack; the receiver
// is woken through epoll (interrupt-driven), which is cheap per message but
// becomes a storm when one consumer (a CPU-hosted network engine) fronts
// many functions.
type SKMsg struct {
	eng *sim.Engine
	p   *params.Params
	q   *sim.Queue[mempool.Descriptor]
	// work optionally wakes an event-loop consumer (the CNE).
	work      *sim.Signal
	delivered uint64

	// freeDel pools delivery timer nodes so Send's per-descriptor After()
	// does not allocate a fresh closure per message.
	freeDel []*skDelivery
}

// skDelivery is a pooled in-flight descriptor; fn is bound once.
type skDelivery struct {
	c  *SKMsg
	d  mempool.Descriptor
	fn func()
}

func (c *SKMsg) allocDelivery(d mempool.Descriptor) *skDelivery {
	var dv *skDelivery
	if n := len(c.freeDel); n > 0 {
		dv = c.freeDel[n-1]
		c.freeDel = c.freeDel[:n-1]
	} else {
		dv = &skDelivery{c: c}
		dv.fn = dv.run
	}
	dv.d = d
	return dv
}

func (dv *skDelivery) run() {
	c := dv.c
	d := dv.d
	dv.d = mempool.Descriptor{}
	c.freeDel = append(c.freeDel, dv)
	c.delivered++
	c.q.TryPut(d)
	if c.work != nil {
		c.work.Pulse()
	}
}

// NewSKMsg creates a channel; work may be nil.
func NewSKMsg(eng *sim.Engine, p *params.Params, work *sim.Signal) *SKMsg {
	return &SKMsg{eng: eng, p: p, q: sim.NewQueue[mempool.Descriptor](eng, 0), work: work}
}

// SendCost is the sender-side CPU cost per descriptor.
func (c *SKMsg) SendCost() time.Duration { return c.p.SKMsgSendCost }

// WakeupCost is the receiver-side epoll wakeup CPU cost per descriptor.
func (c *SKMsg) WakeupCost() time.Duration { return c.p.SKMsgWakeup }

// InterruptCost is the softirq cost a shared engine (CNE) pays to ingest
// one descriptor given its current backlog: interrupt pressure makes each
// message more expensive as the queue deepens, throttling the CNE at high
// concurrency (§4.3). Hardware-polled engines (DNE) never pay this.
func (c *SKMsg) InterruptCost(backlog int) time.Duration {
	cost := c.p.SKMsgInterruptBase + time.Duration(backlog)*c.p.SKMsgInterruptSlope
	if cost > c.p.SKMsgInterruptCap {
		cost = c.p.SKMsgInterruptCap
	}
	return cost
}

// Send ships a descriptor; it arrives after the SK_MSG delivery latency.
// The caller pays SendCost on its own core first. Engine/process context.
func (c *SKMsg) Send(d mempool.Descriptor) {
	d.Trace.BeginStage(trace.StageSKMsg, "skmsg")
	c.eng.After(c.p.SKMsgDeliver, c.allocDelivery(d).fn)
}

// Recv blocks until a descriptor arrives. The caller pays WakeupCost on its
// own core afterwards.
func (c *SKMsg) Recv(pr *sim.Proc) mempool.Descriptor {
	d := c.q.Get(pr)
	d.Trace.EndStage(trace.StageSKMsg)
	return d
}

// TryRecv is the non-blocking receive used by event loops.
func (c *SKMsg) TryRecv() (mempool.Descriptor, bool) {
	d, ok := c.q.TryGet()
	if ok {
		d.Trace.EndStage(trace.StageSKMsg)
	}
	return d, ok
}

// Pending reports queued descriptors (the CNE's interrupt backlog).
func (c *SKMsg) Pending() int { return c.q.Len() }

// Delivered reports lifetime deliveries.
func (c *SKMsg) Delivered() uint64 { return c.delivered }

// Token is the ownership-transfer semaphore between a producer and a
// consumer in a chain (§3.5.1): the producer posts after handing the buffer
// descriptor over; the consumer waits before touching the buffer. It
// emulates a single-producer single-consumer ring: no locks, strict order.
type Token struct {
	p   *params.Params
	sem *sim.Semaphore
}

// NewToken returns a token initialized to 0 (consumer blocked).
func NewToken(eng *sim.Engine, p *params.Params) *Token {
	return &Token{p: p, sem: sim.NewSemaphore(eng, 0)}
}

// Cost is the CPU cost of a post or wait operation.
func (t *Token) Cost() time.Duration { return t.p.SemTokenCost }

// Post hands ownership downstream (sem_post).
func (t *Token) Post() { t.sem.Release(1) }

// Wait blocks the consumer until ownership arrives (sem_wait).
func (t *Token) Wait(pr *sim.Proc) { t.sem.Acquire(pr, 1) }

// Pending reports posted-but-unconsumed tokens.
func (t *Token) Pending() int { return t.sem.Available() }
