package sim

import (
	"runtime"
	"time"
)

// Proc is a coroutine-style simulation process. A Proc runs on its own
// goroutine but in strict lockstep with the engine: while the Proc executes,
// the engine (and every other Proc) is parked, so Proc bodies never race.
//
// Proc state is pooled: when a body returns, the Proc (channels, goroutine
// and timer slot included) goes back to the engine's free list and the next
// Spawn reuses it, so steady-state spawn churn allocates nothing and pays
// no goroutine start. Recycling bumps the Proc's generation; every wake
// event carries the generation it was issued against, so a wake scheduled
// for a finished process can never resume the slot's next occupant. A *Proc
// kept past its body's return observes the recycled state — treat it like a
// closed handle.
//
// Proc methods that block (Sleep, WaitQueue.Wait, Semaphore.Acquire, ...)
// must only be called from the Proc's own body.
type Proc struct {
	eng  *Engine
	name string
	// resume carries dispatch tokens (true) and Stop's poison (false). Both
	// channels are buffered one deep: strict alternation means at most one
	// token is ever outstanding, and the buffer lets the sender skip the
	// synchronous-handoff rendezvous — the hot dispatch path costs two
	// park/unpark pairs instead of four.
	resume chan bool
	yield  chan struct{}
	done   bool
	// gen is the pooling generation fence, bumped on every recycle.
	gen uint64
	// body is the current occupant's function, staged by Spawn and picked
	// up by the pooled goroutine on its next dispatch.
	body func(p *Proc)
	// startFn is p.start bound once at first allocation; scheduling it on
	// every Spawn must not re-allocate a method value.
	startFn func()
	// timer is the Proc's owned re-armable timer node (wakeProcAt): Sleep
	// and Processor.Exec re-stamp it in place instead of cycling the pool.
	timer *event
	// started reports whether the pooled goroutine is running.
	started bool
}

// Spawn starts body as a new process at the current virtual time. The body
// begins executing when the engine reaches the spawn event during Run.
// The process state comes from the engine's pool when available.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	p := e.allocProc()
	p.name = name
	p.body = body
	p.done = false
	e.procs.Add(1)
	e.At(e.now, p.startFn)
	return p
}

// allocProc pops a recycled process or builds a fresh one.
func (e *Engine) allocProc() *Proc {
	if n := len(e.freeProcs) - 1; n >= 0 {
		p := e.freeProcs[n]
		e.freeProcs[n] = nil
		e.freeProcs = e.freeProcs[:n]
		return p
	}
	p := &Proc{
		eng:    e,
		resume: make(chan bool, 1),
		yield:  make(chan struct{}, 1),
	}
	p.startFn = p.start
	e.allProcs = append(e.allProcs, p)
	return p
}

// releaseProc recycles a finished process. Called from the process
// goroutine right before its final yield, while the engine is parked in
// dispatch — the handoff orders the write against the next Spawn. The gen
// bump fences every outstanding wake reference.
func (e *Engine) releaseProc(p *Proc) {
	p.gen++
	p.body = nil
	p.name = ""
	e.freeProcs = append(e.freeProcs, p)
}

// start runs the staged body to its first block point, launching the pooled
// goroutine on first use. Called from engine context (the spawn event).
func (p *Proc) start() {
	if !p.started {
		p.started = true
		go p.run()
	}
	p.dispatch()
}

// run is the pooled goroutine's service loop: park until dispatched, run
// the staged body, recycle, repeat. It exits when the engine is stopped
// while parked between bodies (a kill mid-body exits through block's
// Goexit instead, running the body's deferred calls).
func (p *Proc) run() {
	for {
		if !p.await() {
			// Killed while parked idle (or before a staged body ran); any
			// still-staged body was counted at Spawn but the engine is dead,
			// matching the never-started accounting of an unpooled spawn.
			return
		}
		p.body(p)
		p.done = true
		p.eng.procs.Add(-1)
		p.eng.releaseProc(p)
		p.yield <- struct{}{}
	}
}

// dispatch hands control to the process and waits for it to yield or finish.
// Called from engine context (an event callback or another process that is
// itself being dispatched).
func (p *Proc) dispatch() {
	p.resume <- true
	<-p.yield
}

// await parks the process goroutine until the engine resumes it. It returns
// false if the engine was stopped (Stop's kill sweep delivered the poison
// token), in which case the goroutine must exit. Called from process
// context. A plain channel receive — no select — keeps the park/resume
// round trip on the two-channel fast path.
func (p *Proc) await() bool {
	return <-p.resume
}

// block yields control back to the engine and parks until woken. If the
// engine is stopped while parked, the process goroutine exits immediately
// (running deferred calls).
func (p *Proc) block() {
	p.yield <- struct{}{}
	if !p.await() {
		p.eng.procs.Add(-1)
		runtime.Goexit()
	}
}

// wake resumes a blocked process. It must be called from engine context;
// wake events reach here through Engine.fire with the generation already
// checked.
func (p *Proc) wake() {
	if p.done {
		return
	}
	p.dispatch()
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.eng.now }

// Sleep blocks the process for d of virtual time. The wakeup re-arms the
// process's owned timer slot in place — no pool traffic, no allocation.
// A zero sleep still yields through the event queue so same-instant
// ordering is consistent with a zero-length timer.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.eng.wakeProcAt(p.eng.now+d, p)
	p.block()
}

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }
