package sim

import (
	"runtime"
	"time"
)

// Proc is a coroutine-style simulation process. A Proc runs on its own
// goroutine but in strict lockstep with the engine: while the Proc executes,
// the engine (and every other Proc) is parked, so Proc bodies never race.
//
// Proc methods that block (Sleep, WaitQueue.Wait, Semaphore.Acquire, ...)
// must only be called from the Proc's own body.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	yield  chan struct{}
	done   bool
	// wakeFn is p.wake bound once at Spawn; scheduling it repeatedly (every
	// Sleep and queue wakeup) must not re-allocate a method value.
	wakeFn func()
}

// Spawn starts body as a new process at the current virtual time. The body
// begins executing when the engine reaches the spawn event during Run.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	p.wakeFn = p.wake
	e.procs.Add(1)
	e.Immediate(func() { p.start(body) })
	return p
}

// start launches the goroutine and runs the body to its first block point.
// Called from engine context.
func (p *Proc) start(body func(p *Proc)) {
	go func() {
		if !p.await() {
			p.eng.procs.Add(-1)
			return
		}
		body(p)
		p.done = true
		p.eng.procs.Add(-1)
		p.yield <- struct{}{}
	}()
	p.dispatch()
}

// dispatch hands control to the process and waits for it to yield or finish.
// Called from engine context (an event callback or another process that is
// itself being dispatched).
func (p *Proc) dispatch() {
	p.resume <- struct{}{}
	<-p.yield
}

// await parks the process goroutine until the engine resumes it. It returns
// false if the engine was stopped, in which case the goroutine must exit.
// Called from process context.
func (p *Proc) await() bool {
	select {
	case <-p.resume:
		return true
	case <-p.eng.killed:
		return false
	}
}

// block yields control back to the engine and parks until woken. If the
// engine is stopped while parked, the process goroutine exits immediately
// (running deferred calls).
func (p *Proc) block() {
	p.yield <- struct{}{}
	if !p.await() {
		p.eng.procs.Add(-1)
		runtime.Goexit()
	}
}

// wake resumes a blocked process. It must be called from engine context;
// use Engine.Immediate to get there from another process.
func (p *Proc) wake() {
	if p.done {
		return
	}
	p.dispatch()
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.eng.now }

// Sleep blocks the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	if d == 0 {
		// Still yield through the event queue so same-instant ordering is
		// consistent with a zero-length timer.
		p.eng.Immediate(p.wakeFn)
		p.block()
		return
	}
	p.eng.After(d, p.wakeFn)
	p.block()
}

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }
