package sim

import (
	"fmt"
	"time"
)

// Discipline selects how a Processor shares its capacity among concurrent
// Exec callers.
type Discipline int

const (
	// FCFS is exact first-come-first-served, non-preemptive service:
	// requests run to completion in Exec-call order.
	FCFS Discipline = iota
	// PS is exact egalitarian processor sharing: the n in-service requests
	// each progress at speed/n, re-evaluated on every arrival, departure
	// and speed change. It is the limit of round-robin as the quantum goes
	// to zero, modeled without per-quantum events: each job's completion
	// instant is re-armed in place on the process's owned timer slot, so
	// the re-arm hot path allocates nothing.
	PS
)

func (d Discipline) String() string {
	if d == PS {
		return "PS"
	}
	return "FCFS"
}

// Processor models a single core. Costs passed to Exec are expressed in
// reference-core time (the testbed's x86 core); the processor scales them
// by its Speed factor, so a wimpy DPU core with Speed 0.45 takes ~2.2x
// longer for the same work.
//
// The default FCFS discipline is exact: requests are served in Exec-call
// order and each caller sleeps until its own completion instant, so
// queueing delay under load emerges naturally. NewProcessorDisc selects
// processor sharing instead (see Discipline).
type Processor struct {
	eng       *Engine
	name      string
	speed     float64
	disc      Discipline
	busyUntil time.Duration
	busyTime  time.Duration
	ops       uint64
	// waiters tracks processes blocked in Exec with their completion events,
	// so SetSpeed can reschedule in-service work at the new speed. The slice
	// stays tiny (one entry per concurrently blocked process) and is
	// swap-removed on wake, so steady state allocates nothing.
	waiters []procWaiter

	// psJobs is the PS in-service set; rem is each job's remaining
	// reference-cost work. psLast is the last instant the set was advanced;
	// between advances every job drains at speed/len(psJobs).
	psJobs []psJob
	psLast time.Duration
}

// procWaiter is one process blocked in Exec until its completion instant.
type procWaiter struct {
	proc *Proc
	done time.Duration
	ev   Event
}

// psJob is one in-service PS request.
type psJob struct {
	proc *Proc
	rem  time.Duration // remaining reference-cost work
	ev   Event
}

// NewProcessor returns an FCFS core with the given relative speed
// (1.0 = reference).
func NewProcessor(e *Engine, name string, speed float64) *Processor {
	return NewProcessorDisc(e, name, speed, FCFS)
}

// NewProcessorDisc returns a core with the given speed and service
// discipline.
func NewProcessorDisc(e *Engine, name string, speed float64, disc Discipline) *Processor {
	if speed <= 0 {
		panic(fmt.Sprintf("sim: processor %q with non-positive speed", name))
	}
	return &Processor{eng: e, name: name, speed: speed, disc: disc}
}

// Scale converts a reference-core cost into this core's execution time.
func (c *Processor) Scale(cost time.Duration) time.Duration {
	return time.Duration(float64(cost) / c.speed)
}

// Exec runs cost worth of reference-core work on this core, blocking p
// through any queueing delay plus the scaled service time (FCFS), or
// through the shared-service completion instant (PS).
func (c *Processor) Exec(p *Proc, cost time.Duration) {
	if cost < 0 {
		panic("sim: negative exec cost")
	}
	if c.disc == PS {
		c.execPS(p, cost)
		return
	}
	now := c.eng.now
	start := now
	if c.busyUntil > start {
		start = c.busyUntil
	}
	d := c.Scale(cost)
	c.busyUntil = start + d
	c.busyTime += d
	c.ops++
	if c.busyUntil <= now {
		p.Sleep(0)
		return
	}
	// Block on an explicit completion event (rather than a fixed-length
	// sleep) so SetSpeed can cancel and reschedule it when the core's speed
	// changes mid-service. The wake rides the process's owned timer slot —
	// re-armed in place, no pool traffic.
	ev := c.eng.wakeProcAt(c.busyUntil, p)
	c.waiters = append(c.waiters, procWaiter{proc: p, done: c.busyUntil, ev: ev})
	p.block()
	c.dropWaiter(p)
}

// dropWaiter removes p's entry after its completion event fired.
func (c *Processor) dropWaiter(p *Proc) {
	for i := range c.waiters {
		if c.waiters[i].proc == p {
			last := len(c.waiters) - 1
			c.waiters[i] = c.waiters[last]
			c.waiters[last] = procWaiter{}
			c.waiters = c.waiters[:last]
			return
		}
	}
}

// execPS admits p into the PS service set and blocks it until its share of
// the core has drained the whole cost. Arrivals, departures and speed
// changes re-evaluate every in-service completion instant; the re-arms ride
// each process's owned timer slot, so steady-state churn allocates nothing.
func (c *Processor) execPS(p *Proc, cost time.Duration) {
	now := c.eng.now
	c.psAdvance(now)
	c.ops++
	if cost == 0 {
		// Zero-cost work completes at this instant; yield for ordering
		// fairness like the FCFS path does.
		p.Sleep(0)
		return
	}
	c.psJobs = append(c.psJobs, psJob{proc: p, rem: cost})
	c.psRearm(now)
	p.block()
	// Our completion event fired: this job's remaining work is exactly zero
	// (every set change re-arms, so events never fire early). Settle the
	// drain since the last change, leave the set, and re-arm the survivors.
	now = c.eng.now
	c.psAdvance(now)
	for i := range c.psJobs {
		if c.psJobs[i].proc == p {
			last := len(c.psJobs) - 1
			c.psJobs[i] = c.psJobs[last]
			c.psJobs[last] = psJob{}
			c.psJobs = c.psJobs[:last]
			break
		}
	}
	c.psRearm(now)
}

// psAdvance drains the in-service set for the time elapsed since the last
// change and accrues occupancy: a PS core is busy whenever its set is
// non-empty, regardless of how the capacity is split.
func (c *Processor) psAdvance(now time.Duration) {
	elapsed := now - c.psLast
	c.psLast = now
	n := len(c.psJobs)
	if elapsed <= 0 || n == 0 {
		return
	}
	c.busyTime += elapsed
	served := time.Duration(float64(elapsed) * c.speed / float64(n))
	for i := range c.psJobs {
		c.psJobs[i].rem -= served
		if c.psJobs[i].rem < 0 {
			c.psJobs[i].rem = 0
		}
	}
}

// psRearm reschedules every in-service job's completion event to its share-
// weighted finish instant: rem_i * n / speed from now. Each wake is disarmed
// and re-armed in place on the job's owned timer slot — the 0-alloc quantum
// re-arm the PS discipline is built on.
func (c *Processor) psRearm(now time.Duration) {
	n := len(c.psJobs)
	for i := range c.psJobs {
		j := &c.psJobs[i]
		j.ev.Cancel()
		wake := now + time.Duration(float64(j.rem)*float64(n)/c.speed)
		j.ev = c.eng.wakeProcAt(wake, j.proc)
	}
}

// Charge accounts cost of busy time without blocking anyone. Use it for
// work performed inside another component's timeline (e.g. interrupt
// processing stolen from a core) where only utilization matters.
func (c *Processor) Charge(cost time.Duration) {
	d := c.Scale(cost)
	c.busyTime += d
	now := c.eng.now
	if c.busyUntil < now {
		c.busyUntil = now
	}
	c.busyUntil += d
	c.ops++
}

// BusyTime reports busy time realized so far (scaled). Exec and Charge
// accrue their full cost into the backlog up front while the core serves it
// over [now, busyUntil]; the not-yet-served remainder is excluded here so
// that BusyTime never exceeds elapsed virtual time on any core and
// mid-run utilization samples (autoscalers, NetCPUStats) stay <= 100%.
func (c *Processor) BusyTime() time.Duration {
	busy := c.busyTime
	if pending := c.busyUntil - c.eng.now; pending > 0 {
		busy -= pending
	}
	// A PS core accrues occupancy lazily at set changes; add the open
	// interval since the last change while the set is non-empty.
	if len(c.psJobs) > 0 {
		if since := c.eng.now - c.psLast; since > 0 {
			busy += since
		}
	}
	return busy
}

// Ops reports the number of Exec/Charge calls served.
func (c *Processor) Ops() uint64 { return c.ops }

// Name returns the core's name.
func (c *Processor) Name() string { return c.name }

// Speed returns the core's relative speed factor.
func (c *Processor) Speed() float64 { return c.speed }

// SetSpeed changes the core's relative speed, rescaling the in-service
// backlog so busy time is charged at the speed in effect while the work
// actually runs: the remaining portion of every accepted request stretches
// (slow-down) or shrinks (speed-up) by oldSpeed/newSpeed, blocked Exec
// callers are rescheduled to their new completion instants, and busyTime is
// adjusted by the backlog delta so BusyTime() stays continuous through the
// transition and ends equal to realized occupied time. This is the
// degraded-core injection hook used by internal/chaos.
func (c *Processor) SetSpeed(speed float64) {
	if speed <= 0 {
		panic(fmt.Sprintf("sim: processor %q set to non-positive speed", c.name))
	}
	if speed == c.speed {
		return
	}
	now := c.eng.now
	if c.disc == PS {
		// Drain the in-service set at the old speed up to this instant,
		// then re-arm every completion at the new share rate.
		c.psAdvance(now)
	}
	ratio := c.speed / speed
	c.speed = speed
	if c.disc == PS {
		c.psRearm(now)
	}
	pending := c.busyUntil - now
	if pending <= 0 {
		return
	}
	newUntil := now + time.Duration(float64(pending)*ratio)
	c.busyTime += newUntil - c.busyUntil
	c.busyUntil = newUntil
	for i := range c.waiters {
		w := &c.waiters[i]
		if w.done <= now {
			// Completion event already due this instant; leave it be.
			continue
		}
		w.ev.Cancel()
		w.done = now + time.Duration(float64(w.done-now)*ratio)
		w.ev = c.eng.wakeProcAt(w.done, w.proc)
	}
}

// QueueDelay reports how long a request issued now would wait before
// starting service. Under PS service begins immediately (at a shared
// rate), so the queueing delay is always zero.
func (c *Processor) QueueDelay() time.Duration {
	if c.disc == PS {
		return 0
	}
	if c.busyUntil <= c.eng.now {
		return 0
	}
	return c.busyUntil - c.eng.now
}

// Discipline reports the core's service discipline.
func (c *Processor) Discipline() Discipline { return c.disc }

// Load reports the number of requests currently in PS service (0 on FCFS
// cores, which track backlog through QueueDelay instead).
func (c *Processor) Load() int { return len(c.psJobs) }

// CorePool models k identical cores fed by a single dispatch queue (an
// M/G/k style station). Each Exec is placed on the least-loaded core:
// earliest-available for FCFS cores, fewest in-service requests for PS.
type CorePool struct {
	eng   *Engine
	name  string
	disc  Discipline
	cores []*Processor
}

// NewCorePool returns a pool of n FCFS cores with the given speed.
func NewCorePool(e *Engine, name string, n int, speed float64) *CorePool {
	return NewCorePoolDisc(e, name, n, speed, FCFS)
}

// NewCorePoolDisc returns a pool of n cores with the given speed and
// service discipline.
func NewCorePoolDisc(e *Engine, name string, n int, speed float64, disc Discipline) *CorePool {
	if n <= 0 {
		panic("sim: core pool must have at least one core")
	}
	cores := make([]*Processor, n)
	for i := range cores {
		cores[i] = NewProcessorDisc(e, fmt.Sprintf("%s/%d", name, i), speed, disc)
	}
	return &CorePool{eng: e, name: name, disc: disc, cores: cores}
}

// Exec runs cost on the earliest-available core, blocking p until done.
func (cp *CorePool) Exec(p *Proc, cost time.Duration) {
	cp.pick().Exec(p, cost)
}

// Charge accounts cost on the earliest-available core without blocking.
func (cp *CorePool) Charge(cost time.Duration) {
	cp.pick().Charge(cost)
}

func (cp *CorePool) pick() *Processor {
	best := cp.cores[0]
	if cp.disc == PS {
		// Fewest in-service requests wins; strict < keeps the lowest index
		// on ties, so dispatch order is deterministic.
		for _, c := range cp.cores[1:] {
			if len(c.psJobs) < len(best.psJobs) {
				best = c
			}
		}
		return best
	}
	for _, c := range cp.cores[1:] {
		if c.busyUntil < best.busyUntil {
			best = c
		}
	}
	return best
}

// BusyTime reports the summed realized busy time across all cores.
func (cp *CorePool) BusyTime() time.Duration {
	var total time.Duration
	for _, c := range cp.cores {
		total += c.BusyTime()
	}
	return total
}

// Cores returns the underlying processors.
func (cp *CorePool) Cores() []*Processor { return cp.cores }

// Size reports the number of cores.
func (cp *CorePool) Size() int { return len(cp.cores) }

// QueueDelay reports the wait a request issued now would see (the earliest
// core's remaining backlog).
func (cp *CorePool) QueueDelay() time.Duration { return cp.pick().QueueDelay() }
