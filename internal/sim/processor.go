package sim

import (
	"fmt"
	"time"
)

// Processor models a single FCFS, non-preemptive core. Costs passed to Exec
// are expressed in reference-core time (the testbed's x86 core); the
// processor scales them by its Speed factor, so a wimpy DPU core with
// Speed 0.45 takes ~2.2x longer for the same work.
//
// The FCFS discipline is exact: requests are served in Exec-call order and
// each caller sleeps until its own completion instant, so queueing delay
// under load emerges naturally.
type Processor struct {
	eng       *Engine
	name      string
	speed     float64
	busyUntil time.Duration
	busyTime  time.Duration
	ops       uint64
	// waiters tracks processes blocked in Exec with their completion events,
	// so SetSpeed can reschedule in-service work at the new speed. The slice
	// stays tiny (one entry per concurrently blocked process) and is
	// swap-removed on wake, so steady state allocates nothing.
	waiters []procWaiter
}

// procWaiter is one process blocked in Exec until its completion instant.
type procWaiter struct {
	proc *Proc
	done time.Duration
	ev   Event
}

// NewProcessor returns a core with the given relative speed (1.0 = reference).
func NewProcessor(e *Engine, name string, speed float64) *Processor {
	if speed <= 0 {
		panic(fmt.Sprintf("sim: processor %q with non-positive speed", name))
	}
	return &Processor{eng: e, name: name, speed: speed}
}

// Scale converts a reference-core cost into this core's execution time.
func (c *Processor) Scale(cost time.Duration) time.Duration {
	return time.Duration(float64(cost) / c.speed)
}

// Exec runs cost worth of reference-core work on this core, blocking p
// through any queueing delay plus the scaled service time.
func (c *Processor) Exec(p *Proc, cost time.Duration) {
	if cost < 0 {
		panic("sim: negative exec cost")
	}
	now := c.eng.now
	start := now
	if c.busyUntil > start {
		start = c.busyUntil
	}
	d := c.Scale(cost)
	c.busyUntil = start + d
	c.busyTime += d
	c.ops++
	if c.busyUntil <= now {
		p.Sleep(0)
		return
	}
	// Block on an explicit completion event (rather than a fixed-length
	// sleep) so SetSpeed can cancel and reschedule it when the core's speed
	// changes mid-service. The wake rides the process's owned timer slot —
	// re-armed in place, no pool traffic.
	ev := c.eng.wakeProcAt(c.busyUntil, p)
	c.waiters = append(c.waiters, procWaiter{proc: p, done: c.busyUntil, ev: ev})
	p.block()
	c.dropWaiter(p)
}

// dropWaiter removes p's entry after its completion event fired.
func (c *Processor) dropWaiter(p *Proc) {
	for i := range c.waiters {
		if c.waiters[i].proc == p {
			last := len(c.waiters) - 1
			c.waiters[i] = c.waiters[last]
			c.waiters[last] = procWaiter{}
			c.waiters = c.waiters[:last]
			return
		}
	}
}

// Charge accounts cost of busy time without blocking anyone. Use it for
// work performed inside another component's timeline (e.g. interrupt
// processing stolen from a core) where only utilization matters.
func (c *Processor) Charge(cost time.Duration) {
	d := c.Scale(cost)
	c.busyTime += d
	now := c.eng.now
	if c.busyUntil < now {
		c.busyUntil = now
	}
	c.busyUntil += d
	c.ops++
}

// BusyTime reports busy time realized so far (scaled). Exec and Charge
// accrue their full cost into the backlog up front while the core serves it
// over [now, busyUntil]; the not-yet-served remainder is excluded here so
// that BusyTime never exceeds elapsed virtual time on any core and
// mid-run utilization samples (autoscalers, NetCPUStats) stay <= 100%.
func (c *Processor) BusyTime() time.Duration {
	busy := c.busyTime
	if pending := c.busyUntil - c.eng.now; pending > 0 {
		busy -= pending
	}
	return busy
}

// Ops reports the number of Exec/Charge calls served.
func (c *Processor) Ops() uint64 { return c.ops }

// Name returns the core's name.
func (c *Processor) Name() string { return c.name }

// Speed returns the core's relative speed factor.
func (c *Processor) Speed() float64 { return c.speed }

// SetSpeed changes the core's relative speed, rescaling the in-service
// backlog so busy time is charged at the speed in effect while the work
// actually runs: the remaining portion of every accepted request stretches
// (slow-down) or shrinks (speed-up) by oldSpeed/newSpeed, blocked Exec
// callers are rescheduled to their new completion instants, and busyTime is
// adjusted by the backlog delta so BusyTime() stays continuous through the
// transition and ends equal to realized occupied time. This is the
// degraded-core injection hook used by internal/chaos.
func (c *Processor) SetSpeed(speed float64) {
	if speed <= 0 {
		panic(fmt.Sprintf("sim: processor %q set to non-positive speed", c.name))
	}
	if speed == c.speed {
		return
	}
	ratio := c.speed / speed
	c.speed = speed
	now := c.eng.now
	pending := c.busyUntil - now
	if pending <= 0 {
		return
	}
	newUntil := now + time.Duration(float64(pending)*ratio)
	c.busyTime += newUntil - c.busyUntil
	c.busyUntil = newUntil
	for i := range c.waiters {
		w := &c.waiters[i]
		if w.done <= now {
			// Completion event already due this instant; leave it be.
			continue
		}
		w.ev.Cancel()
		w.done = now + time.Duration(float64(w.done-now)*ratio)
		w.ev = c.eng.wakeProcAt(w.done, w.proc)
	}
}

// QueueDelay reports how long a request issued now would wait before
// starting service.
func (c *Processor) QueueDelay() time.Duration {
	if c.busyUntil <= c.eng.now {
		return 0
	}
	return c.busyUntil - c.eng.now
}

// CorePool models k identical cores fed by a single FCFS queue (an M/G/k
// style station). Each Exec is placed on the earliest-available core.
type CorePool struct {
	eng   *Engine
	name  string
	cores []*Processor
}

// NewCorePool returns a pool of n cores with the given speed.
func NewCorePool(e *Engine, name string, n int, speed float64) *CorePool {
	if n <= 0 {
		panic("sim: core pool must have at least one core")
	}
	cores := make([]*Processor, n)
	for i := range cores {
		cores[i] = NewProcessor(e, fmt.Sprintf("%s/%d", name, i), speed)
	}
	return &CorePool{eng: e, name: name, cores: cores}
}

// Exec runs cost on the earliest-available core, blocking p until done.
func (cp *CorePool) Exec(p *Proc, cost time.Duration) {
	cp.pick().Exec(p, cost)
}

// Charge accounts cost on the earliest-available core without blocking.
func (cp *CorePool) Charge(cost time.Duration) {
	cp.pick().Charge(cost)
}

func (cp *CorePool) pick() *Processor {
	best := cp.cores[0]
	for _, c := range cp.cores[1:] {
		if c.busyUntil < best.busyUntil {
			best = c
		}
	}
	return best
}

// BusyTime reports the summed realized busy time across all cores.
func (cp *CorePool) BusyTime() time.Duration {
	var total time.Duration
	for _, c := range cp.cores {
		total += c.BusyTime()
	}
	return total
}

// Cores returns the underlying processors.
func (cp *CorePool) Cores() []*Processor { return cp.cores }

// Size reports the number of cores.
func (cp *CorePool) Size() int { return len(cp.cores) }

// QueueDelay reports the wait a request issued now would see (the earliest
// core's remaining backlog).
func (cp *CorePool) QueueDelay() time.Duration { return cp.pick().QueueDelay() }
