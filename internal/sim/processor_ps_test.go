package sim

import (
	"testing"
	"time"
)

// TestPSSingleRequestMatchesFCFS is the defining property of exact PS: a
// request that never shares the core completes at the same instant (and
// accrues the same busy time) as it would under FCFS, for any cost, speed,
// and mid-service speed change.
func TestPSSingleRequestMatchesFCFS(t *testing.T) {
	costs := []time.Duration{0, 777 * time.Nanosecond, 10 * time.Microsecond, 3 * time.Millisecond}
	speeds := []float64{0.45, 1.0, 2.0}
	for _, cost := range costs {
		for _, speed := range speeds {
			run := func(disc Discipline) (time.Duration, time.Duration) {
				eng := NewEngine(1)
				defer eng.Stop()
				c := NewProcessorDisc(eng, "c", speed, disc)
				var done time.Duration
				eng.Spawn("job", func(p *Proc) {
					c.Exec(p, cost)
					done = eng.Now()
				})
				eng.Run()
				return done, c.BusyTime()
			}
			fDone, fBusy := run(FCFS)
			pDone, pBusy := run(PS)
			if fDone != pDone {
				t.Fatalf("cost=%v speed=%v: PS completes at %v, FCFS at %v", cost, speed, pDone, fDone)
			}
			if fBusy != pBusy {
				t.Fatalf("cost=%v speed=%v: PS busy %v, FCFS busy %v", cost, speed, pBusy, fBusy)
			}
		}
	}
}

// TestPSSingleRequestSetSpeedMatchesFCFS runs the chaos SlowCores pattern
// (degrade mid-service, restore later) against a lone request on both
// disciplines: with nothing to share, PS must track FCFS exactly.
func TestPSSingleRequestSetSpeedMatchesFCFS(t *testing.T) {
	changes := map[time.Duration]float64{
		2 * time.Microsecond: 0.5,
		6 * time.Microsecond: 1.0,
	}
	run := func(disc Discipline) (time.Duration, time.Duration) {
		eng := NewEngine(1)
		defer eng.Stop()
		c := NewProcessorDisc(eng, "c", 1.0, disc)
		done := execWithSpeedChanges(t, 10*time.Microsecond, changes, c, eng)
		return done, c.BusyTime()
	}
	fDone, fBusy := run(FCFS)
	pDone, pBusy := run(PS)
	if fDone != pDone || fBusy != pBusy {
		t.Fatalf("PS (done=%v busy=%v) diverges from FCFS (done=%v busy=%v)", pDone, pBusy, fDone, fBusy)
	}
	if fDone != 12*time.Microsecond {
		t.Fatalf("completion at %v, want 12µs", fDone)
	}
}

// TestPSShareStaggeredArrivals pins the egalitarian share arithmetic: A
// (10µs) runs alone for 5µs, then shares with B (10µs). A's remaining 5µs
// drains at half rate -> done at 15µs; B drains 5µs shared + 5µs alone ->
// done at 20µs.
func TestPSShareStaggeredArrivals(t *testing.T) {
	eng := NewEngine(1)
	defer eng.Stop()
	c := NewProcessorDisc(eng, "c", 1.0, PS)
	var doneA, doneB time.Duration
	eng.Spawn("a", func(p *Proc) {
		c.Exec(p, 10*time.Microsecond)
		doneA = eng.Now()
	})
	eng.At(5*time.Microsecond, func() {
		eng.Spawn("b", func(p *Proc) {
			c.Exec(p, 10*time.Microsecond)
			doneB = eng.Now()
		})
	})
	eng.Run()
	if doneA != 15*time.Microsecond {
		t.Fatalf("A completes at %v, want 15µs", doneA)
	}
	if doneB != 20*time.Microsecond {
		t.Fatalf("B completes at %v, want 20µs", doneB)
	}
	if got := c.BusyTime(); got != 20*time.Microsecond {
		t.Fatalf("busy time %v, want 20µs occupancy", got)
	}
}

// TestPSBusyTimeConservationUnderSetSpeed drives two overlapping jobs
// through a degrade/restore cycle and checks conservation: completions land
// where the share-weighted work integral says, and BusyTime equals the
// occupied interval exactly (a PS core is busy whenever its set is
// non-empty, at any speed).
func TestPSBusyTimeConservationUnderSetSpeed(t *testing.T) {
	eng := NewEngine(1)
	defer eng.Stop()
	c := NewProcessorDisc(eng, "c", 1.0, PS)
	var doneA, doneB time.Duration
	submit := func(done *time.Duration) {
		eng.Spawn("job", func(p *Proc) {
			c.Exec(p, 10*time.Microsecond)
			*done = eng.Now()
		})
	}
	submit(&doneA)
	submit(&doneB)
	eng.At(4*time.Microsecond, func() { c.SetSpeed(0.5) })
	eng.At(12*time.Microsecond, func() { c.SetSpeed(1.0) })
	eng.Run()
	// [0,4): n=2 at speed 1 -> 2µs each (rem 8µs). [4,12): n=2 at 0.5 ->
	// 2µs each (rem 6µs). From 12µs, n=2 at speed 1 -> 12µs more.
	want := 24 * time.Microsecond
	if doneA != want || doneB != want {
		t.Fatalf("completions (%v, %v), want both at %v", doneA, doneB, want)
	}
	if got := c.BusyTime(); got != want {
		t.Fatalf("busy time %v, want %v (continuously occupied)", got, want)
	}
}

// TestPSBusyTimeNeverExceedsElapsed samples BusyTime mid-run under churn
// and speed changes: occupancy accrual must stay monotone and <= elapsed
// virtual time (the invariant utilization samplers rely on).
func TestPSBusyTimeNeverExceedsElapsed(t *testing.T) {
	eng := NewEngine(1)
	defer eng.Stop()
	c := NewProcessorDisc(eng, "c", 1.0, PS)
	for i := 0; i < 4; i++ {
		i := i
		eng.At(time.Duration(i)*3*time.Microsecond, func() {
			eng.Spawn("job", func(p *Proc) { c.Exec(p, 7*time.Microsecond) })
		})
	}
	eng.At(5*time.Microsecond, func() { c.SetSpeed(0.5) })
	eng.At(15*time.Microsecond, func() { c.SetSpeed(2.0) })
	var last time.Duration
	stop := eng.Ticker(time.Microsecond, func(now time.Duration) {
		busy := c.BusyTime()
		if busy < last {
			t.Fatalf("BusyTime went backwards: %v -> %v at %v", last, busy, now)
		}
		if busy > now {
			t.Fatalf("BusyTime %v exceeds elapsed %v", busy, now)
		}
		last = busy
	})
	eng.RunUntil(60 * time.Microsecond)
	stop()
}

// TestPSQueueDelayZero: PS admits every request into service immediately.
func TestPSQueueDelayZero(t *testing.T) {
	eng := NewEngine(1)
	defer eng.Stop()
	c := NewProcessorDisc(eng, "c", 1.0, PS)
	for i := 0; i < 3; i++ {
		eng.Spawn("job", func(p *Proc) { c.Exec(p, 10*time.Microsecond) })
	}
	eng.At(2*time.Microsecond, func() {
		if d := c.QueueDelay(); d != 0 {
			t.Fatalf("PS queue delay %v, want 0", d)
		}
		if c.Load() != 3 {
			t.Fatalf("PS load %d, want 3", c.Load())
		}
	})
	eng.Run()
}

// TestCorePoolPSPickLeastLoaded: a PS pool dispatches to the core with the
// fewest in-service requests, lowest index on ties.
func TestCorePoolPSPickLeastLoaded(t *testing.T) {
	eng := NewEngine(1)
	defer eng.Stop()
	cp := NewCorePoolDisc(eng, "pool", 2, 1.0, PS)
	for i := 0; i < 4; i++ {
		eng.Spawn("job", func(p *Proc) { cp.Exec(p, 10*time.Microsecond) })
	}
	eng.At(time.Microsecond, func() {
		if a, b := cp.Cores()[0].Load(), cp.Cores()[1].Load(); a != 2 || b != 2 {
			t.Fatalf("PS pool load (%d, %d), want (2, 2)", a, b)
		}
	})
	eng.Run()
}

// TestPSQuantumRearmZeroAlloc is the allocation fence for the PS re-arm hot
// path: once the proc/event pools and the job slice are warm, admitting,
// re-arming and departing requests must not allocate — each completion wake
// rides the process's owned timer slot, disarmed and re-armed in place.
func TestPSQuantumRearmZeroAlloc(t *testing.T) {
	eng := NewEngine(1)
	defer eng.Stop()
	c := NewProcessorDisc(eng, "ps", 1.0, PS)
	const k = 8
	body := func(p *Proc) {
		for i := 0; i < 50; i++ {
			c.Exec(p, time.Microsecond)
		}
	}
	run := func() {
		for i := 0; i < k; i++ {
			eng.Spawn("job", body)
		}
		eng.Run()
	}
	run() // warm the proc pool, owned timer slots and psJobs capacity
	allocs := testing.AllocsPerRun(10, run)
	if allocs != 0 {
		t.Fatalf("PS quantum re-arm allocates %v per op, want 0", allocs)
	}
}

// BenchmarkPSQuantum measures the PS admit/re-arm/depart cycle under steady
// sharing: 8 resident jobs churning through short service slices, every
// transition re-arming the whole set on owned timer slots.
func BenchmarkPSQuantum(b *testing.B) {
	eng := NewEngine(1)
	defer eng.Stop()
	c := NewProcessorDisc(eng, "ps", 1.0, PS)
	const k = 8
	per := b.N/k + 1
	body := func(p *Proc) {
		for i := 0; i < per; i++ {
			c.Exec(p, 100*time.Nanosecond)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < k; i++ {
		eng.Spawn("job", body)
	}
	eng.Run()
}
