package sim

import (
	"testing"
	"time"
)

// tick is one wheel slot width in duration units.
const tick = time.Duration(1) << wheelShift

// TestWheelCascadeBoundaries schedules events straddling every level
// boundary and checks they fire in timestamp order with exact times.
func TestWheelCascadeBoundaries(t *testing.T) {
	e := NewEngine(1)
	deadlines := []time.Duration{
		1,           // sub-tick (heap-resident, due band)
		tick,        // first level-0 slot
		63 * tick,   // last level-0 slot
		64 * tick,   // first level-1 slot
		64*tick + 1, // interior of first level-1 slot (cascades)
		(64*64 - 1) * tick,
		64 * 64 * tick, // first level-2 slot
		64 * 64 * 64 * tick,
		(wheelSpan - 1) * tick, // last representable tick
		wheelSpan * tick,       // past horizon: overflow heap
		3 * wheelSpan * tick,
	}
	var got []time.Duration
	for _, d := range deadlines {
		d := d
		e.At(d, func() { got = append(got, d) })
	}
	e.Run()
	for i, d := range deadlines {
		if got[i] != d {
			t.Fatalf("fire %d: got %v, want %v", i, got[i], d)
		}
	}
	if e.Pending() != 0 || e.wheel.count != 0 {
		t.Fatalf("residue after run: pending=%d wheel=%d", e.Pending(), e.wheel.count)
	}
}

// TestWheelRotation re-arms a short timer far past several full wheel
// rotations, exercising the cursor wrap math at each level.
func TestWheelRotation(t *testing.T) {
	e := NewEngine(2)
	fired := 0
	var arm func()
	arm = func() {
		fired++
		if fired < 500 {
			e.After(37*tick+13, arm) // co-prime stride: hits every slot index
		}
	}
	e.After(37*tick+13, arm)
	e.Run()
	if fired != 500 {
		t.Fatalf("fired %d, want 500", fired)
	}
	if want := 500 * (37*tick + 13); e.Now() != want {
		t.Fatalf("final time %v, want %v", e.Now(), want)
	}
}

// TestWheelCancel cancels wheel-resident events (every level plus the
// overflow heap) and checks none fire and Pending drains to zero.
func TestWheelCancel(t *testing.T) {
	e := NewEngine(3)
	var evs []Event
	for _, d := range []time.Duration{tick, 70 * tick, 5000 * tick, wheelSpan * tick * 2} {
		evs = append(evs, e.At(d, func() { t.Error("cancelled event fired") }))
	}
	keep := 0
	e.At(100*tick, func() { keep++ })
	for _, ev := range evs {
		if !ev.Pending() {
			t.Fatal("event not pending before cancel")
		}
		ev.Cancel()
		if ev.Pending() {
			t.Fatal("event pending after cancel")
		}
		ev.Cancel() // double-cancel is a no-op
	}
	e.Run()
	if keep != 1 {
		t.Fatalf("surviving event fired %d times, want 1", keep)
	}
}

// TestCancelAtFireInstant is the regression for the pooled-node recycle
// bug: cancel a handle at the exact virtual instant its event fires (or
// just fired), with the freed node immediately re-armed by other work.
// A stale Cancel must not detach the node's next occupant. Covers both
// heap-resident (sub-tick) and wheel-resident victims.
func TestCancelAtFireInstant(t *testing.T) {
	for _, band := range []struct {
		name  string
		delay time.Duration
	}{{"heap", 1}, {"wheel", 2 * tick}} {
		t.Run(band.name, func(t *testing.T) {
			e := NewEngine(4)
			var victim Event
			vFired, succFired := 0, 0
			victim = e.At(band.delay, func() { vFired++ })
			// Same instant, later seq: fires after victim, then cancels the
			// now-stale handle while the recycled node holds a new event.
			e.At(band.delay, func() {
				succ := e.At(e.Now()+band.delay, func() { succFired++ })
				victim.Cancel() // stale: must not touch succ's node
				if !succ.Pending() {
					t.Error("stale Cancel detached recycled node")
				}
			})
			e.Run()
			if vFired != 1 || succFired != 1 {
				t.Fatalf("victim fired %d (want 1), successor fired %d (want 1)", vFired, succFired)
			}
		})
	}
}

// TestCancelSameTickInterleavings sweeps every ordering of {fire A,
// cancel B, fire C} at one instant where B shares the node pool with A
// and C, asserting cancel-at-fire-time never recycles a generation a
// later waiter holds.
func TestCancelSameTickInterleavings(t *testing.T) {
	e := NewEngine(5)
	const at = 10 * tick
	fires := make([]int, 3)
	var b Event
	e.At(at, func() { fires[0]++; b.Cancel() }) // A cancels B at B's own fire instant
	b = e.At(at, func() { fires[1]++ })         // B: cancelled by A (same instant, earlier seq)
	e.At(at, func() { fires[2]++ })             // C: must still fire
	e.Run()
	if fires[0] != 1 || fires[1] != 0 || fires[2] != 1 {
		t.Fatalf("fires = %v, want [1 0 1]", fires)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after run", e.Pending())
	}
}

// TestProcWakeFencing kills the window where a process's pending wake
// outlives the body: the Proc slot is recycled by a new Spawn before the
// stale wake's instant arrives. The wake must be swallowed by the
// generation fence, not resume the new occupant early.
func TestProcWakeFencing(t *testing.T) {
	e := NewEngine(6)
	q := NewWaitQueue(e)
	woken := 0
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * tick)
	})
	e.RunUntil(5 * tick) // sleeper finishes, slot recycled
	e.Spawn("waiter", func(p *Proc) {
		q.Wait(p) // reuses the recycled slot; parks indefinitely
		woken++
	})
	e.RunUntil(20 * tick)
	if woken != 0 {
		t.Fatal("recycled proc resumed by a stale or phantom wake")
	}
	q.WakeAll()
	e.Run()
	if woken != 1 {
		t.Fatalf("woken = %d, want 1", woken)
	}
}

// TestProcPoolReuse verifies spawn actually recycles process state and
// that generations advance per occupancy.
func TestProcPoolReuse(t *testing.T) {
	e := NewEngine(7)
	var first, second *Proc
	e.Spawn("a", func(p *Proc) { first = p })
	e.Run()
	e.Spawn("b", func(p *Proc) { second = p })
	e.Run()
	if first != second {
		t.Fatal("second spawn did not reuse the pooled proc")
	}
	if len(e.freeProcs) != 1 {
		t.Fatalf("free list has %d procs, want 1", len(e.freeProcs))
	}
}

// TestSpawnSleepZeroAlloc asserts the steady-state spawn+sleep path is
// allocation-free once the pool is primed (satellite: BenchmarkProcSpawn
// must report 0 allocs/op).
func TestSpawnSleepZeroAlloc(t *testing.T) {
	e := NewEngine(8)
	// Prime: first spawn allocates the Proc, channels, goroutine, timer.
	e.Spawn("prime", func(p *Proc) { p.Sleep(tick) })
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		e.Spawn("steady", func(p *Proc) {
			p.Sleep(tick)
			p.Sleep(3 * tick)
		})
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state spawn+sleep allocates %.1f/op, want 0", allocs)
	}
}

// TestWheelHeapEquivalenceProperty is the satellite #4 property test:
// the hybrid engine must fire in exactly the order and at exactly the
// times of a pure-heap reference over thousands of randomized
// schedule/cancel/re-arm scripts spanning every wheel band.
func TestWheelHeapEquivalenceProperty(t *testing.T) {
	seeds, maxFire := 10000, 60
	if testing.Short() {
		seeds = 1000
	}
	for seed := 0; seed < seeds; seed++ {
		if err := CheckEquivalence(int64(seed), maxFire); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatchedWakeInterleaving checks that two same-instant broadcast
// batches deliver in issue order without absorbing each other's waiters,
// and interleave correctly with plain timers at the same instant.
func TestBatchedWakeInterleaving(t *testing.T) {
	e := NewEngine(9)
	qa, qb := NewWaitQueue(e), NewWaitQueue(e)
	var order []string
	for i := 0; i < 3; i++ {
		name := string(rune('a' + i))
		e.Spawn("wa-"+name, func(p *Proc) { qa.Wait(p); order = append(order, "A"+p.Name()) })
		e.Spawn("wb-"+name, func(p *Proc) { qb.Wait(p); order = append(order, "B"+p.Name()) })
	}
	e.Run() // park everyone
	qa.WakeAll()
	e.At(e.Now(), func() { order = append(order, "timer") })
	qb.WakeAll()
	e.Run()
	want := []string{"Awa-a", "Awa-b", "Awa-c", "timer", "Bwb-a", "Bwb-b", "Bwb-c"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
