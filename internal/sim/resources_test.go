package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSemaphoreFIFO(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	s := NewSemaphore(e, 2)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			s.Acquire(p, 1)
			order = append(order, i)
			p.Sleep(time.Duration(10+i) * time.Millisecond)
			s.Release(1)
		})
	}
	e.Run()
	if len(order) != 4 {
		t.Fatalf("acquired %d times, want 4", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("non-FIFO semaphore order: %v", order)
		}
	}
}

func TestSemaphoreNoBarging(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	s := NewSemaphore(e, 2)
	var got []string
	// First, a big request that cannot be satisfied yet.
	e.Spawn("big", func(p *Proc) {
		p.Sleep(time.Millisecond)
		s.Acquire(p, 3)
		got = append(got, "big")
	})
	// Then a small request that *could* be satisfied but must queue behind.
	e.Spawn("small", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		s.Acquire(p, 1)
		got = append(got, "small")
	})
	e.Spawn("releaser", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		s.Release(2)
	})
	e.Run()
	if len(got) != 2 || got[0] != "big" || got[1] != "small" {
		t.Fatalf("barging occurred: %v", got)
	}
}

func TestQueueBlockingAndCapacity(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	q := NewQueue[int](e, 2)
	var produced, consumed []time.Duration
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			q.Put(p, i)
			produced = append(produced, p.Now())
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(10 * time.Millisecond)
			v := q.Get(p)
			if v != i {
				t.Errorf("got %d, want %d", v, i)
			}
			consumed = append(consumed, p.Now())
		}
	})
	e.Run()
	if len(produced) != 4 || len(consumed) != 4 {
		t.Fatalf("produced %d consumed %d", len(produced), len(consumed))
	}
	// First two puts succeed immediately; third must wait for first get.
	if produced[1] != 0 {
		t.Fatalf("second put at %v, want 0", produced[1])
	}
	if produced[2] != 10*time.Millisecond {
		t.Fatalf("third put at %v, want 10ms", produced[2])
	}
}

func TestQueueTryOps(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	q := NewQueue[string](e, 1)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	if !q.TryPut("a") {
		t.Fatal("TryPut on empty queue failed")
	}
	if q.TryPut("b") {
		t.Fatal("TryPut on full queue succeeded")
	}
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("Peek = %q,%v", v, ok)
	}
	if v, ok := q.TryGet(); !ok || v != "a" {
		t.Fatalf("TryGet = %q,%v", v, ok)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
}

func TestProcessorFCFSQueueing(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	c := NewProcessor(e, "core", 1.0)
	var finish []time.Duration
	for i := 0; i < 3; i++ {
		e.Spawn("job", func(p *Proc) {
			c.Exec(p, 10*time.Millisecond)
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
	if c.BusyTime() != 30*time.Millisecond {
		t.Fatalf("busy = %v, want 30ms", c.BusyTime())
	}
}

func TestProcessorSpeedScaling(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	wimpy := NewProcessor(e, "arm", 0.5)
	var finish time.Duration
	e.Spawn("job", func(p *Proc) {
		wimpy.Exec(p, 10*time.Millisecond)
		finish = p.Now()
	})
	e.Run()
	if finish != 20*time.Millisecond {
		t.Fatalf("finish = %v, want 20ms on half-speed core", finish)
	}
}

func TestCorePoolParallelism(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	cp := NewCorePool(e, "pool", 2, 1.0)
	var finish []time.Duration
	for i := 0; i < 4; i++ {
		e.Spawn("job", func(p *Proc) {
			cp.Exec(p, 10*time.Millisecond)
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	// 2 cores, 4 jobs of 10ms: finish at 10,10,20,20.
	want := []time.Duration{10 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond, 20 * time.Millisecond}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	sig := NewSignal(e)
	woken := 0
	for i := 0; i < 3; i++ {
		e.Spawn("waiter", func(p *Proc) {
			sig.Wait(p)
			woken++
		})
	}
	e.After(time.Millisecond, func() { sig.Pulse() })
	e.Run()
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

// Property: for any mix of put/get counts, a FIFO queue delivers items in
// insertion order and conserves them.
func TestQueueFIFOProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		e := NewEngine(seed)
		defer e.Stop()
		q := NewQueue[int](e, 0)
		var got []int
		e.Spawn("producer", func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Sleep(time.Duration(e.Rand().Intn(100)) * time.Microsecond)
				q.Put(p, i)
			}
		})
		e.Spawn("consumer", func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Sleep(time.Duration(e.Rand().Intn(100)) * time.Microsecond)
				got = append(got, q.Get(p))
			}
		})
		e.Run()
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: semaphore never goes negative and all acquirers eventually run
// when permits cycle.
func TestSemaphoreConservationProperty(t *testing.T) {
	f := func(seed int64, workersRaw, permitsRaw uint8) bool {
		workers := int(workersRaw%8) + 1
		permits := int(permitsRaw%3) + 1
		e := NewEngine(seed)
		defer e.Stop()
		s := NewSemaphore(e, permits)
		inside, maxInside, completed := 0, 0, 0
		for i := 0; i < workers; i++ {
			e.Spawn("w", func(p *Proc) {
				for j := 0; j < 3; j++ {
					s.Acquire(p, 1)
					inside++
					if inside > maxInside {
						maxInside = inside
					}
					p.Sleep(time.Duration(1+e.Rand().Intn(50)) * time.Microsecond)
					inside--
					s.Release(1)
				}
				completed++
			})
		}
		e.Run()
		return completed == workers && maxInside <= permits && s.Available() == permits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestProcessorChargeAndAccessors(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	c := NewProcessor(e, "core", 0.5)
	if c.Name() != "core" || c.Speed() != 0.5 {
		t.Fatal("accessors wrong")
	}
	c.Charge(10 * time.Millisecond)
	// The charge is backlog: none of it has been realized at t=0, so the
	// core cannot report more busy time than has elapsed.
	if c.BusyTime() != 0 {
		t.Fatalf("busy = %v, want 0 at t=0", c.BusyTime())
	}
	if c.Ops() != 1 {
		t.Fatalf("ops = %d", c.Ops())
	}
	if c.QueueDelay() != 20*time.Millisecond { // scaled by 1/0.5
		t.Fatalf("queue delay = %v", c.QueueDelay())
	}
	// Charge stacks behind the backlog.
	c.Charge(10 * time.Millisecond)
	if c.QueueDelay() != 40*time.Millisecond {
		t.Fatalf("stacked queue delay = %v", c.QueueDelay())
	}
	// Mid-backlog, realized busy time equals elapsed time (core saturated).
	e.RunUntil(10 * time.Millisecond)
	if c.BusyTime() != 10*time.Millisecond {
		t.Fatalf("busy = %v, want 10ms mid-backlog", c.BusyTime())
	}
	// An Exec issued now waits behind both charges.
	var done time.Duration
	e.Spawn("job", func(p *Proc) {
		c.Exec(p, 5*time.Millisecond)
		done = p.Now()
	})
	e.Run()
	if done != 50*time.Millisecond {
		t.Fatalf("exec finished at %v, want 50ms", done)
	}
	if c.BusyTime() != 50*time.Millisecond {
		t.Fatalf("busy = %v, want 50ms once backlog drains", c.BusyTime())
	}
}

func TestCorePoolQueueDelayAndCharge(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	cp := NewCorePool(e, "pool", 2, 1.0)
	if cp.Size() != 2 || len(cp.Cores()) != 2 {
		t.Fatal("pool accessors wrong")
	}
	cp.Charge(10 * time.Millisecond)
	if cp.QueueDelay() != 0 {
		t.Fatal("second core should be free")
	}
	cp.Charge(10 * time.Millisecond)
	if cp.QueueDelay() != 10*time.Millisecond {
		t.Fatalf("both busy: delay = %v", cp.QueueDelay())
	}
	// Nothing realized yet at t=0; once the backlog drains the pool has
	// accumulated both charges.
	if cp.BusyTime() != 0 {
		t.Fatalf("pool busy = %v, want 0 at t=0", cp.BusyTime())
	}
	e.RunUntil(10 * time.Millisecond)
	if cp.BusyTime() != 20*time.Millisecond {
		t.Fatalf("pool busy = %v, want 20ms after backlog", cp.BusyTime())
	}
}

// Property: realized busy time never exceeds elapsed virtual time on any
// core and is monotone non-decreasing, under a randomized mix of blocking
// Execs and non-blocking Charges (the Charge-during-Run double-accounting
// regression).
func TestProcessorBusyTimeWithinElapsed(t *testing.T) {
	e := NewEngine(7)
	defer e.Stop()
	cores := []*Processor{
		NewProcessor(e, "wimpy", 0.5),
		NewProcessor(e, "ref", 1.0),
		NewProcessor(e, "fast", 2.0),
	}
	const horizon = 50 * time.Millisecond
	for i := 0; i < 8; i++ {
		c := cores[i%len(cores)]
		e.Spawn("worker", func(p *Proc) {
			for p.Now() < horizon {
				c.Exec(p, time.Duration(1+e.Rand().Intn(500))*time.Microsecond)
				p.Sleep(time.Duration(e.Rand().Intn(300)) * time.Microsecond)
			}
		})
	}
	stopCharge := e.Ticker(173*time.Microsecond, func(now time.Duration) {
		cores[e.Rand().Intn(len(cores))].Charge(time.Duration(e.Rand().Intn(400)) * time.Microsecond)
	})
	last := make([]time.Duration, len(cores))
	stopSample := e.Ticker(97*time.Microsecond, func(now time.Duration) {
		for i, c := range cores {
			busy := c.BusyTime()
			if busy > now {
				t.Fatalf("core %s: busy %v > elapsed %v", c.Name(), busy, now)
			}
			if busy < last[i] {
				t.Fatalf("core %s: busy went backwards %v -> %v", c.Name(), last[i], busy)
			}
			last[i] = busy
		}
	})
	e.RunUntil(60 * time.Millisecond)
	stopCharge()
	stopSample()
}

func TestProcAccessors(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	p := e.Spawn("myproc", func(pr *Proc) {
		if pr.Name() != "myproc" || pr.Engine() != e {
			t.Error("proc accessors wrong")
		}
	})
	if p.Done() {
		t.Fatal("done before running")
	}
	e.Run()
	if !p.Done() {
		t.Fatal("not done after running")
	}
}
