package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Scheduler-equivalence oracle: drives the production engine (timing wheel
// + heap hybrid) and a deliberately naive pure-heap reference through the
// same seeded schedule/cancel/re-arm script and requires bit-identical
// firing logs — same IDs, same order, same timestamps. The script is a pure
// function of (seed, step): both runs draw per-step randomness from a
// counter-seeded source, so the first ordering divergence surfaces as a log
// mismatch at exactly the step where the engines disagree.
//
// This is the regression fence for the wheel's exactness claim (wheel.go):
// slots bucket, the heap orders, and no cascade or overflow path may
// reorder or re-time an event. simtest registers it as invariant #11, and
// TestWheelHeapEquivalenceProperty sweeps thousands of seeds.

// fireRec is one fired event in an equivalence log.
type fireRec struct {
	id int
	at time.Duration
}

// eqScheduler abstracts the two engines under test. Handles are opaque to
// the driver; cancel on a fired handle must be a no-op.
type eqScheduler interface {
	now() time.Duration
	schedule(at time.Duration, id int)
	cancel(id int)
	run() // fire everything, invoking the driver on each event
}

// eqDelays spans every band of the timer queue: sub-tick, level-0 slots,
// each cascade boundary (64^k ticks), level interiors, the top-level
// horizon, and far-future overflow past the wheel entirely.
var eqDelays = []time.Duration{
	0,                            // same-instant (due path)
	300 * time.Nanosecond,        // sub-tick
	1 << wheelShift,              // exactly one tick (first level-0 slot)
	40 << wheelShift,             // level-0 interior
	63 << wheelShift,             // last level-0 slot
	64 << wheelShift,             // level-0/1 cascade boundary
	1000 << wheelShift,           // level-1 interior
	(64 * 64) << wheelShift,      // level-1/2 cascade boundary
	20 * time.Millisecond,        // level-2 interior
	(64 * 64 * 64) << wheelShift, // level-2/3 cascade boundary
	2 * time.Second,              // level-3 interior
	wheelSpan << wheelShift,      // top-level horizon (first overflow tick)
	30 * time.Second,             // far-future overflow (heap-resident)
}

// eqDriver replays the seeded script against one scheduler. Both runs build
// identical driver state as long as the firing order matches; the logs are
// the proof.
type eqDriver struct {
	seed    int64
	s       eqScheduler
	log     []fireRec
	live    map[int]time.Duration // pending id -> deadline
	nextID  int
	fires   int
	maxFire int
}

// stepRng returns the per-step random source: a pure function of the seed
// and the global step counter, so both engines draw the same numbers at
// the same logical point.
func (d *eqDriver) stepRng(step int) *rand.Rand {
	return rand.New(rand.NewSource(d.seed*1_000_003 + int64(step)))
}

// scheduleOne books a new event with a delay drawn from the band table
// (with ns jitter so same-slot events carry distinct timestamps), sometimes
// duplicating the previous deadline exactly to force (at, seq) ties.
func (d *eqDriver) scheduleOne(rng *rand.Rand, lastAt time.Duration) time.Duration {
	at := d.s.now() + eqDelays[rng.Intn(len(eqDelays))] + time.Duration(rng.Intn(2048))
	if lastAt >= d.s.now() && rng.Intn(4) == 0 {
		at = lastAt // exact tie: same timestamp, later seq
	}
	id := d.nextID
	d.nextID++
	d.live[id] = at
	d.s.schedule(at, id)
	return at
}

// pickLive returns the lowest live id (deterministic choice), preferring an
// event due at exactly the current instant when sameInstant is set — the
// cancel-vs-same-tick-fire window the wheel widens.
func (d *eqDriver) pickLive(sameInstant bool) (int, bool) {
	best, found := -1, false
	for id, at := range d.live {
		if sameInstant && at != d.s.now() {
			continue
		}
		if !found || id < best {
			best, found = id, true
		}
	}
	return best, found
}

// fired is the callback both schedulers invoke per event. It logs, then
// runs the step's scripted actions: schedule 0-2 new events, maybe cancel
// (preferring a same-instant victim), maybe re-arm (cancel + reschedule).
func (d *eqDriver) fired(id int) {
	d.log = append(d.log, fireRec{id: id, at: d.s.now()})
	delete(d.live, id)
	step := d.fires
	d.fires++
	if d.fires >= d.maxFire {
		return // tape exhausted; let the queue drain
	}
	rng := d.stepRng(step)
	lastAt := time.Duration(-1)
	for n := rng.Intn(3); n > 0; n-- {
		lastAt = d.scheduleOne(rng, lastAt)
	}
	if rng.Intn(3) == 0 {
		if victim, ok := d.pickLive(rng.Intn(2) == 0); ok {
			d.s.cancel(victim)
			delete(d.live, victim)
		}
	}
	if rng.Intn(4) == 0 {
		if victim, ok := d.pickLive(false); ok {
			d.s.cancel(victim)
			delete(d.live, victim)
			d.scheduleOne(rng, d.live[victim])
		}
	}
}

// runEq drives one scheduler through the whole script: seed the queue from
// step -1's randomness, then fire to quiesce.
func runEq(seed int64, maxFire int, mk func(d *eqDriver) eqScheduler) *eqDriver {
	d := &eqDriver{seed: seed, live: make(map[int]time.Duration), maxFire: maxFire}
	d.s = mk(d)
	rng := d.stepRng(-1)
	last := time.Duration(-1)
	for i := 8 + rng.Intn(25); i > 0; i-- {
		last = d.scheduleOne(rng, last)
	}
	d.s.run()
	return d
}

// ---- production-engine adapter ----

type eqEngine struct {
	d       *eqDriver
	eng     *Engine
	handles map[int]Event
}

func (a *eqEngine) now() time.Duration { return a.eng.Now() }
func (a *eqEngine) schedule(at time.Duration, id int) {
	a.handles[id] = a.eng.At(at, func() {
		delete(a.handles, id)
		a.d.fired(id)
	})
}
func (a *eqEngine) cancel(id int) {
	if h, ok := a.handles[id]; ok {
		h.Cancel()
		delete(a.handles, id)
	}
}
func (a *eqEngine) run() { a.eng.Run() }

// ---- pure-heap reference ----

// refEvent is one entry in the reference scheduler's naive priority queue.
type refEvent struct {
	at  time.Duration
	seq uint64
	id  int
}

// refSched is the oracle: an unindexed slice with linear-scan min
// extraction, ordered on (at, seq) exactly as the engine documents. Slow
// and obviously correct.
type refSched struct {
	d     *eqDriver
	t     time.Duration
	seq   uint64
	queue []refEvent
}

func (r *refSched) now() time.Duration { return r.t }
func (r *refSched) schedule(at time.Duration, id int) {
	r.seq++
	r.queue = append(r.queue, refEvent{at: at, seq: r.seq, id: id})
}
func (r *refSched) cancel(id int) {
	for i := range r.queue {
		if r.queue[i].id == id {
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			return
		}
	}
}
func (r *refSched) run() {
	for len(r.queue) > 0 {
		min := 0
		for i := 1; i < len(r.queue); i++ {
			if e, m := r.queue[i], r.queue[min]; e.at < m.at || (e.at == m.at && e.seq < m.seq) {
				min = i
			}
		}
		ev := r.queue[min]
		r.queue = append(r.queue[:min], r.queue[min+1:]...)
		r.t = ev.at
		r.d.fired(ev.id)
	}
}

// CheckEquivalence runs the seeded script on both the production engine and
// the pure-heap reference and returns an error describing the first
// divergence in their firing logs (nil if they match exactly). maxFire
// bounds the script length; the tails drain fully, so far-future and
// overflow events are compared too.
func CheckEquivalence(seed int64, maxFire int) error {
	real := runEq(seed, maxFire, func(d *eqDriver) eqScheduler {
		return &eqEngine{d: d, eng: NewEngine(seed), handles: make(map[int]Event)}
	})
	ref := runEq(seed, maxFire, func(d *eqDriver) eqScheduler {
		return &refSched{d: d}
	})
	if len(real.log) != len(ref.log) {
		return fmt.Errorf("sim: equivalence seed %d: engine fired %d events, reference %d",
			seed, len(real.log), len(ref.log))
	}
	for i := range real.log {
		if real.log[i] != ref.log[i] {
			return fmt.Errorf("sim: equivalence seed %d: divergence at fire %d: engine (id=%d at=%v), reference (id=%d at=%v)",
				seed, i, real.log[i].id, real.log[i].at, ref.log[i].id, ref.log[i].at)
		}
	}
	return nil
}
