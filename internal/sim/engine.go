// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock and an event heap. Model code runs either
// as plain event callbacks or as coroutine-style processes (Proc) that can
// block on virtual time and on synchronization primitives. Exactly one
// goroutine executes at any instant — the engine hands control to a process
// and waits for it to yield — so simulations are fully deterministic for a
// given seed and are safe to write without locks.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// Event is a scheduled callback. It can be canceled before it fires.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	index    int // heap index, -1 when not queued
	canceled bool
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (ev *Event) Cancel() { ev.canceled = true }

// eventHeap orders events by (time, insertion sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. Create one with NewEngine, schedule
// work with At/After/Spawn, then call Run (or RunUntil / RunFor). Call Stop
// when done to release any processes still blocked inside the simulation.
type Engine struct {
	now     time.Duration
	queue   eventHeap
	seq     uint64
	rng     *rand.Rand
	killed  chan struct{}
	stopped bool
	running bool
	// procs counts live processes; atomic because process goroutines
	// decrement it concurrently while draining after Stop.
	procs atomic.Int64
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:    rand.New(rand.NewSource(seed)),
		killed: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d from now. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Immediate schedules fn at the current virtual time, after any events
// already queued for this instant. It is the ordering-safe way to wake
// processes from within other processes.
func (e *Engine) Immediate(fn func()) *Event { return e.At(e.now, fn) }

// Run executes events until the queue is empty or the engine is stopped.
func (e *Engine) Run() { e.RunUntil(1<<62 - 1) }

// RunFor runs for d of virtual time from now.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

// RunUntil executes events with timestamps <= t, advancing the clock to t
// (or stopping earlier if the queue drains or Stop is called).
func (e *Engine) RunUntil(t time.Duration) {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for !e.stopped && len(e.queue) > 0 {
		ev := e.queue[0]
		if ev.at > t {
			break
		}
		heap.Pop(&e.queue)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		ev.fn()
	}
	if !e.stopped && e.now < t && t < 1<<62-1 {
		e.now = t
	}
}

// Stop halts the simulation and releases every process still blocked inside
// it (their goroutines exit). The engine must not be used afterwards.
func (e *Engine) Stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	close(e.killed)
}

// Pending reports the number of queued (possibly canceled) events.
func (e *Engine) Pending() int { return len(e.queue) }

// Procs reports the number of live processes.
func (e *Engine) Procs() int { return int(e.procs.Load()) }
