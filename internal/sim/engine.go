// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock and a two-tier timer queue. Model code
// runs either as plain event callbacks or as coroutine-style processes
// (Proc) that can block on virtual time and on synchronization primitives.
// Exactly one goroutine executes at any instant — the engine hands control
// to a process and waits for it to yield — so simulations are fully
// deterministic for a given seed and are safe to write without locks.
//
// The hot path is allocation-free at steady state: fired and canceled
// events return to a per-engine free list, process state (including the
// goroutine) is pooled behind generation-fenced handles, and the timer
// queue is a hierarchical timing wheel (wheel.go) in front of a
// hand-inlined indexed 4-ary min-heap. The wheel indexes the dense
// near-future band so a million outstanding timers cost O(1) to insert and
// cancel; the heap holds due and far-overflow timers and is the exact-order
// firing stage, so events always fire in (time, sequence) order. Engines
// are single-threaded but independent — separate Engine instances may run
// concurrently on different goroutines, which is how the experiment runner
// shards sweep points across cores.
package sim

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// Event node location sentinels for event.index (>= 0 means a heap slot).
const (
	idleIdx  = -1 // not queued: free, fired, or a disarmed owned timer
	wheelIdx = -2 // bucketed in the timing wheel
)

// event is a pooled timer-queue node. Model code never holds one directly:
// At/After return a generation-checked Event handle, so a handle kept past
// the callback's firing (or cancellation) can never reach into a recycled
// node. A node is in exactly one place at a time: the heap (index >= 0),
// a wheel bucket (index == wheelIdx), or idle (index == idleIdx).
type event struct {
	eng *Engine
	fn  func()

	// proc, when non-nil, makes this a wake event: firing resumes the
	// process instead of calling fn, fenced by procGen so a wake scheduled
	// for a recycled process can never resume the slot's next occupant.
	proc    *Proc
	procGen uint64

	// at/seq mirror the heap ordering key so wheel-bucketed nodes carry
	// their key with them into the heap at drain time.
	at  time.Duration
	seq uint64

	// next/prev link the node into its wheel bucket (intrusive, O(1)
	// cancel); lvl/slot locate the bucket head for unlinking.
	next, prev *event
	lvl, slot  int16

	// batch > 0 marks a batched wake event: firing pops that many entries
	// from the engine's wake queue and dispatches them in FIFO order.
	batch int32

	// owned marks a process's re-armable timer slot: it is disarmed in
	// place on fire/cancel (gen bump only) and never returns to the pool.
	owned bool

	index int // heap position, or idleIdx / wheelIdx
	gen   uint64
}

// Event is a cancelable handle to a scheduled callback. The zero value is
// inert: Cancel on it is a no-op and Pending reports false.
type Event struct {
	ev  *event
	gen uint64
}

// Cancel removes the event from the timer queue immediately — O(log n) out
// of the heap, O(1) out of a wheel bucket — releasing its callback closure
// and returning the node to the engine's pool (owned timer slots are
// disarmed in place instead). Canceling an already-fired, already-canceled
// or zero handle is a no-op: every disarm bumps the node's generation, so
// a stale handle can never touch the slot's next occupant even when the
// cancel lands at the exact virtual time the event fires.
func (h Event) Cancel() {
	ev := h.ev
	if ev == nil || ev.gen != h.gen {
		return
	}
	eng := ev.eng
	switch {
	case ev.index >= 0:
		eng.heapRemove(ev.index)
	case ev.index == wheelIdx:
		eng.wheel.remove(ev)
	default:
		return
	}
	eng.pending--
	if ev.owned {
		ev.gen++ // disarm: fence stale handles from earlier arms
	} else {
		eng.release(ev)
	}
}

// Pending reports whether the event is still queued: not yet fired and not
// canceled.
func (h Event) Pending() bool {
	return h.ev != nil && h.ev.gen == h.gen && h.ev.index != idleIdx
}

// heapEntry is one slot of the firing-stage heap. The ordering key lives
// inline in the heap slice so sift comparisons never dereference the node —
// the four children of a 4-ary parent are adjacent in memory, so a whole
// sibling comparison round usually costs one cache line.
type heapEntry struct {
	at  time.Duration
	seq uint64
	ev  *event
}

// entryLess orders entries by time, breaking ties by insertion sequence so
// same-instant events fire FIFO.
func entryLess(a, b heapEntry) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// wakeRef is one queued process wakeup in a batched delivery, fenced by the
// generation the process had when the wake was issued.
type wakeRef struct {
	p   *Proc
	gen uint64
}

// Engine is a discrete-event simulator. Create one with NewEngine, schedule
// work with At/After/Spawn, then call Run (or RunUntil / RunFor). Call Stop
// when done to release any processes still blocked inside the simulation.
type Engine struct {
	now   time.Duration
	heap  []heapEntry // firing stage: due + far-overflow events, 4-ary min-heap on (at, seq)
	wheel wheel       // near-future band: hierarchical timing wheel
	free  []*event    // recycled nodes; bounds steady-state allocation at zero
	seq   uint64
	rng   *rand.Rand

	pending int    // queued events across heap + wheel
	fired   uint64 // events executed since construction

	// wakeQ is the FIFO of batched process wakeups (insertion-order slice,
	// never a map: batch delivery must be deterministic). Batch events pop
	// from wakeHead in seq order, so the ring stays aligned.
	wakeQ    []wakeRef
	wakeHead int

	freeProcs []*Proc // recycled process state (channels, goroutine, timer)
	allProcs  []*Proc // every process ever built, for the Stop kill sweep

	stopped bool
	running bool
	// killOnExit defers the Stop kill sweep until the dispatch chain has
	// unwound and every process goroutine is parked (Stop called mid-Run).
	killOnExit bool
	// procs counts live processes; atomic because process goroutines
	// decrement it concurrently while draining after Stop.
	procs atomic.Int64
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t time.Duration, fn func()) Event {
	ev := e.alloc()
	ev.fn = fn
	e.schedule(ev, t)
	return Event{ev: ev, gen: ev.gen}
}

// After schedules fn to run d from now. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) Event {
	return e.At(e.now+d, fn)
}

// Immediate schedules fn at the current virtual time, after any events
// already queued for this instant. It is the ordering-safe way to wake
// processes from within other processes.
func (e *Engine) Immediate(fn func()) Event { return e.At(e.now, fn) }

// schedule stamps ev's ordering key and routes it: due or past-horizon
// deadlines go straight to the heap, the near-future band goes to the
// wheel. ev must be idle.
func (e *Engine) schedule(ev *event, t time.Duration) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	if e.seq == 0 {
		// Sequence numbers are never reused, even for pooled nodes: a wrap
		// would let two queued events compare equal on (at, seq) and break
		// the deterministic FIFO tie-order.
		panic("sim: event sequence overflow")
	}
	ev.at, ev.seq = t, e.seq
	e.pending++
	if e.wheel.count == 0 {
		// Nothing bucketed: re-anchor the drain boundary at the clock so
		// deltas stay small and events land at the finest level.
		e.wheel.tick = wheelTickOf(e.now)
	}
	if l := levelFor(e.wheel.tick, wheelTickOf(t)); l >= 0 {
		e.wheel.insert(ev, l)
		return
	}
	e.heapPush(heapEntry{at: t, seq: e.seq, ev: ev})
}

// wakeAt schedules a pooled wake event resuming p at absolute time t.
func (e *Engine) wakeAt(t time.Duration, p *Proc) Event {
	ev := e.alloc()
	ev.proc, ev.procGen = p, p.gen
	e.schedule(ev, t)
	return Event{ev: ev, gen: ev.gen}
}

// wakeImmediate schedules a wake for p at the current instant, after events
// already queued for it.
func (e *Engine) wakeImmediate(p *Proc) Event { return e.wakeAt(e.now, p) }

// wakeProcAt arms p's owned timer slot at absolute time t — the re-arm-in-
// place path Sleep and Processor.Exec ride: no pool churn, the same node is
// re-stamped and re-inserted. Falls back to a pooled wake event in the
// (unexpected) case the slot is already armed.
func (e *Engine) wakeProcAt(t time.Duration, p *Proc) Event {
	ev := p.timer
	if ev == nil {
		ev = &event{eng: e, index: idleIdx, owned: true, proc: p}
		p.timer = ev
	}
	if ev.index != idleIdx {
		return e.wakeAt(t, p)
	}
	ev.procGen = p.gen
	e.schedule(ev, t)
	return Event{ev: ev, gen: ev.gen}
}

// queueWake appends one process to the batched wake queue. The caller must
// follow up with flushWakes to schedule the delivery event.
func (e *Engine) queueWake(p *Proc) {
	e.wakeQ = append(e.wakeQ, wakeRef{p: p, gen: p.gen})
}

// flushWakes schedules a single event at the current instant that delivers
// the last n queued wakeups in FIFO order: N same-instant wakeups cost one
// timer-queue dispatch instead of N.
func (e *Engine) flushWakes(n int) {
	if n <= 0 {
		return
	}
	ev := e.alloc()
	ev.batch = int32(n)
	e.schedule(ev, e.now)
}

// Run executes events until the queue is empty or the engine is stopped.
func (e *Engine) Run() { e.RunUntil(1<<62 - 1) }

// RunFor runs for d of virtual time from now.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

// RunUntil executes events with timestamps <= t, advancing the clock to t
// (or stopping earlier if the queue drains or Stop is called).
func (e *Engine) RunUntil(t time.Duration) {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() {
		e.running = false
		if e.killOnExit {
			// Stop was called mid-run; every process goroutine has parked by
			// now (the dispatch chain fully unwinds before the loop exits),
			// so the kill sweep can deliver its poison tokens.
			e.killOnExit = false
			e.killProcs()
		}
	}()
	for !e.stopped {
		// Make the heap top the global minimum: drain every wheel slot
		// whose start could hold an earlier (or same-instant, lower-seq)
		// event. Slot starts are lower bounds, so "heap top strictly
		// earlier than the earliest occupied slot" is the safe stop.
		for e.wheel.count > 0 {
			wAt := e.wheel.nextAt()
			if len(e.heap) > 0 && e.heap[0].at < wAt {
				break
			}
			if wAt > t {
				break
			}
			e.drainEarliest()
		}
		if len(e.heap) == 0 {
			break
		}
		top := e.heap[0]
		if top.at > t {
			break
		}
		e.heapPopMin()
		e.now = top.at
		e.pending--
		e.fired++
		e.fire(top.ev)
	}
	if !e.stopped && e.now < t && t < 1<<62-1 {
		e.now = t
	}
}

// fire executes one dequeued event. Pooled nodes are recycled before the
// callback runs: the callback may schedule onto the node we just freed, and
// any stale handle is fenced by the gen bump. Owned timer slots are only
// disarmed — their node stays with the owning process for the next re-arm.
func (e *Engine) fire(ev *event) {
	switch {
	case ev.batch > 0:
		n := int(ev.batch)
		ev.batch = 0
		e.release(ev)
		for i := 0; i < n; i++ {
			ref := e.wakeQ[e.wakeHead]
			e.wakeQ[e.wakeHead] = wakeRef{}
			e.wakeHead++
			if e.wakeHead == len(e.wakeQ) {
				e.wakeQ = e.wakeQ[:0]
				e.wakeHead = 0
			}
			if ref.p.gen == ref.gen {
				ref.p.wake()
			}
		}
	case ev.proc != nil:
		p, pg := ev.proc, ev.procGen
		if ev.owned {
			ev.gen++ // disarm in place
		} else {
			e.release(ev)
		}
		if p.gen == pg {
			p.wake()
		}
	default:
		fn := ev.fn
		e.release(ev)
		fn()
	}
}

// Stop halts the simulation and releases every process still blocked inside
// it (their goroutines exit, running any deferred calls). The engine must
// not be used afterwards.
//
// Called between runs (the usual `defer eng.Stop()`), the kill sweep runs
// immediately: every process goroutine is parked, so each poison token is
// delivered synchronously. Called from inside the simulation (an event
// callback or process body), the sweep is deferred to the run loop's exit,
// after the dispatch chain has unwound.
func (e *Engine) Stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	if e.running {
		e.killOnExit = true
		return
	}
	e.killProcs()
}

// killProcs delivers a poison token to every parked process goroutine. Only
// call with all goroutines parked (engine not running).
func (e *Engine) killProcs() {
	for _, p := range e.allProcs {
		if p.started {
			p.started = false
			p.resume <- false
		}
	}
}

// Pending reports the number of queued events across the wheel and the
// heap. Canceled events are removed eagerly and never counted.
func (e *Engine) Pending() int { return e.pending }

// Fired reports the number of events executed since construction — the
// numerator of the engine's events/sec throughput.
func (e *Engine) Fired() uint64 { return e.fired }

// Procs reports the number of live processes.
func (e *Engine) Procs() int { return int(e.procs.Load()) }

// ---- event pool ----

func (e *Engine) alloc() *event {
	if n := len(e.free) - 1; n >= 0 {
		ev := e.free[n]
		e.free[n] = nil
		e.free = e.free[:n]
		return ev
	}
	return &event{eng: e, index: idleIdx}
}

// release returns a dequeued node to the pool. The gen bump invalidates
// every outstanding handle; dropping fn/proc releases the captured closure
// and the process reference.
func (e *Engine) release(ev *event) {
	ev.fn = nil
	ev.proc = nil
	ev.procGen = 0
	ev.batch = 0
	ev.gen++
	e.free = append(e.free, ev)
}

// ---- indexed 4-ary min-heap on (at, seq) ----
//
// A 4-ary layout halves the tree depth of the classic binary heap, and the
// hand-inlined sift loops avoid container/heap's per-comparison interface
// calls and per-push `any` boxing. The node's index field supports
// O(log n) removal for Cancel. With the wheel absorbing the near-future
// band, the heap holds only due and far-overflow events, so it stays
// shallow even under millions of outstanding timers.

func (e *Engine) heapPush(x heapEntry) {
	e.heap = append(e.heap, x)
	e.siftUp(len(e.heap) - 1)
}

// heapPopMin removes the earliest entry; the caller reads it from heap[0]
// beforehand.
func (e *Engine) heapPopMin() {
	h := e.heap
	n := len(h) - 1
	h[0].ev.index = idleIdx
	last := h[n]
	h[n] = heapEntry{}
	e.heap = h[:n]
	if n > 0 {
		e.heap[0] = last
		last.ev.index = 0
		e.siftDown(0)
	}
}

// heapRemove deletes the entry at index i (Cancel's removal path).
func (e *Engine) heapRemove(i int) {
	h := e.heap
	n := len(h) - 1
	h[i].ev.index = idleIdx
	last := h[n]
	h[n] = heapEntry{}
	e.heap = h[:n]
	if i < n {
		e.heap[i] = last
		last.ev.index = i
		e.siftDown(i)
		if last.ev.index == i {
			e.siftUp(i)
		}
	}
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	x := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !entryLess(x, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].ev.index = i
		i = parent
	}
	h[i] = x
	x.ev.index = i
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	x := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if entryLess(h[c], h[min]) {
				min = c
			}
		}
		if !entryLess(h[min], x) {
			break
		}
		h[i] = h[min]
		h[i].ev.index = i
		i = min
	}
	h[i] = x
	x.ev.index = i
}
