// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock and an event heap. Model code runs either
// as plain event callbacks or as coroutine-style processes (Proc) that can
// block on virtual time and on synchronization primitives. Exactly one
// goroutine executes at any instant — the engine hands control to a process
// and waits for it to yield — so simulations are fully deterministic for a
// given seed and are safe to write without locks.
//
// The hot path is allocation-free at steady state: fired and canceled
// events return to a per-engine free list, and the timer queue is a
// hand-inlined indexed 4-ary min-heap ordered on (time, sequence) with no
// interface boxing. Engines are single-threaded but independent — separate
// Engine instances may run concurrently on different goroutines, which is
// how the experiment runner shards sweep points across cores.
package sim

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// event is a pooled timer-queue node. Model code never holds one directly:
// At/After return a generation-checked Event handle, so a handle kept past
// the callback's firing (or cancellation) can never reach into a recycled
// node.
type event struct {
	eng   *Engine
	fn    func()
	index int // position in Engine.heap, -1 when not queued
	gen   uint64
}

// Event is a cancelable handle to a scheduled callback. The zero value is
// inert: Cancel on it is a no-op and Pending reports false.
type Event struct {
	ev  *event
	gen uint64
}

// Cancel removes the event from the queue immediately, releasing its
// callback closure and returning the node to the engine's pool. Canceling
// an already-fired, already-canceled or zero handle is a no-op.
func (h Event) Cancel() {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.index < 0 {
		return
	}
	eng := ev.eng
	eng.heapRemove(ev.index)
	eng.release(ev)
}

// Pending reports whether the event is still queued: not yet fired and not
// canceled.
func (h Event) Pending() bool {
	return h.ev != nil && h.ev.gen == h.gen && h.ev.index >= 0
}

// heapEntry is one slot of the timer queue. The ordering key lives inline
// in the heap slice so sift comparisons never dereference the node — the
// four children of a 4-ary parent are adjacent in memory, so a whole
// sibling comparison round usually costs one cache line.
type heapEntry struct {
	at  time.Duration
	seq uint64
	ev  *event
}

// entryLess orders entries by time, breaking ties by insertion sequence so
// same-instant events fire FIFO.
func entryLess(a, b heapEntry) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// Engine is a discrete-event simulator. Create one with NewEngine, schedule
// work with At/After/Spawn, then call Run (or RunUntil / RunFor). Call Stop
// when done to release any processes still blocked inside the simulation.
type Engine struct {
	now  time.Duration
	heap []heapEntry // indexed 4-ary min-heap on (at, seq)
	free []*event    // recycled nodes; bounds steady-state allocation at zero
	seq  uint64
	rng  *rand.Rand

	killed  chan struct{}
	stopped bool
	running bool
	// procs counts live processes; atomic because process goroutines
	// decrement it concurrently while draining after Stop.
	procs atomic.Int64
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:    rand.New(rand.NewSource(seed)),
		killed: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t time.Duration, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	if e.seq == 0 {
		// Sequence numbers are never reused, even for pooled nodes: a wrap
		// would let two queued events compare equal on (at, seq) and break
		// the deterministic FIFO tie-order.
		panic("sim: event sequence overflow")
	}
	ev := e.alloc()
	ev.fn = fn
	e.heapPush(heapEntry{at: t, seq: e.seq, ev: ev})
	return Event{ev: ev, gen: ev.gen}
}

// After schedules fn to run d from now. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) Event {
	return e.At(e.now+d, fn)
}

// Immediate schedules fn at the current virtual time, after any events
// already queued for this instant. It is the ordering-safe way to wake
// processes from within other processes.
func (e *Engine) Immediate(fn func()) Event { return e.At(e.now, fn) }

// Run executes events until the queue is empty or the engine is stopped.
func (e *Engine) Run() { e.RunUntil(1<<62 - 1) }

// RunFor runs for d of virtual time from now.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

// RunUntil executes events with timestamps <= t, advancing the clock to t
// (or stopping earlier if the queue drains or Stop is called).
func (e *Engine) RunUntil(t time.Duration) {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for !e.stopped && len(e.heap) > 0 {
		top := e.heap[0]
		if top.at > t {
			break
		}
		e.heapPopMin()
		e.now = top.at
		// Recycle before running: the callback may schedule onto the node
		// we just freed, and any stale handle is fenced by the gen bump.
		fn := top.ev.fn
		e.release(top.ev)
		fn()
	}
	if !e.stopped && e.now < t && t < 1<<62-1 {
		e.now = t
	}
}

// Stop halts the simulation and releases every process still blocked inside
// it (their goroutines exit). The engine must not be used afterwards.
func (e *Engine) Stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	close(e.killed)
}

// Pending reports the number of queued events. Canceled events are removed
// eagerly and never counted.
func (e *Engine) Pending() int { return len(e.heap) }

// Procs reports the number of live processes.
func (e *Engine) Procs() int { return int(e.procs.Load()) }

// ---- event pool ----

func (e *Engine) alloc() *event {
	if n := len(e.free) - 1; n >= 0 {
		ev := e.free[n]
		e.free[n] = nil
		e.free = e.free[:n]
		return ev
	}
	return &event{eng: e, index: -1}
}

// release returns a dequeued node to the pool. The gen bump invalidates
// every outstanding handle; dropping fn releases the captured closure.
func (e *Engine) release(ev *event) {
	ev.fn = nil
	ev.gen++
	e.free = append(e.free, ev)
}

// ---- indexed 4-ary min-heap on (at, seq) ----
//
// A 4-ary layout halves the tree depth of the classic binary heap, and the
// hand-inlined sift loops avoid container/heap's per-comparison interface
// calls and per-push `any` boxing. The node's index field supports
// O(log n) removal for Cancel.

func (e *Engine) heapPush(x heapEntry) {
	e.heap = append(e.heap, x)
	e.siftUp(len(e.heap) - 1)
}

// heapPopMin removes the earliest entry; the caller reads it from heap[0]
// beforehand.
func (e *Engine) heapPopMin() {
	h := e.heap
	n := len(h) - 1
	h[0].ev.index = -1
	last := h[n]
	h[n] = heapEntry{}
	e.heap = h[:n]
	if n > 0 {
		e.heap[0] = last
		last.ev.index = 0
		e.siftDown(0)
	}
}

// heapRemove deletes the entry at index i (Cancel's removal path).
func (e *Engine) heapRemove(i int) {
	h := e.heap
	n := len(h) - 1
	h[i].ev.index = -1
	last := h[n]
	h[n] = heapEntry{}
	e.heap = h[:n]
	if i < n {
		e.heap[i] = last
		last.ev.index = i
		e.siftDown(i)
		if last.ev.index == i {
			e.siftUp(i)
		}
	}
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	x := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !entryLess(x, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].ev.index = i
		i = parent
	}
	h[i] = x
	x.ev.index = i
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	x := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if entryLess(h[c], h[min]) {
				min = c
			}
		}
		if !entryLess(h[min], x) {
			break
		}
		h[i] = h[min]
		h[i].ev.index = i
		i = min
	}
	h[i] = x
	x.ev.index = i
}
