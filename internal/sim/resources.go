package sim

import "time"

// WaitQueue is a FIFO list of blocked processes. It is the building block
// for the higher-level primitives in this package; model code can also use
// it directly for ad-hoc conditions.
type WaitQueue struct {
	eng     *Engine
	waiters []*Proc
}

// NewWaitQueue returns an empty wait queue bound to e.
func NewWaitQueue(e *Engine) *WaitQueue { return &WaitQueue{eng: e} }

// Wait blocks p until a Wake call releases it. FIFO order.
func (w *WaitQueue) Wait(p *Proc) {
	w.waiters = append(w.waiters, p)
	p.block()
}

// WakeOne releases the oldest waiter, if any. The waiter resumes at the
// current virtual time, after events already queued for this instant.
func (w *WaitQueue) WakeOne() bool {
	if len(w.waiters) == 0 {
		return false
	}
	p := w.waiters[0]
	w.waiters = w.waiters[1:]
	w.eng.wakeImmediate(p)
	return true
}

// WakeAll releases every waiter in FIFO order as one batched delivery: the
// N wakeups ride a single timer-queue event at the current instant, so a
// broadcast to a thousand sleepers costs one dispatch, not a thousand.
func (w *WaitQueue) WakeAll() {
	n := len(w.waiters)
	if n == 0 {
		return
	}
	for i, p := range w.waiters {
		w.eng.queueWake(p)
		w.waiters[i] = nil
	}
	w.waiters = w.waiters[:0]
	w.eng.flushWakes(n)
}

// Len reports the number of blocked processes.
func (w *WaitQueue) Len() int { return len(w.waiters) }

// Semaphore is a counting semaphore for processes. The zero value is not
// usable; construct with NewSemaphore.
type Semaphore struct {
	eng     *Engine
	avail   int
	waiters []semWaiter
}

type semWaiter struct {
	p *Proc
	n int
}

// NewSemaphore returns a semaphore with count initial permits.
func NewSemaphore(e *Engine, count int) *Semaphore {
	return &Semaphore{eng: e, avail: count}
}

// Acquire takes n permits, blocking p until they are available. Waiters are
// served strictly FIFO (no barging), so a large request cannot be starved.
func (s *Semaphore) Acquire(p *Proc, n int) {
	if n <= 0 {
		panic("sim: semaphore acquire of non-positive count")
	}
	if len(s.waiters) == 0 && s.avail >= n {
		s.avail -= n
		return
	}
	s.waiters = append(s.waiters, semWaiter{p: p, n: n})
	p.block()
}

// TryAcquire takes n permits without blocking, reporting success.
func (s *Semaphore) TryAcquire(n int) bool {
	if len(s.waiters) == 0 && s.avail >= n {
		s.avail -= n
		return true
	}
	return false
}

// Release returns n permits and wakes any waiters that now fit, in FIFO
// order as one batched delivery (a single timer-queue event regardless of
// how many waiters the permits satisfy).
func (s *Semaphore) Release(n int) {
	if n <= 0 {
		panic("sim: semaphore release of non-positive count")
	}
	s.avail += n
	woken := 0
	for len(s.waiters) > 0 && s.avail >= s.waiters[0].n {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.avail -= w.n
		s.eng.queueWake(w.p)
		woken++
	}
	s.eng.flushWakes(woken)
}

// Available reports the current free permit count.
func (s *Semaphore) Available() int { return s.avail }

// Waiting reports the number of blocked acquirers.
func (s *Semaphore) Waiting() int { return len(s.waiters) }

// Queue is a FIFO message queue between processes. With cap == 0 the queue
// is unbounded; otherwise Put blocks when full.
type Queue[T any] struct {
	eng     *Engine
	items   []T
	cap     int
	getters *WaitQueue
	putters *WaitQueue
	closed  bool
}

// NewQueue returns a queue with the given capacity (0 = unbounded).
func NewQueue[T any](e *Engine, capacity int) *Queue[T] {
	return &Queue[T]{
		eng:     e,
		cap:     capacity,
		getters: NewWaitQueue(e),
		putters: NewWaitQueue(e),
	}
}

// Put appends v, blocking while the queue is full.
func (q *Queue[T]) Put(p *Proc, v T) {
	for q.cap > 0 && len(q.items) >= q.cap {
		q.putters.Wait(p)
	}
	q.items = append(q.items, v)
	q.getters.WakeOne()
}

// TryPut appends v without blocking, reporting success.
func (q *Queue[T]) TryPut(v T) bool {
	if q.cap > 0 && len(q.items) >= q.cap {
		return false
	}
	q.items = append(q.items, v)
	q.getters.WakeOne()
	return true
}

// Get removes and returns the oldest item, blocking while empty.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		q.getters.Wait(p)
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.putters.WakeOne()
	return v
}

// TryGet removes the oldest item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.putters.WakeOne()
	return v, true
}

// Peek returns the oldest item without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	return q.items[0], true
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// WaitNonEmpty blocks p until the queue holds at least one item. Unlike Get
// it does not consume; use it to build poll-style loops over many queues.
func (q *Queue[T]) WaitNonEmpty(p *Proc) {
	for len(q.items) == 0 {
		q.getters.Wait(p)
	}
}

// Signal is a broadcast condition: processes wait on it and any code can
// pulse it. Unlike WaitQueue it is level-safe for the common "check
// predicate, wait, recheck" loop shared by several pollers.
type Signal struct {
	wq *WaitQueue
}

// NewSignal returns a signal bound to e.
func NewSignal(e *Engine) *Signal { return &Signal{wq: NewWaitQueue(e)} }

// Wait blocks p until the next Pulse.
func (s *Signal) Wait(p *Proc) { s.wq.Wait(p) }

// Pulse wakes all current waiters.
func (s *Signal) Pulse() { s.wq.WakeAll() }

// Ticker runs fn every interval of virtual time starting at the next
// interval boundary, until the returned stop function is called.
func (e *Engine) Ticker(interval time.Duration, fn func(now time.Duration)) (stop func()) {
	if interval <= 0 {
		panic("sim: non-positive ticker interval")
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn(e.now)
		e.After(interval, tick)
	}
	e.After(interval, tick)
	return func() { stopped = true }
}
