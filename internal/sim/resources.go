package sim

import (
	"time"

	"nadino/internal/ring"
)

// WaitQueue is a FIFO list of blocked processes. It is the building block
// for the higher-level primitives in this package; model code can also use
// it directly for ad-hoc conditions.
type WaitQueue struct {
	eng     *Engine
	waiters ring.Deque[*Proc]
}

// NewWaitQueue returns an empty wait queue bound to e.
func NewWaitQueue(e *Engine) *WaitQueue { return &WaitQueue{eng: e} }

// Wait blocks p until a Wake call releases it. FIFO order.
func (w *WaitQueue) Wait(p *Proc) {
	w.waiters.PushBack(p)
	p.block()
}

// WakeOne releases the oldest waiter, if any. The waiter resumes at the
// current virtual time, after events already queued for this instant.
func (w *WaitQueue) WakeOne() bool {
	if w.waiters.Len() == 0 {
		return false
	}
	p := w.waiters.PopFront()
	w.eng.wakeImmediate(p)
	return true
}

// WakeAll releases every waiter in FIFO order as one batched delivery: the
// N wakeups ride a single timer-queue event at the current instant, so a
// broadcast to a thousand sleepers costs one dispatch, not a thousand.
func (w *WaitQueue) WakeAll() {
	n := w.waiters.Len()
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		w.eng.queueWake(w.waiters.PopFront())
	}
	w.eng.flushWakes(n)
}

// Len reports the number of blocked processes.
func (w *WaitQueue) Len() int { return w.waiters.Len() }

// Semaphore is a counting semaphore for processes. The zero value is not
// usable; construct with NewSemaphore.
type Semaphore struct {
	eng     *Engine
	avail   int
	waiters ring.Deque[semWaiter]
}

type semWaiter struct {
	p *Proc
	n int
}

// NewSemaphore returns a semaphore with count initial permits.
func NewSemaphore(e *Engine, count int) *Semaphore {
	return &Semaphore{eng: e, avail: count}
}

// Acquire takes n permits, blocking p until they are available. Waiters are
// served strictly FIFO (no barging), so a large request cannot be starved.
func (s *Semaphore) Acquire(p *Proc, n int) {
	if n <= 0 {
		panic("sim: semaphore acquire of non-positive count")
	}
	if s.waiters.Len() == 0 && s.avail >= n {
		s.avail -= n
		return
	}
	s.waiters.PushBack(semWaiter{p: p, n: n})
	p.block()
}

// TryAcquire takes n permits without blocking, reporting success.
func (s *Semaphore) TryAcquire(n int) bool {
	if s.waiters.Len() == 0 && s.avail >= n {
		s.avail -= n
		return true
	}
	return false
}

// Release returns n permits and wakes any waiters that now fit, in FIFO
// order as one batched delivery (a single timer-queue event regardless of
// how many waiters the permits satisfy).
func (s *Semaphore) Release(n int) {
	if n <= 0 {
		panic("sim: semaphore release of non-positive count")
	}
	s.avail += n
	woken := 0
	for s.waiters.Len() > 0 && s.avail >= s.waiters.Front().n {
		w := s.waiters.PopFront()
		s.avail -= w.n
		s.eng.queueWake(w.p)
		woken++
	}
	s.eng.flushWakes(woken)
}

// Available reports the current free permit count.
func (s *Semaphore) Available() int { return s.avail }

// Waiting reports the number of blocked acquirers.
func (s *Semaphore) Waiting() int { return s.waiters.Len() }

// Queue is a FIFO message queue between processes. With cap == 0 the queue
// is unbounded; otherwise Put blocks when full.
type Queue[T any] struct {
	eng     *Engine
	items   ring.Deque[T]
	cap     int
	getters *WaitQueue
	putters *WaitQueue
	closed  bool
}

// NewQueue returns a queue with the given capacity (0 = unbounded).
func NewQueue[T any](e *Engine, capacity int) *Queue[T] {
	return &Queue[T]{
		eng:     e,
		cap:     capacity,
		getters: NewWaitQueue(e),
		putters: NewWaitQueue(e),
	}
}

// Put appends v, blocking while the queue is full.
func (q *Queue[T]) Put(p *Proc, v T) {
	for q.cap > 0 && q.items.Len() >= q.cap {
		q.putters.Wait(p)
	}
	q.items.PushBack(v)
	q.getters.WakeOne()
}

// TryPut appends v without blocking, reporting success.
func (q *Queue[T]) TryPut(v T) bool {
	if q.cap > 0 && q.items.Len() >= q.cap {
		return false
	}
	q.items.PushBack(v)
	q.getters.WakeOne()
	return true
}

// Get removes and returns the oldest item, blocking while empty.
func (q *Queue[T]) Get(p *Proc) T {
	for q.items.Len() == 0 {
		q.getters.Wait(p)
	}
	v := q.items.PopFront()
	q.putters.WakeOne()
	return v
}

// TryGet removes the oldest item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if q.items.Len() == 0 {
		return zero, false
	}
	v := q.items.PopFront()
	q.putters.WakeOne()
	return v, true
}

// Peek returns the oldest item without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if q.items.Len() == 0 {
		return zero, false
	}
	return q.items.Front(), true
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return q.items.Len() }

// WaitNonEmpty blocks p until the queue holds at least one item. Unlike Get
// it does not consume; use it to build poll-style loops over many queues.
func (q *Queue[T]) WaitNonEmpty(p *Proc) {
	for q.items.Len() == 0 {
		q.getters.Wait(p)
	}
}

// Signal is a broadcast condition: processes wait on it and any code can
// pulse it. Unlike WaitQueue it is level-safe for the common "check
// predicate, wait, recheck" loop shared by several pollers.
type Signal struct {
	wq *WaitQueue
}

// NewSignal returns a signal bound to e.
func NewSignal(e *Engine) *Signal { return &Signal{wq: NewWaitQueue(e)} }

// Wait blocks p until the next Pulse.
func (s *Signal) Wait(p *Proc) { s.wq.Wait(p) }

// Pulse wakes all current waiters.
func (s *Signal) Pulse() { s.wq.WakeAll() }

// Ticker runs fn every interval of virtual time starting at the next
// interval boundary, until the returned stop function is called.
func (e *Engine) Ticker(interval time.Duration, fn func(now time.Duration)) (stop func()) {
	if interval <= 0 {
		panic("sim: non-positive ticker interval")
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn(e.now)
		e.After(interval, tick)
	}
	e.After(interval, tick)
	return func() { stopped = true }
}
