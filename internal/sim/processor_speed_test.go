package sim

import (
	"testing"
	"time"
)

// execUntilDone runs one Exec of cost on c starting at t=0 and returns the
// completion instant, applying setSpeed(at, speed) changes mid-service.
func execWithSpeedChanges(t *testing.T, cost time.Duration, changes map[time.Duration]float64, c *Processor, eng *Engine) time.Duration {
	t.Helper()
	var done time.Duration
	for at, sp := range changes {
		at, sp := at, sp
		eng.At(at, func() { c.SetSpeed(sp) })
	}
	eng.Spawn("job", func(p *Proc) {
		c.Exec(p, cost)
		done = eng.Now()
	})
	eng.Run()
	return done
}

func TestProcessorSetSpeedSlowdownMidService(t *testing.T) {
	eng := NewEngine(1)
	defer eng.Stop()
	c := NewProcessor(eng, "c", 1.0)
	// 10us of work; at t=5us the core halves. The first 5us ran at full
	// speed, the remaining 5us of reference work takes 10us, so the request
	// completes at 15us — busy time charged at the speed in effect when the
	// work ran.
	done := execWithSpeedChanges(t, 10*time.Microsecond,
		map[time.Duration]float64{5 * time.Microsecond: 0.5}, c, eng)
	if done != 15*time.Microsecond {
		t.Fatalf("completion at %v, want 15µs", done)
	}
	if got := c.BusyTime(); got != 15*time.Microsecond {
		t.Fatalf("busy time %v, want 15µs (realized occupancy)", got)
	}
}

func TestProcessorSetSpeedSpeedupMidService(t *testing.T) {
	eng := NewEngine(1)
	defer eng.Stop()
	c := NewProcessor(eng, "c", 1.0)
	// 10us of work; at t=5us the core doubles. Remaining 5us of reference
	// work takes 2.5us, so completion moves EARLIER, to 7.5us — a fixed
	// sleep could never deliver this.
	done := execWithSpeedChanges(t, 10*time.Microsecond,
		map[time.Duration]float64{5 * time.Microsecond: 2.0}, c, eng)
	if done != 7500*time.Nanosecond {
		t.Fatalf("completion at %v, want 7.5µs", done)
	}
	if got := c.BusyTime(); got != 7500*time.Nanosecond {
		t.Fatalf("busy time %v, want 7.5µs", got)
	}
}

func TestProcessorSetSpeedRestoreMidService(t *testing.T) {
	eng := NewEngine(1)
	defer eng.Stop()
	c := NewProcessor(eng, "c", 1.0)
	// The chaos SlowCores pattern: degrade to 0.5 at 2us, restore to 1.0 at
	// 6us. Work timeline for a 10us request: [0,2) at speed 1 covers 2us of
	// reference work; [2,6) at speed 0.5 covers 2us; the remaining 6us runs
	// at speed 1 and ends at t=12us.
	done := execWithSpeedChanges(t, 10*time.Microsecond, map[time.Duration]float64{
		2 * time.Microsecond: 0.5,
		6 * time.Microsecond: 1.0,
	}, c, eng)
	if done != 12*time.Microsecond {
		t.Fatalf("completion at %v, want 12µs", done)
	}
	if got := c.BusyTime(); got != 12*time.Microsecond {
		t.Fatalf("busy time %v, want 12µs", got)
	}
	if c.Speed() != 1.0 {
		t.Fatalf("speed %v after restore, want 1.0", c.Speed())
	}
}

func TestProcessorSetSpeedPreservesFCFS(t *testing.T) {
	eng := NewEngine(1)
	defer eng.Stop()
	c := NewProcessor(eng, "c", 1.0)
	var order []string
	var times []time.Duration
	submit := func(name string) {
		eng.Spawn(name, func(p *Proc) {
			c.Exec(p, 10*time.Microsecond)
			order = append(order, name)
			times = append(times, eng.Now())
		})
	}
	submit("a")
	submit("b")
	eng.At(5*time.Microsecond, func() { c.SetSpeed(0.5) })
	eng.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("completion order %v, want [a b]", order)
	}
	// a: 5us done at speed 1, 5us remaining stretches to 10us -> t=15us.
	// b: queued behind a; its 20us completion has 15us of backlog left at
	// the change, stretching to 30us -> t=35us.
	if times[0] != 15*time.Microsecond || times[1] != 35*time.Microsecond {
		t.Fatalf("completions %v, want [15µs 35µs]", times)
	}
}

func TestProcessorSetSpeedWhileIdle(t *testing.T) {
	eng := NewEngine(1)
	defer eng.Stop()
	c := NewProcessor(eng, "c", 1.0)
	c.SetSpeed(0.5) // idle: nothing to rescale
	var done time.Duration
	eng.Spawn("job", func(p *Proc) {
		c.Exec(p, 5*time.Microsecond)
		done = eng.Now()
	})
	eng.Run()
	if done != 10*time.Microsecond {
		t.Fatalf("completion at %v, want 10µs at half speed", done)
	}
}

func TestProcessorBusyTimeContinuousAcrossSetSpeed(t *testing.T) {
	eng := NewEngine(1)
	defer eng.Stop()
	c := NewProcessor(eng, "c", 1.0)
	var before, after time.Duration
	eng.At(5*time.Microsecond, func() {
		before = c.BusyTime()
		c.SetSpeed(0.25)
		after = c.BusyTime()
	})
	eng.Spawn("job", func(p *Proc) { c.Exec(p, 10*time.Microsecond) })
	eng.Run()
	if before != 5*time.Microsecond {
		t.Fatalf("busy before change %v, want 5µs", before)
	}
	if after != before {
		t.Fatalf("BusyTime jumped across SetSpeed: %v -> %v", before, after)
	}
}

// TestEngineScheduleZeroAlloc is the allocation fence for the engine's
// schedule+fire hot path: once the event pool is warm, scheduling must not
// allocate — this is what keeps the telemetry-off configuration zero
// overhead (no scraper events exist, and the path they would ride is
// allocation-free).
func TestEngineScheduleZeroAlloc(t *testing.T) {
	eng := NewEngine(1)
	defer eng.Stop()
	for i := 0; i < 64; i++ { // warm the event pool and heap
		eng.After(time.Duration(i)*time.Microsecond, nop)
	}
	eng.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		eng.After(time.Microsecond, nop)
		eng.Run()
	})
	if allocs != 0 {
		t.Fatalf("schedule+fire allocates %v per op, want 0", allocs)
	}
}
