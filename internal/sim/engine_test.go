package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	var got []int
	e.At(30*time.Millisecond, func() { got = append(got, 3) })
	e.At(10*time.Millisecond, func() { got = append(got, 1) })
	e.At(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	fired := false
	ev := e.After(time.Millisecond, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelRemovesFromHeap(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	evs := make([]Event, 10)
	for i := range evs {
		evs[i] = e.After(time.Duration(i+1)*time.Millisecond, func() { t.Fatal("canceled event fired") })
	}
	if e.Pending() != 10 {
		t.Fatalf("pending = %d, want 10", e.Pending())
	}
	// Cancel out of order to exercise interior heap removal.
	for _, i := range []int{5, 0, 9, 3, 7, 1, 8, 2, 6, 4} {
		evs[i].Cancel()
	}
	if e.Pending() != 0 {
		t.Fatalf("pending after cancel = %d, want 0 (canceled events must leave the heap)", e.Pending())
	}
	if evs[0].Pending() {
		t.Fatal("handle still pending after Cancel")
	}
	evs[0].Cancel() // double cancel is a no-op
	e.Run()
}

func TestZeroEventHandleInert(t *testing.T) {
	var ev Event
	ev.Cancel()
	if ev.Pending() {
		t.Fatal("zero handle reports pending")
	}
}

// TestStaleHandleCannotTouchReusedNode proves the generation fence: once an
// event fires (or is canceled) its node returns to the pool, and a handle
// kept from the old life must not cancel the node's next occupant.
func TestStaleHandleCannotTouchReusedNode(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	stale := e.After(time.Millisecond, func() {})
	e.Run() // fires; node goes back to the pool
	fired := false
	fresh := e.After(time.Millisecond, func() { fired = true })
	stale.Cancel() // must be a no-op: different generation
	if stale.Pending() {
		t.Fatal("stale handle reports pending")
	}
	if !fresh.Pending() {
		t.Fatal("fresh event lost its queue slot to a stale Cancel")
	}
	e.Run()
	if !fired {
		t.Fatal("stale Cancel killed the reused node's event")
	}

	// Same fence for cancel-then-reuse.
	a := e.After(time.Millisecond, func() { t.Fatal("canceled event fired") })
	a.Cancel()
	ok := false
	b := e.After(time.Millisecond, func() { ok = true })
	a.Cancel()
	e.Run()
	if !ok {
		t.Fatal("second Cancel on a recycled handle killed the new event")
	}
	_ = b
}

// TestSeqNeverReusedAcrossPooling checks that pooled nodes get fresh
// sequence numbers: same-instant events scheduled through heavy pool churn
// still fire in exact FIFO order.
func TestSeqNeverReusedAcrossPooling(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	// Churn the pool: fire and recycle a batch of nodes.
	for i := 0; i < 64; i++ {
		e.After(time.Microsecond, func() {})
	}
	e.Run()
	var got []int
	base := e.Now() + time.Millisecond
	for i := 0; i < 64; i++ {
		i := i
		e.At(base, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant FIFO violated after pooling: %v", got)
		}
	}
}

func TestSeqOverflowPanics(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	e.seq = math.MaxUint64 // white-box: next At would wrap seq to 0
	defer func() {
		if recover() == nil {
			t.Fatal("seq wrap did not panic")
		}
	}()
	e.After(time.Millisecond, func() {})
}

func TestSeqOrderingNearOverflow(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	e.seq = math.MaxUint64 - 8 // room for exactly 8 more events
	var got []int
	for i := 0; i < 8; i++ {
		i := i
		e.At(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated near seq ceiling: %v", got)
		}
	}
}

// TestHeapStress drives a randomized schedule/cancel mix and checks the
// engine fires exactly the surviving events in (time, insertion) order.
func TestHeapStress(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		e := NewEngine(1)
		type rec struct {
			id int
			at time.Duration
		}
		var want []rec
		var got []int
		var handles []Event
		id := 0
		for i := 0; i < 400; i++ {
			at := time.Duration(rng.Intn(500)) * time.Microsecond
			myID := id
			id++
			ev := e.At(at, func() { got = append(got, myID) })
			handles = append(handles, ev)
			want = append(want, rec{id: myID, at: at})
			// Randomly cancel ~1/3 of what's still queued.
			if rng.Intn(3) == 0 && len(handles) > 0 {
				k := rng.Intn(len(handles))
				victim := handles[k]
				if victim.Pending() {
					victim.Cancel()
					// Drop it from the expectation.
					for j := range want {
						if want[j].id == k {
							want = append(want[:j], want[j+1:]...)
							break
						}
					}
				}
			}
		}
		// Stable sort by time keeps insertion order for ties — exactly the
		// engine's (at, seq) contract.
		sort.SliceStable(want, func(a, b int) bool { return want[a].at < want[b].at })
		e.Run()
		if len(got) != len(want) {
			t.Fatalf("trial %d: fired %d events, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i].id {
				t.Fatalf("trial %d: fire order diverged at %d: got id %d, want %d", trial, i, got[i], want[i].id)
			}
		}
		e.Stop()
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	e.After(time.Second, func() {})
	e.RunUntil(500 * time.Millisecond)
	if e.Now() != 500*time.Millisecond {
		t.Fatalf("clock = %v, want 500ms", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.RunUntil(2 * time.Second)
	if e.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want 2s", e.Now())
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	e.After(time.Second, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(time.Millisecond, func() {})
}

func TestProcSleep(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	var wake time.Duration
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(42 * time.Millisecond)
		wake = p.Now()
	})
	e.Run()
	if wake != 42*time.Millisecond {
		t.Fatalf("woke at %v, want 42ms", wake)
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	var trace []string
	e.Spawn("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(10 * time.Millisecond)
		trace = append(trace, "a1")
		p.Sleep(20 * time.Millisecond)
		trace = append(trace, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(15 * time.Millisecond)
		trace = append(trace, "b1")
	})
	e.Run()
	want := []string{"a0", "b0", "a1", "b1", "a2"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		e := NewEngine(7)
		defer e.Stop()
		var stamps []time.Duration
		q := NewQueue[int](e, 0)
		for i := 0; i < 3; i++ {
			e.Spawn("producer", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(time.Duration(e.Rand().Intn(1000)) * time.Microsecond)
					q.Put(p, j)
				}
			})
		}
		e.Spawn("consumer", func(p *Proc) {
			for i := 0; i < 15; i++ {
				q.Get(p)
				stamps = append(stamps, p.Now())
			}
		})
		e.Run()
		return stamps
	}
	a, b := run(), run()
	if len(a) != 15 || len(b) != 15 {
		t.Fatalf("runs consumed %d and %d items, want 15", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestStopReleasesBlockedProcs(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 0)
	for i := 0; i < 5; i++ {
		e.Spawn("stuck", func(p *Proc) {
			q.Get(p) // never satisfied
		})
	}
	e.Run()
	if e.Procs() != 5 {
		t.Fatalf("live procs = %d, want 5", e.Procs())
	}
	e.Stop()
	// Goroutines exit asynchronously; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for e.Procs() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.Procs() != 0 {
		t.Fatalf("live procs after Stop = %d, want 0", e.Procs())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	var ticks []time.Duration
	stop := e.Ticker(10*time.Millisecond, func(now time.Duration) {
		ticks = append(ticks, now)
	})
	e.RunUntil(35 * time.Millisecond)
	stop()
	e.RunUntil(100 * time.Millisecond)
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want 3 ticks", ticks)
	}
	for i, tk := range ticks {
		if tk != time.Duration(i+1)*10*time.Millisecond {
			t.Fatalf("tick %d at %v", i, tk)
		}
	}
}

func TestRunFor(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	fired := 0
	e.Ticker(10*time.Millisecond, func(time.Duration) { fired++ })
	e.RunFor(35 * time.Millisecond)
	if fired != 3 || e.Now() != 35*time.Millisecond {
		t.Fatalf("fired=%d now=%v", fired, e.Now())
	}
	e.RunFor(10 * time.Millisecond)
	if fired != 4 {
		t.Fatalf("second RunFor fired %d total", fired)
	}
}

func TestImmediateOrdersAfterCurrentInstant(t *testing.T) {
	e := NewEngine(1)
	defer e.Stop()
	var got []int
	e.At(time.Millisecond, func() {
		e.Immediate(func() { got = append(got, 2) })
		got = append(got, 1)
	})
	e.At(time.Millisecond, func() { got = append(got, 3) })
	e.Run()
	// The Immediate lands after events already queued for this instant.
	want := []int{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}
