package sim

import (
	"testing"
	"time"
)

// benchJitter is a tiny deterministic xorshift generator used to spread
// event timestamps so the heap benchmarks exercise real sift paths instead
// of degenerate FIFO order. It allocates nothing.
type benchJitter uint64

func (j *benchJitter) next() time.Duration {
	x := uint64(*j)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*j = benchJitter(x)
	return time.Duration(x%4096) * time.Nanosecond
}

// BenchmarkEngineSchedule measures steady-state schedule+fire throughput
// with a populated heap: 512 self-rescheduling timers with jittered
// deadlines, so every op is one heap push plus one pop at depth ~log4(512).
// ns/op is the inverse of events/sec; allocs/op is the headline zero-alloc
// claim (the event pool must absorb all steady-state traffic).
func BenchmarkEngineSchedule(b *testing.B) {
	b.ReportAllocs()
	eng := NewEngine(1)
	defer eng.Stop()
	const outstanding = 512
	jit := benchJitter(0x9e3779b97f4a7c15)
	fired, target := 0, 0
	var tick func()
	tick = func() {
		fired++
		if fired < target {
			eng.After(jit.next(), tick)
		}
	}
	run := func(n int) {
		fired, target = 0, n
		for i := 0; i < outstanding; i++ {
			eng.After(jit.next(), tick)
		}
		eng.Run()
	}
	run(outstanding * 4) // warm the heap and the event pool
	b.ResetTimer()
	run(b.N)
}

// BenchmarkEngineScheduleCancel measures the schedule-then-cancel cycle that
// dominates timeout-guarded workloads (every RDMA send posts a retransmit
// timer and cancels it on the ack). A heap that only marks canceled events
// retains them all here; immediate removal keeps it empty.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	b.ReportAllocs()
	eng := NewEngine(1)
	defer eng.Stop()
	jit := benchJitter(0x2545f4914f6cdd1d)
	for i := 0; i < 1024; i++ { // warm the event pool
		eng.After(jit.next(), func() {}).Cancel()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(time.Millisecond+jit.next(), nop).Cancel()
	}
	b.StopTimer()
	eng.Run()
}

func nop() {}

// BenchmarkEngineImmediate measures the same-instant wakeup path (the
// process-to-process handoff primitive).
func BenchmarkEngineImmediate(b *testing.B) {
	b.ReportAllocs()
	eng := NewEngine(1)
	defer eng.Stop()
	n := 0
	var again func()
	again = func() {
		n++
		if n < b.N {
			eng.Immediate(again)
		}
	}
	eng.Immediate(again)
	b.ResetTimer()
	eng.Run()
}

// BenchmarkProcSleep measures the coroutine yield/resume round trip through
// the event queue (spawn/yield cost in the issue's terms).
func BenchmarkProcSleep(b *testing.B) {
	b.ReportAllocs()
	eng := NewEngine(1)
	defer eng.Stop()
	eng.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	eng.Run()
}

// BenchmarkProcSpawn measures process creation + teardown.
func BenchmarkProcSpawn(b *testing.B) {
	b.ReportAllocs()
	eng := NewEngine(1)
	defer eng.Stop()
	for i := 0; i < b.N; i++ {
		eng.Spawn("p", func(p *Proc) {})
		eng.Run()
	}
}
