package sim

import (
	"math/bits"
	"time"
)

// Hierarchical timing wheel for the dense near-future timer band.
//
// The wheel holds events whose deadline is within ~17 s of the drain
// boundary; everything nearer than one tick (due now) or farther than the
// top level's horizon stays in the indexed 4-ary heap, which doubles as the
// exact-order firing stage. Layout:
//
//	level 0:  64 slots x 1.024 us  (one tick per slot, horizon  65.5 us)
//	level 1:  64 slots x 65.5 us   (64 ticks per slot, horizon  4.19 ms)
//	level 2:  64 slots x 4.19 ms   (4096 ticks/slot,   horizon   268 ms)
//	level 3:  64 slots x 268 ms    (256K ticks/slot,   horizon  17.2 s)
//
// Each slot is an intrusive doubly-linked list of pooled event nodes
// (insertion order; no map anywhere, so draining is deterministic), with a
// one-word occupancy bitmap per level. Insert and cancel are O(1). The
// engine never scans empty slots: the bitmaps give the next occupied slot
// in a handful of ALU ops, so a drain jumps straight from occupied slot to
// occupied slot regardless of how sparse virtual time is.
//
// Exactness: slots only *bucket* events. Before anything fires, the engine
// drains every slot whose start could precede the heap top into the heap,
// so events always fire in global (time, sequence) order — the wheel is an
// index in front of the heap, never a source of rounding. The equivalence
// oracle in equivalence.go (and simtest invariant #11) pins this property
// against a pure-heap reference.
const (
	wheelShift  = 10             // slot width 2^10 ns = 1.024us per level-0 tick
	wheelBits   = 6              // 64 slots per level
	wheelSlots  = 1 << wheelBits // 64
	wheelMask   = wheelSlots - 1 // 63
	wheelLevels = 4              // horizon 64^4 ticks ~= 17.2s
	// wheelSpan is the wheel's total reach in ticks; deadlines at or past
	// wheelTick+wheelSpan overflow to the heap until they drift into range.
	wheelSpan = 1 << (wheelBits * wheelLevels)
)

// wheel is the engine's near-future timer index.
type wheel struct {
	// slots holds the bucket heads, level-major: slots[lvl*64+idx].
	slots [wheelLevels * wheelSlots]*event
	// occupied has one bit per slot per level.
	occupied [wheelLevels]uint64
	// tick is the drain boundary: every event still in the wheel has
	// deadline tick >= tick. It only moves forward, and never past an
	// occupied slot without draining it.
	tick int64
	// count is the number of events currently bucketed.
	count int
}

// wheelTickOf converts a deadline to its wheel tick.
func wheelTickOf(t time.Duration) int64 { return int64(t) >> wheelShift }

// levelFor returns the wheel level for an event tick tk relative to the
// drain boundary cur, or -1 if tk is out of the wheel's reach (at/behind
// the boundary, or past the top level's current revolution).
//
// The level is chosen by the highest bit where tk and cur differ — not by
// the raw delta. A delta-based rule can pick a level whose slot index wraps
// a full revolution (event lands in the cursor's own slot, one revolution
// ahead); the XOR rule guarantees the slot is within the current revolution
// of its level, so nextSlot's start math is exact and a cascade always
// moves events to a strictly lower level. The cost is that deadlines whose
// tick differs from cur above bit 23 overflow to the heap even when the
// raw delta is below 64^4; they are re-bucketed as the boundary advances.
func levelFor(cur, tk int64) int {
	if tk <= cur {
		return -1
	}
	masked := uint64(cur ^ tk)
	if masked >= wheelSpan {
		return -1
	}
	return (63 - bits.LeadingZeros64(masked)) / wheelBits
}

// insert buckets ev (with at/seq already stamped). The caller has checked
// that ev's tick is strictly after w.tick and within the horizon.
func (w *wheel) insert(ev *event, lvl int) {
	tk := wheelTickOf(ev.at)
	idx := int(tk>>(uint(lvl)*wheelBits)) & wheelMask
	ev.lvl, ev.slot = int16(lvl), int16(idx)
	head := &w.slots[lvl*wheelSlots+idx]
	// Push-front: O(1), and order within a slot is irrelevant — the heap
	// re-establishes (at, seq) order at drain time.
	ev.prev = nil
	ev.next = *head
	if *head != nil {
		(*head).prev = ev
	}
	*head = ev
	w.occupied[lvl] |= 1 << uint(idx)
	ev.index = wheelIdx
	w.count++
}

// remove unlinks ev from its bucket (Cancel's O(1) path).
func (w *wheel) remove(ev *event) {
	head := &w.slots[int(ev.lvl)*wheelSlots+int(ev.slot)]
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		*head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	}
	if *head == nil {
		w.occupied[ev.lvl] &^= 1 << uint(ev.slot)
	}
	ev.next, ev.prev = nil, nil
	ev.index = idleIdx
	w.count--
}

// nextSlot finds the occupied slot with the earliest start across all
// levels. It returns the level, slot index and the slot's absolute start
// tick. Only call with count > 0.
func (w *wheel) nextSlot() (lvl, idx int, startTick int64) {
	best := int64(1<<62 - 1)
	for l := 0; l < wheelLevels; l++ {
		occ := w.occupied[l]
		if occ == 0 {
			continue
		}
		shift := uint(l) * wheelBits
		cursor := int(w.tick>>shift) & wheelMask
		// Rotate the cursor's bit down to position 0 so the trailing-zero
		// count is the circular distance to the next occupied slot.
		off := bits.TrailingZeros64(bits.RotateLeft64(occ, -cursor))
		s := (cursor + off) & wheelMask
		// Absolute start: the next occurrence of slot s at or after the
		// cursor, in level-l slot units.
		base := w.tick >> shift
		rot := base - int64(cursor) + int64(s)
		if s < cursor {
			rot += wheelSlots
		}
		start := rot << shift
		// Prefer lower levels on ties: draining a level-0 slot advances the
		// boundary past it, and a tied higher-level slot still maps to the
		// same rotation afterwards.
		if start < best {
			best, lvl, idx = start, l, s
		}
	}
	return lvl, idx, best
}

// nextAt returns a lower bound on the earliest event still in the wheel:
// the start time of the earliest occupied slot. Only call with count > 0.
func (w *wheel) nextAt() time.Duration {
	_, _, start := w.nextSlot()
	return time.Duration(start << wheelShift)
}

// drainEarliest empties the earliest occupied slot: level-0 buckets feed
// the heap (the exact-order stage), higher levels cascade their events back
// through insert at the finer resolution now available. Each call advances
// the drain boundary and removes one slot, so the engine's drain loop
// always terminates.
func (e *Engine) drainEarliest() {
	w := &e.wheel
	lvl, idx, startTick := w.nextSlot()
	head := &w.slots[lvl*wheelSlots+idx]
	ev := *head
	*head = nil
	w.occupied[lvl] &^= 1 << uint(idx)
	if lvl == 0 {
		// Every tick up to and including this slot is clear now.
		if startTick+1 > w.tick {
			w.tick = startTick + 1
		}
		for ev != nil {
			next := ev.next
			ev.next, ev.prev = nil, nil
			w.count--
			e.heapPush(heapEntry{at: ev.at, seq: ev.seq, ev: ev})
			ev = next
		}
		return
	}
	// Cascade: anchor the boundary at the slot's start so the events'
	// shrunken deltas land in the finer levels (or the heap, if due).
	if startTick > w.tick {
		w.tick = startTick
	}
	for ev != nil {
		next := ev.next
		ev.next, ev.prev = nil, nil
		w.count--
		if l := levelFor(w.tick, wheelTickOf(ev.at)); l >= 0 {
			w.insert(ev, l)
		} else {
			e.heapPush(heapEntry{at: ev.at, seq: ev.seq, ev: ev})
		}
		ev = next
	}
}
