package simtest

import (
	"errors"
	"fmt"
	"time"

	"nadino/internal/chaos"
	"nadino/internal/dne"
	"nadino/internal/dpu"
	"nadino/internal/fabric"
	"nadino/internal/flightrec"
	"nadino/internal/gateway"
	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/rdma"
	"nadino/internal/sim"
	"nadino/internal/speculate"
	"nadino/internal/telemetry"
	"nadino/internal/trace"
	"nadino/internal/workload"
)

// nodeNames map scenario node indices onto the repository's conventional
// fabric IDs.
var nodeNames = []fabric.NodeID{"nodeA", "nodeB", "nodeC"}

// nodeRig is one worker node: a DPU (cores, SoC DMA, RNIC) plus its DNE and
// (when the scenario enables the tier) its gateway.
type nodeRig struct {
	name   fabric.NodeID
	dpu    *dpu.DPU
	eng    *dne.Engine
	gw     *gateway.Gateway
	rqInit int // receive-ring target the keeper pre-posts per tenant
}

// gwRelay is a landing pool created for a gateway on a node where the
// tenant is not resident, so transit legs can land there during failover
// detours. The route-consistency invariant checks its quiesce accounting.
type gwRelay struct {
	node fabric.NodeID
	gw   *gateway.Gateway
	pool *mempool.Pool
}

// waiter is one in-flight arm's ledger entry: the queue its winner delivery
// unblocks (nil for open-loop arms nobody waits on) plus, for speculated
// arms, the group and arm index the demux resolves at the boundary.
type waiter struct {
	q   *sim.Queue[mempool.Descriptor]
	g   *speculate.Group
	arm int
}

// hedgeFire relays a hedge arm from its timer context to the tenant's pump
// proc, which owns the proc context FnPort.Send needs.
type hedgeFire struct {
	g   *speculate.Group
	arm int
	q   *sim.Queue[mempool.Descriptor]
}

// tenantRig is one tenant's runtime state: pools on its two nodes, function
// ports, and the request-conservation ledger.
type tenantRig struct {
	sc               TenantScenario
	cliPool, srvPool *mempool.Pool
	cliPort, srvPort *dne.FnPort
	cliCore          *sim.Processor
	relays           []gwRelay

	// Speculation state (Scenario.CloneN/HedgeAfter): the per-tenant
	// controller, the hedge relay queue, and the arm-resolution counters
	// the speculation-safety invariant closes its ledger with.
	spec         *speculate.Spec
	hedgeQ       *sim.Queue[hedgeFire]
	specWinsSeen uint64 // winner deliveries observed at the boundary
	specLosers   uint64 // loser completions suppressed at the boundary
	specKills    uint64 // arms killed mid-plane via the cancellation probe
	specUnfired  uint64 // hedge arms counted by the controller but shed by the pump
	specNoArm    uint64 // launches where every arm shed (pool exhausted)

	// Ledger: issued counts arms handed to the engine, completed counts
	// arms that terminated (winner deliveries, suppressed losers, and
	// mid-plane kills), shed counts sends skipped on pool exhaustion.
	// waiters holds the in-flight arms by sequence number.
	issued, completed, shed uint64
	waiters                 map[uint64]waiter
	seq                     uint64

	// windowCompleted is the completion count inside the measured load
	// window (captured for the fairness invariant).
	windowBase, windowCompleted uint64

	// compCounter feeds the telemetry-consistency invariant.
	compCounter *telemetry.Counter
}

// inFlight reports requests issued but not yet completed.
func (tr *tenantRig) inFlight() int { return len(tr.waiters) }

// coreRef names a processor for the busy-time invariant.
type coreRef struct {
	label string
	proc  *sim.Processor
}

// Rig is one built scenario world. It owns every component the invariant
// registry inspects.
type Rig struct {
	sc  Scenario
	eng *sim.Engine
	p   *params.Params
	net *fabric.Network

	nodes   []*nodeRig
	tenants []*tenantRig
	inj     *chaos.Injector
	ready   *sim.Queue[struct{}]

	tracer  *trace.Tracer
	reg     *telemetry.Registry
	scraper *telemetry.Scraper

	// Flight recorder: always on, ring-buffered, kept out of Report so
	// fingerprints stay stable; dumped into Result.FlightDump on failure.
	rec      *flightrec.Recorder
	invActor uint16

	cores []coreRef

	warm, loadEnd, endAt time.Duration

	// Ownership-auditor results (Transfers > 0).
	auditOps  int
	auditErrs []string

	// Planted-defect bookkeeping.
	leaked int

	// Invariant checker state.
	lastNow    time.Duration
	lastBusy   []time.Duration
	violations []Violation
	tripped    map[string]bool
}

// scrapePeriod samples telemetry often enough for ~100 points per run.
const scrapePeriod = 2 * time.Millisecond

// gwWindow is the landing-slot window per (gateway, tenant). Small enough
// that tenant pools (>= 128 spare buffers by construction) never starve the
// data plane, big enough to exercise the credit protocol under load.
const gwWindow = 8

// NewRig builds the scenario's world on a fresh engine. Nothing runs until
// Run (or a caller-driven RunUntil) advances the clock.
func NewRig(sc Scenario) *Rig {
	p := params.Default()
	if sc.ExtraPerMsg > 0 {
		p.DNEExtraPerMsg = sc.ExtraPerMsg
	}
	eng := sim.NewEngine(sc.Seed)
	r := &Rig{
		sc:      sc,
		eng:     eng,
		p:       p,
		net:     fabric.New(eng, p),
		ready:   sim.NewQueue[struct{}](eng, 0),
		tracer:  trace.New(eng.Now),
		reg:     telemetry.NewRegistry(),
		tripped: make(map[string]bool),
	}
	r.tracer.SetLimit(0)
	r.rec = flightrec.New(4096, eng.Now)
	r.invActor = r.rec.Actor("invariant")
	r.warm = p.QPSetupTime + 2*time.Millisecond
	r.loadEnd = r.warm + sc.Load
	r.endAt = r.loadEnd + sc.Drain

	// Nodes: the engine's receive ring is the smallest ring any resident
	// tenant asked for, so no tenant pool is undersized for its ring.
	for i := 0; i < sc.Nodes; i++ {
		rqInit := 0
		for _, ts := range sc.Tenants {
			if ts.CliNode == i || ts.SrvNode == i {
				if rqInit == 0 || ts.InitialRQ < rqInit {
					rqInit = ts.InitialRQ
				}
			}
		}
		if rqInit == 0 {
			rqInit = 64 // node hosts no tenant; keep the engine well-formed
		}
		name := nodeNames[i]
		d := dpu.New(eng, p, name, r.net, 2)
		cfg := dne.Config{Node: name, Mode: sc.Mode, Sched: sc.Sched,
			Channel: dpu.ComchE, InitialRQ: rqInit}
		nr := &nodeRig{name: name, dpu: d, eng: dne.New(eng, p, cfg, d, nil, nil), rqInit: rqInit}
		nr.eng.SetFlightRecorder(r.rec)
		if sc.Gateways {
			nr.gw = gateway.New(eng, p, name, r.net, d.RNIC(), gwWindow)
			nr.gw.SetEgress(nr.eng)
			nr.eng.SetForwarder(nr.gw, nr.gw.Owner())
			nr.gw.SetFlightRecorder(r.rec)
		}
		r.nodes = append(r.nodes, nr)
		r.cores = append(r.cores,
			coreRef{string(name) + "/dne-worker", nr.eng.WorkerCore()},
			coreRef{string(name) + "/dne-keeper", nr.eng.KeeperCore()})
		if nr.gw != nil {
			r.cores = append(r.cores, coreRef{string(name) + "/gw", nr.gw.Core()})
		}
		for ci, c := range d.Cores() {
			r.cores = append(r.cores, coreRef{fmt.Sprintf("%s/dpu-core%d", name, ci), c})
		}
	}

	// Tenants: pool + SRQ on both resident nodes, routes, function ports.
	for _, ts := range sc.Tenants {
		ts := ts
		cli, srv := r.nodes[ts.CliNode], r.nodes[ts.SrvNode]
		tr := &tenantRig{
			sc:      ts,
			cliPool: mempool.NewPool(ts.Name, ts.BufSize, ts.PoolBufs, p.HugepageSize),
			srvPool: mempool.NewPool(ts.Name, ts.BufSize, ts.PoolBufs, p.HugepageSize),
			waiters: make(map[uint64]waiter),
		}
		if sc.Speculative() {
			tr.spec = speculate.New(eng, speculate.Policy{
				CloneN:   sc.CloneN,
				Hedge:    sc.HedgeAfter > 0,
				HedgeMin: sc.HedgeAfter,
			})
			tr.hedgeQ = sim.NewQueue[hedgeFire](eng, 0)
		}
		cli.eng.AddTenant(ts.Name, tr.cliPool, ts.Weight)
		srv.eng.AddTenant(ts.Name, tr.srvPool, ts.Weight)
		cli.eng.SetRoute("srv-"+ts.Name, srv.name)
		srv.eng.SetRoute("cli-"+ts.Name, cli.name)
		if sc.Gateways {
			// Every gateway hosts the tenant's landing window (non-resident
			// nodes get a dedicated relay pool, so failover detours can land
			// transit legs) and learns both placements: relays resolve the
			// final owner from their own table.
			for i, nr := range r.nodes {
				var pool *mempool.Pool
				switch i {
				case ts.CliNode:
					pool = tr.cliPool
				case ts.SrvNode:
					pool = tr.srvPool
				default:
					pool = mempool.NewPool(ts.Name, ts.BufSize, gwWindow+8, p.HugepageSize)
					tr.relays = append(tr.relays, gwRelay{node: nr.name, gw: nr.gw, pool: pool})
				}
				nr.gw.AddTenant(ts.Name, pool)
				nr.gw.Routes().Set("srv-"+ts.Name, srv.name)
				nr.gw.Routes().Set("cli-"+ts.Name, cli.name)
			}
		}
		tr.cliPort = cli.eng.AttachFunction("cli-"+ts.Name, ts.Name)
		tr.srvPort = srv.eng.AttachFunction("srv-"+ts.Name, ts.Name)
		tr.compCounter = r.reg.Counter("fuzz.completed", "tenant", ts.Name)
		r.reg.Gauge("fuzz.pool_in_use",
			func() float64 { return float64(tr.cliPool.InUse()) },
			"tenant", ts.Name, "node", string(cli.name))
		r.tenants = append(r.tenants, tr)
	}
	for _, nr := range r.nodes {
		nr := nr
		r.reg.Rate("fuzz.worker_busy",
			func() float64 { return nr.eng.WorkerCore().BusyTime().Seconds() },
			"node", string(nr.name))
	}

	// Connection pools are established concurrently per tenant (one pooled
	// QPSetupTime handshake each); engines start once every pool is in.
	eng.Spawn("simtest-setup", func(pr *sim.Proc) {
		done := sim.NewQueue[struct{}](eng, 0)
		for _, tr := range r.tenants {
			tr := tr
			eng.Spawn("simtest-setup-"+tr.sc.Name, func(spr *sim.Proc) {
				cli, srv := r.nodes[tr.sc.CliNode], r.nodes[tr.sc.SrvNode]
				cpC, cpS := rdma.EstablishPair(spr, p, tr.sc.Name,
					cli.dpu.RNIC(), srv.dpu.RNIC(), sc.QPs,
					cli.eng.SRQ(tr.sc.Name), srv.eng.SRQ(tr.sc.Name),
					cli.eng.CQ(), srv.eng.CQ())
				cli.eng.AddConnPool(srv.name, tr.sc.Name, cpC)
				srv.eng.AddConnPool(cli.name, tr.sc.Name, cpS)
				cpC.SetFlightRecorder(r.rec, "qp:"+tr.sc.Name+"@"+string(cli.name))
				cpS.SetFlightRecorder(r.rec, "qp:"+tr.sc.Name+"@"+string(srv.name))
				done.TryPut(struct{}{})
			})
		}
		gwPairs := 0
		if sc.Gateways {
			for i := range r.nodes {
				for j := i + 1; j < len(r.nodes); j++ {
					a, b := r.nodes[i], r.nodes[j]
					gwPairs++
					eng.Spawn("simtest-setup-gw", func(spr *sim.Proc) {
						gateway.Connect(spr, a.gw, b.gw, 2)
						done.TryPut(struct{}{})
					})
				}
			}
		}
		for i := 0; i < len(r.tenants)+gwPairs; i++ {
			done.Get(pr)
		}
		for _, nr := range r.nodes {
			nr.eng.Start()
			if nr.gw != nil {
				nr.gw.Start()
				for _, cp := range nr.gw.Links() {
					cp.SetFlightRecorder(r.rec, "gw-qp:"+cp.Tenant+"@"+string(nr.name))
				}
			}
		}
		r.ready.TryPut(struct{}{})
	})

	r.inj = r.buildInjector()
	r.installFaults()
	r.spawnWorkloads()
	if sc.Transfers > 0 {
		r.spawnAuditor()
	}
	r.scraper = r.reg.Scrape(eng, scrapePeriod)

	// Fairness window bounds.
	eng.At(r.warm, func() {
		for _, tr := range r.tenants {
			tr.windowBase = tr.completed
		}
	})
	eng.At(r.loadEnd, func() {
		for _, tr := range r.tenants {
			tr.windowCompleted = tr.completed - tr.windowBase
		}
	})
	return r
}

// buildInjector registers the standard chaos targets: per node the SoC DMA
// ("dma@<node>"), the DPU cores ("cores@<node>"), the node's own conn pools
// ("qp@<node>") and the crash set ("crash@<node>": the node's pools plus
// every peer pool pointing at it — a rebooted node loses all QP state on
// both ends).
func (r *Rig) buildInjector() *chaos.Injector {
	in := chaos.NewInjector(r.eng, r.net, r.sc.Seed)
	in.SetFlightRecorder(r.rec)
	for _, nr := range r.nodes {
		nr := nr
		in.RegisterStaller("dma@"+string(nr.name), nr.dpu.SoCDMA())
		in.RegisterCores("cores@"+string(nr.name), nr.dpu.Cores()...)
		in.RegisterQPs("qp@"+string(nr.name), func() []chaos.QPErrorTarget {
			var ts []chaos.QPErrorTarget
			for _, cp := range nr.eng.ConnPools() {
				ts = append(ts, cp)
			}
			if nr.gw != nil {
				for _, cp := range nr.gw.Links() {
					ts = append(ts, cp)
				}
			}
			return ts
		})
		in.RegisterQPs("crash@"+string(nr.name), func() []chaos.QPErrorTarget {
			var ts []chaos.QPErrorTarget
			for _, cp := range nr.eng.ConnPools() {
				ts = append(ts, cp)
			}
			if nr.gw != nil {
				for _, cp := range nr.gw.Links() {
					ts = append(ts, cp)
				}
			}
			for _, other := range r.nodes {
				if other == nr {
					continue
				}
				for _, tr := range r.tenants {
					if cp := other.eng.ConnPool(nr.name, tr.sc.Name); cp != nil {
						ts = append(ts, cp)
					}
				}
				if other.gw != nil {
					if cp := other.gw.Link(nr.name); cp != nil {
						ts = append(ts, cp)
					}
				}
			}
			return ts
		})
		if nr.gw != nil {
			in.RegisterCores("gw-cores@"+string(nr.name), nr.gw.Core())
		}
	}
	return in
}

// installFaults maps the scenario's FaultSpecs onto chaos events. Spec
// times are relative to the start of the load window.
func (r *Rig) installFaults() {
	var sched chaos.Schedule
	nodeIDs := make([]fabric.NodeID, r.sc.Nodes)
	for i := range nodeIDs {
		nodeIDs[i] = nodeNames[i]
	}
	for _, f := range r.sc.Faults {
		at := r.warm + f.At
		node := nodeNames[f.Node%r.sc.Nodes]
		switch f.Kind {
		case FaultLinkStorm:
			// Outages are capped well inside the transport-retry horizon
			// so a storm degrades but never strands traffic.
			sched = append(sched, r.inj.LinkStorm(nodeIDs, at, f.For, f.Count, 2*time.Millisecond)...)
		case FaultQPError:
			sched = append(sched, chaos.Event{At: at,
				Fault: chaos.QPError{Target: "qp@" + string(node), Count: f.Count}})
		case FaultNodeCrash:
			sched = append(sched, chaos.Event{At: at, For: f.For,
				Fault: chaos.NodeCrash{Node: node, QPs: "crash@" + string(node)}})
		case FaultDMAStall:
			sched = append(sched, chaos.Event{At: at, For: f.For,
				Fault: chaos.DMAStall{Target: "dma@" + string(node)}})
		case FaultSlowCores:
			sched = append(sched, chaos.Event{At: at, For: f.For,
				Fault: chaos.SlowCores{Target: "cores@" + string(node), Factor: f.Factor}})
		case FaultPartition:
			var rest []fabric.NodeID
			for _, id := range nodeIDs {
				if id != node {
					rest = append(rest, id)
				}
			}
			sched = append(sched, chaos.Event{At: at, For: f.For,
				Fault: chaos.Partition{A: []fabric.NodeID{node}, B: rest}})
		default:
			panic(fmt.Sprintf("simtest: unknown fault kind %q", f.Kind))
		}
	}
	r.inj.Install(sched)
}

// waitReady parks pr until QP establishment completes.
func (r *Rig) waitReady(pr *sim.Proc) {
	r.ready.Get(pr)
	r.ready.TryPut(struct{}{})
}

// takeLeak consumes the planted leak-buffer defect: the first caller that
// would recycle a completed response keeps it instead.
func (r *Rig) takeLeak() bool {
	if r.sc.Defect == DefectLeakBuffer && r.leaked == 0 {
		r.leaked++
		return true
	}
	return false
}

// serveCore builds a serve-side processor honoring the scenario's serving
// discipline (PSServe runs the tenant cores processor-sharing).
func (r *Rig) serveCore(name string) *sim.Processor {
	disc := sim.FCFS
	if r.sc.PSServe {
		disc = sim.PS
	}
	return sim.NewProcessorDisc(r.eng, name, r.p.HostCoreSpeed, disc)
}

// spawnWorkloads starts the echo server and the tenant's driver (closed
// loop, open loop or Poisson trace).
func (r *Rig) spawnWorkloads() {
	for _, tr := range r.tenants {
		r.spawnServer(tr)
		r.spawnDemux(tr)
		if tr.spec != nil {
			r.spawnHedgePump(tr)
		}
		switch tr.sc.Load {
		case LoadClosed:
			r.spawnClosedClients(tr)
		case LoadOpen:
			r.spawnOpenLoop(tr)
		case LoadPoisson:
			r.spawnPoisson(tr)
		default:
			panic(fmt.Sprintf("simtest: unknown load kind %q", tr.sc.Load))
		}
	}
}

// spawnServer answers every request with a same-size reply, backpressuring
// on pool exhaustion exactly like the benchmark rigs.
func (r *Rig) spawnServer(tr *tenantRig) {
	core := r.serveCore("srv-core-" + tr.sc.Name)
	r.cores = append(r.cores, coreRef{"srv-core-" + tr.sc.Name, core})
	srv := mempool.Owner("srv-" + tr.sc.Name)
	r.eng.Spawn("srv-"+tr.sc.Name, func(pr *sim.Proc) {
		for {
			d := tr.srvPort.Recv(pr, core)
			if d.Spec != nil && d.Spec() {
				// Losing clone killed at the serve boundary: recycle the
				// landed request buffer, never burn serve time on it.
				if err := tr.srvPool.Put(d.Buf, srv); err != nil {
					panic(err)
				}
				continue
			}
			reply, err := tr.srvPool.Get(srv)
			for err != nil {
				pr.Sleep(20 * time.Microsecond)
				reply, err = tr.srvPool.Get(srv)
			}
			if err := tr.srvPool.Put(d.Buf, srv); err != nil {
				panic(err)
			}
			out := mempool.Descriptor{
				Tenant: tr.sc.Name, Buf: reply, Len: d.Len,
				Src: "srv-" + tr.sc.Name, Dst: d.Src, Seq: d.Seq, Stamp: d.Stamp,
				Trace: d.Trace,
				// The probe rides the response leg too, so a loser's reply
				// dies at the serve-side TX gate instead of crossing back.
				Spec: d.Spec,
			}
			if err := tr.srvPort.Send(pr, core, out); err != nil {
				panic(err)
			}
		}
	})
}

// spawnDemux routes responses back to waiters. Open-loop requests (nil
// waiter queue) are counted complete and recycled here; deliveries with no
// ledger entry are at-least-once duplicates and recycled. Speculated arms
// resolve here at the boundary: the first completion wins its group, every
// later one is a suppressed loser whose buffer is recycled in place.
func (r *Rig) spawnDemux(tr *tenantRig) {
	core := r.serveCore("cli-core-" + tr.sc.Name)
	r.cores = append(r.cores, coreRef{"cli-core-" + tr.sc.Name, core})
	tr.cliCore = core
	cli := mempool.Owner("cli-" + tr.sc.Name)
	r.eng.Spawn("cli-demux-"+tr.sc.Name, func(pr *sim.Proc) {
		for {
			d := tr.cliPort.Recv(pr, core)
			w, ok := tr.waiters[d.Seq]
			if !ok {
				// Duplicate delivery from the retry path: recycle or leak.
				if err := tr.cliPool.Put(d.Buf, cli); err != nil {
					panic(err)
				}
				continue
			}
			delete(tr.waiters, d.Seq)
			if w.g != nil {
				if !w.g.Finish(w.arm) {
					// Loser reached the boundary: suppress, close its arm's
					// ledger entry, recycle its buffer.
					tr.specLosers++
					tr.completed++
					tr.compCounter.Add(1)
					d.Trace.Finish()
					if err := tr.cliPool.Put(d.Buf, cli); err != nil {
						panic(err)
					}
					continue
				}
				tr.specWinsSeen++
			}
			if w.q == nil {
				// Open-loop completion.
				tr.completed++
				tr.compCounter.Add(1)
				d.Trace.Finish()
				if !r.takeLeak() {
					if err := tr.cliPool.Put(d.Buf, cli); err != nil {
						panic(err)
					}
				}
				continue
			}
			w.q.TryPut(d)
		}
	})
}

// fireArm issues one arm of a request for tr (proc context); g is nil for
// unspeculated requests. Returns false when the tenant pool is exhausted
// (the caller sheds or retries).
func (r *Rig) fireArm(tr *tenantRig, pr *sim.Proc, q *sim.Queue[mempool.Descriptor], g *speculate.Group, arm int) bool {
	cli := mempool.Owner("cli-" + tr.sc.Name)
	buf, err := tr.cliPool.Get(cli)
	if err != nil {
		if errors.Is(err, mempool.ErrExhausted) {
			tr.shed++
			return false
		}
		panic(err)
	}
	tr.seq++
	id := tr.seq
	tr.waiters[id] = waiter{q: q, g: g, arm: arm}
	tr.issued++
	req := r.tracer.StartRequest("echo/" + tr.sc.Name)
	d := mempool.Descriptor{
		Tenant: tr.sc.Name, Buf: buf, Len: tr.sc.Payload,
		Src: "cli-" + tr.sc.Name, Dst: "srv-" + tr.sc.Name, Seq: id, Stamp: pr.Now(),
		Trace: req,
	}
	if g != nil {
		d.Spec = r.armProbe(tr, g, id, req)
	}
	if err := tr.cliPort.Send(pr, tr.cliCore, d); err != nil {
		panic(err)
	}
	return true
}

// armProbe wraps the group's cancellation probe (mempool.Descriptor.Spec)
// with the rig's ledger: the first true verdict closes the arm's in-flight
// entry — the carrier at the kill site (DNE TX gate, serve boundary)
// returns the buffer itself; retry duplicates of an already-dead arm get
// the kill verdict without double-accounting, and the mempool's generation
// fence makes their buffer release a no-op.
func (r *Rig) armProbe(tr *tenantRig, g *speculate.Group, id uint64, req *trace.Req) func() bool {
	dead := false
	return func() bool {
		if !g.Won() {
			return false
		}
		if !dead {
			dead = true
			g.Killed()
			delete(tr.waiters, id)
			tr.completed++
			tr.compCounter.Add(1)
			tr.specKills++
			req.Finish()
		}
		return true
	}
}

// launchReq fires one speculated request through the tenant's controller:
// launch-time arms fire synchronously in the caller's proc context, the
// hedge arm (firing later, in timer context) relays through the tenant's
// hedge pump.
func (r *Rig) launchReq(tr *tenantRig, pr *sim.Proc, q *sim.Queue[mempool.Descriptor]) *speculate.Group {
	sync := true
	g := tr.spec.Launch(tr.sc.Name, 0, 0, func(g *speculate.Group, arm int) bool {
		if sync {
			return r.fireArm(tr, pr, q, g, arm)
		}
		// Counted optimistically; the pump sheds on pool exhaustion and
		// accounts the unfired arm (specUnfired) for the safety invariant.
		tr.hedgeQ.TryPut(hedgeFire{g: g, arm: arm, q: q})
		return true
	})
	sync = false
	return g
}

// spawnHedgePump drains the tenant's hedge relay: each entry is a hedge arm
// fired from its timer context, sent here from a proc that can pay the
// port-send cost.
func (r *Rig) spawnHedgePump(tr *tenantRig) {
	r.eng.Spawn("hedge-pump-"+tr.sc.Name, func(pr *sim.Proc) {
		for {
			hf := tr.hedgeQ.Get(pr)
			if !r.fireArm(tr, pr, hf.q, hf.g, hf.arm) {
				tr.specUnfired++
			}
		}
	})
}

// issueReq fires one logical request: unspeculated tenants send a single
// arm, speculative tenants launch a clone group. Returns false when nothing
// went out (pool exhausted on every arm).
func (r *Rig) issueReq(tr *tenantRig, pr *sim.Proc, q *sim.Queue[mempool.Descriptor]) bool {
	if tr.spec == nil {
		return r.fireArm(tr, pr, q, nil, 0)
	}
	g := r.launchReq(tr, pr, q)
	if g.Arms() == 0 {
		tr.specNoArm++
		return false
	}
	return true
}

// spawnClosedClients runs the tenant's closed-loop echo clients.
func (r *Rig) spawnClosedClients(tr *tenantRig) {
	cli := mempool.Owner("cli-" + tr.sc.Name)
	for i := 0; i < tr.sc.Clients; i++ {
		r.eng.Spawn(fmt.Sprintf("cli-%s-%d", tr.sc.Name, i), func(pr *sim.Proc) {
			r.waitReady(pr)
			respQ := sim.NewQueue[mempool.Descriptor](r.eng, 0)
			for pr.Now() < r.loadEnd {
				// Think-time jitter decorrelates the lockstep clients.
				pr.Sleep(time.Duration(r.eng.Rand().Intn(3000)) * time.Nanosecond)
				if !r.issueReq(tr, pr, respQ) {
					pr.Sleep(50 * time.Microsecond)
					continue
				}
				resp := respQ.Get(pr)
				resp.Trace.Finish()
				tr.completed++
				tr.compCounter.Add(1)
				if r.takeLeak() {
					continue
				}
				if err := tr.cliPool.Put(resp.Buf, cli); err != nil {
					panic(err)
				}
			}
		})
	}
}

// spawnOpenLoop issues one request every Every until the load window ends.
func (r *Rig) spawnOpenLoop(tr *tenantRig) {
	r.eng.Spawn("open-"+tr.sc.Name, func(pr *sim.Proc) {
		r.waitReady(pr)
		for pr.Now() < r.loadEnd {
			pr.Sleep(tr.sc.Every)
			if pr.Now() >= r.loadEnd {
				break
			}
			r.issueReq(tr, pr, nil)
		}
	})
}

// spawnPoisson drives the tenant from a workload.TraceGen arrival process
// (Poisson with a mild diurnal swing) through a relay queue, since the
// generator's submit hook runs in the generator's own process.
func (r *Rig) spawnPoisson(tr *tenantRig) {
	gen := &workload.TraceGen{
		Chains:           []string{tr.sc.Name},
		ZipfS:            1.0,
		BaseRPS:          tr.sc.RPS,
		DiurnalAmplitude: 0.3,
		Period:           r.sc.Load,
	}
	_, hook := gen.Start(r.eng)
	arrivals := sim.NewQueue[struct{}](r.eng, 0)
	hook(func(string) { arrivals.TryPut(struct{}{}) })
	r.eng.Spawn("poisson-"+tr.sc.Name, func(pr *sim.Proc) {
		r.waitReady(pr)
		for {
			arrivals.Get(pr)
			if pr.Now() >= r.loadEnd {
				continue // generator never stops; discard post-window arrivals
			}
			r.issueReq(tr, pr, nil)
		}
	})
}

// spawnAuditor interleaves cross-tenant ownership transfers with the load:
// each chain moves a buffer from the first tenant's client actor to a
// foreign tenant's actor and back, checking every access rule along the
// way. Unexpected outcomes are recorded as ownership-audit findings.
func (r *Rig) spawnAuditor() {
	tr := r.tenants[0]
	ownerA := mempool.Owner("aud-" + tr.sc.Name)
	foreign := "ghost"
	if len(r.tenants) > 1 {
		foreign = r.tenants[1].sc.Name
	}
	ownerB := mempool.Owner("aud-x-" + foreign)
	fail := func(format string, args ...any) {
		if len(r.auditErrs) < 8 {
			r.auditErrs = append(r.auditErrs, fmt.Sprintf(format, args...))
		}
	}
	r.eng.Spawn("auditor", func(pr *sim.Proc) {
		r.waitReady(pr)
		for i := 0; i < r.sc.Transfers && pr.Now() < r.loadEnd; i++ {
			pr.Sleep(time.Duration(50+r.eng.Rand().Intn(200)) * time.Microsecond)
			b, err := tr.cliPool.Get(ownerA)
			if err != nil {
				continue // pool squeezed by the data plane; not a finding
			}
			if err := tr.cliPool.Transfer(b, ownerA, ownerB); err != nil {
				fail("transfer %v->%v: %v", ownerA, ownerB, err)
			}
			if err := tr.cliPool.Access(b, ownerB); err != nil {
				fail("new owner denied access: %v", err)
			}
			if err := tr.cliPool.Access(b, ownerA); !errors.Is(err, mempool.ErrNotOwner) {
				fail("stale owner retained access: err=%v", err)
			}
			if err := tr.cliPool.Transfer(b, ownerB, ownerA); err != nil {
				fail("transfer back: %v", err)
			}
			if err := tr.cliPool.Put(b, ownerA); err != nil {
				fail("put: %v", err)
			}
			if err := tr.cliPool.Access(b, ownerA); !errors.Is(err, mempool.ErrStaleBuffer) {
				fail("use after free not detected: err=%v", err)
			}
			r.auditOps++
		}
	})
}
