package simtest

import (
	"fmt"
	"strings"
	"time"

	"nadino/internal/dne"
	"nadino/internal/fabric"
	"nadino/internal/sim"
)

// Violation is one invariant failure, stamped with the virtual time it was
// detected at.
type Violation struct {
	At        time.Duration
	Invariant string
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%v] %s: %s", v.At, v.Invariant, v.Detail)
}

// Invariant is one registered system-wide property. Periodic runs at every
// check tick (the event-boundary approximation: the checker ticker
// interleaves with all simulation events at a fixed virtual period) and
// returns a non-empty detail on violation; Final runs once after the drain,
// when the world must have quiesced, and may report several findings.
// Either hook may be nil.
type Invariant struct {
	Name     string
	Desc     string
	Periodic func(r *Rig, now time.Duration) string
	Final    func(r *Rig) []string
}

// Invariants returns the global registry, in evaluation order. Every fuzz
// run checks all of them; a scenario passes only if none fire.
func Invariants() []Invariant {
	return []Invariant{
		{
			Name: "clock-monotonic",
			Desc: "virtual time never moves backwards between check ticks",
			Periodic: func(r *Rig, now time.Duration) string {
				if now < r.lastNow {
					return fmt.Sprintf("clock moved %v -> %v", r.lastNow, now)
				}
				r.lastNow = now
				return ""
			},
		},
		{
			Name: "busy-accounting",
			Desc: "every processor's busy time is monotone and bounded by wall time",
			Periodic: func(r *Rig, now time.Duration) string {
				for i, c := range r.cores {
					b := c.proc.BusyTime()
					if b > now {
						return fmt.Sprintf("%s busy %v exceeds elapsed %v", c.label, b, now)
					}
					if b < r.lastBusy[i] {
						return fmt.Sprintf("%s busy time shrank %v -> %v", c.label, r.lastBusy[i], b)
					}
					r.lastBusy[i] = b
				}
				return ""
			},
		},
		{
			Name:     "buffer-conservation",
			Desc:     "pool accounting audits clean; no buffer leaks past quiesce",
			Periodic: checkBuffersPeriodic,
			Final:    checkBuffersFinal,
		},
		{
			Name:     "request-conservation",
			Desc:     "issued = completed + in-flight; in-flight bounded by engine drops",
			Periodic: checkRequestsPeriodic,
			Final:    checkRequestsFinal,
		},
		{
			Name:     "qp-legality",
			Desc:     "QP state machine legal; pools repaired and CQs drained at quiesce",
			Periodic: checkQPsPeriodic,
			Final:    checkQPsFinal,
		},
		{
			Name:     "srq-accounting",
			Desc:     "receive rings never overfill and are fully replenished at quiesce",
			Periodic: checkSRQPeriodic,
			Final:    checkSRQFinal,
		},
		{
			Name:  "dwrr-fairness",
			Desc:  "symmetric DWRR tenants complete within bounded skew",
			Final: checkFairness,
		},
		{
			Name:  "telemetry-consistency",
			Desc:  "scraped series are well-timed and reconcile with the ledger",
			Final: checkTelemetry,
		},
		{
			Name:  "trace-consistency",
			Desc:  "tracer totals reconcile with the request ledger",
			Final: checkTraces,
		},
		{
			Name: "ownership-audit",
			Desc: "cross-tenant transfer chains obey the exclusive-ownership rules",
			Final: func(r *Rig) []string {
				return append([]string(nil), r.auditErrs...)
			},
		},
		{
			Name:  "route-consistency",
			Desc:  "gateway fabric: no forwarding loops, healed tables route direct, forwarded messages conserved",
			Final: checkRoutes,
		},
		{
			Name:     "speculation-safety",
			Desc:     "speculated requests complete exactly once at the ingress boundary; losers return their buffers and in-flight state; no cancel touches a recycled generation",
			Periodic: checkSpecPeriodic,
			Final:    checkSpecFinal,
		},
		{
			Name: "sched-equivalence",
			Desc: "timing-wheel engine fires in the same order and at the same times as a pure-heap reference",
			Final: func(r *Rig) []string {
				// Seeded from the scenario so every fuzz case probes a distinct
				// schedule/cancel/re-arm script across all wheel levels.
				if err := sim.CheckEquivalence(r.sc.Seed, 400); err != nil {
					return []string{err.Error()}
				}
				return nil
			},
		},
	}
}

// checkBuffersPeriodic audits every tenant pool's internal accounting and
// cross-checks it against the receive ring it backs.
func checkBuffersPeriodic(r *Rig, now time.Duration) string {
	for _, tr := range r.tenants {
		cli, srv := r.nodes[tr.sc.CliNode], r.nodes[tr.sc.SrvNode]
		for _, side := range []struct {
			label string
			pool  interface {
				Audit() error
				InUse() int
			}
			posted int
		}{
			{"cli@" + string(cli.name), tr.cliPool, cli.eng.SRQ(tr.sc.Name).Posted()},
			{"srv@" + string(srv.name), tr.srvPool, srv.eng.SRQ(tr.sc.Name).Posted()},
		} {
			if err := side.pool.Audit(); err != nil {
				return fmt.Sprintf("tenant %s %s: %v", tr.sc.Name, side.label, err)
			}
			if side.pool.InUse() < side.posted {
				return fmt.Sprintf("tenant %s %s: %d buffers in use but %d posted to SRQ",
					tr.sc.Name, side.label, side.pool.InUse(), side.posted)
			}
		}
	}
	return ""
}

// checkBuffersFinal requires every buffer home at quiesce: the only live
// allocations are the pre-posted receive rings. A harness leak (the planted
// defect) or an engine leak surfaces here as a per-pool surplus.
func checkBuffersFinal(r *Rig) []string {
	var out []string
	for _, tr := range r.tenants {
		cli, srv := r.nodes[tr.sc.CliNode], r.nodes[tr.sc.SrvNode]
		for _, side := range []struct {
			label  string
			inUse  int
			posted int
			err    error
		}{
			{"cli@" + string(cli.name), tr.cliPool.InUse(),
				cli.eng.SRQ(tr.sc.Name).Posted() + gwSlots(cli, tr.sc.Name), tr.cliPool.Audit()},
			{"srv@" + string(srv.name), tr.srvPool.InUse(),
				srv.eng.SRQ(tr.sc.Name).Posted() + gwSlots(srv, tr.sc.Name), tr.srvPool.Audit()},
		} {
			if side.err != nil {
				out = append(out, fmt.Sprintf("tenant %s %s: %v", tr.sc.Name, side.label, side.err))
				continue
			}
			if side.inUse != side.posted {
				out = append(out, fmt.Sprintf(
					"tenant %s %s: %d buffers in use at quiesce, expected only the %d held by the receive ring and gateway window (leak of %d)",
					tr.sc.Name, side.label, side.inUse, side.posted, side.inUse-side.posted))
			}
		}
	}
	return out
}

// checkRequestsPeriodic enforces the always-true half of the ledger.
func checkRequestsPeriodic(r *Rig, now time.Duration) string {
	for _, tr := range r.tenants {
		if tr.completed > tr.issued {
			return fmt.Sprintf("tenant %s: completed %d > issued %d",
				tr.sc.Name, tr.completed, tr.issued)
		}
		if tr.issued != tr.completed+uint64(tr.inFlight()) {
			return fmt.Sprintf("tenant %s: issued %d != completed %d + in-flight %d",
				tr.sc.Name, tr.issued, tr.completed, tr.inFlight())
		}
	}
	return ""
}

// checkRequestsFinal closes the ledger: at quiesce every issued request is
// either completed or accounted to an engine drop counter; fault-free
// scenarios may not lose anything at all.
func checkRequestsFinal(r *Rig) []string {
	var out []string
	var drops uint64
	for _, nr := range r.nodes {
		_, _, noRoute, noPort, _ := nr.eng.Stats()
		_, retryDropped := nr.eng.RetryStats()
		drops += noRoute + noPort + retryDropped
		if nr.gw != nil {
			drops += nr.gw.Stats().Dropped
		}
	}
	var inFlight uint64
	for _, tr := range r.tenants {
		if tr.issued != tr.completed+uint64(tr.inFlight()) {
			out = append(out, fmt.Sprintf("tenant %s: issued %d != completed %d + in-flight %d",
				tr.sc.Name, tr.issued, tr.completed, tr.inFlight()))
		}
		inFlight += uint64(tr.inFlight())
	}
	if inFlight > drops {
		out = append(out, fmt.Sprintf(
			"%d requests still in flight at quiesce but engines only dropped %d", inFlight, drops))
	}
	if len(r.sc.Faults) == 0 && inFlight > 0 {
		out = append(out, fmt.Sprintf(
			"fault-free run left %d requests unfinished at quiesce", inFlight))
	}
	return out
}

// checkQPsPeriodic rejects impossible QP states mid-run.
func checkQPsPeriodic(r *Rig, now time.Duration) string {
	for _, nr := range r.nodes {
		for _, cp := range nr.eng.ConnPools() {
			for _, qp := range cp.Conns() {
				if qp.Outstanding() < 0 {
					return fmt.Sprintf("node %s qp%d: negative outstanding %d",
						nr.name, qp.ID(), qp.Outstanding())
				}
			}
		}
	}
	return ""
}

// checkQPsFinal requires full recovery: the keeper must have repaired every
// errored QP, drained every CQ, and emptied the scheduler by quiesce.
func checkQPsFinal(r *Rig) []string {
	var out []string
	for _, nr := range r.nodes {
		for _, cp := range nr.eng.ConnPools() {
			if n := cp.ErroredCount(); n > 0 {
				out = append(out, fmt.Sprintf("node %s: %d QPs still errored at quiesce", nr.name, n))
			}
			for _, qp := range cp.Conns() {
				if qp.Outstanding() != 0 {
					out = append(out, fmt.Sprintf("node %s qp%d: %d WRs outstanding at quiesce",
						nr.name, qp.ID(), qp.Outstanding()))
				}
			}
		}
		if n := nr.eng.CQ().Len(); n > 0 {
			out = append(out, fmt.Sprintf("node %s: %d CQEs unpolled at quiesce", nr.name, n))
		}
		if n := nr.eng.SchedPending(); n > 0 {
			out = append(out, fmt.Sprintf("node %s: %d descriptors stuck in scheduler", nr.name, n))
		}
		if nr.gw == nil {
			continue
		}
		for _, cp := range nr.gw.Links() {
			if n := cp.ErroredCount(); n > 0 {
				out = append(out, fmt.Sprintf("gateway %s: %d QPs still errored at quiesce", nr.name, n))
			}
			for _, qp := range cp.Conns() {
				if qp.Outstanding() != 0 {
					out = append(out, fmt.Sprintf("gateway %s qp%d: %d WRs outstanding at quiesce",
						nr.name, qp.ID(), qp.Outstanding()))
				}
			}
		}
		if n := nr.gw.CQ().Len(); n > 0 {
			out = append(out, fmt.Sprintf("gateway %s: %d CQEs unpolled at quiesce", nr.name, n))
		}
	}
	return out
}

// gwSlots is the landing-window share the node's gateway holds from the
// tenant's pool (zero when the scenario runs without the gateway tier).
func gwSlots(nr *nodeRig, tenant string) int {
	if nr.gw == nil {
		return 0
	}
	return nr.gw.SlotsHeld(tenant)
}

// checkRoutes is the gateway-fabric invariant (route-consistency): the
// forwarded-message ledger closes, a healed fabric converges back to direct
// next hops, hop-by-hop walks never loop, and relay landing pools come home.
func checkRoutes(r *Rig) []string {
	if !r.sc.Gateways {
		return nil
	}
	var out []string

	// Conservation: transit re-entries are internal to the tier, so the
	// descriptors accepted from engines equal deliveries plus drops, with
	// nothing queued or on the wire at quiesce.
	var in, delivered, dropped uint64
	for _, nr := range r.nodes {
		s := nr.gw.Stats()
		in += s.AcceptIn
		delivered += s.Delivered
		dropped += s.Dropped
		if n := nr.gw.Pending(); n > 0 {
			out = append(out, fmt.Sprintf("gateway %s: %d forwards still queued at quiesce", nr.name, n))
		}
		if n := nr.gw.InflightWrites(); n > 0 {
			out = append(out, fmt.Sprintf("gateway %s: %d writes still in flight at quiesce", nr.name, n))
		}
	}
	if in != delivered+dropped {
		out = append(out, fmt.Sprintf(
			"forwarded-message conservation broken: acceptIn=%d != delivered=%d + dropped=%d",
			in, delivered, dropped))
	}

	byName := make(map[fabric.NodeID]*nodeRig, len(r.nodes))
	healed := true
	for i, a := range r.nodes {
		byName[a.name] = a
		if r.net.Down(a.name) {
			healed = false
		}
		for _, b := range r.nodes[i+1:] {
			if r.net.LinkDown(a.name, b.name) || r.net.LinkDown(b.name, a.name) {
				healed = false
			}
		}
	}

	// Every route-table function entry must point at a known node; when the
	// fabric has healed (all faults expire before the drain ends, and the
	// keeper refreshes every GwFailoverInterval) it must also be live and
	// every next hop must be direct again.
	for _, nr := range r.nodes {
		for _, fn := range nr.gw.Routes().Functions() {
			node, ok := nr.gw.Routes().NodeOf(fn)
			if !ok || byName[node] == nil {
				out = append(out, fmt.Sprintf("gateway %s: function %s routed to unknown node %q",
					nr.name, fn, node))
				continue
			}
			if healed && r.net.Down(node) {
				out = append(out, fmt.Sprintf("gateway %s: function %s routed to down node %s after heal",
					nr.name, fn, node))
			}
		}
		if !healed {
			continue
		}
		for _, peer := range r.nodes {
			if peer == nr {
				continue
			}
			if hop := nr.gw.Routes().NextHop(peer.name); hop != peer.name {
				out = append(out, fmt.Sprintf(
					"gateway %s: next hop for %s still detours via %s after heal", nr.name, peer.name, hop))
			}
		}
	}

	// No forwarding loops: walking next hops toward any destination reaches
	// it without revisiting a node, whatever state the tables are in.
	for _, src := range r.nodes {
		for _, dst := range r.nodes {
			if src == dst {
				continue
			}
			cur := src
			visited := map[fabric.NodeID]bool{src.name: true}
			for cur.name != dst.name {
				hop := cur.gw.Routes().NextHop(dst.name)
				if visited[hop] {
					out = append(out, fmt.Sprintf("forwarding loop toward %s: gateway %s bounces back to %s",
						dst.name, cur.name, hop))
					break
				}
				next := byName[hop]
				if next == nil {
					out = append(out, fmt.Sprintf("gateway %s: next hop for %s is unknown node %q",
						cur.name, dst.name, hop))
					break
				}
				visited[hop] = true
				cur = next
			}
		}
	}

	// Relay landing pools (non-resident nodes) hold exactly the gateway's
	// window slots at quiesce — a transit leg that never came home is a leak.
	for _, tr := range r.tenants {
		for _, rel := range tr.relays {
			if err := rel.pool.Audit(); err != nil {
				out = append(out, fmt.Sprintf("tenant %s relay pool on %s: %v", tr.sc.Name, rel.node, err))
				continue
			}
			if held := rel.gw.SlotsHeld(tr.sc.Name); rel.pool.InUse() != held {
				out = append(out, fmt.Sprintf(
					"tenant %s relay pool on %s: %d buffers in use but the gateway holds only %d slots (leak of %d)",
					tr.sc.Name, rel.node, rel.pool.InUse(), held, rel.pool.InUse()-held))
			}
		}
	}
	return out
}

// checkSpecPeriodic enforces the always-true half of the speculation ledger
// on every speculative tenant: a group wins at most once, arm resolutions
// never exceed arms fired, and every win the controller records was observed
// exactly once at the rig's ingress boundary.
func checkSpecPeriodic(r *Rig, now time.Duration) string {
	for _, tr := range r.tenants {
		if tr.spec == nil {
			continue
		}
		st := tr.spec.Stats()
		if st.Wins() > st.Launched {
			return fmt.Sprintf("tenant %s: %d wins for %d launches: %+v",
				tr.sc.Name, st.Wins(), st.Launched, st)
		}
		if st.Cancels+st.Kills+st.Wins() > st.Arms {
			return fmt.Sprintf("tenant %s: %d resolutions exceed %d arms fired: %+v",
				tr.sc.Name, st.Cancels+st.Kills+st.Wins(), st.Arms, st)
		}
		if tr.specWinsSeen != st.Wins() {
			return fmt.Sprintf("tenant %s: boundary observed %d winners but controller recorded %d",
				tr.sc.Name, tr.specWinsSeen, st.Wins())
		}
	}
	return ""
}

// checkSpecFinal closes the speculation ledger at quiesce. Exactly-once and
// hedge-timer hygiene hold unconditionally; the full arm ledger (every arm
// won, was suppressed at the boundary, was killed mid-plane, or was shed
// before firing) closes with equality only when no faults or planted defects
// could strand arms inside the engines — mirroring request-conservation,
// faulted runs get the <= bound against engine drops instead. Loser buffer
// return is covered by buffer-conservation, and generation safety by the
// pool's ownership audit: a cancel that touched a recycled buffer would fire
// both.
func checkSpecFinal(r *Rig) []string {
	var out []string
	strict := len(r.sc.Faults) == 0 && r.sc.Defect == ""
	for _, tr := range r.tenants {
		if tr.spec == nil {
			continue
		}
		st := tr.spec.Stats()
		if tr.specWinsSeen != st.Wins() {
			out = append(out, fmt.Sprintf(
				"tenant %s: boundary observed %d winners at quiesce but controller recorded %d",
				tr.sc.Name, tr.specWinsSeen, st.Wins()))
		}
		if n := tr.spec.PendingHedges(); n != 0 {
			out = append(out, fmt.Sprintf(
				"tenant %s: %d hedge timers still armed at quiesce", tr.sc.Name, n))
		}
		resolved := st.Wins() + st.Cancels + st.Kills + tr.specUnfired
		if resolved > st.Arms {
			out = append(out, fmt.Sprintf(
				"tenant %s: %d arm resolutions exceed %d arms fired: %+v",
				tr.sc.Name, resolved, st.Arms, st))
		}
		if !strict {
			continue
		}
		if st.Launched != tr.specWinsSeen+tr.specNoArm {
			out = append(out, fmt.Sprintf(
				"tenant %s: fault-free run launched %d groups but saw %d winners + %d no-arm launches",
				tr.sc.Name, st.Launched, tr.specWinsSeen, tr.specNoArm))
		}
		if resolved != st.Arms {
			out = append(out, fmt.Sprintf(
				"tenant %s: fault-free run fired %d arms but resolved only %d (wins=%d cancels=%d kills=%d unfired=%d)",
				tr.sc.Name, st.Arms, resolved, st.Wins(), st.Cancels, st.Kills, tr.specUnfired))
		}
	}
	return out
}

// checkSRQPeriodic bounds the receive rings: the keeper may never post past
// its per-tenant target.
func checkSRQPeriodic(r *Rig, now time.Duration) string {
	for _, nr := range r.nodes {
		for _, tr := range r.tenants {
			if tr.sc.CliNode != nodeIndex(r, nr) && tr.sc.SrvNode != nodeIndex(r, nr) {
				continue
			}
			if p := nr.eng.SRQ(tr.sc.Name).Posted(); p > nr.rqInit {
				return fmt.Sprintf("node %s tenant %s: %d posted > ring target %d",
					nr.name, tr.sc.Name, p, nr.rqInit)
			}
		}
	}
	return ""
}

// checkSRQFinal requires the keeper to have fully replenished every ring.
func checkSRQFinal(r *Rig) []string {
	var out []string
	for _, nr := range r.nodes {
		for _, tr := range r.tenants {
			if tr.sc.CliNode != nodeIndex(r, nr) && tr.sc.SrvNode != nodeIndex(r, nr) {
				continue
			}
			if p := nr.eng.SRQ(tr.sc.Name).Posted(); p != nr.rqInit {
				out = append(out, fmt.Sprintf("node %s tenant %s: ring at %d/%d after drain",
					nr.name, tr.sc.Name, p, nr.rqInit))
			}
		}
	}
	return out
}

// nodeIndex maps a nodeRig back to its scenario index.
func nodeIndex(r *Rig, nr *nodeRig) int {
	for i, n := range r.nodes {
		if n == nr {
			return i
		}
	}
	return -1
}

// fairnessFloor is the minimum share of the per-tenant mean any symmetric
// DWRR tenant must reach inside the load window. DWRR's deficit bound is
// much tighter than this; the slack absorbs warmup and window edges.
const fairnessFloor = 0.55

// fairnessMinTotal gates the check on enough completions for the bound to
// be meaningful.
const fairnessMinTotal = 300

// checkFairness bounds goodput skew for fairness-eligible scenarios:
// identical closed-loop tenants under DWRR with no faults must split the
// window's completions near-evenly.
func checkFairness(r *Rig) []string {
	if !r.sc.Symmetric() || r.sc.Sched != dne.SchedDWRR || len(r.sc.Faults) > 0 || r.sc.Defect != "" {
		return nil
	}
	var total uint64
	min, max := ^uint64(0), uint64(0)
	for _, tr := range r.tenants {
		c := tr.windowCompleted
		total += c
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if total < fairnessMinTotal {
		return nil
	}
	mean := float64(total) / float64(len(r.tenants))
	if float64(min) < fairnessFloor*mean {
		return []string{fmt.Sprintf(
			"symmetric DWRR tenants skewed: min %d, max %d, mean %.1f over %d tenants",
			min, max, mean, len(r.tenants))}
	}
	return nil
}

// checkTelemetry validates the scraper output against the clock and the
// ledger: samples land at exact period multiples in strict order, windowed
// rates are non-negative, pool gauges stay inside the pool, and the
// completion-rate series integrates back to at most the ledger's count.
func checkTelemetry(r *Rig) []string {
	var out []string
	maxPool := 0
	var completedTotal uint64
	for _, tr := range r.tenants {
		if tr.sc.PoolBufs > maxPool {
			maxPool = tr.sc.PoolBufs
		}
		completedTotal += tr.completed
	}
	var rateSum float64
	for _, s := range r.scraper.Series() {
		last := time.Duration(0)
		for i, pt := range s.Points {
			if pt.T <= last && i > 0 {
				out = append(out, fmt.Sprintf("series %s: non-increasing timestamp %v after %v",
					s.Name, pt.T, last))
				break
			}
			if pt.T%r.scraper.Period() != 0 {
				out = append(out, fmt.Sprintf("series %s: sample at %v off the %v grid",
					s.Name, pt.T, r.scraper.Period()))
				break
			}
			last = pt.T
			switch {
			case strings.HasPrefix(s.Name, "fuzz.completed"):
				if pt.V < 0 {
					out = append(out, fmt.Sprintf("series %s: negative rate %g at %v", s.Name, pt.V, pt.T))
				}
				rateSum += pt.V * r.scraper.Period().Seconds()
			case strings.HasPrefix(s.Name, "fuzz.pool_in_use"):
				if pt.V < 0 || pt.V > float64(maxPool) {
					out = append(out, fmt.Sprintf("series %s: gauge %g outside [0,%d] at %v",
						s.Name, pt.V, maxPool, pt.T))
				}
			case strings.HasPrefix(s.Name, "fuzz.worker_busy"):
				if pt.V < 0 || pt.V > 1+1e-9 {
					out = append(out, fmt.Sprintf("series %s: utilization %g outside [0,1] at %v",
						s.Name, pt.V, pt.T))
				}
			}
		}
	}
	if rateSum > float64(completedTotal)+0.5 {
		out = append(out, fmt.Sprintf(
			"completion-rate series integrate to %.1f but ledger completed only %d",
			rateSum, completedTotal))
	}
	return out
}

// checkTraces reconciles the tracer with the request ledger: every finished
// request was completed, every unfinished one is still on the in-flight
// ledger, and nothing was dropped (the rig runs unlimited).
func checkTraces(r *Rig) []string {
	rep := r.tracer.Report()
	var completed uint64
	var inFlight int
	for _, tr := range r.tenants {
		completed += tr.completed
		inFlight += tr.inFlight()
	}
	var out []string
	if uint64(rep.Requests) != completed {
		out = append(out, fmt.Sprintf("tracer finished %d requests but ledger completed %d",
			rep.Requests, completed))
	}
	if rep.Unfinished != inFlight {
		out = append(out, fmt.Sprintf("tracer has %d unfinished requests but ledger has %d in flight",
			rep.Unfinished, inFlight))
	}
	if rep.Dropped != 0 {
		out = append(out, fmt.Sprintf("tracer dropped %d requests with no limit set", rep.Dropped))
	}
	return out
}
