package simtest

import (
	"fmt"
	"time"
)

// ShrinkResult is the outcome of minimizing a failing scenario.
type ShrinkResult struct {
	Original, Minimal             Scenario
	OriginalResult, MinimalResult *Result
	// Attempts counts candidate runs spent; Steps logs each accepted
	// reduction in order.
	Attempts int
	Steps    []string
}

// minLoad floors load-window bisection; shorter windows don't complete a
// single QP round trip under every profile.
const minLoad = 2 * time.Millisecond

// Shrink minimizes a failing scenario, ddmin-style: drop the fault schedule
// (all, then halves, then singles), bisect the load window, drop tenants,
// thin client fan-out, and drop the auditor — accepting a candidate only if
// it still trips at least one of the originally-violated invariants. Each
// candidate costs one full simulation; maxAttempts caps the spend. The
// returned Minimal scenario re-runs byte-identically via Run.
func Shrink(sc Scenario, res *Result, maxAttempts int) ShrinkResult {
	sr := ShrinkResult{Original: sc, Minimal: sc, OriginalResult: res, MinimalResult: res}
	if !res.Failed() {
		return sr
	}
	want := res.violatedNames()
	try := func(cand Scenario, step string) bool {
		if sr.Attempts >= maxAttempts {
			return false
		}
		sr.Attempts++
		cres := Run(cand)
		for name := range cres.violatedNames() {
			if want[name] {
				sr.Minimal, sr.MinimalResult = cand, cres
				sr.Steps = append(sr.Steps, step)
				return true
			}
		}
		return false
	}

	// Fault schedule: all gone, then ddmin down to single events.
	if len(sr.Minimal.Faults) > 0 {
		cand := sr.Minimal
		cand.Faults = nil
		try(cand, "drop all faults")
	}
	for chunk := len(sr.Minimal.Faults) / 2; chunk >= 1; chunk /= 2 {
		for lo := 0; lo < len(sr.Minimal.Faults); {
			hi := lo + chunk
			if hi > len(sr.Minimal.Faults) {
				hi = len(sr.Minimal.Faults)
			}
			cand := sr.Minimal
			cand.Faults = append(append([]FaultSpec(nil), sr.Minimal.Faults[:lo]...),
				sr.Minimal.Faults[hi:]...)
			if try(cand, fmt.Sprintf("drop faults [%d,%d)", lo, hi)) {
				continue // same lo now addresses the next chunk
			}
			lo = hi
		}
	}

	// Load window: halve while the failure persists.
	for sr.Minimal.Load/2 >= minLoad {
		cand := sr.Minimal
		cand.Load = sr.Minimal.Load / 2
		// Keep faults inside the shrunken window.
		for i := range cand.Faults {
			if cand.Faults[i].At >= cand.Load {
				cand.Faults[i].At = cand.Load / 2
			}
		}
		if !try(cand, fmt.Sprintf("halve load to %v", cand.Load)) {
			break
		}
	}

	// Tenants: drop one at a time, keeping at least one.
	for i := 0; i < len(sr.Minimal.Tenants) && len(sr.Minimal.Tenants) > 1; {
		cand := sr.Minimal
		cand.Tenants = append(append([]TenantScenario(nil), sr.Minimal.Tenants[:i]...),
			sr.Minimal.Tenants[i+1:]...)
		if try(cand, "drop tenant "+sr.Minimal.Tenants[i].Name) {
			continue
		}
		i++
	}

	// Client fan-out: halve closed-loop client counts.
	for {
		cand := sr.Minimal
		cand.Tenants = append([]TenantScenario(nil), sr.Minimal.Tenants...)
		reduced := false
		for i := range cand.Tenants {
			if cand.Tenants[i].Load == LoadClosed && cand.Tenants[i].Clients > 1 {
				cand.Tenants[i].Clients /= 2
				reduced = true
			}
		}
		if !reduced || !try(cand, "halve clients") {
			break
		}
	}

	// Auditor: irrelevant unless the audit itself failed.
	if sr.Minimal.Transfers > 0 {
		cand := sr.Minimal
		cand.Transfers = 0
		try(cand, "drop ownership auditor")
	}
	return sr
}
