// Package simtest is the repository's deterministic-simulation fuzzer, in
// the FoundationDB tradition: a seeded scenario generator composes random
// topologies, tenant mixes, workloads and chaos schedules; a global
// invariant registry checks system-wide properties (buffer conservation,
// request conservation, QP legality, fairness, clock monotonicity,
// telemetry/trace consistency) at event boundaries and at end of run; and a
// shrinker reduces failing scenarios to minimal counterexamples by
// bisecting the fault schedule and the workload duration.
//
// Everything is a pure function of the scenario seed: a failing seed
// reported by the sweep (`nadino-bench -run fuzz`) reproduces
// byte-identically with `-seed <s> -fuzz-seeds 1`, sequentially or sharded.
package simtest

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"nadino/internal/dne"
)

// genSalt decorrelates the generator's RNG from the engine and chaos RNGs
// that consume the same seed.
const genSalt int64 = 0x73696d74657374 // "simtest"

// Workload kinds for one tenant.
const (
	// LoadClosed drives N closed-loop echo clients (each waits for its
	// response before issuing the next request).
	LoadClosed = "closed"
	// LoadOpen issues one request every Every, never waiting.
	LoadOpen = "open"
	// LoadPoisson draws Poisson arrivals at TraceRPS via workload.TraceGen.
	LoadPoisson = "poisson"
)

// TenantScenario is one tenant's slice of a generated scenario.
type TenantScenario struct {
	Name   string
	Weight int
	// CliNode hosts the tenant's client function, SrvNode its echo server.
	CliNode, SrvNode int
	// PoolBufs/BufSize size the tenant's per-node buffer pool; InitialRQ
	// is the engine's pre-posted receive ring.
	PoolBufs, BufSize, InitialRQ int

	Load    string        // LoadClosed, LoadOpen or LoadPoisson
	Clients int           // closed-loop client count (LoadClosed)
	Every   time.Duration // open-loop send period (LoadOpen)
	RPS     float64       // Poisson arrival rate (LoadPoisson)
	Payload int           // request/response bytes
}

// Fault kinds a scenario can schedule (mapped onto internal/chaos faults by
// the runner).
const (
	FaultLinkStorm = "link-storm"
	FaultQPError   = "qp-error"
	FaultNodeCrash = "node-crash"
	FaultDMAStall  = "dma-stall"
	FaultSlowCores = "slow-cores"
	FaultPartition = "partition"
)

// FaultSpec is one declarative fault event. At is relative to the start of
// the load window (after QP setup and warmup), so shrinking the load does
// not silently move faults out of the run.
type FaultSpec struct {
	Kind   string
	At     time.Duration
	For    time.Duration
	Node   int     // target node index
	Count  int     // storm events or QPs to error
	Factor float64 // slow-cores speed factor
}

func (f FaultSpec) String() string {
	switch f.Kind {
	case FaultLinkStorm:
		return fmt.Sprintf("%s(n=%d at=%v span=%v)", f.Kind, f.Count, f.At, f.For)
	case FaultQPError:
		return fmt.Sprintf("%s(node%d n=%d at=%v)", f.Kind, f.Node, f.Count, f.At)
	case FaultSlowCores:
		return fmt.Sprintf("%s(node%d x%.2f at=%v for=%v)", f.Kind, f.Node, f.Factor, f.At, f.For)
	default:
		return fmt.Sprintf("%s(node%d at=%v for=%v)", f.Kind, f.Node, f.At, f.For)
	}
}

// Scenario is one fully-specified fuzz case: everything the runner needs to
// rebuild the same world, derived from Seed by Generate. The fields are
// plain values so the shrinker can perturb them and tests can construct
// scenarios directly.
type Scenario struct {
	Seed  int64
	Nodes int // worker nodes (2 or 3), one DNE each

	Mode  dne.Mode
	Sched dne.SchedulerKind
	// QPs is the RC connection-pool size per tenant link.
	QPs int
	// ExtraPerMsg caps engine throughput (params.DNEExtraPerMsg); 0 leaves
	// the calibrated default.
	ExtraPerMsg time.Duration

	// Load is the driven window after warmup; Drain keeps the engines
	// alive afterwards so retries, repairs and buffers come home before
	// the final invariant pass.
	Load  time.Duration
	Drain time.Duration

	Tenants []TenantScenario
	Faults  []FaultSpec

	// Transfers > 0 runs an ownership auditor that interleaves that many
	// cross-tenant mempool.Transfer chains with the data-plane load.
	Transfers int

	// Defect plants a deliberate bug in the harness's test doubles so the
	// invariant registry has something to catch (tests and demos):
	// "leak-buffer" makes one client keep a response buffer forever.
	Defect string

	// Gateways routes cross-node hops through a per-node gateway tier
	// (internal/gateway) instead of the engines' direct per-tenant QPs,
	// putting route-table failover and the landing-window credit protocol
	// under the invariant registry (route-consistency).
	Gateways bool

	// CloneN > 1 fires that many arms per request through a per-tenant
	// speculation controller (internal/speculate): first completion wins,
	// losers are killed mid-plane via the descriptor cancellation probe or
	// suppressed at the client boundary (speculation-safety invariant).
	CloneN int
	// HedgeAfter > 0 arms a hedged retry per request with that deadline
	// floor (the rolling P95 takes over once the window warms).
	HedgeAfter time.Duration
	// PSServe runs the tenants' serve and demux cores processor-sharing
	// instead of FCFS (sim.PS), putting the PS quantum re-arm path under
	// the fuzzer.
	PSServe bool
}

// Speculative reports whether the scenario fires more than one arm per
// request (cloning or hedging).
func (sc Scenario) Speculative() bool { return sc.CloneN > 1 || sc.HedgeAfter > 0 }

// DefectLeakBuffer is the planted harness bug used to prove the fuzzer
// catches (and shrinks) invariant violations.
const DefectLeakBuffer = "leak-buffer"

// tenantNames label generated tenants.
var tenantNames = []string{"amber", "basil", "coral"}

// Generate derives a scenario from seed. Same seed, same scenario — the
// whole fuzz contract hangs on this being a pure function.
func Generate(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed ^ genSalt))
	sc := Scenario{
		Seed:  seed,
		Nodes: 2 + rng.Intn(2),
		Mode:  dne.OffPath,
		QPs:   2 + rng.Intn(7),
		Load:  8*time.Millisecond + time.Duration(rng.Intn(22))*time.Millisecond,
		Drain: 200 * time.Millisecond,
	}
	if rng.Intn(4) == 0 {
		sc.Mode = dne.OnPath
	}
	switch rng.Intn(3) {
	case 0:
		sc.Sched = dne.SchedDWRR
	case 1:
		sc.Sched = dne.SchedFCFS
	default:
		sc.Sched = dne.SchedPriority
	}
	if rng.Intn(2) == 0 {
		sc.ExtraPerMsg = time.Duration(1+rng.Intn(8)) * time.Microsecond
	}

	// Symmetric scenarios share one node pair with identical tenants —
	// the fairness-eligible shape the DWRR invariant can bound tightly.
	symmetric := rng.Intn(2) == 0
	nTenants := 1 + rng.Intn(3)
	if symmetric {
		nTenants = 2 + rng.Intn(2)
	}
	payload := 64 << rng.Intn(7) // 64B..4KB
	weight := 1 + rng.Intn(4)
	clients := 4 + rng.Intn(13)
	for i := 0; i < nTenants; i++ {
		ts := TenantScenario{
			Name:      tenantNames[i],
			Weight:    weight,
			CliNode:   0,
			SrvNode:   1,
			BufSize:   8192,
			InitialRQ: 64 + rng.Intn(129),
			Load:      LoadClosed,
			Clients:   clients,
			Payload:   payload,
		}
		if !symmetric {
			ts.Weight = 1 + rng.Intn(4)
			ts.Payload = 64 << rng.Intn(7)
			ts.CliNode = rng.Intn(sc.Nodes)
			ts.SrvNode = (ts.CliNode + 1 + rng.Intn(sc.Nodes-1)) % sc.Nodes
			switch rng.Intn(4) {
			case 0:
				ts.Load = LoadOpen
				ts.Clients = 0
				ts.Every = time.Duration(40+rng.Intn(360)) * time.Microsecond
			case 1:
				ts.Load = LoadPoisson
				ts.Clients = 0
				ts.RPS = 2000 + 2000*float64(rng.Intn(8))
			default:
				ts.Clients = 1 + rng.Intn(16)
			}
		}
		if ts.Payload > ts.BufSize {
			ts.BufSize = ts.Payload
		}
		// Size the pool so the receive ring plus every plausible in-flight
		// buffer fits with headroom; open-loop senders shed on exhaustion.
		ts.PoolBufs = ts.InitialRQ + 4*ts.Clients + 128 + rng.Intn(128)
		sc.Tenants = append(sc.Tenants, ts)
	}

	// Fault schedule: half the scenarios run fault-free (so the strict
	// no-loss invariants get coverage), the rest draw 1-3 events confined
	// to the middle of the load window. Outages are kept short enough for
	// the transport-retry plus engine-retry horizon, so every scenario
	// must quiesce clean.
	if rng.Intn(2) == 1 {
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			at := sc.Load/8 + time.Duration(rng.Int63n(int64(sc.Load/2)))
			f := FaultSpec{At: at, Node: rng.Intn(sc.Nodes)}
			switch rng.Intn(6) {
			case 0:
				f.Kind = FaultLinkStorm
				f.Count = 3 + rng.Intn(8)
				f.For = 2*time.Millisecond + time.Duration(rng.Intn(4))*time.Millisecond
			case 1:
				f.Kind = FaultQPError
				f.Count = rng.Intn(sc.QPs + 1) // 0 = all
			case 2:
				f.Kind = FaultNodeCrash
				f.For = time.Duration(500+rng.Intn(4500)) * time.Microsecond
			case 3:
				f.Kind = FaultDMAStall
				f.For = time.Duration(200+rng.Intn(1800)) * time.Microsecond
			case 4:
				f.Kind = FaultSlowCores
				f.For = 1*time.Millisecond + time.Duration(rng.Intn(4))*time.Millisecond
				f.Factor = 0.25 + 0.5*rng.Float64()
			default:
				f.Kind = FaultPartition
				f.For = time.Duration(500+rng.Intn(3000)) * time.Microsecond
			}
			sc.Faults = append(sc.Faults, f)
		}
	}
	if rng.Intn(2) == 0 {
		sc.Transfers = 8 + rng.Intn(56)
	}
	// Drawn last so earlier draws (and thus the non-gateway shape of every
	// historical seed) stay stable.
	sc.Gateways = rng.Intn(2) == 0
	// Speculation and serving-discipline bits: drawn after everything else,
	// again so every historical seed keeps its earlier draws.
	if rng.Intn(3) == 0 {
		sc.CloneN = 2 + rng.Intn(2)
	}
	if rng.Intn(3) == 0 {
		sc.HedgeAfter = time.Duration(150+rng.Intn(600)) * time.Microsecond
	}
	sc.PSServe = rng.Intn(4) == 0
	return sc
}

// Symmetric reports whether the scenario is fairness-eligible: every tenant
// closed-loop on the same node pair with the same weight, client count and
// payload, so DWRR must split goodput evenly.
func (sc Scenario) Symmetric() bool {
	if len(sc.Tenants) < 2 {
		return false
	}
	t0 := sc.Tenants[0]
	for _, t := range sc.Tenants {
		if t.Load != LoadClosed || t.Clients != t0.Clients || t.Weight != t0.Weight ||
			t.Payload != t0.Payload || t.CliNode != t0.CliNode || t.SrvNode != t0.SrvNode {
			return false
		}
	}
	return true
}

// schedName renders the scheduler kind.
func schedName(k dne.SchedulerKind) string {
	switch k {
	case dne.SchedDWRR:
		return "dwrr"
	case dne.SchedPriority:
		return "prio"
	default:
		return "fcfs"
	}
}

// modeName renders the engine mode.
func modeName(m dne.Mode) string {
	if m == dne.OnPath {
		return "on-path"
	}
	return "off-path"
}

// String renders a compact, deterministic description used in fuzz reports.
func (sc Scenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d nodes=%d %s/%s qps=%d load=%v", sc.Seed, sc.Nodes,
		modeName(sc.Mode), schedName(sc.Sched), sc.QPs, sc.Load)
	if sc.ExtraPerMsg > 0 {
		fmt.Fprintf(&b, " extra=%v", sc.ExtraPerMsg)
	}
	for _, t := range sc.Tenants {
		fmt.Fprintf(&b, " %s[n%d>n%d w%d %s", t.Name, t.CliNode, t.SrvNode, t.Weight, t.Load)
		switch t.Load {
		case LoadClosed:
			fmt.Fprintf(&b, " c%d", t.Clients)
		case LoadOpen:
			fmt.Fprintf(&b, " every=%v", t.Every)
		case LoadPoisson:
			fmt.Fprintf(&b, " rps=%.0f", t.RPS)
		}
		fmt.Fprintf(&b, " %dB]", t.Payload)
	}
	for _, f := range sc.Faults {
		fmt.Fprintf(&b, " fault=%s", f)
	}
	if sc.Transfers > 0 {
		fmt.Fprintf(&b, " transfers=%d", sc.Transfers)
	}
	if sc.Defect != "" {
		fmt.Fprintf(&b, " defect=%s", sc.Defect)
	}
	if sc.Gateways {
		b.WriteString(" gw")
	}
	if sc.CloneN > 1 {
		fmt.Fprintf(&b, " clone=%d", sc.CloneN)
	}
	if sc.HedgeAfter > 0 {
		fmt.Fprintf(&b, " hedge=%v", sc.HedgeAfter)
	}
	if sc.PSServe {
		b.WriteString(" ps")
	}
	return b.String()
}
