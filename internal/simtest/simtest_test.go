package simtest

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"nadino/internal/dne"
)

// TestGenerateDeterministic pins the generator as a pure function of seed.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: scenarios differ:\n%s\n%s", seed, a, b)
		}
		if a.String() != b.String() {
			t.Fatalf("seed %d: descriptions differ", seed)
		}
	}
}

// TestGenerateShape sanity-checks generated scenarios: indices in range,
// pools big enough for their rings, loads fully specified.
func TestGenerateShape(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		sc := Generate(seed)
		if sc.Nodes < 2 || sc.Nodes > len(nodeNames) {
			t.Fatalf("seed %d: %d nodes", seed, sc.Nodes)
		}
		if len(sc.Tenants) == 0 {
			t.Fatalf("seed %d: no tenants", seed)
		}
		for _, ts := range sc.Tenants {
			if ts.CliNode >= sc.Nodes || ts.SrvNode >= sc.Nodes || ts.CliNode == ts.SrvNode {
				t.Fatalf("seed %d tenant %s: nodes %d->%d of %d", seed, ts.Name, ts.CliNode, ts.SrvNode, sc.Nodes)
			}
			if ts.PoolBufs < ts.InitialRQ {
				t.Fatalf("seed %d tenant %s: pool %d < ring %d", seed, ts.Name, ts.PoolBufs, ts.InitialRQ)
			}
			if ts.Payload > ts.BufSize {
				t.Fatalf("seed %d tenant %s: payload %d > buf %d", seed, ts.Name, ts.Payload, ts.BufSize)
			}
			switch ts.Load {
			case LoadClosed:
				if ts.Clients < 1 {
					t.Fatalf("seed %d tenant %s: closed loop with %d clients", seed, ts.Name, ts.Clients)
				}
			case LoadOpen:
				if ts.Every <= 0 {
					t.Fatalf("seed %d tenant %s: open loop with period %v", seed, ts.Name, ts.Every)
				}
			case LoadPoisson:
				if ts.RPS <= 0 {
					t.Fatalf("seed %d tenant %s: poisson with %f rps", seed, ts.Name, ts.RPS)
				}
			default:
				t.Fatalf("seed %d tenant %s: load %q", seed, ts.Name, ts.Load)
			}
		}
		for _, f := range sc.Faults {
			if f.At < 0 || f.At >= sc.Load {
				t.Fatalf("seed %d: fault %s outside load window %v", seed, f, sc.Load)
			}
		}
	}
}

// TestRunDeterministic requires byte-identical reports for repeated runs of
// the same seed — the contract behind every printed repro command.
func TestRunDeterministic(t *testing.T) {
	seeds := []int64{1, 7}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		a := Run(Generate(seed))
		b := Run(Generate(seed))
		if a.Report != b.Report {
			t.Fatalf("seed %d: reports differ:\n--- first\n%s--- second\n%s", seed, a.Report, b.Report)
		}
		if a.Fingerprint != b.Fingerprint {
			t.Fatalf("seed %d: fingerprints differ: %x vs %x", seed, a.Fingerprint, b.Fingerprint)
		}
	}
}

// TestSweepClean is the in-repo smoke sweep: a block of generated scenarios
// must pass every invariant.
func TestSweepClean(t *testing.T) {
	n := int64(20)
	if testing.Short() {
		n = 6
	}
	for seed := int64(0); seed < n; seed++ {
		res := Run(Generate(seed))
		if res.Failed() {
			t.Errorf("seed %d failed:\n%s\n%s", seed, res.Report, res.FlightDump)
		}
		if res.FlightDump != "" {
			t.Errorf("seed %d: passing run carries a flight dump", seed)
		}
	}
}

// TestSpeculationSweepClean is invariant #13's seed sweep: every scenario
// runs with cloning and/or hedging forced on, so the speculation-safety
// checker (exactly-once at the boundary, losers returning buffers and
// in-flight state, generation-fenced cancels) sees real clone traffic on
// every seed — including seeds whose own draws add faults, gateways, PS
// serving, or retry storms on top.
func TestSpeculationSweepClean(t *testing.T) {
	n := int64(50)
	if testing.Short() {
		n = 8
	}
	for seed := int64(0); seed < n; seed++ {
		sc := Generate(seed)
		if !sc.Speculative() {
			// Force speculation onto non-speculative seeds, varying the
			// flavor so the sweep covers clone-only, hedge-only, and both.
			switch seed % 3 {
			case 0:
				sc.CloneN = 2 + int(seed%2)
			case 1:
				sc.HedgeAfter = time.Duration(150*(1+seed%3)) * time.Microsecond
			default:
				sc.CloneN = 2
				sc.HedgeAfter = 300 * time.Microsecond
			}
		}
		res := Run(sc)
		if res.Failed() {
			t.Errorf("seed %d (%s) failed:\n%s\n%s", seed, sc, res.Report, res.FlightDump)
		}
		if res.SpecLaunched == 0 {
			t.Errorf("seed %d (%s): speculative scenario launched no groups", seed, sc)
		}
	}
}

// TestSpeculationDeterministic pins a fully-loaded speculative scenario —
// clone=3 with hedging on PS cores, under a slow-core fault — to a
// byte-identical rerun.
func TestSpeculationDeterministic(t *testing.T) {
	sc := Scenario{
		Seed: 77, Nodes: 2, Mode: dne.OffPath, Sched: dne.SchedDWRR,
		QPs: 2, Load: 8 * time.Millisecond, Drain: 200 * time.Millisecond,
		CloneN: 3, HedgeAfter: 250 * time.Microsecond, PSServe: true,
		Tenants: []TenantScenario{
			{Name: "amber", Weight: 1, CliNode: 0, SrvNode: 1,
				PoolBufs: 300, BufSize: 4096, InitialRQ: 64,
				Load: LoadClosed, Clients: 6, Payload: 512},
			{Name: "basil", Weight: 1, CliNode: 0, SrvNode: 1,
				PoolBufs: 300, BufSize: 4096, InitialRQ: 64,
				Load: LoadClosed, Clients: 6, Payload: 512},
		},
		Faults: []FaultSpec{{Kind: FaultSlowCores, At: 2 * time.Millisecond,
			For: 2 * time.Millisecond, Node: 1, Factor: 0.4}},
	}
	res := Run(sc)
	if res.Failed() {
		t.Fatalf("speculative scenario failed:\n%s\n%s", res.Report, res.FlightDump)
	}
	if res.SpecWins == 0 || res.SpecCancels+res.SpecKills == 0 {
		t.Fatalf("speculation never exercised (wins=%d cancels=%d kills=%d):\n%s",
			res.SpecWins, res.SpecCancels, res.SpecKills, res.Report)
	}
	again := Run(sc)
	if again.Report != res.Report || again.Fingerprint != res.Fingerprint {
		t.Fatalf("speculative scenario not deterministic:\n--- first\n%s--- second\n%s",
			res.Report, again.Report)
	}
}

// TestGatewayScenarioForwards pins the gateway tier under the full invariant
// registry: a 3-node scenario whose only tenant spans node0 -> node2 must
// push every cross-node hop through the fabric (Forwarded > 0), survive a
// mid-window partition, and pass all 13 invariants — including
// route-consistency — byte-identically across reruns.
func TestGatewayScenarioForwards(t *testing.T) {
	sc := Scenario{
		Seed: 42, Nodes: 3, Mode: dne.OffPath, Sched: dne.SchedFCFS,
		QPs: 2, Load: 10 * time.Millisecond, Drain: 200 * time.Millisecond,
		Gateways: true,
		Tenants: []TenantScenario{{
			Name: "amber", Weight: 1, CliNode: 0, SrvNode: 2,
			PoolBufs: 300, BufSize: 8192, InitialRQ: 64,
			Load: LoadClosed, Clients: 8, Payload: 1024,
		}},
		Faults: []FaultSpec{{Kind: FaultPartition, At: 2 * time.Millisecond,
			For: 2 * time.Millisecond, Node: 0}},
	}
	res := Run(sc)
	if res.Failed() {
		t.Fatalf("gateway scenario failed:\n%s", res.Report)
	}
	if res.Forwarded == 0 {
		t.Fatalf("no gateway forwards — cross-node hops bypassed the fabric:\n%s", res.Report)
	}
	if res.Completed == 0 {
		t.Fatalf("nothing completed:\n%s", res.Report)
	}
	again := Run(sc)
	if again.Report != res.Report || again.Fingerprint != res.Fingerprint {
		t.Fatalf("gateway scenario not deterministic:\n--- first\n%s--- second\n%s", res.Report, again.Report)
	}
}

// TestPlantedLeakCaught proves the registry catches a deliberately-broken
// invariant: a harness double that keeps one response buffer trips
// buffer-conservation, and the shrinker reduces the scenario while the
// minimal case still reproduces byte-identically.
func TestPlantedLeakCaught(t *testing.T) {
	sc := Generate(3)
	sc.Defect = DefectLeakBuffer
	res := Run(sc)
	if !res.Failed() {
		t.Fatalf("planted leak not caught:\n%s", res.Report)
	}
	if !res.violatedNames()["buffer-conservation"] {
		t.Fatalf("leak blamed on the wrong invariant:\n%s", res.Report)
	}

	// Failures carry the flight recorder's tail, with the invariant trip
	// itself marked in the ring; the dump stays out of Report so
	// fingerprints do not depend on recorder coverage.
	if !strings.Contains(res.FlightDump, "flightrec:") ||
		!strings.Contains(res.FlightDump, "invariant") {
		t.Fatalf("failing run has no usable flight dump:\n%q", res.FlightDump)
	}
	if strings.Contains(res.Report, "flightrec:") {
		t.Fatalf("flight dump leaked into the canonical report:\n%s", res.Report)
	}
	if again := Run(sc); again.FlightDump != res.FlightDump {
		t.Fatalf("flight dump not deterministic:\n--- first\n%s--- second\n%s",
			res.FlightDump, again.FlightDump)
	}

	sr := Shrink(sc, res, 30)
	if !sr.MinimalResult.Failed() {
		t.Fatalf("shrinker lost the failure")
	}
	if !sr.MinimalResult.violatedNames()["buffer-conservation"] {
		t.Fatalf("shrinker drifted to a different failure:\n%s", sr.MinimalResult.Report)
	}
	if sr.Minimal.Load > sc.Load/2 && len(sr.Steps) == 0 {
		t.Fatalf("shrinker made no progress: %v", sr.Steps)
	}
	again := Run(sr.Minimal)
	if again.Report != sr.MinimalResult.Report || again.Fingerprint != sr.MinimalResult.Fingerprint {
		t.Fatalf("minimal scenario does not reproduce byte-identically:\n--- shrink\n%s--- rerun\n%s",
			sr.MinimalResult.Report, again.Report)
	}
}

// TestShrinkDropsIrrelevantFaults checks the ddmin pass: a defect that has
// nothing to do with the chaos schedule shrinks to a fault-free scenario.
func TestShrinkDropsIrrelevantFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple full simulations")
	}
	var sc Scenario
	found := false
	for seed := int64(0); seed < 100; seed++ {
		sc = Generate(seed)
		if len(sc.Faults) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no faulty scenario in the first 100 seeds")
	}
	sc.Defect = DefectLeakBuffer
	res := Run(sc)
	if !res.Failed() {
		t.Fatalf("planted leak not caught:\n%s", res.Report)
	}
	sr := Shrink(sc, res, 40)
	if len(sr.Minimal.Faults) != 0 {
		t.Fatalf("irrelevant faults survived shrinking: %v", sr.Minimal.Faults)
	}
}
