package simtest

import (
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"nadino/internal/flightrec"
)

// checkPeriod is the periodic-invariant tick: fine enough to interleave
// with every stage of a request's life, coarse enough to keep a sweep of
// thousands of scenarios cheap.
const checkPeriod = 500 * time.Microsecond

// Result is one scenario's verdict plus the deterministic evidence trail.
// Report (and therefore Fingerprint) is a pure function of the scenario, so
// re-running a failing seed reproduces it byte-identically.
type Result struct {
	Scenario Scenario

	Issued, Completed, Shed uint64
	InFlight                int
	Drops                   uint64 // engine- and gateway-side losses (route/port/retry budget)
	Retried                 uint64
	Forwarded               uint64 // gateway writes posted (gateway scenarios only)
	FaultsApplied           int
	FaultsReverted          int
	AuditOps                int

	// Speculation ledger totals, summed across speculative tenants (all
	// zero when the scenario runs without cloning or hedging).
	SpecLaunched, SpecArms uint64
	SpecWins, SpecCancels  uint64
	SpecKills, SpecUnfired uint64

	Violations []Violation

	// Report is the canonical textual summary; Fingerprint is its FNV-64a
	// hash, the byte-identity check for reproductions.
	Report      string
	Fingerprint uint64

	// FlightDump is the flight recorder's last-N report, populated only
	// when the run failed. It is deliberately NOT part of Report: the dump
	// is deterministic too, but keeping it out preserves fingerprint
	// stability across recorder-coverage changes.
	FlightDump string
}

// Failed reports whether any invariant fired.
func (res *Result) Failed() bool { return len(res.Violations) > 0 }

// ReproCommand prints the exact command that re-runs this scenario's seed
// standalone. Only meaningful for generated scenarios (Generate(Seed));
// shrunk scenarios are reported inline instead.
func (res *Result) ReproCommand() string {
	return fmt.Sprintf("go run ./cmd/nadino-bench -run fuzz -seed %d -fuzz-seeds 1", res.Scenario.Seed)
}

// Run builds the scenario's world, drives it to quiesce under the periodic
// checkers, then runs the final checkers. Panics anywhere inside the
// simulation are converted into a "panic" violation so a sweep survives a
// crashing seed and still reports it.
func Run(sc Scenario) *Result {
	res := &Result{Scenario: sc}
	var r *Rig
	var panicDetail string
	func() {
		defer func() {
			if p := recover(); p != nil {
				panicDetail = fmt.Sprint(p)
			}
		}()
		r = NewRig(sc)
		r.lastBusy = make([]time.Duration, len(r.cores))
		invs := Invariants()
		stop := r.eng.Ticker(checkPeriod, func(now time.Duration) {
			for _, inv := range invs {
				if inv.Periodic == nil || r.tripped[inv.Name] {
					continue
				}
				if msg := inv.Periodic(r, now); msg != "" {
					r.tripped[inv.Name] = true
					r.rec.Record(flightrec.KindInvariant, r.invActor, int64(len(r.violations)), 0)
					r.violations = append(r.violations, Violation{At: now, Invariant: inv.Name, Detail: msg})
				}
			}
		})
		r.eng.RunUntil(r.endAt)
		stop()
		r.scraper.Stop()
		for _, inv := range invs {
			if inv.Final == nil {
				continue
			}
			for _, msg := range inv.Final(r) {
				r.rec.Record(flightrec.KindInvariant, r.invActor, int64(len(r.violations)), 0)
				r.violations = append(r.violations,
					Violation{At: r.eng.Now(), Invariant: inv.Name, Detail: msg})
			}
		}
	}()
	if r != nil {
		res.Violations = append(res.Violations, r.violations...)
		for _, tr := range r.tenants {
			res.Issued += tr.issued
			res.Completed += tr.completed
			res.Shed += tr.shed
			res.InFlight += tr.inFlight()
			if tr.spec != nil {
				st := tr.spec.Stats()
				res.SpecLaunched += st.Launched
				res.SpecArms += st.Arms
				res.SpecWins += st.Wins()
				res.SpecCancels += st.Cancels
				res.SpecKills += st.Kills
				res.SpecUnfired += tr.specUnfired
			}
		}
		for _, nr := range r.nodes {
			_, _, noRoute, noPort, _ := nr.eng.Stats()
			retried, dropped := nr.eng.RetryStats()
			res.Drops += noRoute + noPort + dropped
			res.Retried += retried
			if nr.gw != nil {
				s := nr.gw.Stats()
				res.Drops += s.Dropped
				res.Forwarded += s.Forwarded
			}
		}
		res.FaultsApplied = r.inj.Applied()
		res.FaultsReverted = r.inj.Reverted()
		res.AuditOps = r.auditOps
	}
	if panicDetail != "" {
		at := time.Duration(0)
		if r != nil {
			at = r.eng.Now()
		}
		res.Violations = append(res.Violations, Violation{At: at, Invariant: "panic", Detail: panicDetail})
	}
	if r != nil && len(res.Violations) > 0 {
		res.FlightDump = flightrec.TextDump(r.rec, 64)
	}
	res.Report = res.render()
	res.Fingerprint = fingerprint(res.Report)
	return res
}

// render builds the canonical report text. Everything in it is derived from
// deterministic simulation state, so it is byte-stable per scenario.
func (res *Result) render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: %s\n", res.Scenario)
	fmt.Fprintf(&b, "issued=%d completed=%d shed=%d in_flight=%d drops=%d retried=%d\n",
		res.Issued, res.Completed, res.Shed, res.InFlight, res.Drops, res.Retried)
	if res.Scenario.Gateways {
		fmt.Fprintf(&b, "gateway forwarded=%d\n", res.Forwarded)
	}
	// Emitted only for speculative scenarios so every historical seed's
	// report — and fingerprint — stays byte-identical.
	if res.Scenario.Speculative() {
		fmt.Fprintf(&b, "spec launched=%d arms=%d wins=%d cancels=%d kills=%d unfired=%d\n",
			res.SpecLaunched, res.SpecArms, res.SpecWins, res.SpecCancels, res.SpecKills, res.SpecUnfired)
	}
	fmt.Fprintf(&b, "faults applied=%d reverted=%d audit_ops=%d\n",
		res.FaultsApplied, res.FaultsReverted, res.AuditOps)
	if len(res.Violations) == 0 {
		b.WriteString("verdict: PASS\n")
	} else {
		fmt.Fprintf(&b, "verdict: FAIL (%d violations)\n", len(res.Violations))
		for _, v := range res.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
	}
	return b.String()
}

func fingerprint(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// violatedNames collects the distinct invariant names that fired.
func (res *Result) violatedNames() map[string]bool {
	m := make(map[string]bool, len(res.Violations))
	for _, v := range res.Violations {
		m[v.Invariant] = true
	}
	return m
}
