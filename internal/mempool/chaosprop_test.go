package mempool_test

// Property tests that push the pool's ownership rules through the whole
// simulated system: cross-tenant Transfer chains interleaved with chaos
// NodeCrash/QPError faults, checked by the simulation fuzzer's invariant
// registry (which audits every pool's accounting at event boundaries and
// requires every buffer home after recovery). The in-package tests cover
// the pool in isolation; these cover it under concurrent data-plane load,
// keeper replenishment and fault recovery.

import (
	"testing"
	"testing/quick"
	"time"

	"nadino/internal/simtest"
)

// chaosScenario derives a fuzz scenario from a quick-generated seed and
// forces the ingredients this property needs: an ownership auditor running
// cross-tenant transfers, plus a NodeCrash and a QPError landing mid-window.
func chaosScenario(seed int64) simtest.Scenario {
	sc := simtest.Generate(seed)
	if sc.Transfers < 16 {
		sc.Transfers = 16 + int(seed&31)
	}
	sc.Faults = append(sc.Faults,
		simtest.FaultSpec{
			Kind: simtest.FaultNodeCrash,
			At:   sc.Load / 4,
			For:  2 * time.Millisecond,
			Node: int(seed) % sc.Nodes,
		},
		simtest.FaultSpec{
			Kind:  simtest.FaultQPError,
			At:    sc.Load / 2,
			Node:  int(seed+1) % sc.Nodes,
			Count: 0, // error every QP on the node
		})
	return sc
}

// TestOwnershipThroughChaosProperty: for any seed, a scenario with forced
// crash/QP faults and cross-tenant transfer chains must pass every
// invariant — per-tick pool audits, exclusive-ownership checks on each
// transfer hop, and full buffer conservation once recovery quiesces.
func TestOwnershipThroughChaosProperty(t *testing.T) {
	count := 6
	if testing.Short() {
		count = 2
	}
	f := func(seedRaw uint16) bool {
		res := simtest.Run(chaosScenario(int64(seedRaw)))
		if res.AuditOps == 0 {
			t.Logf("seed %d: auditor starved (pool squeezed all run)", seedRaw)
		}
		if res.Failed() {
			t.Logf("seed %d failed:\n%s", seedRaw, res.Report)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: count}); err != nil {
		t.Fatal(err)
	}
}

// TestOwnershipChaosDetectsPlantedLeak keeps the property honest: the same
// chaos scenario with the harness's planted leak must fail, and on
// buffer-conservation specifically — proving the invariant (not luck) is
// what passes the clean runs.
func TestOwnershipChaosDetectsPlantedLeak(t *testing.T) {
	sc := chaosScenario(7)
	sc.Defect = simtest.DefectLeakBuffer
	res := simtest.Run(sc)
	if !res.Failed() {
		t.Fatalf("planted leak survived chaos scenario:\n%s", res.Report)
	}
	for _, v := range res.Violations {
		if v.Invariant == "buffer-conservation" {
			return
		}
	}
	t.Fatalf("leak not attributed to buffer-conservation:\n%s", res.Report)
}
