package mempool

import (
	"math/rand"
	"testing"
)

// TestCacheBasics: hits come off the stack, misses refill in half-cache
// batches, Put spills when full, Flush empties, and every cached buffer
// stays owned by the cache's owner in the pool accounting.
func TestCacheBasics(t *testing.T) {
	p := NewPool("t", 4096, 64, 1<<21)
	c := NewCache(p, "fn", 8)

	b, err := c.Get()
	if err != nil {
		t.Fatal(err)
	}
	// Refill batch is size/2 = 4: one delivered, three cached.
	if c.Len() != 3 {
		t.Fatalf("after first Get: %d cached, want 3", c.Len())
	}
	if p.InUse() != 4 {
		t.Fatalf("pool sees %d in use, want 4 (cached buffers stay allocated)", p.InUse())
	}
	if owner, _ := p.OwnerOf(b); owner != "fn" {
		t.Fatalf("delivered buffer owned by %q", owner)
	}
	if err := c.Put(b); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 4 {
		t.Fatalf("after Put: %d cached, want 4", c.Len())
	}
	hits, misses, refills, spills := c.Stats()
	if hits != 0 || misses != 1 || refills != 1 || spills != 0 {
		t.Fatalf("stats = %d/%d/%d/%d, want 0/1/1/0", hits, misses, refills, spills)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || p.InUse() != 0 {
		t.Fatalf("after Flush: %d cached, %d in use", c.Len(), p.InUse())
	}
	if err := p.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestCacheRejectsForeignBuffer: the cache must verify ownership exactly
// like Pool.Put — a buffer owned by another consumer cannot be laundered
// through someone else's cache.
func TestCacheRejectsForeignBuffer(t *testing.T) {
	p := NewPool("t", 4096, 16, 1<<21)
	c := NewCache(p, "fn", 8)
	other, _ := p.Get("intruder")
	if err := c.Put(other); err == nil {
		t.Fatal("cache accepted a buffer it does not own")
	}
	if owner, _ := p.OwnerOf(other); owner != "intruder" {
		t.Fatalf("rejected Put changed ownership to %q", owner)
	}
	// Stale handle: recycle under the true owner, then try the old handle.
	if err := p.Put(other, "intruder"); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(other); err == nil {
		t.Fatal("cache accepted a stale (freed) handle")
	}
}

// TestCacheConservationProperty drives a random Get/Put/Flush trace against
// a cache alongside uncached pool users and checks, at every step, that the
// pool's accounting conserves buffers: free + in-use == size, the cache's
// stack is counted as in-use, ownership audits pass, and after returning
// everything the pool is exactly full again.
func TestCacheConservationProperty(t *testing.T) {
	const size = 96
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := NewPool("t", 1024, size, 1<<21)
		c := NewCache(p, "fn", 16)
		var held []Buffer    // buffers the cached consumer is using
		var foreign []Buffer // buffers a direct pool user holds
		steps := 4000
		for i := 0; i < steps; i++ {
			switch op := rng.Intn(10); {
			case op < 4: // cached Get
				if b, err := c.Get(); err == nil {
					held = append(held, b)
				}
			case op < 7: // cached Put
				if n := len(held); n > 0 {
					j := rng.Intn(n)
					b := held[j]
					held[j] = held[n-1]
					held = held[:n-1]
					if err := c.Put(b); err != nil {
						t.Fatalf("seed %d step %d: cached Put: %v", seed, i, err)
					}
				}
			case op < 8: // direct pool user churns alongside
				if b, err := p.Get("direct"); err == nil {
					foreign = append(foreign, b)
				}
			case op < 9:
				if n := len(foreign); n > 0 {
					b := foreign[n-1]
					foreign = foreign[:n-1]
					if err := p.Put(b, "direct"); err != nil {
						t.Fatalf("seed %d step %d: direct Put: %v", seed, i, err)
					}
				}
			default: // occasional flush (leak-audit barrier)
				if err := c.Flush(); err != nil {
					t.Fatalf("seed %d step %d: Flush: %v", seed, i, err)
				}
			}
			// Conservation: everything is free, held, foreign, or cached.
			if got := p.Free() + p.InUse(); got != size {
				t.Fatalf("seed %d step %d: free %d + inUse %d != %d", seed, i, p.Free(), p.InUse(), got)
			}
			if want := len(held) + len(foreign) + c.Len(); p.InUse() != want {
				t.Fatalf("seed %d step %d: inUse %d != held %d + foreign %d + cached %d",
					seed, i, p.InUse(), len(held), len(foreign), c.Len())
			}
			if err := p.Audit(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, i, err)
			}
		}
		for _, b := range held {
			if err := c.Put(b); err != nil {
				t.Fatal(err)
			}
		}
		for _, b := range foreign {
			if err := p.Put(b, "direct"); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		if p.Free() != size || p.InUse() != 0 {
			t.Fatalf("seed %d: pool not whole after teardown: free %d inUse %d", seed, p.Free(), p.InUse())
		}
	}
}

// TestCacheFastPathZeroAlloc pins the zero-allocation contract on the warm
// Get/Put cycle — the property the per-consumer cache exists for.
func TestCacheFastPathZeroAlloc(t *testing.T) {
	p := NewPool("t", 4096, 64, 1<<21)
	c := NewCache(p, "fn", 16)
	// Warm the stack so the measured cycles never touch the shared pool.
	b, err := c.Get()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(b); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		b, err := c.Get()
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Put(b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Get/Put allocates %.1f objects per cycle, want 0", allocs)
	}
}

// BenchmarkMempoolCachedGetPut measures the warm per-consumer cache cycle
// against the shared pool, the rte_mempool-style fast path. Each op is 128
// Get/Put pairs: at ~8 ns per pair the testing harness's own loop overhead
// is a large and jittery fraction of a single pair, and this benchmark is
// regression-gated (±25% in bench-gate), so the measured unit is batched to
// keep run-to-run noise well inside the gate margin.
func BenchmarkMempoolCachedGetPut(b *testing.B) {
	p := NewPool("t", 4096, 64, 1<<21)
	c := NewCache(p, "fn", 16)
	buf, err := c.Get()
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Put(buf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 128; j++ {
			buf, _ := c.Get()
			if err := c.Put(buf); err != nil {
				b.Fatal(err)
			}
		}
	}
}
