package mempool

// Cache is an rte_mempool-style per-consumer allocation cache: a small
// local stack of buffers in front of the shared free list. A consumer that
// alternates Get and Put touches only the stack — no free-list pushes, no
// generation churn — and refills or flushes in batches when it runs dry or
// overflows, amortizing the shared-pool interaction the way DPDK's
// per-lcore caches amortize the rte_ring.
//
// Ownership auditing is fully preserved: every cached buffer remains owned
// by the cache's owner in the pool's accounting (it was Get-allocated and
// has not been Put back), so Pool.Audit, conservation invariants and
// leak accounting all see cached buffers as in use by this consumer.
// Cache.Put verifies ownership exactly like Pool.Put before accepting a
// buffer, so a caller cannot launder a buffer it does not own through the
// cache. The only observable differences from direct pool calls are the
// ones caches exist for: buffer IDs recirculate locally, and a cached
// recycle does not bump the generation counter (the buffer never became
// free, so there is no use-after-free window to fence).
type Cache struct {
	pool  *Pool
	owner Owner
	size  int // stack high-water mark; refill batch is size/2
	stack []Buffer

	hits, misses   uint64
	refills, spill uint64
}

// NewCache returns a cache of at most size buffers for owner on pool.
func NewCache(pool *Pool, owner Owner, size int) *Cache {
	if owner == NoOwner {
		panic("mempool: cache with empty owner")
	}
	if size <= 0 {
		panic("mempool: non-positive cache size")
	}
	return &Cache{pool: pool, owner: owner, size: size, stack: make([]Buffer, 0, size)}
}

// Owner reports the consumer this cache allocates for.
func (c *Cache) Owner() Owner { return c.owner }

// Len reports currently cached buffers.
func (c *Cache) Len() int { return len(c.stack) }

// Get returns a buffer owned by the cache's owner: from the local stack
// when warm (LIFO, for locality), refilling a half-cache batch from the
// shared pool when dry.
func (c *Cache) Get() (Buffer, error) {
	if n := len(c.stack); n > 0 {
		b := c.stack[n-1]
		c.stack = c.stack[:n-1]
		c.hits++
		return b, nil
	}
	c.misses++
	// Refill size/2 so a Get/Put-balanced consumer oscillates around the
	// middle of the stack instead of thrashing the shared pool at both ends.
	batch := c.size / 2
	if batch < 1 {
		batch = 1
	}
	c.stack = c.stack[:batch]
	n, err := c.pool.GetN(c.owner, c.stack)
	c.stack = c.stack[:n]
	if n == 0 {
		return Buffer{}, err
	}
	c.refills++
	b := c.stack[n-1]
	c.stack = c.stack[:n-1]
	return b, nil
}

// Put recycles a buffer owned by the cache's owner: onto the local stack,
// spilling a half-cache batch to the shared pool when full. Ownership is
// verified before the buffer is accepted.
func (c *Cache) Put(b Buffer) error {
	if err := c.pool.Access(b, c.owner); err != nil {
		return err
	}
	if len(c.stack) >= c.size {
		// Spill the oldest half back to the shared free list.
		keep := c.size / 2
		for _, s := range c.stack[:len(c.stack)-keep] {
			if err := c.pool.Put(s, c.owner); err != nil {
				return err
			}
		}
		copy(c.stack, c.stack[len(c.stack)-keep:])
		c.stack = c.stack[:keep]
		c.spill++
	}
	c.stack = append(c.stack, b)
	return nil
}

// Flush returns every cached buffer to the shared pool (e.g. before a
// leak audit that expects this consumer to hold nothing).
func (c *Cache) Flush() error {
	for _, b := range c.stack {
		if err := c.pool.Put(b, c.owner); err != nil {
			return err
		}
	}
	c.stack = c.stack[:0]
	return nil
}

// Stats reports cache-level counters: stack hits, misses (refills from the
// shared pool), refill batches and spill batches.
func (c *Cache) Stats() (hits, misses, refills, spills uint64) {
	return c.hits, c.misses, c.refills, c.spill
}
