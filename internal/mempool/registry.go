package mempool

import (
	"fmt"
	"sort"
)

// Registry models DPDK's file-prefix namespace on one node (§3.4.1): each
// tenant's shared-memory agent creates a pool under its own prefix, and
// functions attach as secondary processes. Attaching to another tenant's
// prefix is rejected — that is the per-tenant memory isolation boundary.
type Registry struct {
	node  string
	pools map[string]*Pool
}

// NewRegistry returns an empty per-node registry.
func NewRegistry(node string) *Registry {
	return &Registry{node: node, pools: make(map[string]*Pool)}
}

// Node returns the node this registry belongs to.
func (r *Registry) Node() string { return r.node }

// CreatePool is invoked by a tenant's shared-memory agent (the DPDK primary
// process). The prefix doubles as the tenant identity.
func (r *Registry) CreatePool(prefix string, bufSize, n, pageSize int) (*Pool, error) {
	if _, ok := r.pools[prefix]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDoubleCreate, prefix)
	}
	p := NewPool(prefix, bufSize, n, pageSize)
	r.pools[prefix] = p
	return p, nil
}

// Attach maps a function (DPDK secondary process) into the pool under
// prefix. The caller's tenant credential must match the pool's tenant.
func (r *Registry) Attach(prefix, callerTenant string) (*Pool, error) {
	p, ok := r.pools[prefix]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoPool, prefix)
	}
	if p.tenant != callerTenant {
		return nil, fmt.Errorf("%w: %q cannot attach to pool %q", ErrWrongTenant, callerTenant, prefix)
	}
	return p, nil
}

// Pool returns the pool for prefix without a tenancy check — used by the
// trusted DNE, which maps every tenant pool via DOCA mmap (§3.4.2).
func (r *Registry) Pool(prefix string) (*Pool, bool) {
	p, ok := r.pools[prefix]
	return p, ok
}

// Prefixes lists registered pool prefixes in sorted order.
func (r *Registry) Prefixes() []string {
	out := make([]string, 0, len(r.pools))
	for k := range r.pools {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TotalHugepages reports the hugepages backing all pools on the node.
func (r *Registry) TotalHugepages() int {
	total := 0
	for _, p := range r.pools {
		total += p.Hugepages()
	}
	return total
}
