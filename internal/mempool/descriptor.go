package mempool

import (
	"time"

	"nadino/internal/trace"
)

// Descriptor is the 16-byte buffer descriptor exchanged over NADINO's data
// plane (§3.5.4): intra-node via SK_MSG, host<->DPU via Comch, and embedded
// in RDMA work requests for inter-node hops. Ownership of the descriptor is
// ownership of the buffer it points to.
//
// The trailing fields (Stamp, Ctx) are simulation bookkeeping and do not
// count toward the modeled 16 bytes.
type Descriptor struct {
	Tenant string // owning tenant / pool prefix
	Buf    Buffer // pooled buffer handle
	Len    int    // payload length in bytes
	Src    string // producing function ID
	Dst    string // destination function ID
	Seq    uint64 // per-flow sequence number

	// TenantID and DstID are interned routing hints: the stamping engine's
	// dense tenant/function IDs plus one, with zero meaning "unresolved —
	// fall back to the string fields". They are engine-local (assigned at
	// registration time, never carried across the wire: the receiver
	// re-stamps TenantID when it posts the landing buffer), and exist so
	// the per-request data path does slice indexing instead of string-map
	// lookups. Simulation bookkeeping, not part of the modeled 16 bytes.
	TenantID int32
	DstID    int32

	Stamp time.Duration // creation time (latency accounting)
	Ctx   any           // opaque request context carried end to end
	// Trace is the request trace this descriptor belongs to; nil (the
	// common case) disables all span recording along its path.
	Trace *trace.Req
	// Retries counts data-plane retransmissions of this descriptor after
	// transport errors (engine-level at-least-once recovery).
	Retries uint8
	// Hops counts inter-gateway relays (TTL): bumped per transit forward,
	// fencing transient routing loops during failover.
	Hops uint8
	// Spec is the speculation cancellation probe, non-nil only on the
	// request legs of cloned/hedged requests. Carriers call it at their
	// drop-decision points (scheduler dequeue, TX issue, function dequeue);
	// a true return means the request's group already completed elsewhere —
	// the carrier must kill this clone, recycling the buffer and returning
	// whatever credits or WR state it holds at that stage. The probe itself
	// performs the group-side bookkeeping for the kill, so carriers must
	// call it at most once per descriptor death. Simulation bookkeeping,
	// not part of the modeled 16 bytes.
	Spec func() bool
}
