// Package mempool models NADINO's unified shared-memory subsystem (§3.4):
// per-tenant pools of fixed-size, hugepage-backed buffers with pool-based
// allocation/recycling (the DPDK rte_mempool role) and exclusive-ownership
// buffer lifecycle (§3.5.1).
//
// Ownership is enforced, not advisory: Get/Transfer/Put validate the caller
// and return errors on violations, so the lock-free invariants the paper
// relies on are machine-checked throughout the simulation.
package mempool

import (
	"errors"
	"fmt"
)

// Owner identifies the holder of a buffer: a function, the DNE, the RNIC
// (while a transfer is in flight), or an ingress worker.
type Owner string

// NoOwner marks a free buffer.
const NoOwner Owner = ""

// Buffer is a handle to one pooled buffer. The generation counter catches
// use-after-free: a stale handle no longer matches the pool's record.
type Buffer struct {
	ID  int32
	Gen uint32
}

// Common error conditions.
var (
	ErrExhausted    = errors.New("mempool: pool exhausted")
	ErrNotOwner     = errors.New("mempool: caller does not own buffer")
	ErrStaleBuffer  = errors.New("mempool: stale buffer handle (use after free)")
	ErrBadBuffer    = errors.New("mempool: buffer handle out of range")
	ErrWrongTenant  = errors.New("mempool: tenant mismatch")
	ErrDoubleCreate = errors.New("mempool: pool already exists for prefix")
	ErrNoPool       = errors.New("mempool: no pool for prefix")
)

// Pool is a fixed-size pool of equal-size buffers owned by one tenant.
type Pool struct {
	tenant   string
	bufSize  int
	n        int
	pageSize int

	free  []int32
	owner []Owner
	gen   []uint32

	inUse int
	peak  int
	gets  uint64
	puts  uint64
}

// NewPool creates a pool of n buffers of bufSize bytes for the tenant,
// backed by hugepages of pageSize bytes.
func NewPool(tenant string, bufSize, n, pageSize int) *Pool {
	if bufSize <= 0 || n <= 0 || pageSize <= 0 {
		panic("mempool: non-positive pool dimensions")
	}
	p := &Pool{
		tenant:   tenant,
		bufSize:  bufSize,
		n:        n,
		pageSize: pageSize,
		free:     make([]int32, n),
		owner:    make([]Owner, n),
		gen:      make([]uint32, n),
	}
	for i := range p.free {
		p.free[i] = int32(n - 1 - i) // pop from the end => ascending IDs first
	}
	return p
}

// Tenant returns the owning tenant (the DPDK file-prefix in the paper).
func (p *Pool) Tenant() string { return p.tenant }

// BufSize returns the per-buffer size in bytes.
func (p *Pool) BufSize() int { return p.bufSize }

// Size returns the number of buffers in the pool.
func (p *Pool) Size() int { return p.n }

// Hugepages reports how many hugepages back this pool — what the RNIC's
// memory translation table must cache (§3.4: hugepages shrink the MTT).
func (p *Pool) Hugepages() int {
	total := p.bufSize * p.n
	return (total + p.pageSize - 1) / p.pageSize
}

// Get allocates a free buffer to owner.
func (p *Pool) Get(owner Owner) (Buffer, error) {
	if owner == NoOwner {
		return Buffer{}, fmt.Errorf("mempool: %w: empty owner", ErrNotOwner)
	}
	if len(p.free) == 0 {
		return Buffer{}, ErrExhausted
	}
	id := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.owner[id] = owner
	p.inUse++
	p.gets++
	if p.inUse > p.peak {
		p.peak = p.inUse
	}
	return Buffer{ID: id, Gen: p.gen[id]}, nil
}

// GetN allocates up to len(out) free buffers to owner, filling out from the
// front, and reports how many it delivered. Buffers come off the free list
// in exactly the order repeated Get calls would return them, so batched and
// one-at-a-time replenish paths hand out identical buffer sequences.
func (p *Pool) GetN(owner Owner, out []Buffer) (int, error) {
	if owner == NoOwner {
		return 0, fmt.Errorf("mempool: %w: empty owner", ErrNotOwner)
	}
	n := len(out)
	if n > len(p.free) {
		n = len(p.free)
	}
	for i := 0; i < n; i++ {
		id := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		p.owner[id] = owner
		out[i] = Buffer{ID: id, Gen: p.gen[id]}
	}
	p.inUse += n
	p.gets += uint64(n)
	if p.inUse > p.peak {
		p.peak = p.inUse
	}
	if n == 0 {
		return 0, ErrExhausted
	}
	return n, nil
}

func (p *Pool) check(b Buffer) error {
	if b.ID < 0 || int(b.ID) >= p.n {
		return ErrBadBuffer
	}
	if p.gen[b.ID] != b.Gen {
		return ErrStaleBuffer
	}
	return nil
}

// OwnerOf reports the current owner of b.
func (p *Pool) OwnerOf(b Buffer) (Owner, error) {
	if err := p.check(b); err != nil {
		return NoOwner, err
	}
	return p.owner[b.ID], nil
}

// Transfer hands exclusive ownership of b from one owner to another — the
// token-passing primitive of §3.5.1.
func (p *Pool) Transfer(b Buffer, from, to Owner) error {
	if err := p.check(b); err != nil {
		return err
	}
	if p.owner[b.ID] != from {
		return fmt.Errorf("%w: buffer %d owned by %q, not %q", ErrNotOwner, b.ID, p.owner[b.ID], from)
	}
	if to == NoOwner {
		return fmt.Errorf("mempool: %w: transfer to empty owner", ErrNotOwner)
	}
	p.owner[b.ID] = to
	return nil
}

// Put recycles b back to the free list. Only the current owner may release.
func (p *Pool) Put(b Buffer, owner Owner) error {
	if err := p.check(b); err != nil {
		return err
	}
	if p.owner[b.ID] != owner {
		return fmt.Errorf("%w: buffer %d owned by %q, not %q", ErrNotOwner, b.ID, p.owner[b.ID], owner)
	}
	p.owner[b.ID] = NoOwner
	p.gen[b.ID]++
	p.free = append(p.free, b.ID)
	p.inUse--
	p.puts++
	return nil
}

// Access validates that owner may touch b (read or write). It models the
// exclusive-ownership rule: "only the buffer owner can read, write, or
// recycle the buffer" (§3.5.1).
func (p *Pool) Access(b Buffer, owner Owner) error {
	if err := p.check(b); err != nil {
		return err
	}
	if p.owner[b.ID] != owner {
		return fmt.Errorf("%w: access to buffer %d by %q, owner %q", ErrNotOwner, b.ID, owner, p.owner[b.ID])
	}
	return nil
}

// Audit cross-checks the pool's internal accounting: the free list and the
// ownership table must partition the buffers exactly (no buffer both free
// and owned, no owned count drifting from InUse, no duplicate free-list
// entries). The simulation fuzzer calls this at event boundaries — a
// failure here means the pool itself corrupted its invariants, not that a
// caller misused a handle.
func (p *Pool) Audit() error {
	if p.inUse < 0 || p.inUse > p.n {
		return fmt.Errorf("mempool: inUse %d outside [0,%d]", p.inUse, p.n)
	}
	if len(p.free)+p.inUse != p.n {
		return fmt.Errorf("mempool: free %d + inUse %d != size %d", len(p.free), p.inUse, p.n)
	}
	onFree := make([]bool, p.n)
	for _, id := range p.free {
		if id < 0 || int(id) >= p.n {
			return fmt.Errorf("mempool: free-list entry %d out of range", id)
		}
		if onFree[id] {
			return fmt.Errorf("mempool: buffer %d on free list twice", id)
		}
		onFree[id] = true
	}
	owned := 0
	for id, o := range p.owner {
		if o != NoOwner {
			owned++
			if onFree[id] {
				return fmt.Errorf("mempool: buffer %d owned by %q but on free list", id, o)
			}
		} else if !onFree[id] {
			return fmt.Errorf("mempool: buffer %d unowned but not free", id)
		}
	}
	if owned != p.inUse {
		return fmt.Errorf("mempool: %d owned buffers but inUse %d", owned, p.inUse)
	}
	return nil
}

// InUse reports currently allocated buffers.
func (p *Pool) InUse() int { return p.inUse }

// Peak reports the high-water mark of allocated buffers.
func (p *Pool) Peak() int { return p.peak }

// Free reports currently free buffers.
func (p *Pool) Free() int { return len(p.free) }

// Stats reports lifetime gets and puts.
func (p *Pool) Stats() (gets, puts uint64) { return p.gets, p.puts }
