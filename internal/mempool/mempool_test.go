package mempool

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestPool(t *testing.T) *Pool {
	t.Helper()
	return NewPool("tenant_1", 4096, 64, 2<<20)
}

func TestGetPutCycle(t *testing.T) {
	p := newTestPool(t)
	b, err := p.Get("fn:a")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := p.OwnerOf(b); got != "fn:a" {
		t.Fatalf("owner = %q", got)
	}
	if p.InUse() != 1 {
		t.Fatalf("inUse = %d", p.InUse())
	}
	if err := p.Put(b, "fn:a"); err != nil {
		t.Fatal(err)
	}
	if p.InUse() != 0 || p.Free() != 64 {
		t.Fatalf("inUse=%d free=%d after put", p.InUse(), p.Free())
	}
}

func TestExhaustion(t *testing.T) {
	p := NewPool("t", 64, 2, 2<<20)
	if _, err := p.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get("a"); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
}

func TestTransferEnforcesOwnership(t *testing.T) {
	p := newTestPool(t)
	b, _ := p.Get("fn:a")
	if err := p.Transfer(b, "fn:b", "fn:c"); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("transfer by non-owner: err = %v", err)
	}
	if err := p.Transfer(b, "fn:a", "fn:b"); err != nil {
		t.Fatal(err)
	}
	// Old owner can no longer access, release or re-transfer.
	if err := p.Access(b, "fn:a"); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("stale owner access: err = %v", err)
	}
	if err := p.Put(b, "fn:a"); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("stale owner put: err = %v", err)
	}
	if err := p.Put(b, "fn:b"); err != nil {
		t.Fatal(err)
	}
}

func TestUseAfterFreeDetected(t *testing.T) {
	p := newTestPool(t)
	b, _ := p.Get("fn:a")
	if err := p.Put(b, "fn:a"); err != nil {
		t.Fatal(err)
	}
	if err := p.Access(b, "fn:a"); !errors.Is(err, ErrStaleBuffer) {
		t.Fatalf("use after free: err = %v", err)
	}
	// Reallocation reuses the slot with a bumped generation; the old
	// handle must stay dead even though the ID matches.
	b2, _ := p.Get("fn:b")
	for b2.ID != b.ID {
		b2, _ = p.Get("fn:b")
	}
	if err := p.Access(b, "fn:a"); !errors.Is(err, ErrStaleBuffer) {
		t.Fatalf("stale handle revived: err = %v", err)
	}
	if err := p.Access(b2, "fn:b"); err != nil {
		t.Fatal(err)
	}
}

func TestBadHandleRange(t *testing.T) {
	p := newTestPool(t)
	if _, err := p.OwnerOf(Buffer{ID: 1000}); !errors.Is(err, ErrBadBuffer) {
		t.Fatalf("err = %v", err)
	}
	if _, err := p.OwnerOf(Buffer{ID: -1}); !errors.Is(err, ErrBadBuffer) {
		t.Fatalf("err = %v", err)
	}
}

func TestHugepageAccounting(t *testing.T) {
	p := NewPool("t", 4096, 1024, 2<<20) // 4 MB of buffers on 2 MB pages
	if got := p.Hugepages(); got != 2 {
		t.Fatalf("hugepages = %d, want 2", got)
	}
	p2 := NewPool("t", 4096, 1, 2<<20)
	if got := p2.Hugepages(); got != 1 {
		t.Fatalf("hugepages = %d, want 1", got)
	}
}

func TestRegistryTenantIsolation(t *testing.T) {
	r := NewRegistry("node1")
	if _, err := r.CreatePool("tenant_1", 4096, 16, 2<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreatePool("tenant_1", 4096, 16, 2<<20); !errors.Is(err, ErrDoubleCreate) {
		t.Fatalf("duplicate create: err = %v", err)
	}
	if _, err := r.Attach("tenant_1", "tenant_1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Attach("tenant_1", "tenant_2"); !errors.Is(err, ErrWrongTenant) {
		t.Fatalf("cross-tenant attach: err = %v", err)
	}
	if _, err := r.Attach("nope", "tenant_1"); !errors.Is(err, ErrNoPool) {
		t.Fatalf("missing pool: err = %v", err)
	}
}

func TestRegistryPrefixesSorted(t *testing.T) {
	r := NewRegistry("node1")
	for _, pfx := range []string{"zeta", "alpha", "mid"} {
		if _, err := r.CreatePool(pfx, 64, 4, 2<<20); err != nil {
			t.Fatal(err)
		}
	}
	got := r.Prefixes()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prefixes = %v", got)
		}
	}
	if r.TotalHugepages() != 3 {
		t.Fatalf("total hugepages = %d", r.TotalHugepages())
	}
}

// Property: under random valid Get/Transfer/Put sequences the pool conserves
// buffers (inUse + free == n), never double-allocates, and every live buffer
// has exactly one owner.
func TestOwnershipConservationProperty(t *testing.T) {
	f := func(seed int64, opsRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := int(opsRaw%500) + 50
		const n = 32
		p := NewPool("t", 256, n, 2<<20)
		owners := []Owner{"a", "b", "c", "dne"}
		type live struct {
			b Buffer
			o Owner
		}
		var lives []live
		for i := 0; i < ops; i++ {
			switch rng.Intn(3) {
			case 0: // get
				o := owners[rng.Intn(len(owners))]
				b, err := p.Get(o)
				if err != nil {
					if !errors.Is(err, ErrExhausted) || len(lives) != n {
						return false
					}
					continue
				}
				lives = append(lives, live{b, o})
			case 1: // transfer
				if len(lives) == 0 {
					continue
				}
				k := rng.Intn(len(lives))
				to := owners[rng.Intn(len(owners))]
				if err := p.Transfer(lives[k].b, lives[k].o, to); err != nil {
					return false
				}
				lives[k].o = to
			case 2: // put
				if len(lives) == 0 {
					continue
				}
				k := rng.Intn(len(lives))
				if err := p.Put(lives[k].b, lives[k].o); err != nil {
					return false
				}
				lives[k] = lives[len(lives)-1]
				lives = lives[:len(lives)-1]
			}
			if p.InUse()+p.Free() != n || p.InUse() != len(lives) {
				return false
			}
		}
		// Every tracked live buffer must still report its tracked owner.
		for _, l := range lives {
			got, err := p.OwnerOf(l.b)
			if err != nil || got != l.o {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: generation counters make any freed handle permanently invalid.
func TestStaleHandleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewPool("t", 64, 8, 2<<20)
		var freed []Buffer
		for i := 0; i < 100; i++ {
			b, err := p.Get("x")
			if err != nil {
				return false
			}
			if rng.Intn(2) == 0 {
				if p.Put(b, "x") != nil {
					return false
				}
				freed = append(freed, b)
			} else {
				if p.Transfer(b, "x", "y") != nil || p.Put(b, "y") != nil {
					return false
				}
				freed = append(freed, b)
			}
		}
		for _, b := range freed {
			if err := p.Access(b, "x"); !errors.Is(err, ErrStaleBuffer) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
