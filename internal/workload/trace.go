package workload

import (
	"fmt"
	"math"
	"time"

	"nadino/internal/sim"
)

// TraceGen synthesizes a production-like invocation trace: Poisson arrivals
// whose rate follows a diurnal curve, spread over chains with Zipf-skewed
// popularity — the shape of real FaaS traces (cf. the Azure Functions
// characterization) that locality-oblivious placement has to serve (§2).
type TraceGen struct {
	// Chains are the invocable targets, most popular first.
	Chains []string
	// ZipfS is the popularity skew exponent (1.0 ~= classic Zipf; 0 =
	// uniform).
	ZipfS float64
	// BaseRPS is the mean aggregate invocation rate.
	BaseRPS float64
	// DiurnalAmplitude in [0,1) modulates the rate sinusoidally:
	// rate(t) = BaseRPS * (1 + A*sin(2*pi*t/Period)).
	DiurnalAmplitude float64
	// Period is the diurnal cycle length (compressed in simulations).
	Period time.Duration

	weights []float64
	totalW  float64
}

// prepare builds the Zipf popularity weights.
func (g *TraceGen) prepare() {
	if len(g.Chains) == 0 {
		panic("workload: trace needs at least one chain")
	}
	if g.Period <= 0 {
		g.Period = time.Minute
	}
	g.weights = make([]float64, len(g.Chains))
	g.totalW = 0
	for i := range g.Chains {
		w := 1.0 / math.Pow(float64(i+1), g.ZipfS)
		g.weights[i] = w
		g.totalW += w
	}
}

// Rate reports the target aggregate rate at virtual time t.
func (g *TraceGen) Rate(t time.Duration) float64 {
	phase := 2 * math.Pi * float64(t) / float64(g.Period)
	r := g.BaseRPS * (1 + g.DiurnalAmplitude*math.Sin(phase))
	if r < 0 {
		return 0
	}
	return r
}

// pick draws a chain by Zipf popularity.
func (g *TraceGen) pick(u float64) string {
	target := u * g.totalW
	for i, w := range g.weights {
		target -= w
		if target <= 0 {
			return g.Chains[i]
		}
	}
	return g.Chains[len(g.Chains)-1]
}

// Start launches the generator on eng: submit is invoked (process context)
// once per invocation with the chosen chain. Returns a per-chain counter
// map that fills as the trace plays.
func (g *TraceGen) Start(eng *sim.Engine) (counts map[string]*uint64, submitHook func(func(chain string))) {
	g.prepare()
	counts = make(map[string]*uint64, len(g.Chains))
	for _, ch := range g.Chains {
		var v uint64
		counts[ch] = &v
	}
	var submit func(string)
	submitHook = func(fn func(chain string)) { submit = fn }
	eng.Spawn("trace-gen", func(pr *sim.Proc) {
		rng := eng.Rand()
		for {
			rate := g.Rate(pr.Now())
			if rate <= 0 {
				pr.Sleep(g.Period / 100)
				continue
			}
			// Poisson arrivals: exponential inter-arrival gaps.
			gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
			if gap > g.Period {
				gap = g.Period
			}
			pr.Sleep(gap)
			chain := g.pick(rng.Float64())
			*counts[chain]++
			if submit != nil {
				submit(chain)
			}
		}
	})
	return counts, submitHook
}

// String describes the trace.
func (g *TraceGen) String() string {
	return fmt.Sprintf("trace{%d chains, zipf=%.2f, base=%.0f rps, diurnal=%.0f%%/%v}",
		len(g.Chains), g.ZipfS, g.BaseRPS, 100*g.DiurnalAmplitude, g.Period)
}
