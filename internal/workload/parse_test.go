package workload

import (
	"strings"
	"testing"
	"time"

	"nadino/internal/sim"
)

func TestParseTraceBasic(t *testing.T) {
	in := `# recorded 2-chain trace
0,checkout
12.5,checkout,3

250,browse
`
	rp, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Arrival{
		{At: 0, Chain: "checkout", Count: 1},
		{At: 12500 * time.Nanosecond, Chain: "checkout", Count: 3},
		{At: 250 * time.Microsecond, Chain: "browse", Count: 1},
	}
	if len(rp.Arrivals) != len(want) {
		t.Fatalf("got %d arrivals, want %d", len(rp.Arrivals), len(want))
	}
	for i, a := range rp.Arrivals {
		if a != want[i] {
			t.Fatalf("arrival %d = %+v, want %+v", i, a, want[i])
		}
	}
	if rp.Total() != 5 {
		t.Fatalf("total = %d", rp.Total())
	}
	if got := rp.Chains(); len(got) != 2 || got[0] != "checkout" || got[1] != "browse" {
		t.Fatalf("chains = %v", got)
	}
}

func TestParseTraceRejects(t *testing.T) {
	for _, tc := range []struct{ name, in string }{
		{"missing chain", "10\n"},
		{"too many fields", "10,a,1,2,50,extra\n"},
		{"bad clone", "10,a,1,extra\n"},
		{"negative clone", "10,a,1,-1\n"},
		{"huge clone", "10,a,1,1000\n"},
		{"bad hedge", "10,a,1,2,soon\n"},
		{"nan hedge", "10,a,1,2,nan\n"},
		{"negative hedge", "10,a,1,2,-50\n"},
		{"bad timestamp", "ten,a\n"},
		{"negative timestamp", "-1,a\n"},
		{"nan timestamp", "nan,a\n"},
		{"time travel", "10,a\n5,b\n"},
		{"empty chain", "10,\n"},
		{"chain with space", "10,a b\n"},
		{"zero count", "10,a,0\n"},
		{"negative count", "10,a,-2\n"},
		{"huge count", "10,a,100000000\n"},
	} {
		if _, err := ParseTrace(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.in)
		}
	}
}

func TestReplayRoundTrip(t *testing.T) {
	in := "0,a,2\n0,b\n99.25,a\n1000,c,7\n"
	rp, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseTrace(strings.NewReader(rp.String()))
	if err != nil {
		t.Fatalf("canonical form rejected: %v\n%s", err, rp.String())
	}
	if rp.String() != again.String() {
		t.Fatalf("canonical form not stable:\n%s\nvs\n%s", rp.String(), again.String())
	}
}

// TestParseTraceSpeculative pins the speculation fields: clone factors and
// hedge deadlines parse, plain lines leave both zero, and the canonical
// rendering keeps the historical 3-field form for non-speculative arrivals
// while round-tripping speculative ones exactly.
func TestParseTraceSpeculative(t *testing.T) {
	in := "0,a,2\n10,a,1,3\n20,b,1,0,250\n30,b,4,2,62.5\n"
	rp, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Arrival{
		{At: 0, Chain: "a", Count: 2},
		{At: 10 * time.Microsecond, Chain: "a", Count: 1, Clone: 3},
		{At: 20 * time.Microsecond, Chain: "b", Count: 1, Hedge: 250 * time.Microsecond},
		{At: 30 * time.Microsecond, Chain: "b", Count: 4, Clone: 2, Hedge: 62500 * time.Nanosecond},
	}
	for i, a := range rp.Arrivals {
		if a != want[i] {
			t.Fatalf("arrival %d = %+v, want %+v", i, a, want[i])
		}
	}
	canon := rp.String()
	if strings.Contains(strings.Split(canon, "\n")[0], ",0,") {
		t.Fatalf("plain arrival rendered with speculation fields: %q", canon)
	}
	again, err := ParseTrace(strings.NewReader(canon))
	if err != nil {
		t.Fatalf("canonical form rejected: %v\n%s", err, canon)
	}
	for i, a := range again.Arrivals {
		if a != rp.Arrivals[i] {
			t.Fatalf("round trip changed arrival %d: %+v vs %+v", i, a, rp.Arrivals[i])
		}
	}
	// Shifting moves only time, never the speculation overrides.
	sh := rp.Shifted(time.Millisecond)
	if sh.Arrivals[3].Clone != 2 || sh.Arrivals[3].Hedge != 62500*time.Nanosecond {
		t.Fatalf("Shifted dropped speculation fields: %+v", sh.Arrivals[3])
	}
}

func TestReplayShifted(t *testing.T) {
	rp, err := ParseTrace(strings.NewReader("0,a\n100,b,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	sh := rp.Shifted(time.Millisecond)
	want := []Arrival{
		{At: time.Millisecond, Chain: "a", Count: 1},
		{At: time.Millisecond + 100*time.Microsecond, Chain: "b", Count: 2},
	}
	for i, a := range sh.Arrivals {
		if a != want[i] {
			t.Fatalf("shifted arrival %d = %+v, want %+v", i, a, want[i])
		}
	}
	if rp.Arrivals[0].At != 0 {
		t.Fatal("Shifted mutated the original replay")
	}
}

func TestReplayStart(t *testing.T) {
	rp, err := ParseTrace(strings.NewReader("0,a\n100,b,2\n100,a\n500,a\n"))
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(1)
	counts, hook := rp.Start(eng)
	var order []string
	var stamps []time.Duration
	hook(func(chain string) {
		order = append(order, chain)
		stamps = append(stamps, eng.Now())
	})
	eng.RunUntil(time.Millisecond)
	if got := strings.Join(order, ""); got != "abbaa" {
		t.Fatalf("submit order = %q", got)
	}
	if *counts["a"] != 3 || *counts["b"] != 2 {
		t.Fatalf("counts a=%d b=%d", *counts["a"], *counts["b"])
	}
	for i, at := range []time.Duration{0, 100 * time.Microsecond, 100 * time.Microsecond,
		100 * time.Microsecond, 500 * time.Microsecond} {
		if stamps[i] != at {
			t.Fatalf("arrival %d at %v, want %v", i, stamps[i], at)
		}
	}
}

// FuzzParseTrace hammers the parser with arbitrary bytes. Properties: never
// panic; on accept, the canonical rendering must itself parse, and
// canonicalization must be idempotent (one float truncation step is allowed
// between the raw input and its first canonical form, none after).
func FuzzParseTrace(f *testing.F) {
	f.Add("0,checkout\n")
	f.Add("# comment\n\n12.5,browse,3\n12.5,browse\n900,checkout,2\n")
	f.Add("1e3,a\n1e6,b,1000\n")
	f.Add("0.0015,x\n")
	f.Add("10,a,1,extra\n")
	f.Add("0,a,1,3\n5,b,2,0,250\n10,c,1,2,62.5\n")
	f.Add("0,a,1,0,0\n1,b,1,1,0\n")
	f.Add("7,a,1,-1\n8,b,1,2,nan\n")
	f.Add("nan,a\n")
	f.Add(strings.Repeat("5,ab\n", 200))
	f.Fuzz(func(t *testing.T, in string) {
		rp, err := ParseTrace(strings.NewReader(in))
		if err != nil {
			return
		}
		canon := rp.String()
		rp2, err := ParseTrace(strings.NewReader(canon))
		if err != nil {
			t.Fatalf("canonical form rejected: %v\ninput: %q\ncanon: %q", err, in, canon)
		}
		if again := rp2.String(); again != canon {
			t.Fatalf("canonicalization not idempotent:\nfirst:  %q\nsecond: %q", canon, again)
		}
		if rp2.Total() != rp.Total() || len(rp2.Arrivals) != len(rp.Arrivals) {
			t.Fatalf("round trip changed shape: %d/%d arrivals, %d/%d total",
				len(rp.Arrivals), len(rp2.Arrivals), rp.Total(), rp2.Total())
		}
	})
}
