package workload

import (
	"math"
	"testing"
	"time"

	"nadino/internal/sim"
)

func TestTraceZipfPopularity(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	g := &TraceGen{
		Chains:  []string{"a", "b", "c", "d"},
		ZipfS:   1.0,
		BaseRPS: 20000,
		Period:  time.Second,
	}
	counts, _ := g.Start(eng)
	eng.RunUntil(2 * time.Second)
	total := uint64(0)
	for _, v := range counts {
		total += *v
	}
	if total < 10000 {
		t.Fatalf("trace produced only %d invocations", total)
	}
	// Zipf s=1 over 4 chains: shares ~ 0.48, 0.24, 0.16, 0.12.
	want := []float64{0.48, 0.24, 0.16, 0.12}
	for i, ch := range g.Chains {
		got := float64(*counts[ch]) / float64(total)
		if math.Abs(got-want[i]) > 0.05 {
			t.Errorf("chain %s share %.3f, want ~%.2f", ch, got, want[i])
		}
	}
	// Popularity must be monotone.
	for i := 1; i < len(g.Chains); i++ {
		if *counts[g.Chains[i]] > *counts[g.Chains[i-1]] {
			t.Errorf("popularity not monotone at %d: %v", i, counts)
		}
	}
}

func TestTraceDiurnalModulation(t *testing.T) {
	eng := sim.NewEngine(2)
	defer eng.Stop()
	g := &TraceGen{
		Chains:           []string{"a"},
		BaseRPS:          10000,
		DiurnalAmplitude: 0.8,
		Period:           time.Second,
	}
	counts, _ := g.Start(eng)
	// Peak quarter [T/8, 3T/8] vs trough quarter [5T/8, 7T/8].
	read := func() uint64 { return *counts["a"] }
	eng.RunUntil(time.Second / 8)
	c0 := read()
	eng.RunUntil(3 * time.Second / 8)
	peak := read() - c0
	eng.RunUntil(5 * time.Second / 8)
	c1 := read()
	eng.RunUntil(7 * time.Second / 8)
	trough := read() - c1
	if peak < trough*2 {
		t.Fatalf("diurnal peak (%d) not well above trough (%d)", peak, trough)
	}
	if got := g.Rate(time.Second / 4); math.Abs(got-18000) > 100 {
		t.Fatalf("peak rate = %v, want ~18000", got)
	}
}

func TestTraceSubmitHook(t *testing.T) {
	eng := sim.NewEngine(3)
	defer eng.Stop()
	g := &TraceGen{Chains: []string{"x"}, BaseRPS: 1000, Period: time.Second}
	_, hook := g.Start(eng)
	var seen int
	hook(func(chain string) {
		if chain != "x" {
			t.Errorf("unexpected chain %q", chain)
		}
		seen++
	})
	eng.RunUntil(100 * time.Millisecond)
	if seen < 50 {
		t.Fatalf("submit hook saw only %d invocations", seen)
	}
}

func TestTraceUniformWhenUnskewed(t *testing.T) {
	eng := sim.NewEngine(4)
	defer eng.Stop()
	g := &TraceGen{Chains: []string{"a", "b"}, ZipfS: 0, BaseRPS: 20000, Period: time.Second}
	counts, _ := g.Start(eng)
	eng.RunUntil(time.Second)
	a, b := float64(*counts["a"]), float64(*counts["b"])
	if ratio := a / b; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("unskewed trace not uniform: %v vs %v", a, b)
	}
}
