package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
	"unicode"

	"nadino/internal/sim"
)

// Arrival is one recorded request arrival: Count requests for Chain at At.
type Arrival struct {
	At    time.Duration
	Chain string
	Count int
}

// Replay is a parsed arrival trace — the recorded-production counterpart of
// TraceGen's synthetic Poisson/Zipf process. Arrivals are non-decreasing in
// time.
type Replay struct {
	Arrivals []Arrival
}

// Parser limits: they bound hostile inputs (the parser is fuzzed) without
// constraining any realistic trace.
const (
	maxTraceLines = 1 << 20   // one million arrivals per file
	maxTraceTus   = 1e15      // ~31 years in µs, far under Duration overflow
	maxTraceCount = 1_000_000 // requests folded into one line
	maxChainName  = 256
)

// ParseTrace reads a replay trace: one `t_us,chain[,count]` arrival per
// line, `#` comments and blank lines ignored. Timestamps are microseconds
// (fractions allowed), must be finite, non-negative and non-decreasing;
// count defaults to 1. Errors carry 1-based line numbers.
func ParseTrace(r io.Reader) (*Replay, error) {
	rp := &Replay{}
	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 0, 64*1024), 64*1024)
	lineNo := 0
	last := time.Duration(-1)
	for scan.Scan() {
		lineNo++
		if lineNo > maxTraceLines {
			return nil, fmt.Errorf("workload: trace exceeds %d lines", maxTraceLines)
		}
		line := strings.TrimSpace(scan.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("workload: line %d: want t_us,chain[,count], got %d fields", lineNo, len(fields))
		}
		tus, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad timestamp: %v", lineNo, err)
		}
		if math.IsNaN(tus) || math.IsInf(tus, 0) || tus < 0 || tus > maxTraceTus {
			return nil, fmt.Errorf("workload: line %d: timestamp %v outside [0,%g]µs", lineNo, tus, float64(maxTraceTus))
		}
		at := time.Duration(tus * float64(time.Microsecond))
		if at < last {
			return nil, fmt.Errorf("workload: line %d: timestamp %v before previous arrival", lineNo, at)
		}
		chain := strings.TrimSpace(fields[1])
		if err := checkChainName(chain); err != nil {
			return nil, fmt.Errorf("workload: line %d: %v", lineNo, err)
		}
		count := 1
		if len(fields) == 3 {
			count, err = strconv.Atoi(strings.TrimSpace(fields[2]))
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad count: %v", lineNo, err)
			}
			if count < 1 || count > maxTraceCount {
				return nil, fmt.Errorf("workload: line %d: count %d outside [1,%d]", lineNo, count, maxTraceCount)
			}
		}
		last = at
		rp.Arrivals = append(rp.Arrivals, Arrival{At: at, Chain: chain, Count: count})
	}
	if err := scan.Err(); err != nil {
		return nil, fmt.Errorf("workload: read trace: %w", err)
	}
	return rp, nil
}

// checkChainName rejects names the trace format cannot round-trip.
func checkChainName(s string) error {
	if s == "" {
		return fmt.Errorf("empty chain name")
	}
	if len(s) > maxChainName {
		return fmt.Errorf("chain name longer than %d bytes", maxChainName)
	}
	for _, r := range s {
		if r == ',' || r == '#' || unicode.IsControl(r) || unicode.IsSpace(r) {
			return fmt.Errorf("chain name %q contains %q", s, r)
		}
	}
	return nil
}

// String renders the replay in canonical trace form — parse(render(rp))
// reproduces rp exactly, which is the parser's fuzz oracle.
func (rp *Replay) String() string {
	var b strings.Builder
	for _, a := range rp.Arrivals {
		fmt.Fprintf(&b, "%s,%s,%d\n",
			strconv.FormatFloat(float64(a.At.Nanoseconds())/1e3, 'g', -1, 64), a.Chain, a.Count)
	}
	return b.String()
}

// Shifted returns a copy of the replay with every arrival delayed by d —
// used to line a recorded schedule up with the start of a measured window.
func (rp *Replay) Shifted(d time.Duration) *Replay {
	out := &Replay{Arrivals: make([]Arrival, len(rp.Arrivals))}
	for i, a := range rp.Arrivals {
		out.Arrivals[i] = Arrival{At: a.At + d, Chain: a.Chain, Count: a.Count}
	}
	return out
}

// Total reports the number of requests in the trace.
func (rp *Replay) Total() int {
	n := 0
	for _, a := range rp.Arrivals {
		n += a.Count
	}
	return n
}

// Duration reports the time of the last arrival.
func (rp *Replay) Duration() time.Duration {
	if len(rp.Arrivals) == 0 {
		return 0
	}
	return rp.Arrivals[len(rp.Arrivals)-1].At
}

// Chains lists the distinct chains in first-appearance order.
func (rp *Replay) Chains() []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range rp.Arrivals {
		if !seen[a.Chain] {
			seen[a.Chain] = true
			out = append(out, a.Chain)
		}
	}
	return out
}

// Start schedules the replay on eng with the same contract as
// TraceGen.Start: per-chain counters plus a submit-hook registrar; the hook
// runs in the replayer's own process at each recorded arrival time.
func (rp *Replay) Start(eng *sim.Engine) (counts map[string]*uint64, submitHook func(func(chain string))) {
	counts = make(map[string]*uint64)
	for _, name := range rp.Chains() {
		counts[name] = new(uint64)
	}
	var submit func(string)
	arrivals := append([]Arrival(nil), rp.Arrivals...)
	eng.Spawn("trace-replay", func(pr *sim.Proc) {
		for _, a := range arrivals {
			if a.At > pr.Now() {
				pr.Sleep(a.At - pr.Now())
			}
			for i := 0; i < a.Count; i++ {
				*counts[a.Chain]++
				if submit != nil {
					submit(a.Chain)
				}
			}
		}
	})
	return counts, func(fn func(chain string)) { submit = fn }
}
