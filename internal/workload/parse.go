package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
	"unicode"

	"nadino/internal/sim"
)

// Arrival is one recorded request arrival: Count requests for Chain at At.
// Clone and Hedge are optional per-arrival speculation overrides (recorded
// traces can carry the production tail-cutting policy): Clone > 0 forces
// that clone factor, Hedge > 0 forces a hedged retry with that deadline.
type Arrival struct {
	At    time.Duration
	Chain string
	Count int
	Clone int
	Hedge time.Duration
}

// Speculative reports whether the arrival carries speculation overrides.
func (a Arrival) Speculative() bool { return a.Clone > 0 || a.Hedge > 0 }

// Replay is a parsed arrival trace — the recorded-production counterpart of
// TraceGen's synthetic Poisson/Zipf process. Arrivals are non-decreasing in
// time.
type Replay struct {
	Arrivals []Arrival
}

// Parser limits: they bound hostile inputs (the parser is fuzzed) without
// constraining any realistic trace.
const (
	maxTraceLines = 1 << 20   // one million arrivals per file
	maxTraceTus   = 1e15      // ~31 years in µs, far under Duration overflow
	maxTraceCount = 1_000_000 // requests folded into one line
	maxChainName  = 256
	maxTraceClone = 64 // clone factors past this are trace corruption, not policy
)

// ParseTrace reads a replay trace: one `t_us,chain[,count[,clone[,hedge_us]]]`
// arrival per line, `#` comments and blank lines ignored. Timestamps are
// microseconds (fractions allowed), must be finite, non-negative and
// non-decreasing; count defaults to 1. The optional clone factor and hedge
// deadline (microseconds) default to 0 — no speculation override. Errors
// carry 1-based line numbers.
func ParseTrace(r io.Reader) (*Replay, error) {
	rp := &Replay{}
	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 0, 64*1024), 64*1024)
	lineNo := 0
	last := time.Duration(-1)
	for scan.Scan() {
		lineNo++
		if lineNo > maxTraceLines {
			return nil, fmt.Errorf("workload: trace exceeds %d lines", maxTraceLines)
		}
		line := strings.TrimSpace(scan.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 2 || len(fields) > 5 {
			return nil, fmt.Errorf("workload: line %d: want t_us,chain[,count[,clone[,hedge_us]]], got %d fields", lineNo, len(fields))
		}
		tus, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad timestamp: %v", lineNo, err)
		}
		if math.IsNaN(tus) || math.IsInf(tus, 0) || tus < 0 || tus > maxTraceTus {
			return nil, fmt.Errorf("workload: line %d: timestamp %v outside [0,%g]µs", lineNo, tus, float64(maxTraceTus))
		}
		at := time.Duration(tus * float64(time.Microsecond))
		if at < last {
			return nil, fmt.Errorf("workload: line %d: timestamp %v before previous arrival", lineNo, at)
		}
		chain := strings.TrimSpace(fields[1])
		if err := checkChainName(chain); err != nil {
			return nil, fmt.Errorf("workload: line %d: %v", lineNo, err)
		}
		count := 1
		if len(fields) >= 3 {
			count, err = strconv.Atoi(strings.TrimSpace(fields[2]))
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad count: %v", lineNo, err)
			}
			if count < 1 || count > maxTraceCount {
				return nil, fmt.Errorf("workload: line %d: count %d outside [1,%d]", lineNo, count, maxTraceCount)
			}
		}
		clone := 0
		if len(fields) >= 4 {
			clone, err = strconv.Atoi(strings.TrimSpace(fields[3]))
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad clone factor: %v", lineNo, err)
			}
			if clone < 0 || clone > maxTraceClone {
				return nil, fmt.Errorf("workload: line %d: clone factor %d outside [0,%d]", lineNo, clone, maxTraceClone)
			}
		}
		hedge := time.Duration(0)
		if len(fields) == 5 {
			hus, err := strconv.ParseFloat(strings.TrimSpace(fields[4]), 64)
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad hedge deadline: %v", lineNo, err)
			}
			if math.IsNaN(hus) || math.IsInf(hus, 0) || hus < 0 || hus > maxTraceTus {
				return nil, fmt.Errorf("workload: line %d: hedge deadline %v outside [0,%g]µs", lineNo, hus, float64(maxTraceTus))
			}
			hedge = time.Duration(hus * float64(time.Microsecond))
		}
		last = at
		rp.Arrivals = append(rp.Arrivals, Arrival{At: at, Chain: chain, Count: count, Clone: clone, Hedge: hedge})
	}
	if err := scan.Err(); err != nil {
		return nil, fmt.Errorf("workload: read trace: %w", err)
	}
	return rp, nil
}

// checkChainName rejects names the trace format cannot round-trip.
func checkChainName(s string) error {
	if s == "" {
		return fmt.Errorf("empty chain name")
	}
	if len(s) > maxChainName {
		return fmt.Errorf("chain name longer than %d bytes", maxChainName)
	}
	for _, r := range s {
		if r == ',' || r == '#' || unicode.IsControl(r) || unicode.IsSpace(r) {
			return fmt.Errorf("chain name %q contains %q", s, r)
		}
	}
	return nil
}

// String renders the replay in canonical trace form — parse(render(rp))
// reproduces rp exactly, which is the parser's fuzz oracle. Arrivals without
// speculation overrides keep the historical 3-field form so pre-speculation
// traces canonicalize exactly as before.
func (rp *Replay) String() string {
	var b strings.Builder
	for _, a := range rp.Arrivals {
		fmt.Fprintf(&b, "%s,%s,%d",
			strconv.FormatFloat(float64(a.At.Nanoseconds())/1e3, 'g', -1, 64), a.Chain, a.Count)
		if a.Speculative() {
			fmt.Fprintf(&b, ",%d,%s", a.Clone,
				strconv.FormatFloat(float64(a.Hedge.Nanoseconds())/1e3, 'g', -1, 64))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Shifted returns a copy of the replay with every arrival delayed by d —
// used to line a recorded schedule up with the start of a measured window.
func (rp *Replay) Shifted(d time.Duration) *Replay {
	out := &Replay{Arrivals: make([]Arrival, len(rp.Arrivals))}
	for i, a := range rp.Arrivals {
		a.At += d
		out.Arrivals[i] = a
	}
	return out
}

// Total reports the number of requests in the trace.
func (rp *Replay) Total() int {
	n := 0
	for _, a := range rp.Arrivals {
		n += a.Count
	}
	return n
}

// Duration reports the time of the last arrival.
func (rp *Replay) Duration() time.Duration {
	if len(rp.Arrivals) == 0 {
		return 0
	}
	return rp.Arrivals[len(rp.Arrivals)-1].At
}

// Chains lists the distinct chains in first-appearance order.
func (rp *Replay) Chains() []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range rp.Arrivals {
		if !seen[a.Chain] {
			seen[a.Chain] = true
			out = append(out, a.Chain)
		}
	}
	return out
}

// Start schedules the replay on eng with the same contract as
// TraceGen.Start: per-chain counters plus a submit-hook registrar; the hook
// runs in the replayer's own process at each recorded arrival time.
func (rp *Replay) Start(eng *sim.Engine) (counts map[string]*uint64, submitHook func(func(chain string))) {
	counts, specHook := rp.StartSpec(eng)
	return counts, func(fn func(chain string)) {
		specHook(func(chain string, _ int, _ time.Duration) { fn(chain) })
	}
}

// StartSpec is Start with each arrival's speculation overrides surfaced to
// the submit hook (both zero for plain trace lines), so replay drivers can
// route them into per-request clone/hedge submission.
func (rp *Replay) StartSpec(eng *sim.Engine) (counts map[string]*uint64, submitHook func(func(chain string, clone int, hedge time.Duration))) {
	counts = make(map[string]*uint64)
	for _, name := range rp.Chains() {
		counts[name] = new(uint64)
	}
	var submit func(string, int, time.Duration)
	arrivals := append([]Arrival(nil), rp.Arrivals...)
	eng.Spawn("trace-replay", func(pr *sim.Proc) {
		for _, a := range arrivals {
			if a.At > pr.Now() {
				pr.Sleep(a.At - pr.Now())
			}
			for i := 0; i < a.Count; i++ {
				*counts[a.Chain]++
				if submit != nil {
					submit(a.Chain, a.Clone, a.Hedge)
				}
			}
		}
	})
	return counts, func(fn func(chain string, clone int, hedge time.Duration)) { submit = fn }
}
