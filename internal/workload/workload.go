// Package workload provides the load generators used across experiments:
// wrk-style closed-loop clients against an ingress gateway (§4.1.3, §4.3)
// and ramp-up schedules (Fig. 14).
package workload

import (
	"fmt"
	"time"

	"nadino/internal/ingress"
	"nadino/internal/metrics"
	"nadino/internal/params"
	"nadino/internal/sim"
)

// ClientPool is a set of closed-loop HTTP clients. Each client holds
// ConnsPerClient concurrent connections (wrk drives many connections per
// client thread, §4.1.3); each connection keeps one request outstanding.
// With a Timeout set, a connection that waits too long gives up and
// disconnects — the paper's overloaded K-Ingress loses "most of the
// clients ... due to the lack of a response" this way (Fig. 14).
type ClientPool struct {
	eng *sim.Engine
	p   *params.Params
	gw  *ingress.Gateway

	ReqBytes  int
	RespBytes int
	// ConnsPerClient is the concurrent connections each client drives
	// (default 1).
	ConnsPerClient int
	// Timeout disconnects a connection whose request gets no response in
	// time (0 = wait forever).
	Timeout time.Duration
	// OpenLoopRate, when positive, switches each client to open-loop
	// generation at this request rate (req/s) across its connections,
	// like a wrk client pinned to a core: it keeps offering load whether
	// or not responses return, which is what overloads the kernel ingress
	// in Fig. 14.
	OpenLoopRate float64

	Latency   *metrics.Hist
	Completed *metrics.Meter

	nClients     int
	nConns       int
	disconnected int
	stopped      bool
}

// NewClientPool returns an empty pool targeting gw with the given payload
// sizes.
func NewClientPool(eng *sim.Engine, p *params.Params, gw *ingress.Gateway, reqBytes, respBytes int) *ClientPool {
	return &ClientPool{
		eng:       eng,
		p:         p,
		gw:        gw,
		ReqBytes:  reqBytes,
		RespBytes: respBytes,
		Latency:   metrics.NewHist(),
		Completed: metrics.NewMeter(),
	}
}

// AddClient starts one client (all its connections) now.
func (cp *ClientPool) AddClient() {
	cp.nClients++
	if cp.OpenLoopRate > 0 {
		cp.addOpenLoopClient()
		return
	}
	conns := cp.ConnsPerClient
	if conns <= 0 {
		conns = 1
	}
	for i := 0; i < conns; i++ {
		id := cp.nConns
		cp.nConns++
		cp.eng.Spawn(fmt.Sprintf("conn-%d", id), func(pr *sim.Proc) {
			for !cp.stopped {
				start := pr.Now()
				// Per-request rendezvous: true = response, false = timeout.
				// Capacity 2 so a late response never blocks its sender.
				doneQ := sim.NewQueue[bool](cp.eng, 2)
				cp.gw.Submit(ingress.Request{
					Client:    id,
					Bytes:     cp.ReqBytes,
					RespBytes: cp.RespBytes,
					Stamp:     start,
					Reply:     func(ingress.Response) { doneQ.TryPut(true) },
				})
				var timer sim.Event
				if cp.Timeout > 0 {
					timer = cp.eng.After(cp.Timeout, func() { doneQ.TryPut(false) })
				}
				ok := doneQ.Get(pr)
				timer.Cancel()
				if !ok {
					// No response in time: this connection gives up.
					cp.disconnected++
					return
				}
				cp.Latency.Observe(pr.Now() - start)
				cp.Completed.Inc(1)
			}
		})
	}
}

// addOpenLoopClient spawns a generator that offers OpenLoopRate requests
// per second, spreading them over ConnsPerClient connection IDs for RSS.
func (cp *ClientPool) addOpenLoopClient() {
	id := cp.nClients - 1
	conns := cp.ConnsPerClient
	if conns <= 0 {
		conns = 1
	}
	base := cp.nConns
	cp.nConns += conns
	gap := time.Duration(float64(time.Second) / cp.OpenLoopRate)
	cp.eng.Spawn(fmt.Sprintf("openloop-client-%d", id), func(pr *sim.Proc) {
		for i := 0; !cp.stopped; i++ {
			start := pr.Now()
			responded := false
			cp.gw.Submit(ingress.Request{
				Client:    base + i%conns,
				Bytes:     cp.ReqBytes,
				RespBytes: cp.RespBytes,
				Stamp:     start,
				Reply: func(ingress.Response) {
					responded = true
					cp.Latency.Observe(cp.eng.Now() - start)
					cp.Completed.Inc(1)
				},
			})
			if cp.Timeout > 0 {
				cp.eng.After(cp.Timeout, func() {
					if !responded {
						cp.disconnected++
					}
				})
			}
			// Slight jitter decorrelates generators.
			pr.Sleep(gap + time.Duration(cp.eng.Rand().Intn(int(gap/8)+1)))
		}
	})
}

// Disconnected reports connections that timed out and gave up.
func (cp *ClientPool) Disconnected() int { return cp.disconnected }

// AddClients starts n closed-loop clients.
func (cp *ClientPool) AddClients(n int) {
	for i := 0; i < n; i++ {
		cp.AddClient()
	}
}

// RampUp adds a client every interval until total clients are running —
// the Fig. 14 load schedule ("adding a client every 10 seconds").
func (cp *ClientPool) RampUp(total int, every time.Duration) {
	cp.AddClient()
	added := 1
	var stop func()
	stop = cp.eng.Ticker(every, func(time.Duration) {
		if added >= total {
			stop()
			return
		}
		cp.AddClient()
		added++
	})
}

// Stop makes clients exit after their in-flight request completes.
func (cp *ClientPool) Stop() { cp.stopped = true }

// Clients reports how many clients have been started.
func (cp *ClientPool) Clients() int { return cp.nClients }
