package workload

import (
	"testing"
	"time"

	"nadino/internal/ingress"
	"nadino/internal/params"
	"nadino/internal/sim"
)

func newGateway(t *testing.T) (*sim.Engine, *params.Params, *ingress.Gateway) {
	t.Helper()
	p := params.Default()
	eng := sim.NewEngine(1)
	t.Cleanup(eng.Stop)
	backend := ingress.DefaultEchoBackend(eng, p, ingress.Nadino, 4)
	gw := ingress.New(eng, p, ingress.Config{Kind: ingress.Nadino, InitialWorkers: 1, MaxWorkers: 1}, backend)
	return eng, p, gw
}

func TestClosedLoopClients(t *testing.T) {
	eng, p, gw := newGateway(t)
	cp := NewClientPool(eng, p, gw, 256, 256)
	cp.AddClients(4)
	eng.RunUntil(100 * time.Millisecond)
	if cp.Completed.Total() == 0 {
		t.Fatal("clients completed nothing")
	}
	if cp.Latency.Count() != cp.Completed.Total() {
		t.Fatalf("latency samples %d != completions %d", cp.Latency.Count(), cp.Completed.Total())
	}
	if cp.Clients() != 4 {
		t.Fatalf("clients = %d", cp.Clients())
	}
	if cp.Disconnected() != 0 {
		t.Fatalf("disconnected = %d without timeout", cp.Disconnected())
	}
}

func TestMultiConnClients(t *testing.T) {
	eng, p, gw := newGateway(t)
	cp := NewClientPool(eng, p, gw, 256, 256)
	cp.ConnsPerClient = 8
	cp.AddClient()
	eng.RunUntil(50 * time.Millisecond)
	one := cp.Completed.Total()

	eng2, p2, gw2 := func() (*sim.Engine, *params.Params, *ingress.Gateway) {
		return newGateway(t)
	}()
	cp2 := NewClientPool(eng2, p2, gw2, 256, 256)
	cp2.ConnsPerClient = 1
	cp2.AddClient()
	eng2.RunUntil(50 * time.Millisecond)
	if one <= cp2.Completed.Total() {
		t.Fatalf("8-conn client (%d) not above 1-conn client (%d)", one, cp2.Completed.Total())
	}
}

func TestRampUpSchedule(t *testing.T) {
	eng, p, gw := newGateway(t)
	cp := NewClientPool(eng, p, gw, 128, 128)
	cp.RampUp(5, 10*time.Millisecond)
	eng.RunUntil(5 * time.Millisecond)
	if cp.Clients() != 1 {
		t.Fatalf("clients at 5ms = %d, want 1", cp.Clients())
	}
	eng.RunUntil(100 * time.Millisecond)
	if cp.Clients() != 5 {
		t.Fatalf("clients at 100ms = %d, want 5", cp.Clients())
	}
}

func TestTimeoutDisconnects(t *testing.T) {
	// A gateway with zero workers available... instead use a backend that
	// never answers: a gateway whose backend drops everything.
	p := params.Default()
	eng := sim.NewEngine(1)
	defer eng.Stop()
	gw := ingress.New(eng, p, ingress.Config{Kind: ingress.Nadino, InitialWorkers: 1, MaxWorkers: 1}, blackholeBackend{})
	cp := NewClientPool(eng, p, gw, 128, 128)
	cp.Timeout = 5 * time.Millisecond
	cp.ConnsPerClient = 3
	cp.AddClient()
	eng.RunUntil(100 * time.Millisecond)
	if cp.Disconnected() != 3 {
		t.Fatalf("disconnected = %d, want all 3 connections", cp.Disconnected())
	}
	if cp.Completed.Total() != 0 {
		t.Fatal("blackhole backend completed requests")
	}
}

func TestOpenLoopGeneratesWithoutResponses(t *testing.T) {
	p := params.Default()
	eng := sim.NewEngine(1)
	defer eng.Stop()
	gw := ingress.New(eng, p, ingress.Config{Kind: ingress.Nadino, InitialWorkers: 1, MaxWorkers: 1, QueueCap: 16}, blackholeBackend{})
	cp := NewClientPool(eng, p, gw, 128, 128)
	cp.OpenLoopRate = 400000 // past a single worker's capacity
	cp.Timeout = 10 * time.Millisecond
	cp.AddClient()
	eng.RunUntil(100 * time.Millisecond)
	// The generator kept offering load despite zero responses.
	if cp.Disconnected() < 1000 {
		t.Fatalf("open-loop client disconnected only %d times", cp.Disconnected())
	}
	if gw.Dropped() == 0 {
		t.Fatal("bounded queue never dropped under open-loop flood")
	}
}

// blackholeBackend accepts requests and never responds.
type blackholeBackend struct{}

func (blackholeBackend) Forward(ingress.Request, func(ingress.Response)) {}

func TestStop(t *testing.T) {
	eng, p, gw := newGateway(t)
	cp := NewClientPool(eng, p, gw, 128, 128)
	cp.AddClients(2)
	eng.RunUntil(20 * time.Millisecond)
	cp.Stop()
	eng.RunUntil(25 * time.Millisecond)
	after := cp.Completed.Total()
	eng.RunUntil(60 * time.Millisecond)
	if cp.Completed.Total() > after+2 {
		t.Fatalf("clients kept completing after Stop: %d -> %d", after, cp.Completed.Total())
	}
}
