// Package rdma is a verbs-level model of an RDMA-capable NIC and its RC
// transport: queue pairs, shared receive queues, completion queues, memory
// regions, two-sided send/recv, one-sided write/read, remote atomics, RNR
// retry, an ICM-style QP cache with miss penalties, and a shadow-QP
// connection pool (§3.3).
//
// Timing follows the ConnectX-6 path: software posts a WR (the caller pays
// the post cost on its own core), the RNIC pipeline serializes per-WR
// processing and PCIe DMA, the fabric serializes packets, and the receiving
// RNIC matches (for two-sided) or lands data directly (one-sided). All
// constants live in internal/params.
package rdma

import (
	"container/list"
	"time"

	"nadino/internal/fabric"
	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/ring"
	"nadino/internal/sim"
	"nadino/internal/trace"
)

// Op identifies a verb.
type Op int

// Verbs supported by the model.
const (
	OpSend Op = iota
	OpRecv
	OpWrite
	OpRead
	OpCAS
)

func (o Op) String() string {
	switch o {
	case OpSend:
		return "SEND"
	case OpRecv:
		return "RECV"
	case OpWrite:
		return "WRITE"
	case OpRead:
		return "READ"
	case OpCAS:
		return "CAS"
	}
	return "?"
}

// Status is a completion status.
type Status int

// Completion statuses.
const (
	StatusOK Status = iota
	StatusRNRExceeded
	// StatusRetryExceeded: the transport retransmitted TransportRetries
	// times without an ack (e.g. the link stayed down); the QP is now in
	// the error state.
	StatusRetryExceeded
	// StatusQPError: the WR was posted to a QP already in the error state.
	StatusQPError
)

// maxRNRRetries is the RC retry budget before the sender sees an error.
const maxRNRRetries = 7

// wireHeaderBytes approximates per-message RoCE/IB header overhead.
const wireHeaderBytes = 60

// CQE is a completion queue entry.
type CQE struct {
	WRID   uint64
	Op     Op
	Status Status
	Bytes  int
	Tenant string
	QP     *QP
	// Desc carries the receive-side buffer descriptor for OpRecv
	// completions (the posted buffer, now holding the payload and the
	// sender's routing metadata) and the source descriptor for OpSend and
	// OpWrite completions (so senders can recycle the source buffer).
	Desc mempool.Descriptor
}

// CQ is a completion queue backed by a growable power-of-two ring buffer.
// Consumers either Poll/PollInto it or block on Wait. Notification is
// coalesced doorbell-style: waiters and the notify hook fire only on the
// empty -> non-empty transition, one wake per drain batch rather than one
// per CQE. (This is behaviorally identical to per-CQE pulsing: a consumer
// only parks after draining the ring to empty, so the first push after a
// park is always an empty -> non-empty push; later pushes in the same batch
// found no parked waiter under either scheme.)
type CQ struct {
	eng    *sim.Engine
	buf    []CQE // power-of-two ring
	head   int   // index of oldest entry
	n      int   // live entries
	sig    *sim.Signal
	onPush func() // optional hook: prod an event loop
}

// NewCQ returns an empty completion queue.
func NewCQ(eng *sim.Engine) *CQ {
	return &CQ{eng: eng, sig: sim.NewSignal(eng)}
}

// SetNotify installs a callback invoked (in engine context) whenever the
// queue transitions from empty to non-empty. Event-loop consumers use it to
// avoid missed wakeups.
func (cq *CQ) SetNotify(fn func()) { cq.onPush = fn }

// grow doubles the ring (min 16), linearizing live entries to the front.
func (cq *CQ) grow() {
	c := len(cq.buf) * 2
	if c < 16 {
		c = 16
	}
	buf := make([]CQE, c)
	cq.copyTo(buf)
	cq.buf = buf
	cq.head = 0
}

// copyTo linearizes the live entries (in CQE order) into dst.
func (cq *CQ) copyTo(dst []CQE) {
	first := cq.buf[cq.head:]
	if len(first) > cq.n {
		first = first[:cq.n]
	}
	k := copy(dst, first)
	copy(dst[k:], cq.buf[:cq.n-k])
}

func (cq *CQ) push(e CQE) {
	// Completion is the transfer/ack boundary for the descriptor's trace:
	// arrival closes the in-flight span, and the time until a consumer
	// drains this CQE is its own stage.
	switch e.Op {
	case OpRecv, OpWrite:
		e.Desc.Trace.EndStage(trace.StageRDMA)
		if e.Op == OpRecv {
			e.Desc.Trace.BeginStage(trace.StageRDMACQ, "cq")
		}
	case OpSend:
		e.Desc.Trace.BeginStageDetail(trace.StageRDMAAck, "cq")
	}
	if cq.n == len(cq.buf) {
		cq.grow()
	}
	cq.buf[(cq.head+cq.n)&(len(cq.buf)-1)] = e
	cq.n++
	if cq.n == 1 {
		cq.sig.Pulse()
		if cq.onPush != nil {
			cq.onPush()
		}
	}
}

// PollInto removes up to len(buf) entries into buf and reports how many, in
// exact CQE order. The zero-alloc polling path: callers reuse buf across
// drains.
func (cq *CQ) PollInto(buf []CQE) int {
	n := cq.n
	if n > len(buf) {
		n = len(buf)
	}
	if n == 0 {
		return 0
	}
	mask := len(cq.buf) - 1
	var zero CQE
	for i := 0; i < n; i++ {
		j := (cq.head + i) & mask
		buf[i] = cq.buf[j]
		cq.buf[j] = zero // release descriptor references for GC
	}
	cq.head = (cq.head + n) & mask
	cq.n -= n
	return n
}

// Poll removes and returns up to max entries (all if max <= 0). It
// allocates the returned slice; hot loops should use PollInto.
func (cq *CQ) Poll(max int) []CQE {
	n := cq.n
	if max > 0 && max < n {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := make([]CQE, n)
	cq.PollInto(out)
	return out
}

// Wait blocks p until the queue is non-empty.
func (cq *CQ) Wait(p *sim.Proc) {
	for cq.n == 0 {
		cq.sig.Wait(p)
	}
}

// Len reports queued completions.
func (cq *CQ) Len() int { return cq.n }

// SRQ is a shared receive queue: all of a tenant's RC QPs on a node share
// one RQ posted from that tenant's pool, so the RNIC always lands incoming
// data in the right pool (§3.3).
type SRQ struct {
	Tenant   string
	posted   ring.Deque[mempool.Descriptor]
	consumed uint64 // recv CQEs since last ConsumedReset (drives replenish)
	rnr      uint64
}

// NewSRQ returns an empty shared receive queue for tenant.
func NewSRQ(tenant string) *SRQ { return &SRQ{Tenant: tenant} }

// PostRecv posts a free buffer for incoming sends. The descriptor's buffer
// must already be owned by the posting entity (ownership checks happen at
// the mempool layer in the callers).
func (s *SRQ) PostRecv(d mempool.Descriptor) { s.posted.PushBack(d) }

// PostRecvN posts a batch of free buffers in order — the doorbell-batched
// replenish the DNE core thread uses (§3.5.2).
func (s *SRQ) PostRecvN(ds []mempool.Descriptor) {
	for _, d := range ds {
		s.posted.PushBack(d)
	}
}

// Posted reports currently posted buffers.
func (s *SRQ) Posted() int { return s.posted.Len() }

// Consumed reports recv completions since the last reset — the counter the
// DNE core thread watches to replenish buffers (§3.5.2).
func (s *SRQ) Consumed() uint64 { return s.consumed }

// ConsumedReset zeroes the consumed counter and returns its prior value.
func (s *SRQ) ConsumedReset() uint64 {
	c := s.consumed
	s.consumed = 0
	return c
}

// RNREvents reports receiver-not-ready stalls observed on this SRQ.
func (s *SRQ) RNREvents() uint64 { return s.rnr }

func (s *SRQ) pop() (mempool.Descriptor, bool) {
	if s.posted.Len() == 0 {
		return mempool.Descriptor{}, false
	}
	return s.posted.PopFront(), true
}

// Landed records a one-sided write that arrived in a memory region.
// Receivers discover these only by polling (the write is invisible to the
// remote CPU, which is exactly the "receiver-oblivious" hazard of §2.1).
type Landed struct {
	Buf   mempool.Buffer
	Bytes int
	Desc  mempool.Descriptor
	At    time.Duration
}

// MR is a registered memory region backed by one tenant pool. Landed
// writes queue in a head-indexed slice whose backing array is reused once
// drained, so a poll-paced consumer (PollLandedInto) allocates nothing at
// steady state.
type MR struct {
	id     int
	Pool   *mempool.Pool
	node   fabric.NodeID
	landed []Landed
	head   int
	onLand func()
}

// Node reports the node whose memory this region maps.
func (m *MR) Node() fabric.NodeID { return m.node }

// Pages reports MTT entries consumed (hugepages shrink this 512x vs 4K
// pages, §3.4).
func (m *MR) Pages() int { return m.Pool.Hugepages() }

// land queues one arrived write and fires the empty->non-empty notifier.
func (m *MR) land(l Landed) {
	m.landed = append(m.landed, l)
	if m.onLand != nil && len(m.landed)-m.head == 1 {
		m.onLand()
	}
}

// SetNotify registers fn to run whenever the landed queue goes from empty
// to non-empty — the hook a polling consumer parks its wakeup signal on.
// Coalesced: back-to-back landings into a non-empty queue do not re-fire.
func (m *MR) SetNotify(fn func()) { m.onLand = fn }

// PollLanded drains and returns writes that have landed in this region.
// The scanning CPU cost is paid by the caller (params.OneSidedPollCost).
func (m *MR) PollLanded() []Landed {
	if len(m.landed)-m.head == 0 {
		return nil
	}
	out := append([]Landed(nil), m.landed[m.head:]...)
	m.landed = m.landed[:0]
	m.head = 0
	return out
}

// PollLandedInto drains up to len(buf) landed writes into buf and reports
// how many were copied. The region's backing array is reused once empty, so
// a steady-state poll loop allocates nothing.
func (m *MR) PollLandedInto(buf []Landed) int {
	n := len(m.landed) - m.head
	if n == 0 {
		return 0
	}
	if n > len(buf) {
		n = len(buf)
	}
	copy(buf, m.landed[m.head:m.head+n])
	for i := m.head; i < m.head+n; i++ {
		m.landed[i] = Landed{} // drop buffer/trace references
	}
	m.head += n
	if m.head == len(m.landed) {
		m.landed = m.landed[:0]
		m.head = 0
	}
	return n
}

// LandedCount reports pending landed writes without consuming them.
func (m *MR) LandedCount() int { return len(m.landed) - m.head }

// qpCache models the RNIC's on-chip connection context cache (ICM). Only
// active QPs occupy entries; misses add a per-WR penalty, which is how a
// tenant hoarding many active QPs hurts everyone (§2.1, Harmonic).
type qpCache struct {
	capacity int
	lru      *list.List // front = most recent
	index    map[int]*list.Element
	misses   uint64
	hits     uint64
}

func newQPCache(capacity int) *qpCache {
	return &qpCache{capacity: capacity, lru: list.New(), index: make(map[int]*list.Element)}
}

// touch records use of QP id and reports whether it missed.
func (c *qpCache) touch(id int) bool {
	if el, ok := c.index[id]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return false
	}
	c.misses++
	el := c.lru.PushFront(id)
	c.index[id] = el
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		delete(c.index, back.Value.(int))
		c.lru.Remove(back)
	}
	return true
}

func (c *qpCache) evict(id int) {
	if el, ok := c.index[id]; ok {
		delete(c.index, id)
		c.lru.Remove(el)
	}
}

// RNIC models one RDMA NIC attached to the fabric.
type RNIC struct {
	eng   *sim.Engine
	p     *params.Params
	node  fabric.NodeID
	net   *fabric.Network
	label string // precomputed trace actor ("<node>/rnic")

	// flowFree recycles receiver-side delivery state (see recvFlow).
	flowFree []*recvFlow

	pipeBusy time.Duration
	pipeTime time.Duration // accumulated busy (utilization)
	cache    *qpCache
	words    map[string]uint64 // remote-atomic target words

	nextQP   int
	nextWR   uint64
	nextMR   int
	mttPages int // translation entries pinned by registered MRs

	sends, writes, reads, atomics uint64
	rnrRetries                    uint64
}

// NewRNIC attaches a new RNIC for node to the network.
func NewRNIC(eng *sim.Engine, p *params.Params, node fabric.NodeID, net *fabric.Network) *RNIC {
	if !net.Has(node) {
		net.AddNode(node)
	}
	return &RNIC{
		eng:   eng,
		p:     p,
		node:  node,
		net:   net,
		label: string(node) + "/rnic",
		cache: newQPCache(p.NICCacheActiveQPs),
		words: make(map[string]uint64),
	}
}

// Node reports the RNIC's node.
func (r *RNIC) Node() fabric.NodeID { return r.node }

// RegisterMR registers pool as a memory region on this RNIC. The pool's
// pages pin MTT entries; overflowing the translation cache taxes every WR.
func (r *RNIC) RegisterMR(pool *mempool.Pool) *MR {
	r.nextMR++
	r.mttPages += pool.Hugepages()
	return &MR{id: r.nextMR, Pool: pool, node: r.node}
}

// MTTPages reports translation entries pinned by registered regions.
func (r *RNIC) MTTPages() int { return r.mttPages }

// mttPenalty is the expected per-WR translation-miss cost once registered
// pages overflow the MTT cache: the miss probability approaches the
// overflow fraction under uniform buffer access.
func (r *RNIC) mttPenalty() time.Duration {
	if r.mttPages <= r.p.NICMTTEntries {
		return 0
	}
	frac := 1 - float64(r.p.NICMTTEntries)/float64(r.mttPages)
	return time.Duration(frac * float64(r.p.NICMTTMissPenalty))
}

// pipe serializes cost on the RNIC's processing pipeline and returns the
// completion time. Engine context only.
func (r *RNIC) pipe(cost time.Duration) time.Duration {
	now := r.eng.Now()
	start := now
	if r.pipeBusy > start {
		start = r.pipeBusy
	}
	r.pipeBusy = start + cost
	r.pipeTime += cost
	return r.pipeBusy
}

// cachePenalty touches the QP cache and returns the per-WR on-chip context
// costs: QP-state miss penalty plus the MTT translation-miss share.
func (r *RNIC) cachePenalty(qpID int) time.Duration {
	pen := r.mttPenalty()
	if r.cache.touch(qpID) {
		pen += r.p.NICCacheMissPenalty
	}
	return pen
}

// CacheMisses reports lifetime QP cache misses.
func (r *RNIC) CacheMisses() uint64 { return r.cache.misses }

// CacheHits reports lifetime QP cache hits.
func (r *RNIC) CacheHits() uint64 { return r.cache.hits }

// ActiveQPs reports QPs currently resident in the connection context cache —
// the ICM occupancy the telemetry scraper samples.
func (r *RNIC) ActiveQPs() int { return r.cache.lru.Len() }

// PipeBusyTime reports accumulated RNIC pipeline busy time.
func (r *RNIC) PipeBusyTime() time.Duration { return r.pipeTime }

// Stats reports per-verb counters.
func (r *RNIC) Stats() (sends, writes, reads, atomics, rnrRetries uint64) {
	return r.sends, r.writes, r.reads, r.atomics, r.rnrRetries
}

// dmaCost is the PCIe DMA time for n payload bytes.
func (r *RNIC) dmaCost(n int) time.Duration {
	return r.p.RNICDMAPerOp + params.Bytes(r.p.RNICDMAPerByte, n)
}

// Word returns the current value of a remote-atomic word.
func (r *RNIC) Word(key string) uint64 { return r.words[key] }

// SetWord initializes a remote-atomic word (e.g. a distributed lock).
func (r *RNIC) SetWord(key string, v uint64) { r.words[key] = v }

func (r *RNIC) wrID() uint64 {
	r.nextWR++
	return r.nextWR
}

func (r *RNIC) qpID() int {
	r.nextQP++
	return r.nextQP
}
