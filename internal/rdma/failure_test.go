package rdma

import (
	"testing"
	"time"

	"nadino/internal/chaos"
	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/sim"
)

func TestRetransmitRecoversFromLinkBlip(t *testing.T) {
	r := newRig(t, 1)
	qa, _ := Connect(r.ra, r.rb, "t", r.srqA, r.srqB, r.cqA, r.cqB)
	postRecvs(t, r.poolB, r.srqB, 16)

	// Link down for 1.2ms starting just before the send.
	in := chaos.NewInjector(r.eng, r.net, 1)
	in.Install(chaos.Schedule{
		{At: 0, For: 1200 * time.Microsecond, Fault: chaos.NodeDown{Node: "nodeB"}},
	})

	var status Status = -1
	var doneAt time.Duration
	r.eng.Spawn("sender", func(p *sim.Proc) {
		src, _ := r.poolA.Get("cli")
		qa.PostSend(mempool.Descriptor{Tenant: "t", Buf: src, Len: 512})
		r.cqA.Wait(p)
		e := r.cqA.Poll(1)[0]
		status = e.Status
		doneAt = p.Now()
	})
	r.eng.RunUntil(time.Second)
	if status != StatusOK {
		t.Fatalf("send status = %v after link recovery, want OK", status)
	}
	if doneAt < 1200*time.Microsecond {
		t.Fatalf("completed at %v, before the link came back", doneAt)
	}
	if qa.Retransmits() == 0 {
		t.Fatal("no retransmissions recorded across the blip")
	}
	if qa.Errored() {
		t.Fatal("QP errored despite successful recovery")
	}
}

func TestPersistentOutageErrorsQP(t *testing.T) {
	r := newRig(t, 1)
	qa, _ := Connect(r.ra, r.rb, "t", r.srqA, r.srqB, r.cqA, r.cqB)
	postRecvs(t, r.poolB, r.srqB, 4)
	// Permanent outage: For == 0 means the fault never reverts.
	in := chaos.NewInjector(r.eng, r.net, 1)
	in.Install(chaos.Schedule{{At: 0, Fault: chaos.NodeDown{Node: "nodeB"}}})

	var status Status = -1
	r.eng.Spawn("sender", func(p *sim.Proc) {
		src, _ := r.poolA.Get("cli")
		qa.PostSend(mempool.Descriptor{Tenant: "t", Buf: src, Len: 512})
		r.cqA.Wait(p)
		status = r.cqA.Poll(1)[0].Status
	})
	r.eng.RunUntil(time.Second)
	if status != StatusRetryExceeded {
		t.Fatalf("status = %v, want StatusRetryExceeded", status)
	}
	if !qa.Errored() {
		t.Fatal("QP not in error state after retry exhaustion")
	}
	// New posts on the errored QP flush immediately with an error.
	var flushed Status = -1
	r.eng.Spawn("late-sender", func(p *sim.Proc) {
		src, _ := r.poolA.Get("cli")
		qa.PostSend(mempool.Descriptor{Tenant: "t", Buf: src, Len: 64})
		r.cqA.Wait(p)
		flushed = r.cqA.Poll(1)[0].Status
	})
	r.eng.RunUntil(2 * time.Second)
	if flushed != StatusQPError {
		t.Fatalf("post on errored QP = %v, want StatusQPError", flushed)
	}
}

func TestConnPoolRepairsErroredQPs(t *testing.T) {
	r := newRig(t, 1)
	// Outage from pool establishment until t=50ms: long enough to error the
	// first QP. The revert fires inside RunUntil (inclusive), so the link is
	// back before Repair runs — same sequencing as the manual SetDown rig.
	in := chaos.NewInjector(r.eng, r.net, 1)
	in.Install(chaos.Schedule{{
		At: r.p.QPSetupTime, For: 50*time.Millisecond - r.p.QPSetupTime,
		Fault: chaos.NodeDown{Node: "nodeB"},
	}})
	var pa *ConnPool
	r.eng.Spawn("setup", func(p *sim.Proc) {
		pa, _ = EstablishPair(p, r.p, "t", r.ra, r.rb, 4, r.srqA, r.srqB, r.cqA, r.cqB)
		postRecvs(t, r.poolB, r.srqB, 64)
		src, _ := r.poolA.Get("cli")
		pa.Pick().PostSend(mempool.Descriptor{Tenant: "t", Buf: src, Len: 64})
	})
	r.eng.RunUntil(50 * time.Millisecond)
	errored := 0
	for _, qp := range pa.Conns() {
		if qp.Errored() {
			errored++
		}
	}
	if errored == 0 {
		t.Fatal("no QP errored during the outage")
	}
	if n := pa.Repair(); n == 0 {
		t.Fatal("Repair found nothing to fix")
	}
	r.eng.RunUntil(r.eng.Now() + 2*r.p.QPSetupTime)
	for _, qp := range pa.Conns() {
		if qp.Errored() {
			t.Fatal("QP still errored after repair window")
		}
	}
	if pa.Repairs() == 0 {
		t.Fatal("repair counter not incremented")
	}
	// And the repaired pool carries traffic again.
	var ok bool
	r.eng.Spawn("verify", func(p *sim.Proc) {
		src, _ := r.poolA.Get("cli")
		pa.Pick().PostSend(mempool.Descriptor{Tenant: "t", Buf: src, Len: 64})
		r.cqB.Wait(p)
		for _, e := range r.cqB.Poll(0) {
			if e.Op == OpRecv {
				ok = true
			}
		}
	})
	r.eng.RunUntil(r.eng.Now() + 100*time.Millisecond)
	if !ok {
		t.Fatal("repaired pool did not deliver")
	}
}

func TestRetransmitTimerDoesNotDuplicate(t *testing.T) {
	// Normal (lossless) operation: retransmit timers must never fire and
	// receivers must see exactly one delivery per send.
	p := params.Default()
	r := newRig(t, 1)
	qa, _ := Connect(r.ra, r.rb, "t", r.srqA, r.srqB, r.cqA, r.cqB)
	postRecvs(t, r.poolB, r.srqB, 64)
	recvs := 0
	r.eng.Spawn("receiver", func(pr *sim.Proc) {
		for {
			r.cqB.Wait(pr)
			for _, e := range r.cqB.Poll(0) {
				if e.Op == OpRecv {
					recvs++
				}
			}
		}
	})
	r.eng.Spawn("sender", func(pr *sim.Proc) {
		for i := 0; i < 32; i++ {
			src, err := r.poolA.Get("cli")
			if err != nil {
				t.Error(err)
				return
			}
			qa.PostSend(mempool.Descriptor{Tenant: "t", Buf: src, Len: 256})
			pr.Sleep(p.RetransmitTimeout) // straddle the timer window
		}
	})
	r.eng.RunUntil(time.Second)
	if recvs != 32 {
		t.Fatalf("recv completions = %d, want exactly 32 (no duplicates, no losses)", recvs)
	}
	if qa.Retransmits() != 0 {
		t.Fatalf("lossless run recorded %d retransmits", qa.Retransmits())
	}
}
