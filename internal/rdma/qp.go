package rdma

import (
	"time"

	"nadino/internal/mempool"
	"nadino/internal/ring"
	"nadino/internal/sim"
	"nadino/internal/trace"
)

// QP is one end of a reliable-connected queue pair. Each tenant's QPs on a
// node share one SRQ (receive side) and the node shares one CQ (§3.3).
type QP struct {
	id     int
	rnic   *RNIC
	peer   *QP
	Tenant string
	srq    *SRQ // receive side for two-sided ops arriving at this end
	cq     *CQ  // completions for WRs posted at this end

	active      bool
	errored     bool
	repairing   bool
	outstanding int
	sendsPosted uint64
	bytesSent   uint64

	// pending tracks unacked WRs for the RC retransmission timer: an
	// open-addressed index into a pooled slab of wrState slots, so the
	// per-send fast path allocates nothing at steady state.
	pending wrTable
	wrFree  []*wrState
	// seen dedupes retransmitted deliveries at the receiver (the PSN
	// check real RC performs): a duplicate is re-acked but consumes no
	// receive buffer. Entries are swept after dedupWindow (see sweepSeen).
	// The set is open-addressed; seenLog is a ring whose head the sweeper
	// advances in place, so sustained load reuses the same backing arrays
	// instead of growing a retained slice prefix forever.
	seen        u64Set
	seenLog     ring.Deque[seenEntry]
	sweepFn     func() // bound once: the seenLog sweeper
	sweepArmed  bool
	retransmits uint64
	dupsDropped uint64
}

// seenEntry records when a wrID entered the receiver's dedup set.
type seenEntry struct {
	wr uint64
	at time.Duration
}

// dedupWindow bounds how long dedup state is retained. It must exceed the
// maximum plausible delivery skew between an original and its last
// retransmitted copy (retries span ~4ms; pipe backlogs add the rest). The
// same bound fences wrState slot reuse: a slot is recycled only after the
// window, by which time every copy of its WR has left the fabric.
const dedupWindow = time.Second

// wrState is one slab slot: the transport-level state of an in-flight WR.
// Its event callbacks are bound once when the slot is created, so posting,
// retransmitting and completing a send allocate nothing once the pool is
// warm. A slot is freed either immediately on completion (never
// retransmitted: exactly one copy existed and it has fully completed, so no
// event can still reference the slot) or after dedupWindow (retransmitted:
// the tombstone absorbs late duplicate acks first).
type wrState struct {
	qp       *QP
	id       uint64
	d        mempool.Descriptor
	done     bool
	attempts int
	timer    sim.Event

	// One-sided write mode: the WR DMAs into remote instead of consuming a
	// peer SRQ entry, and its receive side is the wLand/wDone/wAck chain.
	isWrite bool
	remote  RemoteBuf

	xmitFn    func() // hand the serialized WR to the fabric
	deliverFn func() // receive-side entry on the peer RNIC (two-sided)
	checkFn   func() // retransmit-timer body
	expireFn  func() // tombstone expiry: drop the index entry, free the slot
	wLandFn   func() // write arrival on the peer RNIC (one-sided)
	wDoneFn   func() // write landed: dedup, MR append, start the ack
	wAckFn    func() // write ack back at the sender
}

// Connect establishes an RC connection between two RNICs and returns both
// ends. The caller models setup latency (params.QPSetupTime) — see
// ConnPool.Establish for the pooled version.
func Connect(a, b *RNIC, tenant string, srqA, srqB *SRQ, cqA, cqB *CQ) (*QP, *QP) {
	qa := &QP{id: a.qpID(), rnic: a, Tenant: tenant, srq: srqA, cq: cqA, active: true}
	qb := &QP{id: b.qpID(), rnic: b, Tenant: tenant, srq: srqB, cq: cqB, active: true}
	qa.sweepFn = qa.sweepSeen
	qb.sweepFn = qb.sweepSeen
	qa.peer, qb.peer = qb, qa
	return qa, qb
}

// Errored reports whether the QP is in the error state (retry exceeded).
func (qp *QP) Errored() bool { return qp.errored }

// Retransmits reports transport-level retransmissions on this QP.
func (qp *QP) Retransmits() uint64 { return qp.retransmits }

// DupsDropped reports retransmitted deliveries discarded by the receiver's
// PSN check.
func (qp *QP) DupsDropped() uint64 { return qp.dupsDropped }

// ForceError drives the QP into the error state immediately, as an RNIC
// firmware fault or peer reboot would: the cache slot is evicted and new
// posts flush with StatusQPError until Reset (ConnPool.Repair recovers it).
// Injection hook for internal/chaos. In-flight sends keep retransmitting
// until their own retry budgets expire.
func (qp *QP) ForceError() {
	if qp.errored {
		return
	}
	qp.errored = true
	qp.rnic.cache.evict(qp.id)
}

// Reset returns an errored QP to the ready state after the out-of-band
// re-handshake (the caller models the setup delay, see ConnPool.Repair).
func (qp *QP) Reset() {
	qp.errored = false
	qp.outstanding = 0
}

// ID reports the QP number.
func (qp *QP) ID() int { return qp.id }

// Active reports whether the QP currently holds RNIC resources.
func (qp *QP) Active() bool { return qp.active }

// Outstanding reports WRs posted but not yet completed — the congestion
// signal the DNE uses to pick the least-congested RC connection (§3.2).
func (qp *QP) Outstanding() int { return qp.outstanding }

// RNIC returns the local RNIC.
func (qp *QP) RNIC() *RNIC { return qp.rnic }

// Peer returns the remote end.
func (qp *QP) Peer() *QP { return qp.peer }

// allocWR takes a slab slot for a newly posted WR and indexes it.
func (qp *QP) allocWR(id uint64, d mempool.Descriptor) *wrState {
	var st *wrState
	if n := len(qp.wrFree); n > 0 {
		st = qp.wrFree[n-1]
		qp.wrFree = qp.wrFree[:n-1]
	} else {
		st = &wrState{qp: qp}
		st.xmitFn = st.xmit
		st.deliverFn = st.deliver
		st.checkFn = st.check
		st.expireFn = st.expire
		st.wLandFn = st.wLand
		st.wDoneFn = st.wDone
		st.wAckFn = st.wAck
	}
	st.id = id
	st.d = d
	st.done = false
	st.attempts = 0
	st.isWrite = false
	st.timer = sim.Event{}
	qp.pending.put(id, st)
	return st
}

// freeWR recycles a slab slot. The caller must have removed it from the
// pending index first.
func (qp *QP) freeWR(st *wrState) {
	st.d = mempool.Descriptor{} // drop buffer/trace references
	st.remote = RemoteBuf{}
	qp.wrFree = append(qp.wrFree, st)
}

func (qp *QP) complete(e CQE) {
	if st := qp.pending.get(e.WRID); st != nil {
		if st.done {
			return // duplicate ack (a retransmitted copy also delivered)
		}
		st.done = true
		st.timer.Cancel()
		if st.attempts == 0 {
			// Never retransmitted: exactly one copy exists, so no
			// duplicate ack can arrive — reclaim immediately. This keeps
			// the index tiny on lossless paths.
			qp.pending.del(e.WRID)
			qp.freeWR(st)
		} else {
			// Tombstone against late duplicate acks, swept after the
			// dedup window.
			qp.rnic.eng.After(dedupWindow, st.expireFn)
		}
	}
	qp.outstanding--
	qp.cq.push(e)
}

// PostSend posts a two-sided send of d.Len bytes described by d. The
// payload lands in a buffer the receiver posted to its SRQ; the receive
// CQE carries that buffer with d's routing metadata. Engine context; the
// caller pays params.VerbsPostCost on its own core.
func (qp *QP) PostSend(d mempool.Descriptor) uint64 {
	r := qp.rnic
	id := r.wrID()
	qp.outstanding++
	if qp.errored {
		// Error-state QPs flush new WRs immediately.
		r.eng.Immediate(func() {
			qp.complete(CQE{WRID: id, Op: OpSend, Status: StatusQPError, Bytes: d.Len, Tenant: qp.Tenant, QP: qp, Desc: d})
		})
		return id
	}
	qp.sendsPosted++
	qp.bytesSent += uint64(d.Len)
	r.sends++

	// The transfer span runs from the post to the receive-side CQE (closed
	// in CQ.push); a send abandoned by the transport leaves it open, which
	// reports and exports ignore.
	d.Trace.BeginStage(trace.StageRDMA, r.label)
	st := qp.allocWR(id, d)
	st.timer = r.eng.After(r.p.RetransmitTimeout, st.checkFn)
	st.attempt()
	return id
}

// attempt transmits one copy of the WR: RNIC pipeline, then the fabric.
func (st *wrState) attempt() {
	qp := st.qp
	r := qp.rnic
	cost := r.p.RNICPerWR + r.cachePenalty(qp.id) + r.dmaCost(st.d.Len)
	done := r.pipe(cost)
	r.eng.At(done, st.xmitFn)
}

func (st *wrState) xmit() {
	qp := st.qp
	r := qp.rnic
	if st.isWrite {
		r.net.SendTraced(r.node, qp.peer.rnic.node, st.d.Len+wireHeaderBytes, st.d.Trace, st.wLandFn)
		return
	}
	r.net.SendTraced(r.node, qp.peer.rnic.node, st.d.Len+wireHeaderBytes, st.d.Trace, st.deliverFn)
}

func (st *wrState) deliver() {
	qp := st.qp
	qp.peer.rnic.deliverSend(qp, st.id, st.d, 0)
}

// check is the RC ack timer body: unacked WRs are retransmitted, and after
// TransportRetries the QP errors out.
func (st *wrState) check() {
	qp := st.qp
	r := qp.rnic
	if st.done {
		return
	}
	st.attempts++
	if st.attempts > r.p.TransportRetries {
		qp.errored = true
		r.cache.evict(qp.id)
		st.done = true // tombstone: late copies must not double-complete
		r.eng.After(dedupWindow, st.expireFn)
		qp.outstanding--
		op := OpSend
		if st.isWrite {
			op = OpWrite
		}
		qp.cq.push(CQE{WRID: st.id, Op: op, Status: StatusRetryExceeded, Bytes: st.d.Len, Tenant: qp.Tenant, QP: qp, Desc: st.d})
		return
	}
	qp.retransmits++
	st.attempt()
	st.timer = r.eng.After(r.p.RetransmitTimeout, st.checkFn)
}

// expire retires a tombstoned slot after the dedup window.
func (st *wrState) expire() {
	st.qp.pending.del(st.id)
	st.qp.freeWR(st)
}

// recvFlow is the receiver-side state of one delivered copy of a send,
// pooled per RNIC with its stage callbacks bound once. It carries its own
// copy of the WR metadata, so receiver-side retry chains never reference
// the sender's (reusable) wrState slot.
type recvFlow struct {
	r       *RNIC // receiving RNIC
	src     *QP
	dst     *QP
	wrID    uint64
	d       mempool.Descriptor
	attempt int
	buf     mempool.Descriptor

	matchFn func() // after the match-pipe stage: SRQ pop or RNR
	dmaFn   func() // after payload DMA: recv CQE + ack
	retryFn func() // RNR backoff re-entry
	ackFn   func() // OK ack to the sender; releases the flow
	rnrFn   func() // RNRExceeded to the sender; releases the flow
	dupFn   func() // duplicate re-ack to the sender; releases the flow
}

func (r *RNIC) allocFlow() *recvFlow {
	var f *recvFlow
	if n := len(r.flowFree); n > 0 {
		f = r.flowFree[n-1]
		r.flowFree = r.flowFree[:n-1]
	} else {
		f = &recvFlow{r: r}
		f.matchFn = f.match
		f.dmaFn = f.dma
		f.retryFn = f.retry
		f.ackFn = f.ack
		f.rnrFn = f.rnrExceeded
		f.dupFn = f.dupAck
	}
	return f
}

func (r *RNIC) releaseFlow(f *recvFlow) {
	f.src = nil
	f.dst = nil
	f.d = mempool.Descriptor{}
	f.buf = mempool.Descriptor{}
	r.flowFree = append(r.flowFree, f)
}

// deliverSend runs on the receiving RNIC when a two-sided send arrives.
func (r *RNIC) deliverSend(src *QP, wrID uint64, d mempool.Descriptor, attempt int) {
	f := r.allocFlow()
	f.src = src
	f.dst = src.peer
	f.wrID = wrID
	f.d = d
	f.attempt = attempt
	f.start()
}

func (f *recvFlow) start() {
	r := f.r
	p := r.p
	dst := f.dst
	if dst.seen.has(f.wrID) {
		// Duplicate of a retransmitted WR (PSN already consumed): drop it
		// and re-ack so the sender stops retransmitting.
		dst.dupsDropped++
		r.eng.After(p.FabricPropagation, f.dupFn)
		return
	}
	cost := p.RNICPerWR + r.cachePenalty(dst.id) + p.RecvMatchCost
	at := r.pipe(cost)
	r.eng.At(at, f.matchFn)
}

func (f *recvFlow) match() {
	r := f.r
	p := r.p
	dst := f.dst
	buf, ok := dst.srq.pop()
	if !ok {
		// Receiver not ready: RC retries with backoff, then errors.
		dst.srq.rnr++
		r.rnrRetries++
		f.d.Trace.Event(trace.StageRNR, r.label)
		if f.attempt+1 > maxRNRRetries {
			f.src.rnic.eng.After(p.FabricPropagation, f.rnrFn)
			return
		}
		r.eng.After(p.RNRRetryDelay, f.retryFn)
		return
	}
	dst.markSeen(f.wrID)
	f.buf = buf
	done := r.pipe(r.dmaCost(f.d.Len))
	r.eng.At(done, f.dmaFn)
}

func (f *recvFlow) retry() {
	f.attempt++
	f.start()
}

func (f *recvFlow) dma() {
	r := f.r
	dst := f.dst
	recv := f.buf
	recv.Len = f.d.Len
	recv.Src = f.d.Src
	recv.Dst = f.d.Dst
	recv.Seq = f.d.Seq
	recv.Stamp = f.d.Stamp
	recv.Ctx = f.d.Ctx
	recv.Trace = f.d.Trace
	recv.Spec = f.d.Spec
	dst.srq.consumed++
	dst.cq.push(CQE{WRID: r.wrID(), Op: OpRecv, Status: StatusOK, Bytes: f.d.Len, Tenant: dst.Tenant, QP: dst, Desc: recv})
	// RC ack completes the sender after one propagation delay.
	r.eng.After(r.p.FabricPropagation, f.ackFn)
}

func (f *recvFlow) ack() {
	src := f.src
	src.complete(CQE{WRID: f.wrID, Op: OpSend, Status: StatusOK, Bytes: f.d.Len, Tenant: src.Tenant, QP: src, Desc: f.d})
	f.r.releaseFlow(f)
}

func (f *recvFlow) rnrExceeded() {
	src := f.src
	src.complete(CQE{WRID: f.wrID, Op: OpSend, Status: StatusRNRExceeded, Bytes: f.d.Len, Tenant: src.Tenant, QP: src, Desc: f.d})
	f.r.releaseFlow(f)
}

func (f *recvFlow) dupAck() {
	src := f.src
	src.complete(CQE{WRID: f.wrID, Op: OpSend, Status: StatusOK, Bytes: f.d.Len, Tenant: src.Tenant, QP: src, Desc: f.d})
	f.r.releaseFlow(f)
}

// RemoteBuf names a destination buffer for one-sided operations.
type RemoteBuf struct {
	MR  *MR
	Buf mempool.Buffer
}

// PostWrite posts a one-sided RDMA write of d.Len bytes into remote. The
// remote CPU is not involved and gets no completion — receivers poll the
// region (MR.PollLanded / MR.PollLandedInto) or arm MR.SetNotify. Engine
// context; the caller pays params.VerbsPostCost on its own core.
//
// Like PostSend, the WR rides the pooled wrState slab (nothing allocates at
// steady state) and the full RC transport applies: retransmission with
// receiver-side dedup (a retransmitted write lands exactly once),
// StatusRetryExceeded after the retry budget, and an immediate
// StatusQPError flush when the QP is already errored.
func (qp *QP) PostWrite(d mempool.Descriptor, remote RemoteBuf) uint64 {
	r := qp.rnic
	id := r.wrID()
	qp.outstanding++
	if qp.errored {
		r.eng.Immediate(func() {
			qp.complete(CQE{WRID: id, Op: OpWrite, Status: StatusQPError, Bytes: d.Len, Tenant: qp.Tenant, QP: qp, Desc: d})
		})
		return id
	}
	qp.bytesSent += uint64(d.Len)
	r.writes++

	// The transfer span runs from the post to the sender-side completion
	// (closed in CQ.push when the OpWrite CQE lands).
	d.Trace.BeginStage(trace.StageRDMA, r.label)
	st := qp.allocWR(id, d)
	st.isWrite = true
	st.remote = remote
	st.timer = r.eng.After(r.p.RetransmitTimeout, st.checkFn)
	st.attempt()
	return id
}

// wLand runs on the receiving RNIC when one copy of a one-sided write
// arrives: the write consumes a receiver pipeline slot and DMAs straight
// into the target buffer, no CPU involved.
func (st *wrState) wLand() {
	qp := st.qp
	rr := qp.peer.rnic
	at := rr.pipe(rr.p.RNICPerWR + rr.cachePenalty(qp.peer.id) + rr.dmaCost(st.d.Len))
	rr.eng.At(at, st.wDoneFn)
}

// wDone lands the payload — once; the receiver's PSN check discards
// retransmitted copies — then starts the RC ack back to the sender.
func (st *wrState) wDone() {
	qp := st.qp
	peer := qp.peer
	rr := peer.rnic
	if peer.seen.has(st.id) {
		peer.dupsDropped++
	} else {
		peer.markSeen(st.id)
		st.remote.MR.land(Landed{Buf: st.remote.Buf, Bytes: st.d.Len, Desc: st.d, At: rr.eng.Now()})
	}
	rr.eng.After(rr.p.FabricPropagation, st.wAckFn)
}

func (st *wrState) wAck() {
	qp := st.qp
	qp.complete(CQE{WRID: st.id, Op: OpWrite, Status: StatusOK, Bytes: st.d.Len, Tenant: qp.Tenant, QP: qp, Desc: st.d})
}

// PostRead posts a one-sided RDMA read of n bytes from remote into a local
// buffer. Completion delivers after the data returns.
func (qp *QP) PostRead(n int, remote RemoteBuf) uint64 {
	r := qp.rnic
	p := r.p
	id := r.wrID()
	qp.outstanding++
	r.reads++

	cost := p.RNICPerWR + r.cachePenalty(qp.id)
	done := r.pipe(cost)
	r.eng.At(done, func() {
		// Request packet out...
		r.net.Send(r.node, qp.peer.rnic.node, wireHeaderBytes, func() {
			rr := qp.peer.rnic
			at := rr.pipe(p.RNICPerWR + rr.cachePenalty(qp.peer.id) + rr.dmaCost(n))
			rr.eng.At(at, func() {
				// ...data packet back.
				rr.net.Send(rr.node, r.node, n+wireHeaderBytes, func() {
					fin := r.pipe(r.dmaCost(n))
					r.eng.At(fin, func() {
						qp.complete(CQE{WRID: id, Op: OpRead, Status: StatusOK, Bytes: n, Tenant: qp.Tenant, QP: qp})
					})
				})
			})
		})
	})
	return id
}

// CASResult reports the outcome of a remote compare-and-swap.
type CASResult struct {
	WRID uint64
	Old  uint64
	// Swapped reports whether the exchange happened (Old == compare).
	Swapped bool
}

// PostCAS posts a one-sided atomic compare-and-swap on a named word at the
// peer's RNIC. fn is invoked (engine context) when the result returns.
// This is the primitive under the OWDL distributed-lock baseline (§4.1.2).
func (qp *QP) PostCAS(key string, compare, swap uint64, fn func(CASResult)) uint64 {
	r := qp.rnic
	p := r.p
	id := r.wrID()
	qp.outstanding++
	r.atomics++

	cost := p.RNICPerWR + r.cachePenalty(qp.id)
	done := r.pipe(cost)
	r.eng.At(done, func() {
		half := p.CASLatency / 2
		r.eng.After(half, func() {
			rr := qp.peer.rnic
			old := rr.words[key]
			swapped := old == compare
			if swapped {
				rr.words[key] = swap
			}
			rr.eng.After(half, func() {
				qp.complete(CQE{WRID: id, Op: OpCAS, Status: StatusOK, Tenant: qp.Tenant, QP: qp})
				fn(CASResult{WRID: id, Old: old, Swapped: swapped})
			})
		})
	})
	return id
}

// markSeen records a processed wrID for duplicate detection and arms the
// batched sweeper that retires entries after the dedup window — one timer
// per QP, not one per delivery.
func (qp *QP) markSeen(wrID uint64) {
	qp.seen.put(wrID)
	qp.seenLog.PushBack(seenEntry{wr: wrID, at: qp.rnic.eng.Now()})
	if !qp.sweepArmed {
		qp.sweepArmed = true
		qp.rnic.eng.After(dedupWindow, qp.sweepFn)
	}
}

// sweepSeen retires dedup entries older than the window and re-arms while
// any remain. The ring's head advances in place, so the log's footprint is
// bounded by the peak one-window population, not by lifetime deliveries.
func (qp *QP) sweepSeen() {
	now := qp.rnic.eng.Now()
	for qp.seenLog.Len() > 0 {
		e := qp.seenLog.Front()
		if now-e.at < dedupWindow {
			break
		}
		qp.seen.del(e.wr)
		qp.seenLog.PopFront()
	}
	if qp.seenLog.Len() > 0 {
		qp.rnic.eng.After(dedupWindow-(now-qp.seenLog.Front().at), qp.sweepFn)
	} else {
		qp.sweepArmed = false
	}
}

// deactivate releases RNIC resources ("shadow" QP, §3.3): the QP keeps its
// software state but vacates the cache and cannot post until reactivated.
func (qp *QP) deactivate() {
	qp.active = false
	qp.rnic.cache.evict(qp.id)
}
