package rdma

import (
	"time"

	"nadino/internal/mempool"
	"nadino/internal/sim"
	"nadino/internal/trace"
)

// QP is one end of a reliable-connected queue pair. Each tenant's QPs on a
// node share one SRQ (receive side) and the node shares one CQ (§3.3).
type QP struct {
	id     int
	rnic   *RNIC
	peer   *QP
	Tenant string
	srq    *SRQ // receive side for two-sided ops arriving at this end
	cq     *CQ  // completions for WRs posted at this end

	active      bool
	errored     bool
	repairing   bool
	outstanding int
	sendsPosted uint64
	bytesSent   uint64

	// pending tracks unacked WRs for the RC retransmission timer.
	pending map[uint64]*sendAttempt
	// seen dedupes retransmitted deliveries at the receiver (the PSN
	// check real RC performs): a duplicate is re-acked but consumes no
	// receive buffer. Entries are swept after dedupWindow (see sweepSeen).
	seen        map[uint64]bool
	seenLog     []seenEntry
	sweepArmed  bool
	retransmits uint64
	dupsDropped uint64
}

// seenEntry records when a wrID entered the receiver's dedup set.
type seenEntry struct {
	wr uint64
	at time.Duration
}

// dedupWindow bounds how long dedup state is retained. It must exceed the
// maximum plausible delivery skew between an original and its last
// retransmitted copy (retries span ~4ms; pipe backlogs add the rest).
const dedupWindow = time.Second

// sendAttempt is the transport-level state of one in-flight WR.
type sendAttempt struct {
	done     bool
	attempts int
	timer    sim.Event
}

// Connect establishes an RC connection between two RNICs and returns both
// ends. The caller models setup latency (params.QPSetupTime) — see
// ConnPool.Establish for the pooled version.
func Connect(a, b *RNIC, tenant string, srqA, srqB *SRQ, cqA, cqB *CQ) (*QP, *QP) {
	qa := &QP{id: a.qpID(), rnic: a, Tenant: tenant, srq: srqA, cq: cqA, active: true,
		pending: make(map[uint64]*sendAttempt), seen: make(map[uint64]bool)}
	qb := &QP{id: b.qpID(), rnic: b, Tenant: tenant, srq: srqB, cq: cqB, active: true,
		pending: make(map[uint64]*sendAttempt), seen: make(map[uint64]bool)}
	qa.peer, qb.peer = qb, qa
	return qa, qb
}

// Errored reports whether the QP is in the error state (retry exceeded).
func (qp *QP) Errored() bool { return qp.errored }

// Retransmits reports transport-level retransmissions on this QP.
func (qp *QP) Retransmits() uint64 { return qp.retransmits }

// DupsDropped reports retransmitted deliveries discarded by the receiver's
// PSN check.
func (qp *QP) DupsDropped() uint64 { return qp.dupsDropped }

// ForceError drives the QP into the error state immediately, as an RNIC
// firmware fault or peer reboot would: the cache slot is evicted and new
// posts flush with StatusQPError until Reset (ConnPool.Repair recovers it).
// Injection hook for internal/chaos. In-flight sends keep retransmitting
// until their own retry budgets expire.
func (qp *QP) ForceError() {
	if qp.errored {
		return
	}
	qp.errored = true
	qp.rnic.cache.evict(qp.id)
}

// Reset returns an errored QP to the ready state after the out-of-band
// re-handshake (the caller models the setup delay, see ConnPool.Repair).
func (qp *QP) Reset() {
	qp.errored = false
	qp.outstanding = 0
}

// ID reports the QP number.
func (qp *QP) ID() int { return qp.id }

// Active reports whether the QP currently holds RNIC resources.
func (qp *QP) Active() bool { return qp.active }

// Outstanding reports WRs posted but not yet completed — the congestion
// signal the DNE uses to pick the least-congested RC connection (§3.2).
func (qp *QP) Outstanding() int { return qp.outstanding }

// RNIC returns the local RNIC.
func (qp *QP) RNIC() *RNIC { return qp.rnic }

// Peer returns the remote end.
func (qp *QP) Peer() *QP { return qp.peer }

func (qp *QP) complete(e CQE) {
	if st := qp.pending[e.WRID]; st != nil {
		if st.done {
			return // duplicate ack (a retransmitted copy also delivered)
		}
		st.done = true
		st.timer.Cancel()
		if st.attempts == 0 {
			// Never retransmitted: exactly one copy exists, so no
			// duplicate ack can arrive — reclaim immediately. This keeps
			// the map tiny on lossless paths.
			delete(qp.pending, e.WRID)
		} else {
			// Tombstone against late duplicate acks, swept after the
			// dedup window.
			id := e.WRID
			qp.rnic.eng.After(dedupWindow, func() { delete(qp.pending, id) })
		}
	}
	qp.outstanding--
	qp.cq.push(e)
}

// PostSend posts a two-sided send of d.Len bytes described by d. The
// payload lands in a buffer the receiver posted to its SRQ; the receive
// CQE carries that buffer with d's routing metadata. Engine context; the
// caller pays params.VerbsPostCost on its own core.
func (qp *QP) PostSend(d mempool.Descriptor) uint64 {
	r := qp.rnic
	p := r.p
	id := r.wrID()
	qp.outstanding++
	if qp.errored {
		// Error-state QPs flush new WRs immediately.
		r.eng.Immediate(func() {
			qp.complete(CQE{WRID: id, Op: OpSend, Status: StatusQPError, Bytes: d.Len, Tenant: qp.Tenant, QP: qp, Desc: d})
		})
		return id
	}
	qp.sendsPosted++
	qp.bytesSent += uint64(d.Len)
	r.sends++

	// The transfer span runs from the post to the receive-side CQE (closed
	// in CQ.push); a send abandoned by the transport leaves it open, which
	// reports and exports ignore.
	d.Trace.BeginStage(trace.StageRDMA, string(r.node)+"/rnic")
	st := &sendAttempt{}
	qp.pending[id] = st
	attempt := func() {
		cost := p.RNICPerWR + r.cachePenalty(qp.id) + r.dmaCost(d.Len)
		done := r.pipe(cost)
		wire := d.Len + wireHeaderBytes
		r.eng.At(done, func() {
			r.net.SendTraced(r.node, qp.peer.rnic.node, wire, d.Trace, func() {
				qp.peer.rnic.deliverSend(qp, id, d, 0)
			})
		})
	}
	qp.armRetransmit(id, st, d, attempt)
	attempt()
	return id
}

// armRetransmit schedules the RC ack timer for a WR: unacked WRs are
// retransmitted, and after TransportRetries the QP errors out.
func (qp *QP) armRetransmit(id uint64, st *sendAttempt, d mempool.Descriptor, attempt func()) {
	r := qp.rnic
	p := r.p
	var check func()
	check = func() {
		if st.done {
			return
		}
		st.attempts++
		if st.attempts > p.TransportRetries {
			qp.errored = true
			qp.rnic.cache.evict(qp.id)
			st.done = true // tombstone: late copies must not double-complete
			r.eng.After(dedupWindow, func() { delete(qp.pending, id) })
			qp.outstanding--
			qp.cq.push(CQE{WRID: id, Op: OpSend, Status: StatusRetryExceeded, Bytes: d.Len, Tenant: qp.Tenant, QP: qp, Desc: d})
			return
		}
		qp.retransmits++
		attempt()
		st.timer = r.eng.After(p.RetransmitTimeout, check)
	}
	st.timer = r.eng.After(p.RetransmitTimeout, check)
}

// deliverSend runs on the receiving RNIC when a two-sided send arrives.
func (r *RNIC) deliverSend(src *QP, wrID uint64, d mempool.Descriptor, attempt int) {
	dst := src.peer
	p := r.p
	if dst.seen[wrID] {
		// Duplicate of a retransmitted WR (PSN already consumed): drop it
		// and re-ack so the sender stops retransmitting.
		dst.dupsDropped++
		r.eng.After(p.FabricPropagation, func() {
			src.complete(CQE{WRID: wrID, Op: OpSend, Status: StatusOK, Bytes: d.Len, Tenant: src.Tenant, QP: src, Desc: d})
		})
		return
	}
	cost := p.RNICPerWR + r.cachePenalty(dst.id) + p.RecvMatchCost
	at := r.pipe(cost)
	r.eng.At(at, func() {
		buf, ok := dst.srq.pop()
		if !ok {
			// Receiver not ready: RC retries with backoff, then errors.
			dst.srq.rnr++
			r.rnrRetries++
			d.Trace.Event(trace.StageRNR, string(r.node)+"/rnic")
			if attempt+1 > maxRNRRetries {
				src.rnic.eng.After(p.FabricPropagation, func() {
					src.complete(CQE{WRID: wrID, Op: OpSend, Status: StatusRNRExceeded, Bytes: d.Len, Tenant: src.Tenant, QP: src, Desc: d})
				})
				return
			}
			r.eng.After(p.RNRRetryDelay, func() {
				r.deliverSend(src, wrID, d, attempt+1)
			})
			return
		}
		dst.markSeen(wrID)
		done := r.pipe(r.dmaCost(d.Len))
		r.eng.At(done, func() {
			recv := buf
			recv.Len = d.Len
			recv.Src = d.Src
			recv.Dst = d.Dst
			recv.Seq = d.Seq
			recv.Stamp = d.Stamp
			recv.Ctx = d.Ctx
			recv.Trace = d.Trace
			dst.srq.consumed++
			dst.cq.push(CQE{WRID: r.wrID(), Op: OpRecv, Status: StatusOK, Bytes: d.Len, Tenant: dst.Tenant, QP: dst, Desc: recv})
			// RC ack completes the sender after one propagation delay.
			r.eng.After(p.FabricPropagation, func() {
				src.complete(CQE{WRID: wrID, Op: OpSend, Status: StatusOK, Bytes: d.Len, Tenant: src.Tenant, QP: src, Desc: d})
			})
		})
	})
}

// RemoteBuf names a destination buffer for one-sided operations.
type RemoteBuf struct {
	MR  *MR
	Buf mempool.Buffer
}

// PostWrite posts a one-sided RDMA write of d.Len bytes into remote. The
// remote CPU is not involved and gets no completion — receivers must poll
// the region (MR.PollLanded). Engine context.
func (qp *QP) PostWrite(d mempool.Descriptor, remote RemoteBuf) uint64 {
	r := qp.rnic
	p := r.p
	id := r.wrID()
	qp.outstanding++
	qp.bytesSent += uint64(d.Len)
	r.writes++

	d.Trace.BeginStage(trace.StageRDMA, string(r.node)+"/rnic")
	cost := p.RNICPerWR + r.cachePenalty(qp.id) + r.dmaCost(d.Len)
	done := r.pipe(cost)
	wire := d.Len + wireHeaderBytes
	r.eng.At(done, func() {
		r.net.SendTraced(r.node, qp.peer.rnic.node, wire, d.Trace, func() {
			rr := qp.peer.rnic
			at := rr.pipe(p.RNICPerWR + rr.cachePenalty(qp.peer.id) + rr.dmaCost(d.Len))
			rr.eng.At(at, func() {
				remote.MR.landed = append(remote.MR.landed, Landed{
					Buf:   remote.Buf,
					Bytes: d.Len,
					Desc:  d,
					At:    rr.eng.Now(),
				})
				rr.eng.After(p.FabricPropagation, func() {
					qp.complete(CQE{WRID: id, Op: OpWrite, Status: StatusOK, Bytes: d.Len, Tenant: qp.Tenant, QP: qp, Desc: d})
				})
			})
		})
	})
	return id
}

// PostRead posts a one-sided RDMA read of n bytes from remote into a local
// buffer. Completion delivers after the data returns.
func (qp *QP) PostRead(n int, remote RemoteBuf) uint64 {
	r := qp.rnic
	p := r.p
	id := r.wrID()
	qp.outstanding++
	r.reads++

	cost := p.RNICPerWR + r.cachePenalty(qp.id)
	done := r.pipe(cost)
	r.eng.At(done, func() {
		// Request packet out...
		r.net.Send(r.node, qp.peer.rnic.node, wireHeaderBytes, func() {
			rr := qp.peer.rnic
			at := rr.pipe(p.RNICPerWR + rr.cachePenalty(qp.peer.id) + rr.dmaCost(n))
			rr.eng.At(at, func() {
				// ...data packet back.
				rr.net.Send(rr.node, r.node, n+wireHeaderBytes, func() {
					fin := r.pipe(r.dmaCost(n))
					r.eng.At(fin, func() {
						qp.complete(CQE{WRID: id, Op: OpRead, Status: StatusOK, Bytes: n, Tenant: qp.Tenant, QP: qp})
					})
				})
			})
		})
	})
	return id
}

// CASResult reports the outcome of a remote compare-and-swap.
type CASResult struct {
	WRID uint64
	Old  uint64
	// Swapped reports whether the exchange happened (Old == compare).
	Swapped bool
}

// PostCAS posts a one-sided atomic compare-and-swap on a named word at the
// peer's RNIC. fn is invoked (engine context) when the result returns.
// This is the primitive under the OWDL distributed-lock baseline (§4.1.2).
func (qp *QP) PostCAS(key string, compare, swap uint64, fn func(CASResult)) uint64 {
	r := qp.rnic
	p := r.p
	id := r.wrID()
	qp.outstanding++
	r.atomics++

	cost := p.RNICPerWR + r.cachePenalty(qp.id)
	done := r.pipe(cost)
	r.eng.At(done, func() {
		half := p.CASLatency / 2
		r.eng.After(half, func() {
			rr := qp.peer.rnic
			old := rr.words[key]
			swapped := old == compare
			if swapped {
				rr.words[key] = swap
			}
			rr.eng.After(half, func() {
				qp.complete(CQE{WRID: id, Op: OpCAS, Status: StatusOK, Tenant: qp.Tenant, QP: qp})
				fn(CASResult{WRID: id, Old: old, Swapped: swapped})
			})
		})
	})
	return id
}

// markSeen records a processed wrID for duplicate detection and arms the
// batched sweeper that retires entries after the dedup window — one timer
// per QP, not one per delivery.
func (qp *QP) markSeen(wrID uint64) {
	qp.seen[wrID] = true
	qp.seenLog = append(qp.seenLog, seenEntry{wr: wrID, at: qp.rnic.eng.Now()})
	if !qp.sweepArmed {
		qp.sweepArmed = true
		qp.rnic.eng.After(dedupWindow, qp.sweepSeen)
	}
}

// sweepSeen retires dedup entries older than the window and re-arms while
// any remain.
func (qp *QP) sweepSeen() {
	now := qp.rnic.eng.Now()
	i := 0
	for ; i < len(qp.seenLog); i++ {
		if now-qp.seenLog[i].at < dedupWindow {
			break
		}
		delete(qp.seen, qp.seenLog[i].wr)
	}
	qp.seenLog = qp.seenLog[i:]
	if len(qp.seenLog) > 0 {
		qp.rnic.eng.After(dedupWindow-(now-qp.seenLog[0].at), qp.sweepSeen)
	} else {
		qp.sweepArmed = false
	}
}

// deactivate releases RNIC resources ("shadow" QP, §3.3): the QP keeps its
// software state but vacates the cache and cannot post until reactivated.
func (qp *QP) deactivate() {
	qp.active = false
	qp.rnic.cache.evict(qp.id)
}
