package rdma

import (
	"nadino/internal/flightrec"
	"nadino/internal/params"
	"nadino/internal/sim"
)

// ConnPool manages a node's established RC connections toward one peer node
// for one tenant (§3.3): connections are set up once (amortizing the
// tens-of-milliseconds QP handshake), kept in a pool, and categorized into
// active and inactive ("shadow") QPs. Inactive QPs consume no RNIC cache;
// the pool activates and deactivates them in proportion to load without any
// cross-node state synchronization.
type ConnPool struct {
	eng    *sim.Engine
	p      *params.Params
	Tenant string

	conns []*QP // local ends toward the peer

	// minActive is the floor of active connections kept warm.
	minActive int
	// congestion is the per-QP outstanding depth beyond which the pool
	// activates another shadow QP.
	congestion int

	activations   uint64
	deactivations uint64
	repairs       uint64

	// Flight recorder hook (optional): forced errors and repairs land in
	// the ring under this pool's interned actor id.
	rec      *flightrec.Recorder
	recActor uint16
}

// SetFlightRecorder routes this pool's QP error/repair events into r under
// actor (e.g. "qp:amber@nodeA>nodeB"); nil detaches.
func (cp *ConnPool) SetFlightRecorder(r *flightrec.Recorder, actor string) {
	cp.rec = r
	cp.recActor = r.Actor(actor)
}

// EstablishPair creates n RC connections between RNICs a and b for tenant
// and returns the two pools (a's view and b's view). The calling process
// blocks for one pooled setup handshake (params.QPSetupTime) — connection
// setup is pipelined across the batch, as a real DNE would do at startup.
func EstablishPair(pr *sim.Proc, p *params.Params, tenant string, a, b *RNIC, n int,
	srqA, srqB *SRQ, cqA, cqB *CQ) (*ConnPool, *ConnPool) {
	if n <= 0 {
		panic("rdma: connection pool must hold at least one QP")
	}
	pr.Sleep(p.QPSetupTime)
	poolA := &ConnPool{eng: pr.Engine(), p: p, Tenant: tenant, minActive: 1, congestion: 8}
	poolB := &ConnPool{eng: pr.Engine(), p: p, Tenant: tenant, minActive: 1, congestion: 8}
	for i := 0; i < n; i++ {
		qa, qb := Connect(a, b, tenant, srqA, srqB, cqA, cqB)
		if i >= poolA.minActive {
			qa.deactivate()
		}
		if i >= poolB.minActive {
			qb.deactivate()
		}
		poolA.conns = append(poolA.conns, qa)
		poolB.conns = append(poolB.conns, qb)
	}
	return poolA, poolB
}

// Pick returns the least-congested active connection, activating a shadow
// QP in the background when every active connection is congested. Errored
// QPs are skipped (Repair brings them back). It never blocks: the caller
// transmits on the returned QP immediately.
func (cp *ConnPool) Pick() *QP {
	var best *QP
	var idle *QP
	for _, qp := range cp.conns {
		if qp.errored {
			continue
		}
		if qp.active {
			if best == nil || qp.outstanding < best.outstanding {
				best = qp
			}
		} else if idle == nil {
			idle = qp
		}
	}
	if best == nil {
		if idle == nil {
			// Every connection errored: hand back the first while Repair
			// works; its posts will flush with errors and be retried.
			return cp.conns[0]
		}
		// All shadows: activate the first synchronously (costs show up as
		// QPActivateTime before it can carry traffic).
		idle.active = true
		cp.activations++
		return idle
	}
	if best.outstanding >= cp.congestion && idle != nil {
		cp.activate(idle)
	}
	return best
}

// activate brings a shadow QP back after the activation delay.
func (cp *ConnPool) activate(qp *QP) {
	cp.activations++
	qp.active = true      // reserve so concurrent Picks don't double-activate
	qp.outstanding += 1e6 // poisoned until ready
	cp.eng.After(cp.p.QPActivateTime, func() {
		qp.outstanding -= 1e6
	})
}

// Shrink deactivates idle connections above the floor. The DNE core thread
// calls this periodically; it is the "deactivates RC connections in
// proportion to the load" half of §3.3.
func (cp *ConnPool) Shrink() int {
	active := 0
	for _, qp := range cp.conns {
		if qp.active {
			active++
		}
	}
	n := 0
	for _, qp := range cp.conns {
		if active-n <= cp.minActive {
			break
		}
		if qp.active && qp.outstanding == 0 {
			qp.deactivate()
			cp.deactivations++
			n++
		}
	}
	return n
}

// Repair re-handshakes errored connections in the background: each costs
// one QPSetupTime before rejoining the pool. Call it periodically (the DNE
// core thread does). Returns how many repairs were started.
func (cp *ConnPool) Repair() int {
	n := 0
	for _, qp := range cp.conns {
		if !qp.errored || qp.repairing {
			continue
		}
		qp.repairing = true
		n++
		cp.repairs++
		q := qp
		cp.eng.After(cp.p.QPSetupTime, func() {
			q.Reset()
			q.repairing = false
		})
	}
	if n > 0 && cp.rec != nil {
		cp.rec.Record(flightrec.KindQPRepair, cp.recActor, int64(n), 0)
	}
	return n
}

// ForceError drives up to n non-errored connections into the error state
// (n <= 0 means all) and reports how many were errored. Injection hook for
// internal/chaos; Repair recovers them on its normal cadence.
func (cp *ConnPool) ForceError(n int) int {
	if n <= 0 {
		n = len(cp.conns)
	}
	hit := 0
	for _, qp := range cp.conns {
		if hit >= n {
			break
		}
		if qp.errored {
			continue
		}
		qp.ForceError()
		hit++
	}
	if hit > 0 && cp.rec != nil {
		cp.rec.Record(flightrec.KindQPError, cp.recActor, int64(hit), 0)
	}
	return hit
}

// ErroredCount reports connections currently in the error state.
func (cp *ConnPool) ErroredCount() int {
	n := 0
	for _, qp := range cp.conns {
		if qp.errored {
			n++
		}
	}
	return n
}

// Repairs reports lifetime connection re-establishments.
func (cp *ConnPool) Repairs() uint64 { return cp.repairs }

// ActiveCount reports currently active QPs.
func (cp *ConnPool) ActiveCount() int {
	n := 0
	for _, qp := range cp.conns {
		if qp.active {
			n++
		}
	}
	return n
}

// Size reports total pooled connections.
func (cp *ConnPool) Size() int { return len(cp.conns) }

// Activations reports lifetime shadow-QP activations.
func (cp *ConnPool) Activations() uint64 { return cp.activations }

// Conns exposes the pooled QPs (tests and stats).
func (cp *ConnPool) Conns() []*QP { return cp.conns }
