package rdma

import (
	"testing"

	"nadino/internal/fabric"
	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/sim"
)

// TestSRQBackingArrayBounded is the regression fence for the old
// `posted = posted[1:]` idiom: popping from a Go slice that way never
// releases the backing array, so a long-lived SRQ cycling buffers grew its
// backing array without bound (and pinned every popped descriptor for GC).
// The ring deque must keep capacity proportional to the high-water mark of
// *outstanding* buffers, not to lifetime throughput.
func TestSRQBackingArrayBounded(t *testing.T) {
	srq := NewSRQ("t")
	const rounds = 100000
	const depth = 8
	for i := 0; i < rounds; i++ {
		for j := 0; j < depth; j++ {
			srq.PostRecv(mempool.Descriptor{Tenant: "t", Seq: uint64(i*depth + j)})
		}
		for j := 0; j < depth; j++ {
			d, ok := srq.pop()
			if !ok {
				t.Fatalf("round %d: pop %d failed", i, j)
			}
			if want := uint64(i*depth + j); d.Seq != want {
				t.Fatalf("round %d: FIFO order broken: got seq %d, want %d", i, d.Seq, want)
			}
		}
	}
	if c := srq.posted.Cap(); c > 4*depth {
		t.Fatalf("SRQ backing array grew to %d slots after %d posts with max depth %d — backing-array retention is back",
			c, rounds*depth, depth)
	}
}

// TestSeenLogBoundedUnderSustainedLoad drives a long-lived QP with steady
// traffic for many multiples of the dedup window and asserts the receiver's
// duplicate-detection state stays bounded: the seen set and its expiry log
// must hold only entries younger than dedupWindow, not every wire ID the QP
// ever delivered (the old seenLog grew one entry per message, forever).
func TestSeenLogBoundedUnderSustainedLoad(t *testing.T) {
	r := newRig(t, 1)
	qa, qb := Connect(r.ra, r.rb, "t", r.srqA, r.srqB, r.cqA, r.cqB)

	// Closed-loop echo driver entirely at the rdma layer: one send in
	// flight, recycle the landed buffer back into the SRQ on each delivery.
	postRecvs(t, r.poolB, r.srqB, 16)
	src, _ := r.poolA.Get("fnA")
	var delivered int
	r.eng.Spawn("driver", func(pr *sim.Proc) {
		for {
			qa.PostSend(mempool.Descriptor{Tenant: "t", Buf: src, Len: 64})
			r.cqA.Wait(pr)
			r.cqA.Poll(0)
		}
	})
	r.eng.Spawn("receiver", func(pr *sim.Proc) {
		for {
			r.cqB.Wait(pr)
			for _, e := range r.cqB.Poll(0) {
				if e.Op != OpRecv {
					continue
				}
				delivered++
				// Recycle the consumed buffer straight back into the SRQ.
				r.srqB.PostRecv(mempool.Descriptor{Tenant: "t", Buf: e.Desc.Buf})
			}
		}
	})
	// Run for 40 dedup windows of steady traffic.
	r.eng.RunUntil(40 * dedupWindow)

	if delivered < 1000 {
		t.Fatalf("driver delivered only %d messages — load too light to exercise the sweep", delivered)
	}
	// Entries expire after dedupWindow; with ~1-2µs per echo the live set
	// is a few hundred thousand times smaller than lifetime deliveries.
	perWindow := delivered/40 + 1
	if n := qb.seenLog.Len(); n > 4*perWindow {
		t.Fatalf("seenLog holds %d entries after %d deliveries (~%d per window) — sweep is not trimming",
			n, delivered, perWindow)
	}
	if n := qb.seen.n; n > 4*perWindow {
		t.Fatalf("seen set holds %d entries after %d deliveries (~%d per window) — entries never expire",
			n, delivered, perWindow)
	}
	if c := qb.seenLog.Cap(); c > 64*perWindow {
		t.Fatalf("seenLog backing array at %d slots — unbounded growth", c)
	}
}

// TestWRSlabReuse pins the pooled WR-state contract: a QP that sends
// forever reuses a handful of wrState slots instead of allocating one per
// send, and the pending table stays empty once traffic drains.
func TestWRSlabReuse(t *testing.T) {
	r := newRig(t, 3)
	qa, _ := Connect(r.ra, r.rb, "t", r.srqA, r.srqB, r.cqA, r.cqB)
	postRecvs(t, r.poolB, r.srqB, 16)
	src, _ := r.poolA.Get("fnA")
	const msgs = 5000
	r.eng.Spawn("driver", func(pr *sim.Proc) {
		for i := 0; i < msgs; i++ {
			qa.PostSend(mempool.Descriptor{Tenant: "t", Buf: src, Len: 64})
			r.cqA.Wait(pr)
			r.cqA.Poll(0)
		}
	})
	r.eng.Spawn("receiver", func(pr *sim.Proc) {
		for {
			r.cqB.Wait(pr)
			for _, e := range r.cqB.Poll(0) {
				if e.Op == OpRecv {
					r.srqB.PostRecv(mempool.Descriptor{Tenant: "t", Buf: e.Desc.Buf})
				}
			}
		}
	})
	r.eng.Run()
	if n := qa.pending.n; n != 0 {
		t.Fatalf("pending table holds %d entries after drain", n)
	}
	// One message in flight at a time: the slab needs ~1 live slot; allow
	// slack for tombstoned retransmit slots.
	if free := len(qa.wrFree); free > 8 {
		t.Fatalf("wrState free list grew to %d slots for a 1-deep pipeline — slots are not being reused", free)
	}
}

// BenchmarkQPPostSend measures the full two-sided send hot path — PostSend
// through delivery, receiver CQE, ack and sender completion — in virtual
// time, end to end through the pooled WR slab and recvFlow state machine.
func BenchmarkQPPostSend(b *testing.B) {
	p := params.Default()
	eng := sim.NewEngine(1)
	defer eng.Stop()
	net := fabric.New(eng, p)
	ra := NewRNIC(eng, p, "nodeA", net)
	rb := NewRNIC(eng, p, "nodeB", net)
	poolA := mempool.NewPool("t", 8192, 64, p.HugepageSize)
	poolB := mempool.NewPool("t", 8192, 64, p.HugepageSize)
	srqA, srqB := NewSRQ("t"), NewSRQ("t")
	cqA, cqB := NewCQ(eng), NewCQ(eng)
	qa, _ := Connect(ra, rb, "t", srqA, srqB, cqA, cqB)
	for i := 0; i < 32; i++ {
		buf, _ := poolB.Get("rq")
		srqB.PostRecv(mempool.Descriptor{Tenant: "t", Buf: buf})
	}
	src, _ := poolA.Get("fnA")
	eng.Spawn("driver", func(pr *sim.Proc) {
		for i := 0; i < b.N; i++ {
			qa.PostSend(mempool.Descriptor{Tenant: "t", Buf: src, Len: 64})
			cqA.Wait(pr)
			cqA.Poll(0)
		}
	})
	eng.Spawn("receiver", func(pr *sim.Proc) {
		for {
			cqB.Wait(pr)
			for _, e := range cqB.Poll(0) {
				if e.Op == OpRecv {
					srqB.PostRecv(mempool.Descriptor{Tenant: "t", Buf: e.Desc.Buf})
				}
			}
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run()
}

// BenchmarkCQPollInto measures the CQ ring hot path: batched push and
// caller-buffer drain, no per-poll allocation.
func BenchmarkCQPollInto(b *testing.B) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	cq := NewCQ(eng)
	buf := make([]CQE, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 16; j++ {
			cq.push(CQE{WRID: uint64(i*16 + j), Op: OpSend, Status: StatusOK})
		}
		for cq.n > 0 {
			cq.PollInto(buf)
		}
	}
}
