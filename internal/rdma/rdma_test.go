package rdma

import (
	"testing"
	"testing/quick"
	"time"

	"nadino/internal/fabric"
	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/sim"
)

// testRig wires two nodes with RNICs, pools, SRQs and CQs.
type testRig struct {
	eng          *sim.Engine
	p            *params.Params
	net          *fabric.Network
	ra, rb       *RNIC
	poolA, poolB *mempool.Pool
	srqA, srqB   *SRQ
	cqA, cqB     *CQ
}

func newRig(t *testing.T, seed int64) *testRig {
	t.Helper()
	p := params.Default()
	eng := sim.NewEngine(seed)
	t.Cleanup(eng.Stop)
	net := fabric.New(eng, p)
	r := &testRig{
		eng:   eng,
		p:     p,
		net:   net,
		poolA: mempool.NewPool("t", 8192, 256, p.HugepageSize),
		poolB: mempool.NewPool("t", 8192, 256, p.HugepageSize),
		srqA:  NewSRQ("t"),
		srqB:  NewSRQ("t"),
	}
	r.ra = NewRNIC(eng, p, "nodeA", net)
	r.rb = NewRNIC(eng, p, "nodeB", net)
	r.cqA = NewCQ(eng)
	r.cqB = NewCQ(eng)
	return r
}

// postRecvs posts n receive buffers from pool into srq, owned by "rq".
func postRecvs(t *testing.T, pool *mempool.Pool, srq *SRQ, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		b, err := pool.Get("rq")
		if err != nil {
			t.Fatal(err)
		}
		srq.PostRecv(mempool.Descriptor{Tenant: pool.Tenant(), Buf: b})
	}
}

func TestTwoSidedSendDelivers(t *testing.T) {
	r := newRig(t, 1)
	qa, _ := Connect(r.ra, r.rb, "t", r.srqA, r.srqB, r.cqA, r.cqB)
	postRecvs(t, r.poolB, r.srqB, 4)

	src, _ := r.poolA.Get("fnA")
	var sendDone, recvDone time.Duration
	var recvd mempool.Descriptor
	r.eng.Spawn("sender", func(p *sim.Proc) {
		qa.PostSend(mempool.Descriptor{Tenant: "t", Buf: src, Len: 64, Src: "fnA", Dst: "fnB", Seq: 7, Ctx: "req"})
		r.cqA.Wait(p)
		e := r.cqA.Poll(1)[0]
		if e.Op != OpSend || e.Status != StatusOK {
			t.Errorf("sender CQE = %+v", e)
		}
		sendDone = p.Now()
	})
	r.eng.Spawn("receiver", func(p *sim.Proc) {
		r.cqB.Wait(p)
		e := r.cqB.Poll(1)[0]
		if e.Op != OpRecv || e.Status != StatusOK || e.Bytes != 64 {
			t.Errorf("recv CQE = %+v", e)
		}
		recvd = e.Desc
		recvDone = p.Now()
	})
	r.eng.Run()
	if recvDone == 0 || sendDone == 0 {
		t.Fatal("completion(s) missing")
	}
	if recvd.Src != "fnA" || recvd.Dst != "fnB" || recvd.Seq != 7 || recvd.Ctx != "req" || recvd.Len != 64 {
		t.Fatalf("metadata not carried: %+v", recvd)
	}
	// Payload landed in a receiver-posted buffer from B's pool.
	if owner, err := r.poolB.OwnerOf(recvd.Buf); err != nil || owner != "rq" {
		t.Fatalf("landed buffer owner = %q, err=%v", owner, err)
	}
	if r.srqB.Consumed() != 1 {
		t.Fatalf("consumed = %d", r.srqB.Consumed())
	}
	// One-way delivery should be single-digit microseconds at 64 B.
	if recvDone > 10*time.Microsecond {
		t.Fatalf("64B one-way delivery %v too slow", recvDone)
	}
}

func TestRNRRetryThenDelivery(t *testing.T) {
	r := newRig(t, 1)
	qa, _ := Connect(r.ra, r.rb, "t", r.srqA, r.srqB, r.cqA, r.cqB)
	src, _ := r.poolA.Get("fnA")
	var recvAt time.Duration
	r.eng.Spawn("sender", func(p *sim.Proc) {
		qa.PostSend(mempool.Descriptor{Tenant: "t", Buf: src, Len: 64})
	})
	// Post the receive buffer only after the first arrival attempt.
	r.eng.At(30*time.Microsecond, func() {
		b, _ := r.poolB.Get("rq")
		r.srqB.PostRecv(mempool.Descriptor{Tenant: "t", Buf: b})
	})
	r.eng.Spawn("receiver", func(p *sim.Proc) {
		r.cqB.Wait(p)
		recvAt = p.Now()
	})
	r.eng.Run()
	if recvAt == 0 {
		t.Fatal("message never delivered despite retry")
	}
	if recvAt < 30*time.Microsecond {
		t.Fatalf("delivered at %v before buffer was posted", recvAt)
	}
	if r.srqB.RNREvents() == 0 {
		t.Fatal("no RNR events recorded")
	}
}

func TestRNRExhaustionErrorsSender(t *testing.T) {
	r := newRig(t, 1)
	qa, _ := Connect(r.ra, r.rb, "t", r.srqA, r.srqB, r.cqA, r.cqB)
	src, _ := r.poolA.Get("fnA")
	var status Status = -1
	r.eng.Spawn("sender", func(p *sim.Proc) {
		qa.PostSend(mempool.Descriptor{Tenant: "t", Buf: src, Len: 64})
		r.cqA.Wait(p)
		status = r.cqA.Poll(1)[0].Status
	})
	r.eng.Run()
	if status != StatusRNRExceeded {
		t.Fatalf("status = %v, want RNR exceeded", status)
	}
	if qa.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after error completion", qa.Outstanding())
	}
}

// echoRTT measures a two-sided echo round trip at the given payload using
// raw verbs (no DNE), mirroring the Fig. 12 microbenchmark setup.
func echoRTT(t *testing.T, payload int) time.Duration {
	r := newRig(t, 1)
	qa, qb := Connect(r.ra, r.rb, "t", r.srqA, r.srqB, r.cqA, r.cqB)
	postRecvs(t, r.poolB, r.srqB, 8)
	postRecvs(t, r.poolA, r.srqA, 8)

	var rtt time.Duration
	r.eng.Spawn("client", func(p *sim.Proc) {
		src, _ := r.poolA.Get("cli")
		start := p.Now()
		qa.PostSend(mempool.Descriptor{Tenant: "t", Buf: src, Len: payload})
		for {
			r.cqA.Wait(p)
			es := r.cqA.Poll(0)
			done := false
			for _, e := range es {
				if e.Op == OpRecv {
					done = true
				}
			}
			if done {
				break
			}
		}
		rtt = p.Now() - start
	})
	r.eng.Spawn("server", func(p *sim.Proc) {
		for {
			r.cqB.Wait(p)
			for _, e := range r.cqB.Poll(0) {
				if e.Op == OpRecv {
					// Echo straight back from a server buffer.
					buf, _ := r.poolB.Get("srv")
					qb.PostSend(mempool.Descriptor{Tenant: "t", Buf: buf, Len: e.Bytes})
				}
			}
		}
	})
	r.eng.RunUntil(time.Second)
	if rtt == 0 {
		t.Fatal("echo never completed")
	}
	return rtt
}

// TestEchoLatencyCalibration pins the model near the paper's measurements:
// two-sided echo ~8.4us at 64B and ~11.6us at 4KB (Fig. 12), within a
// generous +-35% band so parameter nudges don't break the build.
func TestEchoLatencyCalibration(t *testing.T) {
	r64 := echoRTT(t, 64)
	r4k := echoRTT(t, 4096)
	check := func(name string, got, want time.Duration) {
		lo := want * 65 / 100
		hi := want * 135 / 100
		if got < lo || got > hi {
			t.Errorf("%s RTT = %v, want within [%v, %v]", name, got, lo, hi)
		}
	}
	check("64B", r64, 8400*time.Nanosecond)
	check("4KB", r4k, 11600*time.Nanosecond)
	if r4k <= r64 {
		t.Errorf("4KB RTT %v not larger than 64B RTT %v", r4k, r64)
	}
}

func TestOneSidedWriteLandsWithoutReceiverCQE(t *testing.T) {
	r := newRig(t, 1)
	qa, _ := Connect(r.ra, r.rb, "t", r.srqA, r.srqB, r.cqA, r.cqB)
	mrB := r.rb.RegisterMR(r.poolB)
	dst, _ := r.poolB.Get("rdma-pool")
	src, _ := r.poolA.Get("cli")

	var landAt time.Duration
	r.eng.Spawn("writer", func(p *sim.Proc) {
		qa.PostWrite(mempool.Descriptor{Tenant: "t", Buf: src, Len: 64}, RemoteBuf{MR: mrB, Buf: dst})
		r.cqA.Wait(p)
		e := r.cqA.Poll(1)[0]
		if e.Op != OpWrite || e.Status != StatusOK {
			t.Errorf("write CQE = %+v", e)
		}
	})
	r.eng.Run()
	if r.cqB.Len() != 0 {
		t.Fatal("one-sided write generated a receiver CQE")
	}
	landed := mrB.PollLanded()
	if len(landed) != 1 || landed[0].Bytes != 64 || landed[0].Buf != dst {
		t.Fatalf("landed = %+v", landed)
	}
	landAt = landed[0].At
	if landAt == 0 || landAt > 10*time.Microsecond {
		t.Fatalf("one-sided 64B landed at %v", landAt)
	}
	if mrB.LandedCount() != 0 {
		t.Fatal("PollLanded did not drain")
	}
}

func TestOneSidedFasterThanTwoSidedOneWay(t *testing.T) {
	// A single one-sided write ("as little as 4us", §4.1.2) must beat a
	// two-sided send one-way, since it skips receive matching.
	r := newRig(t, 1)
	qa, _ := Connect(r.ra, r.rb, "t", r.srqA, r.srqB, r.cqA, r.cqB)
	postRecvs(t, r.poolB, r.srqB, 4)
	mrB := r.rb.RegisterMR(r.poolB)
	dst, _ := r.poolB.Get("rdma-pool")

	var writeLanded, sendDelivered time.Duration
	r.eng.Spawn("writer", func(p *sim.Proc) {
		src, _ := r.poolA.Get("cli")
		qa.PostWrite(mempool.Descriptor{Tenant: "t", Buf: src, Len: 64}, RemoteBuf{MR: mrB, Buf: dst})
	})
	r.eng.RunUntil(100 * time.Microsecond)
	if l := mrB.PollLanded(); len(l) == 1 {
		writeLanded = l[0].At
	} else {
		t.Fatal("write did not land")
	}

	r2 := newRig(t, 2)
	qa2, _ := Connect(r2.ra, r2.rb, "t", r2.srqA, r2.srqB, r2.cqA, r2.cqB)
	postRecvs(t, r2.poolB, r2.srqB, 4)
	r2.eng.Spawn("sender", func(p *sim.Proc) {
		src, _ := r2.poolA.Get("cli")
		qa2.PostSend(mempool.Descriptor{Tenant: "t", Buf: src, Len: 64})
	})
	r2.eng.Spawn("receiver", func(p *sim.Proc) {
		r2.cqB.Wait(p)
		sendDelivered = p.Now()
	})
	r2.eng.RunUntil(100 * time.Microsecond)
	if sendDelivered == 0 {
		t.Fatal("send not delivered")
	}
	if writeLanded >= sendDelivered {
		t.Fatalf("one-sided landed %v, two-sided delivered %v — want one-sided faster", writeLanded, sendDelivered)
	}
}

func TestReadRoundTrip(t *testing.T) {
	r := newRig(t, 1)
	qa, _ := Connect(r.ra, r.rb, "t", r.srqA, r.srqB, r.cqA, r.cqB)
	mrB := r.rb.RegisterMR(r.poolB)
	dst, _ := r.poolB.Get("x")
	var done time.Duration
	r.eng.Spawn("reader", func(p *sim.Proc) {
		qa.PostRead(4096, RemoteBuf{MR: mrB, Buf: dst})
		r.cqA.Wait(p)
		e := r.cqA.Poll(1)[0]
		if e.Op != OpRead || e.Bytes != 4096 {
			t.Errorf("read CQE = %+v", e)
		}
		done = p.Now()
	})
	r.eng.Run()
	if done == 0 || done > 20*time.Microsecond {
		t.Fatalf("4KB read RTT = %v", done)
	}
}

func TestCASLockSemantics(t *testing.T) {
	r := newRig(t, 1)
	qa, _ := Connect(r.ra, r.rb, "t", r.srqA, r.srqB, r.cqA, r.cqB)
	r.rb.SetWord("lock", 0)
	var first, second CASResult
	r.eng.Spawn("locker", func(p *sim.Proc) {
		doneQ := sim.NewQueue[CASResult](r.eng, 0)
		qa.PostCAS("lock", 0, 1, func(res CASResult) { doneQ.TryPut(res) })
		first = doneQ.Get(p)
		qa.PostCAS("lock", 0, 1, func(res CASResult) { doneQ.TryPut(res) })
		second = doneQ.Get(p)
	})
	r.eng.Run()
	if !first.Swapped || first.Old != 0 {
		t.Fatalf("first CAS = %+v", first)
	}
	if second.Swapped || second.Old != 1 {
		t.Fatalf("second CAS should fail on held lock: %+v", second)
	}
	if r.rb.Word("lock") != 1 {
		t.Fatalf("lock word = %d", r.rb.Word("lock"))
	}
}

func TestQPCacheThrashingPenalty(t *testing.T) {
	// With far more active QPs than cache entries, per-WR cost rises.
	p := params.Default()
	p.NICCacheActiveQPs = 4
	measure := func(nQPs int) time.Duration {
		eng := sim.NewEngine(1)
		defer eng.Stop()
		net := fabric.New(eng, p)
		ra := NewRNIC(eng, p, "a", net)
		rb := NewRNIC(eng, p, "b", net)
		poolA := mempool.NewPool("t", 4096, 4096, p.HugepageSize)
		poolB := mempool.NewPool("t", 4096, 4096, p.HugepageSize)
		srqB := NewSRQ("t")
		cqA, cqB := NewCQ(eng), NewCQ(eng)
		var qps []*QP
		for i := 0; i < nQPs; i++ {
			qa, _ := Connect(ra, rb, "t", nil, srqB, cqA, cqB)
			qps = append(qps, qa)
		}
		for i := 0; i < 2048; i++ {
			b, err := poolB.Get("rq")
			if err != nil {
				t.Fatal(err)
			}
			srqB.PostRecv(mempool.Descriptor{Tenant: "t", Buf: b})
		}
		var last time.Duration
		eng.Spawn("blaster", func(pr *sim.Proc) {
			for i := 0; i < 1024; i++ {
				src, err := poolA.Get("cli")
				if err != nil {
					t.Error(err)
					return
				}
				qps[i%len(qps)].PostSend(mempool.Descriptor{Tenant: "t", Buf: src, Len: 64})
			}
		})
		eng.Spawn("sink", func(pr *sim.Proc) {
			got := 0
			for got < 1024 {
				cqB.Wait(pr)
				got += len(cqB.Poll(0))
				last = pr.Now()
			}
		})
		eng.RunUntil(time.Second)
		return last
	}
	fit := measure(2)     // fits in cache
	thrash := measure(64) // thrashes
	if thrash <= fit {
		t.Fatalf("cache thrash (%v) not slower than cache fit (%v)", thrash, fit)
	}
}

func TestConnPoolEstablishAndPick(t *testing.T) {
	r := newRig(t, 1)
	var pa *ConnPool
	r.eng.Spawn("setup", func(p *sim.Proc) {
		pa, _ = EstablishPair(p, r.p, "t", r.ra, r.rb, 8, r.srqA, r.srqB, r.cqA, r.cqB)
	})
	r.eng.Run()
	if pa == nil {
		t.Fatal("pool not established")
	}
	if r.eng.Now() < r.p.QPSetupTime {
		t.Fatalf("setup finished at %v, want >= %v", r.eng.Now(), r.p.QPSetupTime)
	}
	if pa.Size() != 8 {
		t.Fatalf("size = %d", pa.Size())
	}
	if pa.ActiveCount() != 1 {
		t.Fatalf("active = %d, want 1 warm connection", pa.ActiveCount())
	}
	qp := pa.Pick()
	if qp == nil || !qp.Active() {
		t.Fatal("Pick returned unusable QP")
	}
}

func TestConnPoolActivatesUnderCongestion(t *testing.T) {
	r := newRig(t, 1)
	var pa *ConnPool
	r.eng.Spawn("setup", func(p *sim.Proc) {
		pa, _ = EstablishPair(p, r.p, "t", r.ra, r.rb, 4, r.srqA, r.srqB, r.cqA, r.cqB)
		postRecvs(t, r.poolB, r.srqB, 256)
		// Flood: outstanding on the single active QP passes the threshold.
		for i := 0; i < 64; i++ {
			src, err := r.poolA.Get("cli")
			if err != nil {
				t.Error(err)
				return
			}
			qp := pa.Pick()
			qp.PostSend(mempool.Descriptor{Tenant: "t", Buf: src, Len: 64})
		}
	})
	r.eng.Run()
	if pa.Activations() == 0 {
		t.Fatal("no shadow QP activated under congestion")
	}
	if pa.ActiveCount() < 2 {
		t.Fatalf("active = %d, want >= 2", pa.ActiveCount())
	}
	// After traffic drains, Shrink returns to the floor.
	n := pa.Shrink()
	if n == 0 || pa.ActiveCount() != 1 {
		t.Fatalf("shrink removed %d, active now %d", n, pa.ActiveCount())
	}
}

func TestMTTOverflowPenalty(t *testing.T) {
	// A hugepage-backed pool stays within the MTT cache; the same pool on
	// 4K pages overflows it and slows every WR (§3.4).
	measure := func(pageSize int) time.Duration {
		p := params.Default()
		eng := sim.NewEngine(1)
		defer eng.Stop()
		net := fabric.New(eng, p)
		ra := NewRNIC(eng, p, "a", net)
		rb := NewRNIC(eng, p, "b", net)
		// 64 MB pool: 32 hugepages vs 16384 4K pages.
		poolA := mempool.NewPool("t", 16384, 4096, pageSize)
		poolB := mempool.NewPool("t", 16384, 4096, pageSize)
		ra.RegisterMR(poolA)
		rb.RegisterMR(poolB)
		srqB := NewSRQ("t")
		cqA, cqB := NewCQ(eng), NewCQ(eng)
		qa, _ := Connect(ra, rb, "t", nil, srqB, cqA, cqB)
		for i := 0; i < 64; i++ {
			b, err := poolB.Get("rq")
			if err != nil {
				t.Fatal(err)
			}
			srqB.PostRecv(mempool.Descriptor{Tenant: "t", Buf: b})
		}
		var done time.Duration
		eng.Spawn("sender", func(pr *sim.Proc) {
			for i := 0; i < 32; i++ {
				src, err := poolA.Get("cli")
				if err != nil {
					t.Error(err)
					return
				}
				qa.PostSend(mempool.Descriptor{Tenant: "t", Buf: src, Len: 1024})
				cqA.Wait(pr)
				cqA.Poll(0)
				done = pr.Now()
			}
		})
		eng.RunUntil(time.Second)
		return done
	}
	huge := measure(2 << 20)
	small := measure(4096)
	if small <= huge {
		t.Fatalf("4K-page run (%v) not slower than hugepage run (%v)", small, huge)
	}
}

// Property: two-sided traffic conserves messages and buffers — every OK
// send yields exactly one recv completion, and after a full drain the only
// allocated buffers are the still-posted receive ring.
func TestTwoSidedConservationProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, szRaw uint16) bool {
		n := int(nRaw%60) + 1
		size := int(szRaw%8000) + 16
		p := params.Default()
		eng := sim.NewEngine(seed)
		defer eng.Stop()
		net := fabric.New(eng, p)
		ra := NewRNIC(eng, p, "a", net)
		rb := NewRNIC(eng, p, "b", net)
		poolA := mempool.NewPool("t", 8192, 256, p.HugepageSize)
		poolB := mempool.NewPool("t", 8192, 256, p.HugepageSize)
		srqB := NewSRQ("t")
		cqA, cqB := NewCQ(eng), NewCQ(eng)
		qa, _ := Connect(ra, rb, "t", nil, srqB, cqA, cqB)
		for i := 0; i < n+8; i++ {
			b, err := poolB.Get("rq")
			if err != nil {
				return false
			}
			srqB.PostRecv(mempool.Descriptor{Tenant: "t", Buf: b})
		}
		sendOK, recvOK := 0, 0
		eng.Spawn("sender", func(pr *sim.Proc) {
			for i := 0; i < n; i++ {
				src, err := poolA.Get("cli")
				if err != nil {
					return
				}
				qa.PostSend(mempool.Descriptor{Tenant: "t", Buf: src, Len: size, Seq: uint64(i)})
				pr.Sleep(time.Duration(eng.Rand().Intn(5000)) * time.Nanosecond)
			}
		})
		eng.Spawn("a-drain", func(pr *sim.Proc) {
			for {
				cqA.Wait(pr)
				for _, e := range cqA.Poll(0) {
					if e.Op == OpSend && e.Status == StatusOK {
						sendOK++
						if poolA.Put(e.Desc.Buf, "cli") != nil {
							t.Error("sender recycle failed")
						}
					}
				}
			}
		})
		eng.Spawn("b-drain", func(pr *sim.Proc) {
			for {
				cqB.Wait(pr)
				for _, e := range cqB.Poll(0) {
					if e.Op == OpRecv {
						recvOK++
						if poolB.Transfer(e.Desc.Buf, "rq", "srv") != nil || poolB.Put(e.Desc.Buf, "srv") != nil {
							t.Error("receiver recycle failed")
						}
					}
				}
			}
		})
		eng.RunUntil(time.Second)
		return sendOK == n && recvOK == n &&
			poolA.InUse() == 0 && poolB.InUse() == srqB.Posted()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
