package rdma

// This file implements the zero-alloc bookkeeping structures behind the QP
// fast path: an open-addressed map from in-flight WR ids to their pooled
// slab slots, and an open-addressed set for the receiver's PSN dedup check.
// Both replace built-in maps whose per-entry overhead (bucket chains,
// incremental growth) dominated the data-plane allocation profile. Keys are
// the RNIC's monotone WR ids, which start at 1, so 0 marks an empty bucket.
//
// Probing is linear with a Fibonacci-multiplicative home slot, and deletion
// uses backward-shift compaction instead of tombstones, so lookup cost
// stays bounded by the live load factor (<= 1/2) no matter how many entries
// have churned through.

// fibMul is 2^64 / phi, the Fibonacci hashing multiplier.
const fibMul = 0x9E3779B97F4A7C15

// wrTable maps WR id -> slab slot for unacked WRs.
type wrTable struct {
	keys  []uint64
	vals  []*wrState
	n     int
	shift uint
}

func (t *wrTable) home(key uint64) uint64 {
	return (key * fibMul) >> t.shift
}

func (t *wrTable) grow() {
	old := t.keys
	oldVals := t.vals
	c := len(t.keys) * 2
	if c < 16 {
		c = 16
	}
	t.keys = make([]uint64, c)
	t.vals = make([]*wrState, c)
	t.shift = 64
	for m := 1; m < c; m *= 2 {
		t.shift--
	}
	t.n = 0
	for i, k := range old {
		if k != 0 {
			t.put(k, oldVals[i])
		}
	}
}

// put inserts key -> v. Keys are unique (monotone WR ids), so no
// overwrite check is needed.
func (t *wrTable) put(key uint64, v *wrState) {
	if t.n*2 >= len(t.keys) {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	i := t.home(key)
	for t.keys[i] != 0 {
		i = (i + 1) & mask
	}
	t.keys[i] = key
	t.vals[i] = v
	t.n++
}

// get returns the slot for key, or nil.
func (t *wrTable) get(key uint64) *wrState {
	if t.n == 0 {
		return nil
	}
	mask := uint64(len(t.keys) - 1)
	i := t.home(key)
	for {
		if t.keys[i] == key {
			return t.vals[i]
		}
		if t.keys[i] == 0 {
			return nil
		}
		i = (i + 1) & mask
	}
}

// del removes key, compacting the probe chain behind it (backward-shift
// deletion), and reports whether it was present.
func (t *wrTable) del(key uint64) bool {
	if t.n == 0 {
		return false
	}
	mask := uint64(len(t.keys) - 1)
	i := t.home(key)
	for t.keys[i] != key {
		if t.keys[i] == 0 {
			return false
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		t.keys[j] = 0
		t.vals[j] = nil
		k := j
		for {
			k = (k + 1) & mask
			if t.keys[k] == 0 {
				t.n--
				return true
			}
			// An element probes forward from its home slot; it may slide
			// back into j only if j lies on that probe path.
			h := t.home(t.keys[k])
			if (k-h)&mask >= (k-j)&mask {
				t.keys[j] = t.keys[k]
				t.vals[j] = t.vals[k]
				j = k
				break
			}
		}
	}
}

// u64Set is the key-only variant backing the receiver's dedup window.
type u64Set struct {
	keys  []uint64
	n     int
	shift uint
}

func (s *u64Set) home(key uint64) uint64 {
	return (key * fibMul) >> s.shift
}

func (s *u64Set) grow() {
	old := s.keys
	c := len(s.keys) * 2
	if c < 16 {
		c = 16
	}
	s.keys = make([]uint64, c)
	s.shift = 64
	for m := 1; m < c; m *= 2 {
		s.shift--
	}
	s.n = 0
	for _, k := range old {
		if k != 0 {
			s.put(k)
		}
	}
}

func (s *u64Set) put(key uint64) {
	if s.n*2 >= len(s.keys) {
		s.grow()
	}
	mask := uint64(len(s.keys) - 1)
	i := s.home(key)
	for s.keys[i] != 0 {
		if s.keys[i] == key {
			return
		}
		i = (i + 1) & mask
	}
	s.keys[i] = key
	s.n++
}

func (s *u64Set) has(key uint64) bool {
	if s.n == 0 {
		return false
	}
	mask := uint64(len(s.keys) - 1)
	i := s.home(key)
	for {
		if s.keys[i] == key {
			return true
		}
		if s.keys[i] == 0 {
			return false
		}
		i = (i + 1) & mask
	}
}

func (s *u64Set) del(key uint64) bool {
	if s.n == 0 {
		return false
	}
	mask := uint64(len(s.keys) - 1)
	i := s.home(key)
	for s.keys[i] != key {
		if s.keys[i] == 0 {
			return false
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		s.keys[j] = 0
		k := j
		for {
			k = (k + 1) & mask
			if s.keys[k] == 0 {
				s.n--
				return true
			}
			h := s.home(s.keys[k])
			if (k-h)&mask >= (k-j)&mask {
				s.keys[j] = s.keys[k]
				j = k
				break
			}
		}
	}
}
