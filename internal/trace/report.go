package trace

import (
	"sort"
	"time"

	"nadino/internal/metrics"
)

// StageStat aggregates all closed spans of one stage across the finished
// requests of a tracer.
type StageStat struct {
	Stage  string
	Detail bool // excluded from tiling sums
	Count  int  // spans (a request can pass a stage more than once)
	Total  time.Duration
	Hist   *metrics.Hist
}

// PerRequest reports the stage's mean attributed time per finished request
// (not per span — a round trip crosses most stages twice).
func (s StageStat) PerRequest(requests int) time.Duration {
	if requests == 0 {
		return 0
	}
	return s.Total / time.Duration(requests)
}

// Report is the per-stage latency attribution over a tracer's finished
// requests. Unfinished requests and open spans are excluded so partial
// traces at the end of a run cannot skew the attribution.
type Report struct {
	Requests   int // finished requests
	Unfinished int
	Dropped    uint64
	EndToEnd   *metrics.Hist // root-span durations
	Stages     []StageStat   // sorted by Total descending
}

// Report computes the attribution over the tracer's finished requests.
func (t *Tracer) Report() *Report {
	rep := &Report{EndToEnd: metrics.NewHist(), Dropped: t.Dropped()}
	if t == nil {
		return rep
	}
	stages := make(map[string]*StageStat)
	for _, r := range t.reqs {
		if !r.Finished() {
			rep.Unfinished++
			continue
		}
		rep.Requests++
		rep.EndToEnd.Observe(r.Root().Duration())
		for _, sp := range r.spans[1:] {
			if sp.Open() {
				continue
			}
			st := stages[sp.Stage]
			if st == nil {
				st = &StageStat{Stage: sp.Stage, Detail: sp.Detail, Hist: metrics.NewHist()}
				stages[sp.Stage] = st
			}
			st.Count++
			st.Total += sp.Duration()
			st.Hist.Observe(sp.Duration())
		}
	}
	for _, st := range stages {
		rep.Stages = append(rep.Stages, *st)
	}
	sort.Slice(rep.Stages, func(i, j int) bool {
		if rep.Stages[i].Total != rep.Stages[j].Total {
			return rep.Stages[i].Total > rep.Stages[j].Total
		}
		return rep.Stages[i].Stage < rep.Stages[j].Stage
	})
	return rep
}

// StageSum is the total time attributed to tiling (non-detail) stages.
func (rep *Report) StageSum() time.Duration {
	var sum time.Duration
	for _, st := range rep.Stages {
		if !st.Detail {
			sum += st.Total
		}
	}
	return sum
}

// StageSumPerRequest is the mean tiling-stage time per finished request; in
// steady state it reconciles with EndToEnd.Mean().
func (rep *Report) StageSumPerRequest() time.Duration {
	if rep.Requests == 0 {
		return 0
	}
	return rep.StageSum() / time.Duration(rep.Requests)
}
