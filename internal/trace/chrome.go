package trace

import (
	"encoding/json"
	"io"
	"time"
)

// Profile names one tracer for export; each profile becomes one Chrome
// trace process (pid) with a thread (tid) per actor.
type Profile struct {
	Name   string
	Tracer *Tracer
}

// chromeRequestCap bounds how many finished requests per profile are
// exported. Attribution reports use every traced request; the Chrome file
// is for eyeballing individual timelines, so a head sample keeps it small.
const chromeRequestCap = 100

// chromeEvent is one entry of the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// CounterPoint is one sample of a Chrome counter timeline.
type CounterPoint struct {
	T time.Duration
	V float64
}

// CounterTrack is one named counter timeline, rendered as Chrome counter
// events (`"ph":"C"`) so telemetry series plot alongside the span
// timelines. internal/telemetry produces these from its scraped series.
type CounterTrack struct {
	Name   string
	Points []CounterPoint
}

// WriteChrome renders the profiles as a Chrome trace-event JSON file
// (load it in chrome://tracing or https://ui.perfetto.dev). Virtual time
// maps directly onto the trace clock; open spans are skipped.
func WriteChrome(w io.Writer, profiles []Profile) error {
	return WriteChromeWithCounters(w, profiles, nil)
}

// WriteChromeWithCounters is WriteChrome plus counter timelines: each track
// becomes a `"ph":"C"` series under a dedicated "telemetry" process, so
// scraped gauges render as strip charts above the span rows.
func WriteChromeWithCounters(w io.Writer, profiles []Profile, counters []CounterTrack) error {
	file := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for pid, p := range profiles {
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]any{"name": p.Name},
		})
		tids := make(map[string]int)
		exported := 0
		for _, r := range p.Tracer.Requests() {
			if !r.Finished() {
				continue
			}
			if exported++; exported > chromeRequestCap {
				break
			}
			for _, sp := range r.Spans() {
				if sp.Open() {
					continue
				}
				tid, ok := tids[sp.Actor]
				if !ok {
					tid = len(tids) + 1
					tids[sp.Actor] = tid
					file.TraceEvents = append(file.TraceEvents, chromeEvent{
						Name: "thread_name", Phase: "M", PID: pid, TID: tid,
						Args: map[string]any{"name": sp.Actor},
					})
				}
				ev := chromeEvent{
					Name:  sp.Stage,
					Phase: "X",
					TS:    float64(sp.Start.Nanoseconds()) / 1e3,
					Dur:   float64(sp.Duration().Nanoseconds()) / 1e3,
					PID:   pid,
					TID:   tid,
					Args: map[string]any{
						"trace": r.Name, "span": sp.ID, "parent": sp.Parent,
					},
				}
				if sp.Duration() == 0 && sp.Detail {
					ev.Phase = "i"
					ev.Dur = 0
					ev.Scope = "t"
				}
				file.TraceEvents = append(file.TraceEvents, ev)
			}
		}
	}
	if len(counters) > 0 {
		pid := len(profiles)
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]any{"name": "telemetry"},
		})
		for _, tr := range counters {
			for _, p := range tr.Points {
				file.TraceEvents = append(file.TraceEvents, chromeEvent{
					Name:  tr.Name,
					Phase: "C",
					TS:    float64(p.T.Nanoseconds()) / 1e3,
					PID:   pid,
					Args:  map[string]any{"value": p.V},
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}
