package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// fakeClock is a manually advanced virtual clock.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration { return c.now }

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.SetClock(func() time.Duration { return 0 })
	tr.SetLimit(10)
	if tr.Dropped() != 0 || tr.Requests() != nil {
		t.Fatal("nil tracer accessors must be zero")
	}
	r := tr.StartRequest("x")
	if r != nil {
		t.Fatal("nil tracer must return nil request")
	}
	// Every method on a nil request must be a safe no-op.
	sp := r.Begin("a", "b")
	sp.End()
	r.BeginDetail("a", "b").End()
	r.BeginStage("a", "b")
	r.BeginStageDetail("a", "b")
	r.EndStage("a")
	r.Record("a", "b", 0, 1)
	r.RecordDetail("a", "b", 0, 1)
	r.Event("a", "b")
	r.Finish()
	if r.Finished() || r.Spans() != nil {
		t.Fatal("nil request must report unfinished with no spans")
	}
	rep := tr.Report()
	if rep.Requests != 0 || rep.StageSumPerRequest() != 0 {
		t.Fatal("nil tracer report must be empty")
	}
}

func TestSpanTilingReconciles(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now)
	r := tr.StartRequest("req")

	s1 := r.Begin("stage.a", "core0")
	clk.now = 10 * time.Microsecond
	s1.End()
	s1.End() // double End is a no-op

	r.BeginStage("stage.b", "core0")
	clk.now = 25 * time.Microsecond
	r.EndStage("stage.b")

	// A detail span overlapping stage.c must not enter the tiling sum.
	r.RecordDetail("stage.wire", "nic", 25*time.Microsecond, 40*time.Microsecond)
	r.Record("stage.c", "core1", 25*time.Microsecond, 45*time.Microsecond)
	r.Event("stage.rnr", "nic")

	clk.now = 45 * time.Microsecond
	r.Finish()

	rep := tr.Report()
	if rep.Requests != 1 || rep.Unfinished != 0 {
		t.Fatalf("requests=%d unfinished=%d", rep.Requests, rep.Unfinished)
	}
	if got := rep.EndToEnd.Mean(); got != 45*time.Microsecond {
		t.Fatalf("end-to-end mean %v, want 45us", got)
	}
	if got := rep.StageSumPerRequest(); got != 45*time.Microsecond {
		t.Fatalf("tiling stage sum %v, want 45us", got)
	}
	var sawDetail, sawEvent bool
	for _, st := range rep.Stages {
		if st.Stage == "stage.wire" {
			sawDetail = true
			if !st.Detail || st.Total != 15*time.Microsecond {
				t.Fatalf("detail stage misreported: %+v", st)
			}
		}
		if st.Stage == "stage.rnr" {
			sawEvent = true
			if st.Total != 0 {
				t.Fatalf("event stage has nonzero total: %+v", st)
			}
		}
	}
	if !sawDetail || !sawEvent {
		t.Fatal("detail/event stages missing from report")
	}
}

func TestBeginEndStageLIFO(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now)
	r := tr.StartRequest("req")

	r.EndStage("q") // empty stack: no-op, no panic

	r.BeginStage("q", "a")
	clk.now = 5 * time.Microsecond
	r.BeginStage("q", "b")
	clk.now = 8 * time.Microsecond
	r.EndStage("q") // closes b's span [5,8]
	clk.now = 20 * time.Microsecond
	r.EndStage("q") // closes a's span [0,20]
	r.Finish()

	var total time.Duration
	for _, sp := range r.Spans()[1:] {
		total += sp.Duration()
	}
	if total != 23*time.Microsecond {
		t.Fatalf("LIFO stage total %v, want 23us", total)
	}
}

func TestOpenSpansAndUnfinishedExcluded(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now)

	r1 := tr.StartRequest("done")
	r1.BeginStage("dangling", "x") // never ended
	clk.now = 10 * time.Microsecond
	r1.Record("stage.a", "x", 0, 10*time.Microsecond)
	r1.Finish()

	tr.StartRequest("never-finished")

	rep := tr.Report()
	if rep.Requests != 1 || rep.Unfinished != 1 {
		t.Fatalf("requests=%d unfinished=%d", rep.Requests, rep.Unfinished)
	}
	for _, st := range rep.Stages {
		if st.Stage == "dangling" {
			t.Fatal("open span leaked into report")
		}
	}
	if rep.StageSumPerRequest() != 10*time.Microsecond {
		t.Fatalf("stage sum %v", rep.StageSumPerRequest())
	}
}

func TestRequestLimitSampling(t *testing.T) {
	tr := New(nil)
	tr.SetLimit(2)
	if tr.StartRequest("a") == nil || tr.StartRequest("b") == nil {
		t.Fatal("first two requests must be traced")
	}
	if tr.StartRequest("c") != nil {
		t.Fatal("request past limit must be dropped")
	}
	if tr.Dropped() != 1 {
		t.Fatalf("dropped=%d, want 1", tr.Dropped())
	}
}

func TestRecordDropsInvertedBounds(t *testing.T) {
	tr := New(nil)
	r := tr.StartRequest("x")
	r.Record("bad", "a", 10, 5)
	if len(r.Spans()) != 1 {
		t.Fatal("inverted Record must be dropped")
	}
}

func TestWriteChrome(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now)
	r := tr.StartRequest("req")
	r.Begin("stage.a", "core0").End()
	r.BeginStage("dangling", "x") // open: must be skipped
	r.Event("stage.rnr", "nic")
	clk.now = 30 * time.Microsecond
	r.Finish()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, []Profile{{Name: "p0", Tracer: tr}}); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("invalid chrome JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	var phases []string
	for _, ev := range file.TraceEvents {
		if ev["name"] == "dangling" {
			t.Fatal("open span exported")
		}
		phases = append(phases, ev["ph"].(string))
	}
	want := map[string]bool{"M": false, "X": false, "i": false}
	for _, ph := range phases {
		want[ph] = true
	}
	for ph, ok := range want {
		if !ok {
			t.Fatalf("missing phase %q in export", ph)
		}
	}
}
