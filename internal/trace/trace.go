// Package trace is a virtual-time span tracer for the NADINO simulation.
//
// A Tracer collects per-request traces: each request owns a root span plus
// child spans for every stage it passes through (ingress parsing, transport
// traversal, DNE scheduling, Comch/SK_MSG handoff, RDMA post->CQE, fabric
// serialization, function execution). Spans carry virtual timestamps taken
// from the simulation engine's clock, so a trace is an exact account of
// where a request's latency went.
//
// The tracer is built for zero cost when disabled: every method on *Req is
// nil-safe, so instrumentation sites call through a possibly-nil pointer and
// pay only a nil check when tracing is off. StartRequest returns nil once
// the request limit is reached, which doubles as head sampling — the same
// nil-safety makes the untraced tail free.
//
// Stage spans come in two flavors. Tiling stages partition the request's
// critical path: in steady state their per-request sum equals the
// end-to-end latency (queue waits fold into the adjacent stage because all
// cross-process handoffs in the engine happen at the same virtual instant).
// Detail spans (Span.Detail) overlap tiling stages — nested wire segments,
// acknowledgment round-trips — and are excluded from reconciliation sums.
//
// Cross-component stages use BeginStage/EndStage, which keep a per-stage
// LIFO stack on the request: the producer side opens the span and the
// consumer side closes it without either holding a reference. Under
// fan-out, concurrent same-stage spans may have their boundaries swapped by
// the LIFO pop; the total attributed time is conserved. A span left open
// (e.g. a send abandoned after a transport error) is excluded from reports
// and exports.
//
// The simulation engine is single-threaded, so the tracer needs no locking.
package trace

import "time"

// Stage names shared by the instrumentation sites. Keeping them here (the
// lowest layer next to mempool) avoids import cycles between the layers
// that open and close the same stage.
const (
	StageNetClient    = "net.client"      // client <-> gateway external network
	StageIngressQueue = "ingress.queue"   // gateway worker queue wait
	StageIngressRecv  = "ingress.recv"    // gateway stack RX + HTTP parse
	StageIngressConv  = "ingress.convert" // gateway protocol conversion / verbs post
	StageIngressWait  = "ingress.backend" // detail: gateway waiting on the backend fabric
	StageIngressResp  = "ingress.respond" // gateway response build + stack TX
	StagePortSend     = "port.send"       // function port TX (descriptor hand-off)
	StagePortRecv     = "port.recv"       // function port RX wakeup
	StageComchH2D     = "comch.h2d"       // Comch host -> DPU delivery + queue
	StageComchD2H     = "comch.d2h"       // Comch DPU -> host delivery + queue
	StageSKMsg        = "ipc.skmsg"       // SK_MSG delivery + queue
	StageDNEIngest    = "dne.ingest"      // DNE ingest processing
	StageDNESched     = "dne.sched"       // DNE tenant scheduler queue wait
	StageDNETx        = "dne.tx"          // DNE TX path (header build, DMA, post)
	StageDNERx        = "dne.rx"          // DNE RX path (CQE handling, DMA, push)
	StageRDMA         = "rdma.transfer"   // RDMA post -> receive-side CQE
	StageRDMACQ       = "rdma.cq"         // CQE queued until consumer handles it
	StageRDMAAck      = "rdma.ack"        // detail: send-completion round trip
	StageRNR          = "rdma.rnr"        // instant: receiver-not-ready event
	StageFabric       = "fabric.wire"     // detail: wire serialization + propagation
	StageFnQueue      = "fn.queue"        // function inbox queue wait
	StageFnColdstart  = "fn.coldstart"    // function cold-start stall
	StageFnExec       = "fn.exec"         // application compute
	StageFnDeliver    = "fn.deliver"      // local delivery wakeup (SK_MSG/TCP RX)
	StageSidecar      = "fn.sidecar"      // cross-tenant sidecar copy
	StageTransit      = "net.transit"     // TCP baseline wire transit
	StageGwQueue      = "gw.queue"        // gateway pending queue (submit -> write post)
	StageGwHop        = "gw.hop"          // detail: one inter-gateway hop (post -> landed ingest)
	StageSpecClone    = "spec.clone"      // detail: a speculative clone arm's in-flight window
	StageSpecCancel   = "spec.cancel"     // instant: a losing clone killed (at whatever stage it died)
)

// DefaultRequestLimit bounds how many requests a Tracer records; later
// StartRequest calls return nil (counted in Dropped) so long runs trace a
// head sample instead of growing without bound.
const DefaultRequestLimit = 2000

// openEnd marks a span whose End has not been recorded yet.
const openEnd = time.Duration(-1)

// Span is one timed segment of a request. End < 0 means still open.
type Span struct {
	Trace  int    // index of the owning request within its Tracer
	ID     uint64 // tracer-unique span id
	Parent uint64 // parent span id; 0 for the root span
	Stage  string
	Actor  string // component/core label, becomes the Chrome trace thread
	Start  time.Duration
	End    time.Duration
	Detail bool // overlaps tiling stages; excluded from reconciliation sums
}

// Duration reports the span length (0 while open).
func (s Span) Duration() time.Duration {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// Open reports whether the span has not ended.
func (s Span) Open() bool { return s.End < 0 }

// Tracer collects request traces against a virtual clock.
type Tracer struct {
	clock   func() time.Duration
	limit   int
	reqs    []*Req
	nextID  uint64
	dropped uint64
}

// New returns a tracer reading time from clock (usually Engine.Now). A nil
// clock stamps everything at 0 until SetClock is called.
func New(clock func() time.Duration) *Tracer {
	return &Tracer{clock: clock, limit: DefaultRequestLimit}
}

// SetClock (re)binds the virtual clock. Nil-safe so a possibly-nil tracer
// can be attached to an engine unconditionally.
func (t *Tracer) SetClock(clock func() time.Duration) {
	if t == nil {
		return
	}
	t.clock = clock
}

// SetLimit changes the request cap; n <= 0 removes it.
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	t.limit = n
}

// Dropped reports how many StartRequest calls were refused by the limit.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Requests returns the recorded requests.
func (t *Tracer) Requests() []*Req {
	if t == nil {
		return nil
	}
	return t.reqs
}

func (t *Tracer) now() time.Duration {
	if t.clock == nil {
		return 0
	}
	return t.clock()
}

// StartRequest opens a new trace with an open root span. Returns nil (a
// valid no-op request) on a nil tracer or past the request limit.
func (t *Tracer) StartRequest(name string) *Req {
	if t == nil {
		return nil
	}
	if t.limit > 0 && len(t.reqs) >= t.limit {
		t.dropped++
		return nil
	}
	r := &Req{t: t, Name: name, id: len(t.reqs), open: make(map[string][]int)}
	t.nextID++
	r.spans = append(r.spans, Span{
		Trace: r.id,
		ID:    t.nextID,
		Stage: "request",
		Actor: "request",
		Start: t.now(),
		End:   openEnd,
	})
	t.reqs = append(t.reqs, r)
	return r
}

// Req is one request's trace. All methods are nil-safe no-ops so untraced
// requests cost a nil check at each instrumentation site.
type Req struct {
	t     *Tracer
	Name  string
	id    int
	spans []Span
	// open holds per-stage LIFO stacks of open span indices for the
	// BeginStage/EndStage producer-consumer protocol.
	open map[string][]int
}

// SpanRef is a handle to an open span returned by Begin/BeginDetail.
// The zero SpanRef (from a nil request) is a valid no-op.
type SpanRef struct {
	r   *Req
	idx int
}

// End closes the span at the current virtual time. Ending twice is a no-op.
func (s SpanRef) End() {
	if s.r == nil {
		return
	}
	sp := &s.r.spans[s.idx]
	if sp.End < 0 {
		sp.End = s.r.t.now()
	}
}

func (r *Req) add(stage, actor string, start, end time.Duration, detail bool) int {
	r.t.nextID++
	r.spans = append(r.spans, Span{
		Trace:  r.id,
		ID:     r.t.nextID,
		Parent: r.spans[0].ID,
		Stage:  stage,
		Actor:  actor,
		Start:  start,
		End:    end,
		Detail: detail,
	})
	return len(r.spans) - 1
}

// Begin opens a span now and returns a handle to close it.
func (r *Req) Begin(stage, actor string) SpanRef {
	if r == nil {
		return SpanRef{}
	}
	return SpanRef{r, r.add(stage, actor, r.t.now(), openEnd, false)}
}

// BeginDetail is Begin for a detail span (excluded from tiling sums).
func (r *Req) BeginDetail(stage, actor string) SpanRef {
	if r == nil {
		return SpanRef{}
	}
	return SpanRef{r, r.add(stage, actor, r.t.now(), openEnd, true)}
}

// BeginStage opens a span now and pushes it on the stage's open stack, for
// the producer side of a cross-component handoff.
func (r *Req) BeginStage(stage, actor string) {
	if r == nil {
		return
	}
	r.open[stage] = append(r.open[stage], r.add(stage, actor, r.t.now(), openEnd, false))
}

// BeginStageDetail is BeginStage for a detail span.
func (r *Req) BeginStageDetail(stage, actor string) {
	if r == nil {
		return
	}
	r.open[stage] = append(r.open[stage], r.add(stage, actor, r.t.now(), openEnd, true))
}

// EndStage closes the most recently opened span of the stage (consumer
// side of a handoff). With no open span of that stage it is a no-op.
func (r *Req) EndStage(stage string) {
	if r == nil {
		return
	}
	st := r.open[stage]
	if len(st) == 0 {
		return
	}
	idx := st[len(st)-1]
	r.open[stage] = st[:len(st)-1]
	if r.spans[idx].End < 0 {
		r.spans[idx].End = r.t.now()
	}
}

// Record adds a closed span with known bounds. Inverted bounds are dropped.
func (r *Req) Record(stage, actor string, start, end time.Duration) {
	if r == nil || end < start {
		return
	}
	r.add(stage, actor, start, end, false)
}

// RecordDetail is Record for a detail span.
func (r *Req) RecordDetail(stage, actor string, start, end time.Duration) {
	if r == nil || end < start {
		return
	}
	r.add(stage, actor, start, end, true)
}

// Event records a zero-length detail instant (e.g. an RNR stall).
func (r *Req) Event(stage, actor string) {
	if r == nil {
		return
	}
	now := r.t.now()
	r.add(stage, actor, now, now, true)
}

// Finish closes the root span; the request's end-to-end latency is the root
// span's duration. Finishing twice is a no-op.
func (r *Req) Finish() {
	if r == nil {
		return
	}
	if r.spans[0].End < 0 {
		r.spans[0].End = r.t.now()
	}
}

// Finished reports whether the root span is closed.
func (r *Req) Finished() bool { return r != nil && r.spans[0].End >= 0 }

// Root returns the root span.
func (r *Req) Root() Span { return r.spans[0] }

// Spans returns all spans including the root.
func (r *Req) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}
