package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestHistBasics(t *testing.T) {
	h := NewHist()
	if h.Mean() != 0 || h.Count() != 0 || h.P99() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(10 * time.Microsecond)
	h.Observe(20 * time.Microsecond)
	h.Observe(30 * time.Microsecond)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 20*time.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 10*time.Microsecond || h.Max() != 30*time.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistQuantileAccuracy(t *testing.T) {
	h := NewHist()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{{0.5, 500 * time.Microsecond}, {0.95, 950 * time.Microsecond}, {0.99, 990 * time.Microsecond}} {
		got := h.Quantile(tc.q)
		ratio := float64(got) / float64(tc.want)
		if ratio < 0.95 || ratio > 1.05 {
			t.Errorf("q%.2f = %v, want ~%v", tc.q, got, tc.want)
		}
	}
}

func TestHistReset(t *testing.T) {
	h := NewHist()
	h.Observe(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear histogram")
	}
}

func TestHistNegativeClamped(t *testing.T) {
	h := NewHist()
	h.Observe(-time.Second)
	if h.Min() != 0 {
		t.Fatalf("negative observation not clamped: min=%v", h.Min())
	}
}

// Property: quantiles are monotone in q and bounded by [~min, max].
func TestHistQuantileMonotoneProperty(t *testing.T) {
	f := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		h := NewHist()
		for _, s := range samples {
			h.Observe(time.Duration(s%10_000_000) * time.Nanosecond)
		}
		prev := time.Duration(0)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Quantile(1.0) <= h.Max() && h.Quantile(0.0) >= h.Min()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Regression: quantiles are clamped to the exact tracked [Min, Max]. The
// log-spaced buckets are ~2% coarse, so before clamping Quantile(1.0)
// returned a bucket upper bound above the largest observed sample.
func TestHistQuantileClampedToMinMax(t *testing.T) {
	h := NewHist()
	h.Observe(333 * time.Microsecond) // lands mid-bucket: bound > sample
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1.0} {
		if got := h.Quantile(q); got != 333*time.Microsecond {
			t.Fatalf("single-sample Quantile(%v) = %v, want exactly 333us", q, got)
		}
	}
	h.Observe(100 * time.Microsecond)
	if got := h.Quantile(1.0); got != h.Max() {
		t.Fatalf("Quantile(1.0) = %v, want Max() = %v", got, h.Max())
	}
	if got := h.Quantile(0.0); got < h.Min() {
		t.Fatalf("Quantile(0.0) = %v below Min() = %v", got, h.Min())
	}
}

func TestMeterWindows(t *testing.T) {
	m := NewMeter()
	m.Inc(100)
	m.MarkWindow(10 * time.Second)
	m.Inc(50)
	rate := m.WindowRate(15 * time.Second)
	if math.Abs(rate-10.0) > 1e-9 {
		t.Fatalf("rate = %v, want 10", rate)
	}
	if m.WindowCount() != 50 {
		t.Fatalf("window count = %d", m.WindowCount())
	}
	if m.Total() != 150 {
		t.Fatalf("total = %d", m.Total())
	}
}

func TestMeterZeroWindow(t *testing.T) {
	m := NewMeter()
	m.MarkWindow(time.Second)
	if m.WindowRate(time.Second) != 0 {
		t.Fatal("zero-length window should report 0 rate")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("rps")
	s.Add(1*time.Second, 10)
	s.Add(2*time.Second, 20)
	s.Add(3*time.Second, 30)
	if s.At(2500*time.Millisecond) != 20 {
		t.Fatalf("At = %v", s.At(2500*time.Millisecond))
	}
	if s.At(500*time.Millisecond) != 0 {
		t.Fatal("At before first point should be 0")
	}
	if got := s.MeanBetween(1*time.Second, 2*time.Second); got != 15 {
		t.Fatalf("MeanBetween = %v", got)
	}
	if s.Max() != 30 {
		t.Fatalf("Max = %v", s.Max())
	}
	if s.MeanBetween(10*time.Second, 20*time.Second) != 0 {
		t.Fatal("empty range should be 0")
	}
}

func TestUtilSampler(t *testing.T) {
	var u UtilSampler
	got := u.Sample(10*time.Second, 5*time.Second)
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("util = %v, want 0.5", got)
	}
	got = u.Sample(20*time.Second, 15*time.Second)
	if math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("util = %v, want 1.0", got)
	}
}

func TestSparkline(t *testing.T) {
	s := NewSeries("x")
	if s.Sparkline(10) != "" {
		t.Fatal("empty series should render empty")
	}
	for i := 0; i < 40; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	sp := []rune(s.Sparkline(8))
	if len(sp) != 8 {
		t.Fatalf("sparkline width = %d, want 8", len(sp))
	}
	if sp[0] != '▁' || sp[len(sp)-1] != '█' {
		t.Fatalf("monotone series should span the tick range: %q", string(sp))
	}
	// Flat series renders at the floor.
	flat := NewSeries("flat")
	for i := 0; i < 10; i++ {
		flat.Add(time.Duration(i)*time.Second, 5)
	}
	for _, r := range flat.Sparkline(10) {
		if r != '▁' {
			t.Fatalf("flat series not at floor: %q", flat.Sparkline(10))
		}
	}
}

func TestHistStringAndP95(t *testing.T) {
	h := NewHist()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.P95() < 90*time.Microsecond || h.P95() > 100*time.Microsecond {
		t.Fatalf("p95 = %v", h.P95())
	}
	s := h.String()
	if len(s) == 0 || s[0] != 'n' {
		t.Fatalf("String = %q", s)
	}
}

func TestRecoveryDetector(t *testing.T) {
	s := NewSeries("rps")
	// Baseline 100, fault at 5ms crushes the rate, clears at 10ms, rate
	// climbs back: one bounce above threshold at 12ms, sustained from 16ms.
	for _, p := range []struct {
		at time.Duration
		v  float64
	}{
		{1 * time.Millisecond, 100}, {3 * time.Millisecond, 101},
		{5 * time.Millisecond, 20}, {7 * time.Millisecond, 5},
		{9 * time.Millisecond, 10}, {11 * time.Millisecond, 60},
		{12 * time.Millisecond, 97}, {14 * time.Millisecond, 80},
		{16 * time.Millisecond, 96}, {18 * time.Millisecond, 99},
		{20 * time.Millisecond, 100},
	} {
		s.Add(p.at, p.v)
	}
	rd := RecoveryDetector{Baseline: 100, Tolerance: 0.05, Sustain: 2}
	d, ok := rd.Detect(s, 10*time.Millisecond)
	if !ok {
		t.Fatal("recovery not detected")
	}
	// The 12ms bounce is followed by a dip, so the sustained run starts at
	// 16ms: 6ms after the fault cleared.
	if d != 6*time.Millisecond {
		t.Fatalf("recovery delay = %v, want 6ms", d)
	}
	// Sustain 1 accepts the lone bounce at 12ms.
	d, ok = RecoveryDetector{Baseline: 100, Tolerance: 0.05, Sustain: 1}.Detect(s, 10*time.Millisecond)
	if !ok || d != 2*time.Millisecond {
		t.Fatalf("sustain=1 delay = %v ok=%v, want 2ms", d, ok)
	}
	// Samples before clearAt are ignored even though they meet the bar.
	if _, ok := rd.Detect(s, 21*time.Millisecond); ok {
		t.Fatal("detected recovery past the end of the series")
	}
}

func TestRecoveryDetectorNeverRecovers(t *testing.T) {
	s := NewSeries("rps")
	for i := 0; i < 10; i++ {
		s.Add(time.Duration(i)*time.Millisecond, 50)
	}
	rd := RecoveryDetector{Baseline: 100, Tolerance: 0.10, Sustain: 2}
	if d, ok := rd.Detect(s, 0); ok || d != 0 {
		t.Fatalf("Detect = %v, %v on a flatlined series", d, ok)
	}
}
