// Package metrics provides the measurement primitives used by the NADINO
// simulation: latency histograms, rate meters, and time series. The
// simulation is single-threaded (see internal/sim), so none of these types
// need locking.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Hist is a latency histogram backed by log-spaced buckets from 100ns to
// ~100s, accurate to ~2% per bucket — plenty for reproducing figure shapes.
type Hist struct {
	buckets []uint64
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

const (
	histBase    = 100 * time.Nanosecond
	histBuckets = 1024
	// Growth factor per bucket chosen so histBuckets cover ~9 decades.
	histGrowth = 1.0208
)

var histBounds = func() []time.Duration {
	b := make([]time.Duration, histBuckets)
	v := float64(histBase)
	for i := range b {
		b[i] = time.Duration(v)
		v *= histGrowth
	}
	return b
}()

// NewHist returns an empty histogram.
func NewHist() *Hist {
	return &Hist{buckets: make([]uint64, histBuckets), min: math.MaxInt64}
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := sort.Search(histBuckets, func(i int) bool { return histBounds[i] >= d })
	if i == histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i]++
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count reports the number of samples.
func (h *Hist) Count() uint64 { return h.count }

// Sum reports the total of all samples — the `_sum` of a Prometheus
// histogram exposition.
func (h *Hist) Sum() time.Duration { return h.sum }

// CumulativeLE reports how many samples landed in buckets whose upper bound
// is at most d — the cumulative `_bucket{le=...}` count of a Prometheus
// histogram exposition, exact at the histogram's ~2% bucket resolution.
func (h *Hist) CumulativeLE(d time.Duration) uint64 {
	var n uint64
	for i, c := range h.buckets {
		if histBounds[i] > d {
			break
		}
		n += c
	}
	return n
}

// Mean reports the mean sample, or 0 with no samples.
func (h *Hist) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min reports the smallest sample, or 0 with no samples.
func (h *Hist) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest sample.
func (h *Hist) Max() time.Duration { return h.max }

// Quantile reports the q-quantile (0 <= q <= 1) by bucket upper bound.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	v := h.max
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			v = histBounds[i]
			break
		}
	}
	// Bucket bounds are ~2% coarser than the exact extrema tracked
	// alongside the buckets: clamp so no quantile escapes [Min, Max]
	// (notably Quantile(1.0), whose bucket bound can exceed Max).
	if v > h.max {
		v = h.max
	}
	if v < h.min {
		v = h.min
	}
	return v
}

// P50, P95, P99 are convenience quantiles.
func (h *Hist) P50() time.Duration { return h.Quantile(0.50) }
func (h *Hist) P95() time.Duration { return h.Quantile(0.95) }
func (h *Hist) P99() time.Duration { return h.Quantile(0.99) }

// Merge folds other's samples into h. Buckets are identically spaced in
// every Hist, so the merge is exact at bucket resolution and min/max/sum
// stay exact — sharded experiment runs merge their per-shard histograms
// into one distribution without losing quantile fidelity. A nil or empty
// other is a no-op.
func (h *Hist) Merge(other *Hist) {
	if other == nil || other.count == 0 {
		return
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset discards all samples.
func (h *Hist) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.count, h.sum, h.max = 0, 0, 0
	h.min = math.MaxInt64
}

// String summarizes the distribution.
func (h *Hist) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean(), h.P50(), h.P99(), h.max)
}

// Meter counts events and converts them to rates over explicit windows.
type Meter struct {
	total     uint64
	mark      uint64
	markStart time.Duration
}

// NewMeter returns a zeroed meter.
func NewMeter() *Meter { return &Meter{} }

// Inc records n events.
func (m *Meter) Inc(n uint64) { m.total += n }

// Total reports the lifetime event count.
func (m *Meter) Total() uint64 { return m.total }

// Merge folds other's lifetime count into m. Window marks are left alone:
// merged meters are for end-of-run totals across shards, not for windowed
// rates mid-merge. A nil other is a no-op.
func (m *Meter) Merge(other *Meter) {
	if other == nil {
		return
	}
	m.total += other.total
}

// MarkWindow starts a measurement window at virtual time now.
func (m *Meter) MarkWindow(now time.Duration) {
	m.mark = m.total
	m.markStart = now
}

// WindowRate reports events/second since the last MarkWindow.
func (m *Meter) WindowRate(now time.Duration) float64 {
	dt := now - m.markStart
	if dt <= 0 {
		return 0
	}
	return float64(m.total-m.mark) / dt.Seconds()
}

// WindowCount reports events since the last MarkWindow.
func (m *Meter) WindowCount() uint64 { return m.total - m.mark }

// Point is one (time, value) sample.
type Point struct {
	T time.Duration
	V float64
}

// Series is an append-only time series.
type Series struct {
	Name   string
	Points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample.
func (s *Series) Add(t time.Duration, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.Points) }

// At returns the value of the sample nearest to (and not after) t, or 0.
func (s *Series) At(t time.Duration) float64 {
	var v float64
	for _, p := range s.Points {
		if p.T > t {
			break
		}
		v = p.V
	}
	return v
}

// MeanBetween averages samples with lo <= T <= hi; 0 when none fall inside.
func (s *Series) MeanBetween(lo, hi time.Duration) float64 {
	var sum float64
	var n int
	for _, p := range s.Points {
		if p.T >= lo && p.T <= hi {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Max reports the largest sample value, or 0 when empty.
func (s *Series) Max() float64 {
	var m float64
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// UtilSampler converts cumulative busy-time readings into per-window
// utilization samples (0..1 per core observed).
type UtilSampler struct {
	last     time.Duration
	lastTime time.Duration
}

// Sample returns utilization over (lastTime, now] given the cumulative busy
// time, then advances the window.
func (u *UtilSampler) Sample(now, busy time.Duration) float64 {
	dt := now - u.lastTime
	db := busy - u.last
	u.lastTime = now
	u.last = busy
	if dt <= 0 {
		return 0
	}
	return float64(db) / float64(dt)
}

// sparkTicks are the eight block characters sparklines are drawn with.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders the series as a compact unicode strip chart with up to
// width points (the series is downsampled by striding). Empty series render
// as an empty string.
func (s *Series) Sparkline(width int) string {
	if len(s.Points) == 0 || width <= 0 {
		return ""
	}
	stride := (len(s.Points) + width - 1) / width
	var vals []float64
	for i := 0; i < len(s.Points); i += stride {
		// Average the bucket so bursts are not aliased away.
		sum, n := 0.0, 0
		for j := i; j < i+stride && j < len(s.Points); j++ {
			sum += s.Points[j].V
			n++
		}
		vals = append(vals, sum/float64(n))
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkTicks)-1))
		}
		out[i] = sparkTicks[idx]
	}
	return string(out)
}

// RecoveryDetector measures how long a windowed-rate series takes to return
// to its pre-fault baseline after a fault clears. Recovery is declared at
// the first of Sustain consecutive samples at or above
// Baseline*(1-Tolerance); requiring more than one sample rejects a single
// lucky window during the retransmit storm.
type RecoveryDetector struct {
	Baseline  float64
	Tolerance float64 // fraction below baseline still counted as recovered
	Sustain   int     // consecutive samples required (min 1)
}

// Detect scans s from clearAt and returns the virtual time from fault-clear
// to the start of the first sustained recovered run, and whether recovery
// happened within the series at all.
func (rd RecoveryDetector) Detect(s *Series, clearAt time.Duration) (time.Duration, bool) {
	threshold := rd.Baseline * (1 - rd.Tolerance)
	need := rd.Sustain
	if need < 1 {
		need = 1
	}
	run := 0
	var runStart time.Duration
	for _, p := range s.Points {
		if p.T < clearAt {
			continue
		}
		if p.V >= threshold {
			if run == 0 {
				runStart = p.T
			}
			run++
			if run >= need {
				return runStart - clearAt, true
			}
		} else {
			run = 0
		}
	}
	return 0, false
}
