package metrics

import (
	"testing"
	"time"
)

func TestHistMergeEmpty(t *testing.T) {
	a := NewHist()
	a.Observe(time.Millisecond)
	a.Observe(2 * time.Millisecond)

	a.Merge(NewHist()) // empty other: no-op
	if a.Count() != 2 || a.Min() != time.Millisecond || a.Max() != 2*time.Millisecond {
		t.Fatalf("merge of empty hist changed stats: %v", a)
	}
	a.Merge(nil) // nil other: no-op
	if a.Count() != 2 {
		t.Fatalf("merge of nil hist changed stats: %v", a)
	}

	b := NewHist()
	b.Merge(a) // into empty: adopts everything
	if b.Count() != 2 || b.Min() != time.Millisecond || b.Max() != 2*time.Millisecond {
		t.Fatalf("merge into empty hist lost stats: %v", b)
	}
	if b.Mean() != a.Mean() || b.P50() != a.P50() {
		t.Fatalf("merged stats differ: %v vs %v", b, a)
	}
}

func TestHistMergeDisjointRanges(t *testing.T) {
	// Shard 1 sees microsecond latencies, shard 2 millisecond latencies —
	// the sharded-run shape where per-shard quantiles are useless and only
	// the merged distribution is meaningful.
	a, b, want := NewHist(), NewHist(), NewHist()
	for i := 1; i <= 100; i++ {
		d := time.Duration(i) * time.Microsecond
		a.Observe(d)
		want.Observe(d)
	}
	for i := 1; i <= 100; i++ {
		d := time.Duration(i) * time.Millisecond
		b.Observe(d)
		want.Observe(d)
	}
	a.Merge(b)
	if a.Count() != want.Count() || a.Min() != want.Min() || a.Max() != want.Max() || a.Mean() != want.Mean() {
		t.Fatalf("merged moments differ: %v vs %v", a, want)
	}
	// Identical bucket spacing makes the merge exact at bucket resolution:
	// every quantile must equal the directly combined histogram's.
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.95, 0.99, 1} {
		if a.Quantile(q) != want.Quantile(q) {
			t.Fatalf("q%.2f: merged %v, combined %v", q, a.Quantile(q), want.Quantile(q))
		}
	}
}

func TestMeterMerge(t *testing.T) {
	a, b := NewMeter(), NewMeter()
	a.Inc(10)
	b.Inc(32)
	a.Merge(b)
	if a.Total() != 42 {
		t.Fatalf("merged total %d, want 42", a.Total())
	}
	a.Merge(nil)
	if a.Total() != 42 {
		t.Fatalf("nil merge changed total: %d", a.Total())
	}
}

// ramp builds a goodput-shaped series: baseline until faultAt, depressed
// until healAt, then back to baseline; one sample per ms.
func ramp(n int, baseline, dip float64, faultAt, healAt int) *Series {
	s := NewSeries("goodput")
	for i := 0; i < n; i++ {
		v := baseline
		if i >= faultAt && i < healAt {
			v = dip
		}
		s.Add(time.Duration(i)*time.Millisecond, v)
	}
	return s
}

func TestRecoveryDetectorRecoveryBeforeClear(t *testing.T) {
	// The series returns to baseline at t=6ms, but the fault formally
	// clears at t=8ms: samples before clearAt must be ignored, so the
	// detector reports recovery at the first sustained run at/after 8ms —
	// zero recovery time, not a negative one.
	s := ramp(20, 100, 20, 3, 6)
	rd := RecoveryDetector{Baseline: 100, Tolerance: 0.05, Sustain: 2}
	rt, ok := rd.Detect(s, 8*time.Millisecond)
	if !ok {
		t.Fatal("recovery not detected")
	}
	if rt != 0 {
		t.Fatalf("recovery time %v, want 0 (already recovered when fault cleared)", rt)
	}
}

func TestRecoveryDetectorNeverRecoversAfterClear(t *testing.T) {
	// Goodput collapses and stays collapsed past the end of the series.
	s := ramp(20, 100, 20, 3, 20)
	rd := RecoveryDetector{Baseline: 100, Tolerance: 0.05, Sustain: 2}
	if _, ok := rd.Detect(s, 5*time.Millisecond); ok {
		t.Fatal("detected recovery in a series that never recovers")
	}
}

func TestRecoveryDetectorMultipleCycles(t *testing.T) {
	// Two fault/heal cycles: dip at [3,6), brief heal at [6,8), second dip
	// at [8,12), final heal from 12. With Sustain 3 the two-sample heal at
	// [6,8) must NOT count — recovery is the sustained run starting at 12ms.
	s := NewSeries("goodput")
	for i := 0; i < 20; i++ {
		v := 100.0
		if (i >= 3 && i < 6) || (i >= 8 && i < 12) {
			v = 20
		}
		s.Add(time.Duration(i)*time.Millisecond, v)
	}
	rd := RecoveryDetector{Baseline: 100, Tolerance: 0.05, Sustain: 3}
	rt, ok := rd.Detect(s, 6*time.Millisecond)
	if !ok {
		t.Fatal("recovery not detected after second heal")
	}
	if rt != 6*time.Millisecond {
		t.Fatalf("recovery time %v, want 6ms (12ms run start - 6ms clear)", rt)
	}
	// With Sustain 2 the first heal window [6,8) does qualify.
	rd2 := RecoveryDetector{Baseline: 100, Tolerance: 0.05, Sustain: 2}
	rt2, ok2 := rd2.Detect(s, 6*time.Millisecond)
	if !ok2 || rt2 != 0 {
		t.Fatalf("sustain=2: got (%v,%v), want recovery at clear instant", rt2, ok2)
	}
}
