package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"

	"nadino/internal/dne"
	"nadino/internal/params"
	"nadino/internal/trace"
)

// reconcile asserts that the non-overlapping stage spans account for the
// trace's end-to-end mean within tol, and returns the report.
func reconcile(t *testing.T, tr *trace.Tracer, tol float64) *trace.Report {
	t.Helper()
	rep := tr.Report()
	if rep.Requests == 0 {
		t.Fatal("no finished requests traced")
	}
	e2e := rep.EndToEnd.Mean()
	if e2e <= 0 {
		t.Fatalf("bogus end-to-end mean %v", e2e)
	}
	sum := rep.StageSumPerRequest()
	gap := math.Abs(float64(sum)-float64(e2e)) / float64(e2e)
	if gap > tol {
		for _, s := range rep.Stages {
			t.Logf("stage %-22s detail=%v mean/req=%v", s.Stage, s.Detail, s.PerRequest(rep.Requests))
		}
		t.Errorf("stage sum %v vs end-to-end mean %v: gap %.1f%% > %.0f%%",
			sum, e2e, 100*gap, 100*tol)
	}
	return rep
}

// TestDNEEchoTraceReconciles is the tentpole acceptance check: tracing the
// full DNE echo path (port -> comch -> DNE -> RDMA -> fabric and back), the
// per-stage attribution must sum to the observed end-to-end latency.
func TestDNEEchoTraceReconciles(t *testing.T) {
	p := params.Default()
	tr := trace.New(nil)
	_, lat := runDNEEcho(p, 1, dne.OffPath, 1024, 4, 20*time.Millisecond, tr)
	rep := reconcile(t, tr, 0.05)
	// The trace's own end-to-end mean must agree with the RTT the benchmark
	// reports (same steady-state window; populations differ only by
	// requests in flight at the window edges).
	e2e := rep.EndToEnd.Mean()
	if lat <= 0 {
		t.Fatalf("benchmark reported no latency")
	}
	if drift := math.Abs(float64(e2e)-float64(lat)) / float64(lat); drift > 0.10 {
		t.Errorf("trace end-to-end mean %v drifts %.1f%% from reported mean RTT %v", e2e, 100*drift, lat)
	}
	// Tracing must actually see the isolation layer's stages.
	want := map[string]bool{
		trace.StagePortSend: false, trace.StageComchH2D: false,
		trace.StageDNETx: false, trace.StageRDMA: false,
	}
	for _, s := range rep.Stages {
		if _, ok := want[s.Stage]; ok {
			want[s.Stage] = true
		}
	}
	for stage, seen := range want {
		if !seen {
			t.Errorf("stage %q missing from DNE echo trace", stage)
		}
	}
}

// TestNativeEchoTraceReconciles covers the bare-verbs path (no DNE layer).
func TestNativeEchoTraceReconciles(t *testing.T) {
	p := params.Default()
	tr := trace.New(nil)
	_, lat := runNativeEcho(p, 1, p.HostCoreSpeed, 1024, 4, 20*time.Millisecond, tr)
	if lat <= 0 {
		t.Fatal("benchmark reported no latency")
	}
	reconcile(t, tr, 0.05)
}

// TestFig06TraceExport drives the experiment exactly as `nadino-bench -run
// fig06 -trace` does and checks both deliverables: per-profile stage tables
// and a valid Chrome trace-event JSON export.
func TestFig06TraceExport(t *testing.T) {
	var profiles []trace.Profile
	o := Opts{Quick: true, Seed: 1, Trace: true, TraceSink: func(name string, tr *trace.Tracer) {
		profiles = append(profiles, trace.Profile{Name: name, Tracer: tr})
	}}
	res := Fig06(o)
	if len(res.Rows) == 0 {
		t.Fatal("fig06 produced no rows")
	}
	if want := len(res.Rows); len(profiles) != want {
		t.Fatalf("got %d trace profiles, want one per row (%d)", len(profiles), want)
	}
	for _, pr := range profiles {
		rep := pr.Tracer.Report()
		if rep.Requests == 0 {
			t.Errorf("profile %q traced no finished requests", pr.Name)
			continue
		}
		tb := TraceTable(pr.Name, rep)
		if len(tb.Rows) == 0 {
			t.Errorf("profile %q produced an empty attribution table", pr.Name)
		}
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, profiles); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export contains no events")
	}
}
