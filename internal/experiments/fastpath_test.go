package experiments

import (
	"bytes"
	"testing"

	"nadino/internal/dne"
)

// TestBatchedDeliveryDeterminism is the fence for the data-plane fast path:
// the engine's CQ drain batch and SRQ replenish batch are pure software
// mechanics — every cost is charged per CQE and per buffer — so shrinking
// both to 1 (per-CQE delivery, per-buffer replenish) must produce
// bitwise-identical fig15/fig16/table2 tables for the same seed. If a batch
// size ever leaks into virtual time (a bulk discount, a reordered wake, a
// skipped doorbell), this diff catches it.
func TestBatchedDeliveryDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three experiments twice")
	}
	o := Opts{Quick: true, Seed: 11}
	render := func() []byte {
		var buf bytes.Buffer
		for _, run := range []func(Opts) []*Table{RunFig15, RunFig16, RunTable2} {
			for _, tb := range run(o) {
				tb.Print(&buf)
			}
		}
		return buf.Bytes()
	}

	batched := render()

	oldPoll, oldRep := dne.PollBatch, dne.ReplenishBatch
	dne.PollBatch, dne.ReplenishBatch = 1, 1
	defer func() { dne.PollBatch, dne.ReplenishBatch = oldPoll, oldRep }()
	unbatched := render()

	if !bytes.Equal(batched, unbatched) {
		d := firstDiff(batched, unbatched)
		t.Fatalf("batched completion/replenish delivery diverged from per-CQE delivery at byte %d:\nbatched:   %q\nunbatched: %q",
			d, excerpt(batched, d), excerpt(unbatched, d))
	}
}
