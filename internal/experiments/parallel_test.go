package experiments

import (
	"bytes"
	"runtime"
	"testing"
)

// render runs every experiment (paper figures + ablations) at quick
// fidelity and returns the concatenated rendered tables.
func render(t *testing.T, o Opts) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, e := range AllWithAblations() {
		for _, tb := range e.Run(o) {
			tb.Print(&buf)
		}
	}
	return buf.Bytes()
}

// TestParallelDeterminism asserts the parallel sharding contract: for a
// fixed seed, running the sweep points across GOMAXPROCS workers produces
// byte-identical tables to a sequential run. This is the regression fence
// for "results merged in input order, one engine per point, no shared
// mutable state".
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite twice")
	}
	o := Opts{Quick: true, Seed: 7}
	seq := render(t, o)
	// At least 4 workers even on a single-core box: goroutines still
	// interleave, so the sharding and index-addressed merging are exercised
	// either way.
	o.Parallel = runtime.GOMAXPROCS(0)
	if o.Parallel < 4 {
		o.Parallel = 4
	}
	par := render(t, o)
	if !bytes.Equal(seq, par) {
		d := firstDiff(seq, par)
		t.Fatalf("parallel run diverged from sequential run at byte %d:\nseq: %q\npar: %q",
			d, excerpt(seq, d), excerpt(par, d))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func excerpt(b []byte, at int) []byte {
	lo, hi := at-60, at+60
	if lo < 0 {
		lo = 0
	}
	if hi > len(b) {
		hi = len(b)
	}
	return b[lo:hi]
}

// TestParallelism pins the flag-to-worker-count mapping.
func TestParallelism(t *testing.T) {
	if got := Parallelism(3); got != 3 {
		t.Fatalf("Parallelism(3) = %d", got)
	}
	if got := Parallelism(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Parallelism(0) = %d, want GOMAXPROCS", got)
	}
	if got := Parallelism(-2); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Parallelism(-2) = %d, want GOMAXPROCS", got)
	}
}

// TestForEachCoversAllIndices checks the work distribution hits every index
// exactly once for worker counts around the edge cases.
func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 16, 100} {
		const n = 37
		hits := make([]int32, n)
		ForEach(workers, n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d run %d times", workers, i, h)
			}
		}
	}
}
