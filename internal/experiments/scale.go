package experiments

import (
	"fmt"
	"time"

	"nadino/internal/sim"
)

// Scale-sweep: the million-client event-core stress. Unlike the paper
// figures this experiment measures the simulator itself — how the
// timing-wheel engine and pooled process layer hold up when one virtual
// cluster carries 10^6 concurrent clients across 100+ nodes.
//
// Clients are proc-free: a million goroutine-backed processes would need
// gigabytes of stacks, so each client is a timer-driven state machine with
// two bound-method callbacks (issue, done) allocated once at setup. A
// request occupies its node's FCFS core via plain busyUntil arithmetic and
// every client interaction is exactly two engine events, so the event core
// is the only thing the sweep exercises.
//
// The tables report only virtual-time quantities (issued, completed, fired
// events, latency moments) — all deterministic for a fixed seed, so the
// sweep participates in TestParallelDeterminism like every other
// experiment. Wall-clock throughput (events/sec) is measured separately by
// BenchmarkScaleSweep and archived in BENCH_sim.json via cmd/benchjson.

// scalePoint is one sweep point's deterministic outcome.
type scalePoint struct {
	Nodes     int
	Clients   int
	Issued    uint64
	Completed uint64
	Events    uint64 // engine events fired during the window
	MeanLat   time.Duration
	MaxLat    time.Duration
}

// scaleNode is one simulated node: a single FCFS service core modeled as
// backlog arithmetic (no Processor, no Proc — just the completion instant).
type scaleNode struct {
	busyUntil time.Duration
}

// scaleClient is one closed-loop client with exponential think time.
type scaleClient struct {
	ex      *scaleExp
	node    *scaleNode
	rng     uint64
	issueAt time.Duration
	issueFn func()
	doneFn  func()
}

// scaleExp is one sweep point's world.
type scaleExp struct {
	eng       *sim.Engine
	nodes     []scaleNode
	clients   []scaleClient
	issued    uint64
	completed uint64
	latSum    time.Duration
	latMax    time.Duration
	think     time.Duration // mean think time
	svcBase   time.Duration
	svcJitter time.Duration
	until     time.Duration
}

// next is a splitmix64 step: cheap, stateless-seedable, deterministic.
func (c *scaleClient) next() uint64 {
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4568b
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// expDur draws an exponential duration with the given mean, capped at 8x to
// keep single stragglers from dominating a short window. The draw uses a
// 26-bit uniform mapped through a rational approximation of -ln(u) to stay
// in integer-friendly territory; exact shape is irrelevant, determinism and
// spread are what matter.
func (c *scaleClient) expDur(mean time.Duration) time.Duration {
	u := float64(c.next()>>38) + 1 // (0, 2^26]
	x := -logApprox(u / (1 << 26))
	if x > 8 {
		x = 8
	}
	return time.Duration(float64(mean) * x)
}

// logApprox is ln(u) for u in (0,1] via the standard atanh series on the
// mantissa after range reduction by halving. Accurate to ~1e-6 over the
// range drawn above — far tighter than the model needs.
func logApprox(u float64) float64 {
	k := 0.0
	for u < 0.5 {
		u *= 2
		k--
	}
	// u in [0.5, 1]; ln(u) = 2*atanh((u-1)/(u+1)).
	t := (u - 1) / (u + 1)
	t2 := t * t
	return k*0.6931471805599453 + 2*t*(1+t2/3+t2*t2/5+t2*t2*t2/7)
}

// issue books the client's next request on its node and schedules the
// completion callback at the service end.
func (c *scaleClient) issue() {
	now := c.ex.eng.Now()
	if now >= c.ex.until {
		return // window over: stop generating
	}
	c.issueAt = now
	start := now
	if c.node.busyUntil > start {
		start = c.node.busyUntil
	}
	svc := c.ex.svcBase + time.Duration(c.next()%uint64(c.ex.svcJitter))
	c.node.busyUntil = start + svc
	c.ex.issued++
	c.ex.eng.At(c.node.busyUntil, c.doneFn)
}

// done records the completion and schedules the next issue after the think
// time.
func (c *scaleClient) done() {
	now := c.ex.eng.Now()
	lat := now - c.issueAt
	c.ex.completed++
	c.ex.latSum += lat
	if lat > c.ex.latMax {
		c.ex.latMax = lat
	}
	c.ex.eng.At(now+c.expDur(c.ex.think), c.issueFn)
}

// runScalePoint builds and drains one cluster size.
func runScalePoint(o Opts, nodes, clientsPerNode int, window time.Duration) scalePoint {
	ex := &scaleExp{
		eng:       sim.NewEngine(o.Seed),
		nodes:     make([]scaleNode, nodes),
		clients:   make([]scaleClient, nodes*clientsPerNode),
		think:     10 * time.Millisecond,
		svcBase:   500 * time.Nanosecond,
		svcJitter: 500 * time.Nanosecond,
		until:     window,
	}
	defer ex.eng.Stop()
	for i := range ex.clients {
		c := &ex.clients[i]
		c.ex = ex
		c.node = &ex.nodes[i%nodes]
		c.rng = uint64(o.Seed)*0x9e3779b97f4a7c15 + uint64(i)*0xd1b54a32d192ed03
		c.issueFn = c.issue
		c.doneFn = c.done
		// Stagger arrivals across one think interval so the cluster does not
		// start with a synchronized thundering herd.
		ex.eng.At(time.Duration(c.next()%uint64(ex.think)), c.issueFn)
	}
	ex.eng.Run() // window cutoff in issue() quiesces the world
	pt := scalePoint{
		Nodes:     nodes,
		Clients:   len(ex.clients),
		Issued:    ex.issued,
		Completed: ex.completed,
		Events:    ex.eng.Fired(),
		MaxLat:    ex.latMax,
	}
	if ex.completed > 0 {
		pt.MeanLat = ex.latSum / time.Duration(ex.completed)
	}
	return pt
}

// ScaleSweep runs the cluster-size ladder. Full mode tops out at 1M
// concurrent clients on 100 nodes; quick mode keeps the same shape at toy
// sizes for tests.
func ScaleSweep(o Opts) []scalePoint {
	nodes := o.pick([]int{2, 4, 8}, []int{10, 25, 50, 100})
	perNode := 10000
	if o.Quick {
		perNode = 250
	}
	window := o.scale(10*time.Millisecond, 50*time.Millisecond)
	out := make([]scalePoint, len(nodes))
	o.forEach(len(nodes), func(i int) {
		out[i] = runScalePoint(o, nodes[i], perNode, window)
	})
	return out
}

// RunScale adapts the sweep to the registry.
func RunScale(o Opts) []*Table {
	pts := ScaleSweep(o)
	t := &Table{
		Title:   "Scale sweep — million-client event core",
		Columns: []string{"nodes", "clients", "issued", "completed", "events", "mean lat", "max lat"},
		Note:    "virtual-time quantities only; wall-clock events/sec is measured by BenchmarkScaleSweep (make bench)",
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("%d", p.Clients),
			fmt.Sprintf("%d", p.Issued),
			fmt.Sprintf("%d", p.Completed),
			fmt.Sprintf("%d", p.Events),
			fLat(p.MeanLat),
			fLat(p.MaxLat),
		})
	}
	return []*Table{t}
}
