package experiments

import (
	"io"
	"testing"
	"time"

	"nadino/internal/core"
)

var quick = Opts{Quick: true, Seed: 1}

func TestFig06Shapes(t *testing.T) {
	res := Fig06(quick)
	for _, pl := range []int{64, 4096} {
		dneRow, ok1 := res.Get("NADINO DNE", pl)
		cpuRow, ok2 := res.Get("native RDMA (CPU)", pl)
		dpuRow, ok3 := res.Get("native RDMA (DPU)", pl)
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("missing rows at %dB", pl)
		}
		// "The performance overhead incurred by executing RDMA primitives
		// directly on the wimpy DPU cores is minimal."
		if r := float64(dpuRow.MeanLat) / float64(cpuRow.MeanLat); r > 1.35 {
			t.Errorf("%dB: native DPU/CPU latency ratio %.2f, want minimal (<1.35)", pl, r)
		}
		// "the cost introduced by DNE as an additional isolation layer is
		// limited": bounded latency overhead, native no worse than DNE.
		if dneRow.MeanLat < cpuRow.MeanLat {
			t.Errorf("%dB: DNE latency %v below native %v — isolation cannot be free", pl, dneRow.MeanLat, cpuRow.MeanLat)
		}
		if r := float64(dneRow.MeanLat) / float64(cpuRow.MeanLat); r > 4.0 {
			t.Errorf("%dB: DNE/native latency ratio %.2f, want bounded (<4)", pl, r)
		}
		if dneRow.RPS <= 0 || cpuRow.RPS <= 0 || dpuRow.RPS <= 0 {
			t.Fatalf("%dB: zero RPS row", pl)
		}
	}
}

func TestFig09Shapes(t *testing.T) {
	res := Fig09(quick)
	// At one function: Comch-P < Comch-E < TCP latency; Comch-E beats TCP
	// by ~2.7-3.8x.
	tcp1, _ := res.Get("TCP", 1)
	e1, _ := res.Get("Comch-E", 1)
	p1, _ := res.Get("Comch-P", 1)
	if !(p1.RTT < e1.RTT && e1.RTT < tcp1.RTT) {
		t.Fatalf("RTT ordering violated: P=%v E=%v TCP=%v", p1.RTT, e1.RTT, tcp1.RTT)
	}
	if r := float64(tcp1.RTT) / float64(e1.RTT); r < 2.0 || r > 5.0 {
		t.Errorf("TCP/Comch-E RTT ratio %.1f, want ~2.7-3.8", r)
	}
	// Comch-P "overloads beyond 6 functions": its rate degrades from 6 to
	// 8 functions while Comch-E keeps scaling or holds.
	p6, _ := res.Get("Comch-P", 6)
	p8, _ := res.Get("Comch-P", 8)
	if p8.Rate >= p6.Rate {
		t.Errorf("Comch-P rate did not degrade past 6 functions: %0.f -> %0.f", p6.Rate, p8.Rate)
	}
	e6, _ := res.Get("Comch-E", 6)
	e8, _ := res.Get("Comch-E", 8)
	if e8.Rate < e6.Rate*0.9 {
		t.Errorf("Comch-E rate collapsed past 6 functions: %0.f -> %0.f", e6.Rate, e8.Rate)
	}
}

func TestFig11Shapes(t *testing.T) {
	res := Fig11(quick)
	// Under concurrency the on-path SoC DMA queues: off-path wins by
	// ~20-30% (paper: "up to 30% RPS improvement").
	off8, ok1 := res.GetConcurrency("off-path", 8)
	on8, ok2 := res.GetConcurrency("on-path", 8)
	if !ok1 || !ok2 {
		t.Fatal("missing concurrency rows")
	}
	if on8.RPS >= off8.RPS {
		t.Fatalf("on-path RPS %.0f not below off-path %.0f at concurrency 8", on8.RPS, off8.RPS)
	}
	if r := off8.RPS / on8.RPS; r > 3.0 {
		t.Errorf("off/on ratio %.2f implausibly large", r)
	}
	// At one connection the gap is small (the DMA engine is not loaded).
	off1, _ := res.GetConcurrency("off-path", 1)
	on1, _ := res.GetConcurrency("on-path", 1)
	gapLoaded := off8.RPS / on8.RPS
	gapIdle := off1.RPS / on1.RPS
	if gapIdle > gapLoaded {
		t.Errorf("gap at idle (%.2f) exceeds gap under load (%.2f) — concurrency should widen it", gapIdle, gapLoaded)
	}
	// Latency: on-path pays the SoC DMA on every transfer.
	if on1.MeanLat <= off1.MeanLat {
		t.Errorf("on-path latency %v not above off-path %v", on1.MeanLat, off1.MeanLat)
	}
}

func TestFig12Shapes(t *testing.T) {
	res := Fig12(quick)
	get := func(v Fig12Variant, pl int) Fig12Row {
		r, ok := res.Get(v, pl)
		if !ok {
			t.Fatalf("missing row %v %dB", v, pl)
		}
		return r
	}
	for _, pl := range []int{64, 4096} {
		ts := get(TwoSided, pl)
		best := get(OWRCBest, pl)
		worst := get(OWRCWorst, pl)
		owdl := get(OWDL, pl)
		// Latency ordering: two-sided < OWRC-Best <= OWRC-Worst < OWDL.
		// At 64B the cached-vs-cold copy difference is tens of ns, so the
		// Best/Worst comparison gets a small tolerance there.
		worstFloor := best.MeanLat
		if pl < 1024 {
			worstFloor = best.MeanLat * 95 / 100
		}
		if !(ts.MeanLat < best.MeanLat && worst.MeanLat >= worstFloor && worst.MeanLat < owdl.MeanLat && ts.MeanLat < worst.MeanLat) {
			t.Fatalf("%dB latency ordering violated: ts=%v best=%v worst=%v owdl=%v",
				pl, ts.MeanLat, best.MeanLat, worst.MeanLat, owdl.MeanLat)
		}
		// "two-sided RDMA is 2x-2.8x faster than one-sided write using
		// distributed locks" — allow 1.7-3.5.
		if r := float64(owdl.MeanLat) / float64(ts.MeanLat); r < 1.7 || r > 3.5 {
			t.Errorf("%dB OWDL/two-sided latency ratio %.2f, want ~2-2.8", pl, r)
		}
		// "up to 1.6x faster than one-sided write with receiver-side copy".
		if r := float64(worst.MeanLat) / float64(ts.MeanLat); r < 1.1 || r > 2.0 {
			t.Errorf("%dB OWRC-Worst/two-sided latency ratio %.2f, want ~1.3-1.6", pl, r)
		}
		// Throughput mirrors it: two-sided highest, OWDL lowest.
		if !(ts.RPS > best.RPS && best.RPS >= worst.RPS*95/100 && worst.RPS > owdl.RPS) {
			t.Errorf("%dB RPS ordering violated: ts=%.0f best=%.0f worst=%.0f owdl=%.0f",
				pl, ts.RPS, best.RPS, worst.RPS, owdl.RPS)
		}
	}
	// The copy penalty grows with payload: at 4KB the Best/Worst spread
	// must be visible.
	b64 := get(OWRCBest, 64)
	w64 := get(OWRCWorst, 64)
	b4k := get(OWRCBest, 4096)
	w4k := get(OWRCWorst, 4096)
	spread64 := float64(w64.MeanLat) / float64(b64.MeanLat)
	spread4k := float64(w4k.MeanLat) / float64(b4k.MeanLat)
	if spread4k <= spread64 {
		t.Errorf("cache-vs-memory copy spread should grow with payload: 64B %.3f vs 4KB %.3f", spread64, spread4k)
	}
}

func TestFig13Shapes(t *testing.T) {
	res := Fig13(quick)
	nad, _ := res.Get("NADINO-Ingress", 32)
	fi, _ := res.Get("F-Ingress", 32)
	ki, _ := res.Get("K-Ingress", 32)
	if !(nad.RPS > fi.RPS && fi.RPS > ki.RPS) {
		t.Fatalf("RPS ordering violated: N=%.0f F=%.0f K=%.0f", nad.RPS, fi.RPS, ki.RPS)
	}
	if r := nad.RPS / ki.RPS; r < 5 || r > 20 {
		t.Errorf("NADINO/K ratio %.1f, want ~11.4", r)
	}
	if r := nad.RPS / fi.RPS; r < 1.8 || r > 6 {
		t.Errorf("NADINO/F ratio %.1f, want ~3.2", r)
	}
	if !(nad.MeanLat < fi.MeanLat && fi.MeanLat < ki.MeanLat) {
		t.Fatalf("latency ordering violated: N=%v F=%v K=%v", nad.MeanLat, fi.MeanLat, ki.MeanLat)
	}
}

func TestFig14Shapes(t *testing.T) {
	res := Fig14(quick)
	nad, ok := res.Get("NADINO-Ingress")
	if !ok {
		t.Fatal("missing NADINO series")
	}
	ki, _ := res.Get("K-Ingress")
	// NADINO scales workers up under the ramp.
	if nad.Workers.Max() < 2 {
		t.Fatalf("NADINO never scaled beyond %v workers", nad.Workers.Max())
	}
	// NADINO serves more than K-Ingress while using less CPU at the end.
	if nad.Served <= ki.Served {
		t.Fatalf("NADINO served %d, K-Ingress %d", nad.Served, ki.Served)
	}
	endCPUNad := nad.CPU.At(res.Total)
	endCPUK := ki.CPU.At(res.Total)
	if endCPUNad >= endCPUK {
		t.Errorf("NADINO end CPU %.1f cores not below K-Ingress %.1f", endCPUNad, endCPUK)
	}
	// K-Ingress overloads: connections time out and disconnect.
	if ki.Disconnected == 0 && ki.Dropped == 0 {
		t.Error("K-Ingress neither disconnected nor dropped under the ramp")
	}
	if nad.Disconnected >= ki.Disconnected && ki.Disconnected > 0 {
		t.Errorf("NADINO disconnected as much (%d) as K-Ingress (%d)", nad.Disconnected, ki.Disconnected)
	}
}

func TestFig15Shapes(t *testing.T) {
	res := Fig15(quick)
	lo, hi := res.AllActiveLo, res.AllActiveHi
	dwrr := res.DWRR.SharesBetween(lo, hi)
	total := dwrr["tenant1"] + dwrr["tenant2"] + dwrr["tenant3"]
	if total <= 0 {
		t.Fatal("DWRR produced no throughput in the contention window")
	}
	// Weighted shares 6:1:2 within tolerance.
	want := map[string]float64{"tenant1": 6.0 / 9, "tenant2": 1.0 / 9, "tenant3": 2.0 / 9}
	for name, w := range want {
		got := dwrr[name] / total
		if got < w*0.75 || got > w*1.25 {
			t.Errorf("DWRR share %s = %.3f, want ~%.3f (rates=%v)", name, got, w, dwrr)
		}
	}
	// FCFS starves the steady tenant relative to its entitled share.
	fcfs := res.FCFS.SharesBetween(lo, hi)
	ftotal := fcfs["tenant1"] + fcfs["tenant2"] + fcfs["tenant3"]
	if ftotal <= 0 {
		t.Fatal("FCFS produced no throughput")
	}
	fShare1 := fcfs["tenant1"] / ftotal
	dShare1 := dwrr["tenant1"] / total
	if fShare1 >= dShare1 {
		t.Errorf("FCFS tenant1 share %.3f not below DWRR %.3f — no starvation effect", fShare1, dShare1)
	}
	// Tenant1 alone at the start gets (roughly) the whole capped engine.
	solo := res.DWRR.SharesBetween(0, res.DWRR.Total/20)
	mid := res.DWRR.AggregateBetween(lo, hi)
	if solo["tenant1"] < mid*0.7 {
		t.Errorf("tenant1 solo rate %.0f well below contended aggregate %.0f", solo["tenant1"], mid)
	}
}

func TestFig17Shapes(t *testing.T) {
	res := Fig17(quick)
	run := res.Run
	step := res.Step
	// All-active window: [5*step, 6*step] — six tenants compete equally.
	shares := run.SharesBetween(5*step+step/4, 6*step-step/4)
	var total float64
	for _, v := range shares {
		total += v
	}
	if total <= 0 {
		t.Fatal("no throughput in the all-active window")
	}
	for name, v := range shares {
		got := v / total
		if got < 0.10 || got > 0.24 {
			t.Errorf("share %s = %.3f, want ~1/6", name, got)
		}
	}
	// Aggregate stays near capacity as tenants come and go: compare the
	// all-active window to a two-tenant window.
	early := run.AggregateBetween(step+step/4, 2*step-step/4)
	busy := run.AggregateBetween(5*step+step/4, 6*step-step/4)
	if early < busy*0.7 {
		t.Errorf("aggregate sagged when fewer tenants active: early %.0f vs busy %.0f", early, busy)
	}
}

func TestFig16AndTable2Shapes(t *testing.T) {
	res := Fig16(quick)
	chain := "home-query"
	hi := res.MaxClients()
	get := func(sys core.System) Fig16Row {
		r, ok := res.Get(sys, chain, hi)
		if !ok {
			t.Fatalf("missing row %v", sys)
		}
		return r
	}
	dne := get(core.NadinoDNE)
	cne := get(core.NadinoCNE)
	fuyaoF := get(core.FuyaoF)
	fuyaoK := get(core.FuyaoK)
	spright := get(core.Spright)
	nightcore := get(core.NightCore)
	junction := get(core.Junction)

	// NADINO (DNE) wins RPS overall; NightCore trails by 5-21x.
	for _, other := range []Fig16Row{cne, fuyaoF, fuyaoK, spright, nightcore, junction} {
		if dne.RPS <= other.RPS {
			t.Errorf("NADINO DNE RPS %.0f not above %v %.0f", dne.RPS, other.System, other.RPS)
		}
	}
	if r := dne.RPS / nightcore.RPS; r < 4 || r > 30 {
		t.Errorf("DNE/NightCore RPS ratio %.1f, want ~5-21x", r)
	}
	// DNE beats CNE by 1.3-1.8x at high concurrency.
	if r := dne.RPS / cne.RPS; r < 1.1 || r > 2.5 {
		t.Errorf("DNE/CNE RPS ratio %.1f, want ~1.3-1.8", r)
	}
	// F-stack ingress beats kernel ingress for FUYAO.
	if fuyaoF.RPS <= fuyaoK.RPS {
		t.Errorf("FUYAO-F RPS %.0f not above FUYAO-K %.0f", fuyaoF.RPS, fuyaoK.RPS)
	}
	// Junction sits below both NADINO variants (software TCP per hop,
	// duplicated for inter-function communication) but above FUYAO-F.
	if junction.RPS >= dne.RPS {
		t.Errorf("Junction %.0f not below NADINO DNE %.0f", junction.RPS, dne.RPS)
	}
	if junction.RPS >= cne.RPS {
		t.Errorf("Junction %.0f not below NADINO CNE %.0f", junction.RPS, cne.RPS)
	}
	if junction.RPS <= fuyaoF.RPS {
		t.Errorf("Junction %.0f not above FUYAO-F %.0f", junction.RPS, fuyaoF.RPS)
	}
	// FUYAO's one-sided design trails NADINO substantially (paper:
	// 2.1-4.1x); allow >= 1.5x here.
	if r := dne.RPS / fuyaoF.RPS; r < 1.5 {
		t.Errorf("DNE/FUYAO-F RPS ratio %.2f, want >= 1.5", r)
	}
	// Latency: NightCore is the clear worst; NADINO DNE the best at load.
	for _, other := range []Fig16Row{cne, fuyaoF, fuyaoK, spright, junction} {
		if nightcore.MeanLat <= other.MeanLat {
			t.Errorf("NightCore latency %v not above %v (%v)", nightcore.MeanLat, other.MeanLat, other.System)
		}
		if dne.MeanLat > other.MeanLat {
			t.Errorf("NADINO DNE latency %v above %v (%v) at high load", dne.MeanLat, other.MeanLat, other.System)
		}
	}
	// Latency grows with client count for every system (Table 2 shape).
	lo := 0
	for _, row := range res.Rows {
		if row.Clients != hi && row.Clients > lo {
			lo = row.Clients
		}
	}
	for _, sys := range core.Systems() {
		a, ok1 := res.Get(sys, chain, lo)
		b, ok2 := res.Get(sys, chain, hi)
		if !ok1 || !ok2 {
			continue
		}
		if b.MeanLat < a.MeanLat {
			t.Errorf("%v latency fell with load: %v@%d -> %v@%d", sys, a.MeanLat, lo, b.MeanLat, hi)
		}
	}
	// Efficiency: DNE pins DPU cores; FUYAO burns more CPU than NADINO.
	if !dne.Net.OnDPU {
		t.Error("NADINO DNE should report DPU cores")
	}
	if cne.Net.OnDPU || fuyaoF.Net.OnDPU {
		t.Error("CPU-hosted engines misreported as DPU")
	}
	if fuyaoF.Net.PinnedCores <= cne.Net.PinnedCores {
		t.Errorf("FUYAO pinned cores %.0f not above CNE %.0f (engine + poller per node)",
			fuyaoF.Net.PinnedCores, cne.Net.PinnedCores)
	}
	if fuyaoK.Net.Total() <= dne.Net.FnCores {
		t.Errorf("FUYAO-K total CPU %.2f should exceed NADINO's host-side share %.2f",
			fuyaoK.Net.Total(), dne.Net.FnCores)
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry pass is exercised by the individual tests")
	}
	for _, e := range All() {
		tables := e.Run(quick)
		if len(tables) == 0 {
			t.Errorf("%s returned no tables", e.ID)
		}
		for _, tb := range tables {
			if len(tb.Rows) == 0 {
				t.Errorf("%s produced an empty table %q", e.ID, tb.Title)
			}
			tb.Print(io.Discard)
		}
	}
	if _, ok := Lookup("fig12"); !ok {
		t.Error("Lookup failed for fig12")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup found a ghost")
	}
	_ = time.Now
}
