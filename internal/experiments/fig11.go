package experiments

import (
	"fmt"
	"time"

	"nadino/internal/dne"
	"nadino/internal/params"
)

// Fig11Row is one (mode, payload-or-concurrency) measurement.
type Fig11Row struct {
	Mode        string
	Payload     int
	Concurrency int
	RPS         float64
	MeanLat     time.Duration
}

// Fig11Result compares off-path (cross-processor shared memory) vs on-path
// (SoC DMA staging) DPU offloading (§4.1.1).
type Fig11Result struct {
	PayloadSweep     []Fig11Row // single connection, varying payload
	ConcurrencySweep []Fig11Row // 1KB payload, varying concurrency
}

func fig11Mode(m dne.Mode) string {
	if m == dne.OffPath {
		return "off-path"
	}
	return "on-path"
}

// Fig11 runs both sweeps. Each (mode, payload/concurrency) point is an
// independent engine, so the two sweeps flatten into one job list sharded by
// o.Parallel.
func Fig11(o Opts) *Fig11Result {
	dur := o.scale(20*time.Millisecond, 150*time.Millisecond)
	payloads := o.pick([]int{64, 4096}, []int{64, 512, 1024, 4096, 16384})
	concs := o.pick([]int{1, 8}, []int{1, 2, 4, 8, 16, 32})
	type job struct {
		mode    dne.Mode
		payload int
		conc    int
		sweep   int // 0 = payload sweep, 1 = concurrency sweep
		slot    int
	}
	var jobs []job
	for _, mode := range []dne.Mode{dne.OffPath, dne.OnPath} {
		for _, pl := range payloads {
			jobs = append(jobs, job{mode: mode, payload: pl, conc: 1, sweep: 0, slot: -1})
		}
		for _, cc := range concs {
			jobs = append(jobs, job{mode: mode, payload: 1024, conc: cc, sweep: 1, slot: -1})
		}
	}
	res := &Fig11Result{
		PayloadSweep:     make([]Fig11Row, 0, 2*len(payloads)),
		ConcurrencySweep: make([]Fig11Row, 0, 2*len(concs)),
	}
	// Pre-assign each job its slot in the per-sweep result slice so parallel
	// workers write by index and the merge order matches the loop order.
	for i := range jobs {
		switch jobs[i].sweep {
		case 0:
			jobs[i].slot = len(res.PayloadSweep)
			res.PayloadSweep = append(res.PayloadSweep, Fig11Row{})
		case 1:
			jobs[i].slot = len(res.ConcurrencySweep)
			res.ConcurrencySweep = append(res.ConcurrencySweep, Fig11Row{})
		}
	}
	o.forEach(len(jobs), func(i int) {
		j := jobs[i]
		p := params.Default()
		rps, lat := runDNEEcho(p, o.Seed, j.mode, j.payload, j.conc, dur, nil)
		row := Fig11Row{Mode: fig11Mode(j.mode), Payload: j.payload, Concurrency: j.conc, RPS: rps, MeanLat: lat}
		if j.sweep == 0 {
			res.PayloadSweep[j.slot] = row
		} else {
			res.ConcurrencySweep[j.slot] = row
		}
	})
	return res
}

// GetConcurrency returns the concurrency-sweep row for (mode, conc).
func (r *Fig11Result) GetConcurrency(mode string, conc int) (Fig11Row, bool) {
	for _, row := range r.ConcurrencySweep {
		if row.Mode == mode && row.Concurrency == conc {
			return row, true
		}
	}
	return Fig11Row{}, false
}

// GetPayload returns the payload-sweep row for (mode, payload).
func (r *Fig11Result) GetPayload(mode string, payload int) (Fig11Row, bool) {
	for _, row := range r.PayloadSweep {
		if row.Mode == mode && row.Payload == payload {
			return row, true
		}
	}
	return Fig11Row{}, false
}

// RunFig11 adapts Fig11 to the registry.
func RunFig11(o Opts) []*Table {
	res := Fig11(o)
	t1 := &Table{
		Title:   "Fig. 11 (1) — off-path vs on-path: payload sweep (single connection)",
		Columns: []string{"mode", "payload", "RPS", "mean latency"},
	}
	for _, row := range res.PayloadSweep {
		t1.Rows = append(t1.Rows, []string{row.Mode, fmt.Sprintf("%dB", row.Payload), fRPS(row.RPS), fLat(row.MeanLat)})
	}
	t2 := &Table{
		Title:   "Fig. 11 (2) — off-path vs on-path: concurrency sweep (1KB payload)",
		Columns: []string{"mode", "connections", "RPS", "mean latency"},
		Note:    "the on-path SoC DMA engine queues under concurrency; off-path avoids it entirely",
	}
	for _, row := range res.ConcurrencySweep {
		t2.Rows = append(t2.Rows, []string{row.Mode, fmt.Sprintf("%d", row.Concurrency), fRPS(row.RPS), fLat(row.MeanLat)})
	}
	return []*Table{t1, t2}
}
