package experiments

import (
	"fmt"
	"time"

	"nadino/internal/dne"
	"nadino/internal/params"
)

// Fig11Row is one (mode, payload-or-concurrency) measurement.
type Fig11Row struct {
	Mode        string
	Payload     int
	Concurrency int
	RPS         float64
	MeanLat     time.Duration
}

// Fig11Result compares off-path (cross-processor shared memory) vs on-path
// (SoC DMA staging) DPU offloading (§4.1.1).
type Fig11Result struct {
	PayloadSweep     []Fig11Row // single connection, varying payload
	ConcurrencySweep []Fig11Row // 1KB payload, varying concurrency
}

func fig11Mode(m dne.Mode) string {
	if m == dne.OffPath {
		return "off-path"
	}
	return "on-path"
}

// Fig11 runs both sweeps.
func Fig11(o Opts) *Fig11Result {
	p := params.Default()
	dur := o.scale(20*time.Millisecond, 150*time.Millisecond)
	payloads := o.pick([]int{64, 4096}, []int{64, 512, 1024, 4096, 16384})
	concs := o.pick([]int{1, 8}, []int{1, 2, 4, 8, 16, 32})
	res := &Fig11Result{}
	for _, mode := range []dne.Mode{dne.OffPath, dne.OnPath} {
		for _, pl := range payloads {
			rps, lat := runDNEEcho(p, o.Seed, mode, pl, 1, dur, nil)
			res.PayloadSweep = append(res.PayloadSweep, Fig11Row{
				Mode: fig11Mode(mode), Payload: pl, Concurrency: 1, RPS: rps, MeanLat: lat,
			})
		}
		for _, cc := range concs {
			rps, lat := runDNEEcho(p, o.Seed, mode, 1024, cc, dur, nil)
			res.ConcurrencySweep = append(res.ConcurrencySweep, Fig11Row{
				Mode: fig11Mode(mode), Payload: 1024, Concurrency: cc, RPS: rps, MeanLat: lat,
			})
		}
	}
	return res
}

// GetConcurrency returns the concurrency-sweep row for (mode, conc).
func (r *Fig11Result) GetConcurrency(mode string, conc int) (Fig11Row, bool) {
	for _, row := range r.ConcurrencySweep {
		if row.Mode == mode && row.Concurrency == conc {
			return row, true
		}
	}
	return Fig11Row{}, false
}

// GetPayload returns the payload-sweep row for (mode, payload).
func (r *Fig11Result) GetPayload(mode string, payload int) (Fig11Row, bool) {
	for _, row := range r.PayloadSweep {
		if row.Mode == mode && row.Payload == payload {
			return row, true
		}
	}
	return Fig11Row{}, false
}

// RunFig11 adapts Fig11 to the registry.
func RunFig11(o Opts) []*Table {
	res := Fig11(o)
	t1 := &Table{
		Title:   "Fig. 11 (1) — off-path vs on-path: payload sweep (single connection)",
		Columns: []string{"mode", "payload", "RPS", "mean latency"},
	}
	for _, row := range res.PayloadSweep {
		t1.Rows = append(t1.Rows, []string{row.Mode, fmt.Sprintf("%dB", row.Payload), fRPS(row.RPS), fLat(row.MeanLat)})
	}
	t2 := &Table{
		Title:   "Fig. 11 (2) — off-path vs on-path: concurrency sweep (1KB payload)",
		Columns: []string{"mode", "connections", "RPS", "mean latency"},
		Note:    "the on-path SoC DMA engine queues under concurrency; off-path avoids it entirely",
	}
	for _, row := range res.ConcurrencySweep {
		t2.Rows = append(t2.Rows, []string{row.Mode, fmt.Sprintf("%d", row.Concurrency), fRPS(row.RPS), fLat(row.MeanLat)})
	}
	return []*Table{t1, t2}
}
