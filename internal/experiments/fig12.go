package experiments

import (
	"fmt"
	"time"

	"nadino/internal/fabric"
	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/rdma"
	"nadino/internal/sim"
)

// Fig12Variant names an RDMA-primitive data-plane design (Fig. 3).
type Fig12Variant string

// The compared designs (§4.1.2).
const (
	// TwoSided is NADINO's choice: receiver posts buffers, sender sends.
	TwoSided Fig12Variant = "two-sided"
	// OWRCBest is one-sided write into a dedicated RDMA-only pool with a
	// receiver-side copy that enjoys cache residency.
	OWRCBest Fig12Variant = "OWRC-Best"
	// OWRCWorst is the same with TLB-flushed, main-memory copies.
	OWRCWorst Fig12Variant = "OWRC-Worst"
	// OWDL is one-sided write into the shared pool guarded by distributed
	// locks (remote CAS) to avoid the receiver-oblivious data race.
	OWDL Fig12Variant = "OWDL"
)

// Fig12Variants lists the designs in display order.
var Fig12Variants = []Fig12Variant{TwoSided, OWRCBest, OWRCWorst, OWDL}

// Fig12Row is one (variant, payload) measurement.
type Fig12Row struct {
	Variant Fig12Variant
	Payload int
	RPS     float64
	MeanLat time.Duration
}

// Fig12Result holds the primitive-selection comparison.
type Fig12Result struct {
	Rows []Fig12Row
}

// runOneSidedEcho measures an echo pair built on one-sided writes, with
// the variant's coordination (receiver-side copies or distributed locks).
// One core per side, FaRM-style polling receivers.
func runOneSidedEcho(p *params.Params, seed int64, variant Fig12Variant, payload, clients int, dur time.Duration) (float64, time.Duration) {
	eng := sim.NewEngine(seed)
	defer eng.Stop()
	net := fabric.New(eng, p)
	ra := rdma.NewRNIC(eng, p, "nodeA", net)
	rb := rdma.NewRNIC(eng, p, "nodeB", net)
	poolA := mempool.NewPool("rdma-a", 16384, 1024, p.HugepageSize)
	poolB := mempool.NewPool("rdma-b", 16384, 1024, p.HugepageSize)
	cqA, cqB := rdma.NewCQ(eng), rdma.NewCQ(eng)
	qa, qb := rdma.Connect(ra, rb, "t", nil, nil, cqA, cqB)
	mrA := ra.RegisterMR(poolA)
	mrB := rb.RegisterMR(poolB)
	coreA := sim.NewProcessor(eng, "cliCore", p.HostCoreSpeed)
	coreB := sim.NewProcessor(eng, "srvCore", p.HostCoreSpeed)

	// Static landing slots, one per client per direction.
	slotB := make([]rdma.RemoteBuf, clients) // client -> server
	slotA := make([]rdma.RemoteBuf, clients) // server -> client
	for i := 0; i < clients; i++ {
		ba, _ := poolA.Get("slots")
		bb, _ := poolB.Get("slots")
		slotA[i] = rdma.RemoteBuf{MR: mrA, Buf: ba}
		slotB[i] = rdma.RemoteBuf{MR: mrB, Buf: bb}
		rb.SetWord(fmt.Sprintf("lock-b-%d", i), 0)
		ra.SetWord(fmt.Sprintf("lock-a-%d", i), 0)
	}

	copyCost := func(n int) time.Duration {
		switch variant {
		case OWRCBest:
			return p.MemcpyBase + params.Bytes(p.MemcpyPerByteCached, n)
		case OWRCWorst:
			return p.MemcpyBase + params.Bytes(p.MemcpyPerByteCold, n)
		default:
			return 0 // OWDL writes into the shared pool directly
		}
	}

	// casAcquire spins remote CAS until the lock is taken. Returns after
	// the successful swap's round trip.
	casAcquire := func(pr *sim.Proc, qp *rdma.QP, core *sim.Processor, key string) {
		for {
			got := sim.NewQueue[rdma.CASResult](eng, 1)
			core.Exec(pr, p.VerbsPostCost)
			qp.PostCAS(key, 0, 1, func(res rdma.CASResult) { got.TryPut(res) })
			if res := got.Get(pr); res.Swapped {
				return
			}
			pr.Sleep(time.Microsecond)
		}
	}

	respQ := make([]*sim.Queue[struct{}], clients)
	for i := range respQ {
		respQ[i] = sim.NewQueue[struct{}](eng, 1)
	}

	// Server: poll the landing region; for each arrival do the variant's
	// coordination and echo back with a one-sided write.
	eng.Spawn("server", func(pr *sim.Proc) {
		for {
			coreB.Exec(pr, p.OneSidedPollCost)
			landed := mrB.PollLanded()
			if len(landed) == 0 {
				pr.Sleep(p.OneSidedPollInterval)
				continue
			}
			for _, l := range landed {
				i := int(l.Desc.Seq)
				coreB.Exec(pr, copyCost(l.Bytes))
				if variant == OWDL {
					// Consume, then release the lock locally so the
					// client's next CAS can succeed.
					rb.SetWord(fmt.Sprintf("lock-b-%d", i), 0)
					// Acquire the client-side buffer lock before the
					// reply write.
					casAcquire(pr, qb, coreB, fmt.Sprintf("lock-a-%d", i))
				}
				coreB.Exec(pr, p.VerbsPostCost)
				qb.PostWrite(mempool.Descriptor{Tenant: "t", Len: l.Bytes, Seq: l.Desc.Seq, Buf: slotB[i].Buf}, slotA[i])
			}
		}
	})
	// Client-side poller: detect replies.
	eng.Spawn("cli-poller", func(pr *sim.Proc) {
		for {
			coreA.Exec(pr, p.OneSidedPollCost)
			landed := mrA.PollLanded()
			if len(landed) == 0 {
				pr.Sleep(p.OneSidedPollInterval)
				continue
			}
			for _, l := range landed {
				i := int(l.Desc.Seq)
				coreA.Exec(pr, copyCost(l.Bytes))
				if variant == OWDL {
					ra.SetWord(fmt.Sprintf("lock-a-%d", i), 0)
				}
				respQ[i].TryPut(struct{}{})
			}
		}
	})

	// Drain send-completion CQEs (bookkeeping only).
	for _, cq := range []*rdma.CQ{cqA, cqB} {
		cq := cq
		eng.Spawn("cq-drain", func(pr *sim.Proc) {
			for {
				cq.Wait(pr)
				cq.Poll(0)
			}
		})
	}

	var count uint64
	var rttSum time.Duration
	for i := 0; i < clients; i++ {
		i := i
		eng.Spawn(fmt.Sprintf("cli-%d", i), func(pr *sim.Proc) {
			for {
				start := pr.Now()
				if variant == OWDL {
					casAcquire(pr, qa, coreA, fmt.Sprintf("lock-b-%d", i))
				}
				coreA.Exec(pr, p.VerbsPostCost)
				qa.PostWrite(mempool.Descriptor{Tenant: "t", Len: payload, Seq: uint64(i), Buf: slotA[i].Buf}, slotB[i])
				respQ[i].Get(pr)
				count++
				rttSum += pr.Now() - start
			}
		})
	}
	eng.RunUntil(2 * time.Millisecond)
	base, baseRTT := count, rttSum
	start := eng.Now()
	eng.RunUntil(start + dur)
	n := count - base
	if n == 0 {
		return 0, 0
	}
	return float64(n) / (eng.Now() - start).Seconds(), (rttSum - baseRTT) / time.Duration(n)
}

// Fig12 runs the primitive comparison across payloads, sharding the
// (payload, variant) grid across o.Parallel workers.
func Fig12(o Opts) *Fig12Result {
	payloads := o.pick([]int{64, 4096}, []int{64, 512, 1024, 4096})
	dur := o.scale(20*time.Millisecond, 200*time.Millisecond)
	const clients = 4
	type job struct {
		variant Fig12Variant
		payload int
	}
	var jobs []job
	for _, pl := range payloads {
		for _, v := range Fig12Variants {
			jobs = append(jobs, job{variant: v, payload: pl})
		}
	}
	rows := make([]Fig12Row, len(jobs))
	o.forEach(len(jobs), func(i int) {
		j := jobs[i]
		p := params.Default()
		var rps float64
		var lat time.Duration
		if j.variant == TwoSided {
			rps, lat = runNativeEcho(p, o.Seed, p.HostCoreSpeed, j.payload, clients, dur, nil)
		} else {
			rps, lat = runOneSidedEcho(p, o.Seed, j.variant, j.payload, clients, dur)
		}
		rows[i] = Fig12Row{Variant: j.variant, Payload: j.payload, RPS: rps, MeanLat: lat}
	})
	return &Fig12Result{Rows: rows}
}

// Get returns the row for (variant, payload).
func (r *Fig12Result) Get(v Fig12Variant, payload int) (Fig12Row, bool) {
	for _, row := range r.Rows {
		if row.Variant == v && row.Payload == payload {
			return row, true
		}
	}
	return Fig12Row{}, false
}

// RunFig12 adapts Fig12 to the registry.
func RunFig12(o Opts) []*Table {
	res := Fig12(o)
	t := &Table{
		Title:   "Fig. 12 — RDMA primitive selection (echo pair, one core each)",
		Columns: []string{"variant", "payload", "RPS", "mean latency"},
		Note:    "two-sided avoids both the locks of OWDL and the copies of OWRC",
	}
	for _, row := range res.Rows {
		t.Rows = append(t.Rows, []string{string(row.Variant), fmt.Sprintf("%dB", row.Payload), fRPS(row.RPS), fLat(row.MeanLat)})
	}
	return []*Table{t}
}
