package experiments

import "testing"

// TestScaleSweepQuick checks the sweep's structural properties at toy
// sizes: every point quiesces with a closed ledger, event counts grow with
// cluster size, and the per-node load model keeps latency sane.
func TestScaleSweepQuick(t *testing.T) {
	o := Opts{Quick: true, Seed: 11}
	pts := ScaleSweep(o)
	if len(pts) != 3 {
		t.Fatalf("quick sweep has %d points, want 3", len(pts))
	}
	for i, p := range pts {
		if p.Issued == 0 || p.Completed != p.Issued {
			t.Fatalf("point %d: ledger open: issued %d completed %d", i, p.Issued, p.Completed)
		}
		// Every request is exactly two events (done + next issue), plus the
		// initial staggered issues; the engine must have fired at least that.
		if p.Events < 2*p.Issued {
			t.Fatalf("point %d: %d events < 2x issued %d", i, p.Events, p.Issued)
		}
		if p.MeanLat <= 0 || p.MaxLat < p.MeanLat {
			t.Fatalf("point %d: degenerate latency mean=%v max=%v", i, p.MeanLat, p.MaxLat)
		}
		if i > 0 {
			prev := pts[i-1]
			if p.Clients <= prev.Clients || p.Issued <= prev.Issued {
				t.Fatalf("point %d: sweep not growing: clients %d->%d issued %d->%d",
					i, prev.Clients, p.Clients, prev.Issued, p.Issued)
			}
		}
	}
}

// TestScaleSweepDeterministic runs the same point twice and requires
// identical results — the precondition for the sweep joining the
// parallel-determinism fence.
func TestScaleSweepDeterministic(t *testing.T) {
	o := Opts{Quick: true, Seed: 3}
	a, b := ScaleSweep(o), ScaleSweep(o)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d diverged between runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestScaleLookup pins the registry entry for cmd/nadino-bench -run scale.
func TestScaleLookup(t *testing.T) {
	e, ok := Lookup("scale")
	if !ok {
		t.Fatal("scale sweep not in the experiment registry")
	}
	tables := e.Run(Opts{Quick: true, Seed: 1})
	if len(tables) != 1 || len(tables[0].Rows) != 3 {
		t.Fatalf("scale tables malformed: %d tables", len(tables))
	}
}
