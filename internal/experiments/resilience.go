package experiments

import (
	"fmt"
	"time"

	"nadino/internal/chaos"
	"nadino/internal/dne"
	"nadino/internal/fabric"
	"nadino/internal/mempool"
	"nadino/internal/metrics"
	"nadino/internal/params"
	"nadino/internal/sim"
	"nadino/internal/telemetry"
)

// This file holds the resilience experiment family (res-storm, res-recovery,
// res-tenant): the paper's recovery machinery — RC retransmit/retry, shadow
// QP repair, DNE descriptor re-queue, DWRR isolation — measured under a
// declarative chaos.Schedule instead of hand-rolled outages. Every run
// finishes with a buffer-conservation check: after the faults clear and the
// load drains, each tenant pool must hold exactly its posted RQ ring.

// rigInjector builds a chaos injector over a dneRig with the standard
// targets registered: per node the SoC DMA ("dma@<node>"), the DPU ARM
// cores ("cores@<node>") and all conn pools ("qp@<node>"); per tenant the
// tenant's own pools on each node ("qp@<node>/<tenant>").
func rigInjector(r *dneRig, seed int64, tenants []string) *chaos.Injector {
	in := chaos.NewInjector(r.eng, r.net, seed)
	for _, side := range []struct {
		node fabric.NodeID
		e    *dne.Engine
	}{{"nodeA", r.ea}, {"nodeB", r.eb}} {
		side := side
		if side.node == "nodeA" {
			in.RegisterStaller("dma@nodeA", r.dpuA.SoCDMA())
			in.RegisterCores("cores@nodeA", r.dpuA.Cores()...)
		} else {
			in.RegisterStaller("dma@nodeB", r.dpuB.SoCDMA())
			in.RegisterCores("cores@nodeB", r.dpuB.Cores()...)
		}
		in.RegisterQPs("qp@"+string(side.node), func() []chaos.QPErrorTarget {
			pools := side.e.ConnPools()
			ts := make([]chaos.QPErrorTarget, len(pools))
			for i, cp := range pools {
				ts[i] = cp
			}
			return ts
		})
		peer := fabric.NodeID("nodeB")
		if side.node == "nodeB" {
			peer = "nodeA"
		}
		for _, tn := range tenants {
			tn := tn
			in.RegisterQPs(fmt.Sprintf("qp@%s/%s", side.node, tn), func() []chaos.QPErrorTarget {
				return []chaos.QPErrorTarget{side.e.ConnPool(peer, tn)}
			})
		}
	}
	return in
}

// sampleRate attaches a completion-rate sampler (window-sized Ticker
// starting at QPSetupTime) for each stat in stats, walking the slice — not
// a map — so float sums stay deterministic.
func sampleRate(r *dneRig, names []string, stats map[string]*echoClientStats, window time.Duration) map[string]*metrics.Series {
	series := make(map[string]*metrics.Series, len(names))
	for _, n := range names {
		series[n] = metrics.NewSeries(n)
	}
	last := make(map[string]uint64, len(names))
	r.eng.At(r.p.QPSetupTime, func() {
		for _, n := range names {
			last[n] = stats[n].count
		}
		r.eng.Ticker(window, func(now time.Duration) {
			for _, n := range names {
				s := stats[n]
				series[n].Add(now, float64(s.count-last[n])/window.Seconds())
				last[n] = s.count
			}
		})
	})
	return series
}

// leakCheck reports per-node leaked buffers for a tenant: pool in-use minus
// the posted RQ ring (which legitimately stays allocated). Zero means every
// in-flight buffer was reclaimed after recovery.
func leakCheck(r *dneRig, tenant string) (leakA, leakB int) {
	leakA = r.pools[tenant][0].InUse() - r.ea.SRQ(tenant).Posted()
	leakB = r.pools[tenant][1].InUse() - r.eb.SRQ(tenant).Posted()
	return leakA, leakB
}

// drainDur is how long each resilience run keeps the engines alive after
// the load stops: long enough for retransmit budgets to resolve, keeper
// repairs (one QPSetupTime each) to finish, and every buffer to come home.
const drainDur = 150 * time.Millisecond

// ---------------------------------------------------------------- res-storm

// StormResult is one res-storm sweep point.
type StormResult struct {
	Faulted bool

	Baseline float64 // RPS before the storm
	Storm    float64 // RPS during the storm window
	Recovery float64 // RPS at end of run, after faults clear
	Ratio    float64 // Recovery / Baseline

	Drops        uint64 // fabric messages lost to outages
	SendErrors   uint64 // engine-visible transport errors
	Retried      uint64 // descriptors re-queued by the engines
	RetryDrops   uint64 // descriptors that exhausted the retry budget
	Repairs      uint64 // QP re-handshakes
	Applied      int    // chaos events applied
	LeakA, LeakB int    // buffers unaccounted for after drain (want 0)

	Series *metrics.Series
	Total  time.Duration

	// Violations holds the SLO watchdog verdict for this point: the
	// goodput-recovery contract evaluated declaratively over the sampled
	// series (empty = all rules held).
	Violations []telemetry.Violation
	// Telem is the run's metric scraper (nil unless Opts.Telemetry).
	Telem *telemetry.Scraper
	// RTT is the run's echo RTT distribution (nil unless Opts.Telemetry);
	// sweep points merge exactly via metrics.Hist.Merge.
	RTT *metrics.Hist
}

// runResStorm drives a single-tenant echo workload through a seeded storm
// of directed-link outages, loss and jitter windows, forced QP errors, a
// SoC DMA stall and a degraded-cores window. faulted=false is the control.
func runResStorm(o Opts, faulted bool) *StormResult {
	const tenant = "tenant1"
	p := params.Default()
	r := newDNERig(p, o.Seed, dne.OffPath, dne.SchedFCFS, []tenantSpec{{tenant, 1}})
	defer r.eng.Stop()

	total := o.scale(240*time.Millisecond, 720*time.Millisecond)
	base := p.QPSetupTime
	stormLo, stormHi := total/4, 3*total/4

	cliPort := r.ea.AttachFunction("cli-"+tenant, tenant)
	srvPort := r.eb.AttachFunction("srv-"+tenant, tenant)
	r.spawnEchoServer(tenant, srvPort)
	active := func(now time.Duration) bool { return now < base+total }
	stats := map[string]*echoClientStats{
		tenant: r.spawnEchoClients(tenant, cliPort, 16, 1024, active),
	}
	series := sampleRate(r, []string{tenant}, stats, total/48)
	sc := rigTelemetry(o, r, []string{tenant}, stats, total/48)

	in := rigInjector(r, o.Seed, []string{tenant})
	if faulted {
		// Seeded link storm across both directions. Outages are capped at
		// 2ms — well inside the ~3.5ms transport retry horizon — so faults
		// degrade goodput without wedging descriptors past the retry budget.
		events := o.pick([]int{24}, []int{64})[0]
		sched := in.LinkStorm([]fabric.NodeID{"nodeA", "nodeB"},
			base+stormLo, stormHi-stormLo-2*time.Millisecond, events, 2*time.Millisecond)
		// Plus the non-network failure modes, mid-storm.
		mid := base + total/2
		sched = append(sched,
			chaos.Event{At: base + stormLo + total/16, Fault: chaos.QPError{Target: "qp@nodeA", Count: 2}},
			chaos.Event{At: mid, Fault: chaos.QPError{Target: "qp@nodeB", Count: 2}},
			chaos.Event{At: mid, For: time.Millisecond, Fault: chaos.DMAStall{Target: "dma@nodeA"}},
			chaos.Event{At: mid, For: total / 16, Fault: chaos.SlowCores{Target: "cores@nodeB", Factor: 0.6}},
		)
		in.Install(sched)
	}

	r.eng.RunUntil(base + total + drainDur)

	res := &StormResult{
		Faulted: faulted,
		Series:  series[tenant],
		Total:   total,
		Applied: in.Applied(),
		Drops:   r.net.Drops(),
	}
	s := series[tenant]
	res.Baseline = s.MeanBetween(base+total/24, base+stormLo)
	res.Storm = s.MeanBetween(base+stormLo, base+stormHi)
	res.Recovery = s.MeanBetween(base+7*total/8, base+total)
	if res.Baseline > 0 {
		res.Ratio = res.Recovery / res.Baseline
	}
	// The recovery contract, stated declaratively: after the storm window
	// closes, goodput must make a sustained (2-window) return to within 5%
	// of its own pre-storm baseline inside the remaining quarter of the
	// run. This SLO rule replaces the hand-rolled ratio assertion the
	// resilience test used to carry.
	wd := telemetry.NewWatchdog()
	wd.AddRecovery(telemetry.RecoveryRule{
		Name:         "goodput-recovers",
		Series:       tenant,
		BaselineFrom: base + total/24,
		BaselineTo:   base + stormLo,
		ClearAt:      base + stormHi,
		Within:       total / 4,
		Tolerance:    0.05,
		Sustain:      2,
	})
	res.Violations = wd.Evaluate(func(key string) *metrics.Series { return series[key] })
	res.Telem = sc
	res.RTT = stats[tenant].rtt.Snapshot()
	_, _, _, _, serrA := r.ea.Stats()
	_, _, _, _, serrB := r.eb.Stats()
	res.SendErrors = serrA + serrB
	ra, da := r.ea.RetryStats()
	rb, db := r.eb.RetryStats()
	res.Retried, res.RetryDrops = ra+rb, da+db
	for _, e := range []*dne.Engine{r.ea, r.eb} {
		for _, cp := range e.ConnPools() {
			res.Repairs += cp.Repairs()
		}
	}
	res.LeakA, res.LeakB = leakCheck(r, tenant)
	return res
}

// ResStorm runs the control and storm points (independent engines, shardable).
func ResStorm(o Opts) []*StormResult {
	out := make([]*StormResult, 2)
	o.forEach(2, func(i int) {
		out[i] = runResStorm(o, i == 1)
	})
	return out
}

// RunResStorm adapts ResStorm to the registry.
func RunResStorm(o Opts) []*Table {
	res := ResStorm(o)
	t := &Table{
		Title:   "res-storm — goodput under a seeded fault storm (16 clients, 1 KB echo)",
		Columns: []string{"run", "baseline", "storm", "recovered", "rec/base", "SLO", "drops", "retries", "repairs", "leaks", "spark"},
	}
	names := make([]string, len(res))
	scs := make([]*telemetry.Scraper, len(res))
	merged := metrics.NewHist()
	for i, r := range res {
		name := "control"
		if r.Faulted {
			name = "storm"
		}
		names[i] = "res-storm/" + name
		scs[i] = r.Telem
		merged.Merge(r.RTT)
		slo := "ok"
		if len(r.Violations) > 0 {
			slo = fmt.Sprintf("%d violated", len(r.Violations))
		}
		t.Rows = append(t.Rows, []string{
			name,
			fRPS(r.Baseline), fRPS(r.Storm), fRPS(r.Recovery), fRatio(r.Ratio), slo,
			fmt.Sprintf("%d", r.Drops),
			fmt.Sprintf("%d", r.Retried),
			fmt.Sprintf("%d", r.Repairs),
			fmt.Sprintf("%d", r.LeakA+r.LeakB),
			r.Series.Sparkline(24),
		})
	}
	t.Note = "storm window spans the middle half of the run; SLO = watchdog verdict on the declarative goodput-recovery rule (sustained return to within 5% of baseline inside the final quarter), with zero leaked buffers"
	if merged.Count() > 0 {
		t.Note += fmt.Sprintf("; echo RTT merged across runs: p50 %s p99 %s (n=%d)",
			fLat(merged.P50()), fLat(merged.P99()), merged.Count())
	}
	sinkScrapers(o, names, scs)
	return []*Table{t}
}

// ------------------------------------------------------------- res-recovery

// recoveryConfig is one partition scenario.
type recoveryConfig struct {
	label  string
	dur    time.Duration
	oneWay bool
}

func recoveryConfigs() []recoveryConfig {
	return []recoveryConfig{
		{label: "1ms sym", dur: time.Millisecond},
		{label: "4ms sym", dur: 4 * time.Millisecond},
		{label: "4ms one-way", dur: 4 * time.Millisecond, oneWay: true},
	}
}

// RecoveryResult is one res-recovery sweep point.
type RecoveryResult struct {
	Label        string
	PartitionDur time.Duration
	OneWay       bool

	Baseline     float64       // pre-fault RPS
	Recovered    bool          // detector found a sustained return to baseline
	RecoveryTime time.Duration // fault-clear -> sustained recovery
	PostHeal     float64       // steady RPS after healing
	Drops        uint64
	Repairs      uint64
	LeakA, LeakB int

	// Telem is the run's metric scraper (nil unless Opts.Telemetry).
	Telem *telemetry.Scraper
}

// runResRecovery partitions the two nodes mid-run and measures, with
// metrics.RecoveryDetector, how long goodput takes to return to within 5%
// of the pre-fault baseline once the partition heals.
func runResRecovery(o Opts, cfg recoveryConfig) *RecoveryResult {
	const tenant = "tenant1"
	p := params.Default()
	r := newDNERig(p, o.Seed, dne.OffPath, dne.SchedFCFS, []tenantSpec{{tenant, 1}})
	defer r.eng.Stop()

	total := o.scale(160*time.Millisecond, 400*time.Millisecond)
	base := p.QPSetupTime
	faultAt := base + total/3
	clearAt := faultAt + cfg.dur

	cliPort := r.ea.AttachFunction("cli-"+tenant, tenant)
	srvPort := r.eb.AttachFunction("srv-"+tenant, tenant)
	r.spawnEchoServer(tenant, srvPort)
	active := func(now time.Duration) bool { return now < base+total }
	stats := map[string]*echoClientStats{
		tenant: r.spawnEchoClients(tenant, cliPort, 16, 1024, active),
	}
	series := sampleRate(r, []string{tenant}, stats, total/96)
	sc := rigTelemetry(o, r, []string{tenant}, stats, total/96)

	in := rigInjector(r, o.Seed, []string{tenant})
	in.Install(chaos.Schedule{{
		At: faultAt, For: cfg.dur,
		Fault: chaos.Partition{A: []fabric.NodeID{"nodeA"}, B: []fabric.NodeID{"nodeB"}, OneWay: cfg.oneWay},
	}})

	r.eng.RunUntil(base + total + drainDur)

	s := series[tenant]
	res := &RecoveryResult{
		Label:        cfg.label,
		PartitionDur: cfg.dur,
		OneWay:       cfg.oneWay,
		Baseline:     s.MeanBetween(base+total/24, faultAt),
		PostHeal:     s.MeanBetween(clearAt+total/6, base+total),
		Drops:        r.net.Drops(),
	}
	det := metrics.RecoveryDetector{Baseline: res.Baseline, Tolerance: 0.05, Sustain: 2}
	res.RecoveryTime, res.Recovered = det.Detect(s, clearAt)
	for _, e := range []*dne.Engine{r.ea, r.eb} {
		for _, cp := range e.ConnPools() {
			res.Repairs += cp.Repairs()
		}
	}
	res.LeakA, res.LeakB = leakCheck(r, tenant)
	res.Telem = sc
	return res
}

// ResRecovery sweeps the partition scenarios (independent engines).
func ResRecovery(o Opts) []*RecoveryResult {
	cfgs := recoveryConfigs()
	out := make([]*RecoveryResult, len(cfgs))
	o.forEach(len(cfgs), func(i int) {
		out[i] = runResRecovery(o, cfgs[i])
	})
	return out
}

// RunResRecovery adapts ResRecovery to the registry.
func RunResRecovery(o Opts) []*Table {
	res := ResRecovery(o)
	t := &Table{
		Title:   "res-recovery — time to recover goodput after a partition heals",
		Columns: []string{"partition", "baseline", "recovery time", "post-heal", "drops", "repairs", "leaks"},
	}
	names := make([]string, len(res))
	scs := make([]*telemetry.Scraper, len(res))
	for i, r := range res {
		names[i] = "res-recovery/" + r.Label
		scs[i] = r.Telem
		rec := "never"
		if r.Recovered {
			rec = fLat(r.RecoveryTime)
		}
		t.Rows = append(t.Rows, []string{
			r.Label, fRPS(r.Baseline), rec, fRPS(r.PostHeal),
			fmt.Sprintf("%d", r.Drops),
			fmt.Sprintf("%d", r.Repairs),
			fmt.Sprintf("%d", r.LeakA+r.LeakB),
		})
	}
	sinkScrapers(o, names, scs)
	t.Note = "recovery = first sustained (2 windows) return to within 5% of the pre-fault baseline; errored QPs repair in the background (one QPSetupTime each) while surviving QPs carry traffic"
	return []*Table{t}
}

// --------------------------------------------------------------- res-tenant

// TenantIsolationResult is one res-tenant sweep point (one scheduler).
type TenantIsolationResult struct {
	Sched dne.SchedulerKind

	HealthyPre   float64 // healthy tenant RPS before the co-tenant storm
	HealthyStorm float64 // healthy tenant RPS while the co-tenant is stormed
	HealthyPost  float64
	NoisyPre     float64
	NoisyStorm   float64
	// Retention is HealthyStorm / HealthyPre: 1.0 means the co-tenant's
	// fault storm did not touch the healthy tenant's share.
	Retention float64

	Repairs                    uint64
	LeakHealthyA, LeakHealthyB int
	LeakNoisyA, LeakNoisyB     int
	Total                      time.Duration

	Healthy, Noisy *metrics.Series

	// Telem is the run's metric scraper (nil unless Opts.Telemetry).
	Telem *telemetry.Scraper
}

// runResTenant runs a healthy closed-loop tenant (weight 3) against a noisy
// open-loop co-tenant (weight 1) on a capped engine, then storms the noisy
// tenant's QPs: every flushed send re-enters the engine's retry path, so a
// scheduler without isolation lets the retry amplification crowd out the
// healthy tenant.
func runResTenant(o Opts, sched dne.SchedulerKind) *TenantIsolationResult {
	const healthy, noisy = "healthy", "noisy"
	p := params.Default()
	// Cap the engine (~110K RPS, as in Fig. 15) so contention is at the DNE.
	p.DNEExtraPerMsg = 4600 * time.Nanosecond
	r := newDNERig(p, o.Seed, dne.OffPath, sched,
		[]tenantSpec{{healthy, 3}, {noisy, 1}})
	defer r.eng.Stop()

	total := o.scale(180*time.Millisecond, 600*time.Millisecond)
	base := p.QPSetupTime
	stormLo, stormHi := base+total/3, base+2*total/3

	names := []string{healthy, noisy}
	stats := make(map[string]*echoClientStats, 2)
	for _, tn := range names {
		cliPort := r.ea.AttachFunction("cli-"+tn, tn)
		srvPort := r.eb.AttachFunction("srv-"+tn, tn)
		r.spawnEchoServer(tn, srvPort)
		active := func(now time.Duration) bool { return now < base+total }
		if tn == healthy {
			stats[tn] = r.spawnEchoClients(tn, cliPort, 32, 1024, active)
		} else {
			stats[tn] = r.spawnOpenLoopSender(tn, cliPort, 1024, 15*time.Microsecond, active)
		}
	}
	series := sampleRate(r, names, stats, total/48)
	sc := rigTelemetry(o, r, names, stats, total/48)

	in := rigInjector(r, o.Seed, names)
	// Fault storm on the noisy tenant only: error its entire conn pools on
	// both sides every 2ms for the middle third of the run. Repairs take a
	// QPSetupTime each, so the pool is error-flushing for the whole window.
	var sched2 chaos.Schedule
	for at := stormLo; at < stormHi; at += 2 * time.Millisecond {
		sched2 = append(sched2,
			chaos.Event{At: at, Fault: chaos.QPError{Target: "qp@nodeA/" + noisy}},
			chaos.Event{At: at, Fault: chaos.QPError{Target: "qp@nodeB/" + noisy}},
		)
	}
	in.Install(sched2)

	r.eng.RunUntil(base + total + drainDur)

	res := &TenantIsolationResult{
		Sched:   sched,
		Total:   total,
		Healthy: series[healthy],
		Noisy:   series[noisy],
	}
	res.HealthyPre = series[healthy].MeanBetween(base+total/24, stormLo)
	res.HealthyStorm = series[healthy].MeanBetween(stormLo, stormHi)
	res.HealthyPost = series[healthy].MeanBetween(stormHi+total/12, base+total)
	res.NoisyPre = series[noisy].MeanBetween(base+total/24, stormLo)
	res.NoisyStorm = series[noisy].MeanBetween(stormLo, stormHi)
	if res.HealthyPre > 0 {
		res.Retention = res.HealthyStorm / res.HealthyPre
	}
	for _, e := range []*dne.Engine{r.ea, r.eb} {
		for _, cp := range e.ConnPools() {
			res.Repairs += cp.Repairs()
		}
	}
	res.LeakHealthyA, res.LeakHealthyB = leakCheck(r, healthy)
	res.LeakNoisyA, res.LeakNoisyB = leakCheck(r, noisy)
	res.Telem = sc
	return res
}

// ResTenant sweeps FCFS vs DWRR (independent engines).
func ResTenant(o Opts) []*TenantIsolationResult {
	scheds := []dne.SchedulerKind{dne.SchedFCFS, dne.SchedDWRR}
	out := make([]*TenantIsolationResult, len(scheds))
	o.forEach(len(scheds), func(i int) {
		out[i] = runResTenant(o, scheds[i])
	})
	return out
}

// RunResTenant adapts ResTenant to the registry.
func RunResTenant(o Opts) []*Table {
	res := ResTenant(o)
	t := &Table{
		Title:   "res-tenant — healthy tenant (w=3) vs fault-stormed co-tenant (w=1)",
		Columns: []string{"sched", "healthy pre", "healthy storm", "retention", "healthy post", "noisy pre", "noisy storm", "repairs", "leaks", "healthy spark"},
	}
	names := make([]string, len(res))
	scs := make([]*telemetry.Scraper, len(res))
	for i, r := range res {
		name := "FCFS"
		if r.Sched == dne.SchedDWRR {
			name = "DWRR"
		}
		names[i] = "res-tenant/" + name
		scs[i] = r.Telem
		t.Rows = append(t.Rows, []string{
			name,
			fRPS(r.HealthyPre), fRPS(r.HealthyStorm), fRatio(r.Retention), fRPS(r.HealthyPost),
			fRPS(r.NoisyPre), fRPS(r.NoisyStorm),
			fmt.Sprintf("%d", r.Repairs),
			fmt.Sprintf("%d", r.LeakHealthyA+r.LeakHealthyB+r.LeakNoisyA+r.LeakNoisyB),
			r.Healthy.Sparkline(24),
		})
	}
	sinkScrapers(o, names, scs)
	t.Note = "under DWRR the healthy tenant keeps >=90% of its pre-storm rate while the co-tenant's QPs are error-flushed; FCFS lets the retry amplification bleed through"
	return []*Table{t}
}

// spawnOpenLoopSender drives tenant with a fixed-period open-loop request
// stream (no waiting for responses) — the aggressive co-tenant in
// res-tenant. A drain proc recycles responses; stats.count counts them.
func (r *dneRig) spawnOpenLoopSender(tenant string, port *dne.FnPort, payload int, period time.Duration, active func(now time.Duration) bool) *echoClientStats {
	core := sim.NewProcessor(r.eng, "cli-core-"+tenant, r.p.HostCoreSpeed)
	pool := r.pools[tenant][0]
	cli := mempool.Owner("cli-" + tenant)
	stats := &echoClientStats{}
	r.eng.Spawn("cli-drain-"+tenant, func(pr *sim.Proc) {
		for {
			d := port.Recv(pr, core)
			stats.count++
			stats.rtt.Observe(pr.Now() - d.Stamp)
			if err := pool.Put(d.Buf, cli); err != nil {
				panic(err)
			}
		}
	})
	var seq uint64
	r.eng.Spawn("cli-open-"+tenant, func(pr *sim.Proc) {
		r.waitReady(pr)
		for {
			if active != nil && !active(pr.Now()) {
				pr.Sleep(500 * time.Microsecond)
				continue
			}
			buf, err := pool.Get(cli)
			if err != nil {
				// Pool exhausted (responses stuck behind the storm): back
				// off instead of spinning.
				pr.Sleep(8 * period)
				continue
			}
			seq++
			d := mempool.Descriptor{
				Tenant: tenant, Buf: buf, Len: payload,
				Src: "cli-" + tenant, Dst: "srv-" + tenant, Seq: seq, Stamp: pr.Now(),
			}
			if err := port.Send(pr, core, d); err != nil {
				panic(err)
			}
			pr.Sleep(period)
		}
	})
	return stats
}

// Resilience returns the resilience experiment registry.
func Resilience() []Experiment {
	return []Experiment{
		{ID: "res-storm", Title: "Resilience — goodput under a seeded fault storm", Run: RunResStorm},
		{ID: "res-recovery", Title: "Resilience — recovery time after a partition heals", Run: RunResRecovery},
		{ID: "res-tenant", Title: "Resilience — tenant isolation under a faulty co-tenant", Run: RunResTenant},
	}
}
