package experiments

import (
	"fmt"
	"time"

	"nadino/internal/dpu"
	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/sim"
)

// Fig09Row is one (channel, functions) measurement.
type Fig09Row struct {
	Channel   string
	Functions int
	RTT       time.Duration
	Rate      float64 // aggregate descriptor exchanges/sec
}

// Fig09Result compares host<->DPU descriptor channels (§3.5.4).
type Fig09Result struct {
	Rows []Fig09Row
}

// runComch drives n host functions issuing back-to-back 16 B descriptor
// echoes against a single-core DNE-like consumer on the DPU (§3.5.4's
// setup), returning mean RTT and aggregate rate.
func runComch(p *params.Params, seed int64, mode dpu.ChannelMode, n int, dur time.Duration) (time.Duration, float64) {
	eng := sim.NewEngine(seed)
	defer eng.Stop()
	work := sim.NewSignal(eng)
	dpuCore := sim.NewProcessor(eng, "dne-core", p.DPUNetSpeed)
	eps := make([]*dpu.Endpoint, n)
	for i := range eps {
		eps[i] = dpu.NewEndpoint(eng, p, mode, i, fmt.Sprintf("fn%d", i), "t", work)
	}
	// Single-core engine: busy-poll all endpoints, echo descriptors.
	eng.Spawn("dne", func(pr *sim.Proc) {
		for {
			did := false
			for _, ep := range eps {
				for {
					d, ok := ep.TryRecvFromHost()
					if !ok {
						break
					}
					dpuCore.Exec(pr, ep.DNERecvCost(n)+500*time.Nanosecond)
					ep.SendToHost(d)
					did = true
				}
			}
			if !did {
				work.Wait(pr)
			}
		}
	})
	var count uint64
	var rttSum time.Duration
	for i := 0; i < n; i++ {
		ep := eps[i]
		// Comch-P pins one host core per function; the others share
		// event-driven cores (modeled per function for simplicity).
		hostCore := sim.NewProcessor(eng, fmt.Sprintf("host%d", i), p.HostCoreSpeed)
		eng.Spawn(fmt.Sprintf("fn%d", i), func(pr *sim.Proc) {
			for {
				start := pr.Now()
				hostCore.Exec(pr, ep.SendCost())
				ep.SendToDNE(mempool.Descriptor{Tenant: "t"})
				_ = ep.RecvOnHost(pr)
				if c := ep.HostWakeupCost(); c > 0 {
					hostCore.Exec(pr, c)
				}
				count++
				rttSum += pr.Now() - start
			}
		})
	}
	eng.RunUntil(time.Millisecond) // warmup
	base, baseRTT := count, rttSum
	start := eng.Now()
	eng.RunUntil(start + dur)
	got := count - base
	if got == 0 {
		return 0, 0
	}
	return (rttSum - baseRTT) / time.Duration(got), float64(got) / (eng.Now() - start).Seconds()
}

// Fig09Channels lists the compared channel variants.
var Fig09Channels = []dpu.ChannelMode{dpu.ChannelTCP, dpu.ComchE, dpu.ComchP}

// Fig09 runs the channel comparison, sharding the (channel, functions) grid
// across o.Parallel workers.
func Fig09(o Opts) *Fig09Result {
	counts := o.pick([]int{1, 6, 8}, []int{1, 2, 4, 6, 8, 10})
	dur := o.scale(10*time.Millisecond, 100*time.Millisecond)
	type job struct {
		mode dpu.ChannelMode
		n    int
	}
	var jobs []job
	for _, mode := range Fig09Channels {
		for _, n := range counts {
			jobs = append(jobs, job{mode: mode, n: n})
		}
	}
	rows := make([]Fig09Row, len(jobs))
	o.forEach(len(jobs), func(i int) {
		j := jobs[i]
		p := params.Default()
		rtt, rate := runComch(p, o.Seed, j.mode, j.n, dur)
		rows[i] = Fig09Row{Channel: j.mode.String(), Functions: j.n, RTT: rtt, Rate: rate}
	})
	return &Fig09Result{Rows: rows}
}

// Get returns the row for (channel, functions).
func (r *Fig09Result) Get(channel string, n int) (Fig09Row, bool) {
	for _, row := range r.Rows {
		if row.Channel == channel && row.Functions == n {
			return row, true
		}
	}
	return Fig09Row{}, false
}

// RunFig09 adapts Fig09 to the registry.
func RunFig09(o Opts) []*Table {
	res := Fig09(o)
	t := &Table{
		Title:   "Fig. 9 — DPU<->host descriptor channels (16B echoes, single-core DNE)",
		Columns: []string{"channel", "functions", "round trip", "rate"},
		Note:    "Comch-P is fastest but collapses beyond ~6 functions; Comch-E is stable (NADINO's choice)",
	}
	for _, row := range res.Rows {
		t.Rows = append(t.Rows, []string{row.Channel, fmt.Sprintf("%d", row.Functions), fLat(row.RTT), fRPS(row.Rate)})
	}
	return []*Table{t}
}
