package experiments

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkScaleSweep measures the event core at cluster scale: each run
// drains one full sweep point (10k clients per node, 50 ms window), so
// ns/op is the wall-clock for the whole point and the events/sec metric is
// the engine's real throughput at that size. cmd/benchjson archives both
// into BENCH_sim.json.
func BenchmarkScaleSweep(b *testing.B) {
	for _, nodes := range []int{10, 25, 50, 100} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			o := Opts{Seed: 1}
			var events uint64
			var elapsed time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				pt := runScalePoint(o, nodes, 10000, 50*time.Millisecond)
				elapsed += time.Since(start)
				events += pt.Events
			}
			b.StopTimer()
			if elapsed > 0 {
				b.ReportMetric(float64(events)/elapsed.Seconds(), "events/sec")
			}
		})
	}
}
