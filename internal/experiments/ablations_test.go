package experiments

import (
	"testing"
	"time"
)

func TestAblConnPool(t *testing.T) {
	res := AblConnPool(quick)
	if res.PooledLat <= 0 || res.PerReqLat <= 0 {
		t.Fatal("missing measurements")
	}
	// The RC handshake is tens of milliseconds; pooled echoes are tens of
	// microseconds — pooling must win by orders of magnitude.
	if res.SpeedupLat < 100 {
		t.Fatalf("pooling speedup = %.0fx, want >> 100x", res.SpeedupLat)
	}
	if res.PerReqLat < 20*time.Millisecond {
		t.Fatalf("per-request latency %v below one QP handshake", res.PerReqLat)
	}
}

func TestAblIsolation(t *testing.T) {
	res := AblIsolation(quick)
	if res.BaselineLat <= 0 || res.ManagedLat <= 0 || res.RogueLat <= 0 {
		t.Fatal("missing measurements")
	}
	// Direct (VF-style) rogue access thrashes the QP cache and hurts the
	// victim; the DNE's active-QP cap keeps the victim near baseline.
	if res.RogueLat <= res.ManagedLat {
		t.Fatalf("uncapped rogue (%v) not worse than managed rogue (%v)", res.RogueLat, res.ManagedLat)
	}
	managedOverhead := float64(res.ManagedLat) / float64(res.BaselineLat)
	rogueOverhead := float64(res.RogueLat) / float64(res.BaselineLat)
	if managedOverhead > 1.5 {
		t.Errorf("managed rogue inflates victim RTT %.2fx, want near baseline", managedOverhead)
	}
	if rogueOverhead < 1.2 {
		t.Errorf("uncapped rogue inflates victim RTT only %.2fx, want visible damage", rogueOverhead)
	}
}

func TestAblReplenish(t *testing.T) {
	rows := AblReplenish(quick)
	if len(rows) < 3 {
		t.Fatal("missing rows")
	}
	fast := rows[0]
	slow := rows[len(rows)-1]
	if slow.RNR <= fast.RNR {
		t.Fatalf("lazy replenishment (%v: %d RNR) not worse than eager (%v: %d RNR)",
			slow.Period, slow.RNR, fast.Period, fast.RNR)
	}
	if slow.RPS >= fast.RPS {
		t.Fatalf("lazy replenishment RPS %.0f not below eager %.0f", slow.RPS, fast.RPS)
	}
}

func TestAblQuantum(t *testing.T) {
	rows := AblQuantum(quick)
	if len(rows) < 3 {
		t.Fatal("missing rows")
	}
	// Moderate quanta hold fairness tightly.
	for _, row := range rows {
		if row.Quantum <= 16384 && row.MaxShareErr > 0.25 {
			t.Errorf("quantum %dB share error %.1f%%, want tight fairness",
				row.Quantum, 100*row.MaxShareErr)
		}
		if row.Aggregate <= 0 {
			t.Errorf("quantum %dB produced no throughput", row.Quantum)
		}
	}
}

func TestAblHugepage(t *testing.T) {
	res := AblHugepage(quick)
	if res.SmallPages <= res.HugePages {
		t.Fatal("4K pages should pin far more MTT entries")
	}
	if res.SmallRPS >= res.HugeRPS {
		t.Fatalf("4K-page RPS %.0f not below hugepage RPS %.0f", res.SmallRPS, res.HugeRPS)
	}
	if res.SmallLat <= res.HugeLat {
		t.Fatalf("4K-page latency %v not above hugepage latency %v", res.SmallLat, res.HugeLat)
	}
}

func TestAblKeepWarm(t *testing.T) {
	rows := AblKeepWarm(quick)
	if len(rows) != 3 {
		t.Fatal("missing rows")
	}
	always, generous := rows[0], rows[2]
	if always.ColdStarts <= generous.ColdStarts {
		t.Fatalf("always-cold (%d) not above generous keep-warm (%d)",
			always.ColdStarts, generous.ColdStarts)
	}
	if always.MeanLat <= generous.MeanLat*2 {
		t.Fatalf("cold-start latency %v not well above warm latency %v",
			always.MeanLat, generous.MeanLat)
	}
}

func TestAblFanout(t *testing.T) {
	res := AblFanout(quick)
	if res.Speedup < 2.0 || res.Speedup > 3.5 {
		t.Fatalf("fan-out speedup = %.2fx, want ~3x", res.Speedup)
	}
}

func TestAblCrossTenant(t *testing.T) {
	res := AblCrossTenant(quick)
	if res.Copies == 0 {
		t.Fatal("cross-tenant chain paid no copies")
	}
	if res.CrossLat <= res.SameLat {
		t.Fatalf("cross-tenant latency %v not above same-tenant %v", res.CrossLat, res.SameLat)
	}
}

func TestAblationRegistry(t *testing.T) {
	if len(Ablations()) < 8 {
		t.Fatalf("only %d ablations registered", len(Ablations()))
	}
	if _, ok := Lookup("abl-hugepage"); !ok {
		t.Fatal("ablation lookup failed")
	}
}
