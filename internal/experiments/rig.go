package experiments

import (
	"fmt"
	"time"

	"nadino/internal/dne"
	"nadino/internal/dpu"
	"nadino/internal/fabric"
	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/rdma"
	"nadino/internal/sim"
	"nadino/internal/telemetry"
	"nadino/internal/trace"
)

// dneRig is a two-worker-node setup with a network engine per node and one
// or more tenants, used by the microbenchmarks (Figs. 6, 11, 15, 17).
type dneRig struct {
	eng    *sim.Engine
	p      *params.Params
	net    *fabric.Network
	dpuA   *dpu.DPU
	dpuB   *dpu.DPU
	ea, eb *dne.Engine
	pools  map[string][2]*mempool.Pool // per tenant: [nodeA, nodeB]
	ready  *sim.Queue[struct{}]
	// tracer, when non-nil, records per-stage spans for echo requests.
	// measureEcho nils it during warmup so only steady-state requests are
	// traced.
	tracer *trace.Tracer
}

// tenantSpec declares one tenant on the rig.
type tenantSpec struct {
	name   string
	weight int
}

// newDNERig builds engines with the given scheduler/mode and tenants, and
// attaches an echo client/server function pair per tenant ("cli-<t>" on
// node A, "srv-<t>" on node B).
func newDNERig(p *params.Params, seed int64, mode dne.Mode, sched dne.SchedulerKind, tenants []tenantSpec, cfgMods ...func(*dne.Config)) *dneRig {
	eng := sim.NewEngine(seed)
	net := fabric.New(eng, p)
	r := &dneRig{
		eng:   eng,
		p:     p,
		net:   net,
		dpuA:  dpu.New(eng, p, "nodeA", net, 2),
		dpuB:  dpu.New(eng, p, "nodeB", net, 2),
		pools: make(map[string][2]*mempool.Pool),
		ready: sim.NewQueue[struct{}](eng, 0),
	}
	cfgA := dne.Config{Node: "nodeA", Mode: mode, Sched: sched, Channel: dpu.ComchE}
	cfgB := dne.Config{Node: "nodeB", Mode: mode, Sched: sched, Channel: dpu.ComchE}
	for _, mod := range cfgMods {
		mod(&cfgA)
		mod(&cfgB)
	}
	r.ea = dne.New(eng, p, cfgA, r.dpuA, nil, nil)
	r.eb = dne.New(eng, p, cfgB, r.dpuB, nil, nil)
	for _, ts := range tenants {
		pa := mempool.NewPool(ts.name, 16384, 8192, p.HugepageSize)
		pb := mempool.NewPool(ts.name, 16384, 8192, p.HugepageSize)
		r.pools[ts.name] = [2]*mempool.Pool{pa, pb}
		r.ea.AddTenant(ts.name, pa, ts.weight)
		r.eb.AddTenant(ts.name, pb, ts.weight)
		r.ea.SetRoute("srv-"+ts.name, "nodeB")
		r.eb.SetRoute("cli-"+ts.name, "nodeA")
	}
	eng.Spawn("rig-setup", func(pr *sim.Proc) {
		// Tenants establish their connection pools concurrently.
		done := sim.NewQueue[struct{}](eng, 0)
		for _, ts := range tenants {
			ts := ts
			eng.Spawn("rig-setup-"+ts.name, func(spr *sim.Proc) {
				cpA, cpB := rdma.EstablishPair(spr, p, ts.name,
					r.dpuA.RNIC(), r.dpuB.RNIC(), 8,
					r.ea.SRQ(ts.name), r.eb.SRQ(ts.name), r.ea.CQ(), r.eb.CQ())
				r.ea.AddConnPool("nodeB", ts.name, cpA)
				r.eb.AddConnPool("nodeA", ts.name, cpB)
				done.TryPut(struct{}{})
			})
		}
		for range tenants {
			done.Get(pr)
		}
		r.ea.Start()
		r.eb.Start()
		r.ready.TryPut(struct{}{})
	})
	return r
}

// waitReady parks pr until QP establishment completes.
func (r *dneRig) waitReady(pr *sim.Proc) {
	r.ready.Get(pr)
	r.ready.TryPut(struct{}{})
}

// spawnEchoServer runs a server function for tenant on node B with its own
// host core: every request descriptor is answered with a same-size reply.
func (r *dneRig) spawnEchoServer(tenant string, port *dne.FnPort) {
	core := sim.NewProcessor(r.eng, "srv-core-"+tenant, r.p.HostCoreSpeed)
	pool := r.pools[tenant][1]
	srvName := "srv-" + tenant // hoisted: was a per-request concat
	srv := mempool.Owner(srvName)
	r.eng.Spawn(srvName, func(pr *sim.Proc) {
		for {
			d := port.Recv(pr, core)
			reply, err := pool.Get(srv)
			for err != nil {
				// Pool squeeze: under a chaos storm the tenant's buffers can
				// be transiently pinned in the engine's retry path. Block the
				// handler until one comes home — a function backpressures on
				// its pool, it doesn't crash. The stall propagates upstream as
				// RNR once the RQ ring can't replenish either.
				pr.Sleep(20 * time.Microsecond)
				reply, err = pool.Get(srv)
			}
			if err := pool.Put(d.Buf, srv); err != nil {
				panic(err)
			}
			out := mempool.Descriptor{
				Tenant: tenant, Buf: reply, Len: d.Len,
				Src: srvName, Dst: d.Src, Seq: d.Seq, Stamp: d.Stamp, Ctx: d.Ctx,
				Trace: d.Trace,
			}
			if err := port.Send(pr, core, out); err != nil {
				panic(err)
			}
		}
	})
}

// echoClientStats collects per-client echo results.
type echoClientStats struct {
	count  uint64
	rttSum time.Duration
	// rtt is the optional telemetry histogram handle (set by rigTelemetry);
	// Observe on the nil default is a no-op, so the client loop carries the
	// instrumentation unconditionally at zero cost when telemetry is off.
	rtt *telemetry.Hist
}

// spawnEchoClients runs n concurrent closed-loop echo clients for tenant
// on node A, all multiplexed over the tenant's single client function port
// (serverless functions multiplex many in-flight requests). active gates
// the load (nil = always on). Returns the shared stats.
func (r *dneRig) spawnEchoClients(tenant string, port *dne.FnPort, n, payload int, active func(now time.Duration) bool) *echoClientStats {
	core := sim.NewProcessor(r.eng, "cli-core-"+tenant, r.p.HostCoreSpeed)
	pool := r.pools[tenant][0]
	// Hoisted per-request strings: these were concatenated per echo.
	cliName := "cli-" + tenant
	srvName := "srv-" + tenant
	echoName := "echo/" + tenant
	cli := mempool.Owner(cliName)
	stats := &echoClientStats{}
	// One demux proc feeds per-request rendezvous queues.
	type waiter = *sim.Queue[mempool.Descriptor]
	waiters := make(map[uint64]waiter)
	r.eng.Spawn("cli-demux-"+tenant, func(pr *sim.Proc) {
		for {
			d := port.Recv(pr, core)
			if w, ok := waiters[d.Seq]; ok {
				delete(waiters, d.Seq)
				w.TryPut(d)
			} else if err := pool.Put(d.Buf, cli); err != nil {
				// No waiter: a duplicate delivery from the engine's
				// at-least-once retry path. Recycle it, or the buffer leaks.
				panic(err)
			}
		}
	})
	var seq uint64
	for i := 0; i < n; i++ {
		r.eng.Spawn(fmt.Sprintf("cli-%s-%d", tenant, i), func(pr *sim.Proc) {
			r.waitReady(pr)
			respQ := sim.NewQueue[mempool.Descriptor](r.eng, 0)
			for {
				if active != nil && !active(pr.Now()) {
					pr.Sleep(500 * time.Microsecond)
					continue
				}
				// Tiny think-time jitter decorrelates the closed-loop
				// clients (real handlers are never perfectly lockstep);
				// without it the deterministic pipeline phase-locks into
				// convoys that leave the engine artificially idle.
				pr.Sleep(time.Duration(r.eng.Rand().Intn(3000)) * time.Nanosecond)
				buf, err := pool.Get(cli)
				if err != nil {
					pr.Sleep(50 * time.Microsecond)
					continue
				}
				seq++
				id := seq
				waiters[id] = respQ
				start := pr.Now()
				req := r.tracer.StartRequest(echoName)
				d := mempool.Descriptor{
					Tenant: tenant, Buf: buf, Len: payload,
					Src: cliName, Dst: srvName, Seq: id, Stamp: start,
					Trace: req,
				}
				if err := port.Send(pr, core, d); err != nil {
					panic(err)
				}
				resp := respQ.Get(pr)
				req.Finish()
				stats.count++
				stats.rttSum += pr.Now() - start
				stats.rtt.Observe(pr.Now() - start)
				if err := pool.Put(resp.Buf, cli); err != nil {
					panic(err)
				}
			}
		})
	}
	return stats
}

func (s *echoClientStats) meanRTT() time.Duration {
	if s.count == 0 {
		return 0
	}
	return s.rttSum / time.Duration(s.count)
}

// measureEcho runs the rig for dur (after setup) and returns RPS and mean
// RTT for the tenant stats.
func measureEcho(r *dneRig, stats *echoClientStats, dur time.Duration) (float64, time.Duration) {
	// Trace only the measured window: requests issued during warmup would
	// otherwise skew the trace's end-to-end mean relative to the reported
	// steady-state RTT.
	tr := r.tracer
	r.tracer = nil
	r.eng.RunUntil(r.p.QPSetupTime + 2*time.Millisecond) // warmup
	r.tracer = tr
	base := stats.count
	baseRTT := stats.rttSum
	start := r.eng.Now()
	r.eng.RunUntil(start + dur)
	n := stats.count - base
	if n == 0 {
		return 0, 0
	}
	return float64(n) / (r.eng.Now() - start).Seconds(), (stats.rttSum - baseRTT) / time.Duration(n)
}

// EchoProbe runs a short DNE echo workload and returns its RPS and mean
// RTT. It is the standard "is the whole data path alive" probe used by the
// repository's benchmarks.
func EchoProbe(p *params.Params, seed int64) (float64, time.Duration) {
	return runDNEEcho(p, seed, dne.OffPath, 1024, 4, 10*time.Millisecond, nil)
}
