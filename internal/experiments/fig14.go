package experiments

import (
	"fmt"
	"time"

	"nadino/internal/ingress"
	"nadino/internal/metrics"
	"nadino/internal/params"
	"nadino/internal/sim"
	"nadino/internal/workload"
)

// Fig14Series is one gateway's time-series run.
type Fig14Series struct {
	Design  string
	RPS     *metrics.Series
	CPU     *metrics.Series // cores' worth of CPU in use
	Workers *metrics.Series
	Served  uint64
	Dropped uint64
	// Disconnected counts client connections that gave up waiting — the
	// paper's K-Ingress overload symptom.
	Disconnected int
}

// Fig14Result holds the horizontal-scaling time series: a saturating client
// is added at a fixed interval (the paper adds one every 10 s).
type Fig14Result struct {
	Interval time.Duration
	Total    time.Duration
	Series   []Fig14Series
}

// runFig14 runs one gateway design under the ramp schedule.
func runFig14(o Opts, kind ingress.Kind, autoScale bool, workers, maxWorkers, clients int, every, total time.Duration) Fig14Series {
	quickRun := o.Quick
	p := params.Default()
	eng := sim.NewEngine(o.Seed)
	defer eng.Stop()
	backend := ingress.DefaultEchoBackend(eng, p, kind, 16)
	cfg := ingress.Config{
		Kind:           kind,
		InitialWorkers: workers,
		MaxWorkers:     maxWorkers,
		AutoScale:      autoScale,
		QueueCap:       512,
	}
	gw := ingress.New(eng, p, cfg, backend)
	gw.StartRecorder(total / 40)
	cp := workload.NewClientPool(eng, p, gw, 512, 512)
	// Each paper client pins a core and generates the highest load it can
	// over many connections: open-loop generation. Responses that take
	// longer than the timeout count as disconnections.
	cp.ConnsPerClient = 16
	cp.OpenLoopRate = 40000
	cp.Timeout = 100 * time.Millisecond
	if !quickRun {
		cp.OpenLoopRate = 30000
	}
	cp.RampUp(clients, every)
	eng.RunUntil(total)
	return Fig14Series{
		Design:       kind.String(),
		RPS:          gw.RPSSeries,
		CPU:          gw.CPUSeries,
		Workers:      gw.WorkersSeries,
		Served:       gw.Served(),
		Dropped:      gw.Dropped(),
		Disconnected: cp.Disconnected(),
	}
}

// Fig14 runs the three designs under the same ramp. Durations are
// compressed relative to the paper's minutes-long run; the dynamics
// (autoscaler steps, K-Ingress overload) are preserved.
func Fig14(o Opts) *Fig14Result {
	every := o.scale(300*time.Millisecond, time.Second)
	total := o.scale(3*time.Second, 16*time.Second)
	clients := 12
	if o.Quick {
		clients = 8
	}
	jobs := []struct {
		kind       ingress.Kind
		autoScale  bool
		workers    int
		maxWorkers int
	}{
		// NADINO: autoscaled busy-poll workers.
		{ingress.Nadino, true, 1, 8},
		// F-Ingress: the paper adapts the same autoscaler to it.
		{ingress.FIngress, true, 1, 8},
		// K-Ingress: interrupt-driven, spreads across all 8 cores from the
		// start, no explicit scaling.
		{ingress.KIngress, false, 8, 8},
	}
	res := &Fig14Result{Interval: every, Total: total, Series: make([]Fig14Series, len(jobs))}
	o.forEach(len(jobs), func(i int) {
		j := jobs[i]
		res.Series[i] = runFig14(o, j.kind, j.autoScale, j.workers, j.maxWorkers, clients, every, total)
	})
	return res
}

// Get returns the series for a design.
func (r *Fig14Result) Get(design string) (Fig14Series, bool) {
	for _, s := range r.Series {
		if s.Design == design {
			return s, true
		}
	}
	return Fig14Series{}, false
}

// RunFig14 adapts Fig14 to the registry.
func RunFig14(o Opts) []*Table {
	res := Fig14(o)
	t1 := &Table{
		Title:   fmt.Sprintf("Fig. 14 (1) — ingress CPU usage over time (+1 client every %v)", res.Interval),
		Columns: []string{"time", "NADINO cores", "F-Ingress cores", "K-Ingress cores"},
	}
	t2 := &Table{
		Title:   "Fig. 14 (2) — ingress RPS over time",
		Columns: []string{"time", "NADINO", "F-Ingress", "K-Ingress"},
		Note:    "K-Ingress saturates all cores and starts dropping clients; NADINO scales workers to match load",
	}
	nad, _ := res.Get("NADINO-Ingress")
	fi, _ := res.Get("F-Ingress")
	ki, _ := res.Get("K-Ingress")
	step := res.Total / 16
	for ts := step; ts <= res.Total; ts += step {
		t1.Rows = append(t1.Rows, []string{
			fmt.Sprintf("%.1fs", ts.Seconds()),
			fmt.Sprintf("%.1f", nad.CPU.At(ts)),
			fmt.Sprintf("%.1f", fi.CPU.At(ts)),
			fmt.Sprintf("%.1f", ki.CPU.At(ts)),
		})
		t2.Rows = append(t2.Rows, []string{
			fmt.Sprintf("%.1fs", ts.Seconds()),
			fRPS(nad.RPS.At(ts)),
			fRPS(fi.RPS.At(ts)),
			fRPS(ki.RPS.At(ts)),
		})
	}
	t2.Note += fmt.Sprintf("; disconnected conns — NADINO: %d, F: %d, K: %d",
		nad.Disconnected, fi.Disconnected, ki.Disconnected)
	t2.Rows = append(t2.Rows,
		[]string{"spark", nad.RPS.Sparkline(24), fi.RPS.Sparkline(24), ki.RPS.Sparkline(24)})
	return []*Table{t1, t2}
}
