package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallelism resolves an Opts.Parallel / -parallel flag value to a worker
// count: n <= 0 means "one worker per available CPU" (GOMAXPROCS), 1 is
// sequential, anything else is taken literally.
func Parallelism(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// forEach runs n independent sweep points. Every point must build its own
// sim.Engine (and params.Params) and write its result into an
// index-addressed slot, never append to shared state — under those rules
// the merge order is the input order and the output is bitwise-identical
// whether the points run sequentially or sharded across workers.
//
// With o.Parallel > 1 the points are distributed across min(Parallel, n)
// goroutines. Tracing forces sequential execution: TraceSink callbacks are
// ordered side effects, and attribution runs are about fidelity, not
// wall-clock.
func (o Opts) forEach(n int, point func(i int)) {
	workers := o.Parallel
	if o.Trace && o.TraceSink != nil {
		workers = 1
	}
	ForEach(workers, n, point)
}

// ForEach runs n independent points across up to `workers` goroutines
// (workers <= 1 runs them inline on the calling goroutine). Points must not
// share mutable state; results must be written to index-addressed slots so
// the merge order is the input order regardless of scheduling.
func ForEach(workers, n int, point func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			point(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				point(i)
			}
		}()
	}
	wg.Wait()
}
