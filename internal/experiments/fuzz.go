package experiments

import (
	"fmt"
	"strings"

	"nadino/internal/simtest"
)

// FuzzShrinkBudget caps the candidate simulations spent minimizing each
// failing seed.
const FuzzShrinkBudget = 40

// fuzzShrinkMax bounds how many failing seeds get the full shrink
// treatment per sweep; the rest are still reported with repro commands.
const fuzzShrinkMax = 3

// Fuzz returns the deterministic-simulation fuzz sweep. It is addressable
// via -run fuzz (and Lookup) but deliberately not part of "everything":
// the sweep is a correctness gate, not a paper artifact, and it has its own
// make targets.
func Fuzz() []Experiment {
	return []Experiment{{
		ID:    "fuzz",
		Title: "Deterministic-simulation fuzz sweep (scenario generator + invariant registry)",
		Run:   RunFuzz,
	}}
}

// RunFuzz generates FuzzSeeds scenarios starting at o.Seed, runs each under
// the full invariant registry (sharded across workers — each scenario is
// its own engine, so results merge in seed order bitwise-identically), then
// shrinks the first failures to minimal counterexamples. Every failing seed
// is reported with the exact standalone repro command.
func RunFuzz(o Opts) []*Table {
	n := o.FuzzSeeds
	if n <= 0 {
		if o.Quick {
			n = 50
		} else {
			n = 200
		}
	}
	results := make([]*simtest.Result, n)
	o.forEach(n, func(i int) {
		sc := simtest.Generate(o.Seed + int64(i))
		sc.Defect = o.FuzzDefect
		results[i] = simtest.Run(sc)
	})

	var failed []*simtest.Result
	var issued, completed, shed, drops uint64
	var faults, audits int
	for _, res := range results {
		issued += res.Issued
		completed += res.Completed
		shed += res.Shed
		drops += res.Drops
		faults += res.FaultsApplied
		audits += res.AuditOps
		if res.Failed() {
			failed = append(failed, res)
		}
	}

	summary := &Table{
		Title:   "Fuzz sweep summary",
		Columns: []string{"scenarios", "passed", "failed", "issued", "completed", "shed", "drops", "faults", "audit ops"},
		Rows: [][]string{{
			fmt.Sprint(n), fmt.Sprint(n - len(failed)), fmt.Sprint(len(failed)),
			fmt.Sprint(issued), fmt.Sprint(completed), fmt.Sprint(shed),
			fmt.Sprint(drops), fmt.Sprint(faults), fmt.Sprint(audits),
		}},
	}
	verdict := "CLEAN"
	if len(failed) > 0 {
		verdict = "FAILING"
	}
	summary.Note = fmt.Sprintf("verdict: %s — seeds %d..%d, %d invariants checked per scenario",
		verdict, o.Seed, o.Seed+int64(n)-1, len(simtest.Invariants()))
	tables := []*Table{summary}
	if len(failed) == 0 {
		return tables
	}

	fails := &Table{
		Title:   "Failing seeds",
		Columns: []string{"seed", "violations", "first violation", "repro"},
	}
	for _, res := range failed {
		first := res.Violations[0]
		fails.Rows = append(fails.Rows, []string{
			fmt.Sprint(res.Scenario.Seed),
			fmt.Sprint(len(res.Violations)),
			first.Invariant + ": " + first.Detail,
			res.ReproCommand(),
		})
	}
	tables = append(tables, fails)

	// Shrink the first few failures to minimal counterexamples. This runs
	// sequentially after the sweep so the output order is deterministic.
	shrunk := &Table{
		Title:   "Shrunk counterexamples",
		Columns: []string{"seed", "attempts", "steps", "minimal scenario", "still violates"},
	}
	for i, res := range failed {
		if i >= fuzzShrinkMax {
			shrunk.Note = fmt.Sprintf("shrinking capped at %d seeds; rerun the rest standalone", fuzzShrinkMax)
			break
		}
		sr := simtest.Shrink(res.Scenario, res, FuzzShrinkBudget)
		names := make([]string, 0, 4)
		for _, v := range sr.MinimalResult.Violations {
			if len(names) == 0 || names[len(names)-1] != v.Invariant {
				names = append(names, v.Invariant)
			}
		}
		shrunk.Rows = append(shrunk.Rows, []string{
			fmt.Sprint(res.Scenario.Seed),
			fmt.Sprint(sr.Attempts),
			strings.Join(sr.Steps, "; "),
			sr.Minimal.String(),
			strings.Join(names, ","),
		})
	}
	return append(tables, shrunk)
}
