// Package experiments regenerates every table and figure in the paper's
// evaluation (§4): each experiment builds the relevant slice of the system,
// drives the paper's workload, and returns structured rows that
// cmd/nadino-bench prints in the same shape the paper reports.
//
// Absolute numbers depend on the calibrated cost model (internal/params);
// the experiments' accompanying tests assert the paper's *shapes*:
// orderings, ratios, crossovers and fairness properties.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
	"unicode/utf8"

	"nadino/internal/telemetry"
	"nadino/internal/trace"
)

// Opts scales experiment effort. Quick mode shrinks measurement windows and
// sweeps so the full suite runs in seconds (used by tests); full mode is
// what cmd/nadino-bench runs by default.
type Opts struct {
	Quick bool
	Seed  int64

	// Parallel shards each experiment's independent sweep points (one
	// sim.Engine per point) across this many workers; <= 1 runs
	// sequentially and <= 0 means GOMAXPROCS (see Parallelism). Results
	// are merged in input order, so for a fixed seed the output is
	// bitwise-identical to a sequential run.
	Parallel int

	// Trace enables per-stage latency attribution in the experiments that
	// support it (currently fig06). Each traced run hands its tracer to
	// TraceSink under a profile name like "NADINO DNE/64B". Tracing forces
	// sequential sweeps (sink callback order is part of the output).
	Trace     bool
	TraceSink func(name string, tr *trace.Tracer)

	// Telemetry enables the virtual-time metric scraper in the experiments
	// that support it (currently the resilience suite). Each instrumented
	// run hands its scraper to TelemetrySink under a profile name like
	// "res-storm/storm". Unlike tracing, telemetry does NOT force
	// sequential sweeps: scrapers ride each point's own engine and sinks
	// are invoked after the sweep completes, in input order, so exports
	// stay bitwise-identical between sequential and parallel runs.
	Telemetry     bool
	TelemetrySink func(name string, sc *telemetry.Scraper)

	// FuzzSeeds sizes the fuzz sweep (-run fuzz): scenarios are generated
	// from seeds Seed..Seed+FuzzSeeds-1. <= 0 picks a mode default.
	// FuzzDefect plants a named harness defect (see simtest.DefectLeakBuffer)
	// in every scenario, to demonstrate detection and shrinking.
	FuzzSeeds  int
	FuzzDefect string
}

// scale returns quick or full depending on the mode.
func (o Opts) scale(quick, full time.Duration) time.Duration {
	if o.Quick {
		return quick
	}
	return full
}

func (o Opts) pick(quick, full []int) []int {
	if o.Quick {
		return quick
	}
	return full
}

// Table is a printable result grid.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Note    string
}

// Print renders the table. Column widths are measured in runes so unicode
// sparklines align with plain cells.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	width := utf8.RuneCountInString
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = width(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && width(cell) > widths[i] {
				widths[i] = width(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = cell + strings.Repeat(" ", widths[i]-width(cell))
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "  note: %s\n", t.Note)
	}
}

// cell formatting helpers.
func fRPS(v float64) string {
	if v >= 1000 {
		return fmt.Sprintf("%.1fK", v/1000)
	}
	return fmt.Sprintf("%.0f", v)
}

func fLat(d time.Duration) string {
	switch {
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.1fus", float64(d)/1e3)
	}
}

func fRatio(v float64) string { return fmt.Sprintf("%.2fx", v) }

// TraceTable renders a tracer's per-stage latency attribution as a printable
// table: per-request mean and P95 for each stage, plus each stage's share of
// the end-to-end mean. Detail stages (marked "*") overlap primary stages and
// are excluded from the reconciliation sum in the note.
func TraceTable(name string, rep *trace.Report) *Table {
	t := &Table{
		Title:   "Latency attribution — " + name,
		Columns: []string{"stage", "spans/req", "mean/req", "P95/span", "share"},
	}
	e2e := rep.EndToEnd.Mean()
	for _, s := range rep.Stages {
		per := s.PerRequest(rep.Requests)
		share := "-"
		if e2e > 0 && !s.Detail {
			share = fmt.Sprintf("%.1f%%", 100*float64(per)/float64(e2e))
		}
		stage := s.Stage
		if s.Detail {
			stage += " *"
		}
		spansPerReq := float64(s.Count) / float64(max(rep.Requests, 1))
		t.Rows = append(t.Rows, []string{
			stage,
			fmt.Sprintf("%.1f", spansPerReq),
			fLat(per),
			fLat(s.Hist.Quantile(0.95)),
			share,
		})
	}
	sum := rep.StageSumPerRequest()
	gap := 0.0
	if e2e > 0 {
		gap = 100 * (float64(sum) - float64(e2e)) / float64(e2e)
	}
	t.Note = fmt.Sprintf("%d requests traced (%d unfinished, %d past sampling limit); stage sum %s vs end-to-end mean %s (%+.1f%%); * = overlapping detail stage",
		rep.Requests, rep.Unfinished, rep.Dropped, fLat(sum), fLat(e2e), gap)
	return t
}

// Experiment is a runnable evaluation artifact.
type Experiment struct {
	ID    string // e.g. "fig12"
	Title string
	Run   func(o Opts) []*Table
}

// All returns the full experiment registry in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig06", Title: "Fig. 6 — Isolation cost of NADINO's DNE", Run: RunFig06},
		{ID: "fig09", Title: "Fig. 9 — DPU<->host communication channels", Run: RunFig09},
		{ID: "fig11", Title: "Fig. 11 — Off-path vs on-path DNE", Run: RunFig11},
		{ID: "fig12", Title: "Fig. 12 — Selection of RDMA primitives", Run: RunFig12},
		{ID: "fig13", Title: "Fig. 13 — Cluster ingress designs", Run: RunFig13},
		{ID: "fig14", Title: "Fig. 14 — Ingress horizontal scaling", Run: RunFig14},
		{ID: "fig15", Title: "Fig. 15 — Multi-tenancy: FCFS vs DWRR", Run: RunFig15},
		{ID: "fig16", Title: "Fig. 16 — Online Boutique end-to-end", Run: RunFig16},
		{ID: "table2", Title: "Table 2 — Boutique chain latency", Run: RunTable2},
		{ID: "fig17", Title: "Fig. 17 — Multi-tenancy scalability (6 tenants)", Run: RunFig17},
	}
}

// AllWithAblations returns the paper experiments followed by the design
// ablations, the resilience suite, the multi-node fabric experiments, and
// the simulator scale sweep.
func AllWithAblations() []Experiment {
	out := append(append(append(All(), Ablations()...), Resilience()...), Fabric()...)
	out = append(out, Speculation()...)
	return append(out, Experiment{
		ID:    "scale",
		Title: "Scale sweep — million-client event core",
		Run:   RunScale,
	})
}

// Lookup finds an experiment by ID (paper artifacts, ablations, resilience
// runs, and the fuzz sweep — the latter addressable but not part of
// "everything").
func Lookup(id string) (Experiment, bool) {
	for _, e := range append(AllWithAblations(), Fuzz()...) {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
