package experiments

import (
	"testing"
)

// fabricOpts is the fixed-seed quick configuration for the fabric shapes.
var fabricOpts = Opts{Quick: true, Seed: 7}

// get returns the row for (fabric, skewed).
func getShardRow(t *testing.T, rows []FabricShardRow, gw, skewed bool) FabricShardRow {
	t.Helper()
	for _, r := range rows {
		if r.Fabric == gw && r.Skewed == skewed {
			return r
		}
	}
	t.Fatalf("no row for fabric=%v skewed=%v", gw, skewed)
	return FabricShardRow{}
}

// TestFabricShardShape pins the placement-quality ordering: the gateway
// tier carries every cross-node hop (and only then), and locality-aware
// placement crosses the fabric less often — and serves the chain at least
// as fast — as the round-robin adversary.
func TestFabricShardShape(t *testing.T) {
	rows := FabricShard(fabricOpts)
	if len(rows) != 4 {
		t.Fatalf("expected 4 grid points, got %d", len(rows))
	}
	for _, r := range rows {
		if r.RPS <= 0 {
			t.Errorf("fabric=%v skewed=%v: no throughput", r.Fabric, r.Skewed)
		}
		if r.Fabric && r.Forwarded == 0 {
			t.Errorf("fabric=%v skewed=%v: gateway tier on but nothing forwarded", r.Fabric, r.Skewed)
		}
		if !r.Fabric && r.Forwarded != 0 {
			t.Errorf("fabric=%v skewed=%v: %d gateway writes without the tier", r.Fabric, r.Skewed, r.Forwarded)
		}
	}
	local := getShardRow(t, rows, true, false)
	skewed := getShardRow(t, rows, true, true)
	if local.Forwarded >= skewed.Forwarded {
		t.Errorf("locality placement forwarded %d >= skewed %d — co-location saved nothing",
			local.Forwarded, skewed.Forwarded)
	}
	if local.MeanLat > skewed.MeanLat {
		t.Errorf("locality placement slower than skewed: %v > %v", local.MeanLat, skewed.MeanLat)
	}
}

// TestFabricFailoverShape requires the partition detour to actually happen
// (transit legs through node2), traffic to flow in all three phases, and
// the whole run to be deterministic for a fixed seed.
func TestFabricFailoverShape(t *testing.T) {
	res := FabricFailover(fabricOpts)
	if res.Transit == 0 {
		t.Error("no transit legs — the partition never detoured through node2")
	}
	if res.PrePartition == 0 || res.DuringPartition == 0 || res.PostHeal == 0 {
		t.Errorf("a phase starved: pre=%d during=%d post=%d",
			res.PrePartition, res.DuringPartition, res.PostHeal)
	}
	if res.RouteVersionSum == 0 {
		t.Error("route tables never changed across a partition and heal")
	}
	completed := res.PrePartition + res.DuringPartition + res.PostHeal
	if completed+res.Drops < res.Issued-res.Drops {
		t.Errorf("lost traffic unaccounted: issued=%d completed=%d drops=%d",
			res.Issued, completed, res.Drops)
	}
	if again := FabricFailover(fabricOpts); again != res {
		t.Errorf("same-seed failover runs diverged:\n  %+v\n  %+v", res, again)
	}
}
