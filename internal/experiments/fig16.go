package experiments

import (
	"fmt"
	"time"

	"nadino/internal/boutique"
	"nadino/internal/core"
	"nadino/internal/ingress"
	"nadino/internal/sim"
)

// Fig16Row is one (system, chain, clients) boutique measurement.
type Fig16Row struct {
	System  core.System
	Chain   string
	Clients int
	RPS     float64
	MeanLat time.Duration
	Net     core.NetCPU
}

// Fig16Result holds the end-to-end boutique evaluation (§4.3): RPS and
// latency per chain per system (Fig. 16 (1)-(3) and Table 2) plus the
// CPU/DPU efficiency figures (Fig. 16 (4)-(6)).
type Fig16Result struct {
	Rows []Fig16Row
}

// runBoutique drives n closed-loop clients on one chain of one system.
func runBoutique(o Opts, sys core.System, chain string, n int, dur time.Duration) Fig16Row {
	c := core.NewCluster(boutique.ClusterConfig(sys, o.Seed))
	defer c.Eng.Stop()
	for i := 0; i < n; i++ {
		id := i
		c.Eng.Spawn("client", func(pr *sim.Proc) {
			c.WaitReady(pr)
			respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
			for {
				c.SubmitChain(chain, id, func(r ingress.Response) { respQ.TryPut(r) })
				respQ.Get(pr)
			}
		})
	}
	warm := c.P.QPSetupTime + 10*time.Millisecond
	c.Eng.RunUntil(warm)
	c.Completed.MarkWindow(c.Eng.Now())
	c.ChainLatency[chain].Reset()
	c.Eng.RunUntil(warm + dur)
	elapsed := c.Eng.Now() - c.P.QPSetupTime
	return Fig16Row{
		System:  sys,
		Chain:   chain,
		Clients: n,
		RPS:     c.Completed.WindowRate(c.Eng.Now()),
		MeanLat: c.ChainLatency[chain].Mean(),
		Net:     c.NetCPUStats(elapsed),
	}
}

// Fig16 sweeps systems x chains x client counts, sharding the grid across
// o.Parallel workers (each point is its own cluster and engine).
func Fig16(o Opts) *Fig16Result {
	systems := core.Systems()
	chains := boutique.MeasuredChains()
	clients := []int{20, 60, 80}
	dur := o.scale(60*time.Millisecond, 250*time.Millisecond)
	if o.Quick {
		chains = chains[:1]
		clients = []int{8, 64}
	}
	type job struct {
		sys   core.System
		chain string
		n     int
	}
	var jobs []job
	for _, sys := range systems {
		for _, ch := range chains {
			for _, n := range clients {
				jobs = append(jobs, job{sys: sys, chain: ch, n: n})
			}
		}
	}
	rows := make([]Fig16Row, len(jobs))
	o.forEach(len(jobs), func(i int) {
		j := jobs[i]
		rows[i] = runBoutique(o, j.sys, j.chain, j.n, dur)
	})
	return &Fig16Result{Rows: rows}
}

// Get returns the row for (system, chain, clients).
func (r *Fig16Result) Get(sys core.System, chain string, clients int) (Fig16Row, bool) {
	for _, row := range r.Rows {
		if row.System == sys && row.Chain == chain && row.Clients == clients {
			return row, true
		}
	}
	return Fig16Row{}, false
}

// MaxClients reports the largest client count in the sweep.
func (r *Fig16Result) MaxClients() int {
	m := 0
	for _, row := range r.Rows {
		if row.Clients > m {
			m = row.Clients
		}
	}
	return m
}

// RunFig16 adapts Fig16 to the registry.
func RunFig16(o Opts) []*Table {
	res := Fig16(o)
	maxC := res.MaxClients()
	t1 := &Table{
		Title:   fmt.Sprintf("Fig. 16 (1)-(3) — Online Boutique RPS per chain (%d clients)", maxC),
		Columns: []string{"system", "chain", "RPS"},
	}
	t2 := &Table{
		Title:   fmt.Sprintf("Fig. 16 (4)-(6) — data-plane core usage (%d clients)", maxC),
		Columns: []string{"system", "chain", "pinned cores", "useful", "fn-core share", "kind"},
		Note:    "NADINO (DNE) pins DPU cores; every other engine burns host CPU",
	}
	for _, row := range res.Rows {
		if row.Clients != maxC {
			continue
		}
		t1.Rows = append(t1.Rows, []string{row.System.String(), row.Chain, fRPS(row.RPS)})
		kind := "CPU"
		if row.Net.OnDPU {
			kind = "DPU"
		}
		t2.Rows = append(t2.Rows, []string{
			row.System.String(), row.Chain,
			fmt.Sprintf("%.0f", row.Net.PinnedCores),
			fmt.Sprintf("%.2f", row.Net.PinnedUseful),
			fmt.Sprintf("%.2f", row.Net.FnCores),
			kind,
		})
	}
	return []*Table{t1, t2}
}

// RunTable2 formats the latency table from the same sweep.
func RunTable2(o Opts) []*Table {
	res := Fig16(o)
	clients := map[int]bool{}
	for _, row := range res.Rows {
		clients[row.Clients] = true
	}
	var cols []string
	cols = append(cols, "system", "chain")
	var order []int
	for _, n := range []int{8, 20, 32, 60, 80} {
		if clients[n] {
			order = append(order, n)
			cols = append(cols, fmt.Sprintf("%d clients", n))
		}
	}
	t := &Table{
		Title:   "Table 2 — average latency of boutique chains",
		Columns: cols,
	}
	seen := map[string]bool{}
	for _, row := range res.Rows {
		key := row.System.String() + "/" + row.Chain
		if seen[key] {
			continue
		}
		seen[key] = true
		cells := []string{row.System.String(), row.Chain}
		for _, n := range order {
			if r, ok := res.Get(row.System, row.Chain, n); ok {
				cells = append(cells, fLat(r.MeanLat))
			} else {
				cells = append(cells, "-")
			}
		}
		t.Rows = append(t.Rows, cells)
	}
	return []*Table{t}
}
