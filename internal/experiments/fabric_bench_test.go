package experiments

import (
	"testing"
	"time"
)

// The fabric benchmarks archive the multi-node gateway headline numbers as
// custom metrics for BENCH_res.json (`make bench-res`), alongside the res-*
// suite. Deterministic for the fixed seed, so -benchtime 1x is exact.

func BenchmarkFabricShard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := FabricShard(fabricOpts)
		var local, skewed FabricShardRow
		for _, r := range rows {
			if r.Fabric && !r.Skewed {
				local = r
			}
			if r.Fabric && r.Skewed {
				skewed = r
			}
		}
		b.ReportMetric(local.RPS, "local_rps")
		b.ReportMetric(skewed.RPS, "skewed_rps")
		b.ReportMetric(float64(local.MeanLat)/float64(time.Microsecond), "local_lat_us")
		b.ReportMetric(float64(skewed.MeanLat)/float64(time.Microsecond), "skewed_lat_us")
		b.ReportMetric(float64(skewed.Forwarded-local.Forwarded), "extra_gw_writes")
	}
}

func BenchmarkFabricFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := FabricFailover(fabricOpts)
		b.ReportMetric(float64(res.Transit), "transit_legs")
		b.ReportMetric(float64(res.Drops), "drops")
		b.ReportMetric(float64(res.DuringPartition), "completed_during_cut")
		b.ReportMetric(float64(res.RouteVersionSum), "route_version_bumps")
	}
}
