package experiments

import (
	"fmt"
	"time"

	"nadino/internal/dne"
	"nadino/internal/metrics"
	"nadino/internal/params"
)

// TenantLoad describes one tenant's echo workload and activity window.
type TenantLoad struct {
	Name    string
	Weight  int
	Clients int
	// Start/Stop bound the active window (Stop 0 = entire run).
	Start, Stop time.Duration
}

// TenancyResult holds per-tenant RPS time series plus summary shares.
type TenancyResult struct {
	Sched   dne.SchedulerKind
	Total   time.Duration
	Tenants []TenantLoad
	// Series maps tenant name to its completion-rate series.
	Series map[string]*metrics.Series
	// Aggregate is the sum-rate series.
	Aggregate *metrics.Series
}

// runTenancy drives the multi-tenant echo workload of §4.2 on a DNE pair
// whose worker is capped (params.DNEExtraPerMsg) to the paper's ~110K RPS
// single-core configuration.
func runTenancy(o Opts, sched dne.SchedulerKind, tenants []TenantLoad, total time.Duration) *TenancyResult {
	p := params.Default()
	// Cap the engine so bandwidth contention is at the DNE, as configured
	// in §4.2 ("a maximum throughput of approximately 110K RPS").
	p.DNEExtraPerMsg = 4600 * time.Nanosecond
	specs := make([]tenantSpec, len(tenants))
	for i, t := range tenants {
		specs[i] = tenantSpec{name: t.Name, weight: t.Weight}
	}
	r := newDNERig(p, o.Seed, dne.OffPath, sched, specs)
	defer r.eng.Stop()

	res := &TenancyResult{
		Sched:     sched,
		Total:     total,
		Tenants:   tenants,
		Series:    make(map[string]*metrics.Series),
		Aggregate: metrics.NewSeries("aggregate"),
	}
	stats := make(map[string]*echoClientStats)
	for _, t := range tenants {
		t := t
		cliPort := r.ea.AttachFunction("cli-"+t.Name, t.Name)
		srvPort := r.eb.AttachFunction("srv-"+t.Name, t.Name)
		r.spawnEchoServer(t.Name, srvPort)
		active := func(now time.Duration) bool {
			if now < r.p.QPSetupTime+t.Start {
				return false
			}
			if t.Stop > 0 && now > r.p.QPSetupTime+t.Stop {
				return false
			}
			return true
		}
		stats[t.Name] = r.spawnEchoClients(t.Name, cliPort, t.Clients, 1024, active)
		res.Series[t.Name] = metrics.NewSeries(t.Name)
	}
	// Sample per-tenant completion rates, starting once setup finished so
	// the first window is not polluted by connection establishment.
	window := total / 48
	last := make(map[string]uint64)
	r.eng.At(r.p.QPSetupTime, func() {
		// Walk the tenant slice, not the stats map: float addition is not
		// associative, so a map-ordered sum would make Aggregate
		// nondeterministic across runs.
		for _, t := range tenants {
			last[t.Name] = stats[t.Name].count
		}
		r.eng.Ticker(window, func(now time.Duration) {
			var sum float64
			for _, t := range tenants {
				s := stats[t.Name]
				rate := float64(s.count-last[t.Name]) / window.Seconds()
				last[t.Name] = s.count
				res.Series[t.Name].Add(now, rate)
				sum += rate
			}
			res.Aggregate.Add(now, sum)
		})
	})
	r.eng.RunUntil(r.p.QPSetupTime + total)
	return res
}

// SharesBetween reports each tenant's mean rate within [lo, hi] (offsets
// from workload start).
func (r *TenancyResult) SharesBetween(lo, hi time.Duration) map[string]float64 {
	base := params.Default().QPSetupTime
	out := make(map[string]float64, len(r.Series))
	for name, s := range r.Series {
		out[name] = s.MeanBetween(base+lo, base+hi)
	}
	return out
}

// AggregateBetween reports the mean aggregate rate within [lo, hi].
func (r *TenancyResult) AggregateBetween(lo, hi time.Duration) float64 {
	base := params.Default().QPSetupTime
	return r.Aggregate.MeanBetween(base+lo, base+hi)
}

// fig15Tenants builds the paper's three-tenant schedule (weights 6:1:2;
// tenant 2 joins at 1/12 and leaves at 10/12 of the run; tenant 3 runs the
// middle quarter), scaled to total.
func fig15Tenants(total time.Duration) []TenantLoad {
	frac := func(num, den int) time.Duration {
		return total * time.Duration(num) / time.Duration(den)
	}
	return []TenantLoad{
		{Name: "tenant1", Weight: 6, Clients: 48},
		{Name: "tenant2", Weight: 1, Clients: 24, Start: frac(1, 12), Stop: frac(10, 12)},
		{Name: "tenant3", Weight: 2, Clients: 32, Start: frac(3, 8), Stop: frac(5, 8)},
	}
}

// Fig15Result pairs the FCFS and DWRR runs.
type Fig15Result struct {
	FCFS *TenancyResult
	DWRR *TenancyResult
	// AllActive is the window (offsets) where all three tenants compete.
	AllActiveLo, AllActiveHi time.Duration
}

// Fig15 runs the §4.2 fairness experiment.
func Fig15(o Opts) *Fig15Result {
	total := o.scale(1500*time.Millisecond, 8*time.Second)
	tenants := fig15Tenants(total)
	res := &Fig15Result{
		AllActiveLo: total * 2 / 5,
		AllActiveHi: total * 3 / 5,
	}
	scheds := []dne.SchedulerKind{dne.SchedFCFS, dne.SchedDWRR}
	runs := make([]*TenancyResult, len(scheds))
	o.forEach(len(scheds), func(i int) {
		runs[i] = runTenancy(o, scheds[i], tenants, total)
	})
	res.FCFS, res.DWRR = runs[0], runs[1]
	return res
}

// RunFig15 adapts Fig15 to the registry.
func RunFig15(o Opts) []*Table {
	res := Fig15(o)
	tables := make([]*Table, 0, 2)
	for _, run := range []*TenancyResult{res.FCFS, res.DWRR} {
		name := "FCFS (no multi-tenancy support)"
		if run.Sched == dne.SchedDWRR {
			name = "NADINO DWRR (weights 6:1:2)"
		}
		t := &Table{
			Title:   "Fig. 15 — per-tenant RPS over time, " + name,
			Columns: []string{"time", "tenant1 (w=6)", "tenant2 (w=1)", "tenant3 (w=2)", "aggregate"},
		}
		step := run.Total / 12
		base := params.Default().QPSetupTime
		for ts := step; ts <= run.Total; ts += step {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.1fs", ts.Seconds()),
				fRPS(run.Series["tenant1"].At(base + ts)),
				fRPS(run.Series["tenant2"].At(base + ts)),
				fRPS(run.Series["tenant3"].At(base + ts)),
				fRPS(run.Aggregate.At(base + ts)),
			})
		}
		t.Rows = append(t.Rows, []string{
			"spark",
			run.Series["tenant1"].Sparkline(24),
			run.Series["tenant2"].Sparkline(24),
			run.Series["tenant3"].Sparkline(24),
			run.Aggregate.Sparkline(24),
		})
		tables = append(tables, t)
	}
	tables[1].Note = "with DWRR, competing backlogged tenants split the capped DNE precisely 6:1:2"
	return tables
}

// Fig17Result is the 6-tenant scalability run (appendix A).
type Fig17Result struct {
	Run *TenancyResult
	// Step is the join/leave interval.
	Step time.Duration
}

// Fig17 runs six equal-weight tenants joining and leaving in staggered
// windows: tenant i is active [i*step, (i+6)*step).
func Fig17(o Opts) *Fig17Result {
	step := o.scale(200*time.Millisecond, time.Second)
	total := 11 * step
	tenants := make([]TenantLoad, 6)
	for i := range tenants {
		tenants[i] = TenantLoad{
			Name:    fmt.Sprintf("tenant%d", i+1),
			Weight:  1,
			Clients: 24,
			Start:   time.Duration(i) * step,
			Stop:    time.Duration(i+6) * step,
		}
	}
	return &Fig17Result{Run: runTenancy(o, dne.SchedDWRR, tenants, total), Step: step}
}

// RunFig17 adapts Fig17 to the registry.
func RunFig17(o Opts) []*Table {
	res := Fig17(o)
	run := res.Run
	t := &Table{
		Title:   "Fig. 17 — 6 equal-weight tenants joining/leaving (DWRR)",
		Columns: []string{"time", "t1", "t2", "t3", "t4", "t5", "t6", "aggregate"},
		Note:    "fairness holds as tenants scale; the aggregate stays pinned at the DNE's capacity",
	}
	base := params.Default().QPSetupTime
	for ts := res.Step; ts <= run.Total; ts += res.Step {
		row := []string{fmt.Sprintf("%.1fs", ts.Seconds())}
		for i := 1; i <= 6; i++ {
			row = append(row, fRPS(run.Series[fmt.Sprintf("tenant%d", i)].At(base+ts)))
		}
		row = append(row, fRPS(run.Aggregate.At(base+ts)))
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}
