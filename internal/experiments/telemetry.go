package experiments

import (
	"strconv"
	"time"

	"nadino/internal/dne"
	"nadino/internal/dpu"
	"nadino/internal/fabric"
	"nadino/internal/telemetry"
)

// rigTelemetry instruments a dneRig with the standard probe set and starts
// a virtual-time scraper with the given period. It mirrors the chaos
// target-registry pattern: one call per rig wires every layer with stable,
// labeled series names. Returns nil when o.Telemetry is off — and because
// all probes are pull-based and the per-tenant RTT histogram handle is a
// nil-safe no-op when unregistered, a telemetry-off run executes no
// telemetry code at all.
func rigTelemetry(o Opts, r *dneRig, tenants []string, stats map[string]*echoClientStats, period time.Duration) *telemetry.Scraper {
	if !o.Telemetry {
		return nil
	}
	reg := telemetry.NewRegistry()
	eng := r.eng
	reg.Gauge("sim.pending", func() float64 { return float64(eng.Pending()) })

	for _, tn := range tenants {
		tn := tn
		st := stats[tn]
		reg.Rate("tenant.goodput", func() float64 { return float64(st.count) }, "tenant", tn)
		st.rtt = reg.Hist("tenant.rtt", "tenant", tn)
	}

	sides := []struct {
		node string
		peer fabric.NodeID
		e    *dne.Engine
		d    *dpu.DPU
	}{
		{"nodeA", "nodeB", r.ea, r.dpuA},
		{"nodeB", "nodeA", r.eb, r.dpuB},
	}
	for _, side := range sides {
		ns, peer, e, d := side.node, side.peer, side.e, side.d

		worker, keeper := e.WorkerCore(), e.KeeperCore()
		reg.Rate("dne.worker_util", func() float64 { return worker.BusyTime().Seconds() }, "node", ns)
		reg.Rate("dne.keeper_util", func() float64 { return keeper.BusyTime().Seconds() }, "node", ns)
		reg.Gauge("dne.sched_pending", func() float64 { return float64(e.SchedPending()) }, "node", ns)
		reg.Gauge("dne.keeper_debt", func() float64 { return float64(e.RQDebt()) }, "node", ns)

		rnic := d.RNIC()
		reg.Gauge("rdma.icm_hit_rate", func() float64 {
			h, m := float64(rnic.CacheHits()), float64(rnic.CacheMisses())
			if h+m == 0 {
				return 1
			}
			return h / (h + m)
		}, "node", ns)
		reg.Gauge("rdma.active_qps", func() float64 { return float64(rnic.ActiveQPs()) }, "node", ns)
		reg.Rate("rdma.rnr_retries", func() float64 {
			_, _, _, _, rnr := rnic.Stats()
			return float64(rnr)
		}, "node", ns)
		reg.Rate("rdma.pipe_util", func() float64 { return rnic.PipeBusyTime().Seconds() }, "node", ns)

		soc := d.SoCDMA()
		reg.Rate("dpu.dma_util", func() float64 { return soc.BusyTime().Seconds() }, "node", ns)
		for i, core := range d.Cores() {
			core := core
			reg.Rate("dpu.core_util", func() float64 { return core.BusyTime().Seconds() },
				"node", ns, "core", strconv.Itoa(i))
		}

		id := fabric.NodeID(ns)
		reg.Rate("fabric.bytes", func() float64 {
			bytes, _, _ := r.net.LinkStats(id)
			return float64(bytes)
		}, "node", ns)
		reg.Rate("fabric.drops", func() float64 {
			_, _, drops := r.net.LinkStats(id)
			return float64(drops)
		}, "node", ns)
		reg.Gauge("fabric.backlog_bytes", func() float64 { return r.net.LinkBacklogBytes(id) }, "node", ns)

		poolIdx := 0
		if ns == "nodeB" {
			poolIdx = 1
		}
		for _, tn := range tenants {
			tn := tn
			srq := e.SRQ(tn)
			reg.Gauge("dne.srq_posted", func() float64 { return float64(srq.Posted()) },
				"node", ns, "tenant", tn)
			pool := r.pools[tn][poolIdx]
			reg.Gauge("pool.in_use", func() float64 { return float64(pool.InUse()) },
				"node", ns, "tenant", tn)
			// Conn pools appear only once setup's handshakes finish; the
			// gauge reads 0 until then.
			reg.Gauge("rdma.pool_active", func() float64 {
				cp := e.ConnPool(peer, tn)
				if cp == nil {
					return 0
				}
				return float64(cp.ActiveCount())
			}, "node", ns, "tenant", tn)
		}
	}
	return reg.Scrape(eng, period)
}

// sinkScrapers hands each non-nil scraper to o.TelemetrySink in input order
// (after the sweep, so parallel runs sink identically to sequential ones).
func sinkScrapers(o Opts, names []string, scs []*telemetry.Scraper) {
	if !o.Telemetry || o.TelemetrySink == nil {
		return
	}
	for i, sc := range scs {
		if sc != nil {
			o.TelemetrySink(names[i], sc)
		}
	}
}
