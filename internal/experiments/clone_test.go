package experiments

import (
	"reflect"
	"testing"
)

// TestCloneSweepShapes runs the quick clone sweep and checks the mechanics
// the experiment exists to demonstrate: the unspeculated baseline fires no
// extra arms, cloned configurations amplify and then reap their losers, and
// exactly-once holds at every point.
func TestCloneSweepShapes(t *testing.T) {
	o := Opts{Quick: true, Seed: 3}
	res := CloneSweep(o)
	if len(res.Rows) != len(clonePoints(o))*len(res.Loads) {
		t.Fatalf("got %d rows, want %d points x %d loads",
			len(res.Rows), len(clonePoints(o)), len(res.Loads))
	}
	for _, row := range res.Rows {
		if row.RPS <= 0 {
			t.Fatalf("%s@%d: no completions", row.Point, row.Clients)
		}
		if row.P999 < row.P99 || row.P99 < row.P50 {
			t.Fatalf("%s@%d: quantiles out of order: P50=%v P99=%v P999=%v",
				row.Point, row.Clients, row.P50, row.P99, row.P999)
		}
		st := row.Spec
		if row.Point.clone <= 1 && !row.Point.hedge {
			if st.Arms != 0 || row.TxDrops != 0 || row.FnKills != 0 {
				t.Fatalf("%s@%d: unspeculated baseline fired arms: %+v", row.Point, row.Clients, st)
			}
			continue
		}
		if st.Clones == 0 && row.Point.clone > 1 {
			t.Fatalf("%s@%d: clone factor %d never cloned: %+v",
				row.Point, row.Clients, row.Point.clone, st)
		}
		if st.Kills+st.Cancels == 0 {
			t.Fatalf("%s@%d: losers never reaped: %+v", row.Point, row.Clients, st)
		}
		// Every fired arm either won, was suppressed at the boundary, or was
		// killed mid-plane (in-flight arms at cutoff make <= not ==).
		if st.Cancels+st.Kills+st.Wins() > st.Arms {
			t.Fatalf("%s@%d: more resolutions than arms: %+v", row.Point, row.Clients, st)
		}
	}
	// Hedging must actually fire on the hedged points at the heavy load.
	heavy := res.Loads[len(res.Loads)-1]
	hedged := false
	for _, pt := range clonePoints(o) {
		if !pt.hedge {
			continue
		}
		if row, ok := res.Get(pt, heavy); ok && row.Spec.Hedges > 0 {
			hedged = true
		}
	}
	if !hedged {
		t.Fatal("no hedged point ever fired a hedge arm")
	}
}

// TestCloneChaosShapes runs the storm variant: the cluster must keep
// completing under the straggler storm and the speculation counters must
// stay exactly-once consistent.
func TestCloneChaosShapes(t *testing.T) {
	res := CloneChaos(Opts{Quick: true, Seed: 5})
	for _, row := range res.Rows {
		if !row.Storm {
			t.Fatalf("%s@%d: chaos row not marked stormy", row.Point, row.Clients)
		}
		if row.RPS <= 0 {
			t.Fatalf("%s@%d: no completions under storm", row.Point, row.Clients)
		}
		st := row.Spec
		if st.Cancels+st.Kills+st.Wins() > st.Arms {
			t.Fatalf("%s@%d: more resolutions than arms under storm: %+v",
				row.Point, row.Clients, st)
		}
	}
}

// TestCloneSweepDeterministic: the full grid is a pure function of the seed,
// sequential or sharded.
func TestCloneSweepDeterministic(t *testing.T) {
	a := CloneSweep(Opts{Quick: true, Seed: 11})
	b := CloneSweep(Opts{Quick: true, Seed: 11, Parallel: 4})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("clone sweep diverged between sequential and parallel runs:\n%+v\n%+v", a, b)
	}
}
