package experiments

import (
	"bytes"
	"testing"
	"time"
)

// resOpts is the fixed-seed quick configuration used by the shape tests.
var resOpts = Opts{Quick: true, Seed: 7}

// TestResStormShape asserts the goodput-under-faults contract: the storm
// visibly bites (fabric drops, QP repairs, a goodput dip), yet goodput
// returns to >= 95% of the pre-storm baseline after the faults clear and
// every in-flight buffer is reclaimed.
func TestResStormShape(t *testing.T) {
	res := ResStorm(resOpts)
	control, storm := res[0], res[1]
	if control.Faulted || !storm.Faulted {
		t.Fatal("result order wrong: want [control, storm]")
	}
	if control.Drops != 0 || control.Applied != 0 {
		t.Fatalf("control run saw faults: %d drops, %d applied", control.Drops, control.Applied)
	}
	if storm.Applied == 0 || storm.Drops == 0 {
		t.Fatalf("storm did not bite: applied=%d drops=%d", storm.Applied, storm.Drops)
	}
	if storm.Repairs == 0 {
		t.Fatal("forced QP errors were never repaired")
	}
	if storm.Storm >= storm.Baseline {
		t.Fatalf("no goodput dip during the storm: %.0f >= %.0f", storm.Storm, storm.Baseline)
	}
	// The recovery contract is the declarative SLO watchdog rule evaluated
	// inside runResStorm (sustained return to within 5% of baseline in the
	// final quarter) — the verdict replaces the old hand-rolled Ratio check.
	for _, r := range res {
		if len(r.Violations) != 0 {
			t.Fatalf("SLO violations (faulted=%v): %v", r.Faulted, r.Violations)
		}
	}
	if storm.RetryDrops != 0 {
		t.Fatalf("%d descriptors exhausted the retry budget under sub-horizon outages", storm.RetryDrops)
	}
	for _, r := range res {
		if r.LeakA != 0 || r.LeakB != 0 {
			t.Fatalf("buffer leak (faulted=%v): A=%d B=%d", r.Faulted, r.LeakA, r.LeakB)
		}
	}
}

// TestResRecoveryShape asserts that goodput returns to within 5% of the
// pre-fault baseline after each partition heals, quickly and without leaks.
func TestResRecoveryShape(t *testing.T) {
	for _, r := range ResRecovery(resOpts) {
		if r.Drops == 0 {
			t.Fatalf("%s: partition dropped nothing", r.Label)
		}
		if !r.Recovered {
			t.Fatalf("%s: goodput never returned to baseline", r.Label)
		}
		// Surviving QPs carry traffic the moment the partition heals;
		// recovery must not wait out a full QP re-handshake (25ms).
		if r.RecoveryTime > 20*time.Millisecond {
			t.Fatalf("%s: recovery took %v, want < 20ms", r.Label, r.RecoveryTime)
		}
		if r.PostHeal < 0.95*r.Baseline {
			t.Fatalf("%s: post-heal rate %.0f below 95%% of baseline %.0f", r.Label, r.PostHeal, r.Baseline)
		}
		if r.LeakA != 0 || r.LeakB != 0 {
			t.Fatalf("%s: buffer leak A=%d B=%d", r.Label, r.LeakA, r.LeakB)
		}
	}
}

// TestResTenantShape asserts the isolation contract: while the co-tenant's
// QPs are error-flushed, DWRR keeps the healthy tenant within 10% of its
// pre-storm share, and beats FCFS at it.
func TestResTenantShape(t *testing.T) {
	res := ResTenant(resOpts)
	fcfs, dwrr := res[0], res[1]
	if dwrr.Retention < 0.9 {
		t.Fatalf("DWRR healthy retention %.2f under co-tenant storm, want >= 0.9", dwrr.Retention)
	}
	if dwrr.HealthyStorm <= fcfs.HealthyStorm {
		t.Fatalf("DWRR healthy rate %.0f not above FCFS %.0f during the storm",
			dwrr.HealthyStorm, fcfs.HealthyStorm)
	}
	if dwrr.Repairs == 0 {
		t.Fatal("stormed co-tenant QPs were never repaired")
	}
	for _, r := range res {
		if r.LeakHealthyA+r.LeakHealthyB+r.LeakNoisyA+r.LeakNoisyB != 0 {
			t.Fatalf("%v: buffer leak healthy=%d/%d noisy=%d/%d", r.Sched,
				r.LeakHealthyA, r.LeakHealthyB, r.LeakNoisyA, r.LeakNoisyB)
		}
	}
}

// renderResilience prints the three res-* tables for a given Opts.
func renderResilience(o Opts) []byte {
	var buf bytes.Buffer
	for _, e := range Resilience() {
		for _, tb := range e.Run(o) {
			tb.Print(&buf)
		}
	}
	return buf.Bytes()
}

// TestResilienceDeterminism is the res-specific determinism fence (the
// whole-suite TestParallelDeterminism also covers res-*, but skips under
// -short): repeated runs and sequential-vs-parallel execution must be
// bitwise identical for a fixed seed.
func TestResilienceDeterminism(t *testing.T) {
	a := renderResilience(resOpts)
	b := renderResilience(resOpts)
	if !bytes.Equal(a, b) {
		d := firstDiff(a, b)
		t.Fatalf("repeated run diverged at byte %d:\n1st: %q\n2nd: %q", d, excerpt(a, d), excerpt(b, d))
	}
	par := resOpts
	par.Parallel = 4
	c := renderResilience(par)
	if !bytes.Equal(a, c) {
		d := firstDiff(a, c)
		t.Fatalf("parallel run diverged at byte %d:\nseq: %q\npar: %q", d, excerpt(a, d), excerpt(c, d))
	}
}
