package experiments

import (
	"fmt"
	"time"

	"nadino/internal/boutique"
	"nadino/internal/chaos"
	"nadino/internal/core"
	"nadino/internal/fabric"
	"nadino/internal/ingress"
	"nadino/internal/sim"
	"nadino/internal/trace"
)

// FabricShardRow is one (transport, placement) measurement of the boutique
// sharded across four worker nodes: cross-node hops either ride the
// inter-gateway fabric (one-sided writes between per-node gateways) or the
// engines' per-tenant QPs, under locality-aware or adversarial placement.
type FabricShardRow struct {
	Fabric    bool // gateway tier on (vs direct per-tenant QPs)
	Skewed    bool // round-robin anti-locality placement (vs gateway.Place)
	RPS       float64
	MeanLat   time.Duration
	Forwarded uint64 // gateway writes posted
	Transit   uint64 // multi-hop relay legs
}

func transportName(gw bool) string {
	if gw {
		return "gw fabric"
	}
	return "per-tenant QPs"
}

func placementName(skewed bool) string {
	if skewed {
		return "skewed"
	}
	return "locality"
}

// runFabricShard drives closed-loop clients on the Home Query chain of one
// 4-node sharded deployment. With o.Trace set the tracer is installed after
// warmup, so gw.queue / gw.hop spans attribute the fabric's share of latency.
func runFabricShard(o Opts, useGw, skewed bool, clients int, dur time.Duration, tracer *trace.Tracer) FabricShardRow {
	cfg := boutique.ShardedConfig(core.NadinoDNE, o.Seed, 4, skewed)
	cfg.Gateways = useGw
	c := core.NewCluster(cfg)
	defer c.Eng.Stop()
	chain := boutique.HomeQuery
	for i := 0; i < clients; i++ {
		id := i
		c.Eng.Spawn("client", func(pr *sim.Proc) {
			c.WaitReady(pr)
			respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
			for {
				c.SubmitChain(chain, id, func(r ingress.Response) { respQ.TryPut(r) })
				respQ.Get(pr)
			}
		})
	}
	warm := c.P.QPSetupTime + 10*time.Millisecond
	c.Eng.RunUntil(warm)
	c.Completed.MarkWindow(c.Eng.Now())
	c.ChainLatency[chain].Reset()
	if tracer != nil {
		tracer.SetClock(c.Eng.Now)
		c.SetTracer(tracer)
	}
	c.Eng.RunUntil(warm + dur)
	row := FabricShardRow{
		Fabric:  useGw,
		Skewed:  skewed,
		RPS:     c.Completed.WindowRate(c.Eng.Now()),
		MeanLat: c.ChainLatency[chain].Mean(),
	}
	for _, g := range c.Gateways() {
		s := g.Stats()
		row.Forwarded += s.Forwarded
		row.Transit += s.Transit
	}
	return row
}

// FabricShard sweeps transport x placement on the 4-node sharded boutique.
func FabricShard(o Opts) []FabricShardRow {
	clients := 48
	dur := o.scale(40*time.Millisecond, 200*time.Millisecond)
	if o.Quick {
		clients = 16
	}
	type job struct{ gw, skewed bool }
	jobs := []job{
		{gw: false, skewed: false},
		{gw: false, skewed: true},
		{gw: true, skewed: false},
		{gw: true, skewed: true},
	}
	rows := make([]FabricShardRow, len(jobs))
	tracers := make([]*trace.Tracer, len(jobs))
	o.forEach(len(jobs), func(i int) {
		var tr *trace.Tracer
		if o.Trace && jobs[i].gw {
			tr = trace.New(nil)
		}
		rows[i] = runFabricShard(o, jobs[i].gw, jobs[i].skewed, clients, dur, tr)
		tracers[i] = tr
	})
	for i, tr := range tracers {
		if tr != nil && o.TraceSink != nil {
			o.TraceSink(fmt.Sprintf("fabric-shard/%s", placementName(jobs[i].skewed)), tr)
		}
	}
	return rows
}

// RunFabricShard adapts FabricShard to the registry.
func RunFabricShard(o Opts) []*Table {
	rows := FabricShard(o)
	t := &Table{
		Title:   "Fabric — sharded boutique (4 nodes): transport x placement",
		Columns: []string{"transport", "placement", "RPS", "mean lat", "gw writes", "transit"},
		Note: "locality placement (gateway.Place) co-locates adjacent chain stages; " +
			"skewed (round-robin) makes every hop cross the fabric",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			transportName(r.Fabric), placementName(r.Skewed),
			fRPS(r.RPS), fLat(r.MeanLat),
			fmt.Sprintf("%d", r.Forwarded), fmt.Sprintf("%d", r.Transit),
		})
	}
	return []*Table{t}
}

// FabricFailoverResult captures one partition-failover run on a 3-node chain
// whose only remote hop is node1 -> node3 (node2 is a pure relay): phase
// completion counts, the detour evidence, and the final route-table state.
type FabricFailoverResult struct {
	Issued                  uint64
	PrePartition            uint64 // completed before the cut
	DuringPartition         uint64 // completed while node1|node3 is cut
	PostHeal                uint64 // completed after the heal
	Transit, Retries, Drops uint64
	RouteVersionSum         uint64 // total route-table version bumps across gateways
}

// FabricFailover cuts node1|node3 mid-run and measures the gateway tier
// re-routing the chain through node2 until the partition heals.
func FabricFailover(o Opts) FabricFailoverResult {
	cfg := core.Config{
		System:   core.NadinoDNE,
		Nodes:    []string{"node1", "node2", "node3"},
		Gateways: true,
		Functions: []core.FunctionSpec{
			{Name: "f1", Node: "node1", Service: 15 * time.Microsecond},
			{Name: "f2", Node: "node3", Service: 10 * time.Microsecond},
		},
		Chains: []core.ChainSpec{{
			Name: "hop", Entry: "f1", ReqBytes: 512, RespBytes: 512,
			Calls: []core.Call{{Callee: "f2", ReqBytes: 1024, RespBytes: 1024}},
		}},
		Seed: o.Seed,
	}
	c := core.NewCluster(cfg)
	defer c.Eng.Stop()
	partAt := o.scale(60*time.Millisecond, 150*time.Millisecond)
	partFor := o.scale(50*time.Millisecond, 150*time.Millisecond)
	every := o.scale(400*time.Microsecond, 600*time.Microsecond)
	endAt := o.scale(300*time.Millisecond, time.Second)
	in := c.NewChaos(o.Seed)
	in.Install(chaos.Schedule{{
		At: partAt, For: partFor,
		Fault: chaos.Partition{A: []fabric.NodeID{"node1"}, B: []fabric.NodeID{"node3"}},
	}})
	var res FabricFailoverResult
	c.Eng.Spawn("driver", func(pr *sim.Proc) {
		c.WaitReady(pr)
		for pr.Now() < endAt-10*time.Millisecond {
			c.SubmitChain("hop", int(res.Issued), nil)
			res.Issued++
			pr.Sleep(every)
		}
	})
	c.Eng.At(partAt, func() { res.PrePartition = c.Completed.Total() })
	c.Eng.At(partAt+partFor, func() {
		res.DuringPartition = c.Completed.Total() - res.PrePartition
	})
	c.Eng.RunUntil(endAt)
	res.PostHeal = c.Completed.Total() - res.PrePartition - res.DuringPartition
	for _, g := range c.Gateways() {
		s := g.Stats()
		res.Transit += s.Transit
		res.Retries += s.Retries
		res.Drops += s.Dropped
		res.RouteVersionSum += g.Routes().Version()
	}
	return res
}

// RunFabricFailover adapts FabricFailover to the registry.
func RunFabricFailover(o Opts) []*Table {
	res := FabricFailover(o)
	t := &Table{
		Title:   "Fabric — partition failover on a 3-node chain (node1 | node3)",
		Columns: []string{"phase", "completed"},
		Note: fmt.Sprintf(
			"issued=%d transit=%d retries=%d drops=%d route-version bumps=%d; "+
				"transit legs are the node2 detour while the direct link is cut",
			res.Issued, res.Transit, res.Retries, res.Drops, res.RouteVersionSum),
	}
	t.Rows = append(t.Rows,
		[]string{"pre-partition", fmt.Sprintf("%d", res.PrePartition)},
		[]string{"during partition", fmt.Sprintf("%d", res.DuringPartition)},
		[]string{"post-heal", fmt.Sprintf("%d", res.PostHeal)},
	)
	return []*Table{t}
}

// Fabric returns the multi-node gateway-fabric experiments.
func Fabric() []Experiment {
	return []Experiment{
		{ID: "fabric-shard", Title: "Fabric — sharded boutique: transport x placement", Run: RunFabricShard},
		{ID: "fabric-failover", Title: "Fabric — inter-gateway partition failover", Run: RunFabricFailover},
	}
}
