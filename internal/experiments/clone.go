package experiments

import (
	"fmt"
	"time"

	"nadino/internal/chaos"
	"nadino/internal/core"
	"nadino/internal/ingress"
	"nadino/internal/sim"
	"nadino/internal/speculate"
	"nadino/internal/telemetry"
	"nadino/internal/trace"
)

// clonePoint is one speculation configuration: clone factor, function-core
// discipline, and whether hedged retries are armed on top of the clones.
type clonePoint struct {
	clone int
	ps    bool
	hedge bool
}

func (p clonePoint) String() string {
	s := fmt.Sprintf("c%d", p.clone)
	if p.ps {
		s += "+ps"
	} else {
		s += "+fcfs"
	}
	if p.hedge {
		s += "+hedge"
	}
	return s
}

// CloneRow is one (configuration, load) tail-latency measurement.
type CloneRow struct {
	Point   clonePoint
	Clients int
	Storm   bool

	RPS              float64
	P50, P99, P999   time.Duration
	Spec             speculate.Stats
	FnKills, TxDrops uint64
}

// ArmsPerReq reports how many arms (primary + clones + hedges) were fired
// per launched request; 1.0 means speculation never amplified anything.
func (r CloneRow) ArmsPerReq() float64 {
	if r.Spec.Launched == 0 {
		return 1
	}
	return float64(r.Spec.Arms) / float64(r.Spec.Launched)
}

// CloneResult holds the clone-sweep grid.
type CloneResult struct {
	Rows  []CloneRow
	Loads []int
}

// Get returns the row for (point, clients).
func (r *CloneResult) Get(pt clonePoint, clients int) (CloneRow, bool) {
	for _, row := range r.Rows {
		if row.Point == pt && row.Clients == clients {
			return row, true
		}
	}
	return CloneRow{}, false
}

// cloneClusterConfig is the 2-node cross-node chain the sweep drives
// (mirroring the core package's canonical test topology) with the sweep
// point's speculation policy and core discipline applied cluster-wide.
func cloneClusterConfig(seed int64, pt clonePoint) core.Config {
	pol := speculate.Policy{CloneN: pt.clone}
	if pt.hedge {
		pol.Hedge = true
		pol.HedgeMin = 30 * time.Microsecond
	}
	return core.Config{
		System: core.NadinoDNE,
		Nodes:  []string{"node1", "node2"},
		Functions: []core.FunctionSpec{
			{Name: "frontend", Node: "node1", Service: 20 * time.Microsecond},
			{Name: "backend", Node: "node2", Service: 15 * time.Microsecond},
			{Name: "sibling", Node: "node1", Service: 10 * time.Microsecond},
		},
		Chains: []core.ChainSpec{{
			Name: "mix", Entry: "frontend", ReqBytes: 512, RespBytes: 1024,
			Calls: []core.Call{
				{Callee: "backend", ReqBytes: 1024, RespBytes: 1024},
				{Callee: "sibling", ReqBytes: 256, RespBytes: 256},
			},
		}},
		Speculate: pol,
		PSCores:   pt.ps,
		Seed:      seed,
	}
}

// cloneStorm builds the fault schedule for the chaos variant: straggler
// injections (slow cores, a DMA stall, forced QP errors, an ingress restart)
// spread across the measurement window — exactly the fault mix speculative
// clones are supposed to cut the tail of.
func cloneStorm(in *chaos.Injector, warm, dur time.Duration) {
	step := dur / 6
	in.Install(chaos.Schedule{
		{At: warm + step, For: step / 2, Fault: chaos.SlowCores{Target: "cores@node2", Factor: 0.35}},
		{At: warm + 2*step, For: step / 3, Fault: chaos.DMAStall{Target: "dma@node2"}},
		{At: warm + 3*step, Fault: chaos.QPError{Target: "qp@node2", Count: 2}},
		{At: warm + 4*step, For: step / 2, Fault: chaos.SlowCores{Target: "cores@node1", Factor: 0.5}},
		{At: warm + 5*step, For: 200 * time.Microsecond, Fault: chaos.GatewayRestart{Target: "ingress"}},
	})
}

// runClonePoint drives n closed-loop clients through one sweep point and
// measures the steady-state window. Telemetry (when on) exports the cluster
// probe set including the spec.* family; tracing records spec.clone /
// spec.cancel stages alongside the standard pipeline stages.
func runClonePoint(o Opts, pt clonePoint, n int, storm bool, dur time.Duration) (CloneRow, *telemetry.Scraper, *trace.Tracer) {
	cfg := cloneClusterConfig(o.Seed, pt)
	c := core.NewCluster(cfg)
	defer c.Eng.Stop()

	var sc *telemetry.Scraper
	if o.Telemetry {
		reg := telemetry.NewRegistry()
		c.Instrument(reg)
		sc = reg.Scrape(c.Eng, 2*time.Millisecond)
	}

	warm := c.P.QPSetupTime + 10*time.Millisecond
	if storm {
		cloneStorm(c.NewChaos(o.Seed), warm, dur)
	}

	for i := 0; i < n; i++ {
		id := i
		c.Eng.Spawn("client", func(pr *sim.Proc) {
			c.WaitReady(pr)
			respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
			for {
				c.SubmitChain("mix", id, func(r ingress.Response) { respQ.TryPut(r) })
				respQ.Get(pr)
			}
		})
	}

	c.Eng.RunUntil(warm)
	c.Completed.MarkWindow(c.Eng.Now())
	c.ChainLatency["mix"].Reset()
	var tracer *trace.Tracer
	if o.Trace {
		// Arm the tracer only for the measured window so the attribution
		// matches the reported steady-state tail.
		tracer = trace.New(nil)
		c.SetTracer(tracer)
	}
	c.Eng.RunUntil(warm + dur)

	hist := c.ChainLatency["mix"]
	row := CloneRow{
		Point:   pt,
		Clients: n,
		Storm:   storm,
		RPS:     c.Completed.WindowRate(c.Eng.Now()),
		P50:     hist.Quantile(0.50),
		P99:     hist.Quantile(0.99),
		P999:    hist.Quantile(0.999),
		FnKills: c.SpecFnKills(),
	}
	if sp := c.Gateway().Spec(); sp != nil {
		row.Spec = sp.Stats()
	}
	for _, node := range cfg.Nodes {
		row.TxDrops += c.Engine(node).SpecDrops()
	}
	return row, sc, tracer
}

// clonePoints is the sweep's configuration grid: clone factor x core
// discipline x hedging. Quick mode keeps the corners that exercise every
// distinct mechanism (cloning, PS cores, hedging) without the full cross.
func clonePoints(o Opts) []clonePoint {
	if o.Quick {
		return []clonePoint{
			{clone: 1}, {clone: 3},
			{clone: 1, hedge: true},
			{clone: 3, hedge: true},
			{clone: 3, ps: true},
			{clone: 3, ps: true, hedge: true},
		}
	}
	var pts []clonePoint
	for _, cl := range []int{1, 2, 3} {
		for _, ps := range []bool{false, true} {
			for _, hedge := range []bool{false, true} {
				pts = append(pts, clonePoint{clone: cl, ps: ps, hedge: hedge})
			}
		}
	}
	return pts
}

// cloneSweep runs points x loads, sharded across o.Parallel workers (each
// point builds its own cluster and engine; rows land in index-addressed
// slots so the merged output is bitwise-identical to a sequential run).
func cloneSweep(o Opts, storm bool) *CloneResult {
	points := clonePoints(o)
	loads := o.pick([]int{4, 12}, []int{8, 32})
	dur := o.scale(25*time.Millisecond, 200*time.Millisecond)

	type job struct {
		pt clonePoint
		n  int
	}
	var jobs []job
	for _, pt := range points {
		for _, n := range loads {
			jobs = append(jobs, job{pt: pt, n: n})
		}
	}
	rows := make([]CloneRow, len(jobs))
	scs := make([]*telemetry.Scraper, len(jobs))
	names := make([]string, len(jobs))
	trs := make([]*trace.Tracer, len(jobs))
	o.forEach(len(jobs), func(i int) {
		j := jobs[i]
		family := "clone-sweep"
		if storm {
			family = "clone-chaos"
		}
		names[i] = fmt.Sprintf("%s/%s@%d", family, j.pt, j.n)
		rows[i], scs[i], trs[i] = runClonePoint(o, j.pt, j.n, storm, dur)
	})
	sinkScrapers(o, names, scs)
	if o.Trace && o.TraceSink != nil {
		for i, tr := range trs {
			if tr != nil {
				o.TraceSink(names[i], tr)
			}
		}
	}
	return &CloneResult{Rows: rows, Loads: loads}
}

// CloneSweep measures P99/P999 vs load for clone factors x {FCFS,PS} x
// hedge on/off on a healthy cluster.
func CloneSweep(o Opts) *CloneResult { return cloneSweep(o, false) }

// CloneChaos runs the same grid under the straggler storm.
func CloneChaos(o Opts) *CloneResult { return cloneSweep(o, true) }

// cloneTable renders a CloneResult: one row per configuration, tail
// quantiles per load level, plus the speculation cost/benefit counters at
// the heaviest load.
func cloneTable(title string, res *CloneResult) *Table {
	heavy := res.Loads[len(res.Loads)-1]
	cols := []string{"clone", "cores", "hedge"}
	for _, n := range res.Loads {
		cols = append(cols, fmt.Sprintf("P99@%d", n), fmt.Sprintf("P999@%d", n))
	}
	cols = append(cols, fmt.Sprintf("RPS@%d", heavy), "arms/req", "kills", "cancels")
	t := &Table{Title: title, Columns: cols}

	seen := map[clonePoint]bool{}
	for _, row := range res.Rows {
		if seen[row.Point] {
			continue
		}
		seen[row.Point] = true
		disc := "FCFS"
		if row.Point.ps {
			disc = "PS"
		}
		hedge := "off"
		if row.Point.hedge {
			hedge = "on"
		}
		cells := []string{fmt.Sprintf("%d", row.Point.clone), disc, hedge}
		for _, n := range res.Loads {
			if r, ok := res.Get(row.Point, n); ok {
				cells = append(cells, fLat(r.P99), fLat(r.P999))
			} else {
				cells = append(cells, "-", "-")
			}
		}
		r, _ := res.Get(row.Point, heavy)
		cells = append(cells,
			fRPS(r.RPS),
			fmt.Sprintf("%.2f", r.ArmsPerReq()),
			fmt.Sprintf("%d", r.Spec.Kills+r.FnKills),
			fmt.Sprintf("%d", r.Spec.Cancels),
		)
		t.Rows = append(t.Rows, cells)
	}
	t.Note = "kills = losers killed mid-plane (TX gate / fn dequeue); cancels = losers suppressed at the ingress boundary"
	return t
}

// RunCloneSweep adapts CloneSweep to the registry.
func RunCloneSweep(o Opts) []*Table {
	return []*Table{cloneTable("Clone sweep — tail latency vs load (clone x discipline x hedge)", CloneSweep(o))}
}

// RunCloneChaos adapts CloneChaos to the registry.
func RunCloneChaos(o Opts) []*Table {
	t := cloneTable("Clone sweep under straggler storm (slow cores / DMA stall / QP errors / ingress restart)", CloneChaos(o))
	return []*Table{t}
}

// Speculation returns the clone-sweep experiment family.
func Speculation() []Experiment {
	return []Experiment{
		{ID: "clone-sweep", Title: "Clone sweep — speculative tail-cutting vs load", Run: RunCloneSweep},
		{ID: "clone-chaos", Title: "Clone sweep under chaos storm", Run: RunCloneChaos},
	}
}
