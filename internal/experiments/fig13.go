package experiments

import (
	"fmt"
	"time"

	"nadino/internal/ingress"
	"nadino/internal/params"
	"nadino/internal/sim"
	"nadino/internal/workload"
)

// Fig13Row is one (design, clients) measurement.
type Fig13Row struct {
	Design  string
	Clients int
	RPS     float64
	MeanLat time.Duration
}

// Fig13Result compares ingress designs with one gateway core (§4.1.3).
type Fig13Result struct {
	Rows []Fig13Row
}

// Fig13Kinds lists the compared designs.
var Fig13Kinds = []ingress.Kind{ingress.Nadino, ingress.FIngress, ingress.KIngress}

// runIngress drives n closed-loop clients against a one-core gateway of the
// given kind and returns RPS and mean end-to-end latency.
func runIngress(o Opts, kind ingress.Kind, n int, dur time.Duration) (float64, time.Duration) {
	p := params.Default()
	eng := sim.NewEngine(o.Seed)
	defer eng.Stop()
	backend := ingress.DefaultEchoBackend(eng, p, kind, 8)
	gw := ingress.New(eng, p, ingress.Config{Kind: kind, InitialWorkers: 1, MaxWorkers: 1}, backend)
	cp := workload.NewClientPool(eng, p, gw, 512, 512)
	cp.AddClients(n)
	eng.RunUntil(5 * time.Millisecond) // warmup
	cp.Completed.MarkWindow(eng.Now())
	cp.Latency.Reset()
	start := eng.Now()
	eng.RunUntil(start + dur)
	return cp.Completed.WindowRate(eng.Now()), cp.Latency.Mean()
}

// Fig13 runs the client sweep for each design, sharding the (design,
// clients) grid across o.Parallel workers.
func Fig13(o Opts) *Fig13Result {
	clients := o.pick([]int{1, 32}, []int{1, 4, 8, 16, 32, 64})
	dur := o.scale(50*time.Millisecond, 300*time.Millisecond)
	type job struct {
		kind ingress.Kind
		n    int
	}
	var jobs []job
	for _, kind := range Fig13Kinds {
		for _, n := range clients {
			jobs = append(jobs, job{kind: kind, n: n})
		}
	}
	rows := make([]Fig13Row, len(jobs))
	o.forEach(len(jobs), func(i int) {
		j := jobs[i]
		rps, lat := runIngress(o, j.kind, j.n, dur)
		rows[i] = Fig13Row{Design: j.kind.String(), Clients: j.n, RPS: rps, MeanLat: lat}
	})
	return &Fig13Result{Rows: rows}
}

// Get returns the row for (design, clients).
func (r *Fig13Result) Get(design string, clients int) (Fig13Row, bool) {
	for _, row := range r.Rows {
		if row.Design == design && row.Clients == clients {
			return row, true
		}
	}
	return Fig13Row{}, false
}

// RunFig13 adapts Fig13 to the registry.
func RunFig13(o Opts) []*Table {
	res := Fig13(o)
	t := &Table{
		Title:   "Fig. 13 — cluster ingress designs (1 gateway core, echo backend)",
		Columns: []string{"design", "clients", "RPS", "mean latency"},
		Note:    "early HTTP/TCP->RDMA conversion removes all TCP processing from the cluster interior",
	}
	for _, row := range res.Rows {
		t.Rows = append(t.Rows, []string{row.Design, fmt.Sprintf("%d", row.Clients), fRPS(row.RPS), fLat(row.MeanLat)})
	}
	return []*Table{t}
}
