package experiments

import (
	"fmt"
	"time"

	"nadino/internal/core"
	"nadino/internal/dne"
	"nadino/internal/fabric"
	"nadino/internal/ingress"
	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/rdma"
	"nadino/internal/sim"
)

// This file holds ablations of NADINO's individual design choices — the
// knobs DESIGN.md calls out. Each isolates one mechanism and shows what it
// buys, beyond the paper's headline figures.

// ---------------------------------------------------------------------
// abl-connpool: RC connection pooling (§3.3) vs per-request QP setup.
// ---------------------------------------------------------------------

// AblConnPoolResult compares pooled connections against paying the RC
// handshake per request.
type AblConnPoolResult struct {
	PooledLat  time.Duration
	PerReqLat  time.Duration
	SpeedupLat float64
}

// ablConnPoolPerReq measures the no-pooling variant: every echo first
// performs the RC handshake, as a design without connection pooling would
// for short-lived functions.
func ablConnPoolPerReq(o Opts, p *params.Params) time.Duration {
	const n = 10
	eng := sim.NewEngine(o.Seed)
	defer eng.Stop()
	net := fabric.New(eng, p)
	ra := rdma.NewRNIC(eng, p, "a", net)
	rb := rdma.NewRNIC(eng, p, "b", net)
	poolA := mempool.NewPool("t", 8192, 256, p.HugepageSize)
	poolB := mempool.NewPool("t", 8192, 256, p.HugepageSize)
	var sum time.Duration
	eng.Spawn("per-request", func(pr *sim.Proc) {
		for i := 0; i < n; i++ {
			start := pr.Now()
			pr.Sleep(p.QPSetupTime) // the handshake, per request
			srqB := rdma.NewSRQ("t")
			cqA, cqB := rdma.NewCQ(eng), rdma.NewCQ(eng)
			qa, qb := rdma.Connect(ra, rb, "t", nil, srqB, cqA, cqB)
			rbuf, _ := poolB.Get("rq")
			srqB.PostRecv(mempool.Descriptor{Tenant: "t", Buf: rbuf})
			src, _ := poolA.Get("cli")
			qa.PostSend(mempool.Descriptor{Tenant: "t", Buf: src, Len: 1024})
			cqB.Wait(pr)
			e := cqB.Poll(1)[0]
			_ = qb
			// Tear down: recycle both buffers.
			if err := poolB.Transfer(e.Desc.Buf, "rq", "srv"); err != nil {
				panic(err)
			}
			_ = poolB.Put(e.Desc.Buf, "srv")
			cqA.Wait(pr)
			for _, c := range cqA.Poll(0) {
				_ = poolA.Put(c.Desc.Buf, "cli")
			}
			sum += pr.Now() - start
		}
	})
	eng.RunUntil(10 * time.Second)
	return sum / n
}

// AblConnPool measures both variants over sequential 1KB echoes.
func AblConnPool(o Opts) *AblConnPoolResult {
	lats := make([]time.Duration, 2)
	o.forEach(2, func(i int) {
		p := params.Default()
		switch i {
		case 0:
			// Pooled: the standard rig (connections established once at
			// startup).
			_, lats[0] = runDNEEcho(p, o.Seed, dne.OffPath, 1024, 1, o.scale(5*time.Millisecond, 20*time.Millisecond), nil)
		case 1:
			lats[1] = ablConnPoolPerReq(o, p)
		}
	})
	res := &AblConnPoolResult{PooledLat: lats[0], PerReqLat: lats[1]}
	res.SpeedupLat = float64(res.PerReqLat) / float64(res.PooledLat)
	return res
}

// RunAblConnPool adapts AblConnPool to the registry.
func RunAblConnPool(o Opts) []*Table {
	res := AblConnPool(o)
	return []*Table{{
		Title:   "Ablation — RC connection pooling (§3.3)",
		Columns: []string{"variant", "per-request latency"},
		Rows: [][]string{
			{"pooled connections (NADINO)", fLat(res.PooledLat)},
			{"QP handshake per request", fLat(res.PerReqLat)},
			{"pooling speedup", fRatio(res.SpeedupLat)},
		},
		Note: "the tens-of-ms RC handshake dwarfs the transfer; pooling amortizes it away",
	}}
}

// ---------------------------------------------------------------------
// abl-isolation: shadow-QP caps vs a rogue tenant hoarding active QPs
// (the §2.1 / §3.7 cache-exhaustion attack that SR-IOV VFs cannot stop).
// ---------------------------------------------------------------------

// AblIsolationResult compares a victim's echo latency with and without a
// rogue tenant thrashing the RNIC's QP cache.
type AblIsolationResult struct {
	BaselineLat time.Duration // no rogue at all
	ManagedLat  time.Duration // rogue present, DNE-style active-QP cap
	RogueLat    time.Duration // rogue with direct QP access (VF-style)
}

// runVictimEcho measures the victim echo with a rogue holding rogueQPs
// QPs; if capActive, only a handful stay active (DNE shadow management),
// else the rogue keeps them all hot (direct access).
func runVictimEcho(o Opts, p *params.Params, rogueQPs int, capActive bool) time.Duration {
	eng := sim.NewEngine(o.Seed)
	defer eng.Stop()
	net := fabric.New(eng, p)
	ra := rdma.NewRNIC(eng, p, "a", net)
	rb := rdma.NewRNIC(eng, p, "b", net)
	poolA := mempool.NewPool("victim", 8192, 512, p.HugepageSize)
	poolB := mempool.NewPool("victim", 8192, 512, p.HugepageSize)
	srqA, srqB := rdma.NewSRQ("victim"), rdma.NewSRQ("victim")
	cqA, cqB := rdma.NewCQ(eng), rdma.NewCQ(eng)
	qa, qb := rdma.Connect(ra, rb, "victim", srqA, srqB, cqA, cqB)

	// Rogue tenant: rogueQPs RC connections plus a one-sided target slot.
	roguePoolB := mempool.NewPool("rogue", 4096, 64, p.HugepageSize)
	rogueMR := rb.RegisterMR(roguePoolB)
	slot, _ := roguePoolB.Get("rogue")
	rogueCQ := rdma.NewCQ(eng)
	var rogue []*rdma.QP
	for i := 0; i < rogueQPs; i++ {
		q, _ := rdma.Connect(ra, rb, "rogue", nil, nil, rogueCQ, rdma.NewCQ(eng))
		rogue = append(rogue, q)
	}
	eng.Spawn("rogue-cq-drain", func(pr *sim.Proc) {
		for {
			rogueCQ.Wait(pr)
			rogueCQ.Poll(0)
		}
	})
	active := rogue
	if capActive && len(rogue) > 2 {
		// DNE-managed: all but two QPs are shadows and carry no traffic.
		active = rogue[:2]
	}
	if len(active) > 0 {
		eng.Spawn("rogue-blaster", func(pr *sim.Proc) {
			i := 0
			for {
				q := active[i%len(active)]
				q.PostWrite(mempool.Descriptor{Tenant: "rogue", Len: 64, Buf: slot}, rdma.RemoteBuf{MR: rogueMR, Buf: slot})
				i++
				pr.Sleep(2 * time.Microsecond)
			}
		})
	}

	// Victim: sequential 1KB echoes, both ends reposting receive buffers.
	post := func(pool *mempool.Pool, srq *rdma.SRQ, n int) {
		for i := 0; i < n; i++ {
			b, err := pool.Get("rq")
			if err != nil {
				return
			}
			srq.PostRecv(mempool.Descriptor{Tenant: "victim", Buf: b})
		}
	}
	post(poolA, srqA, 64)
	post(poolB, srqB, 64)
	eng.Spawn("victim-server", func(pr *sim.Proc) {
		for {
			cqB.Wait(pr)
			for _, e := range cqB.Poll(0) {
				switch e.Op {
				case rdma.OpRecv:
					if err := poolB.Transfer(e.Desc.Buf, "rq", "srv"); err != nil {
						panic(err)
					}
					qb.PostSend(mempool.Descriptor{Tenant: "victim", Buf: e.Desc.Buf, Len: e.Bytes})
				case rdma.OpSend:
					// Echo delivered: recycle and repost a receive buffer.
					if err := poolB.Put(e.Desc.Buf, "srv"); err != nil {
						panic(err)
					}
					post(poolB, srqB, 1)
				}
			}
		}
	})
	var count uint64
	var rttSum time.Duration
	eng.Spawn("victim-client", func(pr *sim.Proc) {
		for {
			src, err := poolA.Get("cli")
			if err != nil {
				pr.Sleep(10 * time.Microsecond)
				continue
			}
			start := pr.Now()
			qa.PostSend(mempool.Descriptor{Tenant: "victim", Buf: src, Len: 1024})
			gotReply := false
			for !gotReply {
				cqA.Wait(pr)
				for _, e := range cqA.Poll(0) {
					switch e.Op {
					case rdma.OpRecv:
						if err := poolA.Transfer(e.Desc.Buf, "rq", "cli"); err != nil {
							panic(err)
						}
						_ = poolA.Put(e.Desc.Buf, "cli")
						post(poolA, srqA, 1)
						gotReply = true
					case rdma.OpSend:
						_ = poolA.Put(e.Desc.Buf, "cli")
					}
				}
			}
			count++
			rttSum += pr.Now() - start
		}
	})
	eng.RunUntil(o.scale(5*time.Millisecond, 20*time.Millisecond))
	if count == 0 {
		return 0
	}
	return rttSum / time.Duration(count)
}

// AblIsolation runs the rogue-tenant comparison. Each scenario builds its
// own params so the three engines can run on separate workers.
func AblIsolation(o Opts) *AblIsolationResult {
	scenarios := []struct {
		rogueQPs  int
		capActive bool
	}{{0, false}, {512, true}, {512, false}}
	lats := make([]time.Duration, len(scenarios))
	o.forEach(len(scenarios), func(i int) {
		p := params.Default()
		p.NICCacheActiveQPs = 64 // a small ICM cache makes the attack visible
		lats[i] = runVictimEcho(o, p, scenarios[i].rogueQPs, scenarios[i].capActive)
	})
	return &AblIsolationResult{BaselineLat: lats[0], ManagedLat: lats[1], RogueLat: lats[2]}
}

// RunAblIsolation adapts AblIsolation to the registry.
func RunAblIsolation(o Opts) []*Table {
	res := AblIsolation(o)
	return []*Table{{
		Title:   "Ablation — active-QP management vs a rogue tenant (§2.1, §3.7)",
		Columns: []string{"scenario", "victim echo RTT"},
		Rows: [][]string{
			{"no rogue tenant", fLat(res.BaselineLat)},
			{"rogue w/ 512 QPs, DNE shadow cap", fLat(res.ManagedLat)},
			{"rogue w/ 512 QPs, direct access (VF-style)", fLat(res.RogueLat)},
		},
		Note: "SR-IOV VFs still share the RNIC's caches; only the DNE's cap contains the thrash",
	}}
}

// ---------------------------------------------------------------------
// abl-replenish: RQ replenishment period (§3.5.2) vs RNR stalls.
// ---------------------------------------------------------------------

// AblReplenishRow is one replenish-period measurement.
type AblReplenishRow struct {
	Period  time.Duration
	RPS     float64
	MeanLat time.Duration
	RNR     uint64
}

// AblReplenish sweeps the core thread's replenish period under concurrent
// load with a small pre-posted ring.
func AblReplenish(o Opts) []AblReplenishRow {
	periods := []time.Duration{10 * time.Microsecond, 50 * time.Microsecond, 500 * time.Microsecond, 2 * time.Millisecond}
	rows := make([]AblReplenishRow, len(periods))
	o.forEach(len(periods), func(i int) {
		period := periods[i]
		p := params.Default()
		r := newDNERig(p, o.Seed, dne.OffPath, dne.SchedDWRR, []tenantSpec{{name: "t", weight: 1}},
			func(cfg *dne.Config) {
				cfg.ReplenishEvery = period
				cfg.InitialRQ = 48
			})
		cliPort := r.ea.AttachFunction("cli-t", "t")
		srvPort := r.eb.AttachFunction("srv-t", "t")
		r.spawnEchoServer("t", srvPort)
		stats := r.spawnEchoClients("t", cliPort, 32, 1024, nil)
		rps, lat := measureEcho(r, stats, o.scale(10*time.Millisecond, 50*time.Millisecond))
		rows[i] = AblReplenishRow{
			Period:  period,
			RPS:     rps,
			MeanLat: lat,
			RNR:     r.eb.SRQ("t").RNREvents(),
		}
		r.eng.Stop()
	})
	return rows
}

// RunAblReplenish adapts AblReplenish to the registry.
func RunAblReplenish(o Opts) []*Table {
	t := &Table{
		Title:   "Ablation — RQ replenishment period (§3.5.2), 48-buffer ring, 32 in flight",
		Columns: []string{"replenish every", "RPS", "mean latency", "RNR stalls"},
		Note:    "a lazy core thread starves the SRQ: receivers go not-ready and RC retries eat the gains",
	}
	for _, row := range AblReplenish(o) {
		t.Rows = append(t.Rows, []string{
			row.Period.String(), fRPS(row.RPS), fLat(row.MeanLat), fmt.Sprintf("%d", row.RNR),
		})
	}
	return []*Table{t}
}

// ---------------------------------------------------------------------
// abl-quantum: DWRR quantum size vs fairness granularity.
// ---------------------------------------------------------------------

// AblQuantumRow is one quantum measurement.
type AblQuantumRow struct {
	Quantum int
	// MaxShareErr is the largest relative deviation from the entitled
	// 6:1:2 shares during full contention.
	MaxShareErr float64
	Aggregate   float64
}

// AblQuantum sweeps the DWRR byte quantum.
func AblQuantum(o Opts) []AblQuantumRow {
	quanta := []int{256, 2048, 16384, 262144}
	total := o.scale(400*time.Millisecond, 3*time.Second)
	rows := make([]AblQuantumRow, len(quanta))
	o.forEach(len(quanta), func(qi int) {
		q := quanta[qi]
		p := params.Default()
		p.DNEExtraPerMsg = 4600 * time.Nanosecond
		specs := []tenantSpec{{"t1", 6}, {"t2", 1}, {"t3", 2}}
		r := newDNERig(p, o.Seed, dne.OffPath, dne.SchedDWRR, specs,
			func(cfg *dne.Config) { cfg.QuantumUnit = q })
		stats := map[string]*echoClientStats{}
		for i, ts := range specs {
			cliPort := r.ea.AttachFunction("cli-"+ts.name, ts.name)
			srvPort := r.eb.AttachFunction("srv-"+ts.name, ts.name)
			r.spawnEchoServer(ts.name, srvPort)
			stats[ts.name] = r.spawnEchoClients(ts.name, cliPort, []int{48, 24, 32}[i], 1024, nil)
		}
		r.eng.RunUntil(p.QPSetupTime + total/4) // warmup
		base := map[string]uint64{}
		for name, s := range stats {
			base[name] = s.count
		}
		start := r.eng.Now()
		r.eng.RunUntil(start + total/2)
		el := (r.eng.Now() - start).Seconds()
		rates := map[string]float64{}
		var agg float64
		// Sum in spec order: float addition over a map walk would be
		// nondeterministic.
		for _, ts := range specs {
			s := stats[ts.name]
			rates[ts.name] = float64(s.count-base[ts.name]) / el
			agg += rates[ts.name]
		}
		want := map[string]float64{"t1": 6.0 / 9, "t2": 1.0 / 9, "t3": 2.0 / 9}
		maxErr := 0.0
		for name, w := range want {
			err := rates[name]/agg/w - 1
			if err < 0 {
				err = -err
			}
			if err > maxErr {
				maxErr = err
			}
		}
		rows[qi] = AblQuantumRow{Quantum: q, MaxShareErr: maxErr, Aggregate: agg}
		r.eng.Stop()
	})
	return rows
}

// RunAblQuantum adapts AblQuantum to the registry.
func RunAblQuantum(o Opts) []*Table {
	t := &Table{
		Title:   "Ablation — DWRR quantum size, 3 tenants weighted 6:1:2",
		Columns: []string{"quantum", "max share error", "aggregate RPS"},
		Note:    "moderate quanta hold exact fairness; oversized quanta (here 256KB x weight) let one tenant monopolize entire measurement windows",
	}
	for _, row := range AblQuantum(o) {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dB", row.Quantum),
			fmt.Sprintf("%.1f%%", 100*row.MaxShareErr),
			fRPS(row.Aggregate),
		})
	}
	return []*Table{t}
}

// ---------------------------------------------------------------------
// abl-hugepage: hugepage pools vs 4K pages (MTT pressure, §3.4).
// ---------------------------------------------------------------------

// AblHugepageResult compares echo performance for the two page sizes.
type AblHugepageResult struct {
	HugeRPS, SmallRPS float64
	HugeLat, SmallLat time.Duration
	HugePages         int
	SmallPages        int
}

// AblHugepage runs the comparison with 64 MB pools.
func AblHugepage(o Opts) *AblHugepageResult {
	run := func(pageSize int) (float64, time.Duration, int) {
		p := params.Default()
		p.HugepageSize = pageSize
		rps, lat := runDNEEcho(p, o.Seed, dne.OffPath, 1024, 4, o.scale(10*time.Millisecond, 50*time.Millisecond), nil)
		pages := mempool.NewPool("probe", 16384, 8192, pageSize).Hugepages()
		return rps, lat, pages
	}
	res := &AblHugepageResult{}
	o.forEach(2, func(i int) {
		if i == 0 {
			res.HugeRPS, res.HugeLat, res.HugePages = run(2 << 20)
		} else {
			res.SmallRPS, res.SmallLat, res.SmallPages = run(4 << 10)
		}
	})
	return res
}

// RunAblHugepage adapts AblHugepage to the registry.
func RunAblHugepage(o Opts) []*Table {
	res := AblHugepage(o)
	return []*Table{{
		Title:   "Ablation — hugepage vs 4K-page pools (MTT pressure, §3.4)",
		Columns: []string{"page size", "MTT entries/pool", "RPS", "mean latency"},
		Rows: [][]string{
			{"2MB hugepages", fmt.Sprintf("%d", res.HugePages), fRPS(res.HugeRPS), fLat(res.HugeLat)},
			{"4KB pages", fmt.Sprintf("%d", res.SmallPages), fRPS(res.SmallRPS), fLat(res.SmallLat)},
		},
		Note: "4K pages overflow the RNIC's translation cache; every WR pays the miss",
	}}
}

// ---------------------------------------------------------------------
// abl-keepwarm: keep-warm policy vs cold starts (§3.7).
// ---------------------------------------------------------------------

// AblKeepWarmRow is one keep-warm measurement.
type AblKeepWarmRow struct {
	KeepWarm   time.Duration
	ColdStarts uint64
	MeanLat    time.Duration
}

// AblKeepWarm drives sparse traffic at a cold-startable function under
// different keep-warm windows.
func AblKeepWarm(o Opts) []AblKeepWarmRow {
	windows := []time.Duration{0, 5 * time.Millisecond, 50 * time.Millisecond}
	rows := make([]AblKeepWarmRow, len(windows))
	o.forEach(len(windows), func(wi int) {
		w := windows[wi]
		cfg := core.Config{
			System: core.NadinoDNE,
			Nodes:  []string{"node1", "node2"},
			Functions: []core.FunctionSpec{{
				Name: "fn", Node: "node1", Service: 20 * time.Microsecond,
				Workers: 2, ColdStart: 5 * time.Millisecond, KeepWarm: w,
			}},
			Chains: []core.ChainSpec{{Name: "hit", Entry: "fn", ReqBytes: 128, RespBytes: 128}},
			Seed:   o.Seed,
		}
		c := core.NewCluster(cfg)
		c.Eng.Spawn("client", func(pr *sim.Proc) {
			c.WaitReady(pr)
			respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
			for i := 0; i < 20; i++ {
				c.SubmitChain("hit", 0, func(r ingress.Response) { respQ.TryPut(r) })
				respQ.Get(pr)
				pr.Sleep(10 * time.Millisecond)
			}
		})
		c.Eng.RunUntil(2 * time.Second)
		rows[wi] = AblKeepWarmRow{
			KeepWarm:   w,
			ColdStarts: c.ColdStarts(),
			MeanLat:    c.ChainLatency["hit"].Mean(),
		}
		c.Eng.Stop()
	})
	return rows
}

// RunAblKeepWarm adapts AblKeepWarm to the registry.
func RunAblKeepWarm(o Opts) []*Table {
	t := &Table{
		Title:   "Ablation — keep-warm policy vs cold starts (§3.7), 10ms request gaps",
		Columns: []string{"keep-warm window", "cold starts", "mean latency"},
		Note:    "NADINO adopts SPRIGHT's keep-warm; the data plane cannot hide a 5ms container boot",
	}
	for _, row := range AblKeepWarm(o) {
		kw := row.KeepWarm.String()
		if row.KeepWarm == 0 {
			kw = "none (always cold)"
		}
		t.Rows = append(t.Rows, []string{kw, fmt.Sprintf("%d", row.ColdStarts), fLat(row.MeanLat)})
	}
	return []*Table{t}
}

// ---------------------------------------------------------------------
// abl-fanout: sequential calls vs DAG-style parallel fan-out (§3.5).
// ---------------------------------------------------------------------

// AblFanoutResult compares the two call styles on the same chain.
type AblFanoutResult struct {
	SeqLat, ParLat time.Duration
	Speedup        float64
}

// AblFanout measures a 3-way fan-out chain both ways.
func AblFanout(o Opts) *AblFanoutResult {
	run := func(async bool) time.Duration {
		call := func(callee string) core.Call {
			return core.Call{Callee: callee, ReqBytes: 512, RespBytes: 512, Async: async}
		}
		cfg := core.Config{
			System: core.NadinoDNE,
			Nodes:  []string{"node1", "node2"},
			Functions: []core.FunctionSpec{
				{Name: "entry", Node: "node1", Service: 10 * time.Microsecond},
				{Name: "s1", Node: "node2", Service: 100 * time.Microsecond, Workers: 4},
				{Name: "s2", Node: "node2", Service: 100 * time.Microsecond, Workers: 4},
				{Name: "s3", Node: "node2", Service: 100 * time.Microsecond, Workers: 4},
			},
			Chains: []core.ChainSpec{{
				Name: "fan", Entry: "entry", ReqBytes: 256, RespBytes: 256,
				Calls: []core.Call{call("s1"), call("s2"), call("s3")},
			}},
			Seed: o.Seed,
		}
		c := core.NewCluster(cfg)
		defer c.Eng.Stop()
		c.Eng.Spawn("client", func(pr *sim.Proc) {
			c.WaitReady(pr)
			respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
			for i := 0; i < 100; i++ {
				c.SubmitChain("fan", 0, func(r ingress.Response) { respQ.TryPut(r) })
				respQ.Get(pr)
			}
		})
		c.Eng.RunUntil(2 * time.Second)
		return c.ChainLatency["fan"].Mean()
	}
	lats := make([]time.Duration, 2)
	o.forEach(2, func(i int) {
		lats[i] = run(i == 1) // 0 = sequential, 1 = async fan-out
	})
	res := &AblFanoutResult{SeqLat: lats[0], ParLat: lats[1]}
	res.Speedup = float64(res.SeqLat) / float64(res.ParLat)
	return res
}

// RunAblFanout adapts AblFanout to the registry.
func RunAblFanout(o Opts) []*Table {
	res := AblFanout(o)
	return []*Table{{
		Title:   "Ablation — sequential calls vs DAG fan-out (§3.5), 3x100us backends",
		Columns: []string{"call style", "chain latency"},
		Rows: [][]string{
			{"sequential", fLat(res.SeqLat)},
			{"parallel fan-out", fLat(res.ParLat)},
			{"speedup", fRatio(res.Speedup)},
		},
		Note: "the I/O library's DAG layer overlaps independent backends' service times",
	}}
}

// ---------------------------------------------------------------------
// abl-crosstenant: same-tenant zero copy vs cross-tenant sidecar copies.
// ---------------------------------------------------------------------

// AblCrossTenantResult compares latency across the tenant boundary.
type AblCrossTenantResult struct {
	SameLat, CrossLat time.Duration
	Copies            uint64
}

// AblCrossTenant builds a two-tenant cluster and measures twin chains.
func AblCrossTenant(o Opts) *AblCrossTenantResult {
	mk := func(crossTenant bool) (time.Duration, uint64) {
		backTenant := "tenant_a"
		if crossTenant {
			backTenant = "tenant_b"
		}
		cfg := core.Config{
			System:  core.NadinoDNE,
			Tenant:  "tenant_a",
			Tenants: []core.TenantSpec{{Name: "tenant_b", Weight: 1}},
			Nodes:   []string{"node1", "node2"},
			Functions: []core.FunctionSpec{
				{Name: "front", Tenant: "tenant_a", Node: "node1", Service: 10 * time.Microsecond},
				{Name: "back", Tenant: backTenant, Node: "node2", Service: 10 * time.Microsecond},
			},
			Chains: []core.ChainSpec{{
				Name: "chain", Tenant: "tenant_a", Entry: "front",
				ReqBytes: 512, RespBytes: 512,
				Calls: []core.Call{{Callee: "back", ReqBytes: 4096, RespBytes: 4096}},
			}},
			Seed: o.Seed,
		}
		c := core.NewCluster(cfg)
		defer c.Eng.Stop()
		c.Eng.Spawn("client", func(pr *sim.Proc) {
			c.WaitReady(pr)
			respQ := sim.NewQueue[ingress.Response](c.Eng, 0)
			for i := 0; i < 200; i++ {
				c.SubmitChain("chain", 0, func(r ingress.Response) { respQ.TryPut(r) })
				respQ.Get(pr)
			}
		})
		c.Eng.RunUntil(2 * time.Second)
		return c.ChainLatency["chain"].Mean(), c.CrossTenantCopies()
	}
	lats := make([]time.Duration, 2)
	var copies uint64
	o.forEach(2, func(i int) {
		if i == 0 {
			lats[0], _ = mk(false)
		} else {
			lats[1], copies = mk(true)
		}
	})
	return &AblCrossTenantResult{SameLat: lats[0], CrossLat: lats[1], Copies: copies}
}

// RunAblCrossTenant adapts AblCrossTenant to the registry.
func RunAblCrossTenant(o Opts) []*Table {
	res := AblCrossTenant(o)
	return []*Table{{
		Title:   "Ablation — same-tenant zero copy vs cross-tenant sidecar copies (§3.1)",
		Columns: []string{"boundary", "chain latency", "sidecar copies"},
		Rows: [][]string{
			{"within one tenant", fLat(res.SameLat), "0"},
			{"across tenants", fLat(res.CrossLat), fmt.Sprintf("%d", res.Copies)},
		},
		Note: "trust stops at the tenant boundary: crossing it reintroduces the copies zero-copy removed",
	}}
}

// Ablations returns the ablation registry entries.
func Ablations() []Experiment {
	return []Experiment{
		{ID: "abl-connpool", Title: "Ablation — RC connection pooling", Run: RunAblConnPool},
		{ID: "abl-isolation", Title: "Ablation — active-QP cap vs rogue tenant", Run: RunAblIsolation},
		{ID: "abl-replenish", Title: "Ablation — RQ replenishment period", Run: RunAblReplenish},
		{ID: "abl-quantum", Title: "Ablation — DWRR quantum size", Run: RunAblQuantum},
		{ID: "abl-hugepage", Title: "Ablation — hugepage vs 4K-page pools", Run: RunAblHugepage},
		{ID: "abl-keepwarm", Title: "Ablation — keep-warm vs cold starts", Run: RunAblKeepWarm},
		{ID: "abl-fanout", Title: "Ablation — sequential vs parallel fan-out", Run: RunAblFanout},
		{ID: "abl-crosstenant", Title: "Ablation — cross-tenant copy cost", Run: RunAblCrossTenant},
	}
}
