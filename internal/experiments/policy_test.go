package experiments

import (
	"testing"
	"time"

	"nadino/internal/dne"
	"nadino/internal/params"
)

func TestEngineWithPrioritySchedulerFavorsGold(t *testing.T) {
	// Two tenants saturate a capped engine: under strict priority the
	// high-weight tenant takes (nearly) everything — the user-customized
	// DNE policy §4.2 alludes to.
	p := params.Default()
	p.DNEExtraPerMsg = 4600 * time.Nanosecond
	r := newDNERig(p, 11, dne.OffPath, dne.SchedPriority,
		[]tenantSpec{{"gold", 10}, {"bronze", 1}})
	defer r.eng.Stop()
	stats := map[string]*echoClientStats{}
	for _, ts := range []string{"gold", "bronze"} {
		cliPort := r.ea.AttachFunction("cli-"+ts, ts)
		srvPort := r.eb.AttachFunction("srv-"+ts, ts)
		r.spawnEchoServer(ts, srvPort)
		stats[ts] = r.spawnEchoClients(ts, cliPort, 24, 1024, nil)
	}
	r.eng.RunUntil(r.p.QPSetupTime + 60*time.Millisecond)
	gold, bronze := stats["gold"].count, stats["bronze"].count
	if gold < bronze*4 {
		t.Fatalf("strict priority did not favor gold: gold=%d bronze=%d", gold, bronze)
	}
}

func TestTokenBucketRateLimit(t *testing.T) {
	p := params.Default()
	r := newDNERig(p, 12, dne.OffPath, dne.SchedDWRR, []tenantSpec{{"limited", 1}})
	defer r.eng.Stop()
	r.ea.SetRateLimit("limited", 10000) // 10K RPS cap
	cliPort := r.ea.AttachFunction("cli-limited", "limited")
	srvPort := r.eb.AttachFunction("srv-limited", "limited")
	r.spawnEchoServer("limited", srvPort)
	stats := r.spawnEchoClients("limited", cliPort, 16, 1024, nil)
	r.eng.RunUntil(r.p.QPSetupTime + 100*time.Millisecond)
	rate := float64(stats.count) / 0.1
	if rate > 12500 {
		t.Fatalf("rate limit leaked: %.0f RPS against a 10K cap", rate)
	}
	if rate < 7000 {
		t.Fatalf("rate limit over-throttled: %.0f RPS against a 10K cap", rate)
	}
	if r.ea.RateDeferred() == 0 {
		t.Fatal("no descriptors were rate-deferred")
	}
	// Removing the cap restores full throughput.
	r.ea.SetRateLimit("limited", 0)
	base := stats.count
	start := r.eng.Now()
	r.eng.RunUntil(start + 50*time.Millisecond)
	uncapped := float64(stats.count-base) / (r.eng.Now() - start).Seconds()
	if uncapped < 20000 {
		t.Fatalf("uncapped rate only %.0f RPS", uncapped)
	}
}
