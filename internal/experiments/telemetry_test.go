package experiments

import (
	"bytes"
	"testing"

	"nadino/internal/telemetry"
)

// renderTelemetry runs res-storm with telemetry on and renders every sunk
// scraper's full export (CSV + Prometheus) into one byte stream, in sink
// order.
func renderTelemetry(t *testing.T, o Opts) []byte {
	t.Helper()
	var buf bytes.Buffer
	o.Telemetry = true
	o.TelemetrySink = func(name string, sc *telemetry.Scraper) {
		buf.WriteString("== " + name + " ==\n")
		if err := telemetry.WriteCSV(&buf, sc); err != nil {
			t.Fatal(err)
		}
		if err := telemetry.WritePrometheus(&buf, sc); err != nil {
			t.Fatal(err)
		}
	}
	for _, tb := range RunResStorm(o) {
		tb.Print(&buf)
	}
	return buf.Bytes()
}

// TestTelemetryCaptures asserts the scraper actually observed the run: the
// export names both profiles and carries non-trivial series data.
func TestTelemetryCaptures(t *testing.T) {
	out := renderTelemetry(t, resOpts)
	for _, want := range []string{
		"== res-storm/control ==",
		"== res-storm/storm ==",
		"tenant.goodput{tenant=tenant1}",
		"dne.worker_util{node=nodeA}",
		"rdma.icm_hit_rate{node=nodeB}",
		"tenant.rtt.p99{tenant=tenant1}",
		"nadino_tenant_goodput{",
		"echo RTT merged across runs",
	} {
		if !bytes.Contains(out, []byte(want)) {
			t.Fatalf("telemetry export missing %q", want)
		}
	}
}

// TestTelemetryDeterminism is the telemetry determinism fence: for a fixed
// seed the full export bytes must be identical run-to-run AND identical
// between sequential and parallel sweep execution — telemetry must never
// force workers=1 the way tracing does.
func TestTelemetryDeterminism(t *testing.T) {
	a := renderTelemetry(t, resOpts)
	b := renderTelemetry(t, resOpts)
	if !bytes.Equal(a, b) {
		d := firstDiff(a, b)
		t.Fatalf("repeated telemetry run diverged at byte %d:\n1st: %q\n2nd: %q", d, excerpt(a, d), excerpt(b, d))
	}
	par := resOpts
	par.Parallel = 4
	c := renderTelemetry(t, par)
	if !bytes.Equal(a, c) {
		d := firstDiff(a, c)
		t.Fatalf("parallel telemetry run diverged at byte %d:\nseq: %q\npar: %q", d, excerpt(a, d), excerpt(c, d))
	}
}
