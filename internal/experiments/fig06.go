package experiments

import (
	"fmt"
	"time"

	"nadino/internal/dne"
	"nadino/internal/fabric"
	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/rdma"
	"nadino/internal/sim"
	"nadino/internal/trace"
)

// Fig06Row is one (setup, payload) measurement.
type Fig06Row struct {
	Setup   string
	Payload int
	RPS     float64
	MeanLat time.Duration
}

// Fig06Result holds the isolation-cost comparison (§3.2.1).
type Fig06Result struct {
	Rows []Fig06Row
}

// runNativeEcho measures an echo pair that uses two-sided verbs directly
// over a single RC QP — the paper's "native RDMA" baselines, with the
// functions' cores running at coreSpeed (host vs wimpy DPU). A non-nil
// tracer records per-stage spans for requests issued after warmup.
func runNativeEcho(p *params.Params, seed int64, coreSpeed float64, payload, clients int, dur time.Duration, tracer *trace.Tracer) (float64, time.Duration) {
	eng := sim.NewEngine(seed)
	defer eng.Stop()
	tracer.SetClock(eng.Now)
	// live is armed only after warmup so the trace covers the measured
	// steady-state window (closures read it at request-issue time).
	var live *trace.Tracer
	net := fabric.New(eng, p)
	ra := rdma.NewRNIC(eng, p, "nodeA", net)
	rb := rdma.NewRNIC(eng, p, "nodeB", net)
	poolA := mempool.NewPool("t", 16384, 4096, p.HugepageSize)
	poolB := mempool.NewPool("t", 16384, 4096, p.HugepageSize)
	srqA, srqB := rdma.NewSRQ("t"), rdma.NewSRQ("t")
	cqA, cqB := rdma.NewCQ(eng), rdma.NewCQ(eng)
	qa, qb := rdma.Connect(ra, rb, "t", srqA, srqB, cqA, cqB)
	coreA := sim.NewProcessor(eng, "cliCore", coreSpeed)
	coreB := sim.NewProcessor(eng, "srvCore", coreSpeed)

	post := func(pool *mempool.Pool, srq *rdma.SRQ, n int) {
		for i := 0; i < n; i++ {
			b, err := pool.Get("rq")
			if err != nil {
				panic(err)
			}
			srq.PostRecv(mempool.Descriptor{Tenant: "t", Buf: b})
		}
	}
	post(poolA, srqA, 256)
	post(poolB, srqB, 256)

	// Server: echo every receive, recycling and reposting buffers.
	eng.Spawn("server", func(pr *sim.Proc) {
		for {
			cqB.Wait(pr)
			for _, e := range cqB.Poll(0) {
				switch e.Op {
				case rdma.OpRecv:
					e.Desc.Trace.EndStage(trace.StageRDMACQ)
					sp := e.Desc.Trace.Begin("srv.proc", "srv")
					coreB.Exec(pr, p.VerbsPostCost/2)
					if err := poolB.Transfer(e.Desc.Buf, "rq", "srv"); err != nil {
						panic(err)
					}
					coreB.Exec(pr, p.VerbsPostCost)
					sp.End()
					qb.PostSend(mempool.Descriptor{Tenant: "t", Buf: e.Desc.Buf, Len: e.Bytes, Seq: e.Desc.Seq, Trace: e.Desc.Trace})
				case rdma.OpSend:
					e.Desc.Trace.EndStage(trace.StageRDMAAck)
					sp := e.Desc.Trace.BeginDetail("srv.ack", "srv")
					coreB.Exec(pr, p.VerbsPostCost/2)
					sp.End()
					if err := poolB.Put(e.Desc.Buf, "srv"); err != nil {
						panic(err)
					}
					post(poolB, srqB, 1)
				}
			}
		}
	})

	var count uint64
	var rttSum time.Duration
	waiters := make(map[uint64]*sim.Queue[struct{}])
	// Client-side completion demux.
	eng.Spawn("cli-demux", func(pr *sim.Proc) {
		for {
			cqA.Wait(pr)
			for _, e := range cqA.Poll(0) {
				switch e.Op {
				case rdma.OpRecv:
					e.Desc.Trace.EndStage(trace.StageRDMACQ)
					sp := e.Desc.Trace.Begin("cli.proc", "cli")
					coreA.Exec(pr, p.VerbsPostCost/2)
					sp.End()
					if w, ok := waiters[e.Desc.Seq]; ok {
						delete(waiters, e.Desc.Seq)
						w.TryPut(struct{}{})
					}
					if err := poolA.Transfer(e.Desc.Buf, "rq", "cli"); err != nil {
						panic(err)
					}
					if err := poolA.Put(e.Desc.Buf, "cli"); err != nil {
						panic(err)
					}
					post(poolA, srqA, 1)
				case rdma.OpSend:
					e.Desc.Trace.EndStage(trace.StageRDMAAck)
					sp := e.Desc.Trace.BeginDetail("cli.ack", "cli")
					coreA.Exec(pr, p.VerbsPostCost/2)
					sp.End()
					if err := poolA.Put(e.Desc.Buf, "cli"); err != nil {
						panic(err)
					}
				}
			}
		}
	})
	var seq uint64
	for i := 0; i < clients; i++ {
		eng.Spawn(fmt.Sprintf("cli-%d", i), func(pr *sim.Proc) {
			for {
				buf, err := poolA.Get("cli")
				if err != nil {
					pr.Sleep(20 * time.Microsecond)
					continue
				}
				seq++
				id := seq
				w := sim.NewQueue[struct{}](eng, 1)
				waiters[id] = w
				start := pr.Now()
				req := live.StartRequest("echo/native")
				sp := req.Begin("cli.post", "cli")
				coreA.Exec(pr, p.VerbsPostCost)
				sp.End()
				qa.PostSend(mempool.Descriptor{Tenant: "t", Buf: buf, Len: payload, Seq: id, Trace: req})
				w.Get(pr)
				req.Finish()
				count++
				rttSum += pr.Now() - start
			}
		})
	}
	// Warmup, then measure (tracing only the measured window).
	eng.RunUntil(2 * time.Millisecond)
	live = tracer
	base, baseRTT := count, rttSum
	start := eng.Now()
	eng.RunUntil(start + dur)
	n := count - base
	if n == 0 {
		return 0, 0
	}
	return float64(n) / (eng.Now() - start).Seconds(), (rttSum - baseRTT) / time.Duration(n)
}

// runDNEEcho measures the echo pair behind the full DNE isolation layer. A
// non-nil tracer records per-stage spans for requests issued after warmup.
func runDNEEcho(p *params.Params, seed int64, mode dne.Mode, payload, clients int, dur time.Duration, tracer *trace.Tracer) (float64, time.Duration) {
	r := newDNERig(p, seed, mode, dne.SchedDWRR, []tenantSpec{{name: "t", weight: 1}})
	defer r.eng.Stop()
	tracer.SetClock(r.eng.Now)
	r.tracer = tracer
	cliPort := r.ea.AttachFunction("cli-t", "t")
	srvPort := r.eb.AttachFunction("srv-t", "t")
	r.spawnEchoServer("t", srvPort)
	stats := r.spawnEchoClients("t", cliPort, clients, payload, nil)
	rps, lat := measureEcho(r, stats, dur)
	return rps, lat
}

// Fig06Setups lists the compared configurations.
var Fig06Setups = []string{"NADINO DNE", "native RDMA (CPU)", "native RDMA (DPU)"}

// Fig06 runs the §3.2.1 isolation-cost microbenchmark. With o.Trace set it
// also hands one per-(setup, payload) latency-attribution tracer to
// o.TraceSink. Sweep points are independent engines, sharded by o.Parallel.
func Fig06(o Opts) *Fig06Result {
	payloads := o.pick([]int{64, 4096}, []int{64, 512, 1024, 4096})
	dur := o.scale(20*time.Millisecond, 200*time.Millisecond)
	const clients = 4
	type job struct {
		setup   string
		payload int
	}
	var jobs []job
	for _, pl := range payloads {
		for _, setup := range Fig06Setups {
			jobs = append(jobs, job{setup: setup, payload: pl})
		}
	}
	rows := make([]Fig06Row, len(jobs))
	tracers := make([]*trace.Tracer, len(jobs))
	o.forEach(len(jobs), func(i int) {
		j := jobs[i]
		p := params.Default()
		var tr *trace.Tracer
		if o.Trace {
			tr = trace.New(nil) // clock attached by the echo runner
		}
		var rps float64
		var lat time.Duration
		switch j.setup {
		case "NADINO DNE":
			rps, lat = runDNEEcho(p, o.Seed, dne.OffPath, j.payload, clients, dur, tr)
		case "native RDMA (CPU)":
			rps, lat = runNativeEcho(p, o.Seed, p.HostCoreSpeed, j.payload, clients, dur, tr)
		case "native RDMA (DPU)":
			rps, lat = runNativeEcho(p, o.Seed, p.DPUNetSpeed, j.payload, clients, dur, tr)
		}
		rows[i] = Fig06Row{Setup: j.setup, Payload: j.payload, RPS: rps, MeanLat: lat}
		tracers[i] = tr
	})
	for i, tr := range tracers {
		if tr != nil && o.TraceSink != nil {
			o.TraceSink(fmt.Sprintf("%s/%dB", jobs[i].setup, jobs[i].payload), tr)
		}
	}
	return &Fig06Result{Rows: rows}
}

// Get returns the row for (setup, payload).
func (r *Fig06Result) Get(setup string, payload int) (Fig06Row, bool) {
	for _, row := range r.Rows {
		if row.Setup == setup && row.Payload == payload {
			return row, true
		}
	}
	return Fig06Row{}, false
}

// RunFig06 adapts Fig06 to the experiment registry.
func RunFig06(o Opts) []*Table {
	res := Fig06(o)
	t := &Table{
		Title:   "Fig. 6 — isolation cost of DNE (two-sided RDMA echo)",
		Columns: []string{"setup", "payload", "RPS", "mean latency"},
		Note:    "DNE adds a bounded isolation cost over native RDMA; wimpy-core penalty on verbs is minimal",
	}
	for _, row := range res.Rows {
		t.Rows = append(t.Rows, []string{row.Setup, fmt.Sprintf("%dB", row.Payload), fRPS(row.RPS), fLat(row.MeanLat)})
	}
	return []*Table{t}
}
