package experiments

import (
	"testing"
	"time"
)

// The resilience benchmarks archive the headline res-* numbers as custom
// benchmark units (b.ReportMetric), which `make bench-res` pipes through
// cmd/benchjson into BENCH_res.json for cross-commit comparison. They are
// meant to run with -benchtime 1x: each iteration is a full quick-mode
// experiment (~seconds), and the metrics are deterministic for the fixed
// seed, so one iteration is exact.

func BenchmarkResStorm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ResStorm(resOpts)
		storm := res[1]
		b.ReportMetric(storm.Ratio, "recovery_ratio")
		b.ReportMetric(float64(storm.Drops), "drops")
		b.ReportMetric(float64(storm.Repairs), "repairs")
	}
}

// BenchmarkResStormTelemetry is BenchmarkResStorm with the virtual-time
// scraper attached to both runs; the ns/op delta against BenchmarkResStorm
// is the scraper-on overhead (recorded in bench_results.txt).
func BenchmarkResStormTelemetry(b *testing.B) {
	o := resOpts
	o.Telemetry = true
	for i := 0; i < b.N; i++ {
		res := ResStorm(o)
		b.ReportMetric(res[1].Ratio, "recovery_ratio")
		b.ReportMetric(float64(len(res[1].Telem.Series())), "series")
	}
}

func BenchmarkResRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var worst time.Duration
		for _, r := range ResRecovery(resOpts) {
			if r.Recovered && r.RecoveryTime > worst {
				worst = r.RecoveryTime
			}
		}
		b.ReportMetric(float64(worst)/float64(time.Millisecond), "worst_recovery_ms")
	}
}

func BenchmarkResTenant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ResTenant(resOpts)
		b.ReportMetric(res[0].Retention, "fcfs_retention")
		b.ReportMetric(res[1].Retention, "dwrr_retention")
	}
}
