// Package ingress implements NADINO's cluster-wide ingress gateway (§3.6)
// and the two NGINX-based baselines of §4.1.3: the gateway terminates
// external HTTP/TCP connections and either converts payloads to RDMA at the
// cluster edge (NADINO) or proxies HTTP over TCP to the worker node, which
// must terminate TCP again ("deferred" conversion, Fig. 4).
//
// The gateway follows the paper's master-worker model: run-to-completion
// worker processes pinned to cores, RSS distribution of client connections,
// and a hysteresis autoscaler driven by refined (useful-work) CPU
// accounting.
package ingress

import (
	"fmt"
	"time"

	"nadino/internal/flightrec"
	"nadino/internal/metrics"
	"nadino/internal/params"
	"nadino/internal/ring"
	"nadino/internal/sim"
	"nadino/internal/speculate"
	"nadino/internal/trace"
	"nadino/internal/transport"
)

// Kind selects an ingress design.
type Kind int

// Ingress designs compared in Fig. 13/14.
const (
	// Nadino terminates client TCP with F-stack and converts to RDMA at
	// the edge — no TCP/IP processing inside the cluster.
	Nadino Kind = iota
	// FIngress is NGINX-on-F-stack proxying HTTP/TCP to the worker node.
	FIngress
	// KIngress is NGINX on the interrupt-driven kernel stack.
	KIngress
)

func (k Kind) String() string {
	switch k {
	case Nadino:
		return "NADINO-Ingress"
	case FIngress:
		return "F-Ingress"
	case KIngress:
		return "K-Ingress"
	}
	return "?"
}

// clientStack is the TCP stack the gateway uses toward external clients.
func (k Kind) clientStack() transport.Stack {
	if k == KIngress {
		return transport.Kernel
	}
	return transport.FStack
}

// Request is one external client HTTP request.
type Request struct {
	ID        uint64
	Client    int
	Chain     string // application chain to invoke (end-to-end experiments)
	Bytes     int
	RespBytes int
	Stamp     time.Duration
	// Reply delivers the response to the client (engine context), already
	// delayed by the external network.
	Reply func(Response)
	// Trace is the request's latency-attribution trace (nil when untraced).
	Trace *trace.Req
	// Clone overrides the gateway speculation policy's clone factor for
	// this request (0 defers to the policy). Hedge, when positive, forces
	// a hedged retry with that deadline floor even on a non-speculating
	// gateway — trace replays carry both per arrival.
	Clone int
	Hedge time.Duration
	// Group and Arm identify a cloned request's speculation group and arm
	// inside the backend; the gateway stamps them when it fires the arms.
	Group *speculate.Group
	Arm   int
}

// Response is the gateway's answer to a Request.
type Response struct {
	ID    uint64
	Bytes int
	Stamp time.Duration // original request stamp, for latency accounting
}

// Backend is whatever serves requests behind the gateway — the full
// simulated cluster in the end-to-end experiments, or an echo worker node
// in the microbenchmarks. done is invoked in engine context when the
// response arrives back at the ingress node.
type Backend interface {
	Forward(req Request, done func(Response))
}

// Config assembles a gateway.
type Config struct {
	Kind           Kind
	InitialWorkers int
	MaxWorkers     int
	AutoScale      bool
	// QueueCap bounds each worker's event queue; arrivals beyond it are
	// dropped (the overloaded K-Ingress disconnects clients, Fig. 14).
	QueueCap int
	// ExtraPerRequest is an additional per-request processing cost, used
	// to model heavier gateways (NightCore's built-in kernel gateway).
	ExtraPerRequest time.Duration
	// Speculate configures request cloning and hedged retries at the
	// ingress boundary (zero value = no speculation). Clone arms fan out
	// through the regular backend path — per-tenant pools, DWRR, gateway
	// credit windows — and losers are cancelled wherever they happen to
	// be when the first arm completes.
	Speculate speculate.Policy
}

// workerEvent flows through a worker's run-to-completion loop.
type workerEvent struct {
	isResp bool
	req    Request
	resp   Response
	// reply is the client callback carried through the response path.
	reply func(Response)
	tr    *trace.Req
}

// worker is one gateway worker process pinned to a core.
type worker struct {
	id     int
	actor  string // span label, precomputed (was a per-request Sprintf)
	core   *sim.Processor
	q      ring.Deque[workerEvent]
	wake   *sim.Signal
	active bool
	util   metrics.UtilSampler
}

// Gateway is the cluster-wide ingress.
type Gateway struct {
	eng     *sim.Engine
	p       *params.Params
	cfg     Config
	backend Backend

	workers []*worker
	nActive int

	pausedUntil      time.Duration
	injectedRestarts int

	served  *metrics.Meter
	dropped uint64
	nextID  uint64

	// Series populated when StartRecorder is called.
	RPSSeries     *metrics.Series
	CPUSeries     *metrics.Series // cores' worth of CPU in use
	WorkersSeries *metrics.Series
	scaleEvents   int

	// Flight recorder hook (optional): sheds and restart windows land in
	// the ring under this gateway's interned actor id.
	rec      *flightrec.Recorder
	recActor uint16

	// spec is the speculation controller, constructed when the policy
	// speculates (or lazily, on the first per-request override).
	spec *speculate.Spec
}

// SetFlightRecorder routes shed and restart events into r (nil detaches).
func (g *Gateway) SetFlightRecorder(r *flightrec.Recorder) {
	g.rec = r
	g.recActor = r.Actor("ingress")
}

// New assembles a gateway in front of backend.
func New(eng *sim.Engine, p *params.Params, cfg Config, backend Backend) *Gateway {
	if cfg.InitialWorkers <= 0 {
		cfg.InitialWorkers = 1
	}
	if cfg.MaxWorkers <= 0 {
		cfg.MaxWorkers = p.IngressMaxWorkers
	}
	g := &Gateway{
		eng:           eng,
		p:             p,
		cfg:           cfg,
		backend:       backend,
		served:        metrics.NewMeter(),
		RPSSeries:     metrics.NewSeries("rps"),
		CPUSeries:     metrics.NewSeries("cpu"),
		WorkersSeries: metrics.NewSeries("workers"),
	}
	if cfg.Speculate.Enabled() {
		g.spec = speculate.New(eng, cfg.Speculate)
	}
	for i := 0; i < cfg.InitialWorkers; i++ {
		g.addWorker()
	}
	if cfg.AutoScale {
		eng.Spawn("ingress-master", g.masterLoop)
	}
	return g
}

// Served reports total responses delivered.
func (g *Gateway) Served() uint64 { return g.served.Total() }

// Dropped reports requests discarded due to overload.
func (g *Gateway) Dropped() uint64 { return g.dropped }

// Meter exposes the response meter for windowed RPS measurements.
func (g *Gateway) Meter() *metrics.Meter { return g.served }

// ActiveWorkers reports the current worker count.
func (g *Gateway) ActiveWorkers() int { return g.nActive }

// QueueDepth reports events queued across all workers right now — the
// admission backlog telemetry samples.
func (g *Gateway) QueueDepth() int {
	depth := 0
	for _, w := range g.workers {
		depth += w.q.Len()
	}
	return depth
}

// ScaleEvents reports how many scale-up/-down transitions happened.
func (g *Gateway) ScaleEvents() int { return g.scaleEvents }

// Spec returns the speculation controller (nil when no request has ever
// speculated). Experiments read the spec.* counters off it.
func (g *Gateway) Spec() *speculate.Spec { return g.spec }

// InjectRestart pauses every worker for pause from now, reusing the worker
// restart window of §3.6 — the same stall a gateway redeploy causes.
// Injection hook for internal/chaos; overlapping injections extend, never
// shorten, the pause.
func (g *Gateway) InjectRestart(pause time.Duration) {
	until := g.eng.Now() + pause
	if until > g.pausedUntil {
		g.pausedUntil = until
	}
	g.injectedRestarts++
	if g.rec != nil {
		g.rec.Record(flightrec.KindIngressRestart, g.recActor, int64(pause), 0)
	}
}

// InjectedRestarts reports how many restarts were injected.
func (g *Gateway) InjectedRestarts() int { return g.injectedRestarts }

// addWorker spawns a new worker process on a fresh core.
func (g *Gateway) addWorker() {
	w := &worker{
		id:     len(g.workers),
		actor:  fmt.Sprintf("ingress-w%d", len(g.workers)),
		core:   sim.NewProcessor(g.eng, fmt.Sprintf("ingress-w%d", len(g.workers)), g.p.HostCoreSpeed),
		wake:   sim.NewSignal(g.eng),
		active: true,
	}
	g.workers = append(g.workers, w)
	g.nActive++
	g.eng.Spawn(fmt.Sprintf("ingress-worker-%d", w.id), func(pr *sim.Proc) { g.workerLoop(pr, w) })
}

// Submit delivers a client request to the gateway after the external
// network latency, steering it to a worker via RSS. Engine context.
func (g *Gateway) Submit(req Request) {
	g.nextID++
	req.ID = g.nextID
	t0 := g.eng.Now()
	g.eng.After(g.p.ExtNetOneWay+transport.TransitLatency(g.p, g.cfg.Kind.clientStack()), func() {
		req.Trace.Record(trace.StageNetClient, "extnet", t0, g.eng.Now())
		w := g.pick(req.Client)
		if g.cfg.Kind == KIngress {
			// Interrupt-driven input: the IRQ/softirq cost is paid on
			// arrival even if the request is later dropped — the receive
			// livelock ingredient.
			w.core.Charge(g.p.KernelTCPPerMsg / 4)
		}
		if g.cfg.QueueCap > 0 && w.q.Len() >= g.cfg.QueueCap {
			g.dropped++
			if g.rec != nil {
				g.rec.Record(flightrec.KindIngressDrop, g.recActor, int64(req.Client), 0)
			}
			return
		}
		req.Trace.BeginStage(trace.StageIngressQueue, "ingress")
		w.q.PushBack(workerEvent{req: req})
		w.wake.Pulse()
	})
}

// pick implements RSS: hash client connection onto active workers.
func (g *Gateway) pick(client int) *worker {
	idx := client % g.nActive
	n := 0
	for _, w := range g.workers {
		if !w.active {
			continue
		}
		if n == idx {
			return w
		}
		n++
	}
	return g.workers[0]
}

// workerLoop is the run-to-completion event loop of one worker process.
func (g *Gateway) workerLoop(pr *sim.Proc, w *worker) {
	p := g.p
	kind := g.cfg.Kind
	cs := kind.clientStack()
	// Deferred-conversion designs proxy upstream over TCP: F-Ingress keeps
	// F-stack upstream connections, K-Ingress kernel ones.
	us := transport.FStack
	if kind == KIngress {
		us = transport.Kernel
	}
	for w.active {
		if w.q.Len() == 0 {
			w.wake.Wait(pr)
			continue
		}
		if g.pausedUntil > pr.Now() {
			// Worker restart window during horizontal scaling (§3.6).
			pr.Sleep(g.pausedUntil - pr.Now())
		}
		ev := w.q.PopFront()
		if !ev.isResp {
			req := ev.req
			tr := req.Trace
			tr.EndStage(trace.StageIngressQueue)
			actor := w.actor
			// Client-side TCP receive + HTTP processing.
			sp := tr.Begin(trace.StageIngressRecv, actor)
			w.core.Exec(pr, transport.RecvCost(p, cs, req.Bytes)+transport.HTTPCost(p)+g.cfg.ExtraPerRequest)
			sp.End()
			// Transport conversion / upstream proxy cost, paid once per arm
			// (every clone is a separate post toward the backend).
			var conv time.Duration
			if kind == Nadino {
				// Early transport conversion: copy the payload into an
				// RDMA-registered buffer and post a two-sided send.
				conv = p.MemcpyBase + params.Bytes(p.MemcpyPerByteCached, req.Bytes) + p.VerbsPostCost
			} else {
				// Proxy the HTTP request upstream over TCP, paying half
				// the upstream connection-management overhead here.
				conv = transport.SendCost(p, us, req.Bytes) + p.ProxyUpstreamOverhead/2
			}
			if g.spec == nil && req.Clone <= 1 && req.Hedge <= 0 {
				// Unspeculated fast path, byte-identical to the
				// pre-speculation gateway.
				sp = tr.Begin(trace.StageIngressConv, actor)
				w.core.Exec(pr, conv)
				sp.End()
				// The backend wait wraps every worker-side stage, so it is
				// a detail span: in the timeline, excluded from sums.
				tr.BeginStageDetail(trace.StageIngressWait, actor)
				g.backend.Forward(req, g.deliver(w, req, tr))
				continue
			}
			g.forwardSpeculative(pr, w, req, conv)
			continue
		}
		resp := ev.resp
		ev.tr.EndStage(trace.StageIngressQueue)
		sp := ev.tr.Begin(trace.StageIngressResp, w.actor)
		if kind == Nadino {
			// Poll the RDMA completion and copy the payload back out into
			// the TCP stream.
			w.core.Exec(pr, p.VerbsPostCost/2+p.MemcpyBase+params.Bytes(p.MemcpyPerByteCached, resp.Bytes))
		} else {
			w.core.Exec(pr, transport.RecvCost(p, us, resp.Bytes)+p.ProxyUpstreamOverhead/2)
		}
		// HTTP response relay + client-side TCP send.
		w.core.Exec(pr, transport.HTTPCost(p)/2+transport.SendCost(p, cs, resp.Bytes))
		sp.End()
		g.served.Inc(1)
		if cb := ev.reply; cb != nil {
			t0 := pr.Now()
			tr := ev.tr
			g.eng.After(g.p.ExtNetOneWay+transport.TransitLatency(p, cs), func() {
				tr.Record(trace.StageNetClient, "extnet", t0, g.eng.Now())
				cb(resp)
			})
		}
	}
}

// deliver returns the backend completion callback that requeues a response
// onto a worker for the client-facing reply path. Exactly one arm of a
// request may deliver: the IngressWait/IngressQueue stages opened for the
// request are closed here, once.
func (g *Gateway) deliver(w *worker, req Request, tr *trace.Req) func(Response) {
	return func(resp Response) {
		tr.EndStage(trace.StageIngressWait)
		tr.BeginStage(trace.StageIngressQueue, "ingress")
		w2 := w
		if !w2.active {
			w2 = g.pick(req.Client)
		}
		w2.q.PushBack(workerEvent{isResp: true, resp: resp, reply: req.Reply, tr: tr})
		w2.wake.Pulse()
	}
}

// forwardSpeculative fires a request's speculation arms through the backend.
// Initial arms run synchronously on the worker's core (each clone pays its
// own conversion cost); a hedge arm fires later from the deadline timer and
// charges its conversion asynchronously. The first arm to complete wins at
// the Finish boundary and delivers; every later completion is a cancelled
// loser that records a spec.cancel instant and releases nothing here —
// whatever it held was returned by the layers it already traversed.
func (g *Gateway) forwardSpeculative(pr *sim.Proc, w *worker, req Request, conv time.Duration) {
	if g.spec == nil {
		// Per-request override on a gateway whose policy never speculates.
		g.spec = speculate.New(g.eng, g.cfg.Speculate)
	}
	tr := req.Trace
	actor := w.actor
	deliver := g.deliver(w, req, tr)
	tr.BeginStageDetail(trace.StageIngressWait, actor)
	sync := true
	g.spec.Launch(req.Chain, req.Clone, req.Hedge, func(grp *speculate.Group, arm int) bool {
		armReq := req
		armReq.Group = grp
		armReq.Arm = arm
		armSpan := tr.BeginDetail(trace.StageSpecClone, actor)
		if sync {
			spc := tr.Begin(trace.StageIngressConv, actor)
			w.core.Exec(pr, conv)
			spc.End()
		} else {
			// Hedge arm: fired in engine context by the deadline timer;
			// the conversion work lands on the worker core asynchronously.
			w.core.Charge(conv)
		}
		g.backend.Forward(armReq, func(resp Response) {
			armSpan.End()
			if !grp.Finish(armReq.Arm) {
				// A loser that made it all the way back to the boundary:
				// suppressed here, its response buffer already recycled by
				// the backend's completion path.
				tr.Event(trace.StageSpecCancel, actor)
				return
			}
			deliver(resp)
		})
		return true
	})
	sync = false
}

// masterLoop is the autoscaler: hysteresis on average useful-work CPU
// utilization across active workers (scale up at 60%, down at 30%), with a
// brief service interruption on each scale event.
func (g *Gateway) masterLoop(pr *sim.Proc) {
	p := g.p
	for {
		pr.Sleep(p.IngressScaleCheckEvery)
		var sum float64
		for _, w := range g.workers {
			if w.active {
				sum += w.util.Sample(pr.Now(), w.core.BusyTime())
			}
		}
		avg := sum / float64(g.nActive)
		switch {
		case avg >= p.IngressScaleUpUtil && g.nActive < g.cfg.MaxWorkers:
			g.addWorker()
			g.scaleEvents++
			g.pausedUntil = pr.Now() + p.IngressRestartPause
		case avg <= p.IngressScaleDownUtil && g.nActive > 1:
			g.removeWorker()
			g.scaleEvents++
			g.pausedUntil = pr.Now() + p.IngressRestartPause
		}
	}
}

// removeWorker drains and retires the most recently added active worker.
func (g *Gateway) removeWorker() {
	for i := len(g.workers) - 1; i >= 0; i-- {
		w := g.workers[i]
		if !w.active {
			continue
		}
		w.active = false
		g.nActive--
		w.wake.Pulse() // let its loop observe inactivity and exit
		if w.q.Len() > 0 && g.nActive > 0 {
			dst := g.pick(0)
			for w.q.Len() > 0 {
				dst.q.PushBack(w.q.PopFront())
			}
			dst.wake.Pulse()
		}
		return
	}
}

// StartRecorder samples RPS, CPU-in-use and worker count every interval.
func (g *Gateway) StartRecorder(interval time.Duration) {
	g.served.MarkWindow(g.eng.Now())
	g.eng.Ticker(interval, func(now time.Duration) {
		g.RPSSeries.Add(now, g.served.WindowRate(now))
		g.served.MarkWindow(now)
		g.CPUSeries.Add(now, g.cpuInUse(now))
		g.WorkersSeries.Add(now, float64(g.nActive))
	})
}

// cpuInUse reports cores' worth of CPU consumed. Busy-polling designs
// (NADINO, F-Ingress) occupy their pinned cores fully; the kernel design is
// measured by actual busy time.
func (g *Gateway) cpuInUse(now time.Duration) float64 {
	if g.cfg.Kind != KIngress {
		return float64(g.nActive)
	}
	var sum float64
	for _, w := range g.workers {
		sum += w.util.Sample(now, w.core.BusyTime())
	}
	return sum
}
