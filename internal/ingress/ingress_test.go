package ingress

import (
	"testing"
	"time"

	"nadino/internal/params"
	"nadino/internal/sim"
)

// drive runs n closed-loop clients against a gateway for dur and returns
// RPS and mean latency. (The workload package has the full client pool;
// this local loop avoids an import cycle in tests.)
func drive(t *testing.T, kind Kind, workers, clients int, dur time.Duration, autoScale bool) (rps float64, meanLat time.Duration) {
	t.Helper()
	p := params.Default()
	eng := sim.NewEngine(1)
	defer eng.Stop()
	backend := DefaultEchoBackend(eng, p, kind, 4)
	gw := New(eng, p, Config{Kind: kind, InitialWorkers: workers, MaxWorkers: workers, AutoScale: autoScale}, backend)

	var completed int
	var latSum time.Duration
	for c := 0; c < clients; c++ {
		id := c
		eng.Spawn("client", func(pr *sim.Proc) {
			respQ := sim.NewQueue[Response](eng, 0)
			for {
				start := pr.Now()
				gw.Submit(Request{
					Client: id, Bytes: 512, RespBytes: 512, Stamp: start,
					Reply: func(r Response) { respQ.TryPut(r) },
				})
				respQ.Get(pr)
				completed++
				latSum += pr.Now() - start
			}
		})
	}
	eng.RunUntil(dur)
	if completed == 0 {
		t.Fatalf("%v served nothing", kind)
	}
	return float64(completed) / dur.Seconds(), latSum / time.Duration(completed)
}

func TestIngressDesignOrdering(t *testing.T) {
	// Fig. 13 shape: NADINO > F-Ingress > K-Ingress in RPS at saturation,
	// and the reverse in latency, all with one ingress core.
	const clients = 32
	nadRPS, nadLat := drive(t, Nadino, 1, clients, 400*time.Millisecond, false)
	fRPS, fLat := drive(t, FIngress, 1, clients, 400*time.Millisecond, false)
	kRPS, kLat := drive(t, KIngress, 1, clients, 400*time.Millisecond, false)

	if !(nadRPS > fRPS && fRPS > kRPS) {
		t.Fatalf("RPS ordering violated: NADINO=%.0f F=%.0f K=%.0f", nadRPS, fRPS, kRPS)
	}
	if !(nadLat < fLat && fLat < kLat) {
		t.Fatalf("latency ordering violated: NADINO=%v F=%v K=%v", nadLat, fLat, kLat)
	}
	// "increases RPS by up to 11.4x and 3.2x compared to K-Ingress and
	// F-Ingress" — allow generous bands around those ratios.
	if r := nadRPS / kRPS; r < 5 || r > 20 {
		t.Errorf("NADINO/K RPS ratio = %.1f, want ~11x", r)
	}
	if r := nadRPS / fRPS; r < 1.8 || r > 6 {
		t.Errorf("NADINO/F RPS ratio = %.1f, want ~3.2x", r)
	}
}

func TestIngressLatencyLowLoad(t *testing.T) {
	// At a single client there is no queueing: differences come from path
	// costs only, and NADINO still wins.
	nadRPS, nadLat := drive(t, Nadino, 1, 1, 200*time.Millisecond, false)
	_, kLat := drive(t, KIngress, 1, 1, 200*time.Millisecond, false)
	if nadLat >= kLat {
		t.Fatalf("NADINO latency %v not below K-Ingress %v at low load", nadLat, kLat)
	}
	if nadRPS < 1000 {
		t.Fatalf("NADINO single-client RPS = %.0f, implausibly low", nadRPS)
	}
}

func TestAutoscalerAddsWorkersUnderLoad(t *testing.T) {
	p := params.Default()
	eng := sim.NewEngine(1)
	defer eng.Stop()
	backend := DefaultEchoBackend(eng, p, Nadino, 16)
	gw := New(eng, p, Config{Kind: Nadino, InitialWorkers: 1, MaxWorkers: 8, AutoScale: true}, backend)
	for c := 0; c < 48; c++ {
		id := c
		eng.Spawn("client", func(pr *sim.Proc) {
			respQ := sim.NewQueue[Response](eng, 0)
			for {
				gw.Submit(Request{Client: id, Bytes: 512, RespBytes: 512, Stamp: pr.Now(),
					Reply: func(r Response) { respQ.TryPut(r) }})
				respQ.Get(pr)
			}
		})
	}
	eng.RunUntil(3 * time.Second)
	if gw.ActiveWorkers() < 2 {
		t.Fatalf("autoscaler never scaled up: %d workers", gw.ActiveWorkers())
	}
	if gw.ScaleEvents() == 0 {
		t.Fatal("no scale events recorded")
	}
}

func TestAutoscalerShrinksWhenIdle(t *testing.T) {
	p := params.Default()
	eng := sim.NewEngine(1)
	defer eng.Stop()
	backend := DefaultEchoBackend(eng, p, Nadino, 16)
	gw := New(eng, p, Config{Kind: Nadino, InitialWorkers: 4, MaxWorkers: 8, AutoScale: true}, backend)
	// One light client: far below the 30% scale-down threshold.
	eng.Spawn("client", func(pr *sim.Proc) {
		respQ := sim.NewQueue[Response](eng, 0)
		for {
			gw.Submit(Request{Client: 0, Bytes: 128, RespBytes: 128, Stamp: pr.Now(),
				Reply: func(r Response) { respQ.TryPut(r) }})
			respQ.Get(pr)
			pr.Sleep(time.Millisecond)
		}
	})
	eng.RunUntil(5 * time.Second)
	if gw.ActiveWorkers() != 1 {
		t.Fatalf("autoscaler kept %d workers for an idle load", gw.ActiveWorkers())
	}
}

func TestKIngressOverloadDropsRequests(t *testing.T) {
	p := params.Default()
	eng := sim.NewEngine(1)
	defer eng.Stop()
	backend := DefaultEchoBackend(eng, p, KIngress, 16)
	gw := New(eng, p, Config{Kind: KIngress, InitialWorkers: 1, MaxWorkers: 1, QueueCap: 64}, backend)
	// Open-loop flood well past a single kernel core's capacity.
	eng.Spawn("flood", func(pr *sim.Proc) {
		for i := 0; ; i++ {
			gw.Submit(Request{Client: i % 32, Bytes: 512, RespBytes: 512, Stamp: pr.Now()})
			pr.Sleep(15 * time.Microsecond) // ~66K req/s offered, ~5x capacity
		}
	})
	eng.RunUntil(500 * time.Millisecond)
	if gw.Dropped() == 0 {
		t.Fatal("overloaded K-Ingress dropped nothing")
	}
	if gw.Served() == 0 {
		t.Fatal("overloaded K-Ingress served nothing at all")
	}
}

func TestRecorderSeries(t *testing.T) {
	p := params.Default()
	eng := sim.NewEngine(1)
	defer eng.Stop()
	backend := DefaultEchoBackend(eng, p, Nadino, 4)
	gw := New(eng, p, Config{Kind: Nadino, InitialWorkers: 1, MaxWorkers: 4}, backend)
	gw.StartRecorder(100 * time.Millisecond)
	eng.Spawn("client", func(pr *sim.Proc) {
		respQ := sim.NewQueue[Response](eng, 0)
		for {
			gw.Submit(Request{Client: 0, Bytes: 256, RespBytes: 256, Stamp: pr.Now(),
				Reply: func(r Response) { respQ.TryPut(r) }})
			respQ.Get(pr)
		}
	})
	eng.RunUntil(time.Second)
	if gw.RPSSeries.Len() < 8 {
		t.Fatalf("RPS series has %d points", gw.RPSSeries.Len())
	}
	if gw.RPSSeries.Max() <= 0 {
		t.Fatal("RPS series empty of signal")
	}
	if gw.CPUSeries.Max() != 1 {
		t.Fatalf("busy-poll CPU-in-use = %v, want 1 core", gw.CPUSeries.Max())
	}
}
