package ingress

import (
	"fmt"
	"time"

	"nadino/internal/params"
	"nadino/internal/sim"
	"nadino/internal/transport"
)

// EchoBackendConfig models the worker node serving the ingress
// microbenchmarks (§4.1.3): an HTTP echo function reached either over RDMA
// (NADINO — payload already converted at the edge) or over TCP that the
// worker must terminate again (deferred conversion).
type EchoBackendConfig struct {
	// UseRDMA selects NADINO's path: descriptors arrive via DNE + Comch,
	// no TCP termination on the worker.
	UseRDMA bool
	// WorkerStack is the TCP stack the worker terminates with when
	// UseRDMA is false (the paper uses F-stack on the worker).
	WorkerStack transport.Stack
	// Transit is the one-way ingress<->worker delivery latency.
	Transit time.Duration
	// Service is the echo function's application service time.
	Service time.Duration
	// Concurrency is how many requests the worker node serves in parallel
	// (function instances, one core each).
	Concurrency int
}

// EchoBackend implements Backend with a modeled worker node.
type EchoBackend struct {
	eng  *sim.Engine
	p    *params.Params
	cfg  EchoBackendConfig
	q    *sim.Queue[echoJob]
	pool *sim.CorePool
}

type echoJob struct {
	req  Request
	done func(Response)
}

// NewEchoBackend starts the worker-node servers.
func NewEchoBackend(eng *sim.Engine, p *params.Params, cfg EchoBackendConfig) *EchoBackend {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	b := &EchoBackend{
		eng:  eng,
		p:    p,
		cfg:  cfg,
		q:    sim.NewQueue[echoJob](eng, 0),
		pool: sim.NewCorePool(eng, "echo-backend", cfg.Concurrency, p.HostCoreSpeed),
	}
	for i := 0; i < cfg.Concurrency; i++ {
		eng.Spawn(fmt.Sprintf("echo-srv-%d", i), b.serve)
	}
	return b
}

// Forward implements Backend.
func (b *EchoBackend) Forward(req Request, done func(Response)) {
	b.eng.After(b.cfg.Transit, func() {
		b.q.TryPut(echoJob{req: req, done: done})
	})
}

func (b *EchoBackend) serve(pr *sim.Proc) {
	p := b.p
	for {
		j := b.q.Get(pr)
		if b.cfg.UseRDMA {
			// DNE delivered a descriptor; the function wakes via Comch,
			// serves, and hands the response descriptor back.
			b.pool.Exec(pr, p.ComchEWakeup+b.cfg.Service+p.ComchSendCost)
		} else {
			// Deferred conversion: the worker terminates TCP and parses
			// HTTP before the function runs, then does it again outbound.
			b.pool.Exec(pr, transport.RecvCost(p, b.cfg.WorkerStack, j.req.Bytes)+
				transport.HTTPCost(p)+
				b.cfg.Service+
				transport.SendCost(p, b.cfg.WorkerStack, j.req.RespBytes))
		}
		req, done := j.req, j.done
		b.eng.After(b.cfg.Transit, func() {
			done(Response{ID: req.ID, Bytes: req.RespBytes, Stamp: req.Stamp})
		})
	}
}

// DefaultEchoBackend builds the standard Fig. 13 backend for an ingress
// kind: RDMA transit for NADINO, an F-stack-terminating worker for the
// deferred designs.
func DefaultEchoBackend(eng *sim.Engine, p *params.Params, kind Kind, concurrency int) *EchoBackend {
	cfg := EchoBackendConfig{
		Service:     5 * time.Microsecond,
		Concurrency: concurrency,
	}
	if kind == Nadino {
		cfg.UseRDMA = true
		cfg.Transit = 8 * time.Microsecond // RDMA hop + DNE stages
	} else {
		cfg.WorkerStack = transport.FStack
		cfg.Transit = 4 * time.Microsecond // cluster wire + F-stack poll
	}
	return NewEchoBackend(eng, p, cfg)
}
