package fabric

import (
	"testing"
	"time"

	"nadino/internal/params"
	"nadino/internal/sim"
)

func TestDeliveryTiming(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	p := params.Default()
	p.FabricBandwidth = 1e9 // 1 GB/s for round numbers
	p.FabricPropagation = time.Microsecond
	n := New(eng, p)
	n.AddNode("a")
	n.AddNode("b")
	var delivered time.Duration
	n.Send("a", "b", 1000, func() { delivered = eng.Now() })
	eng.Run()
	want := time.Microsecond + time.Microsecond // 1us serialization + 1us prop
	if delivered != want {
		t.Fatalf("delivered at %v, want %v", delivered, want)
	}
}

func TestFIFOSerialization(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	p := params.Default()
	p.FabricBandwidth = 1e9
	p.FabricPropagation = 0
	n := New(eng, p)
	n.AddNode("a")
	n.AddNode("b")
	var times []time.Duration
	for i := 0; i < 3; i++ {
		n.Send("a", "b", 1000, func() { times = append(times, eng.Now()) })
	}
	eng.Run()
	// Back-to-back 1us frames serialize: 1us, 2us, 3us.
	for i, ts := range times {
		want := time.Duration(i+1) * time.Microsecond
		if ts != want {
			t.Fatalf("delivery %d at %v, want %v", i, ts, want)
		}
	}
	bytes, msgs := n.LinkStats("a")
	if bytes != 3000 || msgs != 3 {
		t.Fatalf("stats = %d bytes, %d msgs", bytes, msgs)
	}
}

func TestIndependentLinks(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	p := params.Default()
	p.FabricBandwidth = 1e9
	p.FabricPropagation = 0
	n := New(eng, p)
	n.AddNode("a")
	n.AddNode("b")
	n.AddNode("c")
	var ta, tb time.Duration
	n.Send("a", "c", 1000, func() { ta = eng.Now() })
	n.Send("b", "c", 1000, func() { tb = eng.Now() })
	eng.Run()
	// Different egress links do not serialize against each other.
	if ta != time.Microsecond || tb != time.Microsecond {
		t.Fatalf("ta=%v tb=%v, want both 1us", ta, tb)
	}
}

func TestUnknownNodePanics(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	n := New(eng, params.Default())
	n.AddNode("a")
	defer func() {
		if recover() == nil {
			t.Fatal("send to unknown node did not panic")
		}
	}()
	n.Send("a", "ghost", 10, func() {})
}

func TestLinkDownDropsPackets(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	p := params.Default()
	p.FabricPropagation = time.Microsecond
	n := New(eng, p)
	n.AddNode("a")
	n.AddNode("b")
	if !n.Has("a") || n.Has("ghost") {
		t.Fatal("Has misreports attachment")
	}
	delivered := 0
	// Down at send time: dropped immediately.
	n.SetDown("b", true)
	if !n.Down("b") {
		t.Fatal("Down not reported")
	}
	n.Send("a", "b", 100, func() { delivered++ })
	// Goes down mid-flight: dropped at arrival.
	n.SetDown("b", false)
	n.Send("a", "b", 100, func() { delivered++ })
	n.SetDown("b", true)
	eng.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d packets through a down link", delivered)
	}
	if n.Drops() != 2 {
		t.Fatalf("drops = %d, want 2", n.Drops())
	}
	// Back up: traffic flows again.
	n.SetDown("b", false)
	n.Send("a", "b", 100, func() { delivered++ })
	eng.Run()
	if delivered != 1 {
		t.Fatalf("recovered link delivered %d", delivered)
	}
}

func TestLinkStatsUnknownNode(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	n := New(eng, params.Default())
	if b, m := n.LinkStats("ghost"); b != 0 || m != 0 {
		t.Fatal("unknown node stats not zero")
	}
}
