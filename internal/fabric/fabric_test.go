package fabric

import (
	"testing"
	"time"

	"nadino/internal/params"
	"nadino/internal/sim"
)

func TestDeliveryTiming(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	p := params.Default()
	p.FabricBandwidth = 1e9 // 1 GB/s for round numbers
	p.FabricPropagation = time.Microsecond
	n := New(eng, p)
	n.AddNode("a")
	n.AddNode("b")
	var delivered time.Duration
	n.Send("a", "b", 1000, func() { delivered = eng.Now() })
	eng.Run()
	want := time.Microsecond + time.Microsecond // 1us serialization + 1us prop
	if delivered != want {
		t.Fatalf("delivered at %v, want %v", delivered, want)
	}
}

func TestFIFOSerialization(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	p := params.Default()
	p.FabricBandwidth = 1e9
	p.FabricPropagation = 0
	n := New(eng, p)
	n.AddNode("a")
	n.AddNode("b")
	var times []time.Duration
	for i := 0; i < 3; i++ {
		n.Send("a", "b", 1000, func() { times = append(times, eng.Now()) })
	}
	eng.Run()
	// Back-to-back 1us frames serialize: 1us, 2us, 3us.
	for i, ts := range times {
		want := time.Duration(i+1) * time.Microsecond
		if ts != want {
			t.Fatalf("delivery %d at %v, want %v", i, ts, want)
		}
	}
	bytes, msgs, drops := n.LinkStats("a")
	if bytes != 3000 || msgs != 3 || drops != 0 {
		t.Fatalf("stats = %d bytes, %d msgs, %d drops", bytes, msgs, drops)
	}
}

func TestIndependentLinks(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	p := params.Default()
	p.FabricBandwidth = 1e9
	p.FabricPropagation = 0
	n := New(eng, p)
	n.AddNode("a")
	n.AddNode("b")
	n.AddNode("c")
	var ta, tb time.Duration
	n.Send("a", "c", 1000, func() { ta = eng.Now() })
	n.Send("b", "c", 1000, func() { tb = eng.Now() })
	eng.Run()
	// Different egress links do not serialize against each other.
	if ta != time.Microsecond || tb != time.Microsecond {
		t.Fatalf("ta=%v tb=%v, want both 1us", ta, tb)
	}
}

func TestUnknownNodePanics(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	n := New(eng, params.Default())
	n.AddNode("a")
	defer func() {
		if recover() == nil {
			t.Fatal("send to unknown node did not panic")
		}
	}()
	n.Send("a", "ghost", 10, func() {})
}

func TestLinkDownDropsPackets(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	p := params.Default()
	p.FabricPropagation = time.Microsecond
	n := New(eng, p)
	n.AddNode("a")
	n.AddNode("b")
	if !n.Has("a") || n.Has("ghost") {
		t.Fatal("Has misreports attachment")
	}
	delivered := 0
	// Down at send time: dropped immediately.
	n.SetDown("b", true)
	if !n.Down("b") {
		t.Fatal("Down not reported")
	}
	n.Send("a", "b", 100, func() { delivered++ })
	// Goes down mid-flight: dropped at arrival.
	n.SetDown("b", false)
	n.Send("a", "b", 100, func() { delivered++ })
	n.SetDown("b", true)
	eng.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d packets through a down link", delivered)
	}
	if n.Drops() != 2 {
		t.Fatalf("drops = %d, want 2", n.Drops())
	}
	// Back up: traffic flows again.
	n.SetDown("b", false)
	n.Send("a", "b", 100, func() { delivered++ })
	eng.Run()
	if delivered != 1 {
		t.Fatalf("recovered link delivered %d", delivered)
	}
}

func TestLinkStatsUnknownNode(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	n := New(eng, params.Default())
	if b, m, d := n.LinkStats("ghost"); b != 0 || m != 0 || d != 0 {
		t.Fatal("unknown node stats not zero")
	}
}

func TestDirectedLinkDown(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	p := params.Default()
	p.FabricPropagation = time.Microsecond
	n := New(eng, p)
	n.AddNode("a")
	n.AddNode("b")
	// Only a->b is down: b->a still delivers (asymmetric outage).
	n.SetLinkDown("a", "b", true)
	if !n.LinkDown("a", "b") || n.LinkDown("b", "a") {
		t.Fatal("LinkDown misreports directed state")
	}
	forward, reverse := 0, 0
	n.Send("a", "b", 100, func() { forward++ })
	n.Send("b", "a", 100, func() { reverse++ })
	eng.Run()
	if forward != 0 || reverse != 1 {
		t.Fatalf("forward=%d reverse=%d, want 0/1", forward, reverse)
	}
	if n.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", n.Drops())
	}
	if _, _, d := n.LinkStats("a"); d != 1 {
		t.Fatalf("egress drops on a = %d, want 1", d)
	}
	// Clearing restores delivery.
	n.SetLinkDown("a", "b", false)
	n.Send("a", "b", 100, func() { forward++ })
	eng.Run()
	if forward != 1 {
		t.Fatalf("cleared link delivered %d, want 1", forward)
	}
}

func TestLinkLoss(t *testing.T) {
	eng := sim.NewEngine(42)
	defer eng.Stop()
	p := params.Default()
	p.FabricPropagation = 0
	n := New(eng, p)
	n.AddNode("a")
	n.AddNode("b")
	n.SetLinkLoss("a", "b", 0.5)
	const total = 2000
	delivered := 0
	for i := 0; i < total; i++ {
		n.Send("a", "b", 64, func() { delivered++ })
	}
	eng.Run()
	if delivered == 0 || delivered == total {
		t.Fatalf("50%% loss delivered %d/%d", delivered, total)
	}
	if got := float64(delivered) / total; got < 0.4 || got > 0.6 {
		t.Fatalf("delivery ratio %.3f far from 0.5", got)
	}
	if n.Drops() != uint64(total-delivered) {
		t.Fatalf("Drops()=%d, want %d", n.Drops(), total-delivered)
	}
	if _, _, d := n.LinkStats("a"); d != uint64(total-delivered) {
		t.Fatalf("LinkStats drops=%d, want %d", d, total-delivered)
	}
	// Clearing stops the losses.
	n.SetLinkLoss("a", "b", 0)
	before := delivered
	for i := 0; i < 100; i++ {
		n.Send("a", "b", 64, func() { delivered++ })
	}
	eng.Run()
	if delivered-before != 100 {
		t.Fatalf("lossless link delivered %d/100", delivered-before)
	}
}

func TestLinkLossDeterministic(t *testing.T) {
	run := func() int {
		eng := sim.NewEngine(7)
		defer eng.Stop()
		p := params.Default()
		n := New(eng, p)
		n.AddNode("a")
		n.AddNode("b")
		n.SetLinkLoss("a", "b", 0.3)
		delivered := 0
		for i := 0; i < 500; i++ {
			n.Send("a", "b", 64, func() { delivered++ })
		}
		eng.Run()
		return delivered
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed delivered %d then %d", a, b)
	}
}

func TestLinkLossRangePanics(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	n := New(eng, params.Default())
	n.AddNode("a")
	n.AddNode("b")
	defer func() {
		if recover() == nil {
			t.Fatal("loss probability > 1 did not panic")
		}
	}()
	n.SetLinkLoss("a", "b", 1.5)
}

func TestLinkLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	p := params.Default()
	p.FabricBandwidth = 1e9
	p.FabricPropagation = time.Microsecond
	n := New(eng, p)
	n.AddNode("a")
	n.AddNode("b")
	// Fixed extra, no jitter: delivery is exactly base + extra.
	n.SetLinkLatency("a", "b", 100*time.Microsecond, 0)
	var at time.Duration
	n.Send("a", "b", 1000, func() { at = eng.Now() })
	eng.Run()
	base := 2 * time.Microsecond // 1us serialization + 1us propagation
	if want := base + 100*time.Microsecond; at != want {
		t.Fatalf("delayed delivery at %v, want %v", at, want)
	}
	// With jitter the delay lands in [extra, extra+jitter).
	n.SetLinkLatency("a", "b", 10*time.Microsecond, 5*time.Microsecond)
	sendAt := eng.Now()
	var at2 time.Duration
	n.Send("a", "b", 1000, func() { at2 = eng.Now() })
	eng.Run()
	d := at2 - sendAt - base
	if d < 10*time.Microsecond || d >= 15*time.Microsecond {
		t.Fatalf("jittered delay %v outside [10us,15us)", d)
	}
	// Clearing restores the base latency.
	n.SetLinkLatency("a", "b", 0, 0)
	sendAt = eng.Now()
	var at3 time.Duration
	n.Send("a", "b", 1000, func() { at3 = eng.Now() })
	eng.Run()
	if at3-sendAt != base {
		t.Fatalf("cleared link latency %v, want %v", at3-sendAt, base)
	}
}

func TestLinkLatencyPreservesFIFO(t *testing.T) {
	// Jitter delays deliveries but the egress link still serializes in
	// order; deliveries may reorder at the receiver (like a real multi-path
	// fabric under jitter), which the transport's PSN logic must absorb.
	eng := sim.NewEngine(3)
	defer eng.Stop()
	p := params.Default()
	p.FabricBandwidth = 1e9
	p.FabricPropagation = 0
	n := New(eng, p)
	n.AddNode("a")
	n.AddNode("b")
	n.SetLinkLatency("a", "b", 0, 50*time.Microsecond)
	got := 0
	for i := 0; i < 20; i++ {
		n.Send("a", "b", 1000, func() { got++ })
	}
	eng.Run()
	if got != 20 {
		t.Fatalf("jittered link delivered %d/20", got)
	}
}

func TestSetDownWrapsDirectedLinks(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	n := New(eng, params.Default())
	n.AddNode("a")
	n.AddNode("b")
	n.AddNode("c")
	n.SetDown("b", true)
	if !n.LinkDown("a", "b") || !n.LinkDown("b", "a") ||
		!n.LinkDown("c", "b") || !n.LinkDown("b", "c") {
		t.Fatal("SetDown did not mark all directed links touching b")
	}
	if n.LinkDown("a", "c") || n.LinkDown("c", "a") {
		t.Fatal("SetDown(b) affected the a<->c link")
	}
	n.SetDown("b", false)
	if n.LinkDown("a", "b") || n.LinkDown("b", "a") {
		t.Fatal("SetDown(false) did not clear links")
	}
	if n.Down("b") {
		t.Fatal("Down still set after clear")
	}
}

func TestUnknownLinkFaultPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	n := New(eng, params.Default())
	n.AddNode("a")
	defer func() {
		if recover() == nil {
			t.Fatal("fault on unknown node did not panic")
		}
	}()
	n.SetLinkDown("a", "ghost", true)
}

func TestSendToDownNodeDropsImmediately(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	p := params.Default()
	p.FabricBandwidth = 1e9
	p.FabricPropagation = time.Microsecond
	n := New(eng, p)
	n.AddNode("a")
	n.AddNode("b")
	n.SetDown("b", true)

	delivered := false
	at := n.Send("a", "b", 1000, func() { delivered = true })
	if at != eng.Now() {
		t.Fatalf("drop reported at %v, want immediate (%v)", at, eng.Now())
	}
	// No serialization charged: the egress link stays idle.
	if got := n.LinkBacklogBytes("a"); got != 0 {
		t.Fatalf("link backlog = %v bytes after dropped send, want 0", got)
	}
	eng.Run()
	if delivered {
		t.Fatal("deliver ran for a send to a down node")
	}
	if n.Drops() != 1 {
		t.Fatalf("Drops() = %d, want 1", n.Drops())
	}
	bytes, msgs, drops := n.LinkStats("a")
	if bytes != 0 || msgs != 0 || drops != 1 {
		t.Fatalf("stats = %d bytes, %d msgs, %d drops; want 0, 0, 1", bytes, msgs, drops)
	}

	// After the node revives, traffic flows and stats resume normally.
	n.SetDown("b", false)
	ok := false
	n.Send("a", "b", 1000, func() { ok = true })
	eng.Run()
	if !ok {
		t.Fatal("deliver did not run after node revived")
	}
	if n.Drops() != 1 {
		t.Fatalf("Drops() = %d after revival, want still 1", n.Drops())
	}
}
