// Package fabric models the cluster's switched RDMA network: 200 Gbps links
// into a single switch, FIFO serialization on each egress link, and fixed
// propagation delay. The external Ethernet segment between clients and the
// ingress node is modeled separately (see internal/ingress).
package fabric

import (
	"fmt"
	"time"

	"nadino/internal/params"
	"nadino/internal/sim"
	"nadino/internal/trace"
)

// NodeID names a server node on the fabric.
type NodeID string

// Link is one node's egress port: a FIFO serialization resource.
type Link struct {
	bandwidth float64 // bytes per second
	busyUntil time.Duration
	bytes     uint64
	msgs      uint64
}

// Network is the switch connecting all nodes.
type Network struct {
	eng   *sim.Engine
	p     *params.Params
	links map[NodeID]*Link
	down  map[NodeID]bool
	drops uint64
}

// New returns an empty network.
func New(eng *sim.Engine, p *params.Params) *Network {
	return &Network{eng: eng, p: p, links: make(map[NodeID]*Link), down: make(map[NodeID]bool)}
}

// SetDown marks a node's link up or down. Packets to or from a down node
// are silently dropped — the transport above must detect and retransmit.
func (n *Network) SetDown(id NodeID, down bool) { n.down[id] = down }

// Down reports whether a node's link is down.
func (n *Network) Down(id NodeID) bool { return n.down[id] }

// Drops reports packets lost to down links.
func (n *Network) Drops() uint64 { return n.drops }

// AddNode attaches a node to the switch.
func (n *Network) AddNode(id NodeID) {
	if _, ok := n.links[id]; ok {
		panic(fmt.Sprintf("fabric: node %q already attached", id))
	}
	n.links[id] = &Link{bandwidth: n.p.FabricBandwidth}
}

// Has reports whether id is attached.
func (n *Network) Has(id NodeID) bool {
	_, ok := n.links[id]
	return ok
}

// Send serializes bytes on from's egress link and schedules deliver on the
// receiving side after serialization + propagation. It returns the delivery
// time. Send is called from engine context (event callbacks).
func (n *Network) Send(from, to NodeID, bytes int, deliver func()) time.Duration {
	lnk, ok := n.links[from]
	if !ok {
		panic(fmt.Sprintf("fabric: unknown sender %q", from))
	}
	if _, ok := n.links[to]; !ok {
		panic(fmt.Sprintf("fabric: unknown receiver %q", to))
	}
	now := n.eng.Now()
	start := now
	if lnk.busyUntil > start {
		start = lnk.busyUntil
	}
	ser := time.Duration(float64(bytes) / lnk.bandwidth * float64(time.Second))
	lnk.busyUntil = start + ser
	lnk.bytes += uint64(bytes)
	lnk.msgs++
	at := lnk.busyUntil + n.p.FabricPropagation
	if n.down[from] || n.down[to] {
		// Lost on the wire; the sender's transport must recover. The
		// egress serialization is still consumed (the NIC did transmit).
		n.drops++
		return at
	}
	n.eng.At(at, func() {
		// Receive-side check: the link may have gone down in flight.
		if n.down[to] {
			n.drops++
			return
		}
		deliver()
	})
	return at
}

// SendTraced is Send plus a detail span on r covering the wire segment
// (egress queueing + serialization + propagation). A nil r is free.
func (n *Network) SendTraced(from, to NodeID, bytes int, r *trace.Req, deliver func()) time.Duration {
	start := n.eng.Now()
	at := n.Send(from, to, bytes, deliver)
	r.RecordDetail(trace.StageFabric, string(from)+">"+string(to), start, at)
	return at
}

// LinkStats reports bytes and messages sent from id.
func (n *Network) LinkStats(id NodeID) (bytes, msgs uint64) {
	lnk, ok := n.links[id]
	if !ok {
		return 0, 0
	}
	return lnk.bytes, lnk.msgs
}
