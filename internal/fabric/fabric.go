// Package fabric models the cluster's switched RDMA network: 200 Gbps links
// into a single switch, FIFO serialization on each egress link, and fixed
// propagation delay. The external Ethernet segment between clients and the
// ingress node is modeled separately (see internal/ingress).
//
// Every directed link carries injectable fault state (outage, loss
// probability, added latency with jitter) — the substrate internal/chaos
// schedules its network faults on.
package fabric

import (
	"fmt"
	"time"

	"nadino/internal/params"
	"nadino/internal/sim"
	"nadino/internal/trace"
)

// NodeID names a server node on the fabric.
type NodeID string

// Link is one node's egress port: a FIFO serialization resource.
type Link struct {
	bandwidth float64 // bytes per second
	busyUntil time.Duration
	bytes     uint64
	msgs      uint64
	drops     uint64
}

// linkKey addresses one directed link.
type linkKey struct {
	from, to NodeID
}

// linkFault is the injectable state of one directed link. The zero value
// means "healthy"; entries are removed from the fault map when they return
// to zero so the Send fast path stays a single map-length check.
type linkFault struct {
	down   bool
	loss   float64 // drop probability per message, 0..1
	extra  time.Duration
	jitter time.Duration // uniform extra delay in [0, jitter)
}

func (f *linkFault) clear() bool {
	return !f.down && f.loss == 0 && f.extra == 0 && f.jitter == 0
}

// Network is the switch connecting all nodes.
type Network struct {
	eng      *sim.Engine
	p        *params.Params
	links    map[NodeID]*Link
	nodeSeq  []NodeID // attachment order, for deterministic iteration
	faults   map[linkKey]*linkFault
	nodeDown map[NodeID]bool // SetDown bookkeeping, reported by Down
	drops    uint64

	// freeRx pools receive-side delivery nodes so Send's per-message At()
	// does not allocate a fresh closure per message.
	freeRx []*rxNode
}

// rxNode is a pooled in-flight message: the receive-side fault check plus
// the deliver callback, with fn bound once at allocation.
type rxNode struct {
	n       *Network
	lnk     *Link
	from    NodeID
	to      NodeID
	deliver func()
	fn      func()
}

func (n *Network) allocRx(lnk *Link, from, to NodeID, deliver func()) *rxNode {
	var rx *rxNode
	if ln := len(n.freeRx); ln > 0 {
		rx = n.freeRx[ln-1]
		n.freeRx = n.freeRx[:ln-1]
	} else {
		rx = &rxNode{n: n}
		rx.fn = rx.run
	}
	rx.lnk = lnk
	rx.from = from
	rx.to = to
	rx.deliver = deliver
	return rx
}

func (rx *rxNode) run() {
	n := rx.n
	lnk := rx.lnk
	from, to := rx.from, rx.to
	deliver := rx.deliver
	rx.lnk = nil
	rx.deliver = nil
	n.freeRx = append(n.freeRx, rx)
	// Receive-side check: the link may have gone down in flight.
	if f := n.faults[linkKey{from, to}]; f != nil && f.down {
		n.drops++
		lnk.drops++
		return
	}
	deliver()
}

// New returns an empty network.
func New(eng *sim.Engine, p *params.Params) *Network {
	return &Network{
		eng:      eng,
		p:        p,
		links:    make(map[NodeID]*Link),
		faults:   make(map[linkKey]*linkFault),
		nodeDown: make(map[NodeID]bool),
	}
}

// edit returns the fault entry for a directed link, creating it if needed.
// Callers must trim afterwards so healthy links carry no entry.
func (n *Network) edit(from, to NodeID) *linkFault {
	n.mustHave(from)
	n.mustHave(to)
	k := linkKey{from, to}
	f := n.faults[k]
	if f == nil {
		f = &linkFault{}
		n.faults[k] = f
	}
	return f
}

func (n *Network) trim(from, to NodeID) {
	k := linkKey{from, to}
	if f := n.faults[k]; f != nil && f.clear() {
		delete(n.faults, k)
	}
}

func (n *Network) mustHave(id NodeID) {
	if _, ok := n.links[id]; !ok {
		panic(fmt.Sprintf("fabric: unknown node %q", id))
	}
}

// SetLinkDown takes the directed link from->to down (or back up). Messages
// on a down link are silently dropped — the transport above must detect and
// retransmit.
func (n *Network) SetLinkDown(from, to NodeID, down bool) {
	n.edit(from, to).down = down
	n.trim(from, to)
}

// LinkDown reports whether the directed link from->to is down.
func (n *Network) LinkDown(from, to NodeID) bool {
	f := n.faults[linkKey{from, to}]
	return f != nil && f.down
}

// SetLinkLoss sets the per-message drop probability (0..1) on the directed
// link from->to. Loss draws come from the engine's seeded RNG, so runs stay
// deterministic for a fixed seed.
func (n *Network) SetLinkLoss(from, to NodeID, prob float64) {
	if prob < 0 || prob > 1 {
		panic(fmt.Sprintf("fabric: loss probability %v outside [0,1]", prob))
	}
	n.edit(from, to).loss = prob
	n.trim(from, to)
}

// SetLinkLatency adds a fixed extra delay plus uniform jitter in [0, jitter)
// to every delivery on the directed link from->to. Zero both to clear.
func (n *Network) SetLinkLatency(from, to NodeID, extra, jitter time.Duration) {
	if extra < 0 || jitter < 0 {
		panic("fabric: negative link latency")
	}
	f := n.edit(from, to)
	f.extra, f.jitter = extra, jitter
	n.trim(from, to)
}

// SetDown marks every directed link touching a node down (or up) — the
// node-outage wrapper over the per-link state. Only links to nodes attached
// at call time are affected, and SetDown(id, false) clears the down bit on
// every link touching id, including bits set individually via SetLinkDown.
func (n *Network) SetDown(id NodeID, down bool) {
	n.mustHave(id)
	n.nodeDown[id] = down
	for other := range n.links {
		if other == id {
			continue
		}
		n.edit(id, other).down = down
		n.trim(id, other)
		n.edit(other, id).down = down
		n.trim(other, id)
	}
}

// Down reports whether a node was taken down via SetDown.
func (n *Network) Down(id NodeID) bool { return n.nodeDown[id] }

// Drops reports messages lost to down or lossy links.
func (n *Network) Drops() uint64 { return n.drops }

// AddNode attaches a node to the switch.
func (n *Network) AddNode(id NodeID) {
	if _, ok := n.links[id]; ok {
		panic(fmt.Sprintf("fabric: node %q already attached", id))
	}
	n.links[id] = &Link{bandwidth: n.p.FabricBandwidth}
	n.nodeSeq = append(n.nodeSeq, id)
}

// Nodes returns the attached nodes in attachment order — the deterministic
// iteration surface for consumers (telemetry) that must not range over the
// link map.
func (n *Network) Nodes() []NodeID { return n.nodeSeq }

// Has reports whether id is attached.
func (n *Network) Has(id NodeID) bool {
	_, ok := n.links[id]
	return ok
}

// Send serializes bytes on from's egress link and schedules deliver on the
// receiving side after serialization + propagation (+ any injected link
// latency). It returns the delivery time. Send is called from engine context
// (event callbacks).
func (n *Network) Send(from, to NodeID, bytes int, deliver func()) time.Duration {
	lnk, ok := n.links[from]
	if !ok {
		panic(fmt.Sprintf("fabric: unknown sender %q", from))
	}
	if _, ok := n.links[to]; !ok {
		panic(fmt.Sprintf("fabric: unknown receiver %q", to))
	}
	now := n.eng.Now()
	if len(n.nodeDown) > 0 && n.nodeDown[to] {
		// The destination node is down at send time: the switch has no
		// egress port to deliver to, so the message is dropped immediately —
		// no serialization is charged to the sender's link and no delivery
		// is scheduled. (A link-only fault below still consumes egress
		// serialization: the NIC did transmit.)
		n.drops++
		lnk.drops++
		return now
	}
	start := now
	if lnk.busyUntil > start {
		start = lnk.busyUntil
	}
	ser := time.Duration(float64(bytes) / lnk.bandwidth * float64(time.Second))
	lnk.busyUntil = start + ser
	lnk.bytes += uint64(bytes)
	lnk.msgs++
	at := lnk.busyUntil + n.p.FabricPropagation
	if len(n.faults) > 0 {
		if f := n.faults[linkKey{from, to}]; f != nil {
			if f.down {
				// Lost on the wire; the sender's transport must recover. The
				// egress serialization is still consumed (the NIC did
				// transmit).
				n.drops++
				lnk.drops++
				return at
			}
			if f.loss > 0 && n.eng.Rand().Float64() < f.loss {
				n.drops++
				lnk.drops++
				return at
			}
			if f.extra > 0 || f.jitter > 0 {
				d := f.extra
				if f.jitter > 0 {
					d += time.Duration(n.eng.Rand().Int63n(int64(f.jitter)))
				}
				at += d
			}
		}
	}
	n.eng.At(at, n.allocRx(lnk, from, to, deliver).fn)
	return at
}

// SendTraced is Send plus a detail span on r covering the wire segment
// (egress queueing + serialization + propagation + injected latency). A nil
// r is free.
func (n *Network) SendTraced(from, to NodeID, bytes int, r *trace.Req, deliver func()) time.Duration {
	if r == nil {
		// Fast path: skip the Now() read and the label concatenation.
		return n.Send(from, to, bytes, deliver)
	}
	start := n.eng.Now()
	at := n.Send(from, to, bytes, deliver)
	r.RecordDetail(trace.StageFabric, string(from)+">"+string(to), start, at)
	return at
}

// LinkBacklogBytes reports the bytes still queued for serialization on id's
// egress link right now: the unexpired portion of busyUntil converted back
// through the link bandwidth. Zero when the link is idle.
func (n *Network) LinkBacklogBytes(id NodeID) float64 {
	lnk, ok := n.links[id]
	if !ok {
		return 0
	}
	pending := lnk.busyUntil - n.eng.Now()
	if pending <= 0 {
		return 0
	}
	return pending.Seconds() * lnk.bandwidth
}

// LinkStats reports bytes, messages and drops sent from id.
func (n *Network) LinkStats(id NodeID) (bytes, msgs, drops uint64) {
	lnk, ok := n.links[id]
	if !ok {
		return 0, 0, 0
	}
	return lnk.bytes, lnk.msgs, lnk.drops
}
