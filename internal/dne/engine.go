package dne

import (
	"fmt"
	"time"

	"nadino/internal/dpu"
	"nadino/internal/fabric"
	"nadino/internal/flightrec"
	"nadino/internal/ipc"
	"nadino/internal/mempool"
	"nadino/internal/metrics"
	"nadino/internal/params"
	"nadino/internal/rdma"
	"nadino/internal/ring"
	"nadino/internal/sim"
	"nadino/internal/trace"
)

// Mode selects on-path vs off-path DPU offloading (§2.1, Fig. 2).
type Mode int

// Offloading modes.
const (
	// OffPath: cross-processor shared memory lets the RNIC DMA directly
	// into host pools; the engine only touches descriptors. NADINO's mode.
	OffPath Mode = iota
	// OnPath: data is staged in DPU SoC memory and moved across the PCIe
	// boundary by the slow SoC DMA engine on both TX and RX.
	OnPath
)

// Location selects where the engine runs (§4.3's DNE vs CNE comparison).
type Location int

// Engine placements.
const (
	// OnDPU pins the engine to a wimpy DPU ARM core; host functions reach
	// it over DOCA Comch.
	OnDPU Location = iota
	// OnCPU pins the engine to a host core (the CNE); functions reach it
	// over SK_MSG, whose interrupt-driven input throttles it at high
	// concurrency.
	OnCPU
)

// PollBatch and ReplenishBatch size the worker loop's CQ drain buffer and
// the keeper's SRQ batch replenish. They are package-level knobs so the
// determinism fence can pin that batch size never affects simulation
// output: costs are charged per CQE and per buffer, so any batch size
// yields bitwise-identical results for a fixed seed.
var (
	PollBatch      = 16
	ReplenishBatch = 64
)

// ownerRQ is the mempool owner string for buffers posted to a tenant SRQ.
func ownerRQ(node fabric.NodeID) mempool.Owner {
	return mempool.Owner("dne-rq@" + string(node))
}

// OwnerEngine is the mempool owner the engine uses while it holds buffers
// in flight.
func OwnerEngine(node fabric.NodeID) mempool.Owner {
	return mempool.Owner("dne@" + string(node))
}

// Config assembles an engine.
type Config struct {
	Node    fabric.NodeID
	Mode    Mode
	Loc     Location
	Sched   SchedulerKind
	Channel dpu.ChannelMode
	// QuantumUnit is the DWRR byte quantum per unit weight (default 2KB).
	QuantumUnit int
	// ReplenishEvery is the core thread's RQ replenish period.
	ReplenishEvery time.Duration
	// InitialRQ is how many receive buffers to pre-post per tenant.
	InitialRQ int
}

// tenantState is per-tenant engine state.
type tenantState struct {
	name   string
	id     int32 // dense index into Engine.tenantSeq (interned at AddTenant)
	weight int
	pool   *mempool.Pool
	mr     *rdma.MR
	srq    *rdma.SRQ
	// rqDebt is the replenishment shortfall carried across keeper rounds:
	// consumed RQ slots the keeper could not repost because the tenant pool
	// was squeezed. Without it, ConsumedReset's count is lost on pool
	// pressure and the ring starves permanently once buffers come back.
	rqDebt int
	// meters drive the Fig. 15 per-tenant bandwidth plots.
	TxMeter *metrics.Meter
	RxMeter *metrics.Meter
}

// Engine is the DPU network engine (or its CPU-hosted twin).
type Engine struct {
	eng *sim.Engine
	p   *params.Params
	cfg Config

	// worker is the pinned core running the run-to-completion loop;
	// keeper is the core-thread core (mmap registration, RQ replenish).
	worker *sim.Processor
	keeper *sim.Processor
	socDMA *dpu.DMAEngine
	rnic   *rdma.RNIC
	cq     *rdma.CQ
	work   *sim.Signal

	// The map fields support lookup; the *Seq slices preserve insertion
	// order for iteration, because Go map iteration order is randomized and
	// any map-ordered walk on the simulation path would make runs
	// nondeterministic.
	tenants   map[string]*tenantState
	tenantSeq []*tenantState
	ports     map[string]*FnPort
	portSeq   []*FnPort
	pools     map[fabric.NodeID]map[string]*rdma.ConnPool
	poolSeq   []*rdma.ConnPool

	// Interned routing state (§3.2, fast path): tenant and function names
	// resolve to dense IDs at registration time, so the per-request TX/RX
	// path does slice indexing instead of string-map lookups. Descriptors
	// carry the IDs as +1-offset hints (zero = unresolved, fall back to the
	// maps above). IDs are engine-local and never cross the wire.
	fnIDs     map[string]int32
	routeByFn []int32 // fn ID -> node index, -1 = no route
	nodeIDs   map[fabric.NodeID]int32
	nodeNames []fabric.NodeID
	poolByNT  [][]*rdma.ConnPool // [node index][tenant ID]
	limitByID []*tokenBucket     // tenant ID -> rate limit (nil = none)

	// Precomputed owner/actor strings (these were per-message concats).
	rqOwner    mempool.Owner
	engOwner   mempool.Owner
	actorLabel string

	// Gateway tier (optional): cross-node TX hops are offered to fwd
	// instead of the engine's own per-tenant QPs; landed descriptors come
	// back through gwIn under gwOwner. selfIdx is this node's interned
	// index, the "is this hop cross-node" test.
	fwd     Forwarder
	gwOwner mempool.Owner
	gwIn    ring.Deque[mempool.Descriptor]
	selfIdx int32
	fwdOut  uint64

	// cqeBuf is the worker's reusable CQ drain buffer; rqBufs/rqDescs are
	// the keeper's batch-replenish scratch.
	cqeBuf  []rdma.CQE
	rqBufs  []mempool.Buffer
	rqDescs []mempool.Descriptor

	sched     Scheduler
	dwrrSched *DWRR
	prioSched *Priority

	// limits holds optional per-tenant token-bucket rate limits enforced
	// in the TX stage (the kind of workload-specific policy §4.2 says
	// operators can drop into the DNE).
	limits map[string]*tokenBucket

	txCount, rxCount uint64
	dropNoRoute      uint64
	dropNoPort       uint64
	sendErrors       uint64
	retriedSends     uint64
	dropRetryBudget  uint64
	rateDeferred     uint64
	specDrops        uint64 // losing clones killed at the TX gate

	// Flight recorder hook (optional): drop events land in the ring with
	// this engine's interned actor id. Nil-safe via the rec==nil branch.
	rec      *flightrec.Recorder
	recActor uint16

	// LoopIters and LoopWaits count worker-loop iterations and idle waits
	// (diagnostics).
	LoopIters, LoopWaits uint64
	// Stage wall-time accounting (diagnostics).
	IngestWall, TxWall, RxWall time.Duration

	started bool
}

// New assembles an engine. For OnDPU, d supplies the cores, SoC DMA and
// integrated RNIC; for OnCPU, d still supplies the node's RNIC (the DPU
// stays in NIC mode) while the loop runs on hostCore.
func New(eng *sim.Engine, p *params.Params, cfg Config, d *dpu.DPU, hostCore, hostKeeper *sim.Processor) *Engine {
	if cfg.QuantumUnit == 0 {
		cfg.QuantumUnit = 2048
	}
	if cfg.ReplenishEvery == 0 {
		cfg.ReplenishEvery = 50 * time.Microsecond
	}
	if cfg.InitialRQ == 0 {
		cfg.InitialRQ = 256
	}
	e := &Engine{
		eng:        eng,
		p:          p,
		cfg:        cfg,
		socDMA:     d.SoCDMA(),
		rnic:       d.RNIC(),
		cq:         rdma.NewCQ(eng),
		work:       sim.NewSignal(eng),
		tenants:    make(map[string]*tenantState),
		limits:     make(map[string]*tokenBucket),
		ports:      make(map[string]*FnPort),
		pools:      make(map[fabric.NodeID]map[string]*rdma.ConnPool),
		fnIDs:      make(map[string]int32),
		nodeIDs:    make(map[fabric.NodeID]int32),
		rqOwner:    ownerRQ(cfg.Node),
		engOwner:   OwnerEngine(cfg.Node),
		actorLabel: string(cfg.Node) + "/dne",
	}
	if cfg.Loc == OnDPU {
		// The DNE loop does verbs/descriptor work, where the ARM cores are
		// nearly on par with x86 (Fig. 6); dedicated cores with the
		// net-work speed factor model that.
		e.worker = sim.NewProcessor(eng, string(cfg.Node)+"/dne-worker", p.DPUNetSpeed)
		e.keeper = sim.NewProcessor(eng, string(cfg.Node)+"/dne-keeper", p.DPUNetSpeed)
	} else {
		if hostCore == nil || hostKeeper == nil {
			panic("dne: CPU-hosted engine needs host cores")
		}
		e.worker = hostCore
		e.keeper = hostKeeper
	}
	switch cfg.Sched {
	case SchedDWRR:
		e.dwrrSched = NewDWRR(cfg.QuantumUnit)
		e.sched = e.dwrrSched
	case SchedPriority:
		e.prioSched = NewPriority()
		e.sched = e.prioSched
	default:
		e.sched = NewFCFS()
	}
	e.cq.SetNotify(func() { e.work.Pulse() })
	e.selfIdx = e.internNode(cfg.Node)
	return e
}

// Forwarder is the per-node gateway tier's ingest hook (implemented by
// gateway.Gateway): the engine offers every cross-node descriptor to it
// instead of posting on its own per-tenant QPs. ForwardRemote returns false
// when it cannot serve dst — not a peer gateway, e.g. the ingress backend —
// and the engine falls back to its direct path.
type Forwarder interface {
	ForwardRemote(d mempool.Descriptor, dst fabric.NodeID) bool
}

// SetForwarder attaches the node's gateway tier. gwOwner is the mempool
// owner gateway-delivered buffers arrive under (gateway.Gateway.Owner).
// Call before traffic.
func (e *Engine) SetForwarder(f Forwarder, gwOwner mempool.Owner) {
	e.fwd = f
	e.gwOwner = gwOwner
}

// GatewayDeliver implements gateway.Egress: accept a descriptor the gateway
// tier landed for a local function. The buffer is owned by the gateway;
// the worker loop transfers it to the destination function. Engine context;
// never blocks.
func (e *Engine) GatewayDeliver(d mempool.Descriptor) {
	e.gwIn.PushBack(d)
	e.work.Pulse()
}

// GatewayRelease implements gateway.Egress: recycle a source buffer whose
// gateway forward completed or was dropped.
func (e *Engine) GatewayRelease(d mempool.Descriptor) {
	e.releaseBuffer(d)
}

// Forwarded reports descriptors handed to the gateway tier.
func (e *Engine) Forwarded() uint64 { return e.fwdOut }

// Node reports the engine's node.
func (e *Engine) Node() fabric.NodeID { return e.cfg.Node }

// RNIC returns the RNIC the engine proxies.
func (e *Engine) RNIC() *rdma.RNIC { return e.rnic }

// CQ returns the engine's completion queue (shared across all RC QPs on
// this node, §3.3).
func (e *Engine) CQ() *rdma.CQ { return e.cq }

// WorkerCore returns the pinned loop core (for utilization reporting).
func (e *Engine) WorkerCore() *sim.Processor { return e.worker }

// KeeperCore returns the core-thread core.
func (e *Engine) KeeperCore() *sim.Processor { return e.keeper }

// AddTenant maps a tenant's host pool into the engine: the cross-processor
// mmap (§3.4.2) plus SRQ creation. weight feeds the DWRR scheduler.
func (e *Engine) AddTenant(tenant string, pool *mempool.Pool, weight int) *rdma.SRQ {
	if _, ok := e.tenants[tenant]; ok {
		panic(fmt.Sprintf("dne: tenant %q already added", tenant))
	}
	ts := &tenantState{
		name:    tenant,
		id:      int32(len(e.tenantSeq)),
		weight:  weight,
		pool:    pool,
		mr:      e.rnic.RegisterMR(pool), // doca_mmap_create_from_export
		srq:     rdma.NewSRQ(tenant),
		TxMeter: metrics.NewMeter(),
		RxMeter: metrics.NewMeter(),
	}
	e.tenants[tenant] = ts
	e.tenantSeq = append(e.tenantSeq, ts)
	e.limitByID = append(e.limitByID, nil)
	for i := range e.poolByNT {
		e.poolByNT[i] = append(e.poolByNT[i], nil)
	}
	if e.dwrrSched != nil {
		e.dwrrSched.SetWeight(tenant, weight)
	}
	if e.prioSched != nil {
		e.prioSched.SetWeight(tenant, weight)
	}
	return ts.srq
}

// SetTenantWeight re-weights a tenant's scheduler share at runtime — the
// management-plane hot-reload path (weights are otherwise fixed at
// AddTenant). Reports whether the tenant exists; engines without a weighted
// scheduler accept the call as a recorded no-op.
func (e *Engine) SetTenantWeight(tenant string, weight int) bool {
	ts, ok := e.tenants[tenant]
	if !ok {
		return false
	}
	ts.weight = weight
	if e.dwrrSched != nil {
		e.dwrrSched.SetWeight(tenant, weight)
	}
	if e.prioSched != nil {
		e.prioSched.SetWeight(tenant, weight)
	}
	return true
}

// SetFlightRecorder routes this engine's drop events into r (nil detaches).
// The actor id is interned once here so the record path stays
// allocation-free.
func (e *Engine) SetFlightRecorder(r *flightrec.Recorder) {
	e.rec = r
	e.recActor = r.Actor(e.actorLabel)
}

// frDrop records one dropped descriptor in the flight recorder: A is the
// tenant's dense id (-1 when unknown), B the payload bytes. Drop paths are
// rare by construction, so the extra tenant resolve costs nothing in
// steady state.
func (e *Engine) frDrop(k flightrec.Kind, d *mempool.Descriptor) {
	if e.rec == nil {
		return
	}
	var tid int64 = -1
	if ts := e.tenantOf(d); ts != nil {
		tid = int64(ts.id)
	}
	e.rec.Record(k, e.recActor, tid, int64(d.Len))
}

// Tenant returns a tenant's meters for experiment plumbing.
func (e *Engine) Tenant(tenant string) (tx, rx *metrics.Meter) {
	ts := e.tenants[tenant]
	if ts == nil {
		return nil, nil
	}
	return ts.TxMeter, ts.RxMeter
}

// SRQ returns a tenant's shared receive queue.
func (e *Engine) SRQ(tenant string) *rdma.SRQ { return e.tenants[tenant].srq }

// internFn returns fn's dense ID, assigning one on first use.
func (e *Engine) internFn(fn string) int32 {
	id, ok := e.fnIDs[fn]
	if !ok {
		id = int32(len(e.routeByFn))
		e.fnIDs[fn] = id
		e.routeByFn = append(e.routeByFn, -1)
	}
	return id
}

// internNode returns node's dense index, assigning one on first use.
func (e *Engine) internNode(node fabric.NodeID) int32 {
	idx, ok := e.nodeIDs[node]
	if !ok {
		idx = int32(len(e.nodeNames))
		e.nodeIDs[node] = idx
		e.nodeNames = append(e.nodeNames, node)
		e.poolByNT = append(e.poolByNT, make([]*rdma.ConnPool, len(e.tenantSeq)))
	}
	return idx
}

// SetRoute declares that function fn runs on node (the inter-node routing
// table of §3.2).
func (e *Engine) SetRoute(fn string, node fabric.NodeID) {
	e.routeByFn[e.internFn(fn)] = e.internNode(node)
}

// AddConnPool installs an established RC connection pool toward remote for
// tenant.
func (e *Engine) AddConnPool(remote fabric.NodeID, tenant string, cp *rdma.ConnPool) {
	m, ok := e.pools[remote]
	if !ok {
		m = make(map[string]*rdma.ConnPool)
		e.pools[remote] = m
	}
	m[tenant] = cp
	e.poolSeq = append(e.poolSeq, cp)
	if ts := e.tenants[tenant]; ts != nil {
		e.poolByNT[e.internNode(remote)][ts.id] = cp
	}
}

// ConnPool returns the pool toward remote for tenant (nil if absent).
func (e *Engine) ConnPool(remote fabric.NodeID, tenant string) *rdma.ConnPool {
	return e.pools[remote][tenant]
}

// ConnPools exposes every installed pool in insertion order (chaos hooks
// and stats).
func (e *Engine) ConnPools() []*rdma.ConnPool { return e.poolSeq }

// AttachFunction creates the descriptor channel between a host function and
// the engine: a Comch endpoint for the DPU-hosted engine, an SK_MSG socket
// pair for the CPU-hosted CNE.
func (e *Engine) AttachFunction(fn, tenant string) *FnPort {
	if _, ok := e.ports[fn]; ok {
		panic(fmt.Sprintf("dne: function %q already attached", fn))
	}
	e.internFn(fn)
	fp := &FnPort{fn: fn, tenant: tenant, engine: e}
	if e.cfg.Loc == OnDPU {
		fp.comch = dpu.NewEndpoint(e.eng, e.p, e.cfg.Channel, len(e.ports), fn, tenant, e.work)
	} else {
		fp.toEngine = ipc.NewSKMsg(e.eng, e.p, e.work)
		fp.toFn = ipc.NewSKMsg(e.eng, e.p, nil)
	}
	e.ports[fn] = fp
	e.portSeq = append(e.portSeq, fp)
	return fp
}

// Stats reports engine counters.
func (e *Engine) Stats() (tx, rx, dropNoRoute, dropNoPort, sendErrors uint64) {
	return e.txCount, e.rxCount, e.dropNoRoute, e.dropNoPort, e.sendErrors
}

// RetryStats reports transport-error recovery counters: descriptors
// re-queued after send failures, and those dropped after exhausting the
// retry budget.
func (e *Engine) RetryStats() (retried, dropped uint64) {
	return e.retriedSends, e.dropRetryBudget
}

// SpecDrops reports losing speculative clones killed at the TX gate (their
// buffers returned to the tenant pool without spending a WR).
func (e *Engine) SpecDrops() uint64 { return e.specDrops }

// RQDebt reports the total replenishment shortfall across tenants: consumed
// RQ slots the keeper has not yet been able to repost. Nonzero sustained
// debt means tenant pools are squeezed (telemetry's keeper-debt gauge).
func (e *Engine) RQDebt() int {
	total := 0
	for _, ts := range e.tenantSeq {
		total += ts.rqDebt
	}
	return total
}

// Start launches the worker loop and the core thread. Call once, before
// Engine.Run on the simulation.
func (e *Engine) Start() {
	if e.started {
		panic("dne: Start called twice")
	}
	e.started = true
	e.cqeBuf = make([]rdma.CQE, PollBatch)
	e.rqBufs = make([]mempool.Buffer, ReplenishBatch)
	e.rqDescs = make([]mempool.Descriptor, ReplenishBatch)
	e.eng.Spawn(fmt.Sprintf("dne-worker@%s", e.cfg.Node), e.workerLoop)
	e.eng.Spawn(fmt.Sprintf("dne-keeper@%s", e.cfg.Node), e.keeperLoop)
}

// perMsgExtra is the artificial per-message load experiments use to cap the
// engine's throughput (Fig. 15's ~110K RPS configuration). It is charged in
// the TX stage only, behind the tenant scheduler, so the capped capacity is
// the resource DWRR arbitrates.
func (e *Engine) perMsgExtra() time.Duration { return e.p.DNEExtraPerMsg }

// workerLoop is the non-blocking run-to-completion event loop (§3.2): it
// ingests descriptors from function channels, runs the TX stage through the
// tenant scheduler, and drains the CQ for the RX stage. When there is no
// work it parks on the work signal (the pinned core still reports as
// busy-polling; BusyTime tracks the *useful* fraction, which is what the
// paper's refined CPU accounting measures).
func (e *Engine) workerLoop(pr *sim.Proc) {
	const batch = 16
	for {
		e.LoopIters++
		did := false

		t0 := e.eng.Now()
		// RX stage first: drain all completions so received descriptors
		// reach their functions (and, via their replies, the scheduler)
		// promptly. Completions are mandatory work; leaving them queued
		// would turn the FIFO CQ into the standing buffer and bypass the
		// tenant scheduler.
		for {
			n := e.cq.PollInto(e.cqeBuf)
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				e.handleCQE(pr, e.cqeBuf[i])
			}
			did = true
		}

		// Gateway-landed descriptors: same RX treatment as OpRecv, but the
		// buffer arrives owned by the gateway tier instead of the RQ.
		for e.gwIn.Len() > 0 {
			e.gwDeliver(pr, e.gwIn.PopFront())
			did = true
		}

		t1 := e.eng.Now()
		e.RxWall += t1 - t0
		// Ingest host -> engine descriptors into the tenant scheduler.
		for _, fp := range e.portSeq {
			for {
				d, cost, ok := fp.engineSidePull()
				if !ok {
					break
				}
				if cost > 0 {
					sp := d.Trace.Begin(trace.StageDNEIngest, e.actorLabel)
					e.worker.Exec(pr, cost)
					sp.End()
				}
				e.enqueue(d)
				did = true
			}
		}

		t2 := e.eng.Now()
		e.IngestWall += t2 - t1
		// TX stage: the tenant scheduler (DWRR/FCFS) arbitrates the
		// engine's transmit capacity — this is where backlog stands under
		// overload, so per-tenant weights govern it (§3.3).
		for i := 0; i < batch; i++ {
			d, ok := e.sched.Next()
			if !ok {
				break
			}
			d.Trace.EndStage(trace.StageDNESched)
			e.txOne(pr, d)
			did = true
		}
		e.TxWall += e.eng.Now() - t2

		if !did {
			e.LoopWaits++
			e.work.Wait(pr)
		}
	}
}

// tenantOf resolves a descriptor's tenant state: slice indexing via the
// interned hint when present, map fallback otherwise.
func (e *Engine) tenantOf(d *mempool.Descriptor) *tenantState {
	if d.TenantID > 0 {
		return e.tenantSeq[d.TenantID-1]
	}
	return e.tenants[d.Tenant]
}

// deferRateLimited holds a descriptor that exceeded its tenant's rate limit
// until the bucket refills, then feeds it back through the scheduler. Kept
// out of txOne so its closure (which captures d) only heap-allocates the
// descriptor on the rate-limited slow path.
func (e *Engine) deferRateLimited(b *tokenBucket, d mempool.Descriptor) {
	e.rateDeferred++
	wait := b.eta(e.eng.Now())
	// The rate-limit hold reads as scheduler time: open the span now,
	// before the timed re-enqueue, so the wait is attributed.
	d.Trace.BeginStage(trace.StageDNESched, e.actorLabel)
	e.eng.After(wait, func() {
		e.sched.Enqueue(d.Tenant, d)
		e.work.Pulse()
	})
}

// txOne runs one descriptor through the TX stage. Routing runs on the
// interned fast path: tenant and destination resolve by dense ID (slice
// indexing) when the descriptor carries hints, with the string maps as the
// slow-path fallback for hintless callers.
func (e *Engine) txOne(pr *sim.Proc, d mempool.Descriptor) {
	if d.Spec != nil && d.Spec() {
		// A speculative clone whose group already completed elsewhere:
		// kill it at the TX gate, before it spends engine work or a WR.
		// The buffer returns to the tenant pool here; the DWRR credit it
		// consumed stays spent (cloning still pays for its queue slot).
		now := e.eng.Now()
		d.Trace.Record(trace.StageSpecCancel, e.actorLabel, now, now)
		e.specDrops++
		e.frDrop(flightrec.KindSpecCancel, &d)
		e.releaseBuffer(d)
		return
	}
	ts := e.tenantOf(&d)
	var b *tokenBucket
	if ts != nil {
		b = e.limitByID[ts.id]
	} else {
		b = e.limits[d.Tenant]
	}
	if b != nil && !b.take(e.eng.Now()) {
		// Out-of-line so the re-enqueue closure doesn't force d to escape
		// to the heap on the (closure-free) fast path below.
		e.deferRateLimited(b, d)
		return
	}
	sp := d.Trace.Begin(trace.StageDNETx, e.actorLabel)
	e.worker.Exec(pr, e.p.DNETxCost+e.perMsgExtra())
	nodeIdx := int32(-1)
	if d.DstID > 0 {
		nodeIdx = e.routeByFn[d.DstID-1]
	} else if id, ok := e.fnIDs[d.Dst]; ok {
		nodeIdx = e.routeByFn[id]
	}
	if nodeIdx < 0 {
		e.dropNoRoute++
		e.frDrop(flightrec.KindDropNoRoute, &d)
		e.releaseBuffer(d)
		sp.End()
		return
	}
	if e.fwd != nil && nodeIdx != e.selfIdx {
		// Cross-node hop with a gateway tier attached: hand the descriptor
		// to the gateway, which owns the inter-node QPs and the route table.
		// A refusal (destination isn't a peer gateway, e.g. the ingress
		// backend) falls through to the engine's direct per-tenant QPs.
		if e.fwd.ForwardRemote(d, e.nodeNames[nodeIdx]) {
			sp.End()
			e.txCount++
			e.fwdOut++
			if ts != nil {
				ts.TxMeter.Inc(1)
			}
			return
		}
	}
	var cp *rdma.ConnPool
	if ts != nil {
		cp = e.poolByNT[nodeIdx][ts.id]
	} else {
		cp = e.pools[e.nodeNames[nodeIdx]][d.Tenant]
	}
	if cp == nil {
		e.dropNoRoute++
		e.frDrop(flightrec.KindDropNoRoute, &d)
		e.releaseBuffer(d)
		sp.End()
		return
	}
	if e.cfg.Mode == OnPath {
		// Stage payload into SoC memory through the slow DMA engine; the
		// run-to-completion loop waits for it (§4.1.1).
		e.socDMA.TransferBlocking(pr, d.Len)
	}
	e.worker.Exec(pr, e.p.VerbsPostCost)
	qp := cp.Pick()
	qp.PostSend(d)
	sp.End()
	e.txCount++
	if ts != nil {
		ts.TxMeter.Inc(1)
	}
}

// handleCQE runs the RX stage for one completion.
func (e *Engine) handleCQE(pr *sim.Proc, cqe rdma.CQE) {
	switch cqe.Op {
	case rdma.OpSend:
		// Sender-side completion: recycle the source buffer.
		e.worker.Exec(pr, e.p.VerbsPostCost/2)
		cqe.Desc.Trace.EndStage(trace.StageRDMAAck)
		if cqe.Status != rdma.StatusOK {
			e.sendErrors++
			// Transport-level failure (link loss, errored QP): retry the
			// descriptor through the scheduler for at-least-once delivery,
			// up to a bounded budget.
			d := cqe.Desc
			if d.Tenant != "" && d.Retries < 5 {
				d.Retries++
				e.retriedSends++
				e.enqueue(d)
				return
			}
			e.dropRetryBudget++
			e.frDrop(flightrec.KindDropRetry, &d)
		}
		e.releaseBuffer(cqe.Desc)
	case rdma.OpRecv:
		cqe.Desc.Trace.EndStage(trace.StageRDMACQ)
		sp := cqe.Desc.Trace.Begin(trace.StageDNERx, e.actorLabel)
		e.worker.Exec(pr, e.p.DNERxCost)
		if e.cfg.Mode == OnPath {
			// Data was staged in SoC memory; push it to the host pool.
			e.socDMA.TransferBlocking(pr, cqe.Bytes)
		}
		d := cqe.Desc
		fp, ok := e.ports[d.Dst]
		if !ok {
			e.dropNoPort++
			e.frDrop(flightrec.KindDropNoPort, &d)
			e.releaseRQBuffer(d)
			sp.End()
			return
		}
		ts := e.tenantOf(&d)
		if ts != nil {
			// Hand the landed buffer from the RQ owner to the function.
			if err := ts.pool.Transfer(d.Buf, e.rqOwner, mempool.Owner(d.Dst)); err != nil {
				panic(fmt.Sprintf("dne: RX ownership handoff failed: %v", err))
			}
			ts.RxMeter.Inc(1)
		}
		e.rxCount++
		cost := fp.engineSidePushCost()
		if cost > 0 {
			e.worker.Exec(pr, cost)
		}
		sp.End()
		fp.engineSidePush(d)
	}
}

// gwDeliver ingests a gateway-landed descriptor for a local function: the
// twin of the OpRecv path, with the buffer arriving under the gateway's
// owner instead of the RQ's.
func (e *Engine) gwDeliver(pr *sim.Proc, d mempool.Descriptor) {
	sp := d.Trace.Begin(trace.StageDNERx, e.actorLabel)
	e.worker.Exec(pr, e.p.DNERxCost)
	fp, ok := e.ports[d.Dst]
	if !ok {
		e.dropNoPort++
		e.frDrop(flightrec.KindDropNoPort, &d)
		if ts := e.tenantOf(&d); ts != nil {
			if err := ts.pool.Put(d.Buf, e.gwOwner); err != nil {
				panic(fmt.Sprintf("dne: gateway buffer recycle failed: %v", err))
			}
		}
		sp.End()
		return
	}
	ts := e.tenantOf(&d)
	if ts != nil {
		if err := ts.pool.Transfer(d.Buf, e.gwOwner, mempool.Owner(d.Dst)); err != nil {
			panic(fmt.Sprintf("dne: gateway RX ownership handoff failed: %v", err))
		}
		ts.RxMeter.Inc(1)
	}
	e.rxCount++
	if cost := fp.engineSidePushCost(); cost > 0 {
		e.worker.Exec(pr, cost)
	}
	sp.End()
	fp.engineSidePush(d)
}

// actor labels this engine's spans.
func (e *Engine) actor() string { return e.actorLabel }

// enqueue feeds a descriptor to the tenant scheduler, opening its
// scheduler-wait span (closed when the TX stage pops it).
func (e *Engine) enqueue(d mempool.Descriptor) {
	d.Trace.BeginStage(trace.StageDNESched, e.actorLabel)
	e.sched.Enqueue(d.Tenant, d)
}

// releaseBuffer recycles a buffer the engine owns after a send completes or
// a drop occurs. Send CQEs carry no descriptor in this model, so TX-side
// recycling happens here at post time bookkeeping: the engine owns the
// buffer from ingest until the send completes; we recycle on the send CQE
// via pendingTx tracking below.
func (e *Engine) releaseBuffer(d mempool.Descriptor) {
	if d.Tenant == "" {
		return
	}
	ts := e.tenantOf(&d)
	if ts == nil {
		return
	}
	if cur, err := ts.pool.OwnerOf(d.Buf); err == nil && cur == e.engOwner {
		if err := ts.pool.Put(d.Buf, e.engOwner); err != nil {
			panic(fmt.Sprintf("dne: buffer recycle failed: %v", err))
		}
	}
}

// releaseRQBuffer recycles an RQ-owned landed buffer on drops.
func (e *Engine) releaseRQBuffer(d mempool.Descriptor) {
	ts := e.tenantOf(&d)
	if ts == nil {
		return
	}
	if err := ts.pool.Put(d.Buf, e.rqOwner); err != nil {
		panic(fmt.Sprintf("dne: RQ buffer recycle failed: %v", err))
	}
}

// keeperLoop is the DNE core thread (§3.2): it pre-posts receive buffers
// and then replenishes each tenant's SRQ to match consumed CQEs (§3.5.2),
// and periodically shrinks idle connection pools (§3.3).
func (e *Engine) keeperLoop(pr *sim.Proc) {
	// Initial posting.
	for _, ts := range e.tenantSeq {
		e.replenish(pr, ts, e.cfg.InitialRQ)
	}
	shrinkEvery := 100 // replenish rounds between pool shrinks
	round := 0
	for {
		pr.Sleep(e.cfg.ReplenishEvery)
		for _, ts := range e.tenantSeq {
			n := int(ts.srq.ConsumedReset()) + ts.rqDebt
			if n > 0 {
				ts.rqDebt = n - e.replenish(pr, ts, n)
			}
		}
		round++
		if round%shrinkEvery == 0 {
			for _, cp := range e.poolSeq {
				cp.Shrink()
			}
		}
		// Re-handshake any connections that errored out (link failures).
		for _, cp := range e.poolSeq {
			cp.Repair()
		}
	}
}

// replenish posts up to n receive buffers from the tenant pool to its SRQ,
// in batches of ReplenishBatch (doorbell-batched GetN + PostRecvN), and
// returns how many it posted (the caller carries any shortfall forward as
// rqDebt). Buffers come out in the same order one-at-a-time Gets would
// deliver, and the posting cost is charged per buffer, so batch size does
// not affect simulation output.
func (e *Engine) replenish(pr *sim.Proc, ts *tenantState, n int) int {
	posted := 0
	for posted < n {
		want := n - posted
		if want > len(e.rqBufs) {
			want = len(e.rqBufs)
		}
		got, _ := ts.pool.GetN(e.rqOwner, e.rqBufs[:want])
		if got == 0 {
			break // pool pressure: retry next round
		}
		for i := 0; i < got; i++ {
			e.rqDescs[i] = mempool.Descriptor{Tenant: ts.name, TenantID: ts.id + 1, Buf: e.rqBufs[i]}
		}
		ts.srq.PostRecvN(e.rqDescs[:got])
		posted += got
		if got < want {
			break
		}
	}
	if posted > 0 {
		// Batched posting cost on the core thread.
		e.keeper.Exec(pr, time.Duration(posted)*e.p.VerbsPostCost/4)
	}
	return posted
}

// SchedPending reports descriptors queued in the tenant scheduler (TX
// backlog) — diagnostic for fairness experiments.
func (e *Engine) SchedPending() int { return e.sched.Pending() }

// PortBacklog reports descriptors delivered to a function's channel but not
// yet ingested by the engine loop.
func (e *Engine) PortBacklog(fn string) int {
	fp := e.ports[fn]
	if fp == nil {
		return 0
	}
	if fp.comch != nil {
		return fp.comch.PendingFromHost()
	}
	return fp.toEngine.Pending()
}

// tokenBucket is a standard rate limiter: rate tokens/second, capped burst.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Duration
}

func (b *tokenBucket) refill(now time.Duration) {
	if now > b.last {
		b.tokens += b.rate * (now - b.last).Seconds()
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}

// take consumes one token if available (with an epsilon so floating-point
// refill rounding cannot wedge the bucket just below a whole token).
func (b *tokenBucket) take(now time.Duration) bool {
	b.refill(now)
	if b.tokens >= 1-1e-9 {
		b.tokens--
		return true
	}
	return false
}

// eta reports how long until one token accrues, floored at 1us so deferred
// descriptors always make wall-clock progress.
func (b *tokenBucket) eta(now time.Duration) time.Duration {
	b.refill(now)
	if b.tokens >= 1-1e-9 {
		return 0
	}
	d := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	if d < time.Microsecond {
		d = time.Microsecond
	}
	return d
}

// SetRateLimit caps a tenant's transmit rate at rps (0 removes the cap).
// Enforcement happens in the TX stage, after scheduling — a per-tenant
// policy plugged into the engine, as §4.2 envisions.
func (e *Engine) SetRateLimit(tenant string, rps float64) {
	var b *tokenBucket
	if rps > 0 {
		b = &tokenBucket{rate: rps, burst: rps / 100 * 2, tokens: rps / 100, last: e.eng.Now()}
	}
	if ts := e.tenants[tenant]; ts != nil {
		e.limitByID[ts.id] = b
		return
	}
	if b == nil {
		delete(e.limits, tenant)
		return
	}
	e.limits[tenant] = b
}

// RateDeferred reports descriptors delayed by rate limits.
func (e *Engine) RateDeferred() uint64 { return e.rateDeferred }
