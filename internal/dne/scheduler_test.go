package dne

import (
	"testing"
	"testing/quick"

	"nadino/internal/mempool"
)

func desc(tenant string, size int) mempool.Descriptor {
	return mempool.Descriptor{Tenant: tenant, Len: size}
}

func TestFCFSOrder(t *testing.T) {
	s := NewFCFS()
	s.Enqueue("a", mempool.Descriptor{Tenant: "a", Seq: 1})
	s.Enqueue("b", mempool.Descriptor{Tenant: "b", Seq: 2})
	s.Enqueue("a", mempool.Descriptor{Tenant: "a", Seq: 3})
	var got []uint64
	for {
		d, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, d.Seq)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("FCFS order = %v", got)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestDWRRWeightedShares(t *testing.T) {
	s := NewDWRR(2048)
	s.SetWeight("t1", 6)
	s.SetWeight("t2", 1)
	s.SetWeight("t3", 2)
	// All tenants deeply backlogged with equal-size messages.
	for i := 0; i < 3000; i++ {
		s.Enqueue("t1", desc("t1", 1024))
		s.Enqueue("t2", desc("t2", 1024))
		s.Enqueue("t3", desc("t3", 1024))
	}
	counts := map[string]int{}
	for i := 0; i < 1800; i++ {
		d, ok := s.Next()
		if !ok {
			t.Fatal("scheduler ran dry while backlogged")
		}
		counts[d.Tenant]++
	}
	total := counts["t1"] + counts["t2"] + counts["t3"]
	shares := map[string]float64{}
	for k, v := range counts {
		shares[k] = float64(v) / float64(total)
	}
	want := map[string]float64{"t1": 6.0 / 9, "t2": 1.0 / 9, "t3": 2.0 / 9}
	for k, w := range want {
		if shares[k] < w-0.03 || shares[k] > w+0.03 {
			t.Errorf("tenant %s share = %.3f, want ~%.3f (counts=%v)", k, shares[k], w, counts)
		}
	}
}

func TestDWRRByteFairnessWithMixedSizes(t *testing.T) {
	// Equal weights but one tenant sends 4x larger messages: it should get
	// ~1/4 the message rate (equal bytes).
	s := NewDWRR(4096)
	s.SetWeight("small", 1)
	s.SetWeight("big", 1)
	for i := 0; i < 4000; i++ {
		s.Enqueue("small", desc("small", 1024))
		s.Enqueue("big", desc("big", 4096))
	}
	bytes := map[string]int{}
	for i := 0; i < 2000; i++ {
		d, ok := s.Next()
		if !ok {
			break
		}
		bytes[d.Tenant] += msgBytes(d)
	}
	ratio := float64(bytes["small"]) / float64(bytes["big"])
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("byte share ratio = %.2f, want ~1.0 (bytes=%v)", ratio, bytes)
	}
}

func TestDWRRIdleTenantDoesNotAccumulateCredit(t *testing.T) {
	// A tenant that was idle must not burst past its share when it joins:
	// deficit resets when the queue empties.
	s := NewDWRR(2048)
	s.SetWeight("steady", 1)
	s.SetWeight("bursty", 1)
	for i := 0; i < 100; i++ {
		s.Enqueue("steady", desc("steady", 1024))
	}
	for i := 0; i < 50; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatal("ran dry")
		}
	}
	// Bursty joins late with a flood.
	for i := 0; i < 100; i++ {
		s.Enqueue("bursty", desc("bursty", 1024))
	}
	counts := map[string]int{}
	for i := 0; i < 50; i++ {
		d, ok := s.Next()
		if !ok {
			break
		}
		counts[d.Tenant]++
	}
	if counts["bursty"] > counts["steady"]*2 {
		t.Fatalf("late joiner burst past its share: %v", counts)
	}
}

func TestDWRRSingleTenantDrains(t *testing.T) {
	s := NewDWRR(64) // quantum smaller than messages: needs multiple rounds
	s.SetWeight("t", 1)
	for i := 0; i < 10; i++ {
		s.Enqueue("t", desc("t", 1024))
	}
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Fatalf("drained %d of 10", n)
	}
}

// Property: DWRR conserves messages for any enqueue pattern.
func TestDWRRConservationProperty(t *testing.T) {
	f := func(sizes []uint16, tenantsRaw uint8) bool {
		nTenants := int(tenantsRaw%4) + 1
		s := NewDWRR(2048)
		names := []string{"a", "b", "c", "d"}[:nTenants]
		for i, w := range []int{1, 2, 3, 4}[:nTenants] {
			s.SetWeight(names[i], w)
		}
		for i, sz := range sizes {
			s.Enqueue(names[i%nTenants], desc(names[i%nTenants], int(sz%8192)))
		}
		got := 0
		for {
			if _, ok := s.Next(); !ok {
				break
			}
			got++
		}
		return got == len(sizes) && s.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
