package dne

import (
	"fmt"
	"time"

	"nadino/internal/dpu"
	"nadino/internal/ipc"
	"nadino/internal/mempool"
	"nadino/internal/sim"
	"nadino/internal/trace"
)

// Execer is any core a cost can be charged to (Processor or CorePool).
type Execer interface {
	Exec(p *sim.Proc, cost time.Duration)
}

// FnPort is a function's descriptor channel to the node's network engine:
// a DOCA Comch endpoint when the engine is on the DPU, an SK_MSG socket
// pair when it is the CPU-hosted CNE. It is the only way a function touches
// the RDMA data plane — the isolation boundary of §3.3.
type FnPort struct {
	fn     string
	tenant string
	engine *Engine

	comch    *dpu.Endpoint
	toEngine *ipc.SKMsg // fn -> CNE
	toFn     *ipc.SKMsg // CNE -> fn

	// Send fast-path caches: the resolved tenant state (lazily bound, since
	// tenants may register after AttachFunction), the function's owner
	// string, and a single-entry destination-ID memo — echo-style traffic
	// sends to one destination, so the memo turns the per-request fn-ID
	// lookup into two comparisons.
	ts        *tenantState
	fnOwner   mempool.Owner
	memoDst   string
	memoDstID int32
}

// Fn reports the attached function's ID.
func (fp *FnPort) Fn() string { return fp.fn }

// Send hands a descriptor (and the buffer it owns) to the engine for
// inter-node transmission. The calling function must own d.Buf; ownership
// moves to the engine. core is the function's core, charged the channel
// send cost.
func (fp *FnPort) Send(pr *sim.Proc, core Execer, d mempool.Descriptor) error {
	d.Tenant = fp.tenant
	ts := fp.ts
	if ts == nil {
		ts = fp.engine.tenants[fp.tenant]
		if ts == nil {
			return fmt.Errorf("dne: tenant %q not registered with engine", fp.tenant)
		}
		fp.ts = ts
		fp.fnOwner = mempool.Owner(fp.fn)
	}
	d.TenantID = ts.id + 1
	if d.Dst == fp.memoDst {
		d.DstID = fp.memoDstID
	} else if id, ok := fp.engine.fnIDs[d.Dst]; ok {
		d.DstID = id + 1
		fp.memoDst, fp.memoDstID = d.Dst, id+1
	} else {
		d.DstID = 0
	}
	if err := ts.pool.Transfer(d.Buf, fp.fnOwner, fp.engine.engOwner); err != nil {
		return err
	}
	sp := d.Trace.Begin(trace.StagePortSend, fp.fn)
	if fp.comch != nil {
		core.Exec(pr, fp.comch.SendCost())
		sp.End()
		fp.comch.SendToDNE(d)
	} else {
		core.Exec(pr, fp.toEngine.SendCost())
		sp.End()
		fp.toEngine.Send(d)
	}
	return nil
}

// Recv blocks until the engine delivers a descriptor for this function.
// The returned buffer is owned by the function. core is charged the
// channel wakeup cost.
func (fp *FnPort) Recv(pr *sim.Proc, core Execer) mempool.Descriptor {
	if fp.comch != nil {
		d := fp.comch.RecvOnHost(pr)
		sp := d.Trace.Begin(trace.StagePortRecv, fp.fn)
		if c := fp.comch.HostWakeupCost(); c > 0 {
			core.Exec(pr, c)
		}
		sp.End()
		return d
	}
	d := fp.toFn.Recv(pr)
	sp := d.Trace.Begin(trace.StagePortRecv, fp.fn)
	core.Exec(pr, fp.toFn.WakeupCost())
	sp.End()
	return d
}

// TryRecv is the non-blocking variant for functions that poll (Comch-P).
func (fp *FnPort) TryRecv() (mempool.Descriptor, bool) {
	if fp.comch != nil {
		return fp.comch.TryRecvOnHost()
	}
	return fp.toFn.TryRecv()
}

// PinsHostCore reports whether this channel burns a host core on polling.
func (fp *FnPort) PinsHostCore() bool {
	return fp.comch != nil && fp.comch.PinsHostCore()
}

// engineSidePull fetches one pending fn->engine descriptor plus the cost
// the engine core must pay to ingest it: the Comch progress-engine share on
// the DPU, or the backlog-scaled interrupt cost on the CNE.
func (fp *FnPort) engineSidePull() (mempool.Descriptor, time.Duration, bool) {
	if fp.comch != nil {
		d, ok := fp.comch.TryRecvFromHost()
		if !ok {
			return mempool.Descriptor{}, 0, false
		}
		return d, fp.comch.DNERecvCost(len(fp.engine.ports)), true
	}
	// Interrupt pressure scales with how loaded the engine already is:
	// each SK_MSG arrival preempts in-progress engine work (softirq,
	// context switch, cache pollution), so the per-event cost grows as
	// backlog builds — the receive-livelock dynamic that throttles the
	// CNE at high concurrency (§4.3) and that the DNE's hardware-polled
	// Comch input never pays.
	backlog := fp.toEngine.Pending() + fp.engine.sched.Pending()
	d, ok := fp.toEngine.TryRecv()
	if !ok {
		return mempool.Descriptor{}, 0, false
	}
	return d, fp.toEngine.InterruptCost(backlog), true
}

// engineSidePushCost is the engine-side cost of pushing one descriptor to
// the function.
func (fp *FnPort) engineSidePushCost() time.Duration {
	if fp.comch != nil {
		return fp.comch.SendCost()
	}
	return fp.toFn.SendCost()
}

// engineSidePush ships a descriptor engine -> function.
func (fp *FnPort) engineSidePush(d mempool.Descriptor) {
	if fp.comch != nil {
		fp.comch.SendToHost(d)
		return
	}
	fp.toFn.Send(d)
}
