// Package dne implements NADINO's DPU Network Engine (§3.2-§3.3): a
// run-to-completion reverse proxy that owns the node's RDMA resources on
// behalf of untrusted tenant functions, schedules inter-node transfers
// across tenants (Deficit Weighted Round Robin), keeps receive queues
// replenished per tenant, and bridges descriptors between host functions
// and the RNIC over DOCA Comch. The same engine can be hosted on a CPU core
// (the paper's CNE apples-to-apples baseline) where it ingests descriptors
// over SK_MSG and pays interrupt costs instead.
package dne

import (
	"nadino/internal/mempool"
	"nadino/internal/ring"
)

// SchedulerKind selects the tenant scheduling policy.
type SchedulerKind int

// Scheduling policies compared in Fig. 15.
const (
	// SchedDWRR is NADINO's Deficit Weighted Round Robin scheduler:
	// backlogged tenants share RNIC bandwidth in proportion to weights.
	SchedDWRR SchedulerKind = iota
	// SchedFCFS is the baseline without multi-tenancy handling: one FIFO,
	// first-come-first-served, bursty tenants starve steady ones.
	SchedFCFS
)

// Scheduler orders tenant traffic for the TX stage.
type Scheduler interface {
	// Enqueue adds a descriptor to its tenant's queue.
	Enqueue(tenant string, d mempool.Descriptor)
	// Next removes the next descriptor to transmit.
	Next() (mempool.Descriptor, bool)
	// Pending reports queued descriptors across tenants.
	Pending() int
}

// fcfs is a single FIFO across all tenants.
type fcfs struct {
	q ring.Deque[mempool.Descriptor]
}

// NewFCFS returns the no-isolation baseline scheduler.
func NewFCFS() Scheduler { return &fcfs{} }

func (s *fcfs) Enqueue(_ string, d mempool.Descriptor) { s.q.PushBack(d) }

func (s *fcfs) Next() (mempool.Descriptor, bool) {
	if s.q.Len() == 0 {
		return mempool.Descriptor{}, false
	}
	return s.q.PopFront(), true
}

func (s *fcfs) Pending() int { return s.q.Len() }

// dwrrQueue is one tenant's state in the DWRR scheduler.
type dwrrQueue struct {
	tenant  string
	weight  int
	deficit int
	granted bool // quantum granted for the current turn
	q       ring.Deque[mempool.Descriptor]
}

// dwrr implements Shreedhar-Varghese deficit weighted round robin over
// tenant queues, with byte-based quanta so large payloads don't let a
// tenant exceed its share.
type dwrr struct {
	quantumUnit int // bytes of quantum per unit weight per round
	queues      map[string]*dwrrQueue
	active      ring.Deque[*dwrrQueue] // round-robin ring of backlogged tenants
	pending     int

	// Single-entry Enqueue memo: per-tenant workloads enqueue runs of the
	// same tenant, so remembering the last queue skips the map lookup.
	memoTenant string
	memoQ      *dwrrQueue
}

// NewDWRR returns NADINO's weighted fair scheduler. quantumUnit is the
// byte quantum granted per unit of weight per round; it should be at least
// the largest message size divided by the smallest weight to keep per-round
// progress positive.
func NewDWRR(quantumUnit int) *DWRR {
	return &DWRR{dwrr{quantumUnit: quantumUnit, queues: make(map[string]*dwrrQueue)}}
}

// DWRR is the exported handle for the weighted scheduler (so callers can
// set weights).
type DWRR struct {
	dwrr
}

// SetWeight registers or updates a tenant's weight (default 1).
func (s *DWRR) SetWeight(tenant string, weight int) {
	if weight <= 0 {
		panic("dne: non-positive DWRR weight")
	}
	q := s.queue(tenant)
	q.weight = weight
}

func (s *dwrr) queue(tenant string) *dwrrQueue {
	q, ok := s.queues[tenant]
	if !ok {
		q = &dwrrQueue{tenant: tenant, weight: 1}
		s.queues[tenant] = q
	}
	return q
}

// Enqueue implements Scheduler.
func (s *dwrr) Enqueue(tenant string, d mempool.Descriptor) {
	q := s.memoQ
	if q == nil || tenant != s.memoTenant {
		q = s.queue(tenant)
		s.memoTenant, s.memoQ = tenant, q
	}
	if q.q.Len() == 0 {
		q.deficit = 0
		s.active.PushBack(q)
	}
	q.q.PushBack(d)
	s.pending++
}

// msgBytes is the scheduling cost of a descriptor: its payload plus header
// overhead, floored so zero-length control messages still consume quantum.
func msgBytes(d mempool.Descriptor) int {
	n := d.Len + 64
	if n < 64 {
		n = 64
	}
	return n
}

// Next implements Scheduler: serve the head of the active ring. Each
// backlogged tenant's turn grants one quantum; when the deficit can't cover
// the head-of-line message the turn ends and the tenant rotates to the back
// keeping its deficit (Shreedhar-Varghese).
func (s *dwrr) Next() (mempool.Descriptor, bool) {
	for s.active.Len() > 0 {
		q := s.active.Front()
		if q.q.Len() == 0 {
			// Exhausted queue leaves the ring and forfeits its deficit.
			s.active.PopFront()
			q.deficit = 0
			q.granted = false
			continue
		}
		if !q.granted {
			q.deficit += q.weight * s.quantumUnit
			q.granted = true
		}
		need := msgBytes(q.q.Front())
		if q.deficit < need {
			// Turn over: rotate, keep the deficit for the next round.
			q.granted = false
			s.active.PushBack(s.active.PopFront())
			continue
		}
		d := q.q.PopFront()
		q.deficit -= need
		s.pending--
		if q.q.Len() == 0 {
			s.active.PopFront()
			q.deficit = 0
			q.granted = false
		}
		return d, true
	}
	return mempool.Descriptor{}, false
}

// Pending implements Scheduler.
func (s *dwrr) Pending() int { return s.pending }

// SchedPriority is a strict-priority scheduler: the backlogged tenant with
// the highest weight always transmits first (starvation by design — the
// paper notes DNE policies are user-customizable, §4.2; this is the
// latency-tier policy a platform might pair with DWRR).
const SchedPriority SchedulerKind = 2

// priority implements strict-priority scheduling across tenant queues.
type priority struct {
	weights map[string]int
	queues  map[string]*ring.Deque[mempool.Descriptor]
	order   []string                          // tenants sorted by descending weight, stable
	ordered []*ring.Deque[mempool.Descriptor] // queues in order[] sequence
	pending int
}

// NewPriority returns a strict-priority scheduler.
func NewPriority() *Priority {
	return &Priority{priority{
		weights: make(map[string]int),
		queues:  make(map[string]*ring.Deque[mempool.Descriptor]),
	}}
}

// Priority is the exported handle for the strict-priority scheduler.
type Priority struct {
	priority
}

// SetWeight registers a tenant's priority (higher serves first).
func (s *Priority) SetWeight(tenant string, weight int) {
	if _, ok := s.weights[tenant]; !ok {
		// Insert keeping descending weight order; FIFO among equals.
		idx := len(s.order)
		for i, name := range s.order {
			if s.weights[name] < weight {
				idx = i
				break
			}
		}
		s.order = append(s.order, "")
		copy(s.order[idx+1:], s.order[idx:])
		s.order[idx] = tenant
		s.ordered = append(s.ordered, nil)
		copy(s.ordered[idx+1:], s.ordered[idx:])
		s.ordered[idx] = s.tenantQueue(tenant)
	}
	s.weights[tenant] = weight
}

func (s *priority) tenantQueue(tenant string) *ring.Deque[mempool.Descriptor] {
	q, ok := s.queues[tenant]
	if !ok {
		q = &ring.Deque[mempool.Descriptor]{}
		s.queues[tenant] = q
	}
	return q
}

// Enqueue implements Scheduler.
func (s *priority) Enqueue(tenant string, d mempool.Descriptor) {
	if _, ok := s.weights[tenant]; !ok {
		s.weights[tenant] = 0
		s.order = append(s.order, tenant)
		s.ordered = append(s.ordered, s.tenantQueue(tenant))
	}
	s.tenantQueue(tenant).PushBack(d)
	s.pending++
}

// Next implements Scheduler: drain the highest-priority backlog first.
func (s *priority) Next() (mempool.Descriptor, bool) {
	for _, q := range s.ordered {
		if q.Len() == 0 {
			continue
		}
		s.pending--
		return q.PopFront(), true
	}
	return mempool.Descriptor{}, false
}

// Pending implements Scheduler.
func (s *priority) Pending() int { return s.pending }
