package dne

import (
	"testing"
	"time"

	"nadino/internal/dpu"
	"nadino/internal/fabric"
	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/rdma"
	"nadino/internal/sim"
)

// pairRig is a two-worker-node cluster with an engine per node, one tenant,
// and an echo client/server function pair — the basic fixture behind the
// Fig. 6/11/15 microbenchmarks.
type pairRig struct {
	eng          *sim.Engine
	p            *params.Params
	net          *fabric.Network
	ea, eb       *Engine
	poolA, poolB *mempool.Pool
	coreA, coreB *sim.Processor // host cores for the functions
	portCli      *FnPort
	portSrv      *FnPort
	ready        *sim.Queue[struct{}]
}

type rigOpt func(*Config, *Config)

func withMode(m Mode) rigOpt {
	return func(a, b *Config) { a.Mode, b.Mode = m, m }
}

func withLoc(l Location) rigOpt {
	return func(a, b *Config) { a.Loc, b.Loc = l, l }
}

func withSched(s SchedulerKind) rigOpt {
	return func(a, b *Config) { a.Sched, b.Sched = s, s }
}

const rigTenant = "tenant_1"

func newPairRig(t *testing.T, seed int64, p *params.Params, opts ...rigOpt) *pairRig {
	t.Helper()
	eng := sim.NewEngine(seed)
	t.Cleanup(eng.Stop)
	net := fabric.New(eng, p)
	dA := dpu.New(eng, p, "nodeA", net, 2)
	dB := dpu.New(eng, p, "nodeB", net, 2)

	cfgA := Config{Node: "nodeA", Channel: dpu.ComchE}
	cfgB := Config{Node: "nodeB", Channel: dpu.ComchE}
	for _, o := range opts {
		o(&cfgA, &cfgB)
	}
	var hostA, hkA, hostB, hkB *sim.Processor
	if cfgA.Loc == OnCPU {
		hostA = sim.NewProcessor(eng, "cneA", p.HostCoreSpeed)
		hkA = sim.NewProcessor(eng, "cneA-k", p.HostCoreSpeed)
		hostB = sim.NewProcessor(eng, "cneB", p.HostCoreSpeed)
		hkB = sim.NewProcessor(eng, "cneB-k", p.HostCoreSpeed)
	}
	r := &pairRig{
		eng:   eng,
		p:     p,
		net:   net,
		ea:    New(eng, p, cfgA, dA, hostA, hkA),
		eb:    New(eng, p, cfgB, dB, hostB, hkB),
		poolA: mempool.NewPool(rigTenant, 8192, 4096, p.HugepageSize),
		poolB: mempool.NewPool(rigTenant, 8192, 4096, p.HugepageSize),
		coreA: sim.NewProcessor(eng, "hostA", p.HostCoreSpeed),
		coreB: sim.NewProcessor(eng, "hostB", p.HostCoreSpeed),
		ready: sim.NewQueue[struct{}](eng, 0),
	}
	r.ea.AddTenant(rigTenant, r.poolA, 1)
	r.eb.AddTenant(rigTenant, r.poolB, 1)
	r.ea.SetRoute("srv", "nodeB")
	r.eb.SetRoute("cli", "nodeA")
	r.portCli = r.ea.AttachFunction("cli", rigTenant)
	r.portSrv = r.eb.AttachFunction("srv", rigTenant)

	eng.Spawn("setup", func(pr *sim.Proc) {
		cpA, cpB := rdma.EstablishPair(pr, p, rigTenant,
			dA.RNIC(), dB.RNIC(), 8,
			r.ea.SRQ(rigTenant), r.eb.SRQ(rigTenant), r.ea.CQ(), r.eb.CQ())
		r.ea.AddConnPool("nodeB", rigTenant, cpA)
		r.eb.AddConnPool("nodeA", rigTenant, cpB)
		r.ea.Start()
		r.eb.Start()
		r.ready.Put(pr, struct{}{})
	})
	return r
}

// spawnEchoServer runs a server that echoes every request back to its Src.
func (r *pairRig) spawnEchoServer(t *testing.T) {
	r.eng.Spawn("srv", func(pr *sim.Proc) {
		for {
			d := r.portSrv.Recv(pr, r.coreB)
			reply, err := r.poolB.Get("srv")
			if err != nil {
				t.Error(err)
				return
			}
			out := mempool.Descriptor{
				Tenant: rigTenant, Buf: reply, Len: d.Len,
				Src: "srv", Dst: d.Src, Seq: d.Seq, Stamp: d.Stamp, Ctx: d.Ctx,
			}
			if err := r.poolB.Put(d.Buf, "srv"); err != nil {
				t.Error(err)
				return
			}
			if err := r.portSrv.Send(pr, r.coreB, out); err != nil {
				t.Error(err)
				return
			}
		}
	})
}

// runEcho drives n sequential echo round trips of the given payload and
// returns their RTTs.
func (r *pairRig) runEcho(t *testing.T, n, payload int) []time.Duration {
	var rtts []time.Duration
	r.spawnEchoServer(t)
	r.eng.Spawn("cli", func(pr *sim.Proc) {
		r.ready.Get(pr)
		for i := 0; i < n; i++ {
			buf, err := r.poolA.Get("cli")
			if err != nil {
				t.Error(err)
				return
			}
			start := pr.Now()
			d := mempool.Descriptor{
				Tenant: rigTenant, Buf: buf, Len: payload,
				Src: "cli", Dst: "srv", Seq: uint64(i), Stamp: start,
			}
			if err := r.portCli.Send(pr, r.coreA, d); err != nil {
				t.Error(err)
				return
			}
			resp := r.portCli.Recv(pr, r.coreA)
			rtts = append(rtts, pr.Now()-start)
			if err := r.poolA.Put(resp.Buf, "cli"); err != nil {
				t.Error(err)
				return
			}
		}
	})
	r.eng.RunUntil(3 * time.Second)
	return rtts
}

func mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

func TestEngineEchoEndToEnd(t *testing.T) {
	r := newPairRig(t, 1, params.Default())
	rtts := r.runEcho(t, 50, 1024)
	if len(rtts) != 50 {
		t.Fatalf("completed %d of 50 echoes", len(rtts))
	}
	m := mean(rtts)
	// DNE echo adds Comch hops + engine stages on wimpy cores over the raw
	// ~9us verbs RTT; it should land in the tens of microseconds.
	if m < 10*time.Microsecond || m > 100*time.Microsecond {
		t.Fatalf("mean echo RTT = %v, want tens of us", m)
	}
	tx, rx, dnr, dnp, serr := r.ea.Stats()
	if tx != 50 || rx != 50 {
		t.Fatalf("engine A tx=%d rx=%d", tx, rx)
	}
	if dnr != 0 || dnp != 0 || serr != 0 {
		t.Fatalf("drops/errors: %d %d %d", dnr, dnp, serr)
	}
}

func TestEngineNoBufferLeaks(t *testing.T) {
	r := newPairRig(t, 2, params.Default())
	r.runEcho(t, 200, 512)
	// Drain in-flight work, then the only buffers held should be the
	// pre-posted RQ buffers.
	r.eng.RunUntil(r.eng.Now() + time.Second)
	wantA := r.ea.SRQ(rigTenant).Posted()
	if got := r.poolA.InUse(); got != wantA {
		t.Fatalf("pool A in use = %d, want %d (posted RQ only)", got, wantA)
	}
	wantB := r.eb.SRQ(rigTenant).Posted()
	if got := r.poolB.InUse(); got != wantB {
		t.Fatalf("pool B in use = %d, want %d (posted RQ only)", got, wantB)
	}
}

func TestEngineRQReplenishmentKeepsUp(t *testing.T) {
	r := newPairRig(t, 3, params.Default())
	r.runEcho(t, 500, 256)
	if rnr := r.eb.SRQ(rigTenant).RNREvents(); rnr > 0 {
		t.Fatalf("receiver stalled %d times: replenishment fell behind", rnr)
	}
}

func TestOnPathSlowerThanOffPathUnderLoad(t *testing.T) {
	// Fig. 11: with concurrency, the SoC DMA engine queues and the on-path
	// engine falls behind the off-path one.
	run := func(mode Mode) float64 {
		p := params.Default()
		r := newPairRig(t, 4, p, withMode(mode))
		r.spawnEchoServer(t)
		const clients = 8
		done := 0
		for c := 0; c < clients; c++ {
			cid := c
			r.eng.Spawn("cli", func(pr *sim.Proc) {
				r.ready.Get(pr)
				r.ready.TryPut(struct{}{}) // wake the rest
				fn := "cli"
				_ = cid
				for {
					buf, err := r.poolA.Get(mempool.Owner(fn))
					if err != nil {
						t.Error(err)
						return
					}
					d := mempool.Descriptor{Tenant: rigTenant, Buf: buf, Len: 1024, Src: fn, Dst: "srv"}
					if err := r.portCli.Send(pr, r.coreA, d); err != nil {
						t.Error(err)
						return
					}
					resp := r.portCli.Recv(pr, r.coreA)
					done++
					if err := r.poolA.Put(resp.Buf, mempool.Owner(fn)); err != nil {
						t.Error(err)
						return
					}
				}
			})
		}
		r.eng.RunUntil(200 * time.Millisecond)
		elapsed := r.eng.Now() - r.p.QPSetupTime
		return float64(done) / elapsed.Seconds()
	}
	off := run(OffPath)
	on := run(OnPath)
	if on >= off {
		t.Fatalf("on-path RPS (%.0f) not below off-path (%.0f)", on, off)
	}
	ratio := off / on
	if ratio < 1.1 || ratio > 3.0 {
		t.Fatalf("off/on RPS ratio = %.2f, want ~1.2-1.5x (Fig. 11 shows up to ~1.3x)", ratio)
	}
}

func TestEngineOwnershipViolationSurfaceable(t *testing.T) {
	// A function must not be able to send a buffer it does not own.
	r := newPairRig(t, 5, params.Default())
	var sendErr error
	r.eng.Spawn("cli", func(pr *sim.Proc) {
		r.ready.Get(pr)
		buf, _ := r.poolA.Get("someone-else")
		d := mempool.Descriptor{Tenant: rigTenant, Buf: buf, Len: 64, Src: "cli", Dst: "srv"}
		sendErr = r.portCli.Send(pr, r.coreA, d)
	})
	r.eng.RunUntil(time.Second)
	if sendErr == nil {
		t.Fatal("send of unowned buffer succeeded")
	}
}

func TestComchPPortPinsCore(t *testing.T) {
	p := params.Default()
	eng := sim.NewEngine(9)
	defer eng.Stop()
	net := fabric.New(eng, p)
	d := dpu.New(eng, p, "nodeX", net, 2)
	e := New(eng, p, Config{Node: "nodeX", Channel: dpu.ComchP}, d, nil, nil)
	pool := mempool.NewPool("t", 1024, 16, p.HugepageSize)
	e.AddTenant("t", pool, 1)
	fp := e.AttachFunction("fn", "t")
	if !fp.PinsHostCore() {
		t.Fatal("Comch-P port must pin a host core")
	}
	if _, ok := fp.TryRecv(); ok {
		t.Fatal("TryRecv on empty port succeeded")
	}
	if fp.Fn() != "fn" {
		t.Fatalf("Fn = %q", fp.Fn())
	}
}

func TestAttachDuplicateFunctionPanics(t *testing.T) {
	p := params.Default()
	eng := sim.NewEngine(9)
	defer eng.Stop()
	net := fabric.New(eng, p)
	d := dpu.New(eng, p, "nodeX", net, 2)
	e := New(eng, p, Config{Node: "nodeX", Channel: dpu.ComchE}, d, nil, nil)
	e.AttachFunction("fn", "t")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attach did not panic")
		}
	}()
	e.AttachFunction("fn", "t")
}

func TestEngineDropsUnroutableDescriptors(t *testing.T) {
	// A descriptor whose destination has no route (or whose route has no
	// connection pool) is dropped and its buffer recycled — functions
	// cannot wedge the engine with garbage destinations.
	p := params.Default()
	r := newPairRig(t, 21, p)
	var sendErr error
	r.eng.Spawn("cli", func(pr *sim.Proc) {
		r.ready.Get(pr)
		inUse := r.poolA.InUse()
		// Unknown destination: no route at all.
		buf, _ := r.poolA.Get("cli")
		d := mempool.Descriptor{Tenant: rigTenant, Buf: buf, Len: 64, Src: "cli", Dst: "ghost"}
		sendErr = r.portCli.Send(pr, r.coreA, d)
		pr.Sleep(5 * time.Millisecond)
		if got := r.poolA.InUse(); got != inUse {
			t.Errorf("dropped descriptor leaked a buffer: %d != %d", got, inUse)
		}
	})
	r.eng.RunUntil(time.Second)
	if sendErr != nil {
		t.Fatalf("send itself should succeed (the engine drops): %v", sendErr)
	}
	_, _, dnr, _, _ := r.ea.Stats()
	if dnr == 0 {
		t.Fatal("no-route drop not counted")
	}
}

func TestEngineAccessors(t *testing.T) {
	p := params.Default()
	r := newPairRig(t, 22, p)
	if r.ea.Node() != "nodeA" || r.ea.RNIC() == nil {
		t.Fatal("engine accessors wrong")
	}
	if r.ea.WorkerCore() == nil || r.ea.KeeperCore() == nil {
		t.Fatal("core accessors wrong")
	}
	tx, rx := r.ea.Tenant(rigTenant)
	if tx == nil || rx == nil {
		t.Fatal("tenant meters missing")
	}
	if txm, rxm := r.ea.Tenant("ghost"); txm != nil || rxm != nil {
		t.Fatal("ghost tenant returned meters")
	}
	if r.ea.SchedPending() != 0 || r.ea.PortBacklog("cli") != 0 {
		t.Fatal("fresh engine reports backlog")
	}
	if r.ea.PortBacklog("ghost") != 0 {
		t.Fatal("unknown port backlog not zero")
	}
}
