package dne

import (
	"testing"

	"nadino/internal/mempool"
)

func TestPrioritySchedulerStrictOrdering(t *testing.T) {
	s := NewPriority()
	s.SetWeight("gold", 10)
	s.SetWeight("bronze", 1)
	s.SetWeight("silver", 5)
	for i := 0; i < 3; i++ {
		s.Enqueue("bronze", mempool.Descriptor{Tenant: "bronze", Seq: uint64(i)})
		s.Enqueue("gold", mempool.Descriptor{Tenant: "gold", Seq: uint64(i)})
		s.Enqueue("silver", mempool.Descriptor{Tenant: "silver", Seq: uint64(i)})
	}
	var got []string
	for {
		d, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, d.Tenant)
	}
	want := []string{"gold", "gold", "gold", "silver", "silver", "silver", "bronze", "bronze", "bronze"}
	if len(got) != len(want) {
		t.Fatalf("drained %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestPriorityUnknownTenantStillServed(t *testing.T) {
	s := NewPriority()
	s.Enqueue("walkin", mempool.Descriptor{Tenant: "walkin"})
	if d, ok := s.Next(); !ok || d.Tenant != "walkin" {
		t.Fatal("unregistered tenant lost its message")
	}
}
