package dne

import (
	"testing"
	"time"

	"nadino/internal/chaos"
	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/sim"
)

// TestEngineRecoversFromLinkBlip drives a closed-loop echo workload through
// a mid-run link outage: the engines must retransmit at the transport
// level, retry descriptors at the data-plane level, repair errored QPs, and
// finish every request without leaking a buffer. The outage comes from a
// chaos.Schedule — the same fault path the resilience experiments use.
func TestEngineRecoversFromLinkBlip(t *testing.T) {
	r := newPairRig(t, 7, params.Default())
	net := r.net
	r.spawnEchoServer(t)

	// Eight concurrent request streams keep traffic in flight in both
	// directions when the outage hits. They share the client port; a demux
	// proc routes responses back by sequence number.
	const streams = 8
	const perStream = 150
	const requests = streams * perStream
	completed := 0
	waiters := make(map[uint64]*sim.Queue[mempool.Descriptor])
	r.eng.Spawn("cli-demux", func(pr *sim.Proc) {
		for {
			d := r.portCli.Recv(pr, r.coreA)
			if w, ok := waiters[d.Seq]; ok {
				delete(waiters, d.Seq)
				w.TryPut(d)
			} else if err := r.poolA.Put(d.Buf, "cli"); err != nil {
				// Duplicate delivery (at-least-once retry): recycle it so
				// the leak check stays exact.
				t.Error(err)
			}
		}
	})
	var seq uint64
	for s := 0; s < streams; s++ {
		r.eng.Spawn("cli", func(pr *sim.Proc) {
			r.ready.Get(pr)
			r.ready.TryPut(struct{}{})
			respQ := sim.NewQueue[mempool.Descriptor](r.eng, 0)
			for i := 0; i < perStream; i++ {
				buf, err := r.poolA.Get("cli")
				if err != nil {
					t.Error(err)
					return
				}
				seq++
				id := seq
				waiters[id] = respQ
				d := mempool.Descriptor{
					Tenant: rigTenant, Buf: buf, Len: 1024,
					Src: "cli", Dst: "srv", Seq: id,
				}
				if err := r.portCli.Send(pr, r.coreA, d); err != nil {
					t.Error(err)
					return
				}
				resp := respQ.Get(pr)
				completed++
				if err := r.poolA.Put(resp.Buf, "cli"); err != nil {
					t.Error(err)
					return
				}
			}
		})
	}

	// Outage: node B unreachable for 8ms, early in the workload.
	blipStart := r.p.QPSetupTime + 500*time.Microsecond
	in := chaos.NewInjector(r.eng, net, 7)
	in.Install(chaos.Schedule{
		{At: blipStart, For: 8 * time.Millisecond, Fault: chaos.NodeDown{Node: "nodeB"}},
	})

	r.eng.RunUntil(5 * time.Second)
	if completed != requests {
		t.Fatalf("completed %d of %d requests across the outage", completed, requests)
	}
	if net.Drops() == 0 {
		t.Fatal("the blip dropped nothing — outage did not bite")
	}
	_, _, _, _, serrA := r.ea.Stats()
	_, _, _, _, serrB := r.eb.Stats()
	retriedA, droppedA := r.ea.RetryStats()
	retriedB, droppedB := r.eb.RetryStats()
	if serrA+serrB == 0 || retriedA+retriedB == 0 {
		t.Fatalf("engines saw no send errors (%d/%d) or retries (%d/%d) across the outage",
			serrA, serrB, retriedA, retriedB)
	}
	if droppedA+droppedB != 0 {
		t.Fatalf("%d descriptors exhausted the retry budget during a short blip", droppedA+droppedB)
	}
	// No leaks: only the posted RQ rings remain allocated.
	r.eng.RunUntil(r.eng.Now() + 500*time.Millisecond)
	if got, want := r.poolA.InUse(), r.ea.SRQ(rigTenant).Posted(); got != want {
		t.Fatalf("pool A in use = %d, want %d", got, want)
	}
	if got, want := r.poolB.InUse(), r.eb.SRQ(rigTenant).Posted(); got != want {
		t.Fatalf("pool B in use = %d, want %d", got, want)
	}
}

// TestKeeperRepaysReplenishDebt pins the fix for a starvation bug the chaos
// suite flushed out: the keeper reads the SRQ's ConsumedReset counter before
// it knows whether the tenant pool can actually supply buffers, so any
// replenish shortfall during a pool squeeze must be carried forward as debt.
// Before the fix the count was simply lost and the RQ ring stayed starved
// forever after the squeeze ended.
func TestKeeperRepaysReplenishDebt(t *testing.T) {
	r := newPairRig(t, 11, params.Default())
	const sends = 64
	finished := false
	r.eng.Spawn("squeeze", func(pr *sim.Proc) {
		r.ready.Get(pr)
		r.ready.TryPut(struct{}{})
		pr.Sleep(time.Millisecond) // let the keeper finish initial posting
		posted0 := r.eb.SRQ(rigTenant).Posted()
		if posted0 == 0 {
			t.Error("RQ ring empty before the squeeze")
			return
		}
		// Squeeze: hold every free buffer of pool B so the keeper cannot
		// replenish.
		var held []mempool.Buffer
		for {
			b, err := r.poolB.Get("hog")
			if err != nil {
				break
			}
			held = append(held, b)
		}
		// Consume RQ slots with one-way messages that land at the srv port
		// (nobody drains it, so nothing flows back into the pool).
		for i := 0; i < sends; i++ {
			buf, err := r.poolA.Get("cli")
			if err != nil {
				t.Error(err)
				return
			}
			d := mempool.Descriptor{
				Tenant: rigTenant, Buf: buf, Len: 1024,
				Src: "cli", Dst: "srv", Seq: uint64(i),
			}
			if err := r.portCli.Send(pr, r.coreA, d); err != nil {
				t.Error(err)
				return
			}
		}
		// Several keeper rounds observe the consumed slots while the pool
		// is empty: the ring must shrink and stay short.
		pr.Sleep(2 * time.Millisecond)
		if got := r.eb.SRQ(rigTenant).Posted(); got >= posted0 {
			t.Errorf("squeeze did not bite: posted %d >= %d", got, posted0)
		}
		// Release the squeeze; the keeper must repay the full shortfall.
		for _, b := range held {
			if err := r.poolB.Put(b, "hog"); err != nil {
				t.Error(err)
				return
			}
		}
		pr.Sleep(2 * time.Millisecond)
		if got := r.eb.SRQ(rigTenant).Posted(); got != posted0 {
			t.Errorf("RQ ring not repaid after the squeeze: posted %d, want %d", got, posted0)
		}
		finished = true
	})
	r.eng.RunUntil(time.Second)
	if !finished {
		t.Fatal("squeeze scenario did not run to completion")
	}
}
