package dne

import (
	"testing"
	"time"

	"nadino/internal/fabric"
	"nadino/internal/mempool"
	"nadino/internal/params"
	"nadino/internal/sim"
)

// blipRig extends the pair rig with fabric access for failure injection.
func newBlipRig(t *testing.T, seed int64) (*pairRig, *fabric.Network) {
	t.Helper()
	p := params.Default()
	r := newPairRig(t, seed, p)
	return r, r.net
}

// TestEngineRecoversFromLinkBlip drives a closed-loop echo workload through
// a mid-run link outage: the engines must retransmit at the transport
// level, retry descriptors at the data-plane level, repair errored QPs, and
// finish every request without leaking a buffer.
func TestEngineRecoversFromLinkBlip(t *testing.T) {
	r, net := newBlipRig(t, 7)
	r.spawnEchoServer(t)

	// Eight concurrent request streams keep traffic in flight in both
	// directions when the outage hits. They share the client port; a demux
	// proc routes responses back by sequence number.
	const streams = 8
	const perStream = 150
	const requests = streams * perStream
	completed := 0
	waiters := make(map[uint64]*sim.Queue[mempool.Descriptor])
	r.eng.Spawn("cli-demux", func(pr *sim.Proc) {
		for {
			d := r.portCli.Recv(pr, r.coreA)
			if w, ok := waiters[d.Seq]; ok {
				delete(waiters, d.Seq)
				w.TryPut(d)
			}
		}
	})
	var seq uint64
	for s := 0; s < streams; s++ {
		r.eng.Spawn("cli", func(pr *sim.Proc) {
			r.ready.Get(pr)
			r.ready.TryPut(struct{}{})
			respQ := sim.NewQueue[mempool.Descriptor](r.eng, 0)
			for i := 0; i < perStream; i++ {
				buf, err := r.poolA.Get("cli")
				if err != nil {
					t.Error(err)
					return
				}
				seq++
				id := seq
				waiters[id] = respQ
				d := mempool.Descriptor{
					Tenant: rigTenant, Buf: buf, Len: 1024,
					Src: "cli", Dst: "srv", Seq: id,
				}
				if err := r.portCli.Send(pr, r.coreA, d); err != nil {
					t.Error(err)
					return
				}
				resp := respQ.Get(pr)
				completed++
				if err := r.poolA.Put(resp.Buf, "cli"); err != nil {
					t.Error(err)
					return
				}
			}
		})
	}

	// Outage: node B unreachable for 8ms, early in the workload.
	blipStart := r.p.QPSetupTime + 500*time.Microsecond
	r.eng.At(blipStart, func() { net.SetDown("nodeB", true) })
	r.eng.At(blipStart+8*time.Millisecond, func() { net.SetDown("nodeB", false) })

	r.eng.RunUntil(5 * time.Second)
	if completed != requests {
		t.Fatalf("completed %d of %d requests across the outage", completed, requests)
	}
	if net.Drops() == 0 {
		t.Fatal("the blip dropped nothing — outage did not bite")
	}
	_, _, _, _, serrA := r.ea.Stats()
	_, _, _, _, serrB := r.eb.Stats()
	retriedA, droppedA := r.ea.RetryStats()
	retriedB, droppedB := r.eb.RetryStats()
	if serrA+serrB == 0 || retriedA+retriedB == 0 {
		t.Fatalf("engines saw no send errors (%d/%d) or retries (%d/%d) across the outage",
			serrA, serrB, retriedA, retriedB)
	}
	if droppedA+droppedB != 0 {
		t.Fatalf("%d descriptors exhausted the retry budget during a short blip", droppedA+droppedB)
	}
	// No leaks: only the posted RQ rings remain allocated.
	r.eng.RunUntil(r.eng.Now() + 500*time.Millisecond)
	if got, want := r.poolA.InUse(), r.ea.SRQ(rigTenant).Posted(); got != want {
		t.Fatalf("pool A in use = %d, want %d", got, want)
	}
	if got, want := r.poolB.InUse(), r.eb.SRQ(rigTenant).Posted(); got != want {
		t.Fatalf("pool B in use = %d, want %d", got, want)
	}
}
