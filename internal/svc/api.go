package svc

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"nadino/internal/chaos"
	"nadino/internal/flightrec"
	"nadino/internal/telemetry"
)

// The management API: small JSON endpoints that mutate the running cluster
// under the pacer's engine lock. Every mutation is also dropped into the
// flight recorder as a mark, so a later dump shows what the operator did
// relative to what the system did.

// writeJSON renders v with a status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

// apiError is the uniform error body.
func apiError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// readBody bounds and reads a request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		apiError(w, http.StatusBadRequest, "read body: %v", err)
		return nil, false
	}
	return body, true
}

// handleStatus reports the daemon's vital signs.
func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	type status struct {
		VirtualNow    string  `json:"virtual_now"`
		WallUptime    string  `json:"wall_uptime"`
		Dilation      float64 `json:"dilation"`
		PacerLag      string  `json:"pacer_lag"`
		Ready         bool    `json:"ready"`
		Completed     uint64  `json:"completed"`
		Invoked       uint64  `json:"invoked"`
		Violations    int     `json:"slo_violations"`
		FlightEvents  uint64  `json:"flightrec_events"`
		FaultsApplied int     `json:"faults_applied"`
	}
	var st status
	s.pacer.Do(func() {
		st = status{
			VirtualNow:    s.clu.Eng.Now().String(),
			WallUptime:    time.Since(s.pacer.WallStart()).Round(time.Millisecond).String(),
			Dilation:      s.pacer.Dilation(),
			PacerLag:      s.pacer.Lag().String(),
			Ready:         s.clu.Ready(),
			Completed:     s.clu.Completed.Total(),
			Invoked:       s.invoked.Load(),
			Violations:    len(s.dog.Violations()),
			FlightEvents:  s.rec.Total(),
			FaultsApplied: s.inj.Applied(),
		}
	})
	writeJSON(w, http.StatusOK, st)
}

// handleChaos hot-installs a fault schedule: POST the chaos wire format
// (times relative to receipt) and it is shifted to the engine's now and
// armed.
func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		apiError(w, http.StatusMethodNotAllowed, "POST a chaos schedule (see internal/chaos wire format)")
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	sched, err := chaos.ParseSchedule(body)
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var installed int
	s.pacer.Do(func() {
		s.inj.Install(sched.Shift(s.clu.Eng.Now()))
		s.rec.Record(flightrec.KindMark, s.markActor, int64(len(sched)), 0)
		installed = len(sched)
	})
	writeJSON(w, http.StatusOK, map[string]int{"installed": installed})
}

// handleTenants lists tenant weights (GET) or re-weights one (POST
// {"tenant": "...", "weight": N}).
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		var out any
		s.pacer.Do(func() { out = s.clu.TenantWeights() })
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		body, ok := readBody(w, r)
		if !ok {
			return
		}
		var req struct {
			Tenant string `json:"tenant"`
			Weight int    `json:"weight"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			apiError(w, http.StatusBadRequest, "parse: %v", err)
			return
		}
		applied := false
		s.pacer.Do(func() {
			applied = s.clu.SetTenantWeight(req.Tenant, req.Weight)
			if applied {
				s.rec.Record(flightrec.KindMark, s.markActor, int64(req.Weight), 0)
			}
		})
		if !applied {
			apiError(w, http.StatusBadRequest, "unknown tenant %q or invalid weight %d", req.Tenant, req.Weight)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"tenant": req.Tenant, "weight": req.Weight})
	default:
		apiError(w, http.StatusMethodNotAllowed, "GET or POST")
	}
}

// handleReroute steers a function's route (POST {"fn", "node", "force"}).
func (s *Server) handleReroute(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		apiError(w, http.StatusMethodNotAllowed, "POST {\"fn\": ..., \"node\": ..., \"force\": bool}")
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		Fn    string `json:"fn"`
		Node  string `json:"node"`
		Force bool   `json:"force"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		apiError(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	var err error
	s.pacer.Do(func() {
		err = s.clu.Reroute(req.Fn, req.Node, req.Force)
		if err == nil {
			s.rec.Record(flightrec.KindMark, s.markActor, 0, 0)
		}
	})
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"fn": req.Fn, "node": req.Node})
}

// wireRule is the watchdog rule wire shape.
type wireRule struct {
	Name    string  `json:"name"`
	Series  string  `json:"series"`
	Op      string  `json:"op"` // "<", "<=", ">", ">="
	Bound   float64 `json:"bound"`
	Sustain int     `json:"sustain,omitempty"`
	FromMS  float64 `json:"from_ms,omitempty"`
	ToMS    float64 `json:"to_ms,omitempty"`
}

// parseOp maps the wire operator onto telemetry.Op.
func parseOp(s string) (telemetry.Op, error) {
	switch s {
	case "<":
		return telemetry.OpLT, nil
	case "<=":
		return telemetry.OpLE, nil
	case ">":
		return telemetry.OpGT, nil
	case ">=":
		return telemetry.OpGE, nil
	}
	return 0, fmt.Errorf("unknown op %q (want <, <=, >, >=)", s)
}

// handleWatchdog lists rules and violations (GET) or hot-adds a rule
// (POST wireRule). Rule From/To default to "from now on".
func (s *Server) handleWatchdog(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		type view struct {
			Rules      []telemetry.Rule      `json:"rules"`
			Violations []telemetry.Violation `json:"violations"`
		}
		var out view
		s.pacer.Do(func() {
			out = view{Rules: s.dog.Rules(), Violations: s.dog.Violations()}
		})
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		body, ok := readBody(w, r)
		if !ok {
			return
		}
		var req wireRule
		if err := json.Unmarshal(body, &req); err != nil {
			apiError(w, http.StatusBadRequest, "parse: %v", err)
			return
		}
		if req.Name == "" || req.Series == "" {
			apiError(w, http.StatusBadRequest, "rule needs name and series")
			return
		}
		op, err := parseOp(req.Op)
		if err != nil {
			apiError(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.pacer.Do(func() {
			rule := telemetry.Rule{
				Name: req.Name, Series: req.Series, Op: op, Bound: req.Bound,
				Sustain: req.Sustain,
				From:    s.clu.Eng.Now() + time.Duration(req.FromMS*float64(time.Millisecond)),
			}
			if req.ToMS > 0 {
				rule.To = s.clu.Eng.Now() + time.Duration(req.ToMS*float64(time.Millisecond))
			}
			s.dog.Add(rule)
			s.rec.Record(flightrec.KindMark, s.markActor, int64(rule.Bound), 0)
		})
		writeJSON(w, http.StatusOK, map[string]string{"added": req.Name})
	default:
		apiError(w, http.StatusMethodNotAllowed, "GET or POST")
	}
}

// handleFlightDump renders the flight recorder: ?format=chrome (default)
// for a Chrome/Perfetto trace, ?format=text&last=N for the tail report.
func (s *Server) handleFlightDump(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "chrome"
	}
	lastN := 0
	if q := r.URL.Query().Get("last"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			apiError(w, http.StatusBadRequest, "last: %v", err)
			return
		}
		lastN = n
	}
	var body []byte
	var err error
	s.pacer.Do(func() {
		switch format {
		case "chrome":
			var b strings.Builder
			err = flightrec.WriteChrome(&b, s.rec)
			body = []byte(b.String())
		case "text":
			body = []byte(flightrec.TextDump(s.rec, lastN))
		default:
			err = fmt.Errorf("unknown format %q (want chrome or text)", format)
		}
	})
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if format == "chrome" {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.Write(body)
}

// handleInvoke accepts one chain request: POST /invoke/<chain>?client=N.
// The request is submitted into the simulation and the handler returns
// immediately (202) — completions surface in cluster.goodput and the chain
// latency histograms, which is what an external load generator watches.
func (s *Server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	chain := strings.TrimPrefix(r.URL.Path, "/invoke/")
	if chain == "" {
		apiError(w, http.StatusBadRequest, "POST /invoke/<chain>")
		return
	}
	client := 0
	if q := r.URL.Query().Get("client"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			apiError(w, http.StatusBadRequest, "client: %v", err)
			return
		}
		client = n
	}
	var known bool
	s.pacer.Do(func() {
		if _, ok := s.clu.ChainLatency[chain]; !ok {
			return
		}
		known = true
		s.invoked.Add(1)
		s.clu.SubmitChain(chain, client, nil)
	})
	if !known {
		apiError(w, http.StatusNotFound, "unknown chain %q", chain)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"chain": chain, "client": client})
}
