package svc

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"nadino/internal/chaos"
	"nadino/internal/core"
	"nadino/internal/flightrec"
	"nadino/internal/telemetry"
)

// Options configures a Server.
type Options struct {
	// Addr is the HTTP listen address (e.g. "127.0.0.1:9420"). Required.
	Addr string
	// Dilation is virtual seconds advanced per wall second (default 1.0).
	Dilation float64
	// Slice bounds virtual time per engine hold (default 10ms).
	Slice time.Duration
	// ScrapePeriod is the telemetry scraper's virtual-time period
	// (default 10ms).
	ScrapePeriod time.Duration
	// RetainSamples bounds per-series history (default 600 samples).
	RetainSamples int
	// FlightRecSize is the flight recorder ring capacity
	// (default flightrec.DefaultSize).
	FlightRecSize int
	// DumpDir receives automatic flight dumps on SLO breach ("" disables
	// auto-dump to disk; breaches are always recorded in the ring).
	DumpDir string
	// Chain and RPS optionally run a built-in open-loop load generator:
	// RPS chain requests per virtual second, submitted by an engine
	// ticker. Zero RPS disables it (an external generator drives /invoke).
	Chain string
	RPS   float64
	// ChaosSeed seeds the fault injector (default 1).
	ChaosSeed int64
}

// Server is the nadino-svc daemon: one cluster, one pacer, one HTTP plane.
type Server struct {
	opts  Options
	clu   *core.Cluster
	pacer *Pacer
	reg   *telemetry.Registry
	sc    *telemetry.Scraper
	dog   *telemetry.LiveWatchdog
	rec   *flightrec.Recorder
	inj   *chaos.Injector

	breachActor uint16
	markActor   uint16

	invoked  atomic.Uint64 // requests accepted via /invoke + generator
	dumps    atomic.Uint64 // automatic breach dumps written
	recAtt   bool          // flight recorder attached to cluster hooks
	http     *http.Server
	listener net.Listener
}

// New assembles a server around an already-built (not yet run) cluster.
func New(clu *core.Cluster, opts Options) *Server {
	if opts.Dilation <= 0 {
		opts.Dilation = 1.0
	}
	if opts.ScrapePeriod <= 0 {
		opts.ScrapePeriod = 10 * time.Millisecond
	}
	if opts.RetainSamples <= 0 {
		opts.RetainSamples = 600
	}
	if opts.FlightRecSize <= 0 {
		opts.FlightRecSize = flightrec.DefaultSize
	}
	if opts.ChaosSeed == 0 {
		opts.ChaosSeed = 1
	}
	s := &Server{opts: opts, clu: clu}
	eng := clu.Eng

	s.rec = flightrec.New(opts.FlightRecSize, eng.Now)
	s.breachActor = s.rec.Actor("watchdog")
	s.markActor = s.rec.Actor("api")
	s.dog = telemetry.NewLiveWatchdog()
	s.dog.OnBreach = s.onBreach

	s.pacer = NewPacer(eng, opts.Dilation, opts.Slice, 0)

	s.reg = telemetry.NewRegistry()
	clu.Instrument(s.reg)
	s.reg.SetHelp("svc.pacer_lag_seconds", "How far virtual time trails its wall-derived target.")
	s.reg.Gauge("svc.pacer_lag_seconds", func() float64 { return s.pacer.Lag().Seconds() })
	s.reg.SetHelp("svc.invoked", "Requests accepted through /invoke and the built-in generator.")
	s.reg.Gauge("svc.invoked", func() float64 { return float64(s.invoked.Load()) })
	s.reg.SetHelp("svc.slo_violations", "SLO watchdog violations recorded since start.")
	s.reg.Gauge("svc.slo_violations", func() float64 { return float64(len(s.dog.Violations())) })
	s.reg.SetHelp("svc.flightrec_events", "Lifetime flight-recorder events (ring retains the newest).")
	s.reg.Gauge("svc.flightrec_events", func() float64 { return float64(s.rec.Total()) })

	s.sc = s.reg.Scrape(eng, opts.ScrapePeriod)
	s.sc.Retain(opts.RetainSamples)
	s.dog.Attach(s.sc)

	s.inj = clu.NewChaos(opts.ChaosSeed)
	s.inj.SetFlightRecorder(s.rec)

	if s.opts.RPS > 0 && s.opts.Chain != "" {
		interval := time.Duration(float64(time.Second) / s.opts.RPS)
		client := 0
		eng.Ticker(interval, func(now time.Duration) {
			client++
			s.invoked.Add(1)
			clu.SubmitChain(s.opts.Chain, client, nil)
		})
	}
	return s
}

// onBreach runs in engine context the moment the live watchdog fires: mark
// the ring, then (if configured) dump it to disk next to the breach.
func (s *Server) onBreach(v telemetry.Violation) {
	s.rec.Record(flightrec.KindSLOBreach, s.breachActor, int64(v.At), int64(len(s.dog.Violations())))
	if s.opts.DumpDir == "" {
		return
	}
	n := s.dumps.Add(1)
	stem := filepath.Join(s.opts.DumpDir, fmt.Sprintf("breach-%03d-%s", n, v.Rule))
	if f, err := os.Create(stem + ".trace.json"); err == nil {
		flightrec.WriteChrome(f, s.rec)
		f.Close()
	}
	if f, err := os.Create(stem + ".txt"); err == nil {
		fmt.Fprintf(f, "SLO breach: %s\n\n", v.String())
		flightrec.WriteText(f, s.rec, 200)
		f.Close()
	}
}

// AttachRecorder wires the flight recorder into every cluster hook point.
// Requires the cluster to be past setup (connection pools exist); the
// serve loop calls it automatically once Ready flips.
func (s *Server) attachRecorderIfReady() {
	s.pacer.Do(func() {
		if !s.recAtt && s.clu.Ready() {
			s.clu.AttachFlightRecorder(s.rec)
			s.recAtt = true
		}
	})
}

// Registry exposes the server's telemetry registry (tests).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Watchdog exposes the live watchdog (rule pre-loading before Start).
func (s *Server) Watchdog() *telemetry.LiveWatchdog { return s.dog }

// Recorder exposes the flight recorder (tests; engine-lock rules apply).
func (s *Server) Recorder() *flightrec.Recorder { return s.rec }

// Pacer exposes the pacer (tests).
func (s *Server) Pacer() *Pacer { return s.pacer }

// Addr reports the bound listen address once Start returned (useful with
// ":0" test listeners).
func (s *Server) Addr() string {
	if s.listener == nil {
		return s.opts.Addr
	}
	return s.listener.Addr().String()
}

// Start binds the listener, starts the pacer and serves HTTP in the
// background. The returned error covers bind failures only; serve-loop
// errors surface through Shutdown.
func (s *Server) Start() error {
	// build_info + uptime by both clocks ride the same registry. The
	// registry already carries the cluster's virtual-uptime pair from
	// Instrument, so only wall-anchored serving metadata is added here.
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return fmt.Errorf("svc: listen %s: %w", s.opts.Addr, err)
	}
	s.listener = ln
	s.http = &http.Server{Handler: s.routes()}
	s.pacer.Start()
	go func() {
		if err := s.http.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "nadino-svc: serve: %v\n", err)
		}
	}()
	return nil
}

// Shutdown stops HTTP (draining in-flight handlers) and halts the pacer.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	if s.http != nil {
		err = s.http.Shutdown(ctx)
	}
	s.pacer.Stop()
	return err
}

// routes assembles the HTTP mux: observability endpoints, the management
// API and pprof.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", s.handleReady)
	mux.HandleFunc("/invoke/", s.handleInvoke)
	mux.HandleFunc("/api/v1/status", s.handleStatus)
	mux.HandleFunc("/api/v1/chaos", s.handleChaos)
	mux.HandleFunc("/api/v1/tenants", s.handleTenants)
	mux.HandleFunc("/api/v1/reroute", s.handleReroute)
	mux.HandleFunc("/api/v1/watchdog", s.handleWatchdog)
	mux.HandleFunc("/api/v1/flightdump", s.handleFlightDump)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleMetrics renders the live exposition under the engine lock: gauges
// and histograms read engine-owned state, so the scrape interleaves with
// pacer slices like any other Do.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.attachRecorderIfReady()
	var buf bytes.Buffer
	var err error
	s.pacer.Do(func() { err = telemetry.WriteLivePrometheus(&buf, s.reg) })
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", telemetry.LiveContentType)
	w.Write(buf.Bytes())
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	ready := false
	s.pacer.Do(func() { ready = s.clu.Ready() })
	if !ready {
		http.Error(w, "cluster setup in progress", http.StatusServiceUnavailable)
		return
	}
	s.attachRecorderIfReady()
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}
