package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nadino/internal/core"
	"nadino/internal/sim"
	"nadino/internal/telemetry"
)

// testCluster is a small two-node NADINO deployment for daemon tests.
func testCluster() *core.Cluster {
	return core.NewCluster(core.Config{
		System: core.NadinoDNE,
		Nodes:  []string{"node1", "node2"},
		Functions: []core.FunctionSpec{
			{Name: "hello", Node: "node1", Service: 20 * time.Microsecond},
			{Name: "world", Node: "node2", Service: 15 * time.Microsecond},
		},
		Chains: []core.ChainSpec{{
			Name: "greet", Entry: "hello", ReqBytes: 256, RespBytes: 1024,
			Calls: []core.Call{{Callee: "world", ReqBytes: 512, RespBytes: 2048}},
		}},
	})
}

// startServer boots a daemon on a loopback port with aggressive time
// dilation so virtual seconds pass in wall milliseconds.
func startServer(t *testing.T, opts Options) *Server {
	t.Helper()
	clu := testCluster()
	t.Cleanup(clu.Eng.Stop)
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.Dilation == 0 {
		opts.Dilation = 200
	}
	s := New(clu, opts)
	if err := s.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

// waitReady polls /readyz until the cluster finishes setup.
func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("cluster never became ready")
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp, body
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp, out
}

// TestServerEndToEnd drives the whole daemon surface over real HTTP: boot,
// readiness, live metrics, invokes, chaos hot-reload, management calls and
// the flight dump.
func TestServerEndToEnd(t *testing.T) {
	s := startServer(t, Options{Chain: "greet", RPS: 2000})
	base := "http://" + s.Addr()
	waitReady(t, base)

	// Health never waits on the engine.
	if resp, _ := getBody(t, base+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}

	// Direct invokes: known chain accepted, unknown refused, both without
	// tripping SubmitChain's unknown-chain panic.
	if resp, _ := postJSON(t, base+"/invoke/greet?client=7", ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("/invoke/greet: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, base+"/invoke/no-such-chain", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/invoke/no-such-chain: got %d, want 404", resp.StatusCode)
	}

	// The built-in generator plus the explicit invoke must complete chains;
	// give the pacer a little wall time to push virtual time forward.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var done uint64
		s.pacer.Do(func() { done = s.clu.Completed.Total() })
		if done >= 10 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Live Prometheus exposition: right content type, HELP/TYPE pairs,
	// counter and histogram families, build_info and both uptime clocks.
	resp, body := getBody(t, base+"/metrics")
	if got := resp.Header.Get("Content-Type"); got != telemetry.LiveContentType {
		t.Fatalf("metrics content type %q, want %q", got, telemetry.LiveContentType)
	}
	text := string(body)
	for _, want := range []string{
		"# HELP nadino_cluster_goodput_total",
		"# TYPE nadino_cluster_goodput_total counter",
		"# TYPE nadino_chain_latency_seconds histogram",
		"nadino_chain_latency_seconds_bucket{chain=\"greet\",le=\"+Inf\"}",
		"nadino_chain_latency_seconds_sum",
		"nadino_chain_latency_seconds_count",
		"nadino_build_info{",
		"nadino_process_uptime_seconds{clock=\"virtual\"}",
		"nadino_process_uptime_seconds{clock=\"wall\"}",
		"nadino_svc_pacer_lag_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}

	// Chaos hot-reload: a relative-time schedule installs against the
	// running engine and the injector applies it (visible via status).
	sched := `{"events": [
		{"at_ms": 1, "for_ms": 2, "fault": {"kind": "link-down", "from": "node1", "to": "node2"}},
		{"at_ms": 5, "fault": {"kind": "qp-error", "target": "qp@node1", "count": 1}}
	]}`
	if resp, out := postJSON(t, base+"/api/v1/chaos", sched); resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/v1/chaos: %d: %s", resp.StatusCode, out)
	}
	if resp, out := postJSON(t, base+"/api/v1/chaos", `{"events": []}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty chaos schedule accepted: %d: %s", resp.StatusCode, out)
	}

	// Management: tenant listing works; reroute validates its inputs.
	if resp, out := getBody(t, base+"/api/v1/tenants"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/v1/tenants: %d: %s", resp.StatusCode, out)
	}
	if resp, _ := postJSON(t, base+"/api/v1/reroute", `{"fn": "nope", "node": "node1"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("reroute accepted an unknown function")
	}
	if resp, out := postJSON(t, base+"/api/v1/reroute", `{"fn": "world", "node": "node2"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("reroute refused the hosting node: %d: %s", resp.StatusCode, out)
	}

	// Status reflects the run so far.
	var st struct {
		Ready        bool    `json:"ready"`
		Completed    uint64  `json:"completed"`
		Invoked      uint64  `json:"invoked"`
		Dilation     float64 `json:"dilation"`
		FlightEvents uint64  `json:"flightrec_events"`
	}
	_, body = getBody(t, base+"/api/v1/status")
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("status parse: %v in %s", err, body)
	}
	if !st.Ready || st.Invoked == 0 || st.Dilation != 200 {
		t.Fatalf("status: %+v", st)
	}

	// Flight dump, both formats. The chaos faults above plus the management
	// marks guarantee the ring is not empty.
	resp, body = getBody(t, base+"/api/v1/flightdump?format=text&last=50")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("flightrec:")) {
		t.Fatalf("text flightdump: %d: %s", resp.StatusCode, body)
	}
	_, body = getBody(t, base+"/api/v1/flightdump")
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &trace); err != nil {
		t.Fatalf("chrome flightdump parse: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("chrome flightdump has no events")
	}

	// pprof rides along.
	if resp, _ := getBody(t, base+"/debug/pprof/cmdline"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: %d", resp.StatusCode)
	}
}

// TestWatchdogBreachDumps proves a hot-added SLO rule that can never hold
// fires the live watchdog and auto-dumps the flight recorder to disk.
func TestWatchdogBreachDumps(t *testing.T) {
	dir := t.TempDir()
	s := startServer(t, Options{Chain: "greet", RPS: 500, DumpDir: dir})
	base := "http://" + s.Addr()
	waitReady(t, base)

	// svc.invoked is a non-negative gauge, so "invoked < -1" breaches on
	// the next scrape window.
	rule := `{"name": "impossible", "series": "svc.invoked", "op": "<", "bound": -1}`
	if resp, out := postJSON(t, base+"/api/v1/watchdog", rule); resp.StatusCode != http.StatusOK {
		t.Fatalf("watchdog add: %d: %s", resp.StatusCode, out)
	}
	if resp, _ := postJSON(t, base+"/api/v1/watchdog", `{"name": "bad", "series": "x", "op": "!!"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("watchdog accepted a bogus operator")
	}

	deadline := time.Now().Add(10 * time.Second)
	var violations []telemetry.Violation
	for time.Now().Before(deadline) {
		violations = s.dog.Violations()
		if len(violations) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(violations) == 0 {
		t.Fatal("impossible rule never fired")
	}
	if violations[0].Rule != "impossible" {
		t.Fatalf("violation %+v", violations[0])
	}

	// The breach handler wrote a chrome trace and a text report.
	matches, err := filepath.Glob(filepath.Join(dir, "breach-001-impossible.*"))
	if err != nil || len(matches) != 2 {
		t.Fatalf("breach dump files: %v (err %v)", matches, err)
	}
	for _, m := range matches {
		if fi, err := os.Stat(m); err != nil || fi.Size() == 0 {
			t.Fatalf("breach dump %s empty or unreadable", m)
		}
	}

	// The API view agrees.
	_, body := getBody(t, base+"/api/v1/watchdog")
	var view struct {
		Rules      []telemetry.Rule      `json:"rules"`
		Violations []telemetry.Violation `json:"violations"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatalf("watchdog view parse: %v", err)
	}
	if len(view.Rules) != 1 || len(view.Violations) == 0 {
		t.Fatalf("watchdog view: %d rules, %d violations", len(view.Rules), len(view.Violations))
	}
}

// TestPacer covers the real-time bridge on its own: virtual time tracks
// wall time scaled by dilation, Do serializes with the advance loop, and
// Stop is safe in any order.
func TestPacer(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	var ticks int
	eng.Ticker(time.Millisecond, func(time.Duration) { ticks++ })

	p := NewPacer(eng, 100, 5*time.Millisecond, time.Millisecond)
	p.Start()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && p.VirtualNow() < 100*time.Millisecond {
		time.Sleep(2 * time.Millisecond)
	}
	p.Stop()
	p.Stop() // idempotent

	if v := p.VirtualNow(); v < 100*time.Millisecond {
		t.Fatalf("virtual clock only reached %v at dilation 100", v)
	}
	var now time.Duration
	var seen int
	p.Do(func() { now = eng.Now(); seen = ticks })
	if now < 100*time.Millisecond || seen < 100 {
		t.Fatalf("engine at %v with %d ticks", now, seen)
	}
}

// TestPacerStopBeforeStart must not deadlock waiting for a loop that never
// launched.
func TestPacerStopBeforeStart(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Stop()
	p := NewPacer(eng, 1, 0, 0)
	done := make(chan struct{})
	go func() { p.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop before Start deadlocked")
	}
}
