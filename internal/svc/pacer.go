// Package svc is the live observability plane: it runs a simulated NADINO
// cluster as a long-lived daemon (cmd/nadino-svc), bridging the virtual
// clock to wall time with a real-time pacer and exposing the running
// engine over HTTP — a live Prometheus /metrics endpoint, health and
// readiness probes, pprof, and a small management API that hot-reloads
// tenants, placements and chaos schedules against the running cluster while
// the SLO watchdog evaluates continuously and the flight recorder captures
// every fault and drop.
//
// Concurrency model. The simulation stays single-threaded: exactly one
// goroutine executes engine code at a time, serialized by the pacer's
// mutex. The pacer's advance loop holds it while stepping the engine in
// bounded virtual-time slices; HTTP handlers take the same mutex via Do to
// read or mutate engine state between slices. Handler latency is therefore
// bounded by one slice, never by a whole catch-up burst. Telemetry
// counters are atomic, so the one thing a scrape needs continuously —
// counter totals — never waits on the engine at all.
package svc

import (
	"sync"
	"sync/atomic"
	"time"

	"nadino/internal/sim"
)

// Pacer advances a simulation engine in real time: virtual time tracks
// wall time scaled by Dilation (virtual seconds per wall second, 1.0 =
// real time), stepped at most Slice of virtual time per engine hold so
// concurrent Do callers interleave promptly.
type Pacer struct {
	mu  sync.Mutex // serializes all engine access
	eng *sim.Engine

	dilation float64
	slice    time.Duration
	tick     time.Duration

	wallStart time.Time
	baseV     time.Duration // virtual time when the pacer started

	vnow atomic.Int64 // last engine Now, readable without the lock
	lag  atomic.Int64 // target - engine Now after the last advance

	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
	started bool
}

// NewPacer wraps eng. dilation <= 0 defaults to 1.0 (real time); slice <= 0
// defaults to 10ms of virtual time; the advance loop wakes every tick
// (default 2ms wall).
func NewPacer(eng *sim.Engine, dilation float64, slice, tick time.Duration) *Pacer {
	if dilation <= 0 {
		dilation = 1.0
	}
	if slice <= 0 {
		slice = 10 * time.Millisecond
	}
	if tick <= 0 {
		tick = 2 * time.Millisecond
	}
	return &Pacer{
		eng:      eng,
		dilation: dilation,
		slice:    slice,
		tick:     tick,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the advance loop. Call once.
func (p *Pacer) Start() {
	p.wallStart = time.Now()
	p.mu.Lock()
	p.baseV = p.eng.Now()
	p.started = true
	p.mu.Unlock()
	go p.loop()
}

// Stop halts the advance loop and waits for it to exit. Idempotent; the
// engine is left paused wherever it stopped.
func (p *Pacer) Stop() {
	p.once.Do(func() { close(p.stop) })
	p.mu.Lock()
	started := p.started
	p.mu.Unlock()
	if started {
		<-p.done
	}
}

// loop advances the engine toward the wall-derived target, one bounded
// slice per engine hold.
func (p *Pacer) loop() {
	defer close(p.done)
	ticker := time.NewTicker(p.tick)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
		}
		target := p.target()
		for {
			select {
			case <-p.stop:
				return
			default:
			}
			p.mu.Lock()
			cur := p.eng.Now()
			if cur >= target {
				p.lag.Store(0)
				p.mu.Unlock()
				break
			}
			step := target - cur
			if step > p.slice {
				step = p.slice
			}
			p.eng.RunUntil(cur + step)
			now := p.eng.Now()
			p.vnow.Store(int64(now))
			p.lag.Store(int64(target - now))
			p.mu.Unlock()
		}
	}
}

// target maps the current wall clock onto virtual time.
func (p *Pacer) target() time.Duration {
	return p.baseV + time.Duration(float64(time.Since(p.wallStart))*p.dilation)
}

// Do runs fn with the engine paused and exclusively held — the only legal
// way to touch engine-owned state (gauges, cluster mutations, the flight
// recorder) from outside the engine. fn must not block.
func (p *Pacer) Do(fn func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fn()
}

// VirtualNow reports the engine clock after the last advance, without
// taking the engine lock.
func (p *Pacer) VirtualNow() time.Duration { return time.Duration(p.vnow.Load()) }

// Lag reports how far virtual time trailed its wall-derived target after
// the last advance: persistently growing lag means the simulation cannot
// keep up with the requested dilation.
func (p *Pacer) Lag() time.Duration { return time.Duration(p.lag.Load()) }

// Dilation reports the configured virtual-per-wall-second factor.
func (p *Pacer) Dilation() float64 { return p.dilation }

// WallStart reports when the pacer started.
func (p *Pacer) WallStart() time.Time { return p.wallStart }
