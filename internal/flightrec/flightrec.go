// Package flightrec is the simulation's always-on flight recorder: a
// fixed-size, allocation-free ring buffer of timestamped data-plane events
// (faults applied, descriptors dropped, QPs errored and repaired, routes
// re-converged, SLOs breached) fed from small hook points across the chaos,
// DNE, RDMA, ingress and gateway layers.
//
// Unlike the span tracer (internal/trace), which records a head sample of
// whole requests, and the telemetry scraper (internal/telemetry), which
// records periodic aggregates, the recorder keeps the last N *interesting*
// events regardless of how long the system has been running — so when an
// SLO breaches or a simtest invariant fires, "what happened in the 50ms
// before this" has an answer without any pre-arranged capture window.
//
// The design contract mirrors the repository's other hot-path handles:
//
//   - Zero cost when off. Every producer holds a possibly-nil *Recorder;
//     Record on nil is a no-op, so uninstrumented runs pay one branch.
//
//   - Zero allocation when on. The ring is a flat []Event allocated once,
//     actor names are interned to uint16 ids up front, and the record path
//     writes five fields into a pre-existing slot. The steady state is
//     pinned at 0 allocs/op by test and benchmark.
//
//   - Deterministic. Timestamps come from the owning engine's virtual
//     clock, and producers run in engine context, so the ring's contents
//     are a pure function of the seed. Dumps of the same world are
//     byte-identical run-to-run.
//
// The recorder is single-writer: producers record from engine context only.
// Off-engine readers (the nadino-svc HTTP plane) must snapshot under the
// pacer's engine lock, like every other engine-state read.
package flightrec

import "time"

// Kind discriminates the recorded event types. Keep the list append-only:
// dumps name kinds by this enumeration, and text dumps are diffed.
type Kind uint8

// Recorded event kinds. A/B carry kind-specific payloads documented here.
const (
	KindNone           Kind = iota
	KindChaosApply          // fault applied; actor = fault label
	KindChaosRevert         // fault reverted; actor = fault label
	KindIngressDrop         // ingress shed a request under overload; A = client id
	KindIngressRestart      // ingress restart window began; A = pause ns
	KindDropNoRoute         // DNE dropped a descriptor with no route; A = tenant id, B = bytes
	KindDropNoPort          // DNE dropped a descriptor with no local port; A = tenant id, B = bytes
	KindDropRetry           // DNE dropped a descriptor after the retry budget; A = tenant id, B = bytes
	KindQPError             // RC connections forced to error state; A = count
	KindQPRepair            // RC connections re-established; A = count
	KindGwDrop              // gateway dropped a cross-node message; A = hops so far, B = bytes
	KindGwRouteUpdate       // gateway route table re-converged; A = new version
	KindSLOBreach           // live SLO watchdog fired; actor = rule name
	KindInvariant           // simtest invariant violated; actor = invariant name
	KindMark                // free-form marker (management API, tests)
	KindSpecCancel          // speculation killed a losing clone; A = tenant id, B = bytes
)

// kindNames renders kinds for dumps; indexed by Kind.
var kindNames = [...]string{
	"none", "chaos.apply", "chaos.revert", "ingress.drop", "ingress.restart",
	"dne.drop_no_route", "dne.drop_no_port", "dne.drop_retry",
	"rdma.qp_error", "rdma.qp_repair", "gw.drop", "gw.route_update",
	"slo.breach", "invariant", "mark", "spec.cancel",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one recorded occurrence. At is virtual time; Actor indexes the
// recorder's interned actor table; A and B are kind-specific payloads.
type Event struct {
	At    time.Duration
	Kind  Kind
	Actor uint16
	A, B  int64
}

// Recorder is the ring buffer. One recorder serves one engine; see the
// package comment for the single-writer contract.
type Recorder struct {
	clock func() time.Duration
	buf   []Event
	mask  uint64
	n     uint64 // lifetime events recorded; buf[(n-1)&mask] is the newest

	actors []string
	ids    map[string]uint16

	dropped uint64 // actor interning refusals past the uint16 space
}

// DefaultSize is the ring capacity used when callers pass size <= 0.
const DefaultSize = 1 << 14

// New returns a recorder holding the last size events (rounded up to a
// power of two), timestamped from clock (usually sim.Engine.Now). A nil
// clock stamps everything at 0.
func New(size int, clock func() time.Duration) *Recorder {
	if size <= 0 {
		size = DefaultSize
	}
	cap := 1
	for cap < size {
		cap <<= 1
	}
	r := &Recorder{
		clock:  clock,
		buf:    make([]Event, cap),
		mask:   uint64(cap - 1),
		ids:    make(map[string]uint16),
		actors: []string{"?"}, // id 0: unknown/unset actor
	}
	return r
}

// Actor interns name and returns its id. Interning allocates on first use
// of a name only, so producers resolve their ids at setup time and the
// record path stays allocation-free. Nil-safe (returns 0); the id space is
// bounded by uint16 — past 65535 actors every further name maps to 0.
func (r *Recorder) Actor(name string) uint16 {
	if r == nil {
		return 0
	}
	if id, ok := r.ids[name]; ok {
		return id
	}
	if len(r.actors) > 0xFFFF {
		r.dropped++
		return 0
	}
	id := uint16(len(r.actors))
	r.actors = append(r.actors, name)
	r.ids[name] = id
	return id
}

// ActorName resolves an interned id for dumps; unknown ids render as "?".
func (r *Recorder) ActorName(id uint16) string {
	if r == nil || int(id) >= len(r.actors) {
		return "?"
	}
	return r.actors[id]
}

// Record appends one event, overwriting the oldest once the ring is full.
// Safe (and free) on a nil Recorder; never allocates.
func (r *Recorder) Record(k Kind, actor uint16, a, b int64) {
	if r == nil {
		return
	}
	e := &r.buf[r.n&r.mask]
	if r.clock != nil {
		e.At = r.clock()
	} else {
		e.At = 0
	}
	e.Kind = k
	e.Actor = actor
	e.A = a
	e.B = b
	r.n++
}

// Total reports lifetime recorded events (including overwritten ones).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.n
}

// Len reports how many events the ring currently retains.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	if r.n > uint64(len(r.buf)) {
		return len(r.buf)
	}
	return int(r.n)
}

// Cap reports the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Snapshot copies the retained events oldest-first. It allocates (callers
// are dump paths, not the hot path).
func (r *Recorder) Snapshot() []Event {
	n := r.Len()
	if n == 0 {
		return nil
	}
	out := make([]Event, 0, n)
	start := r.n - uint64(n)
	for i := uint64(0); i < uint64(n); i++ {
		out = append(out, r.buf[(start+i)&r.mask])
	}
	return out
}

// Last copies the newest k retained events oldest-first (all of them when
// k <= 0 or k exceeds retention).
func (r *Recorder) Last(k int) []Event {
	ev := r.Snapshot()
	if k > 0 && len(ev) > k {
		ev = ev[len(ev)-k:]
	}
	return ev
}
