package flightrec

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// chromeEvent mirrors the Chrome trace-event JSON shape used by
// internal/trace; the flight dump is a standalone file, so the small struct
// is duplicated here rather than exporting trace internals.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders the retained events as a Chrome trace-event JSON file
// (chrome://tracing or ui.perfetto.dev): one instant event per record, one
// thread row per actor, under a single "flightrec" process. Output order
// and ids are deterministic (ring order and first-appearance order).
func WriteChrome(w io.Writer, r *Recorder) error {
	file := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	file.TraceEvents = append(file.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", PID: 0,
		Args: map[string]any{"name": "flightrec"},
	})
	tids := make(map[uint16]int)
	for _, e := range r.Snapshot() {
		tid, ok := tids[e.Actor]
		if !ok {
			tid = len(tids) + 1
			tids[e.Actor] = tid
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: "thread_name", Phase: "M", PID: 0, TID: tid,
				Args: map[string]any{"name": r.ActorName(e.Actor)},
			})
		}
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name:  e.Kind.String(),
			Phase: "i",
			Scope: "t",
			TS:    float64(e.At.Nanoseconds()) / 1e3,
			PID:   0,
			TID:   tid,
			Args:  map[string]any{"a": e.A, "b": e.B},
		})
	}
	return json.NewEncoder(w).Encode(file)
}

// WriteText renders the newest lastN retained events (all with lastN <= 0)
// as a human-readable report, oldest first — the "last 50 events before the
// breach" view attached to SLO and invariant reports.
func WriteText(w io.Writer, r *Recorder, lastN int) error {
	bw := bufio.NewWriter(w)
	ev := r.Last(lastN)
	fmt.Fprintf(bw, "flightrec: %d event(s) shown, %d retained, %d recorded\n",
		len(ev), r.Len(), r.Total())
	for _, e := range ev {
		fmt.Fprintf(bw, "  t=%-12v %-18s %-24s a=%d b=%d\n",
			e.At, e.Kind, r.ActorName(e.Actor), e.A, e.B)
	}
	return bw.Flush()
}

// TextDump is WriteText into a string (convenience for reports and tests).
func TextDump(r *Recorder, lastN int) string {
	var b strings.Builder
	_ = WriteText(&b, r, lastN)
	return b.String()
}
