package flightrec

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestRingWraparound drives the ring past capacity and checks that only the
// newest events survive, oldest-first.
func TestRingWraparound(t *testing.T) {
	now := time.Duration(0)
	r := New(8, func() time.Duration { return now })
	if r.Cap() != 8 {
		t.Fatalf("Cap() = %d, want 8", r.Cap())
	}
	a := r.Actor("dne@nodeA")
	for i := 0; i < 20; i++ {
		now = time.Duration(i) * time.Millisecond
		r.Record(KindDropNoRoute, a, int64(i), 0)
	}
	if r.Total() != 20 {
		t.Fatalf("Total() = %d, want 20", r.Total())
	}
	if r.Len() != 8 {
		t.Fatalf("Len() = %d, want 8", r.Len())
	}
	snap := r.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot len = %d, want 8", len(snap))
	}
	for i, e := range snap {
		want := int64(12 + i) // events 12..19 survive
		if e.A != want {
			t.Fatalf("snapshot[%d].A = %d, want %d", i, e.A, want)
		}
		if e.At != time.Duration(want)*time.Millisecond {
			t.Fatalf("snapshot[%d].At = %v, want %v", i, e.At, time.Duration(want)*time.Millisecond)
		}
	}
	last := r.Last(3)
	if len(last) != 3 || last[0].A != 17 || last[2].A != 19 {
		t.Fatalf("Last(3) = %+v, want events 17..19", last)
	}
}

// TestSizeRounding pins the power-of-two capacity rule and the default.
func TestSizeRounding(t *testing.T) {
	if got := New(100, nil).Cap(); got != 128 {
		t.Fatalf("New(100).Cap() = %d, want 128", got)
	}
	if got := New(0, nil).Cap(); got != DefaultSize {
		t.Fatalf("New(0).Cap() = %d, want %d", got, DefaultSize)
	}
}

// TestNilSafety checks the whole producer surface is a no-op on nil.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	if id := r.Actor("x"); id != 0 {
		t.Fatalf("nil Actor() = %d, want 0", id)
	}
	r.Record(KindMark, 0, 1, 2) // must not panic
	if r.Total() != 0 || r.Len() != 0 || r.Cap() != 0 {
		t.Fatal("nil recorder reports non-zero state")
	}
	if name := r.ActorName(3); name != "?" {
		t.Fatalf("nil ActorName = %q, want ?", name)
	}
	if TextDump(r, 10) == "" {
		t.Fatal("nil TextDump should still render a header")
	}
}

// TestActorInterning pins id stability and the unknown-id fallback.
func TestActorInterning(t *testing.T) {
	r := New(8, nil)
	a := r.Actor("gw@nodeA")
	b := r.Actor("gw@nodeB")
	if a == b {
		t.Fatal("distinct actors interned to the same id")
	}
	if again := r.Actor("gw@nodeA"); again != a {
		t.Fatalf("re-interning changed id: %d -> %d", a, again)
	}
	if r.ActorName(a) != "gw@nodeA" {
		t.Fatalf("ActorName(%d) = %q", a, r.ActorName(a))
	}
	if r.ActorName(999) != "?" {
		t.Fatal("unknown id should render as ?")
	}
}

// TestRecordZeroAlloc pins the record path at zero allocations per op —
// the recorder is always on, so any alloc here is a leak multiplied by
// every drop, fault and repair in a long run.
func TestRecordZeroAlloc(t *testing.T) {
	now := time.Duration(0)
	r := New(1024, func() time.Duration { return now })
	actor := r.Actor("bench")
	if allocs := testing.AllocsPerRun(1000, func() {
		now += time.Microsecond
		r.Record(KindQPError, actor, 7, 9)
	}); allocs != 0 {
		t.Fatalf("Record allocates %v allocs/op, want 0", allocs)
	}
	// Re-interning an existing actor must stay allocation-free too: hot
	// paths that resolve by name on each event would otherwise churn.
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Actor("bench")
	}); allocs != 0 {
		t.Fatalf("Actor re-intern allocates %v allocs/op, want 0", allocs)
	}
}

// TestWriteChrome checks the dump loads as the Chrome trace-event shape:
// process metadata, one thread per actor, instant events in ring order.
func TestWriteChrome(t *testing.T) {
	now := time.Duration(0)
	r := New(16, func() time.Duration { return now })
	a, b := r.Actor("chaos"), r.Actor("dne@nodeA")
	now = 10 * time.Millisecond
	r.Record(KindChaosApply, a, 0, 0)
	now = 12 * time.Millisecond
	r.Record(KindDropNoRoute, b, 1, 512)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, r); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	// 1 process meta + 2 thread metas + 2 instants.
	if len(file.TraceEvents) != 5 {
		t.Fatalf("trace has %d events, want 5:\n%s", len(file.TraceEvents), buf.String())
	}
	var kinds []string
	for _, ev := range file.TraceEvents {
		if ev["ph"] == "i" {
			kinds = append(kinds, ev["name"].(string))
		}
	}
	if len(kinds) != 2 || kinds[0] != "chaos.apply" || kinds[1] != "dne.drop_no_route" {
		t.Fatalf("instant kinds = %v", kinds)
	}
}

// TestWriteText checks the last-N report shape and determinism.
func TestWriteText(t *testing.T) {
	now := time.Duration(0)
	r := New(16, func() time.Duration { return now })
	a := r.Actor("ingress")
	for i := 0; i < 5; i++ {
		now = time.Duration(i) * time.Millisecond
		r.Record(KindIngressDrop, a, int64(i), 0)
	}
	got := TextDump(r, 2)
	if !strings.Contains(got, "5 retained, 5 recorded") {
		t.Fatalf("header wrong:\n%s", got)
	}
	if strings.Count(got, "ingress.drop") != 2 {
		t.Fatalf("want exactly the last 2 events:\n%s", got)
	}
	if !strings.Contains(got, "a=4") || strings.Contains(got, "a=2") {
		t.Fatalf("want events 3 and 4 only:\n%s", got)
	}
	if again := TextDump(r, 2); again != got {
		t.Fatal("TextDump not deterministic for identical state")
	}
}

// BenchmarkFlightRecord measures the always-on record path; archived in
// BENCH_sim.json and gated by `make bench-gate` (ns/op drift and any alloc
// growth fail the gate).
func BenchmarkFlightRecord(b *testing.B) {
	now := time.Duration(0)
	r := New(1<<14, func() time.Duration { return now })
	actor := r.Actor("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += time.Microsecond
		r.Record(KindGwDrop, actor, int64(i), 4096)
	}
}
