// Package ring provides a growable power-of-two ring deque. It replaces the
// `q = q[1:]` head-pop idiom used by FIFO hot paths throughout the
// simulator: that idiom strands the popped prefix in the backing array until
// the next append reallocates, so a long-lived queue under sustained load
// reallocates (and copies) forever even when its live length is tiny. The
// deque reuses its slots in place, so a queue that oscillates around a
// steady depth allocates nothing after warmup.
package ring

// Deque is a FIFO ring over a power-of-two backing slice. The zero value is
// an empty, ready-to-use deque.
type Deque[T any] struct {
	buf  []T // len(buf) is always zero or a power of two
	head int // index of the front element
	n    int // live elements
}

// grow doubles the backing array (min 8) and linearizes the live elements to
// the front.
func (d *Deque[T]) grow() {
	c := len(d.buf) * 2
	if c < 8 {
		c = 8
	}
	buf := make([]T, c)
	d.copyTo(buf)
	d.buf = buf
	d.head = 0
}

// copyTo linearizes the live elements into dst (which must hold >= d.n).
func (d *Deque[T]) copyTo(dst []T) {
	if d.n == 0 {
		return
	}
	first := d.buf[d.head:]
	if len(first) > d.n {
		first = first[:d.n]
	}
	k := copy(dst, first)
	copy(dst[k:], d.buf[:d.n-k])
}

// PushBack appends v at the tail.
func (d *Deque[T]) PushBack(v T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)&(len(d.buf)-1)] = v
	d.n++
}

// PopFront removes and returns the front element. It panics on an empty
// deque; check Len first.
func (d *Deque[T]) PopFront() T {
	if d.n == 0 {
		panic("ring: PopFront on empty deque")
	}
	var zero T
	v := d.buf[d.head]
	d.buf[d.head] = zero // release references for GC
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.n--
	return v
}

// Front returns the front element without removing it.
func (d *Deque[T]) Front() T {
	if d.n == 0 {
		panic("ring: Front on empty deque")
	}
	return d.buf[d.head]
}

// At returns the i-th element from the front (0 = front).
func (d *Deque[T]) At(i int) T {
	if i < 0 || i >= d.n {
		panic("ring: At out of range")
	}
	return d.buf[(d.head+i)&(len(d.buf)-1)]
}

// Len reports the number of live elements.
func (d *Deque[T]) Len() int { return d.n }

// Cap reports the backing-array capacity (0 or a power of two).
func (d *Deque[T]) Cap() int { return len(d.buf) }
